(** Cell power and steady-state heat maps (paper §5: replacing the
    congestion map with a heat map avoids hot spots).

    Temperature is the Dirichlet solution of the steady-state heat
    equation ∇²T = −P/κ on the placement region (boundary held at
    ambient 0), computed with the SOR Poisson solver. *)

type params = {
  conductivity : float;  (** effective thermal conductivity κ *)
}

val default_params : params

type t = {
  power : Geometry.Grid2.t;  (** dissipated power density per bin *)
  temperature : Geometry.Grid2.t;  (** °C above ambient *)
  peak : float;
  mean : float;
}

(** [analyse ?params circuit placement ~nx ~ny] builds power and
    temperature maps from the cells' power attributes. *)
val analyse :
  ?params:params ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  nx:int ->
  ny:int ->
  t

(** [extra_density ?params ~strength] is a placer hook: bins hotter than
    the mean read as extra demand proportional to their excess
    temperature, pushing cells (and so power) out of hot spots. *)
val extra_density :
  ?params:params ->
  strength:float ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  nx:int ->
  ny:int ->
  Geometry.Grid2.t option
