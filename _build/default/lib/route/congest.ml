type params = { wire_pitch : float; via_factor : float }

let default_params = { wire_pitch = 0.7; via_factor = 1.2 }

type t = {
  demand_h : Geometry.Grid2.t;
  demand_v : Geometry.Grid2.t;
  overflow : Geometry.Grid2.t;
  total_overflow : float;
  max_overflow : float;
}

let estimate ?(params = default_params) (c : Netlist.Circuit.t)
    (p : Netlist.Placement.t) ~nx ~ny =
  let region = c.Netlist.Circuit.region in
  let demand_h = Geometry.Grid2.create region ~nx ~ny in
  let demand_v = Geometry.Grid2.create region ~nx ~ny in
  Array.iter
    (fun (net : Netlist.Net.t) ->
      let bbox =
        Metrics.Wirelength.bbox_net c ~x:p.Netlist.Placement.x
          ~y:p.Netlist.Placement.y net
      in
      (* Expected wiring ≈ half-perimeter split into its h/v components,
         spread uniformly over the box (degenerate boxes splat into the
         bin row/column they occupy via the rect clip). *)
      let wl_h = Geometry.Rect.width bbox *. params.via_factor in
      let wl_v = Geometry.Rect.height bbox *. params.via_factor in
      if wl_h > 0. then Geometry.Grid2.splat_rect demand_h bbox wl_h;
      if wl_v > 0. then Geometry.Grid2.splat_rect demand_v bbox wl_v)
    c.Netlist.Circuit.nets;
  (* Capacity: tracks per bin times bin extent. *)
  let overflow = Geometry.Grid2.create region ~nx ~ny in
  let dx = Geometry.Grid2.dx overflow and dy = Geometry.Grid2.dy overflow in
  let cap_h = dy /. params.wire_pitch *. dx in
  let cap_v = dx /. params.wire_pitch *. dy in
  let total = ref 0. and maxo = ref 0. in
  Geometry.Grid2.map_inplace
    (fun ix iy _ ->
      let oh = Float.max 0. (Geometry.Grid2.get demand_h ix iy -. cap_h) in
      let ov = Float.max 0. (Geometry.Grid2.get demand_v ix iy -. cap_v) in
      let o = oh +. ov in
      total := !total +. o;
      if o > !maxo then maxo := o;
      o)
    overflow;
  { demand_h; demand_v; overflow; total_overflow = !total; max_overflow = !maxo }

let extra_density ?params ~strength c p ~nx ~ny =
  let est = estimate ?params c p ~nx ~ny in
  if est.total_overflow <= 0. then None
  else begin
    let g = Geometry.Grid2.create c.Netlist.Circuit.region ~nx ~ny in
    let dx = Geometry.Grid2.dx g and dy = Geometry.Grid2.dy g in
    (* Convert overflow (wire length) into an equivalent blocked area so
       it adds to the cell-area demand: overflow × pitch ≈ area the
       missing tracks would occupy. *)
    let pitch =
      (match params with Some p -> p.wire_pitch | None -> default_params.wire_pitch)
    in
    Geometry.Grid2.map_inplace
      (fun ix iy _ ->
        let o = Geometry.Grid2.get est.overflow ix iy in
        Float.min (strength *. o *. pitch) (dx *. dy))
      g;
    Some g
  end
