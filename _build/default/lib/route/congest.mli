(** Probabilistic routing-congestion estimation (paper §5, "Congestion
    and Heat Driven Placement").

    Each net's expected horizontal and vertical wiring is spread uniformly
    over its bounding box; comparing demand against per-bin track capacity
    yields an overflow map.  Fed back through the placer's extra-density
    hook, over-congested bins read as extra demand, so the same
    supply/demand machinery that spreads cells also spreads wiring. *)

type params = {
  wire_pitch : float;
      (** routing pitch in length units per track; the 0.7 default models
          the paper's late-90s half-micron metal stack (1 unit = 1 µm) *)
  via_factor : float;
      (** multiplier on demand accounting for bends/vias (≥ 1) *)
}

val default_params : params

(** Result of an estimation. *)
type t = {
  demand_h : Geometry.Grid2.t;  (** horizontal track demand per bin *)
  demand_v : Geometry.Grid2.t;
  overflow : Geometry.Grid2.t;  (** Σ max(0, demand − capacity) per bin *)
  total_overflow : float;
  max_overflow : float;
}

(** [estimate ?params circuit placement ~nx ~ny] runs the estimator. *)
val estimate :
  ?params:params ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  nx:int ->
  ny:int ->
  t

(** [extra_density ?params ~strength] is a placer hook: over-congested
    bins contribute [strength × overflow_area_equivalent] extra demand.
    [strength] around 0.5–2 works well. *)
val extra_density :
  ?params:params ->
  strength:float ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  nx:int ->
  ny:int ->
  Geometry.Grid2.t option
