lib/route/congest.mli: Geometry Netlist
