lib/route/grouter.mli: Geometry Netlist
