lib/route/grouter.ml: Array Float Geometry List Netlist
