lib/route/congest.ml: Array Float Geometry Metrics Netlist
