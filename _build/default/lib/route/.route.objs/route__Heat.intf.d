lib/route/heat.mli: Geometry Netlist
