lib/route/heat.ml: Array Float Geometry Netlist Numeric
