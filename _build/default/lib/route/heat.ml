type params = { conductivity : float }

let default_params = { conductivity = 1e-4 }

type t = {
  power : Geometry.Grid2.t;
  temperature : Geometry.Grid2.t;
  peak : float;
  mean : float;
}

let analyse ?(params = default_params) (c : Netlist.Circuit.t)
    (p : Netlist.Placement.t) ~nx ~ny =
  let region = c.Netlist.Circuit.region in
  let power = Geometry.Grid2.create region ~nx ~ny in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if cl.Netlist.Cell.kind <> Netlist.Cell.Pad && cl.Netlist.Cell.power > 0.
      then
        Geometry.Grid2.splat_rect power
          (Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
          cl.Netlist.Cell.power)
    c.Netlist.Circuit.cells;
  let bin_area = Geometry.Grid2.dx power *. Geometry.Grid2.dy power in
  (* ∇²T = −P/(κ·area): source term per unit area. *)
  let source =
    Array.map
      (fun w -> -.(w /. bin_area /. params.conductivity))
      (Geometry.Grid2.values power)
  in
  let phi =
    Numeric.Poisson.sor_potential ~rows:ny ~cols:nx
      ~hx:(Geometry.Grid2.dx power) ~hy:(Geometry.Grid2.dy power) source
  in
  let temperature = Geometry.Grid2.create region ~nx ~ny in
  Array.blit phi 0 (Geometry.Grid2.values temperature) 0 (nx * ny);
  let vals = Geometry.Grid2.values temperature in
  let peak = Array.fold_left Float.max Float.neg_infinity vals in
  let mean = Array.fold_left ( +. ) 0. vals /. float_of_int (nx * ny) in
  { power; temperature; peak; mean }

let extra_density ?params ~strength c p ~nx ~ny =
  let t = analyse ?params c p ~nx ~ny in
  if t.peak <= 0. then None
  else begin
    let g = Geometry.Grid2.create c.Netlist.Circuit.region ~nx ~ny in
    let bin_area = Geometry.Grid2.dx g *. Geometry.Grid2.dy g in
    Geometry.Grid2.map_inplace
      (fun ix iy _ ->
        let excess =
          Float.max 0. (Geometry.Grid2.get t.temperature ix iy -. t.mean)
        in
        (* Normalise by the peak so strength = 1 makes the hottest bin
           read as completely full. *)
        strength *. (excess /. Float.max t.peak 1e-30) *. bin_area)
      g;
    Some g
  end
