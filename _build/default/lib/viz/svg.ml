type options = {
  width_px : float;
  show_rows : bool;
  show_nets : bool;
  max_nets_drawn : int;
  heat : Geometry.Grid2.t option;
}

let default_options =
  { width_px = 900.; show_rows = true; show_nets = false; max_nets_drawn = 500;
    heat = None }

let cell_fill (cl : Netlist.Cell.t) =
  match cl.Netlist.Cell.kind with
  | Netlist.Cell.Standard -> if cl.Netlist.Cell.fixed then "#8f8f8f" else "#6baed6"
  | Netlist.Cell.Block -> "#fdae6b"
  | Netlist.Cell.Pad -> "#74c476"

(* Map a normalised scalar in [0, 1] to a white→red ramp. *)
let heat_color v =
  let v = Float.min 1. (Float.max 0. v) in
  let g = int_of_float (255. *. (1. -. v)) in
  Printf.sprintf "rgb(255,%d,%d)" g g

let render ?(options = default_options) (c : Netlist.Circuit.t)
    (p : Netlist.Placement.t) =
  let region = c.Netlist.Circuit.region in
  let margin = 0.03 *. Geometry.Rect.width region in
  let world_w = Geometry.Rect.width region +. (2. *. margin) in
  let world_h = Geometry.Rect.height region +. (2. *. margin) in
  let scale = options.width_px /. world_w in
  let px x = (x -. region.Geometry.Rect.x_lo +. margin) *. scale in
  (* SVG y grows downward; flip so the placement's origin is bottom
     left. *)
  let py y = (region.Geometry.Rect.y_hi +. margin -. y) *. scale in
  let buf = Buffer.create 65536 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
     viewBox=\"0 0 %.2f %.2f\">\n"
    (world_w *. scale) (world_h *. scale) (world_w *. scale) (world_h *. scale);
  out "<rect width=\"100%%\" height=\"100%%\" fill=\"#ffffff\"/>\n";
  (* Heat overlay under everything but above the background. *)
  (match options.heat with
  | None -> ()
  | Some grid ->
    let vals = Geometry.Grid2.values grid in
    let vmax = Array.fold_left Float.max 1e-30 vals in
    for iy = 0 to Geometry.Grid2.ny grid - 1 do
      for ix = 0 to Geometry.Grid2.nx grid - 1 do
        let v = Geometry.Grid2.get grid ix iy in
        if v > 0. then begin
          let r = Geometry.Grid2.bin_rect grid ix iy in
          out
            "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" \
             fill=\"%s\" fill-opacity=\"0.6\"/>\n"
            (px r.Geometry.Rect.x_lo) (py r.Geometry.Rect.y_hi)
            (Geometry.Rect.width r *. scale)
            (Geometry.Rect.height r *. scale)
            (heat_color (v /. vmax))
        end
      done
    done);
  (* Region outline and rows. *)
  out
    "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"none\" \
     stroke=\"#333333\" stroke-width=\"1.5\"/>\n"
    (px region.Geometry.Rect.x_lo) (py region.Geometry.Rect.y_hi)
    (Geometry.Rect.width region *. scale)
    (Geometry.Rect.height region *. scale);
  if options.show_rows then
    for r = 1 to Netlist.Circuit.num_rows c - 1 do
      let y = region.Geometry.Rect.y_lo +. (float_of_int r *. c.Netlist.Circuit.row_height) in
      out
        "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" stroke=\"#dddddd\" \
         stroke-width=\"0.5\"/>\n"
        (px region.Geometry.Rect.x_lo) (py y) (px region.Geometry.Rect.x_hi) (py y)
    done;
  (* Cells. *)
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      let r = Netlist.Placement.cell_rect c p cl.Netlist.Cell.id in
      out
        "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\" \
         fill-opacity=\"0.8\" stroke=\"#555555\" stroke-width=\"0.3\"/>\n"
        (px r.Geometry.Rect.x_lo) (py r.Geometry.Rect.y_hi)
        (Geometry.Rect.width r *. scale)
        (Geometry.Rect.height r *. scale)
        (cell_fill cl))
    c.Netlist.Circuit.cells;
  (* Net fly-lines (driver to each sink). *)
  if options.show_nets then begin
    let drawn = ref 0 in
    Array.iter
      (fun (net : Netlist.Net.t) ->
        if !drawn < options.max_nets_drawn then begin
          incr drawn;
          let dx_, dy_ =
            Netlist.Circuit.pin_position c ~x:p.Netlist.Placement.x
              ~y:p.Netlist.Placement.y (Netlist.Net.driver net)
          in
          Array.iter
            (fun pin ->
              let sx, sy =
                Netlist.Circuit.pin_position c ~x:p.Netlist.Placement.x
                  ~y:p.Netlist.Placement.y pin
              in
              out
                "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" \
                 stroke=\"#c51b8a\" stroke-width=\"0.4\" stroke-opacity=\"0.5\"/>\n"
                (px dx_) (py dy_) (px sx) (py sy))
            (Netlist.Net.sinks net)
        end)
      c.Netlist.Circuit.nets
  end;
  out "</svg>\n";
  Buffer.contents buf

let save file ?options c p =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?options c p))
