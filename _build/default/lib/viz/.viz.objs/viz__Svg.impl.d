lib/viz/svg.ml: Array Buffer Float Fun Geometry Netlist Printf
