lib/viz/svg.mli: Geometry Netlist
