(** SVG rendering of placements and per-bin maps.

    Produces self-contained SVG documents for inspecting placements:
    cells coloured by kind, row grid, optional net fly-lines, and an
    optional per-bin scalar overlay (density, congestion, temperature)
    rendered as a translucent heat map. *)

type options = {
  width_px : float;  (** output width; height follows the aspect ratio *)
  show_rows : bool;
  show_nets : bool;  (** fly-lines pin-to-pin; heavy for big circuits *)
  max_nets_drawn : int;  (** cap on fly-lines when [show_nets] *)
  heat : Geometry.Grid2.t option;  (** translucent scalar overlay *)
}

val default_options : options

(** [render ?options circuit placement] is the SVG document as a
    string. *)
val render :
  ?options:options -> Netlist.Circuit.t -> Netlist.Placement.t -> string

(** [save file ?options circuit placement] writes the document. *)
val save :
  string -> ?options:options -> Netlist.Circuit.t -> Netlist.Placement.t -> unit
