(** Timing-model parameters (paper §6.2). *)

type t = {
  resistance_per_length : float;  (** Ω per length unit *)
  capacitance_per_length : float;  (** F per length unit *)
  driver_resistance : float;
      (** output resistance of the driving cell, Ω — the term that makes
          the net delay scale with placement-dependent capacitance *)
  pin_load : float;  (** input capacitance per sink pin, F *)
  max_net_degree : int;
      (** nets with more pins are excluded from timing analysis — the
          paper uses 60, noting bigger nets in the longest path are not
          realistic *)
  critical_fraction : float;
      (** share of nets treated as critical per §5's recurrence (0.03) *)
  max_net_weight : float;
      (** saturation cap on the multiplicative weight update; this
          implementation applies the §5 update before each of its many
          small transformations, so unbounded growth would overwhelm the
          wire-length objective *)
}

(** [default] uses the paper's 25.5 kΩ/m and 242 pF/m converted to the
    micron-like length unit of the generated circuits (1 unit = 1 µm):
    0.0255 Ω/unit and 0.242 fF/unit, with a 2 kΩ driver and a 10 fF pin
    load. *)
val default : t
