(** Critical-path extraction and reporting on top of the STA.

    Traces the worst paths through the combinational graph so users can
    see {e which} cells and nets limit the clock period — the report a
    timing-driven placement flow is judged by. *)

(** One traversal step: the signal leaves [cell]'s output having
    accumulated [arrival] seconds; [via_net] is the net that carried it
    from the previous element ([None] for the path's start point). *)
type element = { cell : int; via_net : int option; arrival : float }

(** A start-to-endpoint critical path, elements in signal order. *)
type path = { delay : float; elements : element list }

(** [critical ?k params circuit placement] returns up to [k] (default 5)
    worst paths, sorted by decreasing delay, at most one per endpoint
    cell.  Empty when the circuit has no analysed connections. *)
val critical :
  ?k:int -> Params.t -> Netlist.Circuit.t -> Netlist.Placement.t -> path list

(** [pp_path circuit ppf path] prints a human-readable path report:
    one line per element with cell name, carrying net, and cumulative
    arrival in nanoseconds. *)
val pp_path : Netlist.Circuit.t -> Format.formatter -> path -> unit
