type trace_point = { at_step : int; hpwl : float; delay : float }

type result = {
  placement : Netlist.Placement.t;
  initial_delay : float;
  final_delay : float;
  trace : trace_point list;
  met : bool;
}

let reweight_hook params crit trace =
  fun (state : Kraftwerk.Placer.state) ->
    let sta =
      Sta.analyse params state.Kraftwerk.Placer.circuit
        state.Kraftwerk.Placer.placement
    in
    Criticality.update crit params ~net_slack:sta.Sta.net_slack;
    Criticality.apply_weights ~cap:params.Params.max_net_weight crit
      state.Kraftwerk.Placer.net_weights;
    trace :=
      {
        at_step = state.Kraftwerk.Placer.iteration;
        hpwl =
          Metrics.Wirelength.hpwl state.Kraftwerk.Placer.circuit
            state.Kraftwerk.Placer.placement;
        delay = sta.Sta.max_delay;
      }
      :: !trace

let optimize ?(params = Params.default) config circuit placement =
  let initial_delay = (Sta.analyse params circuit placement).Sta.max_delay in
  let crit = Criticality.create (Netlist.Circuit.num_nets circuit) in
  let trace = ref [] in
  let hooks =
    { Kraftwerk.Placer.no_hooks with
      Kraftwerk.Placer.reweight = Some (reweight_hook params crit trace) }
  in
  let state, _ = Kraftwerk.Placer.run ~hooks config circuit placement in
  let final_delay =
    (Sta.analyse params circuit state.Kraftwerk.Placer.placement).Sta.max_delay
  in
  {
    placement = state.Kraftwerk.Placer.placement;
    initial_delay;
    final_delay;
    trace = List.rev !trace;
    met = true;
  }

let meet_requirement ?(params = Params.default) ?(max_extra_steps = 60) config
    circuit placement ~target =
  (* Phase 1: plain area-driven placement to convergence. *)
  let state, _ = Kraftwerk.Placer.run config circuit placement in
  let delay_of p = (Sta.analyse params circuit p).Sta.max_delay in
  let initial_delay = delay_of state.Kraftwerk.Placer.placement in
  (* Phase 2: weight-adapting transformations until the requirement is
     met — the analysis runs on the actual placement, so meeting it here
     means meeting it, full stop. *)
  let crit = Criticality.create (Netlist.Circuit.num_nets circuit) in
  let trace = ref [] in
  let hooks =
    { Kraftwerk.Placer.no_hooks with
      Kraftwerk.Placer.reweight = Some (reweight_hook params crit trace) }
  in
  let current = ref initial_delay in
  let steps = ref 0 in
  while !current > target && !steps < max_extra_steps do
    ignore (Kraftwerk.Placer.transform ~hooks state);
    current := delay_of state.Kraftwerk.Placer.placement;
    incr steps
  done;
  {
    placement = state.Kraftwerk.Placer.placement;
    initial_delay;
    final_delay = !current;
    trace = List.rev !trace;
    met = !current <= target;
  }

let exploitation ~unoptimized ~optimized ~lower_bound =
  let potential = unoptimized -. lower_bound in
  if potential <= 0. then 0. else (unoptimized -. optimized) /. potential
