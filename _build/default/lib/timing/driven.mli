(** Timing-driven placement flows (paper §5).

    {b Optimisation mode} runs the placer with a reweight hook: before
    every placement transformation a longest-path analysis updates net
    criticalities and multiplies net weights, steering critical nets
    short.

    {b Requirement mode} first converges the plain area-driven placement,
    then applies weight-adapting transformations until the longest path
    meets a given requirement, recording the wire-length/delay trade-off
    curve — because the placement itself is what timing is measured on,
    the requirement is met exactly when the loop stops. *)

(** One point of the trade-off curve. *)
type trace_point = { at_step : int; hpwl : float; delay : float }

(** Result of either flow. *)
type result = {
  placement : Netlist.Placement.t;
  initial_delay : float;  (** longest path before timing optimisation *)
  final_delay : float;
  trace : trace_point list;  (** chronological *)
  met : bool;  (** requirement mode: did we reach the target? *)
}

(** [optimize ?params config circuit placement] places with continuous
    timing-driven net weighting from the start. *)
val optimize :
  ?params:Params.t ->
  Kraftwerk.Config.t ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  result

(** [meet_requirement ?params ?max_extra_steps config circuit placement
    ~target] is the two-phase flow: converge area-driven, then adapt
    weights until [target] seconds is met or [max_extra_steps] (default
    60) transformations pass. *)
val meet_requirement :
  ?params:Params.t ->
  ?max_extra_steps:int ->
  Kraftwerk.Config.t ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  target:float ->
  result

(** [exploitation ~unoptimized ~optimized ~lower_bound] is the paper's
    §6.2 quality measure: the achieved reduction of the longest path
    divided by the optimisation potential (unoptimised − lower bound). *)
val exploitation :
  unoptimized:float -> optimized:float -> lower_bound:float -> float
