type element = { cell : int; via_net : int option; arrival : float }

type path = { delay : float; elements : element list }

(* Forward pass identical to Sta's, additionally recording for each cell
   the predecessor (driver cell, net) realising its arrival, and for each
   endpoint the worst incoming edge. *)
let critical ?(k = 5) (p : Params.t) (c : Netlist.Circuit.t)
    (placement : Netlist.Placement.t) =
  let n = Netlist.Circuit.num_cells c in
  let cells = c.Netlist.Circuit.cells in
  let is_endpoint i = cells.(i).Netlist.Cell.sequential in
  let net_length net =
    Metrics.Wirelength.hpwl_net c ~x:placement.Netlist.Placement.x
      ~y:placement.Netlist.Placement.y net
  in
  (* Edge bundles, as in Sta. *)
  let bundles = ref [] in
  Array.iter
    (fun (net : Netlist.Net.t) ->
      let deg = Netlist.Net.degree net in
      if deg >= 2 && deg <= p.Params.max_net_degree then begin
        let drv = (Netlist.Net.driver net).Netlist.Net.cell in
        let snks =
          Netlist.Net.sinks net
          |> Array.to_list
          |> List.filter_map (fun (pin : Netlist.Net.pin) ->
                 if pin.Netlist.Net.cell <> drv then Some pin.Netlist.Net.cell
                 else None)
        in
        if snks <> [] then begin
          let delay =
            Sta.net_delay p ~length:(net_length net) ~sinks:(List.length snks)
          in
          bundles := (net.Netlist.Net.id, drv, snks, delay) :: !bundles
        end
      end)
    c.Netlist.Circuit.nets;
  let fanout = Array.make n [] in
  let indeg = Array.make n 0 in
  let bundle_arr = Array.of_list !bundles in
  Array.iteri
    (fun bi (_, drv, snks, _) ->
      fanout.(drv) <- (bi, 0) :: fanout.(drv);
      List.iter
        (fun s -> if not (is_endpoint s) then indeg.(s) <- indeg.(s) + 1)
        snks)
    bundle_arr;
  let arrival = Array.make n 0. in
  let best_in = Array.make n 0. in
  let pred = Array.make n None in
  (* (driver cell, net id) achieving best_in *)
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if is_endpoint i || indeg.(i) = 0 then Queue.add i queue
  done;
  (* Worst incoming edge per endpoint: endpoint cell → (arrival at input,
     driver, net). *)
  let endpoint_worst : (int, float * int * int option) Hashtbl.t =
    Hashtbl.create 64
  in
  let note_endpoint cell v drv net =
    match Hashtbl.find_opt endpoint_worst cell with
    | Some (best, _, _) when best >= v -> ()
    | _ -> Hashtbl.replace endpoint_worst cell (v, drv, net)
  in
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr processed;
    arrival.(i) <-
      (if is_endpoint i then cells.(i).Netlist.Cell.delay
       else best_in.(i) +. cells.(i).Netlist.Cell.delay);
    if fanout.(i) = [] then note_endpoint i arrival.(i) i None;
    List.iter
      (fun (bi, _) ->
        let net_id, drv, snks, delay = bundle_arr.(bi) in
        let v = arrival.(i) +. delay in
        List.iter
          (fun s ->
            if is_endpoint s then note_endpoint s v drv (Some net_id)
            else begin
              if v > best_in.(s) then begin
                best_in.(s) <- v;
                pred.(s) <- Some (drv, net_id)
              end;
              indeg.(s) <- indeg.(s) - 1;
              if indeg.(s) = 0 then Queue.add s queue
            end)
          snks)
      fanout.(i)
  done;
  if !processed <> n then failwith "Paths.critical: combinational cycle detected";
  (* Pick the k worst endpoints and trace each back. *)
  let worst =
    Hashtbl.fold (fun cell (v, drv, net) acc -> (v, cell, drv, net) :: acc)
      endpoint_worst []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> Float.compare b a)
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  let trace (delay, endpoint, drv, net) =
    (* Walk from the endpoint's driving edge back to a path start. *)
    let rec back cell via acc =
      let acc = { cell; via_net = via; arrival = arrival.(cell) } :: acc in
      if is_endpoint cell then acc
      else
        match pred.(cell) with
        | Some (d, net_id) -> back d (Some net_id) acc
        | None -> acc
    in
    let tail = { cell = endpoint; via_net = net; arrival = delay } in
    let elements =
      if endpoint = drv && net = None then [ tail ]
      else back drv net [ tail ]
    in
    (* via_net markers currently sit on the *source* element of each hop;
       shift them one step forward so each element names the net it
       arrived through (the first element arrives through nothing). *)
    let rec shift carried = function
      | [] -> []
      | (e : element) :: rest -> { e with via_net = carried } :: shift e.via_net rest
    in
    { delay; elements = shift None elements }
  in
  List.map trace (take k worst)

let pp_path (c : Netlist.Circuit.t) ppf path =
  Format.fprintf ppf "path delay %.3f ns@." (path.delay *. 1e9);
  List.iter
    (fun e ->
      let name = c.Netlist.Circuit.cells.(e.cell).Netlist.Cell.name in
      match e.via_net with
      | None -> Format.fprintf ppf "  %-12s            %8.3f ns@." name (e.arrival *. 1e9)
      | Some net ->
        Format.fprintf ppf "  %-12s via %-8s %8.3f ns@." name
          c.Netlist.Circuit.nets.(net).Netlist.Net.name
          (e.arrival *. 1e9))
    path.elements
