type t = {
  max_delay : float;
  arrival : float array;
  net_slack : float array;
  analysed_nets : int;
}

let net_delay (p : Params.t) ~length ~sinks =
  let r = p.Params.resistance_per_length *. length in
  let c = p.Params.capacitance_per_length *. length in
  let loads = float_of_int sinks *. p.Params.pin_load in
  (* Driver charges the whole net; the distributed wire contributes the
     usual half-capacitance Elmore term. *)
  (p.Params.driver_resistance *. (c +. loads)) +. (r *. ((c /. 2.) +. loads))

(* One directed edge bundle per analysed net: driver cell, sink cells,
   and the net delay at the current placement. *)
type edge_bundle = { net_id : int; drv : int; snks : int array; delay : float }

let analyse_with (p : Params.t) (c : Netlist.Circuit.t) ~net_length =
  let n = Netlist.Circuit.num_cells c in
  let cells = c.Netlist.Circuit.cells in
  let is_endpoint i = cells.(i).Netlist.Cell.sequential in
  let bundles = ref [] and analysed = ref 0 in
  Array.iter
    (fun (net : Netlist.Net.t) ->
      let deg = Netlist.Net.degree net in
      if deg >= 2 && deg <= p.Params.max_net_degree then begin
        let drv = (Netlist.Net.driver net).Netlist.Net.cell in
        let snks =
          Netlist.Net.sinks net
          |> Array.map (fun (pin : Netlist.Net.pin) -> pin.Netlist.Net.cell)
          |> Array.to_list
          |> List.filter (fun s -> s <> drv)
          |> Array.of_list
        in
        if Array.length snks > 0 then begin
          incr analysed;
          let delay =
            net_delay p ~length:(net_length net) ~sinks:(Array.length snks)
          in
          bundles :=
            { net_id = net.Netlist.Net.id; drv; snks; delay } :: !bundles
        end
      end)
    c.Netlist.Circuit.nets;
  let bundles = Array.of_list !bundles in
  (* Fanout index: bundles driven by each cell. *)
  let fanout = Array.make n [] in
  let indeg = Array.make n 0 in
  Array.iteri
    (fun bi b ->
      fanout.(b.drv) <- bi :: fanout.(b.drv);
      Array.iter
        (fun s -> if not (is_endpoint s) then indeg.(s) <- indeg.(s) + 1)
        b.snks)
    bundles;
  (* Forward pass: Kahn topological order; arrival.(i) is the arrival at
     cell i's output.  Endpoints (sequential cells, pads) restart paths. *)
  let arrival = Array.make n 0. in
  let best_in = Array.make n 0. in
  let order = Array.make n 0 and order_len = ref 0 in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if is_endpoint i || indeg.(i) = 0 then Queue.add i queue
  done;
  let endpoint_arrival = ref 0. in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!order_len) <- i;
    incr order_len;
    arrival.(i) <-
      (if is_endpoint i then cells.(i).Netlist.Cell.delay
       else best_in.(i) +. cells.(i).Netlist.Cell.delay);
    if fanout.(i) = [] then
      endpoint_arrival := Float.max !endpoint_arrival arrival.(i);
    List.iter
      (fun bi ->
        let b = bundles.(bi) in
        let v = arrival.(i) +. b.delay in
        Array.iter
          (fun s ->
            if is_endpoint s then
              endpoint_arrival := Float.max !endpoint_arrival v
            else begin
              if v > best_in.(s) then best_in.(s) <- v;
              indeg.(s) <- indeg.(s) - 1;
              if indeg.(s) = 0 then Queue.add s queue
            end)
          b.snks)
      fanout.(i)
  done;
  if !order_len <> n then failwith "Sta.analyse: combinational cycle detected";
  let max_delay = !endpoint_arrival in
  (* Backward pass: required time at each cell output, then edge slacks. *)
  let req_out = Array.make n max_delay in
  let net_slack =
    Array.make (Netlist.Circuit.num_nets c) Float.infinity
  in
  for k = n - 1 downto 0 do
    let i = order.(k) in
    List.iter
      (fun bi ->
        let b = bundles.(bi) in
        Array.iter
          (fun s ->
            let req_in =
              if is_endpoint s then max_delay
              else req_out.(s) -. cells.(s).Netlist.Cell.delay
            in
            let cand = req_in -. b.delay in
            if cand < req_out.(i) then req_out.(i) <- cand;
            let slack = req_in -. (arrival.(i) +. b.delay) in
            if slack < net_slack.(b.net_id) then net_slack.(b.net_id) <- slack)
          b.snks)
      fanout.(i)
  done;
  { max_delay; arrival; net_slack; analysed_nets = !analysed }

let analyse p c (placement : Netlist.Placement.t) =
  let net_length net =
    Metrics.Wirelength.hpwl_net c ~x:placement.Netlist.Placement.x
      ~y:placement.Netlist.Placement.y net
  in
  analyse_with p c ~net_length

let lower_bound p c =
  (analyse_with p c ~net_length:(fun _ -> 0.)).max_delay
