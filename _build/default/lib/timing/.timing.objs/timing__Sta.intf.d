lib/timing/sta.mli: Netlist Params
