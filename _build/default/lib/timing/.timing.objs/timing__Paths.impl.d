lib/timing/paths.ml: Array Float Format Hashtbl List Metrics Netlist Params Queue Sta
