lib/timing/criticality.ml: Array Float Params Seq
