lib/timing/sta.ml: Array Float List Metrics Netlist Params Queue
