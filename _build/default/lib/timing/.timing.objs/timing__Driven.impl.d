lib/timing/driven.ml: Criticality Kraftwerk List Metrics Netlist Params Sta
