lib/timing/params.mli:
