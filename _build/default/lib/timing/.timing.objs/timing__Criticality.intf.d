lib/timing/criticality.mli: Params
