lib/timing/paths.mli: Format Netlist Params
