lib/timing/driven.mli: Kraftwerk Netlist Params
