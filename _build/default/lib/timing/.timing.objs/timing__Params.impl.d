lib/timing/params.ml:
