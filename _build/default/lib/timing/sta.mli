(** Static timing analysis: longest combinational path over the placed
    netlist with the paper's half-perimeter Elmore net delays (§5, §6.2).

    The combinational graph has an edge driver → sink for every analysed
    net; sequential cells and pads are path endpoints (paths start at
    their outputs with arrival 0 and end at their inputs).  Nets above
    [max_net_degree] pins are excluded, as the paper does for the avq
    circuits.  The netlist generator guarantees acyclicity; {!analyse}
    raises [Failure] if a combinational cycle slips through. *)

(** Analysis result. *)
type t = {
  max_delay : float;  (** longest path delay, seconds *)
  arrival : float array;  (** per cell: output arrival time *)
  net_slack : float array;
      (** per net: worst slack of its analysed edges; [infinity] for
          excluded or endpoint-free nets *)
  analysed_nets : int;  (** nets that contributed edges *)
}

(** [net_delay params ~length ~sinks] is the Elmore delay of a net with
    half-perimeter [length] driving [sinks] pin loads:
    r·L·(c·L/2 + sinks·C_pin). *)
val net_delay : Params.t -> length:float -> sinks:int -> float

(** [analyse params circuit placement] runs the analysis. *)
val analyse : Params.t -> Netlist.Circuit.t -> Netlist.Placement.t -> t

(** [lower_bound params circuit] is the paper's §6.2 optimisation lower
    bound: the longest path when every net has zero length (pure cell
    delays). *)
val lower_bound : Params.t -> Netlist.Circuit.t -> float
