type t = {
  resistance_per_length : float;
  capacitance_per_length : float;
  driver_resistance : float;
  pin_load : float;
  max_net_degree : int;
  critical_fraction : float;
  max_net_weight : float;
}

let default =
  {
    resistance_per_length = 25.5e3 *. 1e-6;
    capacitance_per_length = 242e-12 *. 1e-6;
    driver_resistance = 2e3;
    pin_load = 10e-15;
    max_net_degree = 60;
    critical_fraction = 0.03;
    max_net_weight = 32.;
  }
