(** A complete circuit: cells, nets, placement region and row structure.

    The circuit is immutable once built; cell positions live in separate
    {!Placement.t} values so many candidate placements can coexist. *)

type t = private {
  name : string;
  cells : Cell.t array;
  nets : Net.t array;
  region : Geometry.Rect.t;  (** the placement area (paper's W × H) *)
  row_height : float;
  cell_nets : int array array;  (** per cell, the ids of incident nets *)
}

(** [make ~name ~cells ~nets ~region ~row_height] validates consistency
    (cell ids equal their indices, pin references in range, positive row
    height) and precomputes the cell→nets incidence. *)
val make :
  name:string ->
  cells:Cell.t array ->
  nets:Net.t array ->
  region:Geometry.Rect.t ->
  row_height:float ->
  t

val num_cells : t -> int

val num_nets : t -> int

(** [num_movable c] is the number of cells with [fixed = false]. *)
val num_movable : t -> int

(** [movable_area c] is the total area of movable cells, [total_cell_area]
    includes fixed non-pad cells too (pads sit outside the core region and
    are excluded from both). *)
val movable_area : t -> float

val total_cell_area : t -> float

(** [utilization c] is the paper's [s]: total (non-pad) cell area divided
    by the placement-region area. *)
val utilization : t -> float

(** [num_rows c] is the number of standard-cell rows that fit the
    region. *)
val num_rows : t -> int

(** [average_cell_area c] averages over movable cells. *)
val average_cell_area : t -> float

(** [nets_of_cell c id] is the incidence list for a cell. *)
val nets_of_cell : t -> int -> int array

(** [pin_position c placement pin] is the absolute pin location given the
    owning cell's centre coordinates. *)
val pin_position : t -> x:float array -> y:float array -> Net.pin -> float * float
