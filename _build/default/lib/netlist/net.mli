(** Nets: hyperedges over cells.

    A pin references a cell by index plus an offset of the pin location
    from the cell centre.  By convention [pins.(0)] is the driver, which
    gives the timing analysis its signal direction; purely geometric code
    ignores the convention. *)

type pin = { cell : int; dx : float; dy : float }

type t = {
  id : int;  (** index into the netlist's net array *)
  name : string;
  pins : pin array;
}

(** [make ~id ~name pins] builds a net.  Raises [Invalid_argument] when
    fewer than two pins are given or two pins repeat the same cell at the
    same offset. *)
val make : id:int -> name:string -> pin array -> t

(** [degree n] is the pin count. *)
val degree : t -> int

(** [driver n] is [n.pins.(0)]. *)
val driver : t -> pin

(** [sinks n] is all pins but the driver. *)
val sinks : t -> pin array

(** [cells n] is the list of distinct cell ids on the net, in first-seen
    order. *)
val cells : t -> int list

val pp : Format.formatter -> t -> unit
