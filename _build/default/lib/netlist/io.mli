(** Plain-text serialisation of circuits and placements.

    A minimal line-oriented format so benchmark circuits and placements
    can be saved, diffed and reloaded:

    {v
    circuit <name>
    region <x_lo> <y_lo> <x_hi> <y_hi>
    rowheight <h>
    cell <name> <w> <h> <standard|block|pad> <fixed 0/1> <seq 0/1> <delay> <power>
    net <name> <cell>:<dx>:<dy> ...
    v}

    Cells are implicitly numbered in order of appearance; net pins refer to
    those numbers, first pin is the driver. *)

(** [write_circuit oc circuit] prints the circuit. *)
val write_circuit : out_channel -> Circuit.t -> unit

(** [read_circuit ic] parses a circuit.  Raises [Failure] with a line
    number on malformed input. *)
val read_circuit : in_channel -> Circuit.t

(** [write_placement oc placement] prints one [pos <id> <x> <y>] line per
    cell. *)
val write_placement : out_channel -> Placement.t -> unit

(** [read_placement ic ~num_cells] parses a placement with exactly
    [num_cells] entries. *)
val read_placement : in_channel -> num_cells:int -> Placement.t

(** File-based conveniences. *)
val save_circuit : string -> Circuit.t -> unit

val load_circuit : string -> Circuit.t

val save_placement : string -> Placement.t -> unit

val load_placement : string -> num_cells:int -> Placement.t
