type t = { x : float array; y : float array }

let create (c : Circuit.t) =
  let n = Circuit.num_cells c in
  let cx, cy = Geometry.Rect.center c.Circuit.region in
  let x = Array.make n 0. and y = Array.make n 0. in
  Array.iter
    (fun (cl : Cell.t) ->
      if Cell.movable cl then begin
        x.(cl.Cell.id) <- cx;
        y.(cl.Cell.id) <- cy
      end)
    c.Circuit.cells;
  { x; y }

let centered c ~fixed_positions =
  let p = create c in
  List.iter
    (fun (id, (px, py)) ->
      p.x.(id) <- px;
      p.y.(id) <- py)
    fixed_positions;
  p

let copy p = { x = Array.copy p.x; y = Array.copy p.y }

let cell_rect (c : Circuit.t) p id =
  let cl = c.Circuit.cells.(id) in
  Geometry.Rect.of_center ~cx:p.x.(id) ~cy:p.y.(id) ~w:cl.Cell.width
    ~h:cl.Cell.height

let clamp_to_region (c : Circuit.t) p =
  let r = c.Circuit.region in
  Array.iter
    (fun (cl : Cell.t) ->
      if Cell.movable cl then begin
        let id = cl.Cell.id in
        let hw = cl.Cell.width /. 2. and hh = cl.Cell.height /. 2. in
        let x_lo = r.Geometry.Rect.x_lo +. hw
        and x_hi = r.Geometry.Rect.x_hi -. hw in
        let y_lo = r.Geometry.Rect.y_lo +. hh
        and y_hi = r.Geometry.Rect.y_hi -. hh in
        if x_lo <= x_hi then
          p.x.(id) <- Float.min (Float.max p.x.(id) x_lo) x_hi
        else p.x.(id) <- (r.Geometry.Rect.x_lo +. r.Geometry.Rect.x_hi) /. 2.;
        if y_lo <= y_hi then
          p.y.(id) <- Float.min (Float.max p.y.(id) y_lo) y_hi
        else p.y.(id) <- (r.Geometry.Rect.y_lo +. r.Geometry.Rect.y_hi) /. 2.
      end)
    c.Circuit.cells

let displacement a b =
  assert (Array.length a.x = Array.length b.x);
  let acc = ref 0. in
  for i = 0 to Array.length a.x - 1 do
    let dx = a.x.(i) -. b.x.(i) and dy = a.y.(i) -. b.y.(i) in
    acc := !acc +. sqrt ((dx *. dx) +. (dy *. dy))
  done;
  !acc

let max_displacement a b =
  assert (Array.length a.x = Array.length b.x);
  let acc = ref 0. in
  for i = 0 to Array.length a.x - 1 do
    let dx = a.x.(i) -. b.x.(i) and dy = a.y.(i) -. b.y.(i) in
    let d = sqrt ((dx *. dx) +. (dy *. dy)) in
    if d > !acc then acc := d
  done;
  !acc
