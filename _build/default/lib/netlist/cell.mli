(** Circuit cells.

    A cell is anything that occupies placement area: standard cells, macro
    blocks, and I/O pads.  The Kraftwerk algorithm treats all three
    identically (the paper stresses that blocks and cells are not treated
    differently); the distinction only matters to legalisation and to the
    generator. *)

type kind =
  | Standard  (** a row-height standard cell *)
  | Block  (** a multi-row macro block *)
  | Pad  (** an I/O pad on the region boundary *)

type t = {
  id : int;  (** index into the netlist's cell array *)
  name : string;
  width : float;
  height : float;
  kind : kind;
  fixed : bool;  (** fixed cells keep their initial coordinates *)
  sequential : bool;  (** register/pad: a timing path endpoint *)
  delay : float;  (** intrinsic cell delay in seconds *)
  power : float;  (** dissipated power in watts (heat-driven placement) *)
}

(** [make ~id ~name ~width ~height ...] builds a cell; [fixed] defaults to
    [kind = Pad], [sequential] to [kind = Pad], [delay] and [power] to
    small kind-dependent defaults.  Raises [Invalid_argument] for
    non-positive dimensions. *)
val make :
  id:int ->
  name:string ->
  width:float ->
  height:float ->
  ?kind:kind ->
  ?fixed:bool ->
  ?sequential:bool ->
  ?delay:float ->
  ?power:float ->
  unit ->
  t

(** [area c] is [width *. height]. *)
val area : t -> float

(** [movable c] is [not c.fixed]. *)
val movable : t -> bool

val pp_kind : Format.formatter -> kind -> unit

val pp : Format.formatter -> t -> unit
