type t = {
  name : string;
  cells : Cell.t array;
  nets : Net.t array;
  region : Geometry.Rect.t;
  row_height : float;
  cell_nets : int array array;
}

let make ~name ~cells ~nets ~region ~row_height =
  if row_height <= 0. then invalid_arg "Circuit.make: non-positive row height";
  if Geometry.Rect.area region <= 0. then
    invalid_arg "Circuit.make: empty region";
  Array.iteri
    (fun i (c : Cell.t) ->
      if c.Cell.id <> i then invalid_arg "Circuit.make: cell id out of order")
    cells;
  let n = Array.length cells in
  let counts = Array.make n 0 in
  Array.iteri
    (fun i (net : Net.t) ->
      if net.Net.id <> i then invalid_arg "Circuit.make: net id out of order";
      Array.iter
        (fun (p : Net.pin) ->
          if p.Net.cell < 0 || p.Net.cell >= n then
            invalid_arg "Circuit.make: pin references unknown cell";
          counts.(p.Net.cell) <- counts.(p.Net.cell) + 1)
        net.Net.pins)
    nets;
  let cell_nets = Array.map (fun c -> Array.make c 0) counts in
  let cursor = Array.make n 0 in
  Array.iter
    (fun (net : Net.t) ->
      (* A cell may carry several pins of one net; record the net once per
         pin — consumers dedupe if needed, and multiplicity matters for
         the clique weights anyway. *)
      Array.iter
        (fun (p : Net.pin) ->
          cell_nets.(p.Net.cell).(cursor.(p.Net.cell)) <- net.Net.id;
          cursor.(p.Net.cell) <- cursor.(p.Net.cell) + 1)
        net.Net.pins)
    nets;
  { name; cells; nets; region; row_height; cell_nets }

let num_cells c = Array.length c.cells

let num_nets c = Array.length c.nets

let num_movable c =
  Array.fold_left (fun acc cl -> if Cell.movable cl then acc + 1 else acc) 0 c.cells

let movable_area c =
  Array.fold_left
    (fun acc cl -> if Cell.movable cl then acc +. Cell.area cl else acc)
    0. c.cells

let total_cell_area c =
  Array.fold_left
    (fun acc cl -> if cl.Cell.kind = Cell.Pad then acc else acc +. Cell.area cl)
    0. c.cells

let utilization c = total_cell_area c /. Geometry.Rect.area c.region

let num_rows c =
  int_of_float (Float.floor (Geometry.Rect.height c.region /. c.row_height))

let average_cell_area c =
  let m = num_movable c in
  if m = 0 then 0. else movable_area c /. float_of_int m

let nets_of_cell c id = c.cell_nets.(id)

let pin_position _c ~x ~y (p : Net.pin) =
  (x.(p.Net.cell) +. p.Net.dx, y.(p.Net.cell) +. p.Net.dy)
