type pin = { cell : int; dx : float; dy : float }

type t = { id : int; name : string; pins : pin array }

let make ~id ~name pins =
  if Array.length pins < 2 then invalid_arg "Net.make: needs at least two pins";
  let seen = Hashtbl.create (Array.length pins) in
  Array.iter
    (fun p ->
      let key = (p.cell, p.dx, p.dy) in
      if Hashtbl.mem seen key then invalid_arg "Net.make: duplicate pin";
      Hashtbl.add seen key ())
    pins;
  { id; name; pins }

let degree n = Array.length n.pins

let driver n = n.pins.(0)

let sinks n = Array.sub n.pins 1 (Array.length n.pins - 1)

let cells n =
  let seen = Hashtbl.create (Array.length n.pins) in
  Array.fold_left
    (fun acc p ->
      if Hashtbl.mem seen p.cell then acc
      else begin
        Hashtbl.add seen p.cell ();
        p.cell :: acc
      end)
    [] n.pins
  |> List.rev

let pp ppf n =
  Format.fprintf ppf "%s#%d(%d pins)" n.name n.id (Array.length n.pins)
