(** Cell positions for a circuit.

    The paper's placement vector p = (x₁…xₙ, y₁…yₙ)ᵀ, stored as two arrays
    of cell-centre coordinates indexed by cell id.  Fixed cells carry their
    pinned coordinates here as well; algorithms must not move them. *)

type t = { x : float array; y : float array }

(** [create circuit] places every movable cell at the region centre (the
    paper's §4.2 initialisation) and leaves fixed cells at (0,0) until
    {!pin_fixed} assigns them.  Prefer {!centered}. *)
val create : Circuit.t -> t

(** [centered circuit ~fixed_positions] is the §4.2 initial placement:
    movable cells at the region centre, fixed cells at their given
    coordinates ([fixed_positions] maps cell id to centre coordinates). *)
val centered : Circuit.t -> fixed_positions:(int * (float * float)) list -> t

(** [copy p] is a deep copy. *)
val copy : t -> t

(** [cell_rect circuit p id] is the rectangle occupied by cell [id]. *)
val cell_rect : Circuit.t -> t -> int -> Geometry.Rect.t

(** [clamp_to_region circuit p] moves every movable cell centre so its
    rectangle stays inside the placement region (cells larger than the
    region are centred). *)
val clamp_to_region : Circuit.t -> t -> unit

(** [displacement a b] is the total Euclidean displacement between two
    placements of the same circuit. *)
val displacement : t -> t -> float

(** [max_displacement a b] is the largest per-cell displacement. *)
val max_displacement : t -> t -> float
