let kind_to_string = function
  | Cell.Standard -> "standard"
  | Cell.Block -> "block"
  | Cell.Pad -> "pad"

let kind_of_string = function
  | "standard" -> Cell.Standard
  | "block" -> Cell.Block
  | "pad" -> Cell.Pad
  | s -> failwith ("unknown cell kind: " ^ s)

let write_circuit oc (c : Circuit.t) =
  Printf.fprintf oc "circuit %s\n" c.Circuit.name;
  let r = c.Circuit.region in
  Printf.fprintf oc "region %.17g %.17g %.17g %.17g\n" r.Geometry.Rect.x_lo
    r.Geometry.Rect.y_lo r.Geometry.Rect.x_hi r.Geometry.Rect.y_hi;
  Printf.fprintf oc "rowheight %.17g\n" c.Circuit.row_height;
  Array.iter
    (fun (cl : Cell.t) ->
      Printf.fprintf oc "cell %s %.17g %.17g %s %d %d %.17g %.17g\n" cl.Cell.name
        cl.Cell.width cl.Cell.height (kind_to_string cl.Cell.kind)
        (if cl.Cell.fixed then 1 else 0)
        (if cl.Cell.sequential then 1 else 0)
        cl.Cell.delay cl.Cell.power)
    c.Circuit.cells;
  Array.iter
    (fun (n : Net.t) ->
      Printf.fprintf oc "net %s" n.Net.name;
      Array.iter
        (fun (p : Net.pin) ->
          Printf.fprintf oc " %d:%.17g:%.17g" p.Net.cell p.Net.dx p.Net.dy)
        n.Net.pins;
      output_char oc '\n')
    c.Circuit.nets

let read_circuit ic =
  let name = ref "" in
  let region = ref None in
  let row_height = ref None in
  let cells = ref [] and num_cells = ref 0 in
  let nets = ref [] and num_nets = ref 0 in
  let lineno = ref 0 in
  let fail msg = failwith (Printf.sprintf "Io.read_circuit: line %d: %s" !lineno msg) in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       match String.split_on_char ' ' (String.trim line) with
       | [ "" ] -> ()
       | "circuit" :: rest -> name := String.concat " " rest
       | [ "region"; a; b; c; d ] ->
         region :=
           Some
             (Geometry.Rect.make ~x_lo:(float_of_string a)
                ~y_lo:(float_of_string b) ~x_hi:(float_of_string c)
                ~y_hi:(float_of_string d))
       | [ "rowheight"; h ] -> row_height := Some (float_of_string h)
       | [ "cell"; nm; w; h; kind; fixed; seq; delay; power ] ->
         let cell =
           Cell.make ~id:!num_cells ~name:nm ~width:(float_of_string w)
             ~height:(float_of_string h) ~kind:(kind_of_string kind)
             ~fixed:(int_of_string fixed = 1)
             ~sequential:(int_of_string seq = 1)
             ~delay:(float_of_string delay) ~power:(float_of_string power) ()
         in
         cells := cell :: !cells;
         incr num_cells
       | "net" :: nm :: pins ->
         if pins = [] then fail "net with no pins";
         let parse_pin s =
           match String.split_on_char ':' s with
           | [ c; dx; dy ] ->
             { Net.cell = int_of_string c; dx = float_of_string dx;
               dy = float_of_string dy }
           | _ -> fail ("bad pin: " ^ s)
         in
         let net =
           Net.make ~id:!num_nets ~name:nm
             (Array.of_list (List.map parse_pin pins))
         in
         nets := net :: !nets;
         incr num_nets
       | tok :: _ -> fail ("unknown directive: " ^ tok)
       | [] -> ()
     done
   with End_of_file -> ());
  let region = match !region with Some r -> r | None -> failwith "Io.read_circuit: missing region" in
  let row_height =
    match !row_height with Some h -> h | None -> failwith "Io.read_circuit: missing rowheight"
  in
  Circuit.make ~name:!name
    ~cells:(Array.of_list (List.rev !cells))
    ~nets:(Array.of_list (List.rev !nets))
    ~region ~row_height

let write_placement oc (p : Placement.t) =
  Array.iteri
    (fun i x -> Printf.fprintf oc "pos %d %.17g %.17g\n" i x p.Placement.y.(i))
    p.Placement.x

let read_placement ic ~num_cells =
  let x = Array.make num_cells 0. and y = Array.make num_cells 0. in
  let seen = Array.make num_cells false in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char ' ' (String.trim line) with
       | [ "" ] -> ()
       | [ "pos"; i; px; py ] ->
         let i = int_of_string i in
         if i < 0 || i >= num_cells then
           failwith "Io.read_placement: cell index out of range";
         x.(i) <- float_of_string px;
         y.(i) <- float_of_string py;
         seen.(i) <- true
       | _ -> failwith "Io.read_placement: malformed line"
     done
   with End_of_file -> ());
  Array.iteri
    (fun i s -> if not s then failwith (Printf.sprintf "Io.read_placement: missing cell %d" i))
    seen;
  { Placement.x; y }

let with_out file f =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in file f =
  let ic = open_in file in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let save_circuit file c = with_out file (fun oc -> write_circuit oc c)

let load_circuit file = with_in file read_circuit

let save_placement file p = with_out file (fun oc -> write_placement oc p)

let load_placement file ~num_cells =
  with_in file (fun ic -> read_placement ic ~num_cells)
