lib/netlist/placement.mli: Circuit Geometry
