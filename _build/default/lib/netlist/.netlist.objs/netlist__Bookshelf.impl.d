lib/netlist/bookshelf.ml: Array Cell Circuit Filename Float Fun Geometry Hashtbl List Net Placement Printf String
