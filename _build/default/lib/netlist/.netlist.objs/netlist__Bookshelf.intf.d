lib/netlist/bookshelf.mli: Circuit Placement
