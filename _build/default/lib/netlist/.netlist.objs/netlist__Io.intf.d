lib/netlist/io.mli: Circuit Placement
