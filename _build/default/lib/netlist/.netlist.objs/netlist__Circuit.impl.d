lib/netlist/circuit.ml: Array Cell Float Geometry Net
