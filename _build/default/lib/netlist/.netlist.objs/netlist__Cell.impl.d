lib/netlist/cell.ml: Format Option
