lib/netlist/placement.ml: Array Cell Circuit Float Geometry List
