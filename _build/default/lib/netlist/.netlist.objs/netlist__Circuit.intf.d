lib/netlist/circuit.mli: Cell Geometry Net
