lib/netlist/io.ml: Array Cell Circuit Fun Geometry List Net Placement Printf String
