type kind = Standard | Block | Pad

type t = {
  id : int;
  name : string;
  width : float;
  height : float;
  kind : kind;
  fixed : bool;
  sequential : bool;
  delay : float;
  power : float;
}

let make ~id ~name ~width ~height ?(kind = Standard) ?fixed ?sequential ?delay
    ?power () =
  if width <= 0. || height <= 0. then invalid_arg "Cell.make: non-positive size";
  let is_pad = kind = Pad in
  let fixed = Option.value fixed ~default:is_pad in
  let sequential = Option.value sequential ~default:is_pad in
  let delay =
    match delay with
    | Some d -> d
    | None -> ( match kind with Standard -> 0.1e-9 | Block -> 0.5e-9 | Pad -> 0.)
  in
  let power =
    match power with
    | Some p -> p
    | None -> (
      match kind with Standard -> 1e-5 | Block -> 1e-3 | Pad -> 0.)
  in
  { id; name; width; height; kind; fixed; sequential; delay; power }

let area c = c.width *. c.height

let movable c = not c.fixed

let pp_kind ppf = function
  | Standard -> Format.pp_print_string ppf "standard"
  | Block -> Format.pp_print_string ppf "block"
  | Pad -> Format.pp_print_string ppf "pad"

let pp ppf c =
  Format.fprintf ppf "%s#%d(%a %gx%g%s)" c.name c.id pp_kind c.kind c.width
    c.height
    (if c.fixed then " fixed" else "")
