(** Overlap and distribution measures for judging global-placement
    quality and legality. *)

(** [total_overlap circuit placement] is the summed pairwise overlap area
    of movable/non-pad cells.  Uses a sweep over a bucket grid, so it is
    near-linear for spread placements (quadratic only if everything
    stacks). *)
val total_overlap : Netlist.Circuit.t -> Netlist.Placement.t -> float

(** [overlap_ratio circuit placement] normalises {!total_overlap} by the
    total movable cell area; 1.0 means (on average) every cell fully
    overlaps another. *)
val overlap_ratio : Netlist.Circuit.t -> Netlist.Placement.t -> float

(** [density_stats circuit placement ~nx ~ny] splats cell area into an
    [nx × ny] grid and returns (max, mean, standard deviation) of bin
    utilisation (bin cell-area / bin area). *)
val density_stats :
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  nx:int ->
  ny:int ->
  float * float * float

(** [out_of_region_area circuit placement] is the total cell area lying
    outside the placement region (pads excluded). *)
val out_of_region_area : Netlist.Circuit.t -> Netlist.Placement.t -> float
