lib/metrics/wirelength.ml: Array Float Geometry Netlist
