lib/metrics/overlap.mli: Netlist
