lib/metrics/overlap.ml: Array Geometry List Netlist
