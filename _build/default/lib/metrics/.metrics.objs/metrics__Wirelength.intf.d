lib/metrics/wirelength.mli: Geometry Netlist
