let relevant (cl : Netlist.Cell.t) = cl.Netlist.Cell.kind <> Netlist.Cell.Pad

let total_overlap (c : Netlist.Circuit.t) (p : Netlist.Placement.t) =
  let cells =
    Array.to_list c.Netlist.Circuit.cells |> List.filter relevant
  in
  let rects =
    List.map
      (fun (cl : Netlist.Cell.t) ->
        Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
      cells
    |> Array.of_list
  in
  let n = Array.length rects in
  if n = 0 then 0.
  else begin
    (* Bucket cells by grid bin of their centre; compare within the
       3x3 neighbourhood.  Bin pitch = max cell extent so neighbours
       suffice. *)
    let max_w = ref 1e-9 and max_h = ref 1e-9 in
    Array.iter
      (fun r ->
        if Geometry.Rect.width r > !max_w then max_w := Geometry.Rect.width r;
        if Geometry.Rect.height r > !max_h then max_h := Geometry.Rect.height r)
      rects;
    let region = c.Netlist.Circuit.region in
    let nx =
      max 1 (int_of_float (Geometry.Rect.width region /. !max_w))
    in
    let ny =
      max 1 (int_of_float (Geometry.Rect.height region /. !max_h))
    in
    let nx = min nx 512 and ny = min ny 512 in
    let buckets = Array.make (nx * ny) [] in
    let bin_of r =
      let cx, cy = Geometry.Rect.center r in
      let bx =
        int_of_float
          ((cx -. region.Geometry.Rect.x_lo) /. Geometry.Rect.width region
          *. float_of_int nx)
      in
      let by =
        int_of_float
          ((cy -. region.Geometry.Rect.y_lo) /. Geometry.Rect.height region
          *. float_of_int ny)
      in
      (max 0 (min (nx - 1) bx), max 0 (min (ny - 1) by))
    in
    Array.iteri
      (fun i r ->
        let bx, by = bin_of r in
        buckets.((by * nx) + bx) <- i :: buckets.((by * nx) + bx))
      rects;
    let acc = ref 0. in
    Array.iteri
      (fun i r ->
        let bx, by = bin_of r in
        for dy = -1 to 1 do
          for dx = -1 to 1 do
            let bx' = bx + dx and by' = by + dy in
            if bx' >= 0 && bx' < nx && by' >= 0 && by' < ny then
              List.iter
                (fun j -> if j > i then acc := !acc +. Geometry.Rect.overlap_area r rects.(j))
                buckets.((by' * nx) + bx')
          done
        done)
      rects;
    !acc
  end

let overlap_ratio c p =
  let area = Netlist.Circuit.movable_area c in
  if area = 0. then 0. else total_overlap c p /. area

let density_stats (c : Netlist.Circuit.t) p ~nx ~ny =
  let g = Geometry.Grid2.create c.Netlist.Circuit.region ~nx ~ny in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if relevant cl then
        Geometry.Grid2.splat_rect g
          (Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
          (Netlist.Cell.area cl))
    c.Netlist.Circuit.cells;
  let bin_area = Geometry.Grid2.dx g *. Geometry.Grid2.dy g in
  let vals = Geometry.Grid2.values g in
  let n = float_of_int (Array.length vals) in
  let maxu = ref 0. and sum = ref 0. in
  Array.iter
    (fun v ->
      let u = v /. bin_area in
      if u > !maxu then maxu := u;
      sum := !sum +. u)
    vals;
  let mean = !sum /. n in
  let var = ref 0. in
  Array.iter
    (fun v ->
      let d = (v /. bin_area) -. mean in
      var := !var +. (d *. d))
    vals;
  (!maxu, mean, sqrt (!var /. n))

let out_of_region_area (c : Netlist.Circuit.t) p =
  Array.fold_left
    (fun acc (cl : Netlist.Cell.t) ->
      if relevant cl then begin
        let r = Netlist.Placement.cell_rect c p cl.Netlist.Cell.id in
        let inside =
          Geometry.Rect.overlap_area r c.Netlist.Circuit.region
        in
        acc +. (Geometry.Rect.area r -. inside)
      end
      else acc)
    0. c.Netlist.Circuit.cells
