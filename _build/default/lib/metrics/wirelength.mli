(** Wire-length measures.

    The paper reports half-perimeter wire length (HPWL): per net, the half
    perimeter of the bounding rectangle of its pins, summed over nets
    (§6).  The quadratic clique length is the objective of eq. (1) and is
    useful for monitoring the solver. *)

(** [hpwl_net circuit ~x ~y net] is the half perimeter of one net's pin
    bounding box. *)
val hpwl_net :
  Netlist.Circuit.t -> x:float array -> y:float array -> Netlist.Net.t -> float

(** [hpwl circuit placement] sums {!hpwl_net} over all nets. *)
val hpwl : Netlist.Circuit.t -> Netlist.Placement.t -> float

(** [weighted_hpwl circuit placement ~weights] scales each net's
    half perimeter by [weights.(net.id)]. *)
val weighted_hpwl :
  Netlist.Circuit.t -> Netlist.Placement.t -> weights:float array -> float

(** [quadratic circuit placement] is the clique-model squared wire length:
    for each net of degree k, the sum over its pin pairs of squared
    Euclidean pin distance weighted 1/k (paper §2.1). *)
val quadratic : Netlist.Circuit.t -> Netlist.Placement.t -> float

(** [bbox_net circuit ~x ~y net] is the net's pin bounding box. *)
val bbox_net :
  Netlist.Circuit.t ->
  x:float array ->
  y:float array ->
  Netlist.Net.t ->
  Geometry.Rect.t
