let bbox_net c ~x ~y (net : Netlist.Net.t) =
  let x_lo = ref Float.infinity and x_hi = ref Float.neg_infinity in
  let y_lo = ref Float.infinity and y_hi = ref Float.neg_infinity in
  Array.iter
    (fun pin ->
      let px, py = Netlist.Circuit.pin_position c ~x ~y pin in
      if px < !x_lo then x_lo := px;
      if px > !x_hi then x_hi := px;
      if py < !y_lo then y_lo := py;
      if py > !y_hi then y_hi := py)
    net.Netlist.Net.pins;
  Geometry.Rect.make ~x_lo:!x_lo ~y_lo:!y_lo ~x_hi:!x_hi ~y_hi:!y_hi

let hpwl_net c ~x ~y net =
  let r = bbox_net c ~x ~y net in
  Geometry.Rect.width r +. Geometry.Rect.height r

let hpwl c (p : Netlist.Placement.t) =
  Array.fold_left
    (fun acc net -> acc +. hpwl_net c ~x:p.Netlist.Placement.x ~y:p.Netlist.Placement.y net)
    0. c.Netlist.Circuit.nets

let weighted_hpwl c (p : Netlist.Placement.t) ~weights =
  Array.fold_left
    (fun acc (net : Netlist.Net.t) ->
      acc
      +. weights.(net.Netlist.Net.id)
         *. hpwl_net c ~x:p.Netlist.Placement.x ~y:p.Netlist.Placement.y net)
    0. c.Netlist.Circuit.nets

let quadratic c (p : Netlist.Placement.t) =
  let x = p.Netlist.Placement.x and y = p.Netlist.Placement.y in
  Array.fold_left
    (fun acc (net : Netlist.Net.t) ->
      let pins = net.Netlist.Net.pins in
      let k = Array.length pins in
      let w = 1. /. float_of_int k in
      let sum = ref 0. in
      for i = 0 to k - 1 do
        let xi, yi = Netlist.Circuit.pin_position c ~x ~y pins.(i) in
        for j = i + 1 to k - 1 do
          let xj, yj = Netlist.Circuit.pin_position c ~x ~y pins.(j) in
          let dx = xi -. xj and dy = yi -. yj in
          sum := !sum +. (dx *. dx) +. (dy *. dy)
        done
      done;
      acc +. (w *. !sum))
    0. c.Netlist.Circuit.nets
