lib/geometry/grid2.mli: Rect
