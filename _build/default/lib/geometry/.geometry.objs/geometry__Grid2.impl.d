lib/geometry/grid2.ml: Array Float Rect
