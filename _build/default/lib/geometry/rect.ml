type t = { x_lo : float; y_lo : float; x_hi : float; y_hi : float }

let make ~x_lo ~y_lo ~x_hi ~y_hi =
  if x_hi < x_lo || y_hi < y_lo then invalid_arg "Rect.make: inverted bounds";
  { x_lo; y_lo; x_hi; y_hi }

let of_center ~cx ~cy ~w ~h =
  if w < 0. || h < 0. then invalid_arg "Rect.of_center: negative size";
  { x_lo = cx -. (w /. 2.); y_lo = cy -. (h /. 2.);
    x_hi = cx +. (w /. 2.); y_hi = cy +. (h /. 2.) }

let width r = r.x_hi -. r.x_lo

let height r = r.y_hi -. r.y_lo

let area r = width r *. height r

let center r = ((r.x_lo +. r.x_hi) /. 2., (r.y_lo +. r.y_hi) /. 2.)

let contains r x y = x >= r.x_lo && x <= r.x_hi && y >= r.y_lo && y <= r.y_hi

let intersection a b =
  let x_lo = Float.max a.x_lo b.x_lo and x_hi = Float.min a.x_hi b.x_hi in
  let y_lo = Float.max a.y_lo b.y_lo and y_hi = Float.min a.y_hi b.y_hi in
  if x_lo < x_hi && y_lo < y_hi then Some { x_lo; y_lo; x_hi; y_hi } else None

let overlap_area a b =
  match intersection a b with Some r -> area r | None -> 0.

let union a b =
  { x_lo = Float.min a.x_lo b.x_lo; y_lo = Float.min a.y_lo b.y_lo;
    x_hi = Float.max a.x_hi b.x_hi; y_hi = Float.max a.y_hi b.y_hi }

let expand r margin =
  make ~x_lo:(r.x_lo -. margin) ~y_lo:(r.y_lo -. margin)
    ~x_hi:(r.x_hi +. margin) ~y_hi:(r.y_hi +. margin)

let clamp_point r x y =
  (Float.min (Float.max x r.x_lo) r.x_hi, Float.min (Float.max y r.y_lo) r.y_hi)

let pp ppf r =
  Format.fprintf ppf "[%g,%g .. %g,%g]" r.x_lo r.y_lo r.x_hi r.y_hi
