(** Axis-aligned rectangles.

    Rectangles are half-open in spirit but stored as [lo/hi] float bounds;
    degenerate (zero-area) rectangles are allowed. *)

type t = { x_lo : float; y_lo : float; x_hi : float; y_hi : float }

(** [make ~x_lo ~y_lo ~x_hi ~y_hi] builds a rectangle.  Raises
    [Invalid_argument] if a high bound is below the matching low bound. *)
val make : x_lo:float -> y_lo:float -> x_hi:float -> y_hi:float -> t

(** [of_center ~cx ~cy ~w ~h] is the [w]×[h] rectangle centred at
    ([cx], [cy]). *)
val of_center : cx:float -> cy:float -> w:float -> h:float -> t

(** [width r] and [height r] are the side lengths. *)
val width : t -> float

val height : t -> float

(** [area r] is [width r *. height r]. *)
val area : t -> float

(** [center r] is the centre point. *)
val center : t -> float * float

(** [contains r x y] tests point membership (closed on all sides). *)
val contains : t -> float -> float -> bool

(** [intersection a b] is the overlap rectangle, or [None] when the
    interiors are disjoint. *)
val intersection : t -> t -> t option

(** [overlap_area a b] is the area of the intersection ([0.] if none). *)
val overlap_area : t -> t -> float

(** [union a b] is the bounding box of both. *)
val union : t -> t -> t

(** [expand r margin] grows every side outward by [margin] (which may be
    negative as long as the result stays well-formed). *)
val expand : t -> float -> t

(** [clamp_point r x y] is the point of [r] closest to ([x], [y]). *)
val clamp_point : t -> float -> float -> float * float

(** [pp] formats as [[x_lo,y_lo .. x_hi,y_hi]]. *)
val pp : Format.formatter -> t -> unit
