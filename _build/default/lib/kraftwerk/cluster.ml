type clustering = {
  coarse : Netlist.Circuit.t;
  cluster_of : int array;
  members : int list array;
  coarse_fixed : (int * (float * float)) list;
}

(* Pairwise connectivity between movable standard cells: clique weight
   1/k summed over shared nets (big nets skipped — they carry little
   clustering signal and cost k²). *)
let build_affinity (c : Netlist.Circuit.t) ~clusterable =
  let adj : (int, float) Hashtbl.t array =
    Array.init (Netlist.Circuit.num_cells c) (fun _ -> Hashtbl.create 4)
  in
  Array.iter
    (fun (net : Netlist.Net.t) ->
      let k = Netlist.Net.degree net in
      if k <= 16 then begin
        let cells =
          Netlist.Net.cells net |> List.filter (fun id -> clusterable.(id))
        in
        let w = 1. /. float_of_int k in
        let rec pairs = function
          | [] -> ()
          | a :: rest ->
            List.iter
              (fun b ->
                let bump x y =
                  let prev = try Hashtbl.find adj.(x) y with Not_found -> 0. in
                  Hashtbl.replace adj.(x) y (prev +. w)
                in
                bump a b;
                bump b a)
              rest;
            pairs rest
        in
        pairs cells
      end)
    c.Netlist.Circuit.nets;
  adj

let cluster ?(seed = 1) ?max_cluster_area (c : Netlist.Circuit.t)
    ~fixed_positions =
  let n = Netlist.Circuit.num_cells c in
  let max_cluster_area =
    match max_cluster_area with
    | Some a -> a
    | None -> 6. *. Netlist.Circuit.average_cell_area c
  in
  let clusterable =
    Array.map
      (fun (cl : Netlist.Cell.t) ->
        Netlist.Cell.movable cl && cl.Netlist.Cell.kind = Netlist.Cell.Standard)
      c.Netlist.Circuit.cells
  in
  let adj = build_affinity c ~clusterable in
  (* FirstChoice: visit cells in shuffled order, merge each into its
     heaviest feasible neighbour's cluster. *)
  let group = Array.init n Fun.id in
  let rec find i = if group.(i) = i then i else find group.(i) in
  let area = Array.map Netlist.Cell.area c.Netlist.Circuit.cells in
  let order =
    Array.of_seq
      (Seq.filter (fun i -> clusterable.(i)) (Seq.init n Fun.id))
  in
  let rng = Numeric.Rng.create seed in
  Numeric.Rng.shuffle rng order;
  Array.iter
    (fun i ->
      let gi = find i in
      let best = ref None and best_w = ref 0. in
      Hashtbl.iter
        (fun j w ->
          let gj = find j in
          if gj <> gi && w > !best_w && area.(gi) +. area.(gj) <= max_cluster_area
          then begin
            best_w := w;
            best := Some gj
          end)
        adj.(i);
      match !best with
      | Some gj ->
        group.(gi) <- gj;
        area.(gj) <- area.(gj) +. area.(gi)
      | None -> ())
    order;
  (* Compact cluster ids, build coarse cells. *)
  let coarse_id = Array.make n (-1) in
  let next = ref 0 in
  let members_rev = ref [] in
  for i = 0 to n - 1 do
    let root = find i in
    if coarse_id.(root) = -1 then begin
      coarse_id.(root) <- !next;
      members_rev := [] :: !members_rev;
      incr next
    end;
    coarse_id.(i) <- coarse_id.(root)
  done;
  let members = Array.make !next [] in
  for i = n - 1 downto 0 do
    members.(coarse_id.(i)) <- i :: members.(coarse_id.(i))
  done;
  let rh = c.Netlist.Circuit.row_height in
  let coarse_cells =
    Array.init !next (fun cid ->
        match members.(cid) with
        | [ single ] ->
          let cl = c.Netlist.Circuit.cells.(single) in
          { cl with Netlist.Cell.id = cid }
        | group_members ->
          let total_area =
            List.fold_left
              (fun acc id -> acc +. Netlist.Cell.area c.Netlist.Circuit.cells.(id))
              0. group_members
          in
          let sequential =
            List.exists
              (fun id -> c.Netlist.Circuit.cells.(id).Netlist.Cell.sequential)
              group_members
          in
          let power =
            List.fold_left
              (fun acc id -> acc +. c.Netlist.Circuit.cells.(id).Netlist.Cell.power)
              0. group_members
          in
          Netlist.Cell.make ~id:cid
            ~name:(Printf.sprintf "cl%d" cid)
            ~width:(total_area /. rh) ~height:rh ~kind:Netlist.Cell.Standard
            ~sequential ~power ())
  in
  (* Coarse nets: flat nets with ≥ 2 distinct clusters. *)
  let coarse_nets = ref [] and coarse_net_count = ref 0 in
  Array.iter
    (fun (net : Netlist.Net.t) ->
      let clusters =
        Netlist.Net.cells net |> List.map (fun id -> coarse_id.(id))
        |> List.sort_uniq compare
      in
      match clusters with
      | _ :: _ :: _ ->
        (* Preserve driver-first ordering: the driver cell's cluster
           leads. *)
        let driver_cluster = coarse_id.((Netlist.Net.driver net).Netlist.Net.cell) in
        let ordered =
          driver_cluster :: List.filter (fun x -> x <> driver_cluster) clusters
        in
        let pins =
          List.map (fun cid -> { Netlist.Net.cell = cid; dx = 0.; dy = 0. }) ordered
          |> Array.of_list
        in
        coarse_nets :=
          Netlist.Net.make ~id:!coarse_net_count ~name:net.Netlist.Net.name pins
          :: !coarse_nets;
        incr coarse_net_count
      | [] | [ _ ] -> ())
    c.Netlist.Circuit.nets;
  let coarse =
    Netlist.Circuit.make
      ~name:(c.Netlist.Circuit.name ^ "+clustered")
      ~cells:coarse_cells
      ~nets:(Array.of_list (List.rev !coarse_nets))
      ~region:c.Netlist.Circuit.region ~row_height:rh
  in
  let coarse_fixed =
    List.map (fun (id, pos) -> (coarse_id.(id), pos)) fixed_positions
  in
  { coarse; cluster_of = coarse_id; members; coarse_fixed }

let expand t ~coarse_placement ~flat_placement =
  let golden = 2.399963 in
  Array.iteri
    (fun cid group_members ->
      let cx = coarse_placement.Netlist.Placement.x.(cid) in
      let cy = coarse_placement.Netlist.Placement.y.(cid) in
      List.iteri
        (fun k id ->
          (* Small deterministic sunflower spread around the cluster
             centre so the refinement starts from distinct points. *)
          let r = 0.8 *. sqrt (float_of_int k) in
          let a = golden *. float_of_int k in
          flat_placement.Netlist.Placement.x.(id) <- cx +. (r *. cos a);
          flat_placement.Netlist.Placement.y.(id) <- cy +. (r *. sin a))
        group_members)
    t.members

let place_multilevel ?seed config (c : Netlist.Circuit.t) ~fixed_positions
    placement =
  let t = cluster ?seed c ~fixed_positions in
  let coarse_p0 =
    Netlist.Placement.centered t.coarse ~fixed_positions:t.coarse_fixed
  in
  let coarse_state, _ = Placer.run config t.coarse coarse_p0 in
  let flat = Netlist.Placement.copy placement in
  expand t ~coarse_placement:coarse_state.Placer.placement ~flat_placement:flat;
  (* Flat refinement from the expanded placement. *)
  let state = Placer.init config c flat in
  ignore (Placer.continue_run state ~max_steps:config.Config.max_iterations);
  Netlist.Placement.clamp_to_region c state.Placer.placement;
  state.Placer.placement
