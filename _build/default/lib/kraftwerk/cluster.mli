(** Netlist clustering and multilevel placement.

    The paper motivates a fast mode for floorplanning ("a placement
    estimation during the floorplanning phase", §6.1).  Clustering takes
    that further, as GORDIAN-class placers did: connectivity-driven
    FirstChoice-style clustering merges tightly connected cells into
    clusters, the cluster netlist is placed with the normal algorithm,
    and the flat netlist is seeded from the cluster placement and
    refined with a few transformations.

    Clusters aggregate area (width = area / row height, height = one row
    height per row of area) and inherit the union of their members'
    connectivity; pads and fixed cells are never clustered. *)

type clustering = {
  coarse : Netlist.Circuit.t;  (** the cluster-level circuit *)
  cluster_of : int array;  (** flat cell id → coarse cell id *)
  members : int list array;  (** coarse cell id → flat member ids *)
  coarse_fixed : (int * (float * float)) list;
      (** pinned coordinates for the coarse circuit's fixed cells, given
          the flat fixed positions *)
}

(** [cluster ?seed ?max_cluster_area circuit ~fixed_positions] builds one
    level of clustering: each movable cell greedily merges with its most
    strongly connected neighbour (clique-weight sum over shared nets)
    while the merged area stays below [max_cluster_area] (default 6×
    the average cell area).  Fixed cells map to singleton coarse cells. *)
val cluster :
  ?seed:int ->
  ?max_cluster_area:float ->
  Netlist.Circuit.t ->
  fixed_positions:(int * (float * float)) list ->
  clustering

(** [expand clustering ~coarse_placement ~flat_placement] seats every
    flat cell at its cluster's position (members of one cluster spread
    in a small deterministic spiral so they do not sit on one exact
    point), writing into [flat_placement] (fixed cells untouched). *)
val expand :
  clustering ->
  coarse_placement:Netlist.Placement.t ->
  flat_placement:Netlist.Placement.t ->
  unit

(** [place_multilevel ?seed config circuit ~fixed_positions placement]
    is the two-level flow: cluster, place the coarse circuit with
    [config], expand, then refine the flat placement with up to
    [config.max_iterations] further transformations (they stop at the
    usual criterion).  Returns the flat placement. *)
val place_multilevel :
  ?seed:int ->
  Config.t ->
  Netlist.Circuit.t ->
  fixed_positions:(int * (float * float)) list ->
  Netlist.Placement.t ->
  Netlist.Placement.t
