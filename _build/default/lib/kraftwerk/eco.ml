let movable_standard_ids (c : Netlist.Circuit.t) =
  Array.to_list c.Netlist.Circuit.cells
  |> List.filter (fun (cl : Netlist.Cell.t) ->
         cl.Netlist.Cell.kind = Netlist.Cell.Standard && Netlist.Cell.movable cl)
  |> List.map (fun (cl : Netlist.Cell.t) -> cl.Netlist.Cell.id)
  |> Array.of_list

let rebuild (c : Netlist.Circuit.t) ~cells ~nets =
  Netlist.Circuit.make ~name:c.Netlist.Circuit.name ~cells ~nets
    ~region:c.Netlist.Circuit.region ~row_height:c.Netlist.Circuit.row_height

let rewire (c : Netlist.Circuit.t) rng ~fraction =
  if fraction < 0. || fraction > 1. then invalid_arg "Eco.rewire: bad fraction";
  let candidates = movable_standard_ids c in
  let nets =
    Array.map
      (fun (net : Netlist.Net.t) ->
        if Numeric.Rng.float rng 1. >= fraction then net
        else begin
          let d = max 2 (min 5 (Netlist.Net.degree net)) in
          (* Rejection-sample distinct cells for the replacement net. *)
          let chosen = Hashtbl.create d in
          while Hashtbl.length chosen < d do
            Hashtbl.replace chosen (Numeric.Rng.choose rng candidates) ()
          done;
          let pins =
            Hashtbl.fold (fun cid () acc -> cid :: acc) chosen []
            |> List.sort compare
            |> List.map (fun cid -> { Netlist.Net.cell = cid; dx = 0.; dy = 0. })
            |> Array.of_list
          in
          Netlist.Net.make ~id:net.Netlist.Net.id
            ~name:(net.Netlist.Net.name ^ "'") pins
        end)
      c.Netlist.Circuit.nets
  in
  rebuild c ~cells:c.Netlist.Circuit.cells ~nets

let resize (c : Netlist.Circuit.t) rng ~fraction ~scale_range:(lo, hi) =
  if fraction < 0. || fraction > 1. then invalid_arg "Eco.resize: bad fraction";
  if lo <= 0. || hi < lo then invalid_arg "Eco.resize: bad scale range";
  let cells =
    Array.map
      (fun (cl : Netlist.Cell.t) ->
        if
          cl.Netlist.Cell.kind = Netlist.Cell.Standard
          && Netlist.Cell.movable cl
          && Numeric.Rng.float rng 1. < fraction
        then
          { cl with
            Netlist.Cell.width =
              cl.Netlist.Cell.width *. Numeric.Rng.uniform rng lo hi }
        else cl)
      c.Netlist.Circuit.cells
  in
  rebuild c ~cells ~nets:c.Netlist.Circuit.nets

let add_cells (c : Netlist.Circuit.t) (p : Netlist.Placement.t) rng ~specs =
  let n0 = Netlist.Circuit.num_cells c in
  let candidates = movable_standard_ids c in
  let new_cells = ref [] and new_nets = ref [] in
  let new_positions = ref [] in
  let net_id = ref (Netlist.Circuit.num_nets c) in
  List.iteri
    (fun k (w, h) ->
      let id = n0 + k in
      new_cells :=
        Netlist.Cell.make ~id
          ~name:(Printf.sprintf "eco%d" k)
          ~width:w ~height:h ()
        :: !new_cells;
      let fanin = 2 + Numeric.Rng.int rng 3 in
      let chosen = Hashtbl.create fanin in
      while Hashtbl.length chosen < fanin do
        Hashtbl.replace chosen (Numeric.Rng.choose rng candidates) ()
      done;
      let neighbours = Hashtbl.fold (fun cid () acc -> cid :: acc) chosen [] in
      let cx =
        List.fold_left (fun a cid -> a +. p.Netlist.Placement.x.(cid)) 0. neighbours
        /. float_of_int fanin
      in
      let cy =
        List.fold_left (fun a cid -> a +. p.Netlist.Placement.y.(cid)) 0. neighbours
        /. float_of_int fanin
      in
      new_positions := (cx, cy) :: !new_positions;
      let pins =
        (List.sort compare neighbours @ [ id ])
        |> List.map (fun cid -> { Netlist.Net.cell = cid; dx = 0.; dy = 0. })
        |> Array.of_list
      in
      new_nets :=
        Netlist.Net.make ~id:!net_id ~name:(Printf.sprintf "eco_n%d" k) pins
        :: !new_nets;
      incr net_id)
    specs;
  let cells =
    Array.append c.Netlist.Circuit.cells
      (Array.of_list (List.rev !new_cells))
  in
  let nets =
    Array.append c.Netlist.Circuit.nets (Array.of_list (List.rev !new_nets))
  in
  let circuit = rebuild c ~cells ~nets in
  let added = Array.of_list (List.rev !new_positions) in
  let x = Array.append p.Netlist.Placement.x (Array.map fst added) in
  let y = Array.append p.Netlist.Placement.y (Array.map snd added) in
  (circuit, { Netlist.Placement.x; y })

let replace ?hooks config circuit placement ~max_steps =
  let state = Placer.init config circuit placement in
  let reports = Placer.continue_run ?hooks state ~max_steps in
  (state.Placer.placement, reports)
