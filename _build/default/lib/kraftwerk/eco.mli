(** Engineering-change-order support (paper §5, "ECO and Interaction with
    Logic Synthesis").

    Netlist edits produce small density deviations; re-running placement
    transformations from the existing placement turns those into small
    additional forces, so the surroundings shift only slightly and the
    relative placement is preserved.  The helpers below build edited
    circuits; {!replace} performs the incremental re-placement. *)

(** [rewire circuit rng ~fraction] replaces [fraction] of the nets with
    fresh random nets over the same cells (same net count and ids) —
    modelling local resynthesis. *)
val rewire :
  Netlist.Circuit.t -> Numeric.Rng.t -> fraction:float -> Netlist.Circuit.t

(** [resize circuit rng ~fraction ~scale_range:(lo, hi)] multiplies the
    widths of a random [fraction] of movable standard cells by a factor
    uniform in [lo, hi] — modelling gate resizing. *)
val resize :
  Netlist.Circuit.t ->
  Numeric.Rng.t ->
  fraction:float ->
  scale_range:float * float ->
  Netlist.Circuit.t

(** [add_cells circuit placement rng ~specs] appends one movable standard
    cell per [(width, height)] in [specs], wires each to a few random
    existing cells, and returns the extended circuit plus an extended
    placement that seats each new cell at the centroid of its neighbours
    (old cells keep their ids and coordinates). *)
val add_cells :
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  Numeric.Rng.t ->
  specs:(float * float) list ->
  Netlist.Circuit.t * Netlist.Placement.t

(** [replace ?hooks config circuit placement ~max_steps] runs up to
    [max_steps] placement transformations starting from [placement]
    (fresh force accumulator) and returns the adapted placement with the
    step reports. *)
val replace :
  ?hooks:Placer.hooks ->
  Config.t ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  max_steps:int ->
  Netlist.Placement.t * Placer.step_report list
