lib/kraftwerk/cluster.ml: Array Config Fun Hashtbl List Netlist Numeric Placer Printf Seq
