lib/kraftwerk/cluster.mli: Config Netlist
