lib/kraftwerk/placer.ml: Array Config Density Geometry List Metrics Netlist Numeric Qp
