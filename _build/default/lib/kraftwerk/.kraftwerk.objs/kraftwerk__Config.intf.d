lib/kraftwerk/config.mli: Density Format Qp
