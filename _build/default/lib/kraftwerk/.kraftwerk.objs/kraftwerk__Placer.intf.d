lib/kraftwerk/placer.mli: Config Geometry Netlist
