lib/kraftwerk/eco.ml: Array Hashtbl List Netlist Numeric Placer Printf
