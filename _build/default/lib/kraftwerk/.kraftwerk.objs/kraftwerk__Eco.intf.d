lib/kraftwerk/eco.mli: Config Netlist Numeric Placer
