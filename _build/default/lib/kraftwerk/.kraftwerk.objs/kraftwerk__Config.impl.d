lib/kraftwerk/config.ml: Density Format Qp
