type field = { rows : int; cols : int; fx : float array; fy : float array }

let check_size ~rows ~cols density name =
  if rows <= 0 || cols <= 0 then invalid_arg (name ^ ": empty grid");
  if Array.length density <> rows * cols then invalid_arg (name ^ ": size mismatch")

let two_pi = 2. *. Float.pi

let direct_force_field ~rows ~cols ~hx ~hy density =
  check_size ~rows ~cols density "Poisson.direct_force_field";
  let fx = Array.make (rows * cols) 0. in
  let fy = Array.make (rows * cols) 0. in
  let cell_area = hx *. hy in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let ax = ref 0. and ay = ref 0. in
      for r' = 0 to rows - 1 do
        for c' = 0 to cols - 1 do
          if r <> r' || c <> c' then begin
            let d = density.((r' * cols) + c') in
            if d <> 0. then begin
              let dx = float_of_int (c - c') *. hx in
              let dy = float_of_int (r - r') *. hy in
              let r2 = (dx *. dx) +. (dy *. dy) in
              ax := !ax +. (d *. dx /. r2);
              ay := !ay +. (d *. dy /. r2)
            end
          end
        done
      done;
      fx.((r * cols) + c) <- !ax *. cell_area /. two_pi;
      fy.((r * cols) + c) <- !ay *. cell_area /. two_pi
    done
  done;
  { rows; cols; fx; fy }

let fft_force_field ~rows ~cols ~hx ~hy density =
  check_size ~rows ~cols density "Poisson.fft_force_field";
  let prows = Fft.next_pow2 (2 * rows) in
  let pcols = Fft.next_pow2 (2 * cols) in
  let n = prows * pcols in
  let src = Array.make n 0. in
  for r = 0 to rows - 1 do
    Array.blit density (r * cols) src (r * pcols) cols
  done;
  (* Force kernels indexed by offset (dr, dc) with wraparound for negative
     offsets, so the cyclic convolution on the padded grid equals the
     linear convolution on the original one. *)
  let kx = Array.make n 0. and ky = Array.make n 0. in
  let cell_area = hx *. hy in
  for dr = -(rows - 1) to rows - 1 do
    for dc = -(cols - 1) to cols - 1 do
      if dr <> 0 || dc <> 0 then begin
        let dx = float_of_int dc *. hx in
        let dy = float_of_int dr *. hy in
        let r2 = (dx *. dx) +. (dy *. dy) in
        let idx_r = if dr >= 0 then dr else prows + dr in
        let idx_c = if dc >= 0 then dc else pcols + dc in
        let i = (idx_r * pcols) + idx_c in
        kx.(i) <- dx /. r2 *. cell_area /. two_pi;
        ky.(i) <- dy /. r2 *. cell_area /. two_pi
      end
    done
  done;
  let conv_x = Fft.convolve2 ~rows:prows ~cols:pcols src kx in
  let conv_y = Fft.convolve2 ~rows:prows ~cols:pcols src ky in
  let fx = Array.make (rows * cols) 0. in
  let fy = Array.make (rows * cols) 0. in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      fx.((r * cols) + c) <- conv_x.((r * pcols) + c);
      fy.((r * cols) + c) <- conv_y.((r * pcols) + c)
    done
  done;
  { rows; cols; fx; fy }

let sor_potential ~rows ~cols ~hx ~hy ?(omega = 1.8) ?(tol = 1e-7) ?(max_iter = 10_000)
    density =
  check_size ~rows ~cols density "Poisson.sor_potential";
  let phi = Array.make (rows * cols) 0. in
  let hx2 = hx *. hx and hy2 = hy *. hy in
  (* 5-point stencil of ∇²Φ = D with Φ = 0 outside the grid. *)
  let denom = 2. *. ((1. /. hx2) +. (1. /. hy2)) in
  let iter = ref 0 in
  let delta = ref Float.infinity in
  while !delta > tol && !iter < max_iter do
    delta := 0.;
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        let get rr cc =
          if rr < 0 || rr >= rows || cc < 0 || cc >= cols then 0.
          else phi.((rr * cols) + cc)
        in
        let i = (r * cols) + c in
        let sum =
          ((get r (c - 1) +. get r (c + 1)) /. hx2)
          +. ((get (r - 1) c +. get (r + 1) c) /. hy2)
        in
        let gs = (sum -. density.(i)) /. denom in
        let updated = phi.(i) +. (omega *. (gs -. phi.(i))) in
        let d = Float.abs (updated -. phi.(i)) in
        if d > !delta then delta := d;
        phi.(i) <- updated
      done
    done;
    incr iter
  done;
  phi

let gradient_force ~rows ~cols ~hx ~hy phi =
  check_size ~rows ~cols phi "Poisson.gradient_force";
  let fx = Array.make (rows * cols) 0. in
  let fy = Array.make (rows * cols) 0. in
  let get r c = phi.((r * cols) + c) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let dpx =
        if cols = 1 then 0.
        else if c = 0 then (get r 1 -. get r 0) /. hx
        else if c = cols - 1 then (get r (cols - 1) -. get r (cols - 2)) /. hx
        else (get r (c + 1) -. get r (c - 1)) /. (2. *. hx)
      in
      let dpy =
        if rows = 1 then 0.
        else if r = 0 then (get 1 c -. get 0 c) /. hy
        else if r = rows - 1 then (get (rows - 1) c -. get (rows - 2) c) /. hy
        else (get (r + 1) c -. get (r - 1) c) /. (2. *. hy)
      in
      fx.((r * cols) + c) <- -.dpx;
      fy.((r * cols) + c) <- -.dpy
    done
  done;
  { rows; cols; fx; fy }

let max_magnitude f =
  let acc = ref 0. in
  for i = 0 to Array.length f.fx - 1 do
    let m = sqrt ((f.fx.(i) *. f.fx.(i)) +. (f.fy.(i) *. f.fy.(i))) in
    if m > !acc then acc := m
  done;
  !acc

let scale_field s f =
  Vec.scale s f.fx;
  Vec.scale s f.fy
