(** Radix-2 fast Fourier transforms.

    Used to evaluate the open-boundary force-field convolution of the
    paper's eq. (9) in O(G² log G) on a G×G density grid.  Data is held in
    separate real/imaginary arrays; 2-D data is row-major. *)

(** [is_pow2 n] is true when [n] is a positive power of two. *)
val is_pow2 : int -> bool

(** [next_pow2 n] is the smallest power of two ≥ [max 1 n]. *)
val next_pow2 : int -> int

(** [transform ~inverse re im] performs the in-place FFT of the complex
    sequence [re + i·im].  The inverse transform includes the 1/n
    normalisation.  Raises [Invalid_argument] unless the length is a
    power of two and both arrays agree. *)
val transform : inverse:bool -> float array -> float array -> unit

(** [transform2 ~inverse ~rows ~cols re im] performs the in-place 2-D FFT
    of a [rows]×[cols] row-major complex grid.  Both dimensions must be
    powers of two. *)
val transform2 :
  inverse:bool -> rows:int -> cols:int -> float array -> float array -> unit

(** [convolve2 ~rows ~cols a b] is the 2-D {e cyclic} convolution of two
    real [rows]×[cols] grids.  Callers wanting linear (open-boundary)
    convolution must zero-pad to at least twice the support first. *)
val convolve2 :
  rows:int -> cols:int -> float array -> float array -> float array
