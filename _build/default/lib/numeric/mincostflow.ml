type t = {
  n : int;
  (* Adjacency as growable parallel arrays; edge i and i lxor 1 are a
     forward/backward pair. *)
  mutable dst : int array;
  mutable cap : int array;
  mutable cost : float array;
  mutable len : int;
  mutable head : int list array; (* edge indices per node *)
  mutable solved : bool;
}

type edge = int

let create n =
  {
    n;
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    cost = Array.make 16 0.;
    len = 0;
    head = Array.make n [];
    solved = false;
  }

let push g dst cap cost =
  if g.len = Array.length g.dst then begin
    let grow a fill =
      let a' = Array.make (2 * g.len) fill in
      Array.blit a 0 a' 0 g.len;
      a'
    in
    g.dst <- grow g.dst 0;
    g.cap <- grow g.cap 0;
    g.cost <- grow g.cost 0.
  end;
  g.dst.(g.len) <- dst;
  g.cap.(g.len) <- cap;
  g.cost.(g.len) <- cost;
  g.len <- g.len + 1

let add_edge g ~src ~dst ~capacity ~cost =
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
    invalid_arg "Mincostflow.add_edge: node out of range";
  if capacity < 0 then invalid_arg "Mincostflow.add_edge: negative capacity";
  let e = g.len in
  push g dst capacity cost;
  push g src 0 (-.cost);
  g.head.(src) <- e :: g.head.(src);
  g.head.(dst) <- (e + 1) :: g.head.(dst);
  e

(* A tiny binary heap of (distance, node). *)
module Heap = struct
  type t = { mutable data : (float * int) array; mutable size : int }

  let create () = { data = Array.make 16 (0., 0); size = 0 }

  let push h x =
    if h.size = Array.length h.data then begin
      let d = Array.make (2 * h.size) (0., 0) in
      Array.blit h.data 0 d 0 h.size;
      h.data <- d
    end;
    h.data.(h.size) <- x;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

let solve g ~source ~sink ?(max_flow = max_int) () =
  if g.solved then invalid_arg "Mincostflow.solve: already solved";
  g.solved <- true;
  let potential = Array.make g.n 0. in
  (* Bellman–Ford once to admit negative edge costs. *)
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds <= g.n do
    changed := false;
    incr rounds;
    for e = 0 to g.len - 1 do
      if g.cap.(e) > 0 then begin
        let u = g.dst.(e lxor 1) and v = g.dst.(e) in
        if potential.(u) +. g.cost.(e) < potential.(v) -. 1e-12 then begin
          potential.(v) <- potential.(u) +. g.cost.(e);
          changed := true
        end
      end
    done
  done;
  if !changed then failwith "Mincostflow.solve: negative cost cycle";
  let dist = Array.make g.n Float.infinity in
  let prev_edge = Array.make g.n (-1) in
  let total_flow = ref 0 and total_cost = ref 0. in
  let continue = ref true in
  while !continue && !total_flow < max_flow do
    (* Dijkstra on reduced costs. *)
    Array.fill dist 0 g.n Float.infinity;
    Array.fill prev_edge 0 g.n (-1);
    dist.(source) <- 0.;
    let heap = Heap.create () in
    Heap.push heap (0., source);
    let rec drain () =
      match Heap.pop heap with
      | None -> ()
      | Some (d, u) ->
        if d <= dist.(u) +. 1e-12 then
          List.iter
            (fun e ->
              if g.cap.(e) > 0 then begin
                let v = g.dst.(e) in
                (* Clamp the reduced cost at zero: accumulated float error
                   in the potentials can make it infinitesimally negative,
                   which would admit "improving" cycles and stall the
                   search.  Exact reduced costs of shortest-path-tree
                   edges are zero, so the clamp preserves optimality up
                   to float precision. *)
                let rc =
                  Float.max 0. (g.cost.(e) +. potential.(u) -. potential.(v))
                in
                let nd = d +. rc in
                if nd < dist.(v) -. 1e-12 then begin
                  dist.(v) <- nd;
                  prev_edge.(v) <- e;
                  Heap.push heap (nd, v)
                end
              end)
            g.head.(u);
        drain ()
    in
    drain ();
    if dist.(sink) = Float.infinity then continue := false
    else begin
      for v = 0 to g.n - 1 do
        if dist.(v) < Float.infinity then
          potential.(v) <- potential.(v) +. dist.(v)
      done;
      (* Bottleneck along the path. *)
      let bottleneck = ref (max_flow - !total_flow) in
      let v = ref sink in
      while !v <> source do
        let e = prev_edge.(!v) in
        if g.cap.(e) < !bottleneck then bottleneck := g.cap.(e);
        v := g.dst.(e lxor 1)
      done;
      let v = ref sink in
      while !v <> source do
        let e = prev_edge.(!v) in
        g.cap.(e) <- g.cap.(e) - !bottleneck;
        g.cap.(e lxor 1) <- g.cap.(e lxor 1) + !bottleneck;
        total_cost := !total_cost +. (float_of_int !bottleneck *. g.cost.(e));
        v := g.dst.(e lxor 1)
      done;
      total_flow := !total_flow + !bottleneck
    end
  done;
  (!total_flow, !total_cost)

let flow g e =
  (* Flow pushed forward equals the residual capacity of the reverse
     edge. *)
  g.cap.(e lxor 1)

let assignment ~costs =
  let n_agents = Array.length costs in
  if n_agents = 0 then [||]
  else begin
    let n_objects = Array.length costs.(0) in
    if n_agents > n_objects then
      invalid_arg "Mincostflow.assignment: more agents than objects";
    Array.iter
      (fun row ->
        if Array.length row <> n_objects then
          invalid_arg "Mincostflow.assignment: ragged cost matrix")
      costs;
    (* Nodes: 0 = source, 1 … n_agents = agents,
       n_agents+1 … n_agents+n_objects = objects, last = sink. *)
    let g = create (n_agents + n_objects + 2) in
    let source = 0 and sink = n_agents + n_objects + 1 in
    for i = 0 to n_agents - 1 do
      ignore (add_edge g ~src:source ~dst:(1 + i) ~capacity:1 ~cost:0.)
    done;
    let handles = Array.make_matrix n_agents n_objects 0 in
    for i = 0 to n_agents - 1 do
      for j = 0 to n_objects - 1 do
        handles.(i).(j) <-
          add_edge g ~src:(1 + i) ~dst:(1 + n_agents + j) ~capacity:1
            ~cost:costs.(i).(j)
      done
    done;
    for j = 0 to n_objects - 1 do
      ignore (add_edge g ~src:(1 + n_agents + j) ~dst:sink ~capacity:1 ~cost:0.)
    done;
    let pushed, _ = solve g ~source ~sink () in
    if pushed < n_agents then failwith "Mincostflow.assignment: infeasible";
    let result = Array.make n_agents (-1) in
    for i = 0 to n_agents - 1 do
      for j = 0 to n_objects - 1 do
        if flow g handles.(i).(j) > 0 then result.(i) <- j
      done
    done;
    result
  end
