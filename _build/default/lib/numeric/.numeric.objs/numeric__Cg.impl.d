lib/numeric/cg.ml: Array Float Sparse Vec
