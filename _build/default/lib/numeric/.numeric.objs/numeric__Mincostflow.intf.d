lib/numeric/mincostflow.mli:
