lib/numeric/fft.mli:
