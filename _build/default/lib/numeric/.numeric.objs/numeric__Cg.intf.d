lib/numeric/cg.mli: Sparse
