lib/numeric/rng.ml: Array Int64
