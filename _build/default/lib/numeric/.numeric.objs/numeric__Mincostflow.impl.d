lib/numeric/mincostflow.ml: Array Float List
