lib/numeric/fft.ml: Array Float
