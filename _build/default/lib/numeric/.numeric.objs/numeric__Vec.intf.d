lib/numeric/vec.mli:
