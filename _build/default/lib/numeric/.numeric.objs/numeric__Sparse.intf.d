lib/numeric/sparse.mli:
