lib/numeric/rng.mli:
