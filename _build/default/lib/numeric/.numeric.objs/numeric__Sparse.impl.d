lib/numeric/sparse.ml: Array Float
