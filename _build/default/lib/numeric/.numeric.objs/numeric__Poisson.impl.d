lib/numeric/poisson.ml: Array Fft Float Vec
