lib/numeric/poisson.mli:
