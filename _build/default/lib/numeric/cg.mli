(** Preconditioned conjugate gradient for symmetric positive-definite
    systems, as used to solve the extended placement equation
    C·p + d + e = 0 (paper, eq. 3 and §4.1). *)

(** Result of a solve. *)
type stats = {
  iterations : int;  (** CG iterations actually performed *)
  residual : float;  (** final 2-norm of the residual *)
  converged : bool;  (** [residual <= tol * max 1 (norm b)] *)
}

(** [solve ?tol ?max_iter ?x0 a b] solves [a x = b] with Jacobi
    (diagonal) preconditioning and returns the solution with its {!stats}.

    [tol] is a relative tolerance on the residual (default [1e-8]);
    [max_iter] defaults to [4 * dim + 50]; [x0] is the warm-start guess
    (default zero — placement transformations warm-start from the previous
    placement, which is what makes later iterations cheap).

    Raises [Invalid_argument] if a diagonal entry is non-positive, since
    the placement matrix is positive definite whenever every connected
    component is anchored by a fixed connection. *)
val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  Sparse.t ->
  float array ->
  float array * stats
