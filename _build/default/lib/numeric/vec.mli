(** Dense float-vector operations.

    Thin helpers over [float array] used by the sparse solvers.  All
    operations are length-checked with assertions; destructive variants are
    suffixed [_into]. *)

(** [create n] is a zero vector of length [n]. *)
val create : int -> float array

(** [copy v] is a fresh copy of [v]. *)
val copy : float array -> float array

(** [fill_zero v] sets every component of [v] to [0.]. *)
val fill_zero : float array -> unit

(** [dot a b] is the inner product of [a] and [b]. *)
val dot : float array -> float array -> float

(** [norm2 v] is the Euclidean norm of [v]. *)
val norm2 : float array -> float

(** [norm_inf v] is the maximum absolute component of [v]. *)
val norm_inf : float array -> float

(** [axpy ~alpha x y] updates [y <- alpha * x + y] in place. *)
val axpy : alpha:float -> float array -> float array -> unit

(** [scale alpha v] updates [v <- alpha * v] in place. *)
val scale : float -> float array -> unit

(** [add_into a b dst] writes the component-wise sum of [a] and [b]
    into [dst]. *)
val add_into : float array -> float array -> float array -> unit

(** [sub_into a b dst] writes [a - b] component-wise into [dst]. *)
val sub_into : float array -> float array -> float array -> unit

(** [mul_into a b dst] writes the component-wise product into [dst]. *)
val mul_into : float array -> float array -> float array -> unit

(** [max_abs_diff a b] is the infinity norm of [a - b]. *)
val max_abs_diff : float array -> float array -> float

(** [mean v] is the arithmetic mean; raises [Invalid_argument] on an
    empty vector. *)
val mean : float array -> float
