(** Minimum-cost maximum-flow on sparse directed graphs.

    Successive-shortest-paths with Johnson potentials (Dijkstra on the
    reduced costs), sufficient for the assignment-sized problems of the
    Domino-like detailed placer — the paper's final placement step is
    built on exactly this primitive ("iterative placement improvement by
    network flow methods", [17]). *)

type t

(** An edge handle for querying flow after {!solve}. *)
type edge

(** [create n] is an empty graph on nodes [0 … n−1]. *)
val create : int -> t

(** [add_edge g ~src ~dst ~capacity ~cost] adds a directed edge (and its
    zero-capacity reverse).  Negative costs are allowed; capacities must
    be non-negative. *)
val add_edge : t -> src:int -> dst:int -> capacity:int -> cost:float -> edge

(** [solve g ~source ~sink ?max_flow ()] pushes flow along successive
    cheapest paths until [max_flow] (default unlimited) or saturation;
    returns (total flow, total cost).  May be called once per graph. *)
val solve : t -> source:int -> sink:int -> ?max_flow:int -> unit -> int * float

(** [flow g e] is the flow routed through edge [e] after {!solve}. *)
val flow : t -> edge -> int

(** [assignment ~costs] solves the rectangular assignment problem: agent
    [i] gets object [j] minimising the total of [costs.(i).(j)], with at
    most one agent per object; requires #agents ≤ #objects.  Returns the
    chosen object per agent.  Convenience wrapper over the flow solver. *)
val assignment : costs:float array array -> int array
