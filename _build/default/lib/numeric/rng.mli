(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic component of the repository (benchmark generator,
    annealer, FM tie-breaking, clique sampling) draws from an explicit
    [Rng.t] so experiments are reproducible across runs and OCaml
    versions — the stdlib [Random] state is never touched. *)

type t

(** [create seed] is a generator seeded deterministically from [seed]. *)
val create : int -> t

(** [copy t] is an independent generator with the same state. *)
val copy : t -> t

(** [split t] derives a new independent generator from [t]'s stream. *)
val split : t -> t

(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [uniform t lo hi] is uniform in [lo, hi). *)
val uniform : t -> float -> float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [geometric t p] counts Bernoulli([p]) failures before the first
    success (support 0, 1, 2, …); [p] must be in (0, 1]. *)
val geometric : t -> float -> int

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] picks a uniform element of the non-empty array [a]. *)
val choose : t -> 'a array -> 'a
