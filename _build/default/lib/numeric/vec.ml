let create n = Array.make n 0.

let copy = Array.copy

let fill_zero v = Array.fill v 0 (Array.length v) 0.

let dot a b =
  assert (Array.length a = Array.length b);
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 v = sqrt (dot v v)

let norm_inf v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    let m = Float.abs v.(i) in
    if m > !acc then acc := m
  done;
  !acc

let axpy ~alpha x y =
  assert (Array.length x = Array.length y);
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let scale alpha v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- alpha *. v.(i)
  done

let add_into a b dst =
  assert (Array.length a = Array.length b && Array.length a = Array.length dst);
  for i = 0 to Array.length a - 1 do
    dst.(i) <- a.(i) +. b.(i)
  done

let sub_into a b dst =
  assert (Array.length a = Array.length b && Array.length a = Array.length dst);
  for i = 0 to Array.length a - 1 do
    dst.(i) <- a.(i) -. b.(i)
  done

let mul_into a b dst =
  assert (Array.length a = Array.length b && Array.length a = Array.length dst);
  for i = 0 to Array.length a - 1 do
    dst.(i) <- a.(i) *. b.(i)
  done

let max_abs_diff a b =
  assert (Array.length a = Array.length b);
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let m = Float.abs (a.(i) -. b.(i)) in
    if m > !acc then acc := m
  done;
  !acc

let mean v =
  if Array.length v = 0 then invalid_arg "Vec.mean: empty vector";
  Array.fold_left ( +. ) 0. v /. float_of_int (Array.length v)
