(** Abacus legalisation (Spindler, Schlichtmann & Johannes, ISPD 2008):
    cells are processed in order of increasing x and inserted into the
    row minimising their displacement; within a row, cells are packed by
    merging into clusters placed at their weighted-optimal position, so
    earlier cells shift minimally instead of leaving dead gaps.

    This is the default final placer of the repository's flows; the
    simpler {!Tetris} greedy is kept for comparison. *)

type report = {
  placement : Netlist.Placement.t;
  total_displacement : float;
  max_displacement : float;
  failed : int;
      (** cells that fit no segment at all (region overfull); they are
          left at their global position *)
}

(** [legalize circuit placement ?extra_obstacles ()] legalises every
    movable standard cell; blocks passed via [extra_obstacles] (plus all
    fixed non-pad cells) carve the rows into segments. *)
val legalize :
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  ?extra_obstacles:Geometry.Rect.t list ->
  unit ->
  report
