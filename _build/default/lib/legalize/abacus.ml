type cluster = {
  mutable cx : float; (* left edge of the cluster *)
  mutable e : float; (* total member weight *)
  mutable q : float; (* Σ eᵢ·(desiredᵢ − offsetᵢ within cluster) *)
  mutable w : float; (* total member width *)
  mutable members : int list; (* cell ids, rightmost first *)
}

type seg_state = {
  x_lo : float;
  x_hi : float;
  row : int;
  mutable used : float;
  mutable clusters : cluster list; (* rightmost first *)
}

type report = {
  placement : Netlist.Placement.t;
  total_displacement : float;
  max_displacement : float;
  failed : int;
}

let clamp v lo hi = if v < lo then lo else if v > hi then hi else v

let optimal_x seg ~q ~e ~w = clamp (q /. e) seg.x_lo (seg.x_hi -. w)

(* Simulate appending a cell with desired left edge [x'] and width
   [w_cell]; returns the cell's final left edge without mutating. *)
let trial seg ~desired_left ~w_cell =
  let x' = clamp desired_left seg.x_lo (seg.x_hi -. w_cell) in
  let e = ref 1. and q = ref x' and w = ref w_cell in
  let x_c = ref (optimal_x seg ~q:!q ~e:!e ~w:!w) in
  let rec cascade = function
    | [] -> ()
    | (c : cluster) :: rest ->
      if c.cx +. c.w > !x_c +. 1e-9 then begin
        q := c.q +. (!q -. (!e *. c.w));
        e := c.e +. !e;
        w := c.w +. !w;
        x_c := optimal_x seg ~q:!q ~e:!e ~w:!w;
        cascade rest
      end
  in
  cascade seg.clusters;
  !x_c +. !w -. w_cell

(* Commit the same append, mutating the segment. *)
let commit seg ~desired_left ~w_cell ~cell_id =
  let x' = clamp desired_left seg.x_lo (seg.x_hi -. w_cell) in
  let cur =
    { cx = 0.; e = 1.; q = x'; w = w_cell; members = [ cell_id ] }
  in
  cur.cx <- optimal_x seg ~q:cur.q ~e:cur.e ~w:cur.w;
  let rec cascade () =
    match seg.clusters with
    | (c : cluster) :: rest when c.cx +. c.w > cur.cx +. 1e-9 ->
      c.q <- c.q +. (cur.q -. (cur.e *. c.w));
      c.e <- c.e +. cur.e;
      c.w <- c.w +. cur.w;
      c.members <- cur.members @ c.members;
      c.cx <- optimal_x seg ~q:c.q ~e:c.e ~w:c.w;
      seg.clusters <- rest;
      cur.cx <- c.cx;
      cur.e <- c.e;
      cur.q <- c.q;
      cur.w <- c.w;
      cur.members <- c.members;
      cascade ()
    | _ -> ()
  in
  cascade ();
  seg.clusters <- cur :: seg.clusters;
  seg.used <- seg.used +. w_cell

let legalize (c : Netlist.Circuit.t) (p : Netlist.Placement.t)
    ?(extra_obstacles = []) () =
  let fixed_obstacles =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter_map (fun (cl : Netlist.Cell.t) ->
           if cl.Netlist.Cell.fixed && cl.Netlist.Cell.kind <> Netlist.Cell.Pad
           then Some (Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
           else None)
  in
  let row_segments =
    Rows.build c ~obstacles:(extra_obstacles @ fixed_obstacles)
  in
  let segs =
    Array.map
      (List.map (fun (s : Rows.segment) ->
           {
             x_lo = s.Rows.x_lo;
             x_hi = s.Rows.x_hi;
             row = s.Rows.row;
             used = 0.;
             clusters = [];
           }))
      row_segments
  in
  let nrows = Array.length segs in
  let targets =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter (fun (cl : Netlist.Cell.t) ->
           Netlist.Cell.movable cl && cl.Netlist.Cell.kind = Netlist.Cell.Standard)
    |> List.sort (fun (a : Netlist.Cell.t) b ->
           Float.compare
             p.Netlist.Placement.x.(a.Netlist.Cell.id)
             p.Netlist.Placement.x.(b.Netlist.Cell.id))
  in
  let failed = ref 0 in
  List.iter
    (fun (cl : Netlist.Cell.t) ->
      let id = cl.Netlist.Cell.id in
      let w = cl.Netlist.Cell.width in
      let desired_left = p.Netlist.Placement.x.(id) -. (w /. 2.) in
      let desired_y = p.Netlist.Placement.y.(id) in
      let home_row = Rows.row_of_y c desired_y in
      let best = ref None and best_cost = ref Float.infinity in
      let consider seg =
        if seg.used +. w <= seg.x_hi -. seg.x_lo +. 1e-9 then begin
          let pos = trial seg ~desired_left ~w_cell:w in
          let dy = Rows.row_center_y c seg.row -. desired_y in
          let cost = Float.abs (pos -. desired_left) +. Float.abs dy in
          if cost < !best_cost then begin
            best_cost := cost;
            best := Some seg
          end
        end
      in
      let try_row r = if r >= 0 && r < nrows then List.iter consider segs.(r) in
      try_row home_row;
      let offset = ref 1 in
      let continue = ref true in
      while !continue do
        let dy =
          (float_of_int !offset -. 1.) *. c.Netlist.Circuit.row_height
        in
        if dy > !best_cost then continue := false
        else begin
          try_row (home_row - !offset);
          try_row (home_row + !offset);
          incr offset;
          if !offset > nrows then continue := false
        end
      done;
      match !best with
      | Some seg -> commit seg ~desired_left ~w_cell:w ~cell_id:id
      | None -> incr failed)
    targets;
  (* Read final positions off the cluster structure. *)
  let out = Netlist.Placement.copy p in
  Array.iter
    (List.iter (fun seg ->
         List.iter
           (fun cluster ->
             let members = List.rev cluster.members in
             let cursor = ref cluster.cx in
             List.iter
               (fun id ->
                 let cl = c.Netlist.Circuit.cells.(id) in
                 out.Netlist.Placement.x.(id) <- !cursor +. (cl.Netlist.Cell.width /. 2.);
                 out.Netlist.Placement.y.(id) <- Rows.row_center_y c seg.row;
                 cursor := !cursor +. cl.Netlist.Cell.width)
               members)
           seg.clusters))
    segs;
  let total = ref 0. and maxd = ref 0. in
  List.iter
    (fun (cl : Netlist.Cell.t) ->
      let id = cl.Netlist.Cell.id in
      let dx = out.Netlist.Placement.x.(id) -. p.Netlist.Placement.x.(id) in
      let dy = out.Netlist.Placement.y.(id) -. p.Netlist.Placement.y.(id) in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      total := !total +. d;
      if d > !maxd then maxd := d)
    targets;
  {
    placement = out;
    total_displacement = !total;
    max_displacement = !maxd;
    failed = !failed;
  }
