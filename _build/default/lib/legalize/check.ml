type violation =
  | Outside_region of int
  | Off_row of int
  | Overlap of int * int

let pp_violation ppf = function
  | Outside_region id -> Format.fprintf ppf "cell %d outside region" id
  | Off_row id -> Format.fprintf ppf "cell %d not aligned to a row" id
  | Overlap (a, b) -> Format.fprintf ppf "cells %d and %d overlap" a b

let check (c : Netlist.Circuit.t) (p : Netlist.Placement.t) ?(tol = 1e-6) () =
  let violations = ref [] in
  let region = c.Netlist.Circuit.region in
  let standard =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter (fun (cl : Netlist.Cell.t) ->
           Netlist.Cell.movable cl && cl.Netlist.Cell.kind = Netlist.Cell.Standard)
  in
  List.iter
    (fun (cl : Netlist.Cell.t) ->
      let id = cl.Netlist.Cell.id in
      let r = Netlist.Placement.cell_rect c p id in
      if
        r.Geometry.Rect.x_lo < region.Geometry.Rect.x_lo -. tol
        || r.Geometry.Rect.x_hi > region.Geometry.Rect.x_hi +. tol
        || r.Geometry.Rect.y_lo < region.Geometry.Rect.y_lo -. tol
        || r.Geometry.Rect.y_hi > region.Geometry.Rect.y_hi +. tol
      then violations := Outside_region id :: !violations;
      let row = Rows.row_of_y c p.Netlist.Placement.y.(id) in
      if Float.abs (p.Netlist.Placement.y.(id) -. Rows.row_center_y c row) > tol
      then violations := Off_row id :: !violations)
    standard;
  (* Overlaps: per row, sort by x and compare neighbours; also against
     fixed non-pad cells. *)
  let nrows = Netlist.Circuit.num_rows c in
  let rows = Array.make nrows [] in
  List.iter
    (fun (cl : Netlist.Cell.t) ->
      let row = Rows.row_of_y c p.Netlist.Placement.y.(cl.Netlist.Cell.id) in
      rows.(row) <- cl :: rows.(row))
    standard;
  let fixed_rects =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter_map (fun (cl : Netlist.Cell.t) ->
           if cl.Netlist.Cell.fixed && cl.Netlist.Cell.kind <> Netlist.Cell.Pad
           then Some (cl.Netlist.Cell.id, Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
           else None)
  in
  Array.iter
    (fun group ->
      let arr = Array.of_list group in
      Array.sort
        (fun (a : Netlist.Cell.t) b ->
          Float.compare
            p.Netlist.Placement.x.(a.Netlist.Cell.id)
            p.Netlist.Placement.x.(b.Netlist.Cell.id))
        arr;
      for i = 0 to Array.length arr - 2 do
        let a = arr.(i) and b = arr.(i + 1) in
        let a_hi =
          p.Netlist.Placement.x.(a.Netlist.Cell.id) +. (a.Netlist.Cell.width /. 2.)
        in
        let b_lo =
          p.Netlist.Placement.x.(b.Netlist.Cell.id) -. (b.Netlist.Cell.width /. 2.)
        in
        if a_hi > b_lo +. tol then
          violations := Overlap (a.Netlist.Cell.id, b.Netlist.Cell.id) :: !violations
      done;
      Array.iter
        (fun (cl : Netlist.Cell.t) ->
          let r = Netlist.Placement.cell_rect c p cl.Netlist.Cell.id in
          List.iter
            (fun (fid, fr) ->
              if Geometry.Rect.overlap_area r fr > tol then
                violations := Overlap (cl.Netlist.Cell.id, fid) :: !violations)
            fixed_rects)
        arr)
    rows;
  List.rev !violations

let is_legal c p = check c p () = []
