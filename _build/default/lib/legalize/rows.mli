(** Standard-cell row structure.

    The placement region is divided into horizontal rows of the circuit's
    row height.  Fixed blocks (or pre-legalised movable blocks) become
    obstacles that split rows into free segments. *)

(** One free interval of a row. *)
type segment = {
  row : int;  (** row index, bottom = 0 *)
  x_lo : float;
  x_hi : float;
  mutable frontier : float;  (** next free x during greedy packing *)
}

(** [row_center_y circuit row] is the y coordinate of a row's centre. *)
val row_center_y : Netlist.Circuit.t -> int -> float

(** [row_of_y circuit y] is the index of the row whose band contains
    [y], clamped to valid rows. *)
val row_of_y : Netlist.Circuit.t -> float -> int

(** [build circuit ~obstacles] computes the free segments of every row,
    removing the x-extents covered by each obstacle rectangle whose
    y-range intersects the row.  Segments narrower than one row height
    are dropped. *)
val build :
  Netlist.Circuit.t -> obstacles:Geometry.Rect.t list -> segment list array
