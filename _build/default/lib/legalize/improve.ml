let net_cost (c : Netlist.Circuit.t) (p : Netlist.Placement.t) net_id =
  Metrics.Wirelength.hpwl_net c ~x:p.Netlist.Placement.x ~y:p.Netlist.Placement.y
    c.Netlist.Circuit.nets.(net_id)

(* Distinct nets incident to a list of cells, via a stamp array. *)
let affected_nets (c : Netlist.Circuit.t) stamp stamp_val cells =
  let nets = ref [] in
  List.iter
    (fun id ->
      Array.iter
        (fun net_id ->
          if stamp.(net_id) <> stamp_val then begin
            stamp.(net_id) <- stamp_val;
            nets := net_id :: !nets
          end)
        (Netlist.Circuit.nets_of_cell c id))
    cells;
  !nets

let cost_of (c : Netlist.Circuit.t) p nets =
  List.fold_left (fun acc n -> acc +. net_cost c p n) 0. nets

let run ?(seed = 1) ?(passes = 3) ?(obstacles = []) (c : Netlist.Circuit.t)
    (p : Netlist.Placement.t) =
  let rng = Numeric.Rng.create seed in
  let all_obstacles =
    obstacles
    @ (Array.to_list c.Netlist.Circuit.cells
      |> List.filter_map (fun (cl : Netlist.Cell.t) ->
             if cl.Netlist.Cell.fixed && cl.Netlist.Cell.kind <> Netlist.Cell.Pad
             then Some (Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
             else None))
  in
  (* Per row, the obstacle x-intervals crossing the row band. *)
  let nrows = max 1 (Netlist.Circuit.num_rows c) in
  let row_blocked = Array.make nrows [] in
  for r = 0 to nrows - 1 do
    let y_lo =
      c.Netlist.Circuit.region.Geometry.Rect.y_lo
      +. (float_of_int r *. c.Netlist.Circuit.row_height)
    in
    let y_hi = y_lo +. c.Netlist.Circuit.row_height in
    row_blocked.(r) <-
      List.filter_map
        (fun (o : Geometry.Rect.t) ->
          if o.Geometry.Rect.y_hi > y_lo +. 1e-9 && o.Geometry.Rect.y_lo < y_hi -. 1e-9
          then Some (o.Geometry.Rect.x_lo, o.Geometry.Rect.x_hi)
          else None)
        all_obstacles
  done;
  (* Clip a slide gap to the free interval containing x within the row. *)
  let clip_gap row ~x ~gap_lo ~gap_hi =
    List.fold_left
      (fun (lo, hi) (b_lo, b_hi) ->
        if b_hi <= x then (Float.max lo b_hi, hi)
        else if b_lo >= x then (lo, Float.min hi b_lo)
        else (x, x) (* cell already inside an obstacle: freeze it *))
      (gap_lo, gap_hi) row_blocked.(row)
  in
  let stamp = Array.make (Netlist.Circuit.num_nets c) (-1) in
  let stamp_counter = ref 0 in
  let accepted = ref 0 and improvement = ref 0. in
  let movable =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter (fun (cl : Netlist.Cell.t) ->
           Netlist.Cell.movable cl && cl.Netlist.Cell.kind = Netlist.Cell.Standard)
    |> Array.of_list
  in
  let try_swap (a : Netlist.Cell.t) (b : Netlist.Cell.t) =
    let ia = a.Netlist.Cell.id and ib = b.Netlist.Cell.id in
    incr stamp_counter;
    let nets = affected_nets c stamp !stamp_counter [ ia; ib ] in
    let before = cost_of c p nets in
    let swap () =
      let tx = p.Netlist.Placement.x.(ia) and ty = p.Netlist.Placement.y.(ia) in
      p.Netlist.Placement.x.(ia) <- p.Netlist.Placement.x.(ib);
      p.Netlist.Placement.y.(ia) <- p.Netlist.Placement.y.(ib);
      p.Netlist.Placement.x.(ib) <- tx;
      p.Netlist.Placement.y.(ib) <- ty
    in
    swap ();
    let after = cost_of c p nets in
    if after < before -. 1e-9 then begin
      incr accepted;
      improvement := !improvement +. (before -. after)
    end
    else swap ()
  in
  let try_slide (a : Netlist.Cell.t) ~gap_lo ~gap_hi =
    let ia = a.Netlist.Cell.id in
    let hw = a.Netlist.Cell.width /. 2. in
    if gap_hi -. gap_lo >= a.Netlist.Cell.width -. 1e-9 then begin
      incr stamp_counter;
      let nets = affected_nets c stamp !stamp_counter [ ia ] in
      let x0 = p.Netlist.Placement.x.(ia) in
      let before = cost_of c p nets in
      let best_x = ref x0 and best_cost = ref before in
      let candidates =
        [ gap_lo +. hw; gap_hi -. hw; (gap_lo +. gap_hi) /. 2. ]
      in
      List.iter
        (fun x ->
          if x >= gap_lo +. hw -. 1e-9 && x <= gap_hi -. hw +. 1e-9 then begin
            p.Netlist.Placement.x.(ia) <- x;
            let cost = cost_of c p nets in
            if cost < !best_cost -. 1e-9 then begin
              best_cost := cost;
              best_x := x
            end
          end)
        candidates;
      p.Netlist.Placement.x.(ia) <- !best_x;
      if !best_cost < before -. 1e-9 then begin
        incr accepted;
        improvement := !improvement +. (before -. !best_cost)
      end
    end
  in
  for _pass = 1 to passes do
    (* Equal-width swap sweep: for each cell, a few random partners of
       the same width. *)
    let by_width = Hashtbl.create 16 in
    Array.iter
      (fun (cl : Netlist.Cell.t) ->
        let key = int_of_float (cl.Netlist.Cell.width *. 1000.) in
        let prev = try Hashtbl.find by_width key with Not_found -> [] in
        Hashtbl.replace by_width key (cl :: prev))
      movable;
    Hashtbl.iter
      (fun _ group ->
        let arr = Array.of_list group in
        if Array.length arr >= 2 then
          Array.iter
            (fun a ->
              for _ = 1 to 4 do
                let b = Numeric.Rng.choose rng arr in
                if b.Netlist.Cell.id <> a.Netlist.Cell.id then try_swap a b
              done)
            arr)
      by_width;
    (* In-segment slide sweep: recompute row order, slide each cell in
       the gap between its neighbours. *)
    let by_row = Hashtbl.create 64 in
    Array.iter
      (fun (cl : Netlist.Cell.t) ->
        let r = Rows.row_of_y c p.Netlist.Placement.y.(cl.Netlist.Cell.id) in
        let prev = try Hashtbl.find by_row r with Not_found -> [] in
        Hashtbl.replace by_row r (cl :: prev))
      movable;
    let region = c.Netlist.Circuit.region in
    Hashtbl.iter
      (fun _ group ->
        let arr = Array.of_list group in
        Array.sort
          (fun (a : Netlist.Cell.t) b ->
            Float.compare
              p.Netlist.Placement.x.(a.Netlist.Cell.id)
              p.Netlist.Placement.x.(b.Netlist.Cell.id))
          arr;
        Array.iteri
          (fun i a ->
            let left_edge (cl : Netlist.Cell.t) =
              p.Netlist.Placement.x.(cl.Netlist.Cell.id)
              -. (cl.Netlist.Cell.width /. 2.)
            in
            let right_edge (cl : Netlist.Cell.t) =
              p.Netlist.Placement.x.(cl.Netlist.Cell.id)
              +. (cl.Netlist.Cell.width /. 2.)
            in
            let gap_lo =
              if i = 0 then region.Geometry.Rect.x_lo else right_edge arr.(i - 1)
            in
            let gap_hi =
              if i = Array.length arr - 1 then region.Geometry.Rect.x_hi
              else left_edge arr.(i + 1)
            in
            let row = Rows.row_of_y c p.Netlist.Placement.y.(a.Netlist.Cell.id) in
            let gap_lo, gap_hi =
              clip_gap row ~x:p.Netlist.Placement.x.(a.Netlist.Cell.id) ~gap_lo
                ~gap_hi
            in
            try_slide a ~gap_lo ~gap_hi)
          arr)
      by_row
  done;
  (!accepted, !improvement)
