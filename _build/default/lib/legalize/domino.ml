type config = {
  neighborhood_rows : int;
  neighborhood_cols : int;
  max_group : int;
  window : int;
  passes : int;
}

let default_config =
  { neighborhood_rows = 4; neighborhood_cols = 8; max_group = 20; window = 4;
    passes = 2 }

let movable_standard (c : Netlist.Circuit.t) =
  Array.to_list c.Netlist.Circuit.cells
  |> List.filter (fun (cl : Netlist.Cell.t) ->
         Netlist.Cell.movable cl && cl.Netlist.Cell.kind = Netlist.Cell.Standard)

let nets_of_cells (c : Netlist.Circuit.t) stamp stamp_val ids =
  let nets = ref [] in
  List.iter
    (fun id ->
      Array.iter
        (fun net_id ->
          if stamp.(net_id) <> stamp_val then begin
            stamp.(net_id) <- stamp_val;
            nets := net_id :: !nets
          end)
        (Netlist.Circuit.nets_of_cell c id))
    ids;
  !nets

let hpwl_of (c : Netlist.Circuit.t) (p : Netlist.Placement.t) nets =
  List.fold_left
    (fun acc n ->
      acc
      +. Metrics.Wirelength.hpwl_net c ~x:p.Netlist.Placement.x
           ~y:p.Netlist.Placement.y c.Netlist.Circuit.nets.(n))
    0. nets

(* -------------------------------------------------------------- *)
(* Flow reassignment                                               *)

let flow_pass ?(config = default_config) (c : Netlist.Circuit.t)
    (p : Netlist.Placement.t) =
  let region = c.Netlist.Circuit.region in
  let stamp = Array.make (Netlist.Circuit.num_nets c) (-1) in
  let stamp_val = ref 0 in
  let moves = ref 0 and gain = ref 0. in
  (* Group cells by (width class, neighbourhood tile). *)
  let tile_h = float_of_int config.neighborhood_rows *. c.Netlist.Circuit.row_height in
  let tile_w = Geometry.Rect.width region /. float_of_int config.neighborhood_cols in
  let groups = Hashtbl.create 64 in
  List.iter
    (fun (cl : Netlist.Cell.t) ->
      let id = cl.Netlist.Cell.id in
      let tx =
        int_of_float ((p.Netlist.Placement.x.(id) -. region.Geometry.Rect.x_lo) /. tile_w)
      in
      let ty =
        int_of_float ((p.Netlist.Placement.y.(id) -. region.Geometry.Rect.y_lo) /. tile_h)
      in
      let key = (int_of_float (cl.Netlist.Cell.width *. 1000.), tx, ty) in
      let prev = try Hashtbl.find groups key with Not_found -> [] in
      Hashtbl.replace groups key (id :: prev))
    (movable_standard c);
  let process group =
    let ids = Array.of_list group in
    let n = Array.length ids in
    if n >= 2 then begin
      let slots = Array.map (fun id -> (p.Netlist.Placement.x.(id), p.Netlist.Placement.y.(id))) ids in
      incr stamp_val;
      let nets = nets_of_cells c stamp !stamp_val (Array.to_list ids) in
      let before = hpwl_of c p nets in
      (* Separable cost: cell i at slot j with all other cells at their
         current positions. *)
      let costs =
        Array.map
          (fun id ->
            let ox = p.Netlist.Placement.x.(id) and oy = p.Netlist.Placement.y.(id) in
            let row =
              Array.map
                (fun (sx, sy) ->
                  p.Netlist.Placement.x.(id) <- sx;
                  p.Netlist.Placement.y.(id) <- sy;
                  incr stamp_val;
                  let own = nets_of_cells c stamp !stamp_val [ id ] in
                  hpwl_of c p own)
                slots
            in
            p.Netlist.Placement.x.(id) <- ox;
            p.Netlist.Placement.y.(id) <- oy;
            row)
          ids
      in
      let choice = Numeric.Mincostflow.assignment ~costs in
      (* Apply the permutation, then verify the true (non-separable)
         objective and revert if it regressed. *)
      let old_pos = Array.map (fun id -> (p.Netlist.Placement.x.(id), p.Netlist.Placement.y.(id))) ids in
      let changed = ref 0 in
      Array.iteri
        (fun i id ->
          let sx, sy = slots.(choice.(i)) in
          if sx <> fst old_pos.(i) || sy <> snd old_pos.(i) then incr changed;
          p.Netlist.Placement.x.(id) <- sx;
          p.Netlist.Placement.y.(id) <- sy)
        ids;
      let after = hpwl_of c p nets in
      if after < before -. 1e-9 && !changed > 0 then begin
        moves := !moves + !changed;
        gain := !gain +. (before -. after)
      end
      else
        Array.iteri
          (fun i id ->
            p.Netlist.Placement.x.(id) <- fst old_pos.(i);
            p.Netlist.Placement.y.(id) <- snd old_pos.(i))
          ids
    end
  in
  Hashtbl.iter
    (fun _ group ->
      (* Split oversized groups so the assignment stays small. *)
      let rec chunks = function
        | [] -> ()
        | l ->
          let take = min config.max_group (List.length l) in
          let rec split k acc rest =
            if k = 0 then (List.rev acc, rest)
            else
              match rest with
              | [] -> (List.rev acc, [])
              | x :: tl -> split (k - 1) (x :: acc) tl
          in
          let first, rest = split take [] l in
          process first;
          chunks rest
      in
      chunks group)
    groups;
  (!moves, !gain)

(* -------------------------------------------------------------- *)
(* Window reordering                                               *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) l in
        List.map (fun perm -> x :: perm) (permutations rest))
      l

let reorder_pass ?(config = default_config) ?(obstacles = [])
    (c : Netlist.Circuit.t) (p : Netlist.Placement.t) =
  let all_obstacles =
    obstacles
    @ (Array.to_list c.Netlist.Circuit.cells
      |> List.filter_map (fun (cl : Netlist.Cell.t) ->
             if cl.Netlist.Cell.fixed && cl.Netlist.Cell.kind <> Netlist.Cell.Pad
             then Some (Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
             else None))
  in
  let stamp = Array.make (Netlist.Circuit.num_nets c) (-1) in
  let stamp_val = ref 0 in
  let improved = ref 0 and gain = ref 0. in
  (* Row membership from current y. *)
  let nrows = max 1 (Netlist.Circuit.num_rows c) in
  let rows = Array.make nrows [] in
  List.iter
    (fun (cl : Netlist.Cell.t) ->
      let r = Rows.row_of_y c p.Netlist.Placement.y.(cl.Netlist.Cell.id) in
      rows.(r) <- cl :: rows.(r))
    (movable_standard c);
  (* Two sweeps of disjoint windows (offset 0 and w/2) cover every
     neighbouring pair while keeping windows independent: a window only
     repacks within the span its own cells occupy, so the row stays
     legal. *)
  let sweep offset row_cells =
      let arr = Array.of_list row_cells in
      Array.sort
        (fun (a : Netlist.Cell.t) b ->
          Float.compare
            p.Netlist.Placement.x.(a.Netlist.Cell.id)
            p.Netlist.Placement.x.(b.Netlist.Cell.id))
        arr;
      let w = config.window in
      let i = ref offset in
      while !i + w <= Array.length arr do
        let cells = Array.sub arr !i w in
        let left_edge =
          p.Netlist.Placement.x.(cells.(0).Netlist.Cell.id)
          -. (cells.(0).Netlist.Cell.width /. 2.)
        in
        let right_edge =
          p.Netlist.Placement.x.(cells.(w - 1).Netlist.Cell.id)
          +. (cells.(w - 1).Netlist.Cell.width /. 2.)
        in
        let row_y = p.Netlist.Placement.y.(cells.(0).Netlist.Cell.id) in
        (* A window straddling an obstacle must not be repacked: the
           packed order could land a cell inside the obstacle. *)
        let blocked =
          List.exists
            (fun (o : Geometry.Rect.t) ->
              o.Geometry.Rect.y_lo < row_y +. (c.Netlist.Circuit.row_height /. 2.)
              && o.Geometry.Rect.y_hi > row_y -. (c.Netlist.Circuit.row_height /. 2.)
              && o.Geometry.Rect.x_lo < right_edge
              && o.Geometry.Rect.x_hi > left_edge)
            all_obstacles
        in
        if blocked then i := !i + w
        else begin
        incr stamp_val;
        let nets =
          nets_of_cells c stamp !stamp_val
            (Array.to_list (Array.map (fun (cl : Netlist.Cell.t) -> cl.Netlist.Cell.id) cells))
        in
        let original =
          Array.map (fun (cl : Netlist.Cell.t) -> p.Netlist.Placement.x.(cl.Netlist.Cell.id)) cells
        in
        let place_order order =
          let cursor = ref left_edge in
          List.iter
            (fun (cl : Netlist.Cell.t) ->
              p.Netlist.Placement.x.(cl.Netlist.Cell.id) <-
                !cursor +. (cl.Netlist.Cell.width /. 2.);
              cursor := !cursor +. cl.Netlist.Cell.width)
            order
        in
        let before = hpwl_of c p nets in
        let best_cost = ref before and best_order = ref None in
        List.iter
          (fun order ->
            place_order order;
            let cost = hpwl_of c p nets in
            if cost < !best_cost -. 1e-9 then begin
              best_cost := cost;
              best_order := Some order
            end)
          (permutations (Array.to_list cells));
        (match !best_order with
        | Some order ->
          place_order order;
          incr improved;
          gain := !gain +. (before -. !best_cost)
        | None ->
          Array.iteri
            (fun k (cl : Netlist.Cell.t) ->
              p.Netlist.Placement.x.(cl.Netlist.Cell.id) <- original.(k))
            cells);
          i := !i + w
        end
      done
  in
  Array.iter
    (fun row_cells ->
      sweep 0 row_cells;
      sweep (config.window / 2) row_cells)
    rows;
  (!improved, !gain)

let run ?(config = default_config) ?obstacles c p =
  let moves = ref 0 and gain = ref 0. in
  let continue = ref true and pass = ref 0 in
  while !continue && !pass < config.passes do
    incr pass;
    let m1, g1 = flow_pass ~config c p in
    let m2, g2 = reorder_pass ~config ?obstacles c p in
    moves := !moves + m1 + m2;
    gain := !gain +. g1 +. g2;
    if g1 +. g2 < 1e-9 then continue := false
  done;
  (!moves, !gain)
