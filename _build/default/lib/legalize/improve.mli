(** Legality-preserving local improvement — the detailed-placement role
    of the paper's final placer.

    Two move classes, both exact-legality-preserving:
    - {e equal-width swaps} between nearby standard cells;
    - {e in-segment slides} that re-centre a cell inside the free gap
      between its row neighbours at the wire-length-optimal x.

    Moves are accepted when the summed HPWL of the affected nets
    improves.  Deterministic given the seed. *)

(** [run ?seed ?passes ?obstacles circuit placement] mutates [placement];
    returns the number of accepted moves and the HPWL improvement.
    [obstacles] (block rectangles) clip the slide gaps so cells never
    slide into a block; fixed non-pad cells are always treated as
    obstacles. *)
val run :
  ?seed:int ->
  ?passes:int ->
  ?obstacles:Geometry.Rect.t list ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  int * float
