lib/legalize/rows.mli: Geometry Netlist
