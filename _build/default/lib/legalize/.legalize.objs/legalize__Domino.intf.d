lib/legalize/domino.mli: Geometry Netlist
