lib/legalize/check.mli: Format Netlist
