lib/legalize/abacus.mli: Geometry Netlist
