lib/legalize/rows.ml: Array Float Geometry List Netlist
