lib/legalize/improve.mli: Geometry Netlist
