lib/legalize/tetris.ml: Array Float List Netlist Rows
