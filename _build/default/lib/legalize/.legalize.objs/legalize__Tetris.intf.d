lib/legalize/tetris.mli: Geometry Netlist
