lib/legalize/check.ml: Array Float Format Geometry List Netlist Rows
