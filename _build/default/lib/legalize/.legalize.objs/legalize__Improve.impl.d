lib/legalize/improve.ml: Array Float Geometry Hashtbl List Metrics Netlist Numeric Rows
