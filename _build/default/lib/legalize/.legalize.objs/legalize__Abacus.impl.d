lib/legalize/abacus.ml: Array Float List Netlist Rows
