lib/legalize/domino.ml: Array Float Geometry Hashtbl List Metrics Netlist Numeric Rows
