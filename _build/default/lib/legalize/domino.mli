(** Domino-like detailed placement by network flow (Doll, Johannes &
    Antreich [17] — the final placer used in the paper's reported flow).

    Two legality-preserving optimisation passes over a legal placement:

    - {e flow reassignment}: within a spatial neighbourhood, the cells of
      one width class and the slots they currently occupy form an
      assignment problem solved exactly by min-cost flow; cells permute
      onto the slot set that minimises (separable) wire length.
    - {e window reordering}: along each row, every window of [window]
      consecutive cells is repacked in the best of all orderings
      (exhaustive over ≤ window! permutations), capturing the
      non-separable gains the flow pass cannot see.

    Both passes only permute or repack cells within space they already
    occupy, so a legal input stays legal. *)

type config = {
  neighborhood_rows : int;  (** rows per flow-reassignment tile *)
  neighborhood_cols : int;  (** tiles per row direction *)
  max_group : int;  (** assignment-size cap per width class per tile *)
  window : int;  (** cells per reorder window (≤ 6 sensible) *)
  passes : int;
}

val default_config : config

(** [flow_pass ?config circuit placement] runs one flow-reassignment
    sweep; mutates [placement], returns (cells moved, HPWL gained). *)
val flow_pass :
  ?config:config -> Netlist.Circuit.t -> Netlist.Placement.t -> int * float

(** [reorder_pass ?config ?obstacles circuit placement] runs one
    window-reordering sweep; mutates [placement], returns (windows
    improved, HPWL gained).  Windows straddling an obstacle (block
    rectangles in [obstacles], plus all fixed non-pad cells) are
    skipped. *)
val reorder_pass :
  ?config:config ->
  ?obstacles:Geometry.Rect.t list ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  int * float

(** [run ?config circuit placement] alternates both passes [passes]
    times, stopping early when neither improves. *)
val run :
  ?config:config ->
  ?obstacles:Geometry.Rect.t list ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  int * float
