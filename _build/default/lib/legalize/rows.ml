type segment = {
  row : int;
  x_lo : float;
  x_hi : float;
  mutable frontier : float;
}

let row_center_y (c : Netlist.Circuit.t) row =
  c.Netlist.Circuit.region.Geometry.Rect.y_lo
  +. ((float_of_int row +. 0.5) *. c.Netlist.Circuit.row_height)

let row_of_y (c : Netlist.Circuit.t) y =
  let nrows = Netlist.Circuit.num_rows c in
  let idx =
    int_of_float
      (Float.floor
         ((y -. c.Netlist.Circuit.region.Geometry.Rect.y_lo)
         /. c.Netlist.Circuit.row_height))
  in
  max 0 (min (nrows - 1) idx)

let build (c : Netlist.Circuit.t) ~obstacles =
  let nrows = Netlist.Circuit.num_rows c in
  let region = c.Netlist.Circuit.region in
  let rows = Array.make nrows [] in
  for r = 0 to nrows - 1 do
    let y_lo = region.Geometry.Rect.y_lo +. (float_of_int r *. c.Netlist.Circuit.row_height) in
    let y_hi = y_lo +. c.Netlist.Circuit.row_height in
    (* Collect obstacle x-intervals crossing this row band. *)
    let blocked =
      List.filter_map
        (fun (o : Geometry.Rect.t) ->
          if o.Geometry.Rect.y_hi > y_lo +. 1e-9 && o.Geometry.Rect.y_lo < y_hi -. 1e-9
          then Some (o.Geometry.Rect.x_lo, o.Geometry.Rect.x_hi)
          else None)
        obstacles
      |> List.sort compare
    in
    (* Merge intervals, then emit the complement within the region. *)
    let merged =
      List.fold_left
        (fun acc (lo, hi) ->
          match acc with
          | (plo, phi) :: rest when lo <= phi -> (plo, Float.max phi hi) :: rest
          | _ -> (lo, hi) :: acc)
        [] blocked
      |> List.rev
    in
    let segments = ref [] in
    let cursor = ref region.Geometry.Rect.x_lo in
    let emit hi =
      if hi -. !cursor >= c.Netlist.Circuit.row_height then
        segments :=
          { row = r; x_lo = !cursor; x_hi = hi; frontier = !cursor } :: !segments
    in
    List.iter
      (fun (lo, hi) ->
        emit (Float.min lo region.Geometry.Rect.x_hi);
        cursor := Float.max !cursor hi)
      merged;
    emit region.Geometry.Rect.x_hi;
    rows.(r) <- List.rev !segments
  done;
  rows
