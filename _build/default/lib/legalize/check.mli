(** Legality checking for row-based placements. *)

(** A violation with a human-readable description. *)
type violation =
  | Outside_region of int
  | Off_row of int
  | Overlap of int * int

val pp_violation : Format.formatter -> violation -> unit

(** [check circuit placement ?tol ()] verifies every movable standard
    cell is inside the region, vertically centred on a row, and
    non-overlapping with other standard cells in its row (and with fixed
    blocks).  Returns all violations ([] = legal). *)
val check :
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  ?tol:float ->
  unit ->
  violation list

(** [is_legal circuit placement] is [check … = []]. *)
val is_legal : Netlist.Circuit.t -> Netlist.Placement.t -> bool
