(** Flexible-block floorplanning.

    The paper's floorplanning discussion builds on flexible blocks
    (Otten [10]): a block's area is fixed but its aspect ratio is not.
    This extension runs the mixed global placement, then picks for every
    movable block the aspect ratio (from a candidate list) that minimises
    the half-perimeter length of its incident nets at its global
    position, and finishes with the usual block/cell legalisation. *)

(** Result of the flexible flow. *)
type result = {
  mixed : Mixed.result;  (** final placement and flow statistics *)
  circuit : Netlist.Circuit.t;  (** the reshaped circuit actually placed *)
  chosen_ratios : (int * float) list;  (** block id → height/width ratio *)
}

(** [reshape_blocks circuit placement ~ratios] returns a circuit whose
    movable blocks each take the candidate ratio minimising their
    incident wire length at the given positions (areas preserved, heights
    rounded up to whole rows). *)
val reshape_blocks :
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  ratios:float list ->
  Netlist.Circuit.t * (int * float) list

(** [place ?ratios config circuit placement] is the two-phase flexible
    flow; [ratios] defaults to [0.5; 1.0; 2.0]. *)
val place :
  ?ratios:float list ->
  Kraftwerk.Config.t ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  result
