(** Mixed block/cell placement and floorplanning (paper §5).

    Kraftwerk's claim is that blocks and cells need no special treatment
    during global placement — a block is just a big cell in the density
    model.  This module supplies what the paper leaves to the
    surrounding flow: after global placement, blocks are snapped to row
    boundaries and de-overlapped with minimal shoving, and the standard
    cells are then legalised around them. *)

(** Flow result. *)
type result = {
  placement : Netlist.Placement.t;  (** fully legalised *)
  block_displacement : float;
      (** total distance blocks moved during snapping/shoving *)
  hpwl_global : float;  (** before block snapping and legalisation *)
  hpwl_final : float;
  cell_report : Legalize.Abacus.report;
}

(** [block_rects circuit placement] is the rectangles of all movable
    blocks at their current positions. *)
val block_rects :
  Netlist.Circuit.t -> Netlist.Placement.t -> (int * Geometry.Rect.t) list

(** [legalize_blocks circuit placement] snaps every movable block's
    bottom edge to a row boundary and resolves block/block and
    block/fixed overlaps by shoving in x order; mutates [placement] and
    returns the total block displacement.  Raises [Failure] when the
    blocks cannot fit side by side within the region. *)
val legalize_blocks : Netlist.Circuit.t -> Netlist.Placement.t -> float

(** [place config circuit placement] is the full mixed flow: Kraftwerk
    global placement (blocks and cells together), block legalisation,
    then Abacus cell legalisation with the blocks as obstacles. *)
val place :
  Kraftwerk.Config.t ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  result
