lib/floorplan/flexible.ml: Array Float Hashtbl Kraftwerk List Metrics Mixed Netlist
