lib/floorplan/mixed.ml: Array Float Geometry Kraftwerk Legalize List Metrics Netlist
