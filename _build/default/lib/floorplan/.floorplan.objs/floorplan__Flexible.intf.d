lib/floorplan/flexible.mli: Kraftwerk Mixed Netlist
