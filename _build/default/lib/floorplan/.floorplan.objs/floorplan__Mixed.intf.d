lib/floorplan/mixed.mli: Geometry Kraftwerk Legalize Netlist
