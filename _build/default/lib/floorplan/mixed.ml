type result = {
  placement : Netlist.Placement.t;
  block_displacement : float;
  hpwl_global : float;
  hpwl_final : float;
  cell_report : Legalize.Abacus.report;
}

let block_rects (c : Netlist.Circuit.t) p =
  Array.to_list c.Netlist.Circuit.cells
  |> List.filter_map (fun (cl : Netlist.Cell.t) ->
         if cl.Netlist.Cell.kind = Netlist.Cell.Block && Netlist.Cell.movable cl
         then Some (cl.Netlist.Cell.id, Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
         else None)

(* Free x-intervals of a horizontal band after removing the obstacles
   that intersect it. *)
let free_intervals region ~y_lo ~y_hi obstacles =
  let blocked =
    List.filter_map
      (fun (o : Geometry.Rect.t) ->
        if o.Geometry.Rect.y_hi > y_lo +. 1e-9 && o.Geometry.Rect.y_lo < y_hi -. 1e-9
        then Some (o.Geometry.Rect.x_lo, o.Geometry.Rect.x_hi)
        else None)
      obstacles
    |> List.sort compare
  in
  let merged =
    List.fold_left
      (fun acc (lo, hi) ->
        match acc with
        | (plo, phi) :: rest when lo <= phi -> (plo, Float.max phi hi) :: rest
        | _ -> (lo, hi) :: acc)
      [] blocked
    |> List.rev
  in
  let intervals = ref [] and cursor = ref region.Geometry.Rect.x_lo in
  List.iter
    (fun (lo, hi) ->
      if lo > !cursor then intervals := (!cursor, lo) :: !intervals;
      cursor := Float.max !cursor hi)
    merged;
  if region.Geometry.Rect.x_hi > !cursor then
    intervals := (!cursor, region.Geometry.Rect.x_hi) :: !intervals;
  List.rev !intervals

let legalize_blocks (c : Netlist.Circuit.t) (p : Netlist.Placement.t) =
  let region = c.Netlist.Circuit.region in
  let rh = c.Netlist.Circuit.row_height in
  let nrows = Netlist.Circuit.num_rows c in
  let fixed_obstacles =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter_map (fun (cl : Netlist.Cell.t) ->
           if cl.Netlist.Cell.fixed && cl.Netlist.Cell.kind <> Netlist.Cell.Pad
           then Some (Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
           else None)
  in
  let blocks =
    block_rects c p
    |> List.sort (fun (_, (a : Geometry.Rect.t)) (_, b) ->
           Float.compare
             (Geometry.Rect.area b) (Geometry.Rect.area a))
  in
  let placed = ref fixed_obstacles in
  let displacement = ref 0. in
  List.iter
    (fun (id, (r : Geometry.Rect.t)) ->
      let w = Geometry.Rect.width r and h = Geometry.Rect.height r in
      let desired_x = p.Netlist.Placement.x.(id) in
      let desired_y = p.Netlist.Placement.y.(id) in
      let rows_for_block =
        max 1 (int_of_float (Float.ceil ((h -. 1e-9) /. rh)))
      in
      let home_row =
        int_of_float
          (Float.round ((desired_y -. (h /. 2.) -. region.Geometry.Rect.y_lo) /. rh))
      in
      let best = ref None and best_cost = ref Float.infinity in
      let consider_row r0 =
        if r0 >= 0 && r0 + rows_for_block <= nrows then begin
          let y_lo = region.Geometry.Rect.y_lo +. (float_of_int r0 *. rh) in
          let y_hi = y_lo +. h in
          let cy = (y_lo +. y_hi) /. 2. in
          let dy = Float.abs (cy -. desired_y) in
          if dy < !best_cost then
            List.iter
              (fun (ilo, ihi) ->
                if ihi -. ilo >= w -. 1e-9 then begin
                  let cx =
                    Float.min (Float.max desired_x (ilo +. (w /. 2.))) (ihi -. (w /. 2.))
                  in
                  let cost = Float.abs (cx -. desired_x) +. dy in
                  if cost < !best_cost then begin
                    best_cost := cost;
                    best := Some (cx, cy)
                  end
                end)
              (free_intervals region ~y_lo ~y_hi !placed)
        end
      in
      consider_row home_row;
      let offset = ref 1 in
      let continue = ref true in
      while !continue do
        if float_of_int (!offset - 1) *. rh > !best_cost then continue := false
        else begin
          consider_row (home_row - !offset);
          consider_row (home_row + !offset);
          incr offset;
          if !offset > nrows then continue := false
        end
      done;
      match !best with
      | None -> failwith "Mixed.legalize_blocks: block does not fit the region"
      | Some (cx, cy) ->
        let dx = cx -. p.Netlist.Placement.x.(id) in
        let dy = cy -. p.Netlist.Placement.y.(id) in
        displacement := !displacement +. sqrt ((dx *. dx) +. (dy *. dy));
        p.Netlist.Placement.x.(id) <- cx;
        p.Netlist.Placement.y.(id) <- cy;
        placed := Geometry.Rect.of_center ~cx ~cy ~w ~h :: !placed)
    blocks;
  !displacement

let place config (c : Netlist.Circuit.t) placement =
  let state, _ = Kraftwerk.Placer.run config c placement in
  let gp = state.Kraftwerk.Placer.placement in
  let hpwl_global = Metrics.Wirelength.hpwl c gp in
  let block_displacement = legalize_blocks c gp in
  let obstacles = List.map snd (block_rects c gp) in
  let cell_report = Legalize.Abacus.legalize c gp ~extra_obstacles:obstacles () in
  let final = cell_report.Legalize.Abacus.placement in
  ignore (Legalize.Improve.run ~obstacles c final);
  ignore (Legalize.Domino.run ~obstacles c final);
  {
    placement = final;
    block_displacement;
    hpwl_global;
    hpwl_final = Metrics.Wirelength.hpwl c final;
    cell_report;
  }
