type result = {
  mixed : Mixed.result;
  circuit : Netlist.Circuit.t;
  chosen_ratios : (int * float) list;
}

let incident_hpwl (c : Netlist.Circuit.t) (p : Netlist.Placement.t) id =
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc net_id ->
      if Hashtbl.mem seen net_id then acc
      else begin
        Hashtbl.add seen net_id ();
        acc
        +. Metrics.Wirelength.hpwl_net c ~x:p.Netlist.Placement.x
             ~y:p.Netlist.Placement.y c.Netlist.Circuit.nets.(net_id)
      end)
    0.
    (Netlist.Circuit.nets_of_cell c id)

let reshape_blocks (c : Netlist.Circuit.t) (p : Netlist.Placement.t) ~ratios =
  if ratios = [] then invalid_arg "Flexible.reshape_blocks: no ratios";
  let rh = c.Netlist.Circuit.row_height in
  let chosen = ref [] in
  let cells =
    Array.map
      (fun (cl : Netlist.Cell.t) ->
        if cl.Netlist.Cell.kind = Netlist.Cell.Block && Netlist.Cell.movable cl
        then begin
          let area = Netlist.Cell.area cl in
          (* Candidate (w, h) per ratio = h/w, with h rounded up to whole
             rows and w adjusted to preserve area. *)
          let candidates =
            List.map
              (fun ratio ->
                if ratio <= 0. then invalid_arg "Flexible: non-positive ratio";
                let h_raw = sqrt (area *. ratio) in
                let h = rh *. Float.max 1. (Float.round (h_raw /. rh)) in
                let w = area /. h in
                (ratio, w, h))
              ratios
          in
          (* Pin offsets scale with the block shape: evaluating precisely
             would need per-shape pin maps, so compare at the block
             centre (offsets zeroed), which the generator's centred pins
             approximate. *)
          let best = ref None and best_cost = ref Float.infinity in
          List.iter
            (fun (ratio, w, h) ->
              (* Cost: incident net length with the block at its current
                 centre — shape affects it only through pin offsets, so
                 approximate with the half perimeter the block itself
                 adds: incident wires terminate somewhere on the block,
                 modelled as w/2 + h/2 extra per incident net. *)
              let base = incident_hpwl c p cl.Netlist.Cell.id in
              let fanout =
                float_of_int (Array.length (Netlist.Circuit.nets_of_cell c cl.Netlist.Cell.id))
              in
              let cost = base +. (fanout *. ((w /. 2.) +. (h /. 2.)) /. 2.) in
              if cost < !best_cost then begin
                best_cost := cost;
                best := Some (ratio, w, h)
              end)
            candidates;
          match !best with
          | Some (ratio, w, h) ->
            chosen := (cl.Netlist.Cell.id, ratio) :: !chosen;
            { cl with Netlist.Cell.width = w; Netlist.Cell.height = h }
          | None -> cl
        end
        else cl)
      c.Netlist.Circuit.cells
  in
  let circuit =
    Netlist.Circuit.make ~name:c.Netlist.Circuit.name ~cells
      ~nets:c.Netlist.Circuit.nets ~region:c.Netlist.Circuit.region
      ~row_height:rh
  in
  (circuit, List.rev !chosen)

let place ?(ratios = [ 0.5; 1.0; 2.0 ]) config (c : Netlist.Circuit.t) placement =
  (* Phase 1: mixed global placement with the original shapes. *)
  let state, _ = Kraftwerk.Placer.run config c placement in
  let global = state.Kraftwerk.Placer.placement in
  (* Phase 2: reshape blocks at their global positions, then run the full
     mixed flow on the reshaped circuit starting from that placement. *)
  let circuit, chosen_ratios = reshape_blocks c global ~ratios in
  let mixed = Mixed.place config circuit global in
  { mixed; circuit; chosen_ratios }
