lib/density/stop.ml: Density_map Geometry Netlist Option
