lib/density/forces.ml: Array Density_map Geometry Netlist Numeric
