lib/density/density_map.mli: Geometry Netlist
