lib/density/forces.mli: Geometry Netlist Numeric
