lib/density/density_map.ml: Array Float Geometry Netlist
