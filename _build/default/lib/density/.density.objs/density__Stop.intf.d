lib/density/stop.mli: Netlist
