let auto_bins (c : Netlist.Circuit.t) =
  let avg = Float.max 1e-12 (Netlist.Circuit.average_cell_area c) in
  let r = c.Netlist.Circuit.region in
  (* Bin side ≈ 2 average-cell sides: fine enough to resolve clumps,
     coarse enough that the FFT stays cheap. *)
  let side = 2. *. sqrt avg in
  let clamp n = max 8 (min 128 n) in
  ( clamp (int_of_float (Float.ceil (Geometry.Rect.width r /. side))),
    clamp (int_of_float (Float.ceil (Geometry.Rect.height r /. side))) )

let demand (c : Netlist.Circuit.t) p ~nx ~ny =
  let g = Geometry.Grid2.create c.Netlist.Circuit.region ~nx ~ny in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if cl.Netlist.Cell.kind <> Netlist.Cell.Pad then
        Geometry.Grid2.splat_rect g
          (Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
          (Netlist.Cell.area cl))
    c.Netlist.Circuit.cells;
  g

let build c p ~nx ~ny ?extra () =
  let g = demand c p ~nx ~ny in
  (match extra with
  | None -> ()
  | Some e ->
    if Geometry.Grid2.nx e <> nx || Geometry.Grid2.ny e <> ny then
      invalid_arg "Density_map.build: extra grid dimension mismatch";
    let ev = Geometry.Grid2.values e and gv = Geometry.Grid2.values g in
    for i = 0 to Array.length gv - 1 do
      gv.(i) <- gv.(i) +. ev.(i)
    done);
  (* Balance supply so the grid sums to zero (the paper's s, generalised
     to whatever demand the extra hook injected). *)
  let bin_area = Geometry.Grid2.dx g *. Geometry.Grid2.dy g in
  let total_demand = Geometry.Grid2.total g in
  let s = total_demand /. (bin_area *. float_of_int (nx * ny)) in
  (* Convert per-bin area into per-unit-area density and subtract s. *)
  Geometry.Grid2.map_inplace (fun _ _ v -> (v /. bin_area) -. s) g;
  g

let occupancy c p ~nx ~ny =
  let g = demand c p ~nx ~ny in
  let bin_area = Geometry.Grid2.dx g *. Geometry.Grid2.dy g in
  Geometry.Grid2.map_inplace (fun _ _ v -> v /. bin_area) g;
  g
