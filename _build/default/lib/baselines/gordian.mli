(** A Gordian-like global placer: global quadratic optimisation combined
    with recursive min-cut partitioning ([7], the approach the paper
    benchmarks against).

    Each level solves the full quadratic program with every cell's hold
    spring aimed at the centre of its current region; regions with more
    cells than [leaf_limit] are then bisected — cells are ordered by
    their QP coordinate, split at the area-weighted median, and the cut
    is refined with FM.  Region assignments are never revisited, which is
    precisely the "irreversible decisions at early stages" property the
    paper criticises. *)

type config = {
  leaf_limit : int;  (** stop splitting below this many cells *)
  region_anchor : float;  (** hold-spring strength toward region centres *)
  fm_passes : int;  (** 0 disables cut refinement *)
  balance : float;  (** FM balance bound *)
  seed : int;
}

val default_config : config

(** [place ?config circuit placement] returns the global placement (to be
    legalised by the caller) and the number of partitioning levels
    performed. *)
val place :
  ?config:config ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  Netlist.Placement.t * int
