lib/baselines/annealer.mli: Netlist
