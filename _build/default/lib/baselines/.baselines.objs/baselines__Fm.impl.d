lib/baselines/fm.ml: Array Float Fun List
