lib/baselines/timing_sa.ml: Annealer Array Netlist Timing
