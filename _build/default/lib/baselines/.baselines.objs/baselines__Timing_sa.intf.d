lib/baselines/timing_sa.mli: Annealer Netlist Timing
