lib/baselines/annealer.ml: Array Float Geometry List Metrics Netlist Numeric
