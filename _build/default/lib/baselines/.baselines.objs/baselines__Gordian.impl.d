lib/baselines/gordian.ml: Array Float Fm Geometry Hashtbl List Netlist Qp
