lib/baselines/gordian.mli: Netlist
