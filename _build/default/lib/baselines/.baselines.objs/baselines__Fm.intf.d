lib/baselines/fm.mli:
