(** A TimberWolf-like row-based simulated-annealing placer ([2]), the
    second baseline family the paper compares against.

    Cells live on standard-cell rows with continuous x; the cost is
    weighted half-perimeter wire length plus an overlap penalty, and the
    move set is single-cell displacement within a shrinking range window
    plus pairwise swaps, under geometric cooling.  The result still has
    small overlaps and is legalised by the same final placer as every
    other flow. *)

type config = {
  moves_per_cell : int;  (** moves attempted per cell per temperature *)
  t_steps : int;  (** number of temperature levels *)
  cooling : float;  (** geometric factor α ∈ (0,1) *)
  initial_acceptance : float;  (** target acceptance used to set T₀ *)
  overlap_weight : float;  (** penalty weight λ (per unit overlap height) *)
  seed : int;
}

val default_config : config

(** [quick_config] cuts the move budget for tests. *)
val quick_config : config

type stats = {
  attempted : int;
  accepted : int;
  final_cost : float;
  final_hpwl : float;
  final_overlap : float;
}

(** [place ?config ?net_weights ?keep_arrangement circuit placement]
    anneals the movable standard cells.  By default the start is a
    deterministic row-striped arrangement (the incoming [placement] only
    supplies the fixed-cell coordinates); with [keep_arrangement:true]
    the incoming coordinates are adopted (rows snapped from y), which
    lets reweighted continuation rounds refine a previous result.
    Returns the annealed placement and statistics.  Deterministic in the
    seed. *)
val place :
  ?config:config ->
  ?net_weights:float array ->
  ?keep_arrangement:bool ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  Netlist.Placement.t * stats
