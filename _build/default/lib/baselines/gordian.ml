type config = {
  leaf_limit : int;
  region_anchor : float;
  fm_passes : int;
  balance : float;
  seed : int;
}

let default_config =
  { leaf_limit = 36; region_anchor = 0.8; fm_passes = 4; balance = 0.55; seed = 11 }

type region = { rect : Geometry.Rect.t; members : int array }

(* Restrict the circuit's hypergraph to one region's cells. *)
let local_hypergraph (c : Netlist.Circuit.t) members =
  let local_of = Hashtbl.create (Array.length members) in
  Array.iteri (fun li id -> Hashtbl.replace local_of id li) members;
  let seen = Hashtbl.create 64 in
  let nets = ref [] in
  Array.iter
    (fun id ->
      Array.iter
        (fun net_id ->
          if not (Hashtbl.mem seen net_id) then begin
            Hashtbl.add seen net_id ();
            let locals =
              Netlist.Net.cells c.Netlist.Circuit.nets.(net_id)
              |> List.filter_map (fun cid -> Hashtbl.find_opt local_of cid)
            in
            match locals with
            | _ :: _ :: _ -> nets := Array.of_list locals :: !nets
            | [] | [ _ ] -> ()
          end)
        (Netlist.Circuit.nets_of_cell c id))
    members;
  let areas =
    Array.map (fun id -> Netlist.Cell.area c.Netlist.Circuit.cells.(id)) members
  in
  {
    Fm.num_vertices = Array.length members;
    Fm.areas;
    Fm.nets = Array.of_list !nets;
  }

let split_region cfg (c : Netlist.Circuit.t) (p : Netlist.Placement.t) region =
  let vertical = Geometry.Rect.width region.rect >= Geometry.Rect.height region.rect in
  let coord id =
    if vertical then p.Netlist.Placement.x.(id) else p.Netlist.Placement.y.(id)
  in
  let members = Array.copy region.members in
  Array.sort (fun a b -> Float.compare (coord a) (coord b)) members;
  (* Area-weighted median. *)
  let total =
    Array.fold_left
      (fun acc id -> acc +. Netlist.Cell.area c.Netlist.Circuit.cells.(id))
      0. members
  in
  let sides = Array.make (Array.length members) false in
  let acc = ref 0. in
  Array.iteri
    (fun i id ->
      acc := !acc +. Netlist.Cell.area c.Netlist.Circuit.cells.(id);
      if !acc > total /. 2. then sides.(i) <- true)
    members;
  if cfg.fm_passes > 0 then begin
    let h = local_hypergraph c members in
    ignore
      (Fm.partition ~max_passes:cfg.fm_passes ~balance:cfg.balance h ~sides)
  end;
  let area_of side =
    let a = ref 0. in
    Array.iteri
      (fun i id ->
        if sides.(i) = side then
          a := !a +. Netlist.Cell.area c.Netlist.Circuit.cells.(id))
      members;
    !a
  in
  let a0 = area_of false in
  let frac = if total > 0. then a0 /. total else 0.5 in
  let r = region.rect in
  let r0, r1 =
    if vertical then begin
      let xm = r.Geometry.Rect.x_lo +. (frac *. Geometry.Rect.width r) in
      ( Geometry.Rect.make ~x_lo:r.Geometry.Rect.x_lo ~y_lo:r.Geometry.Rect.y_lo
          ~x_hi:xm ~y_hi:r.Geometry.Rect.y_hi,
        Geometry.Rect.make ~x_lo:xm ~y_lo:r.Geometry.Rect.y_lo
          ~x_hi:r.Geometry.Rect.x_hi ~y_hi:r.Geometry.Rect.y_hi )
    end
    else begin
      let ym = r.Geometry.Rect.y_lo +. (frac *. Geometry.Rect.height r) in
      ( Geometry.Rect.make ~x_lo:r.Geometry.Rect.x_lo ~y_lo:r.Geometry.Rect.y_lo
          ~x_hi:r.Geometry.Rect.x_hi ~y_hi:ym,
        Geometry.Rect.make ~x_lo:r.Geometry.Rect.x_lo ~y_lo:ym
          ~x_hi:r.Geometry.Rect.x_hi ~y_hi:r.Geometry.Rect.y_hi )
    end
  in
  let part side =
    Array.to_list members
    |> List.filteri (fun i _ -> sides.(i) = side)
    |> Array.of_list
  in
  [ { rect = r0; members = part false }; { rect = r1; members = part true } ]

let place ?(config = default_config) (c : Netlist.Circuit.t) placement =
  let p = Netlist.Placement.copy placement in
  let movable =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter Netlist.Cell.movable
    |> List.map (fun (cl : Netlist.Cell.t) -> cl.Netlist.Cell.id)
    |> Array.of_list
  in
  let targets = Netlist.Placement.copy p in
  let net_weights = Array.make (Netlist.Circuit.num_nets c) 1. in
  let regions =
    ref [ { rect = c.Netlist.Circuit.region; members = movable } ]
  in
  let set_targets () =
    List.iter
      (fun reg ->
        let cx, cy = Geometry.Rect.center reg.rect in
        Array.iter
          (fun id ->
            targets.Netlist.Placement.x.(id) <- cx;
            targets.Netlist.Placement.y.(id) <- cy)
          reg.members)
      !regions
  in
  let solve () =
    let system =
      Qp.System.build c ~placement:p ~net_weights
        ~edge_scale:Qp.Weights.quadratic ~hold:config.region_anchor
        ~hold_at:targets ()
    in
    let n = Qp.System.num_movable system in
    ignore
      (Qp.System.solve system ~placement:p ~ex:(Array.make n 0.)
         ~ey:(Array.make n 0.));
    Netlist.Placement.clamp_to_region c p
  in
  let levels = ref 0 in
  let progress = ref true in
  set_targets ();
  solve ();
  while !progress do
    let next =
      List.concat_map
        (fun reg ->
          if Array.length reg.members > config.leaf_limit then
            split_region config c p reg
          else [ reg ])
        !regions
    in
    if List.length next = List.length !regions then progress := false
    else begin
      regions := next;
      incr levels;
      set_targets ();
      solve ()
    end
  done;
  (p, !levels)
