type config = {
  moves_per_cell : int;
  t_steps : int;
  cooling : float;
  initial_acceptance : float;
  overlap_weight : float;
  seed : int;
}

let default_config =
  {
    moves_per_cell = 12;
    t_steps = 80;
    cooling = 0.92;
    initial_acceptance = 0.85;
    overlap_weight = 8.;
    seed = 17;
  }

(* Quick mode cools much faster so the 25-step schedule still ends
   effectively frozen (0.75²⁵ ≈ 8·10⁻⁴ of T₀). *)
let quick_config =
  { default_config with moves_per_cell = 3; t_steps = 25; cooling = 0.75 }

type stats = {
  attempted : int;
  accepted : int;
  final_cost : float;
  final_hpwl : float;
  final_overlap : float;
}

(* Mutable annealing state over one circuit. *)
type st = {
  c : Netlist.Circuit.t;
  p : Netlist.Placement.t;
  weights : float array;
  movable : int array; (* ids of movable standard cells *)
  row_of : int array; (* per cell id, current row (-1 for others) *)
  buckets : int list array array; (* row -> bucket -> cell ids *)
  nbuckets : int;
  bucket_w : float;
  max_w : float; (* widest movable cell *)
  stamp : int array; (* net dedupe stamps *)
  mutable stamp_val : int;
}

let bucket_of st x =
  let region = st.c.Netlist.Circuit.region in
  let b =
    int_of_float ((x -. region.Geometry.Rect.x_lo) /. st.bucket_w)
  in
  max 0 (min (st.nbuckets - 1) b)

let bucket_add st id =
  let r = st.row_of.(id) in
  let b = bucket_of st st.p.Netlist.Placement.x.(id) in
  st.buckets.(r).(b) <- id :: st.buckets.(r).(b)

let bucket_del st id =
  let r = st.row_of.(id) in
  let b = bucket_of st st.p.Netlist.Placement.x.(id) in
  st.buckets.(r).(b) <- List.filter (fun j -> j <> id) st.buckets.(r).(b)

(* Overlap of cell [id] (at its current coordinates) against the other
   movable cells of its row. *)
let cell_overlap st id =
  let r = st.row_of.(id) in
  let x = st.p.Netlist.Placement.x.(id) in
  let w = st.c.Netlist.Circuit.cells.(id).Netlist.Cell.width in
  let reach = (w +. st.max_w) /. 2. in
  let b_lo = bucket_of st (x -. reach) and b_hi = bucket_of st (x +. reach) in
  let acc = ref 0. in
  for b = b_lo to b_hi do
    List.iter
      (fun j ->
        if j <> id then begin
          let xj = st.p.Netlist.Placement.x.(j) in
          let wj = st.c.Netlist.Circuit.cells.(j).Netlist.Cell.width in
          let ov = ((w +. wj) /. 2.) -. Float.abs (x -. xj) in
          if ov > 0. then acc := !acc +. ov
        end)
      st.buckets.(r).(b)
  done;
  !acc

let nets_of st ids =
  st.stamp_val <- st.stamp_val + 1;
  let nets = ref [] in
  List.iter
    (fun id ->
      Array.iter
        (fun n ->
          if st.stamp.(n) <> st.stamp_val then begin
            st.stamp.(n) <- st.stamp_val;
            nets := n :: !nets
          end)
        (Netlist.Circuit.nets_of_cell st.c id))
    ids;
  !nets

let wl_of st nets =
  List.fold_left
    (fun acc n ->
      acc
      +. st.weights.(n)
         *. Metrics.Wirelength.hpwl_net st.c ~x:st.p.Netlist.Placement.x
              ~y:st.p.Netlist.Placement.y st.c.Netlist.Circuit.nets.(n))
    0. nets

(* Deterministic striped initial arrangement: x-sorted cells dealt into
   rows, packed from the left. *)
let initial_rows st =
  let region = st.c.Netlist.Circuit.region in
  let nrows = max 1 (Netlist.Circuit.num_rows st.c) in
  let sorted = Array.copy st.movable in
  Array.sort
    (fun a b ->
      Float.compare st.p.Netlist.Placement.x.(a) st.p.Netlist.Placement.x.(b))
    sorted;
  let cursor = Array.make nrows region.Geometry.Rect.x_lo in
  Array.iteri
    (fun i id ->
      let r = i mod nrows in
      let w = st.c.Netlist.Circuit.cells.(id).Netlist.Cell.width in
      st.row_of.(id) <- r;
      st.p.Netlist.Placement.x.(id) <- cursor.(r) +. (w /. 2.);
      st.p.Netlist.Placement.y.(id) <-
        region.Geometry.Rect.y_lo
        +. ((float_of_int r +. 0.5) *. st.c.Netlist.Circuit.row_height);
      cursor.(r) <- cursor.(r) +. w;
      bucket_add st id)
    sorted

let place ?(config = default_config) ?net_weights ?(keep_arrangement = false)
    (c : Netlist.Circuit.t) placement =
  let p = Netlist.Placement.copy placement in
  let weights =
    match net_weights with
    | Some w -> w
    | None -> Array.make (Netlist.Circuit.num_nets c) 1.
  in
  let movable =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter (fun (cl : Netlist.Cell.t) ->
           Netlist.Cell.movable cl && cl.Netlist.Cell.kind = Netlist.Cell.Standard)
    |> List.map (fun (cl : Netlist.Cell.t) -> cl.Netlist.Cell.id)
    |> Array.of_list
  in
  let region = c.Netlist.Circuit.region in
  let max_w =
    Array.fold_left
      (fun m id -> Float.max m c.Netlist.Circuit.cells.(id).Netlist.Cell.width)
      1. movable
  in
  let nrows = max 1 (Netlist.Circuit.num_rows c) in
  let nbuckets =
    max 4 (int_of_float (Geometry.Rect.width region /. Float.max max_w 1.))
  in
  let st =
    {
      c;
      p;
      weights;
      movable;
      row_of = Array.make (Netlist.Circuit.num_cells c) (-1);
      buckets = Array.init nrows (fun _ -> Array.make nbuckets []);
      nbuckets;
      bucket_w = Geometry.Rect.width region /. float_of_int nbuckets;
      max_w;
      stamp = Array.make (Netlist.Circuit.num_nets c) (-1);
      stamp_val = 0;
    }
  in
  if Array.length movable = 0 then
    (p, { attempted = 0; accepted = 0; final_cost = 0.; final_hpwl = 0.; final_overlap = 0. })
  else begin
    if keep_arrangement then
      (* Adopt the incoming coordinates: snap rows from y, keep x. *)
      Array.iter
        (fun id ->
          let r =
            let y = st.p.Netlist.Placement.y.(id) in
            let idx =
              int_of_float
                (Float.floor
                   ((y -. region.Geometry.Rect.y_lo)
                   /. c.Netlist.Circuit.row_height))
            in
            max 0 (min (nrows - 1) idx)
          in
          st.row_of.(id) <- r;
          st.p.Netlist.Placement.y.(id) <-
            region.Geometry.Rect.y_lo
            +. ((float_of_int r +. 0.5) *. c.Netlist.Circuit.row_height);
          bucket_add st id)
        st.movable
    else initial_rows st;
    let rng = Numeric.Rng.create config.seed in
    let lambda = config.overlap_weight in
    (* Move proposal: displace within the range window or swap. *)
    let row_y r =
      region.Geometry.Rect.y_lo
      +. ((float_of_int r +. 0.5) *. c.Netlist.Circuit.row_height)
    in
    let delta_displace id ~nx ~nrow ~commit =
      let ox = st.p.Netlist.Placement.x.(id) in
      let oy = st.p.Netlist.Placement.y.(id) in
      let orow = st.row_of.(id) in
      let nets = nets_of st [ id ] in
      let before = wl_of st nets +. (lambda *. cell_overlap st id) in
      bucket_del st id;
      st.row_of.(id) <- nrow;
      st.p.Netlist.Placement.x.(id) <- nx;
      st.p.Netlist.Placement.y.(id) <- row_y nrow;
      bucket_add st id;
      let after = wl_of st nets +. (lambda *. cell_overlap st id) in
      let delta = after -. before in
      if not (commit delta) then begin
        bucket_del st id;
        st.row_of.(id) <- orow;
        st.p.Netlist.Placement.x.(id) <- ox;
        st.p.Netlist.Placement.y.(id) <- oy;
        bucket_add st id
      end;
      delta
    in
    let delta_swap a b ~commit =
      let nets = nets_of st [ a; b ] in
      let before =
        wl_of st nets +. (lambda *. (cell_overlap st a +. cell_overlap st b))
      in
      let swap () =
        let ax = st.p.Netlist.Placement.x.(a) and ay = st.p.Netlist.Placement.y.(a) in
        let ar = st.row_of.(a) in
        bucket_del st a;
        bucket_del st b;
        st.p.Netlist.Placement.x.(a) <- st.p.Netlist.Placement.x.(b);
        st.p.Netlist.Placement.y.(a) <- st.p.Netlist.Placement.y.(b);
        st.row_of.(a) <- st.row_of.(b);
        st.p.Netlist.Placement.x.(b) <- ax;
        st.p.Netlist.Placement.y.(b) <- ay;
        st.row_of.(b) <- ar;
        bucket_add st a;
        bucket_add st b
      in
      swap ();
      let after =
        wl_of st nets +. (lambda *. (cell_overlap st a +. cell_overlap st b))
      in
      let delta = after -. before in
      if not (commit delta) then swap ();
      delta
    in
    let random_move ~window ~commit =
      let id = Numeric.Rng.choose rng st.movable in
      if Numeric.Rng.float rng 1. < 0.7 then begin
        let dx = Numeric.Rng.uniform rng (-.window) window in
        let drow_span =
          max 1 (int_of_float (window /. c.Netlist.Circuit.row_height))
        in
        let drow = Numeric.Rng.int rng ((2 * drow_span) + 1) - drow_span in
        let nrow = max 0 (min (nrows - 1) (st.row_of.(id) + drow)) in
        let w = c.Netlist.Circuit.cells.(id).Netlist.Cell.width in
        let nx =
          Float.min
            (Float.max
               (st.p.Netlist.Placement.x.(id) +. dx)
               (region.Geometry.Rect.x_lo +. (w /. 2.)))
            (region.Geometry.Rect.x_hi -. (w /. 2.))
        in
        delta_displace id ~nx ~nrow ~commit
      end
      else begin
        let b = Numeric.Rng.choose rng st.movable in
        if b = id then 0. else delta_swap id b ~commit
      end
    in
    (* Calibrate T0 from the uphill deltas of exploratory moves. *)
    let window0 =
      Float.max (Geometry.Rect.width region) (Geometry.Rect.height region)
    in
    let uphill = ref 0. and nup = ref 0 in
    for _ = 1 to 200 do
      let d = random_move ~window:window0 ~commit:(fun _ -> false) in
      if d > 0. then begin
        uphill := !uphill +. d;
        incr nup
      end
    done;
    let t0 =
      if !nup = 0 then 1.
      else -.(!uphill /. float_of_int !nup) /. log config.initial_acceptance
    in
    let attempted = ref 0 and accepted = ref 0 in
    let t = ref t0 in
    for step = 0 to config.t_steps - 1 do
      let frac = float_of_int step /. float_of_int (max 1 (config.t_steps - 1)) in
      let window =
        Float.max (2. *. c.Netlist.Circuit.row_height) (window0 *. (1. -. frac))
      in
      let moves = config.moves_per_cell * Array.length st.movable in
      for _ = 1 to moves do
        incr attempted;
        let commit delta =
          let ok =
            delta <= 0.
            || Numeric.Rng.float rng 1. < exp (-.delta /. Float.max !t 1e-30)
          in
          if ok then incr accepted;
          ok
        in
        ignore (random_move ~window ~commit)
      done;
      t := !t *. config.cooling
    done;
    (* Final greedy cleanup at T ≈ 0. *)
    let moves = config.moves_per_cell * Array.length st.movable in
    for _ = 1 to moves do
      incr attempted;
      let d = random_move ~window:(4. *. c.Netlist.Circuit.row_height)
          ~commit:(fun delta -> delta < 0.)
      in
      if d < 0. then incr accepted
    done;
    let final_hpwl = Metrics.Wirelength.hpwl c st.p in
    let final_overlap =
      Array.fold_left (fun acc id -> acc +. cell_overlap st id) 0. st.movable /. 2.
    in
    ( st.p,
      {
        attempted = !attempted;
        accepted = !accepted;
        final_cost = final_hpwl +. (lambda *. final_overlap);
        final_hpwl;
        final_overlap;
      } )
  end
