type hypergraph = {
  num_vertices : int;
  areas : float array;
  nets : int array array;
}

let cut_size h sides =
  Array.fold_left
    (fun acc net ->
      let has0 = Array.exists (fun v -> not sides.(v)) net in
      let has1 = Array.exists (fun v -> sides.(v)) net in
      if has0 && has1 then acc + 1 else acc)
    0 h.nets

(* Gain-bucket structure: doubly-linked lists per gain value, LIFO
   insertion as in the original FM paper. *)
type buckets = {
  offset : int; (* gain g lives at index g + offset *)
  head : int array;
  next : int array;
  prev : int array;
  gain : int array;
  in_bucket : bool array;
  mutable max_gain : int;
}

let buckets_create n max_deg =
  {
    offset = max_deg;
    head = Array.make ((2 * max_deg) + 1) (-1);
    next = Array.make n (-1);
    prev = Array.make n (-1);
    gain = Array.make n 0;
    in_bucket = Array.make n false;
    max_gain = -max_deg;
  }

let bucket_insert b v =
  let idx = b.gain.(v) + b.offset in
  b.next.(v) <- b.head.(idx);
  b.prev.(v) <- -1;
  if b.head.(idx) >= 0 then b.prev.(b.head.(idx)) <- v;
  b.head.(idx) <- v;
  b.in_bucket.(v) <- true;
  if b.gain.(v) > b.max_gain then b.max_gain <- b.gain.(v)

let bucket_remove b v =
  if b.in_bucket.(v) then begin
    let idx = b.gain.(v) + b.offset in
    if b.prev.(v) >= 0 then b.next.(b.prev.(v)) <- b.next.(v)
    else b.head.(idx) <- b.next.(v);
    if b.next.(v) >= 0 then b.prev.(b.next.(v)) <- b.prev.(v);
    b.in_bucket.(v) <- false
  end

let bucket_retarget b v delta =
  if b.in_bucket.(v) then begin
    bucket_remove b v;
    b.gain.(v) <- b.gain.(v) + delta;
    bucket_insert b v
  end
  else b.gain.(v) <- b.gain.(v) + delta

let partition ?(max_passes = 8) ?(balance = 0.55) ?locked h ~sides =
  let n = h.num_vertices in
  if Array.length sides <> n then invalid_arg "Fm.partition: sides length";
  if balance <= 0.5 || balance > 1. then invalid_arg "Fm.partition: balance";
  let locked = match locked with Some l -> l | None -> Array.make n false in
  let vertex_nets = Array.make n [] in
  Array.iteri
    (fun ni net ->
      Array.iter (fun v -> vertex_nets.(v) <- ni :: vertex_nets.(v)) net)
    h.nets;
  let max_deg =
    Array.fold_left (fun m l -> max m (List.length l)) 1
      (Array.map Fun.id vertex_nets)
  in
  let total_area = Array.fold_left ( +. ) 0. h.areas in
  let area = [| 0.; 0. |] in
  let side_idx v = if sides.(v) then 1 else 0 in
  let recompute_area () =
    area.(0) <- 0.;
    area.(1) <- 0.;
    for v = 0 to n - 1 do
      area.(side_idx v) <- area.(side_idx v) +. h.areas.(v)
    done
  in
  let cnt = Array.make_matrix (Array.length h.nets) 2 0 in
  let recompute_counts () =
    Array.iteri
      (fun ni net ->
        cnt.(ni).(0) <- 0;
        cnt.(ni).(1) <- 0;
        Array.iter (fun v -> cnt.(ni).(side_idx v) <- cnt.(ni).(side_idx v) + 1) net)
      h.nets
  in
  let run_pass () =
    recompute_area ();
    recompute_counts ();
    let b = buckets_create n max_deg in
    for v = 0 to n - 1 do
      if not locked.(v) then begin
        let s = side_idx v in
        let g = ref 0 in
        List.iter
          (fun ni ->
            if cnt.(ni).(s) = 1 then incr g;
            if cnt.(ni).(1 - s) = 0 then decr g)
          vertex_nets.(v);
        b.gain.(v) <- !g;
        bucket_insert b v
      end
    done;
    let moves = ref [] and cum = ref 0 in
    let best = ref 0 and best_len = ref 0 and len = ref 0 in
    (* Balance with one-vertex slack, so small graphs (where a single
       move necessarily swings the ratio past the bound) can still
       improve — the classic FM criterion. *)
    let max_area = Array.fold_left Float.max 0. h.areas in
    let feasible v =
      let s = side_idx v in
      area.(1 - s) +. h.areas.(v)
      <= (balance *. Float.max total_area 1e-30) +. max_area
    in
    let pick () =
      let res = ref None in
      let g = ref b.max_gain in
      while !res = None && !g >= -b.offset do
        let v = ref b.head.(!g + b.offset) in
        while !res = None && !v >= 0 do
          if feasible !v then res := Some !v else v := b.next.(!v)
        done;
        if !res = None then decr g
      done;
      (match !res with Some v -> b.max_gain <- b.gain.(v) | None -> ());
      !res
    in
    let apply_move v =
      let f = side_idx v in
      let t = 1 - f in
      bucket_remove b v;
      List.iter
        (fun ni ->
          let net = h.nets.(ni) in
          (* Gain updates before the counts change... *)
          if cnt.(ni).(t) = 0 then
            Array.iter (fun u -> if u <> v && b.in_bucket.(u) then bucket_retarget b u 1) net
          else if cnt.(ni).(t) = 1 then
            Array.iter
              (fun u -> if u <> v && side_idx u = t && b.in_bucket.(u) then bucket_retarget b u (-1))
              net;
          cnt.(ni).(f) <- cnt.(ni).(f) - 1;
          cnt.(ni).(t) <- cnt.(ni).(t) + 1;
          (* ... and after. *)
          if cnt.(ni).(f) = 0 then
            Array.iter (fun u -> if u <> v && b.in_bucket.(u) then bucket_retarget b u (-1)) net
          else if cnt.(ni).(f) = 1 then
            Array.iter
              (fun u -> if u <> v && side_idx u = f && b.in_bucket.(u) then bucket_retarget b u 1)
              net)
        vertex_nets.(v);
      area.(f) <- area.(f) -. h.areas.(v);
      area.(t) <- area.(t) +. h.areas.(v);
      sides.(v) <- not sides.(v)
    in
    let continue = ref true in
    while !continue do
      match pick () with
      | None -> continue := false
      | Some v ->
        cum := !cum + b.gain.(v);
        apply_move v;
        moves := v :: !moves;
        incr len;
        if !cum > !best then begin
          best := !cum;
          best_len := !len
        end
    done;
    (* Undo moves beyond the best prefix. *)
    let all = Array.of_list (List.rev !moves) in
    for i = Array.length all - 1 downto !best_len do
      sides.(all.(i)) <- not sides.(all.(i))
    done;
    !best
  in
  let pass = ref 0 and improving = ref true in
  while !pass < max_passes && !improving do
    incr pass;
    if run_pass () <= 0 then improving := false
  done;
  cut_size h sides
