(** Timing-driven annealing baseline (the SPEED/TimberWolf-TD class of
    §6.2): simulated annealing whose wire-length cost weights each net by
    its timing criticality, refreshed between annealing rounds. *)

type result = {
  placement : Netlist.Placement.t;
  initial_delay : float;  (** longest path of the unweighted round *)
  final_delay : float;
  rounds : int;
}

(** [place ?config ?params ?rounds circuit placement] runs one full
    anneal, then [rounds − 1] (default 2 extra) reweighted continuation
    rounds at reduced budget. *)
val place :
  ?config:Annealer.config ->
  ?params:Timing.Params.t ->
  ?rounds:int ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  result
