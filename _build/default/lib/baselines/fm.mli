(** Fiduccia–Mattheyses hypergraph bipartitioning with gain buckets.

    The min-cut engine behind the Gordian-like baseline placer (the class
    of partitioning methods the paper compares against).  Operates on a
    standalone hypergraph so sub-problems of a recursive placer can be
    partitioned without rebuilding circuits. *)

(** A hypergraph: [nets.(i)] lists the vertex indices of net i (degree ≥
    2 after restriction); [areas.(v)] weights the balance constraint. *)
type hypergraph = { num_vertices : int; areas : float array; nets : int array array }

(** [cut_size h sides] counts nets with vertices on both sides. *)
val cut_size : hypergraph -> bool array -> int

(** [partition ?max_passes ?balance ?locked h ~sides] improves the given
    initial 2-way partition in place and returns the final cut size.

    [balance] (default 0.55) bounds either side's area share; passes run
    until no pass improves the cut or [max_passes] (default 8) is
    reached.  [locked] vertices never move.  Deterministic. *)
val partition :
  ?max_passes:int ->
  ?balance:float ->
  ?locked:bool array ->
  hypergraph ->
  sides:bool array ->
  int
