type result = {
  placement : Netlist.Placement.t;
  initial_delay : float;
  final_delay : float;
  rounds : int;
}

let place ?(config = Annealer.default_config) ?(params = Timing.Params.default)
    ?(rounds = 3) (c : Netlist.Circuit.t) placement =
  let p0, _ = Annealer.place ~config c placement in
  let initial_delay = (Timing.Sta.analyse params c p0).Timing.Sta.max_delay in
  let crit = Timing.Criticality.create (Netlist.Circuit.num_nets c) in
  let weights = Array.make (Netlist.Circuit.num_nets c) 1. in
  (* Continuation rounds refine the existing arrangement: they must
     start nearly frozen (reheating to the usual 85 % acceptance would
     scramble the placement the first round produced). *)
  let continuation =
    {
      config with
      Annealer.t_steps = max 8 (config.Annealer.t_steps / 3);
      Annealer.moves_per_cell = max 2 (config.Annealer.moves_per_cell / 2);
      Annealer.initial_acceptance = 0.05;
    }
  in
  let p = ref p0 in
  (* Keep the best placement by measured delay: a weighted continuation
     round that trades too much plain wire length away is discarded. *)
  let best_p = ref p0 and best_delay = ref initial_delay in
  for round = 2 to rounds do
    let sta = Timing.Sta.analyse params c !p in
    Timing.Criticality.update crit params ~net_slack:sta.Timing.Sta.net_slack;
    Timing.Criticality.apply_weights ~cap:params.Timing.Params.max_net_weight
      crit weights;
    let cfg = { continuation with Annealer.seed = config.Annealer.seed + round } in
    let p', _ =
      Annealer.place ~config:cfg ~net_weights:weights ~keep_arrangement:true c !p
    in
    p := p';
    let delay = (Timing.Sta.analyse params c p').Timing.Sta.max_delay in
    if delay < !best_delay then begin
      best_delay := delay;
      best_p := p'
    end
  done;
  { placement = !best_p; initial_delay; final_delay = !best_delay; rounds }
