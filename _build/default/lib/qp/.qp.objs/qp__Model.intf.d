lib/qp/model.mli: Netlist Numeric
