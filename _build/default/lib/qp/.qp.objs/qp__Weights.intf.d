lib/qp/weights.mli: Geometry
