lib/qp/system.ml: Array B2b Float Geometry List Model Netlist Numeric
