lib/qp/system.mli: Netlist Numeric
