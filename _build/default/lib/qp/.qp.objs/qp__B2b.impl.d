lib/qp/b2b.ml: Array Float List Model Netlist
