lib/qp/weights.ml: Float Geometry
