lib/qp/model.ml: Array Fun List Netlist Numeric
