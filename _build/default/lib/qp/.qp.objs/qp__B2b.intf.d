lib/qp/b2b.mli: Netlist
