(** Edge-weight adaptation schemes.

    The paper applies "a linearization scheme for adjusting netweights
    [14]" (GORDIAN-L) before each solve: scaling every spring by the
    inverse of its current length makes the quadratic objective behave
    like a linear (half-perimeter-like) one, which is what the reported
    wire lengths measure. *)

(** [quadratic ~dist] is [1.] — the plain quadratic objective. *)
val quadratic : dist:float -> float

(** [linearize ~eps ~dist] is [1. /. max dist eps] — GORDIAN-L style
    linearisation; [eps] guards the singularity at zero length and should
    be a small fraction of the region perimeter. *)
val linearize : eps:float -> dist:float -> float

(** [default_eps region] is [1e-3 × (W + H)]. *)
val default_eps : Geometry.Rect.t -> float
