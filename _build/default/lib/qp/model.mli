(** Net models: hyperedges to weighted two-point edges.

    The paper models a k-pin net as a clique of k(k−1)/2 edges of weight
    1/k (§2.1).  Large nets make that quadratic in k, so above a
    configurable cap we sample a connected bounded-degree subgraph (a
    Hamiltonian cycle through the pins plus random chords) whose total
    weight is rescaled to the full clique's total (k−1)/2 — the spring
    stiffness seen by the net as a whole is preserved. *)

(** One spring between two pins of a net. *)
type edge = {
  pin_a : Netlist.Net.pin;
  pin_b : Netlist.Net.pin;
  weight : float;
}

(** [edges ?cap ?rng net] expands a net.  [cap] (default 16) is the
    maximum degree fully expanded as a clique; beyond it, the sampled
    subgraph is used and [rng] (default a fixed seed) drives the chord
    sampling. *)
val edges : ?cap:int -> ?rng:Numeric.Rng.t -> Netlist.Net.t -> edge list

(** [total_weight k] is the clique total (k−1)/2 that both expansions
    preserve. *)
val total_weight : int -> float
