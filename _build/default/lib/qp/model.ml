type edge = {
  pin_a : Netlist.Net.pin;
  pin_b : Netlist.Net.pin;
  weight : float;
}

let total_weight k = float_of_int (k - 1) /. 2.

let clique_edges pins =
  let k = Array.length pins in
  let w = 1. /. float_of_int k in
  let acc = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      acc := { pin_a = pins.(i); pin_b = pins.(j); weight = w } :: !acc
    done
  done;
  !acc

let sampled_edges rng pins =
  let k = Array.length pins in
  (* Cycle through all pins guarantees connectivity; add k random chords
     for stiffness diversity.  Duplicate chords are harmless (weights
     sum). *)
  let order = Array.init k Fun.id in
  Numeric.Rng.shuffle rng order;
  let edges = ref [] in
  let add i j = edges := (i, j) :: !edges in
  for i = 0 to k - 1 do
    add order.(i) order.((i + 1) mod k)
  done;
  for _ = 1 to k do
    let i = Numeric.Rng.int rng k in
    let j = Numeric.Rng.int rng k in
    if i <> j then add i j
  done;
  let m = List.length !edges in
  let w = total_weight k /. float_of_int m in
  List.map (fun (i, j) -> { pin_a = pins.(i); pin_b = pins.(j); weight = w }) !edges

let edges ?(cap = 16) ?rng (net : Netlist.Net.t) =
  let pins = net.Netlist.Net.pins in
  if Array.length pins <= cap then clique_edges pins
  else begin
    let rng =
      match rng with
      | Some r -> r
      | None -> Numeric.Rng.create (net.Netlist.Net.id + 7919)
    in
    sampled_edges rng pins
  end
