let quadratic ~dist:_ = 1.

let linearize ~eps ~dist = 1. /. Float.max dist eps

let default_eps region =
  1e-3 *. (Geometry.Rect.width region +. Geometry.Rect.height region)
