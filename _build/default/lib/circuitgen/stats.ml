let degree_histogram ?(max_degree = 16) (c : Netlist.Circuit.t) =
  let hist = Array.make (max_degree + 1) 0 in
  Array.iter
    (fun net ->
      let d = min max_degree (Netlist.Net.degree net) in
      hist.(d) <- hist.(d) + 1)
    c.Netlist.Circuit.nets;
  hist

let average_degree (c : Netlist.Circuit.t) =
  let n = Netlist.Circuit.num_nets c in
  if n = 0 then 0.
  else
    float_of_int
      (Array.fold_left (fun acc net -> acc + Netlist.Net.degree net) 0 c.Netlist.Circuit.nets)
    /. float_of_int n

let pins_per_cell (c : Netlist.Circuit.t) =
  let cells =
    Array.fold_left
      (fun acc (cl : Netlist.Cell.t) ->
        if cl.Netlist.Cell.kind = Netlist.Cell.Pad then acc else acc + 1)
      0 c.Netlist.Circuit.cells
  in
  if cells = 0 then 0.
  else
    float_of_int
      (Array.fold_left (fun acc net -> acc + Netlist.Net.degree net) 0 c.Netlist.Circuit.nets)
    /. float_of_int cells

type rent_point = { block_size : int; external_nets : float }

let internal_count (c : Netlist.Circuit.t) =
  Array.fold_left
    (fun acc (cl : Netlist.Cell.t) ->
      if cl.Netlist.Cell.kind = Netlist.Cell.Pad then acc else acc + 1)
    0 c.Netlist.Circuit.cells

let external_nets_of_window (c : Netlist.Circuit.t) ~lo ~hi =
  (* A net is external to window [lo, hi) when it has pins on both
     sides of the boundary. *)
  let count = ref 0 in
  Array.iter
    (fun net ->
      let inside = ref false and outside = ref false in
      List.iter
        (fun cid -> if cid >= lo && cid < hi then inside := true else outside := true)
        (Netlist.Net.cells net);
      if !inside && !outside then incr count)
    c.Netlist.Circuit.nets;
  !count

let rent_points (c : Netlist.Circuit.t) =
  let n = internal_count c in
  let sizes =
    let rec go s acc = if s > n / 4 then List.rev acc else go (2 * s) (s :: acc) in
    go 2 []
  in
  List.map
    (fun size ->
      (* Average over non-overlapping windows (cap the count so huge
         designs stay cheap). *)
      let windows = min 32 (n / size) in
      let stride = n / windows in
      let total = ref 0 in
      for w = 0 to windows - 1 do
        let lo = w * stride in
        total := !total + external_nets_of_window c ~lo ~hi:(lo + size)
      done;
      { block_size = size; external_nets = float_of_int !total /. float_of_int windows })
    (List.filter (fun s -> s <= n / 4 && s >= 2) sizes)

let rent_exponent c =
  let points =
    rent_points c |> List.filter (fun pt -> pt.external_nets > 0.)
  in
  match points with
  | [] | [ _ ] -> (0., 0.)
  | _ ->
    let xs = List.map (fun pt -> log (float_of_int pt.block_size)) points in
    let ys = List.map (fun pt -> log pt.external_nets) points in
    let n = float_of_int (List.length points) in
    let sx = List.fold_left ( +. ) 0. xs and sy = List.fold_left ( +. ) 0. ys in
    let sxx = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    let sxy = List.fold_left2 (fun acc x y -> acc +. (x *. y)) 0. xs ys in
    let p = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
    let log_t = (sy -. (p *. sx)) /. n in
    (exp log_t, p)
