type params = {
  name : string;
  num_cells : int;
  num_nets : int;
  num_pads : int;
  num_rows : int;
  utilization : float;
  seq_fraction : float;
  num_blocks : int;
  huge_nets : int;
  seed : int;
}

let default_params ~name ~num_cells ~num_nets ~num_rows ~seed =
  {
    name;
    num_cells;
    num_nets;
    num_pads = max 4 (num_cells / 40);
    num_rows;
    utilization = 0.8;
    seq_fraction = 0.12;
    num_blocks = 0;
    huge_nets = 0;
    seed;
  }

let row_height = 16.

(* Net degree: two-pin dominated with a geometric tail, matching standard-
   cell benchmark statistics. *)
let sample_degree rng =
  let u = Numeric.Rng.float rng 1. in
  if u < 0.55 then 2
  else if u < 0.75 then 3
  else if u < 0.85 then 4
  else if u < 0.90 then 5
  else min 24 (6 + Numeric.Rng.geometric rng 0.4)

let sample_cell_width rng = 4. +. (4. *. float_of_int (Numeric.Rng.int rng 7))

let generate p =
  if p.num_cells < 4 then invalid_arg "Gen.generate: too few cells";
  if p.utilization <= 0. || p.utilization > 1. then
    invalid_arg "Gen.generate: utilization out of (0,1]";
  let rng = Numeric.Rng.create p.seed in
  (* Standard cells. *)
  let widths = Array.init p.num_cells (fun _ -> sample_cell_width rng) in
  let std_area =
    Array.fold_left (fun acc w -> acc +. (w *. row_height)) 0. widths
  in
  (* Blocks: height a few rows, area a few hundred cells' worth. *)
  let block_dims =
    Array.init p.num_blocks (fun _ ->
        let rows = 2 + Numeric.Rng.int rng 5 in
        let h = float_of_int rows *. row_height in
        let w = Numeric.Rng.uniform rng 4. 12. *. row_height in
        (w, h))
  in
  let block_area =
    Array.fold_left (fun acc (w, h) -> acc +. (w *. h)) 0. block_dims
  in
  let core_height = float_of_int p.num_rows *. row_height in
  let core_width =
    (std_area +. block_area) /. (core_height *. p.utilization)
  in
  let region =
    Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:core_width ~y_hi:core_height
  in
  let n_internal = p.num_cells + p.num_blocks in
  let cells = ref [] in
  for i = 0 to p.num_cells - 1 do
    let sequential = Numeric.Rng.float rng 1. < p.seq_fraction in
    (* Intrinsic delays small enough that placement-dependent wire delay
       dominates the optimisation potential, as in the paper's Table 4
       (lower bound ≈ 25-40 % of the unoptimised longest path). *)
    let delay = Numeric.Rng.uniform rng 0.02e-9 0.12e-9 in
    let power = Numeric.Rng.uniform rng 0.2e-5 2e-5 in
    cells :=
      Netlist.Cell.make ~id:i
        ~name:(Printf.sprintf "c%d" i)
        ~width:widths.(i) ~height:row_height ~kind:Netlist.Cell.Standard
        ~sequential ~delay ~power ()
      :: !cells
  done;
  Array.iteri
    (fun k (w, h) ->
      let i = p.num_cells + k in
      cells :=
        Netlist.Cell.make ~id:i
          ~name:(Printf.sprintf "b%d" k)
          ~width:w ~height:h ~kind:Netlist.Cell.Block ~sequential:false
          ~delay:0.5e-9
          ~power:(Numeric.Rng.uniform rng 0.5e-3 2e-3)
          ()
        :: !cells)
    block_dims;
  (* Pad ring: evenly spaced centres on the region boundary. *)
  let pad_positions = ref [] in
  for k = 0 to p.num_pads - 1 do
    let i = n_internal + k in
    let t = float_of_int k /. float_of_int p.num_pads in
    let perim = 2. *. (core_width +. core_height) in
    let d = t *. perim in
    let px, py =
      if d < core_width then (d, 0.)
      else if d < core_width +. core_height then (core_width, d -. core_width)
      else if d < (2. *. core_width) +. core_height then
        (core_width -. (d -. core_width -. core_height), core_height)
      else (0., core_height -. (d -. (2. *. core_width) -. core_height))
    in
    cells :=
      Netlist.Cell.make ~id:i
        ~name:(Printf.sprintf "p%d" k)
        ~width:row_height ~height:row_height ~kind:Netlist.Cell.Pad ()
      :: !cells;
    pad_positions := (i, (px, py)) :: !pad_positions
  done;
  let cells = Array.of_list (List.rev !cells) in
  (* Pin offset inside a cell footprint. *)
  let pin_offset cell_id =
    let cl = cells.(cell_id) in
    ( Numeric.Rng.uniform rng (-0.4) 0.4 *. cl.Netlist.Cell.width,
      Numeric.Rng.uniform rng (-0.4) 0.4 *. cl.Netlist.Cell.height )
  in
  let nets = ref [] and num_nets = ref 0 in
  let connected = Array.make (Array.length cells) false in
  let push_net name members =
    (* Driver = lowest internal index keeps the combinational graph
       acyclic; pads sort after cells but are sequential endpoints
       anyway.  Cells count as connected only if the net survives the
       dedup (a "net" whose pins all landed on one cell is dropped). *)
    let members = List.sort_uniq compare members in
    match members with
    | [] | [ _ ] -> ()
    | _ ->
      List.iter (fun c -> connected.(c) <- true) members;
      let pins =
        List.map
          (fun cid ->
            let dx, dy = pin_offset cid in
            { Netlist.Net.cell = cid; dx; dy })
          members
        |> Array.of_list
      in
      nets := Netlist.Net.make ~id:!num_nets ~name pins :: !nets;
      incr num_nets
  in
  (* Pad nets: one per pad, linking the pad to a few index-proportional
     cells so boundary locality is plausible. *)
  for k = 0 to p.num_pads - 1 do
    let pad = n_internal + k in
    let anchor = Numeric.Rng.int rng p.num_cells in
    let extra = 1 + Numeric.Rng.int rng 3 in
    let members = ref [ pad ] in
    for _ = 1 to extra do
      let span = 1 + Numeric.Rng.int rng 64 in
      let c = max 0 (min (p.num_cells - 1) (anchor + Numeric.Rng.int rng (2 * span) - span)) in
      members := c :: !members
    done;
    push_net (Printf.sprintf "pad_n%d" k) !members
  done;
  (* Huge nets (> 60 pins) to exercise the STA degree cutoff. *)
  for k = 0 to p.huge_nets - 1 do
    let d = 80 + Numeric.Rng.int rng 70 in
    let members = ref [] in
    for _ = 1 to d do
      members := Numeric.Rng.int rng n_internal :: !members
    done;
    push_net (Printf.sprintf "huge%d" k) !members
  done;
  (* Rentian random nets: index-local windows of three scales. *)
  let budget = max 0 (p.num_nets - !num_nets) in
  for k = 0 to budget - 1 do
    let d = sample_degree rng in
    let center = Numeric.Rng.int rng n_internal in
    let u = Numeric.Rng.float rng 1. in
    let span =
      if u < 0.70 then 32
      else if u < 0.95 then max 64 (n_internal / 16)
      else n_internal
    in
    let members = ref [ center ] in
    for _ = 2 to d do
      let off = Numeric.Rng.int rng (2 * span) - span in
      let c = max 0 (min (n_internal - 1) (center + off)) in
      members := c :: !members
    done;
    push_net (Printf.sprintf "n%d" k) !members
  done;
  (* Chain any still-isolated internal cells so the placement matrix has
     no floating components. *)
  for i = 0 to n_internal - 1 do
    if not connected.(i) then begin
      let other = if i = 0 then 1 else i - 1 in
      push_net (Printf.sprintf "fix%d" i) [ i; other ]
    end
  done;
  let nets = Array.of_list (List.rev !nets) in
  let circuit =
    Netlist.Circuit.make ~name:p.name ~cells ~nets ~region ~row_height
  in
  (circuit, List.rev !pad_positions)

let initial_placement circuit fixed =
  Netlist.Placement.centered circuit ~fixed_positions:fixed
