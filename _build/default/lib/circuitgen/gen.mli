(** Synthetic benchmark-circuit generator.

    The MCNC circuits used by the paper are not redistributable inside
    this container, so we generate Rentian netlists with matching size
    parameters instead (see DESIGN.md, substitutions table).  Key
    properties preserved:

    - cell/net/row counts per circuit profile;
    - a realistic net-degree distribution (two-pin dominated, geometric
      tail, optional huge nets to exercise the > 60-pin STA exclusion);
    - Rent-style locality: cell indices act as a hierarchy coordinate and
      most nets connect index-local cells, so partitioning- and
      force-directed placers both find exploitable structure;
    - a pad ring of fixed I/O cells around the region boundary;
    - an acyclic combinational graph (net drivers have the lowest index on
      the net), so static timing analysis is well defined.

    Generation is deterministic in the seed. *)

type params = {
  name : string;
  num_cells : int;  (** movable standard cells *)
  num_nets : int;
  num_pads : int;
  num_rows : int;
  utilization : float;  (** target core-area utilisation, e.g. 0.8 *)
  seq_fraction : float;  (** fraction of cells that are registers *)
  num_blocks : int;  (** macro blocks (floorplanning profiles) *)
  huge_nets : int;  (** number of > 60-pin nets to add *)
  seed : int;
}

(** [default_params ~name ~num_cells ~num_nets ~num_rows ~seed] fills the
    remaining fields with proportionate defaults (pads ≈ perimeter share,
    utilisation 0.8, 12 % registers, no blocks, no huge nets). *)
val default_params :
  name:string ->
  num_cells:int ->
  num_nets:int ->
  num_rows:int ->
  seed:int ->
  params

(** [generate params] builds the circuit together with the pinned
    positions of its pads (and fixed blocks, if any), ready to seed a
    {!Netlist.Placement.centered} initial placement. *)
val generate :
  params -> Netlist.Circuit.t * (int * (float * float)) list

(** [initial_placement circuit fixed] is
    [Netlist.Placement.centered circuit ~fixed_positions:fixed]. *)
val initial_placement :
  Netlist.Circuit.t -> (int * (float * float)) list -> Netlist.Placement.t
