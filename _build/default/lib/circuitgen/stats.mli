(** Structural statistics of circuits — used to validate that the
    synthetic benchmarks behave like real standard-cell netlists (see the
    substitution rationale in DESIGN.md).

    The key check is Rent's rule: for a partition of B cells, the number
    of external nets T follows T ≈ t·Bᵖ with 0.5 ≲ p ≲ 0.75 for real
    logic.  Because the generator uses cell indices as its locality
    coordinate, contiguous index windows act as natural partitions. *)

(** Net-degree histogram: [hist.(d)] counts nets of degree [d] (the last
    bucket aggregates everything above). *)
val degree_histogram : ?max_degree:int -> Netlist.Circuit.t -> int array

(** [average_degree c] is mean pins per net. *)
val average_degree : Netlist.Circuit.t -> float

(** [pins_per_cell c] is mean pins per non-pad cell. *)
val pins_per_cell : Netlist.Circuit.t -> float

(** One Rent data point: partitions of [block_size] cells expose
    [external_nets] nets on average. *)
type rent_point = { block_size : int; external_nets : float }

(** [rent_points c] measures external-net counts for index-window
    partitions of sizes 2, 4, 8, … up to a quarter of the design. *)
val rent_points : Netlist.Circuit.t -> rent_point list

(** [rent_exponent c] least-squares fits log T = log t + p·log B over
    {!rent_points} and returns (t, p). *)
val rent_exponent : Netlist.Circuit.t -> float * float
