lib/circuitgen/gen.ml: Array Geometry List Netlist Numeric Printf
