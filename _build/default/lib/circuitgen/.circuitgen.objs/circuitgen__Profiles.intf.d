lib/circuitgen/profiles.mli: Gen
