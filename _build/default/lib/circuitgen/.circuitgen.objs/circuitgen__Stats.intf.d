lib/circuitgen/stats.mli: Netlist
