lib/circuitgen/stats.ml: Array List Netlist
