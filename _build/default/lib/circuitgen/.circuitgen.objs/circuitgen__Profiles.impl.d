lib/circuitgen/profiles.ml: Float Gen List String
