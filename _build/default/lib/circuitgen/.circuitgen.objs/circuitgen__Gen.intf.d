lib/circuitgen/gen.mli: Netlist
