examples/eco_flow.ml: Array Circuitgen Geometry Kraftwerk List Metrics Netlist Numeric Printf
