examples/congestion_heat.mli:
