examples/bookshelf_flow.ml: Circuitgen Filename Float Kraftwerk Legalize Metrics Netlist Printf Sys Unix
