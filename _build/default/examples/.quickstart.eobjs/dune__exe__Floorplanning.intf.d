examples/floorplanning.mli:
