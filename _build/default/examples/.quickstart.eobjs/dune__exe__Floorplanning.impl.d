examples/floorplanning.ml: Array Circuitgen Floorplan Geometry Kraftwerk Legalize List Netlist Printf
