examples/quickstart.ml: Circuitgen Kraftwerk Legalize List Metrics Netlist Printf
