examples/bookshelf_flow.mli:
