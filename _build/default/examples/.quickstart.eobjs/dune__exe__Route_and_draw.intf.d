examples/route_and_draw.mli:
