examples/congestion_heat.ml: Circuitgen Density Float Kraftwerk Metrics Printf Route
