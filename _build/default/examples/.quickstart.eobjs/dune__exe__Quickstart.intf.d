examples/quickstart.mli:
