examples/route_and_draw.ml: Circuitgen Density Geometry Kraftwerk Legalize Metrics Netlist Printf Route Viz
