examples/timing_driven.ml: Circuitgen Format Kraftwerk List Metrics Printf Timing
