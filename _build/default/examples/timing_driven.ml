(* Timing-driven placement (paper §5): optimise the longest path with
   iterative net weighting, then meet an explicit timing requirement
   exactly with the two-phase flow, printing the trade-off curve.

     dune exec examples/timing_driven.exe *)

let () =
  let profile = Circuitgen.Profiles.find "struct" in
  let params = Circuitgen.Profiles.params profile ~seed:7 in
  let circuit, pads = Circuitgen.Gen.generate params in
  let initial = Circuitgen.Gen.initial_placement circuit pads in
  let tp = Timing.Params.default in

  let lower = Timing.Sta.lower_bound tp circuit in
  Printf.printf "lower bound (all nets at zero length): %.2f ns\n" (lower *. 1e9);

  (* Plain area-driven placement as the reference. *)
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit initial in
  let plain = state.Kraftwerk.Placer.placement in
  let plain_delay = (Timing.Sta.analyse tp circuit plain).Timing.Sta.max_delay in
  Printf.printf "area-driven:  longest path %.2f ns, hpwl %.4g\n"
    (plain_delay *. 1e9)
    (Metrics.Wirelength.hpwl circuit plain);

  (* Continuous timing optimisation. *)
  let opt = Timing.Driven.optimize ~params:tp Kraftwerk.Config.standard circuit initial in
  let expl =
    Timing.Driven.exploitation ~unoptimized:plain_delay
      ~optimized:opt.Timing.Driven.final_delay ~lower_bound:lower
  in
  Printf.printf
    "timing-driven: longest path %.2f ns, hpwl %.4g — %.0f%% of the optimisation potential\n"
    (opt.Timing.Driven.final_delay *. 1e9)
    (Metrics.Wirelength.hpwl circuit opt.Timing.Driven.placement)
    (100. *. expl);

  (* Two-phase requirement mode: pick a target between the two results
     and meet it exactly, recording the wire-length/delay trade-off. *)
  let target = (plain_delay +. opt.Timing.Driven.final_delay) /. 2. in
  let req =
    Timing.Driven.meet_requirement ~params:tp Kraftwerk.Config.standard circuit
      initial ~target
  in
  Printf.printf "requirement %.2f ns: met=%b, achieved %.2f ns\n" (target *. 1e9)
    req.Timing.Driven.met
    (req.Timing.Driven.final_delay *. 1e9);
  (* The three worst paths of the optimised placement. *)
  Printf.printf "critical paths after optimisation:\n";
  List.iter
    (fun path -> Format.printf "%a" (Timing.Paths.pp_path circuit) path)
    (Timing.Paths.critical ~k:2 tp circuit opt.Timing.Driven.placement);
  Printf.printf "trade-off curve (step, hpwl, delay):\n";
  List.iter
    (fun (pt : Timing.Driven.trace_point) ->
      Printf.printf "  %3d  %12.4g  %.2f ns\n" pt.Timing.Driven.at_step
        pt.Timing.Driven.hpwl
        (pt.Timing.Driven.delay *. 1e9))
    req.Timing.Driven.trace
