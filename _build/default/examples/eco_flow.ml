(* ECO / logic-synthesis interaction (paper §5): perturb a placed
   netlist — rewire some nets, resize some gates, add a few cells — and
   re-place incrementally.  The density deviations are small, so the
   resulting forces move only the surroundings; the placement stays
   close to the original.

     dune exec examples/eco_flow.exe *)

let () =
  let profile = Circuitgen.Profiles.find "primary1" in
  let params = Circuitgen.Profiles.params profile ~seed:5 in
  let circuit, pads = Circuitgen.Gen.generate params in
  let initial = Circuitgen.Gen.initial_placement circuit pads in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit initial in
  let placed = state.Kraftwerk.Placer.placement in
  Printf.printf "baseline placement: hpwl %.4g\n" (Metrics.Wirelength.hpwl circuit placed);

  (* The ECO: 2%% of nets rewired, 5%% of gates resized, 4 cells added. *)
  let rng = Numeric.Rng.create 99 in
  let circuit' = Kraftwerk.Eco.rewire circuit rng ~fraction:0.02 in
  let circuit' = Kraftwerk.Eco.resize circuit' rng ~fraction:0.05 ~scale_range:(1.2, 1.8) in
  let circuit', placement' =
    Kraftwerk.Eco.add_cells circuit' placed rng
      ~specs:[ (12., 16.); (20., 16.); (8., 16.); (16., 16.) ]
  in
  Printf.printf "after ECO edits: %d cells, %d nets\n"
    (Netlist.Circuit.num_cells circuit')
    (Netlist.Circuit.num_nets circuit');

  (* Incremental re-placement from the existing coordinates. *)
  let adapted, reports =
    Kraftwerk.Eco.replace Kraftwerk.Config.standard circuit' placement'
      ~max_steps:12
  in
  (* Compare displacement of the original cells only. *)
  let n = Netlist.Circuit.num_cells circuit in
  let moved = ref 0. and worst = ref 0. in
  for i = 0 to n - 1 do
    if Netlist.Cell.movable circuit.Netlist.Circuit.cells.(i) then begin
      let dx = adapted.Netlist.Placement.x.(i) -. placed.Netlist.Placement.x.(i) in
      let dy = adapted.Netlist.Placement.y.(i) -. placed.Netlist.Placement.y.(i) in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      moved := !moved +. d;
      if d > !worst then worst := d
    end
  done;
  let region = circuit.Netlist.Circuit.region in
  let diag =
    sqrt
      (((Geometry.Rect.width region) ** 2.) +. ((Geometry.Rect.height region) ** 2.))
  in
  Printf.printf
    "incremental re-place: %d transformations, mean displacement %.2f (%.2f%% of the die diagonal), max %.1f\n"
    (List.length reports)
    (!moved /. float_of_int (Netlist.Circuit.num_movable circuit))
    (100. *. !moved /. float_of_int (Netlist.Circuit.num_movable circuit) /. diag)
    !worst;
  Printf.printf "adapted hpwl %.4g\n" (Metrics.Wirelength.hpwl circuit' adapted)
