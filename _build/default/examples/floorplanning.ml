(* Mixed block/cell floorplanning (paper §5): macro blocks and standard
   cells are placed together by the same force-directed iteration — the
   density model treats a block as nothing more than a big cell — and
   the blocks are then snapped and de-overlapped.

     dune exec examples/floorplanning.exe *)

let () =
  let base = Circuitgen.Profiles.find "primary1" in
  let params =
    { (Circuitgen.Profiles.params base ~seed:3) with
      Circuitgen.Gen.name = "primary1+blocks";
      Circuitgen.Gen.num_blocks = 8 }
  in
  let circuit, pads = Circuitgen.Gen.generate params in
  let blocks =
    Array.to_list circuit.Netlist.Circuit.cells
    |> List.filter (fun (cl : Netlist.Cell.t) ->
           cl.Netlist.Cell.kind = Netlist.Cell.Block)
  in
  Printf.printf "mixed design: %d standard cells + %d blocks (%.0f%% of cell area)\n"
    (Netlist.Circuit.num_cells circuit - List.length blocks
    - (Array.length circuit.Netlist.Circuit.cells
      - Netlist.Circuit.num_movable circuit))
    (List.length blocks)
    (100.
    *. (List.fold_left (fun a c -> a +. Netlist.Cell.area c) 0. blocks
       /. Netlist.Circuit.total_cell_area circuit));

  let initial = Circuitgen.Gen.initial_placement circuit pads in
  let result = Floorplan.Mixed.place Kraftwerk.Config.standard circuit initial in
  Printf.printf "global hpwl   %.4g\n" result.Floorplan.Mixed.hpwl_global;
  Printf.printf "final  hpwl   %.4g (blocks moved %.1f total during snapping)\n"
    result.Floorplan.Mixed.hpwl_final result.Floorplan.Mixed.block_displacement;
  Printf.printf "cells displaced %.1f on average during legalisation\n"
    (result.Floorplan.Mixed.cell_report.Legalize.Abacus.total_displacement
    /. float_of_int (Netlist.Circuit.num_movable circuit));

  (* Blocks must not overlap each other after the flow. *)
  let rects = Floorplan.Mixed.block_rects circuit result.Floorplan.Mixed.placement in
  let overlaps = ref 0 in
  List.iteri
    (fun i (_, a) ->
      List.iteri
        (fun j (_, b) ->
          if j > i && Geometry.Rect.overlap_area a b > 1e-6 then incr overlaps)
        rects)
    rects;
  Printf.printf "block overlaps after legalisation: %d\n" !overlaps
