(* Quickstart: generate a small circuit, run the force-directed global
   placer, legalise, and print quality metrics at each stage.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A benchmark circuit.  Profiles mirror the paper's Table 1; the
     netlist itself is synthetic (see DESIGN.md). *)
  let profile = Circuitgen.Profiles.find "primary1" in
  let params = Circuitgen.Profiles.params profile ~seed:42 in
  let circuit, pad_positions = Circuitgen.Gen.generate params in
  Printf.printf "circuit: %d cells, %d nets, %d rows, utilization %.0f%%\n"
    (Netlist.Circuit.num_cells circuit)
    (Netlist.Circuit.num_nets circuit)
    (Netlist.Circuit.num_rows circuit)
    (100. *. Netlist.Circuit.utilization circuit);

  (* 2. The paper's initial placement: movable cells at the region
     centre, pads pinned on the boundary. *)
  let initial = Circuitgen.Gen.initial_placement circuit pad_positions in

  (* 3. Iterative force-directed global placement (the paper's §4). *)
  let state, reports =
    Kraftwerk.Placer.run Kraftwerk.Config.standard circuit initial
  in
  let global = state.Kraftwerk.Placer.placement in
  Printf.printf "global placement: %d transformations, hpwl %.4g, overlap ratio %.2f\n"
    (List.length reports)
    (Metrics.Wirelength.hpwl circuit global)
    (Metrics.Overlap.overlap_ratio circuit global);

  (* 4. Final placement: Abacus legalisation + local improvement. *)
  let rep = Legalize.Abacus.legalize circuit global () in
  let final = rep.Legalize.Abacus.placement in
  let moves, gain = Legalize.Improve.run circuit final in
  Printf.printf
    "legalised: hpwl %.4g (max displacement %.1f), improvement pass: %d moves, -%.4g hpwl\n"
    (Metrics.Wirelength.hpwl circuit final)
    rep.Legalize.Abacus.max_displacement moves gain;
  Printf.printf "legal: %b\n" (Legalize.Check.is_legal circuit final)
