let () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads = Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:42) in
  let p0 = Circuitgen.Gen.initial_placement circuit pads in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let p = state.Kraftwerk.Placer.placement in
  let tp = Timing.Params.default in
  let sta = Timing.Sta.analyse tp circuit p in
  let paths = Timing.Paths.critical ~k:3 tp circuit p in
  Printf.printf "sta max=%.3fns, %d paths found\n" (sta.Timing.Sta.max_delay *. 1e9) (List.length paths);
  List.iteri (fun i (path : Timing.Paths.path) ->
    Printf.printf "-- path %d: delay %.3fns, %d elements\n" i (path.Timing.Paths.delay *. 1e9)
      (List.length path.Timing.Paths.elements)) paths;
  (match paths with
   | first :: _ ->
     Printf.printf "worst path delay matches STA: %b\n"
       (Float.abs (first.Timing.Paths.delay -. sta.Timing.Sta.max_delay) < 1e-15);
     Format.printf "%a" (Timing.Paths.pp_path circuit) { first with Timing.Paths.elements = first.Timing.Paths.elements }
   | [] -> ())
