let legalized_hpwl c gp =
  let rep = Legalize.Abacus.legalize c gp () in
  let lp = rep.Legalize.Abacus.placement in
  ignore (Legalize.Improve.run c lp);
  Metrics.Wirelength.hpwl c lp

let run_cfg name cfg circuit p0 =
  let state = Kraftwerk.Placer.init cfg circuit p0 in
  let steps = ref 0 in
  let t0 = Unix.gettimeofday () in
  while !steps < cfg.Kraftwerk.Config.max_iterations && not (Kraftwerk.Placer.converged state) do
    ignore (Kraftwerk.Placer.transform state); incr steps
  done;
  let t1 = Unix.gettimeofday () in
  Printf.printf "%-24s steps=%3d legal_hpwl=%10.0f t=%5.2fs\n%!" name !steps
    (legalized_hpwl circuit state.Kraftwerk.Placer.placement) (t1 -. t0)

let () =
  List.iter (fun pname ->
    let prof = Circuitgen.Profiles.find pname in
    let params = Circuitgen.Profiles.params prof ~seed:42 in
    let circuit, fixed = Circuitgen.Gen.generate params in
    let p0 = Circuitgen.Gen.initial_placement circuit fixed in
    Printf.printf "--- %s ---\n" pname;
    let q = Kraftwerk.Config.standard in
    run_cfg "stop=4" q circuit p0;
    run_cfg "stop=2" { q with stop_multiplier = 2. } circuit p0;
    run_cfg "K=0.03 stop=2" { q with k_param = 0.03; stop_multiplier = 2. } circuit p0)
    [ "fract"; "primary1"; "struct"; "industry2" ]
