(* Tests for Elmore STA, criticality recurrence, and the timing-driven
   flows. *)

let approx = Alcotest.float 1e-12

let pin c = { Netlist.Net.cell = c; dx = 0.; dy = 0. }

let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:1000. ~y_hi:1000.

(* FF → a → b → FF chain with known cell delays. *)
let chain_circuit () =
  let mk id name ~seq ~delay =
    Netlist.Cell.make ~id ~name ~width:4. ~height:4. ~sequential:seq ~delay ()
  in
  let cells =
    [|
      mk 0 "ff_in" ~seq:true ~delay:0.1e-9;
      mk 1 "a" ~seq:false ~delay:0.2e-9;
      mk 2 "b" ~seq:false ~delay:0.3e-9;
      mk 3 "ff_out" ~seq:true ~delay:0.1e-9;
    |]
  in
  let nets =
    [|
      Netlist.Net.make ~id:0 ~name:"n0" [| pin 0; pin 1 |];
      Netlist.Net.make ~id:1 ~name:"n1" [| pin 1; pin 2 |];
      Netlist.Net.make ~id:2 ~name:"n2" [| pin 2; pin 3 |];
    |]
  in
  Netlist.Circuit.make ~name:"chain" ~cells ~nets ~region ~row_height:4.

let params = Timing.Params.default

let test_net_delay_monotone_in_length () =
  let d1 = Timing.Sta.net_delay params ~length:100. ~sinks:1 in
  let d2 = Timing.Sta.net_delay params ~length:200. ~sinks:1 in
  Alcotest.(check bool) "longer is slower" true (d2 > d1);
  Alcotest.(check bool) "positive" true (d1 > 0.)

let test_net_delay_zero_length () =
  Alcotest.check approx "zero wire, zero load term"
    (params.Timing.Params.driver_resistance *. params.Timing.Params.pin_load)
    (Timing.Sta.net_delay params ~length:0. ~sinks:1)

let test_chain_longest_path () =
  let c = chain_circuit () in
  (* All cells at the same point: net lengths zero. *)
  let p = Netlist.Placement.create c in
  let sta = Timing.Sta.analyse params c p in
  (* Path: ff_in(0.1) + nd + a(0.2) + nd + b(0.3) + nd → ff_out input,
     where nd is the zero-length net delay (driver resistance × pin
     load). *)
  let nd = Timing.Sta.net_delay params ~length:0. ~sinks:1 in
  Alcotest.check (Alcotest.float 1e-15) "chain delay"
    (0.1e-9 +. 0.2e-9 +. 0.3e-9 +. (3. *. nd))
    sta.Timing.Sta.max_delay

let test_stretching_a_net_increases_delay () =
  let c = chain_circuit () in
  let p = Netlist.Placement.create c in
  let base = (Timing.Sta.analyse params c p).Timing.Sta.max_delay in
  p.Netlist.Placement.x.(2) <- 800.;
  let stretched = (Timing.Sta.analyse params c p).Timing.Sta.max_delay in
  Alcotest.(check bool) "stretched slower" true (stretched > base)

let test_critical_net_has_least_slack () =
  let c = chain_circuit () in
  let p = Netlist.Placement.create c in
  (* Stretch net 1 (a→b): it lies on the only path, slack ≈ 0 for all
     three nets, but stretch only net 1's span. *)
  p.Netlist.Placement.x.(1) <- 0.;
  p.Netlist.Placement.x.(2) <- 900.;
  p.Netlist.Placement.x.(3) <- 900.;
  let sta = Timing.Sta.analyse params c p in
  (* On a single path every net has the same (zero) slack. *)
  Array.iter
    (fun s -> Alcotest.(check bool) "zero slack on critical path" true (Float.abs s < 1e-15))
    sta.Timing.Sta.net_slack

let test_off_path_net_has_positive_slack () =
  let mk id name ~seq ~delay =
    Netlist.Cell.make ~id ~name ~width:4. ~height:4. ~sequential:seq ~delay ()
  in
  let cells =
    [|
      mk 0 "ff" ~seq:true ~delay:0.1e-9;
      mk 1 "slow" ~seq:false ~delay:1.0e-9;
      mk 2 "fast" ~seq:false ~delay:0.1e-9;
      mk 3 "ff2" ~seq:true ~delay:0.1e-9;
    |]
  in
  let nets =
    [|
      Netlist.Net.make ~id:0 ~name:"to_slow" [| pin 0; pin 1 |];
      Netlist.Net.make ~id:1 ~name:"to_fast" [| pin 0; pin 2 |];
      Netlist.Net.make ~id:2 ~name:"slow_out" [| pin 1; pin 3 |];
      Netlist.Net.make ~id:3 ~name:"fast_out" [| pin 2; pin 3 |];
    |]
  in
  let c = Netlist.Circuit.make ~name:"2path" ~cells ~nets ~region ~row_height:4. in
  let p = Netlist.Placement.create c in
  let sta = Timing.Sta.analyse params c p in
  Alcotest.(check bool) "fast branch has slack" true
    (sta.Timing.Sta.net_slack.(1) > 0.5e-9);
  Alcotest.(check bool) "slow branch critical" true
    (Float.abs sta.Timing.Sta.net_slack.(0) < 1e-15)

let test_big_nets_excluded () =
  let cells =
    Array.init 80 (fun i ->
        Netlist.Cell.make ~id:i ~name:(Printf.sprintf "c%d" i) ~width:4.
          ~height:4. ~sequential:(i = 0) ())
  in
  let big = Netlist.Net.make ~id:0 ~name:"big" (Array.init 80 (fun i -> pin i)) in
  let c =
    Netlist.Circuit.make ~name:"big" ~cells ~nets:[| big |] ~region ~row_height:4.
  in
  let sta = Timing.Sta.analyse params c (Netlist.Placement.create c) in
  Alcotest.(check int) "net excluded" 0 sta.Timing.Sta.analysed_nets;
  Alcotest.(check bool) "slack infinite" true
    (sta.Timing.Sta.net_slack.(0) = Float.infinity)

let test_lower_bound_below_any_placement () =
  let prof = Circuitgen.Profiles.find "fract" in
  let c, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:8)
  in
  let p = Circuitgen.Gen.initial_placement c pads in
  let lb = Timing.Sta.lower_bound params c in
  let placed = (Timing.Sta.analyse params c p).Timing.Sta.max_delay in
  Alcotest.(check bool) "lb ≤ placed" true (lb <= placed +. 1e-18)

let test_cycle_detected () =
  let mk id = Netlist.Cell.make ~id ~name:(string_of_int id) ~width:4. ~height:4. () in
  let cells = [| mk 0; mk 1 |] in
  let nets =
    [|
      Netlist.Net.make ~id:0 ~name:"fwd" [| pin 0; pin 1 |];
      Netlist.Net.make ~id:1 ~name:"bwd" [| pin 1; pin 0 |];
    |]
  in
  let c = Netlist.Circuit.make ~name:"cyc" ~cells ~nets ~region ~row_height:4. in
  Alcotest.(check bool) "raises on cycle" true
    (try
       ignore (Timing.Sta.analyse params c (Netlist.Placement.create c));
       false
     with Failure _ -> true)

(* --- criticality recurrence --- *)

let test_criticality_recurrence () =
  let crit = Timing.Criticality.create 10 in
  (* Net 0 most critical, everything else relaxed. *)
  let slack = Array.make 10 1e-9 in
  slack.(0) <- -1e-9;
  Timing.Criticality.update crit params ~net_slack:slack;
  Alcotest.check approx "first update: (0+1)/2" 0.5 (Timing.Criticality.criticality crit 0);
  Alcotest.check approx "others halved from 0" 0. (Timing.Criticality.criticality crit 1);
  Timing.Criticality.update crit params ~net_slack:slack;
  Alcotest.check approx "second update: (0.5+1)/2" 0.75
    (Timing.Criticality.criticality crit 0)

let test_criticality_decays_when_not_critical () =
  let crit = Timing.Criticality.create 10 in
  let slack = Array.make 10 1e-9 in
  slack.(0) <- -1e-9;
  Timing.Criticality.update crit params ~net_slack:slack;
  (* Now net 5 becomes the critical one. *)
  let slack2 = Array.make 10 1e-9 in
  slack2.(5) <- -2e-9;
  Timing.Criticality.update crit params ~net_slack:slack2;
  Alcotest.check approx "old critical decays" 0.25 (Timing.Criticality.criticality crit 0);
  Alcotest.check approx "new critical rises" 0.5 (Timing.Criticality.criticality crit 5)

let test_excluded_nets_never_critical () =
  let crit = Timing.Criticality.create 4 in
  let slack = [| Float.infinity; 1e-9; Float.infinity; -1e-9 |] in
  Timing.Criticality.update crit params ~net_slack:slack;
  Alcotest.check approx "excluded stays 0" 0. (Timing.Criticality.criticality crit 0);
  Alcotest.(check bool) "worst analysed is critical" true
    (Timing.Criticality.criticality crit 3 > 0.)

let test_apply_weights_and_cap () =
  let crit = Timing.Criticality.create 2 in
  let slack = [| -1e-9; 1e-9 |] in
  Timing.Criticality.update crit params ~net_slack:slack;
  let w = [| 30.; 1. |] in
  Timing.Criticality.apply_weights ~cap:32. crit w;
  Alcotest.check approx "capped" 32. w.(0);
  Alcotest.check approx "unit stays" 1. w.(1)

(* --- driven flows --- *)

let test_optimize_improves_delay () =
  let prof = Circuitgen.Profiles.find "primary1" in
  let c, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale:0.5 prof ~seed:6)
  in
  let p0 = Circuitgen.Gen.initial_placement c pads in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard c p0 in
  let plain =
    (Timing.Sta.analyse params c state.Kraftwerk.Placer.placement).Timing.Sta.max_delay
  in
  let r = Timing.Driven.optimize Kraftwerk.Config.standard c p0 in
  Alcotest.(check bool) "optimized faster than plain" true
    (r.Timing.Driven.final_delay < plain)

let test_meet_requirement_flag () =
  let prof = Circuitgen.Profiles.find "fract" in
  let c, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:6)
  in
  let p0 = Circuitgen.Gen.initial_placement c pads in
  (* A requirement looser than anything achievable is met with zero
     extra steps. *)
  let r =
    Timing.Driven.meet_requirement Kraftwerk.Config.standard c p0 ~target:1.
  in
  Alcotest.(check bool) "trivially met" true r.Timing.Driven.met;
  (* An impossible (negative) requirement is not met. *)
  let r2 =
    Timing.Driven.meet_requirement ~max_extra_steps:3 Kraftwerk.Config.standard
      c p0 ~target:(-1.)
  in
  Alcotest.(check bool) "impossible not met" false r2.Timing.Driven.met

let test_exploitation_math () =
  Alcotest.check approx "half"
    0.5
    (Timing.Driven.exploitation ~unoptimized:10. ~optimized:7.5 ~lower_bound:5.);
  Alcotest.check approx "degenerate potential" 0.
    (Timing.Driven.exploitation ~unoptimized:5. ~optimized:4. ~lower_bound:5.)

let suite =
  [
    Alcotest.test_case "net delay monotone" `Quick test_net_delay_monotone_in_length;
    Alcotest.test_case "net delay zero length" `Quick test_net_delay_zero_length;
    Alcotest.test_case "chain longest path" `Quick test_chain_longest_path;
    Alcotest.test_case "stretching increases delay" `Quick test_stretching_a_net_increases_delay;
    Alcotest.test_case "critical path slack" `Quick test_critical_net_has_least_slack;
    Alcotest.test_case "off-path slack" `Quick test_off_path_net_has_positive_slack;
    Alcotest.test_case "big nets excluded" `Quick test_big_nets_excluded;
    Alcotest.test_case "lower bound" `Quick test_lower_bound_below_any_placement;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detected;
    Alcotest.test_case "criticality recurrence" `Quick test_criticality_recurrence;
    Alcotest.test_case "criticality decay" `Quick test_criticality_decays_when_not_critical;
    Alcotest.test_case "excluded never critical" `Quick test_excluded_nets_never_critical;
    Alcotest.test_case "weights cap" `Quick test_apply_weights_and_cap;
    Alcotest.test_case "optimize improves" `Slow test_optimize_improves_delay;
    Alcotest.test_case "requirement flag" `Quick test_meet_requirement_flag;
    Alcotest.test_case "exploitation math" `Quick test_exploitation_math;
  ]
