(* Tests for Geometry.Grid2: bins, interpolation, splatting, and the
   largest-empty-square search that drives the stopping criterion. *)

let approx = Alcotest.float 1e-9

let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:8. ~y_hi:4.

let test_create_dims () =
  let g = Geometry.Grid2.create region ~nx:4 ~ny:2 in
  Alcotest.(check int) "nx" 4 (Geometry.Grid2.nx g);
  Alcotest.(check int) "ny" 2 (Geometry.Grid2.ny g);
  Alcotest.check approx "dx" 2. (Geometry.Grid2.dx g);
  Alcotest.check approx "dy" 2. (Geometry.Grid2.dy g)

let test_get_set_add () =
  let g = Geometry.Grid2.create region ~nx:4 ~ny:2 in
  Geometry.Grid2.set g 1 1 5.;
  Geometry.Grid2.add g 1 1 2.;
  Alcotest.check approx "value" 7. (Geometry.Grid2.get g 1 1);
  Alcotest.check approx "untouched" 0. (Geometry.Grid2.get g 0 0)

let test_bin_geometry () =
  let g = Geometry.Grid2.create region ~nx:4 ~ny:2 in
  let r = Geometry.Grid2.bin_rect g 1 0 in
  Alcotest.check approx "x_lo" 2. r.Geometry.Rect.x_lo;
  Alcotest.check approx "y_hi" 2. r.Geometry.Rect.y_hi;
  let cx, cy = Geometry.Grid2.bin_center g 3 1 in
  Alcotest.check approx "cx" 7. cx;
  Alcotest.check approx "cy" 3. cy

let test_locate () =
  let g = Geometry.Grid2.create region ~nx:4 ~ny:2 in
  Alcotest.(check (pair int int)) "interior" (1, 0) (Geometry.Grid2.locate g 2.5 1.);
  Alcotest.(check (pair int int)) "clamped" (3, 1) (Geometry.Grid2.locate g 100. 100.);
  Alcotest.(check (pair int int)) "clamped low" (0, 0) (Geometry.Grid2.locate g (-5.) (-5.))

let test_sample_exact_at_centres () =
  let g = Geometry.Grid2.create region ~nx:4 ~ny:2 in
  Geometry.Grid2.set g 2 1 9. ;
  let cx, cy = Geometry.Grid2.bin_center g 2 1 in
  Alcotest.check approx "exact" 9. (Geometry.Grid2.sample g cx cy)

let test_sample_linear_field () =
  (* Fill bins with f(x) = x at bin centres; bilinear sampling must
     reproduce the linear field between centres. *)
  let g = Geometry.Grid2.create region ~nx:8 ~ny:4 in
  Geometry.Grid2.map_inplace (fun ix iy _ -> fst (Geometry.Grid2.bin_center g ix iy)) g;
  Alcotest.check approx "midpoint" 2. (Geometry.Grid2.sample g 2. 2.);
  Alcotest.check approx "quarter" 3.25 (Geometry.Grid2.sample g 3.25 1.)

let test_splat_conserves_total () =
  let g = Geometry.Grid2.create region ~nx:8 ~ny:4 in
  Geometry.Grid2.splat_rect g
    (Geometry.Rect.make ~x_lo:1.3 ~y_lo:0.7 ~x_hi:4.9 ~y_hi:2.2)
    10.;
  Alcotest.check (Alcotest.float 1e-6) "total" 10. (Geometry.Grid2.total g)

let test_splat_clipped_rect_keeps_inside_share () =
  let g = Geometry.Grid2.create region ~nx:8 ~ny:4 in
  (* Half of the rect hangs off the left edge: only the inside half is
     deposited. *)
  Geometry.Grid2.splat_rect g
    (Geometry.Rect.make ~x_lo:(-2.) ~y_lo:0. ~x_hi:2. ~y_hi:4.)
    8.;
  Alcotest.check (Alcotest.float 1e-6) "inside half" 4. (Geometry.Grid2.total g)

let test_splat_fully_outside () =
  let g = Geometry.Grid2.create region ~nx:8 ~ny:4 in
  Geometry.Grid2.splat_rect g
    (Geometry.Rect.make ~x_lo:100. ~y_lo:0. ~x_hi:104. ~y_hi:4.)
    8.;
  Alcotest.check approx "nothing" 0. (Geometry.Grid2.total g)

let test_splat_degenerate_rect () =
  let g = Geometry.Grid2.create region ~nx:8 ~ny:4 in
  Geometry.Grid2.splat_rect g
    (Geometry.Rect.make ~x_lo:3. ~y_lo:2. ~x_hi:3. ~y_hi:2.)
    5.;
  Alcotest.check approx "point mass" 5. (Geometry.Grid2.total g)

let test_splat_single_bin () =
  let g = Geometry.Grid2.create region ~nx:4 ~ny:2 in
  Geometry.Grid2.splat_rect g
    (Geometry.Rect.make ~x_lo:0.5 ~y_lo:0.5 ~x_hi:1.5 ~y_hi:1.5)
    3.;
  Alcotest.check approx "all in bin (0,0)" 3. (Geometry.Grid2.get g 0 0)

let test_fold_and_map () =
  let g = Geometry.Grid2.create region ~nx:2 ~ny:2 in
  Geometry.Grid2.map_inplace (fun ix iy _ -> float_of_int ((iy * 2) + ix)) g;
  let sum = Geometry.Grid2.fold (fun acc _ _ v -> acc +. v) 0. g in
  Alcotest.check approx "fold sum" 6. sum

let test_largest_empty_square_all_empty () =
  let g = Geometry.Grid2.create region ~nx:8 ~ny:4 in
  Alcotest.check approx "whole height" 4.
    (Geometry.Grid2.largest_empty_square g ~threshold:0.)

let test_largest_empty_square_blocked () =
  let g = Geometry.Grid2.create region ~nx:8 ~ny:4 in
  (* Occupy a full column, splitting the region into a 3-wide and a
     4-wide area of 4-high bins: best square is 4 bins = 4 units... the
     left part is 3 wide so 3, the right part is 4 wide and 4 high. *)
  for iy = 0 to 3 do
    Geometry.Grid2.set g 3 iy 1.
  done;
  Alcotest.check approx "right block" 4.
    (Geometry.Grid2.largest_empty_square g ~threshold:0.5)

let test_largest_empty_square_full () =
  let g = Geometry.Grid2.create region ~nx:4 ~ny:4 in
  Geometry.Grid2.map_inplace (fun _ _ _ -> 1.) g;
  Alcotest.check approx "none" 0.
    (Geometry.Grid2.largest_empty_square g ~threshold:0.5)

let prop_splat_total_conserved =
  QCheck.Test.make ~name:"splat conserves mass for rects intersecting region"
    QCheck.(
      quad (float_range 0.5 7.) (float_range 0.5 3.) (float_range 0.3 3.)
        (float_range 0.3 2.))
    (fun (cx, cy, w, h) ->
      let g = Geometry.Grid2.create region ~nx:8 ~ny:4 in
      let rect = Geometry.Rect.of_center ~cx ~cy ~w ~h in
      Geometry.Grid2.splat_rect g rect 1.;
      let inside =
        Geometry.Rect.overlap_area rect region /. Geometry.Rect.area rect
      in
      Float.abs (Geometry.Grid2.total g -. inside) < 1e-6)

let suite =
  [
    Alcotest.test_case "create dims" `Quick test_create_dims;
    Alcotest.test_case "get/set/add" `Quick test_get_set_add;
    Alcotest.test_case "bin geometry" `Quick test_bin_geometry;
    Alcotest.test_case "locate" `Quick test_locate;
    Alcotest.test_case "sample exact at centres" `Quick test_sample_exact_at_centres;
    Alcotest.test_case "sample linear field" `Quick test_sample_linear_field;
    Alcotest.test_case "splat conserves total" `Quick test_splat_conserves_total;
    Alcotest.test_case "splat clipped" `Quick test_splat_clipped_rect_keeps_inside_share;
    Alcotest.test_case "splat outside" `Quick test_splat_fully_outside;
    Alcotest.test_case "splat degenerate" `Quick test_splat_degenerate_rect;
    Alcotest.test_case "splat single bin" `Quick test_splat_single_bin;
    Alcotest.test_case "fold and map" `Quick test_fold_and_map;
    Alcotest.test_case "empty square: all empty" `Quick test_largest_empty_square_all_empty;
    Alcotest.test_case "empty square: blocked" `Quick test_largest_empty_square_blocked;
    Alcotest.test_case "empty square: full" `Quick test_largest_empty_square_full;
    QCheck_alcotest.to_alcotest prop_splat_total_conserved;
  ]
