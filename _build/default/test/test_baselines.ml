(* Tests for the comparison placers: FM partitioning, the Gordian-like
   recursive placer, and the annealer. *)

module Fm = Baselines.Fm

let build ?(name = "fract") ?(scale = 1.0) ?(seed = 31) () =
  let prof = Circuitgen.Profiles.find name in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale prof ~seed)
  in
  (circuit, Circuitgen.Gen.initial_placement circuit pads)

(* --- FM --- *)

let test_cut_size () =
  let h =
    {
      Fm.num_vertices = 4;
      Fm.areas = [| 1.; 1.; 1.; 1. |];
      Fm.nets = [| [| 0; 1 |]; [| 2; 3 |]; [| 1; 2 |] |];
    }
  in
  Alcotest.(check int) "one cut" 1 (Fm.cut_size h [| false; false; true; true |]);
  Alcotest.(check int) "all same side" 0 (Fm.cut_size h [| false; false; false; false |]);
  Alcotest.(check int) "worst split" 3 (Fm.cut_size h [| false; true; false; true |])

let test_fm_improves_bad_partition () =
  (* Two 4-cliques joined by a single bridge net: the optimal bisection
     cuts only the bridge. *)
  let clique base =
    let edges = ref [] in
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        edges := [| base + i; base + j |] :: !edges
      done
    done;
    !edges
  in
  let nets = Array.of_list ((clique 0 @ clique 4) @ [ [| 3; 4 |] ]) in
  let h = { Fm.num_vertices = 8; Fm.areas = Array.make 8 1.; Fm.nets = nets } in
  (* Deliberately interleaved initial partition. *)
  let sides = Array.init 8 (fun i -> i mod 2 = 1) in
  let cut = Fm.partition h ~sides in
  Alcotest.(check int) "optimal cut" 1 cut;
  (* The two cliques end up on opposite sides. *)
  Alcotest.(check bool) "clique 1 together" true
    (sides.(0) = sides.(1) && sides.(1) = sides.(2) && sides.(2) = sides.(3));
  Alcotest.(check bool) "clique 2 together" true
    (sides.(4) = sides.(5) && sides.(5) = sides.(6) && sides.(6) = sides.(7));
  Alcotest.(check bool) "opposite" true (sides.(0) <> sides.(4))

let test_fm_respects_balance () =
  let h =
    {
      Fm.num_vertices = 10;
      Fm.areas = Array.make 10 1.;
      Fm.nets = Array.init 9 (fun i -> [| i; i + 1 |]);
    }
  in
  let sides = Array.init 10 (fun i -> i >= 5) in
  ignore (Fm.partition ~balance:0.6 h ~sides);
  let count = Array.fold_left (fun a s -> if s then a + 1 else a) 0 sides in
  Alcotest.(check bool) "both sides populated" true (count >= 4 && count <= 6)

let test_fm_locked_vertices_stay () =
  let h =
    {
      Fm.num_vertices = 4;
      Fm.areas = Array.make 4 1.;
      Fm.nets = [| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |] |];
    }
  in
  let sides = [| false; true; false; true |] in
  let locked = [| true; false; false; true |] in
  ignore (Fm.partition ~locked h ~sides);
  Alcotest.(check bool) "v0 stays" false sides.(0);
  Alcotest.(check bool) "v3 stays" true sides.(3)

let test_fm_deterministic () =
  let h =
    {
      Fm.num_vertices = 12;
      Fm.areas = Array.make 12 1.;
      Fm.nets = Array.init 18 (fun i -> [| i mod 12; (i * 5 + 1) mod 12 |]);
    }
  in
  let s1 = Array.init 12 (fun i -> i mod 2 = 0) in
  let s2 = Array.copy s1 in
  let c1 = Fm.partition h ~sides:s1 in
  let c2 = Fm.partition h ~sides:s2 in
  Alcotest.(check int) "same cut" c1 c2;
  Alcotest.(check bool) "same sides" true (s1 = s2)

let prop_fm_never_worsens =
  QCheck.Test.make ~name:"FM never increases the cut" QCheck.small_int
    (fun seed ->
      let rng = Numeric.Rng.create seed in
      let n = 16 in
      let nets =
        Array.init 24 (fun _ ->
            let a = Numeric.Rng.int rng n in
            let b = (a + 1 + Numeric.Rng.int rng (n - 1)) mod n in
            [| a; b |])
      in
      let h = { Fm.num_vertices = n; Fm.areas = Array.make n 1.; Fm.nets = nets } in
      let sides = Array.init n (fun _ -> Numeric.Rng.bool rng) in
      let before = Fm.cut_size h sides in
      let after = Fm.partition h ~sides in
      after <= before)

(* --- Gordian-like --- *)

let test_gordian_places_in_region () =
  let circuit, p0 = build () in
  let p, levels = Baselines.Gordian.place circuit p0 in
  Alcotest.(check bool) "did partition" true (levels > 0);
  Alcotest.(check (float 1e-6)) "inside region" 0.
    (Metrics.Overlap.out_of_region_area circuit p)

let test_gordian_spreads () =
  let circuit, p0 = build () in
  let p, _ = Baselines.Gordian.place circuit p0 in
  Alcotest.(check bool) "less overlap than centred" true
    (Metrics.Overlap.overlap_ratio circuit p
    < Metrics.Overlap.overlap_ratio circuit p0 /. 4.)

let test_gordian_deterministic () =
  let circuit, p0 = build () in
  let p1, _ = Baselines.Gordian.place circuit p0 in
  let p2, _ = Baselines.Gordian.place circuit p0 in
  Alcotest.check (Alcotest.float 0.) "identical" 0. (Netlist.Placement.displacement p1 p2)

(* --- Annealer --- *)

let test_annealer_improves_over_striped_start () =
  let circuit, p0 = build () in
  let config = Baselines.Annealer.quick_config in
  let _, stats = Baselines.Annealer.place ~config circuit p0 in
  Alcotest.(check bool) "some moves accepted" true (stats.Baselines.Annealer.accepted > 0);
  Alcotest.(check bool) "cost finite" true (Float.is_finite stats.Baselines.Annealer.final_cost)

let test_annealer_beats_random_by_far () =
  let circuit, p0 = build () in
  (* Reference: the HPWL of the deterministic striped start is obtained
     with a zero-move config. *)
  let no_moves =
    { Baselines.Annealer.quick_config with
      Baselines.Annealer.moves_per_cell = 0;
      Baselines.Annealer.t_steps = 1 }
  in
  let _, start = Baselines.Annealer.place ~config:no_moves circuit p0 in
  let _, annealed =
    Baselines.Annealer.place ~config:Baselines.Annealer.quick_config circuit p0
  in
  Alcotest.(check bool) "improved ≥ 30%" true
    (annealed.Baselines.Annealer.final_hpwl
    < 0.7 *. start.Baselines.Annealer.final_hpwl)

let test_annealer_deterministic () =
  let circuit, p0 = build () in
  let config = Baselines.Annealer.quick_config in
  let p1, _ = Baselines.Annealer.place ~config circuit p0 in
  let p2, _ = Baselines.Annealer.place ~config circuit p0 in
  Alcotest.check (Alcotest.float 0.) "identical" 0. (Netlist.Placement.displacement p1 p2)

let test_annealer_rows_snapped () =
  let circuit, p0 = build () in
  let p, _ =
    Baselines.Annealer.place ~config:Baselines.Annealer.quick_config circuit p0
  in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if Netlist.Cell.movable cl && cl.Netlist.Cell.kind = Netlist.Cell.Standard
      then begin
        let y = p.Netlist.Placement.y.(cl.Netlist.Cell.id) in
        let row = Legalize.Rows.row_of_y circuit y in
        Alcotest.(check (float 1e-6)) "on a row centre"
          (Legalize.Rows.row_center_y circuit row)
          y
      end)
    circuit.Netlist.Circuit.cells

let test_annealer_keep_arrangement () =
  let circuit, p0 = build () in
  let config = Baselines.Annealer.quick_config in
  let p1, _ = Baselines.Annealer.place ~config circuit p0 in
  (* Continuation from p1 with zero moves returns p1 itself (rows
     already snapped). *)
  let no_moves =
    { config with Baselines.Annealer.moves_per_cell = 0; Baselines.Annealer.t_steps = 1 }
  in
  let p2, _ =
    Baselines.Annealer.place ~config:no_moves ~keep_arrangement:true circuit p1
  in
  Alcotest.check (Alcotest.float 1e-9) "arrangement kept" 0.
    (Netlist.Placement.displacement p1 p2)

let test_timing_sa_runs_and_reports () =
  let circuit, p0 = build () in
  let r =
    Baselines.Timing_sa.place ~config:Baselines.Annealer.quick_config ~rounds:2
      circuit p0
  in
  Alcotest.(check int) "rounds" 2 r.Baselines.Timing_sa.rounds;
  Alcotest.(check bool) "delays positive" true
    (r.Baselines.Timing_sa.initial_delay > 0. && r.Baselines.Timing_sa.final_delay > 0.)

let suite =
  [
    Alcotest.test_case "cut size" `Quick test_cut_size;
    Alcotest.test_case "fm improves" `Quick test_fm_improves_bad_partition;
    Alcotest.test_case "fm balance" `Quick test_fm_respects_balance;
    Alcotest.test_case "fm locked" `Quick test_fm_locked_vertices_stay;
    Alcotest.test_case "fm deterministic" `Quick test_fm_deterministic;
    QCheck_alcotest.to_alcotest prop_fm_never_worsens;
    Alcotest.test_case "gordian in region" `Quick test_gordian_places_in_region;
    Alcotest.test_case "gordian spreads" `Quick test_gordian_spreads;
    Alcotest.test_case "gordian deterministic" `Quick test_gordian_deterministic;
    Alcotest.test_case "annealer accepts moves" `Quick test_annealer_improves_over_striped_start;
    Alcotest.test_case "annealer improves" `Slow test_annealer_beats_random_by_far;
    Alcotest.test_case "annealer deterministic" `Slow test_annealer_deterministic;
    Alcotest.test_case "annealer rows snapped" `Quick test_annealer_rows_snapped;
    Alcotest.test_case "annealer keep arrangement" `Quick test_annealer_keep_arrangement;
    Alcotest.test_case "timing sa" `Slow test_timing_sa_runs_and_reports;
  ]
