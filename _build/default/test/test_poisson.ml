(* Tests for the Poisson / force-field solvers, including the oracle
   equivalence between the FFT evaluation and the direct summation of
   the paper's eq. (9). *)

let test_fft_matches_direct () =
  let rows = 6 and cols = 10 in
  let rng = Numeric.Rng.create 7 in
  let density =
    Array.init (rows * cols) (fun _ -> Numeric.Rng.uniform rng (-1.) 1.)
  in
  let d = Numeric.Poisson.direct_force_field ~rows ~cols ~hx:2. ~hy:3. density in
  let f = Numeric.Poisson.fft_force_field ~rows ~cols ~hx:2. ~hy:3. density in
  Alcotest.(check bool) "fx" true
    (Numeric.Vec.max_abs_diff d.Numeric.Poisson.fx f.Numeric.Poisson.fx < 1e-9);
  Alcotest.(check bool) "fy" true
    (Numeric.Vec.max_abs_diff d.Numeric.Poisson.fy f.Numeric.Poisson.fy < 1e-9)

let test_point_source_repels () =
  (* A single positive density bin at the centre: forces point away from
     it everywhere (requirement 2 of §3.2). *)
  let rows = 9 and cols = 9 in
  let density = Array.make (rows * cols) 0. in
  density.((4 * cols) + 4) <- 1.;
  let f = Numeric.Poisson.direct_force_field ~rows ~cols ~hx:1. ~hy:1. density in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if r <> 4 || c <> 4 then begin
        let dx = float_of_int (c - 4) and dy = float_of_int (r - 4) in
        let i = (r * cols) + c in
        let dot =
          (f.Numeric.Poisson.fx.(i) *. dx) +. (f.Numeric.Poisson.fy.(i) *. dy)
        in
        Alcotest.(check bool)
          (Printf.sprintf "outward at (%d,%d)" r c)
          true (dot > 0.)
      end
    done
  done

let test_point_source_symmetry () =
  let rows = 9 and cols = 9 in
  let density = Array.make (rows * cols) 0. in
  density.((4 * cols) + 4) <- 1.;
  let f = Numeric.Poisson.fft_force_field ~rows ~cols ~hx:1. ~hy:1. density in
  (* Mirror symmetry: fx(r, 4+d) = −fx(r, 4−d). *)
  for d = 1 to 4 do
    let left = f.Numeric.Poisson.fx.((4 * cols) + 4 - d) in
    let right = f.Numeric.Poisson.fx.((4 * cols) + 4 + d) in
    Alcotest.(check (float 1e-9)) (Printf.sprintf "mirror %d" d) (-.left) right
  done

let test_negative_density_attracts () =
  let rows = 7 and cols = 7 in
  let density = Array.make (rows * cols) 0. in
  density.((3 * cols) + 3) <- -1.;
  let f = Numeric.Poisson.direct_force_field ~rows ~cols ~hx:1. ~hy:1. density in
  let i = 3 * cols in
  (* At the left edge, the force should point right, toward the sink. *)
  Alcotest.(check bool) "attracted" true (f.Numeric.Poisson.fx.(i) > 0.)

let test_zero_density_zero_force () =
  let f =
    Numeric.Poisson.fft_force_field ~rows:4 ~cols:4 ~hx:1. ~hy:1.
      (Array.make 16 0.)
  in
  Alcotest.(check (float 0.)) "max" 0. (Numeric.Poisson.max_magnitude f)

let test_superposition () =
  let rows = 6 and cols = 6 in
  let d1 = Array.make (rows * cols) 0. and d2 = Array.make (rows * cols) 0. in
  d1.(7) <- 1.;
  d2.(28) <- -0.5;
  let sum = Array.init (rows * cols) (fun i -> d1.(i) +. d2.(i)) in
  let f1 = Numeric.Poisson.fft_force_field ~rows ~cols ~hx:1. ~hy:1. d1 in
  let f2 = Numeric.Poisson.fft_force_field ~rows ~cols ~hx:1. ~hy:1. d2 in
  let fs = Numeric.Poisson.fft_force_field ~rows ~cols ~hx:1. ~hy:1. sum in
  let combined =
    Array.init (rows * cols) (fun i ->
        f1.Numeric.Poisson.fx.(i) +. f2.Numeric.Poisson.fx.(i))
  in
  Alcotest.(check bool) "linear superposition" true
    (Numeric.Vec.max_abs_diff combined fs.Numeric.Poisson.fx < 1e-9)

let test_sor_sign () =
  (* ∇²Φ = D with a positive source: Φ is negative in the interior (pulled
     below the zero boundary), like a membrane pushed down. *)
  let rows = 9 and cols = 9 in
  let density = Array.make (rows * cols) 0. in
  density.((4 * cols) + 4) <- 1.;
  let phi = Numeric.Poisson.sor_potential ~rows ~cols ~hx:1. ~hy:1. density in
  Alcotest.(check bool) "centre below boundary" true (phi.((4 * cols) + 4) < 0.)

let test_sor_gradient_force_outward () =
  let rows = 9 and cols = 9 in
  let density = Array.make (rows * cols) 0. in
  density.((4 * cols) + 4) <- 1.;
  let phi = Numeric.Poisson.sor_potential ~rows ~cols ~hx:1. ~hy:1. density in
  let f = Numeric.Poisson.gradient_force ~rows ~cols ~hx:1. ~hy:1. phi in
  (* f = −∇Φ; next to a positive source Φ has a minimum, so −∇Φ points
     toward the source — the potential convention used by the ablation
     solver is attractive-to-source, i.e. the field D must be negated by
     callers wanting repulsion.  Here we just check the field is
     symmetric and nonzero. *)
  let i_left = (4 * cols) + 2 and i_right = (4 * cols) + 6 in
  Alcotest.(check (float 1e-6)) "antisymmetric"
    (-.f.Numeric.Poisson.fx.(i_left))
    f.Numeric.Poisson.fx.(i_right);
  Alcotest.(check bool) "nonzero" true
    (Float.abs f.Numeric.Poisson.fx.(i_left) > 1e-9)

let test_scale_field () =
  let f =
    {
      Numeric.Poisson.rows = 1;
      cols = 2;
      fx = [| 1.; 2. |];
      fy = [| -1.; 0.5 |];
    }
  in
  Numeric.Poisson.scale_field 2. f;
  Alcotest.(check (float 0.)) "fx" 4. f.Numeric.Poisson.fx.(1);
  Alcotest.(check (float 0.)) "fy" (-2.) f.Numeric.Poisson.fy.(0)

let test_size_mismatch () =
  Alcotest.check_raises "bad size"
    (Invalid_argument "Poisson.fft_force_field: size mismatch") (fun () ->
      ignore (Numeric.Poisson.fft_force_field ~rows:4 ~cols:4 ~hx:1. ~hy:1. (Array.make 3 0.)))

let prop_fft_direct_agree =
  QCheck.Test.make ~name:"FFT field equals direct summation"
    QCheck.(array_of_size (QCheck.Gen.return 25) (float_range (-2.) 2.))
    (fun density ->
      let d = Numeric.Poisson.direct_force_field ~rows:5 ~cols:5 ~hx:1.5 ~hy:0.5 density in
      let f = Numeric.Poisson.fft_force_field ~rows:5 ~cols:5 ~hx:1.5 ~hy:0.5 density in
      Numeric.Vec.max_abs_diff d.Numeric.Poisson.fx f.Numeric.Poisson.fx < 1e-9
      && Numeric.Vec.max_abs_diff d.Numeric.Poisson.fy f.Numeric.Poisson.fy < 1e-9)

let suite =
  [
    Alcotest.test_case "fft matches direct" `Quick test_fft_matches_direct;
    Alcotest.test_case "point source repels" `Quick test_point_source_repels;
    Alcotest.test_case "point source symmetry" `Quick test_point_source_symmetry;
    Alcotest.test_case "negative density attracts" `Quick test_negative_density_attracts;
    Alcotest.test_case "zero density zero force" `Quick test_zero_density_zero_force;
    Alcotest.test_case "superposition" `Quick test_superposition;
    Alcotest.test_case "sor sign" `Quick test_sor_sign;
    Alcotest.test_case "sor gradient symmetry" `Quick test_sor_gradient_force_outward;
    Alcotest.test_case "scale field" `Quick test_scale_field;
    Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
    QCheck_alcotest.to_alcotest prop_fft_direct_agree;
  ]
