(* Tests for the preconditioned conjugate-gradient solver. *)

let approx = Alcotest.float 1e-5

let solve_exact a b =
  (* Gaussian elimination reference for small dense systems. *)
  let n = Array.length b in
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs m.(r).(col) > Float.abs m.(!pivot).(col) then pivot := r
    done;
    let tmp = m.(col) in
    m.(col) <- m.(!pivot);
    m.(!pivot) <- tmp;
    let t = x.(col) in
    x.(col) <- x.(!pivot);
    x.(!pivot) <- t;
    for r = col + 1 to n - 1 do
      let f = m.(r).(col) /. m.(col).(col) in
      for c = col to n - 1 do
        m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
      done;
      x.(r) <- x.(r) -. (f *. x.(col))
    done
  done;
  for col = n - 1 downto 0 do
    for r = 0 to col - 1 do
      let f = m.(r).(col) /. m.(col).(col) in
      x.(r) <- x.(r) -. (f *. x.(col))
    done;
    x.(col) <- x.(col) /. m.(col).(col)
  done;
  x

let test_identity () =
  let a = Numeric.Sparse.of_dense [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let x, stats = Numeric.Cg.solve a [| 3.; -4. |] in
  Alcotest.check approx "x0" 3. x.(0);
  Alcotest.check approx "x1" (-4.) x.(1);
  Alcotest.(check bool) "converged" true stats.Numeric.Cg.converged

let test_diagonal () =
  let a = Numeric.Sparse.of_dense [| [| 2.; 0. |]; [| 0.; 4. |] |] in
  let x, _ = Numeric.Cg.solve a [| 2.; 2. |] in
  Alcotest.check approx "x0" 1. x.(0);
  Alcotest.check approx "x1" 0.5 x.(1)

let test_spd_small () =
  let dense = [| [| 4.; 1.; 0. |]; [| 1.; 3.; 1. |]; [| 0.; 1.; 5. |] |] in
  let b = [| 1.; 2.; 3. |] in
  let x, stats = Numeric.Cg.solve (Numeric.Sparse.of_dense dense) b in
  let expected = solve_exact dense b in
  Alcotest.(check bool) "converged" true stats.Numeric.Cg.converged;
  Array.iteri (fun i e -> Alcotest.check approx (Printf.sprintf "x%d" i) e x.(i)) expected

let test_warm_start_fewer_iterations () =
  let dense =
    Array.init 20 (fun i ->
        Array.init 20 (fun j ->
            if i = j then 4. else if abs (i - j) = 1 then -1. else 0.))
  in
  let a = Numeric.Sparse.of_dense dense in
  let b = Array.init 20 (fun i -> float_of_int (i mod 3)) in
  let x_cold, s_cold = Numeric.Cg.solve a b in
  let _, s_warm = Numeric.Cg.solve ~x0:x_cold a b in
  Alcotest.(check bool) "warm start converges immediately" true
    (s_warm.Numeric.Cg.iterations <= 1);
  Alcotest.(check bool) "cold start took iterations" true
    (s_cold.Numeric.Cg.iterations > 1)

let test_nonpositive_diagonal_rejected () =
  let a = Numeric.Sparse.of_dense [| [| 0.; 1. |]; [| 1.; 2. |] |] in
  Alcotest.check_raises "zero diagonal"
    (Invalid_argument "Cg.solve: non-positive diagonal (matrix not anchored?)")
    (fun () -> ignore (Numeric.Cg.solve a [| 1.; 1. |]))

let test_max_iter_respected () =
  let dense =
    Array.init 30 (fun i ->
        Array.init 30 (fun j ->
            if i = j then 2. else if abs (i - j) = 1 then -1. else 0.))
  in
  let a = Numeric.Sparse.of_dense dense in
  let b = Array.make 30 1. in
  let _, stats = Numeric.Cg.solve ~max_iter:2 a b in
  Alcotest.(check bool) "capped" true (stats.Numeric.Cg.iterations <= 2)

let laplacian_gen =
  (* Random SPD matrices: Laplacian of a path + random positive diagonal. *)
  QCheck.(
    pair
      (list_of_size Gen.(return 6) (float_range 0.1 5.))
      (array_of_size Gen.(return 6) (float_range (-3.) 3.)))

let prop_residual_small =
  QCheck.Test.make ~name:"CG residual below tolerance on SPD systems"
    laplacian_gen (fun (diag_boost, b) ->
      let n = 6 in
      let boosts = Array.of_list diag_boost in
      let dense =
        Array.init n (fun i ->
            Array.init n (fun j ->
                if i = j then 2. +. boosts.(i)
                else if abs (i - j) = 1 then -1.
                else 0.))
      in
      let a = Numeric.Sparse.of_dense dense in
      let x, _ = Numeric.Cg.solve a b in
      let r = Numeric.Vec.create n in
      Numeric.Sparse.mul a x r;
      Numeric.Vec.sub_into b r r;
      Numeric.Vec.norm2 r < 1e-5)

let suite =
  [
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "diagonal" `Quick test_diagonal;
    Alcotest.test_case "SPD vs gaussian elimination" `Quick test_spd_small;
    Alcotest.test_case "warm start" `Quick test_warm_start_fewer_iterations;
    Alcotest.test_case "non-positive diagonal" `Quick test_nonpositive_diagonal_rejected;
    Alcotest.test_case "max_iter" `Quick test_max_iter_respected;
    QCheck_alcotest.to_alcotest prop_residual_small;
  ]
