(* Tests for the min-cost-flow solver and the Domino-like detailed
   placer. *)

module Mcf = Numeric.Mincostflow

let test_simple_flow () =
  (* source → a → sink with capacity 2 cost 1, plus source → b → sink
     with capacity 1 cost 5: pushing 3 units costs 2·1·2 + 1·5·2 = wait,
     edges: s−a (2, 1.), a−t (2, 1.), s−b (1, 5.), b−t (1, 5.). *)
  let g = Mcf.create 4 in
  let _ = Mcf.add_edge g ~src:0 ~dst:1 ~capacity:2 ~cost:1. in
  let _ = Mcf.add_edge g ~src:1 ~dst:3 ~capacity:2 ~cost:1. in
  let _ = Mcf.add_edge g ~src:0 ~dst:2 ~capacity:1 ~cost:5. in
  let _ = Mcf.add_edge g ~src:2 ~dst:3 ~capacity:1 ~cost:5. in
  let flow, cost = Mcf.solve g ~source:0 ~sink:3 () in
  Alcotest.(check int) "max flow" 3 flow;
  Alcotest.(check (float 1e-9)) "min cost" ((2. *. 2.) +. (2. *. 5.)) cost

let test_flow_respects_max () =
  let g = Mcf.create 2 in
  let e = Mcf.add_edge g ~src:0 ~dst:1 ~capacity:10 ~cost:1. in
  let flow, _ = Mcf.solve g ~source:0 ~sink:1 ~max_flow:4 () in
  Alcotest.(check int) "limited" 4 flow;
  Alcotest.(check int) "edge flow" 4 (Mcf.flow g e)

let test_flow_prefers_cheap_path () =
  let g = Mcf.create 4 in
  let cheap = Mcf.add_edge g ~src:0 ~dst:1 ~capacity:1 ~cost:1. in
  let _ = Mcf.add_edge g ~src:1 ~dst:3 ~capacity:1 ~cost:0. in
  let expensive = Mcf.add_edge g ~src:0 ~dst:2 ~capacity:1 ~cost:10. in
  let _ = Mcf.add_edge g ~src:2 ~dst:3 ~capacity:1 ~cost:0. in
  let flow, _ = Mcf.solve g ~source:0 ~sink:3 ~max_flow:1 () in
  Alcotest.(check int) "one unit" 1 flow;
  Alcotest.(check int) "cheap used" 1 (Mcf.flow g cheap);
  Alcotest.(check int) "expensive unused" 0 (Mcf.flow g expensive)

let test_assignment_identity () =
  (* Diagonal much cheaper than off-diagonal: identity assignment. *)
  let costs =
    Array.init 5 (fun i -> Array.init 5 (fun j -> if i = j then 0. else 10.))
  in
  Alcotest.(check (array int)) "identity" [| 0; 1; 2; 3; 4 |]
    (Mcf.assignment ~costs)

let test_assignment_optimal_vs_bruteforce () =
  let rng = Numeric.Rng.create 12 in
  for _ = 1 to 20 do
    let n = 2 + Numeric.Rng.int rng 4 in
    let costs =
      Array.init n (fun _ -> Array.init n (fun _ -> Numeric.Rng.uniform rng 0. 10.))
    in
    let total choice =
      Array.to_list choice
      |> List.mapi (fun i j -> costs.(i).(j))
      |> List.fold_left ( +. ) 0.
    in
    let flow_cost = total (Mcf.assignment ~costs) in
    (* Brute force over all permutations. *)
    let best = ref Float.infinity in
    let rec perms acc rest =
      match rest with
      | [] ->
        let choice = Array.of_list (List.rev acc) in
        let c = total choice in
        if c < !best then best := c
      | _ ->
        List.iter (fun j -> perms (j :: acc) (List.filter (( <> ) j) rest)) rest
    in
    perms [] (List.init n Fun.id);
    Alcotest.(check (float 1e-6)) "matches brute force" !best flow_cost
  done

let test_assignment_rectangular () =
  let costs = [| [| 5.; 1.; 9. |]; [| 1.; 5.; 9. |] |] in
  let a = Mcf.assignment ~costs in
  Alcotest.(check (array int)) "rect optimal" [| 1; 0 |] a

let test_assignment_ties_hang_regression () =
  (* Regression: large near-equal costs once stalled the solver through
     float error in the potentials (negative reduced-cost cycles). *)
  let rng = Numeric.Rng.create 99 in
  for _ = 1 to 10 do
    let n = 10 in
    let base = Numeric.Rng.uniform rng 1e3 2e4 in
    let costs =
      Array.init n (fun _ ->
          Array.init n (fun _ -> base +. Numeric.Rng.uniform rng 0. 2000.))
    in
    let a = Mcf.assignment ~costs in
    let seen = Array.make n false in
    Array.iter
      (fun j ->
        Alcotest.(check bool) "valid perm" false seen.(j);
        seen.(j) <- true)
      a
  done

(* --- Domino --- *)

let placed_circuit ?(name = "fract") ?(seed = 91) () =
  let prof = Circuitgen.Profiles.find name in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed)
  in
  let p0 = Circuitgen.Gen.initial_placement circuit pads in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let rep = Legalize.Abacus.legalize circuit state.Kraftwerk.Placer.placement () in
  (circuit, rep.Legalize.Abacus.placement)

let test_flow_pass_improves_and_stays_legal () =
  let circuit, p = placed_circuit () in
  let before = Metrics.Wirelength.hpwl circuit p in
  let moves, gain = Legalize.Domino.flow_pass circuit p in
  let after = Metrics.Wirelength.hpwl circuit p in
  Alcotest.(check bool) "legal" true (Legalize.Check.is_legal circuit p);
  Alcotest.(check bool) "improved" true (after <= before);
  Alcotest.(check (float 1e-6)) "gain accounted" (before -. after) gain;
  Alcotest.(check bool) "moved cells" true (moves > 0)

let test_reorder_pass_improves_and_stays_legal () =
  let circuit, p = placed_circuit () in
  let before = Metrics.Wirelength.hpwl circuit p in
  let _, gain = Legalize.Domino.reorder_pass circuit p in
  let after = Metrics.Wirelength.hpwl circuit p in
  Alcotest.(check bool) "legal" true (Legalize.Check.is_legal circuit p);
  Alcotest.(check (float 1e-6)) "gain accounted" (before -. after) gain

let test_run_stops_when_dry () =
  let circuit, p = placed_circuit () in
  (* Enough passes to exhaust the move classes ... *)
  let config = { Legalize.Domino.default_config with Legalize.Domino.passes = 10 } in
  ignore (Legalize.Domino.run ~config circuit p);
  (* ... after which a further run finds (almost) nothing. *)
  let _, gain2 = Legalize.Domino.run ~config circuit p in
  let base = Metrics.Wirelength.hpwl circuit p in
  Alcotest.(check bool) "second run nearly dry" true (gain2 < 0.01 *. base)

let test_domino_respects_obstacles () =
  let circuit, p = placed_circuit () in
  (* A fat obstacle across the middle; cells were legalised without it,
     so only windows clear of it may repack — legality w.r.t. the
     obstacle must not degrade. *)
  let region = circuit.Netlist.Circuit.region in
  let cx, cy = Geometry.Rect.center region in
  let obstacle = Geometry.Rect.of_center ~cx ~cy ~w:60. ~h:32. in
  let overlap_before =
    Array.fold_left
      (fun acc (cl : Netlist.Cell.t) ->
        if Netlist.Cell.movable cl then
          acc
          +. Geometry.Rect.overlap_area obstacle
               (Netlist.Placement.cell_rect circuit p cl.Netlist.Cell.id)
        else acc)
      0. circuit.Netlist.Circuit.cells
  in
  ignore (Legalize.Domino.reorder_pass ~obstacles:[ obstacle ] circuit p);
  let overlap_after =
    Array.fold_left
      (fun acc (cl : Netlist.Cell.t) ->
        if Netlist.Cell.movable cl then
          acc
          +. Geometry.Rect.overlap_area obstacle
               (Netlist.Placement.cell_rect circuit p cl.Netlist.Cell.id)
        else acc)
      0. circuit.Netlist.Circuit.cells
  in
  Alcotest.(check bool) "no new obstacle overlap" true
    (overlap_after <= overlap_before +. 1e-9)

let test_domino_deterministic () =
  let circuit, p1 = placed_circuit () in
  let _, p2 = placed_circuit () in
  ignore (Legalize.Domino.run circuit p1);
  ignore (Legalize.Domino.run circuit p2);
  Alcotest.check (Alcotest.float 0.) "identical" 0.
    (Netlist.Placement.displacement p1 p2)

let suite =
  [
    Alcotest.test_case "simple flow" `Quick test_simple_flow;
    Alcotest.test_case "max flow cap" `Quick test_flow_respects_max;
    Alcotest.test_case "cheap path" `Quick test_flow_prefers_cheap_path;
    Alcotest.test_case "assignment identity" `Quick test_assignment_identity;
    Alcotest.test_case "assignment vs brute force" `Quick test_assignment_optimal_vs_bruteforce;
    Alcotest.test_case "assignment rectangular" `Quick test_assignment_rectangular;
    Alcotest.test_case "assignment tie regression" `Quick test_assignment_ties_hang_regression;
    Alcotest.test_case "flow pass" `Quick test_flow_pass_improves_and_stays_legal;
    Alcotest.test_case "reorder pass" `Quick test_reorder_pass_improves_and_stays_legal;
    Alcotest.test_case "run until dry" `Quick test_run_stops_when_dry;
    Alcotest.test_case "obstacle respect" `Quick test_domino_respects_obstacles;
    Alcotest.test_case "deterministic" `Quick test_domino_deterministic;
  ]
