(* Tests for the deterministic splitmix64 generator. *)

let test_deterministic () =
  let a = Numeric.Rng.create 42 and b = Numeric.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Numeric.Rng.int a 1000) (Numeric.Rng.int b 1000)
  done

let test_seeds_differ () =
  let a = Numeric.Rng.create 1 and b = Numeric.Rng.create 2 in
  let va = Array.init 10 (fun _ -> Numeric.Rng.int a 1_000_000) in
  let vb = Array.init 10 (fun _ -> Numeric.Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (va <> vb)

let test_int_bounds () =
  let rng = Numeric.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Numeric.Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_int_bad_bound () =
  let rng = Numeric.Rng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: non-positive bound")
    (fun () -> ignore (Numeric.Rng.int rng 0))

let test_float_bounds () =
  let rng = Numeric.Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Numeric.Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
  done

let test_uniform_bounds () =
  let rng = Numeric.Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Numeric.Rng.uniform rng (-3.) (-1.) in
    Alcotest.(check bool) "in range" true (v >= -3. && v < -1.)
  done

let test_copy_independent () =
  let a = Numeric.Rng.create 6 in
  ignore (Numeric.Rng.int a 10);
  let b = Numeric.Rng.copy a in
  Alcotest.(check int) "copies agree" (Numeric.Rng.int a 1000) (Numeric.Rng.int b 1000)

let test_split_differs () =
  let a = Numeric.Rng.create 7 in
  let b = Numeric.Rng.split a in
  let va = Array.init 5 (fun _ -> Numeric.Rng.int a 1_000_000) in
  let vb = Array.init 5 (fun _ -> Numeric.Rng.int b 1_000_000) in
  Alcotest.(check bool) "split independent" true (va <> vb)

let test_shuffle_is_permutation () =
  let rng = Numeric.Rng.create 8 in
  let a = Array.init 50 Fun.id in
  Numeric.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_geometric () =
  let rng = Numeric.Rng.create 9 in
  let sum = ref 0 in
  for _ = 1 to 2000 do
    let v = Numeric.Rng.geometric rng 0.5 in
    Alcotest.(check bool) "non-negative" true (v >= 0);
    sum := !sum + v
  done;
  (* Mean of geometric(0.5) counting failures is 1. *)
  let mean = float_of_int !sum /. 2000. in
  Alcotest.(check bool) "mean near 1" true (mean > 0.8 && mean < 1.2)

let test_choose () =
  let rng = Numeric.Rng.create 10 in
  for _ = 1 to 100 do
    let v = Numeric.Rng.choose rng [| 1; 2; 3 |] in
    Alcotest.(check bool) "member" true (v >= 1 && v <= 3)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Numeric.Rng.choose rng [||]))

let test_bool_balanced () =
  let rng = Numeric.Rng.create 11 in
  let trues = ref 0 in
  for _ = 1 to 2000 do
    if Numeric.Rng.bool rng then incr trues
  done;
  Alcotest.(check bool) "roughly fair" true (!trues > 800 && !trues < 1200)

let prop_int_uniformish =
  QCheck.Test.make ~name:"int bound respected for any seed" QCheck.small_int
    (fun seed ->
      let rng = Numeric.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Numeric.Rng.int rng 13 in
        if v < 0 || v >= 13 then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int bad bound" `Quick test_int_bad_bound;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "split differs" `Quick test_split_differs;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "geometric" `Quick test_geometric;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
    QCheck_alcotest.to_alcotest prop_int_uniformish;
  ]
