(* Unit and property tests for Numeric.Vec. *)

let approx = Alcotest.float 1e-9

let test_create () =
  let v = Numeric.Vec.create 4 in
  Alcotest.(check int) "length" 4 (Array.length v);
  Array.iter (fun x -> Alcotest.check approx "zero" 0. x) v

let test_dot () =
  Alcotest.check approx "dot" 32. (Numeric.Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |])

let test_dot_empty () =
  Alcotest.check approx "empty dot" 0. (Numeric.Vec.dot [||] [||])

let test_norm2 () =
  Alcotest.check approx "3-4-5" 5. (Numeric.Vec.norm2 [| 3.; 4. |])

let test_norm_inf () =
  Alcotest.check approx "inf norm" 7. (Numeric.Vec.norm_inf [| -7.; 2.; 3. |])

let test_axpy () =
  let y = [| 1.; 1. |] in
  Numeric.Vec.axpy ~alpha:2. [| 3.; 4. |] y;
  Alcotest.check approx "axpy 0" 7. y.(0);
  Alcotest.check approx "axpy 1" 9. y.(1)

let test_scale () =
  let v = [| 1.; -2. |] in
  Numeric.Vec.scale (-3.) v;
  Alcotest.check approx "scale 0" (-3.) v.(0);
  Alcotest.check approx "scale 1" 6. v.(1)

let test_add_sub_mul () =
  let dst = Numeric.Vec.create 2 in
  Numeric.Vec.add_into [| 1.; 2. |] [| 3.; 4. |] dst;
  Alcotest.check approx "add" 4. dst.(0);
  Numeric.Vec.sub_into [| 1.; 2. |] [| 3.; 5. |] dst;
  Alcotest.check approx "sub" (-3.) dst.(1);
  Numeric.Vec.mul_into [| 2.; 3. |] [| 4.; 5. |] dst;
  Alcotest.check approx "mul" 15. dst.(1)

let test_max_abs_diff () =
  Alcotest.check approx "diff" 3.
    (Numeric.Vec.max_abs_diff [| 1.; 5. |] [| 2.; 2. |])

let test_mean () =
  Alcotest.check approx "mean" 2. (Numeric.Vec.mean [| 1.; 2.; 3. |]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Vec.mean: empty vector")
    (fun () -> ignore (Numeric.Vec.mean [||]))

let test_copy_independent () =
  let v = [| 1.; 2. |] in
  let w = Numeric.Vec.copy v in
  w.(0) <- 9.;
  Alcotest.check approx "original intact" 1. v.(0)

let test_fill_zero () =
  let v = [| 1.; 2. |] in
  Numeric.Vec.fill_zero v;
  Alcotest.check approx "zeroed" 0. v.(1)

let arr_gen = QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))

let prop_cauchy_schwarz =
  QCheck.Test.make ~name:"dot bounded by norms (Cauchy-Schwarz)"
    (QCheck.pair arr_gen arr_gen) (fun (a, b) ->
      let n = min (Array.length a) (Array.length b) in
      let a = Array.sub a 0 n and b = Array.sub b 0 n in
      Float.abs (Numeric.Vec.dot a b)
      <= (Numeric.Vec.norm2 a *. Numeric.Vec.norm2 b) +. 1e-6)

let prop_norm_inf_le_norm2 =
  QCheck.Test.make ~name:"inf norm ≤ 2-norm" arr_gen (fun a ->
      Numeric.Vec.norm_inf a <= Numeric.Vec.norm2 a +. 1e-9)

let prop_axpy_linear =
  QCheck.Test.make ~name:"axpy matches scalar formula"
    (QCheck.pair (QCheck.float_range (-10.) 10.) arr_gen) (fun (alpha, a) ->
      let y = Array.map (fun x -> x /. 2.) a in
      let expected = Array.mapi (fun i x -> (alpha *. x) +. y.(i)) a in
      Numeric.Vec.axpy ~alpha a y;
      Numeric.Vec.max_abs_diff expected y < 1e-9)

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "dot" `Quick test_dot;
    Alcotest.test_case "dot empty" `Quick test_dot_empty;
    Alcotest.test_case "norm2" `Quick test_norm2;
    Alcotest.test_case "norm_inf" `Quick test_norm_inf;
    Alcotest.test_case "axpy" `Quick test_axpy;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "add/sub/mul into" `Quick test_add_sub_mul;
    Alcotest.test_case "max_abs_diff" `Quick test_max_abs_diff;
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "fill_zero" `Quick test_fill_zero;
    QCheck_alcotest.to_alcotest prop_cauchy_schwarz;
    QCheck_alcotest.to_alcotest prop_norm_inf_le_norm2;
    QCheck_alcotest.to_alcotest prop_axpy_linear;
  ]
