(* Tests for the Bound2Bound net model extension. *)

let pin ?(dx = 0.) ?(dy = 0.) c = { Netlist.Net.cell = c; dx; dy }

let coord_x xs (p : Netlist.Net.pin) = xs.(p.Netlist.Net.cell) +. p.Netlist.Net.dx

let test_two_pin_weight () =
  let net = Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1 |] in
  let xs = [| 0.; 10. |] in
  match Qp.B2b.edges ~coord:(coord_x xs) net with
  | [ e ] ->
    Alcotest.(check (float 1e-9)) "weight 2/span" 0.2 e.Qp.B2b.weight
  | l -> Alcotest.fail (Printf.sprintf "expected 1 edge, got %d" (List.length l))

let test_edge_count_k_pins () =
  (* k-pin net: 1 boundary-boundary edge + 2 per interior pin. *)
  let k = 6 in
  let net = Netlist.Net.make ~id:0 ~name:"n" (Array.init k (fun i -> pin i)) in
  let xs = Array.init k (fun i -> float_of_int (i * 3)) in
  let edges = Qp.B2b.edges ~coord:(coord_x xs) net in
  Alcotest.(check int) "1 + 2(k-2) edges" (1 + (2 * (k - 2))) (List.length edges)

let test_objective_matches_hpwl_at_linearization () =
  (* Σ w·(xi − xj)² over the B2B edges equals twice the span at the
     linearisation point — B2B's defining property per axis (the factor 2
     is uniform over all degrees, so it only rescales the objective). *)
  let k = 5 in
  let net = Netlist.Net.make ~id:0 ~name:"n" (Array.init k (fun i -> pin i)) in
  let xs = [| 2.; 9.; 4.; 17.; 11. |] in
  let coord = coord_x xs in
  let edges = Qp.B2b.edges ~coord net in
  let objective =
    List.fold_left
      (fun acc (e : Qp.B2b.edge) ->
        let d = coord e.Qp.B2b.pin_a -. coord e.Qp.B2b.pin_b in
        acc +. (e.Qp.B2b.weight *. d *. d))
      0. edges
  in
  (* Span = 17 − 2 = 15; objective = 2 × 15. *)
  Alcotest.(check (float 1e-6)) "objective = 2·span" 30. objective

let test_degenerate_falls_back_to_clique () =
  let net = Netlist.Net.make ~id:0 ~name:"n"
      [| pin 0; pin 1; pin 2 |]
  in
  (* All pins at the same x. *)
  let xs = [| 5.; 5.; 5. |] in
  let edges = Qp.B2b.edges ~coord:(coord_x xs) net in
  Alcotest.(check int) "clique fallback edges" 3 (List.length edges);
  List.iter
    (fun (e : Qp.B2b.edge) ->
      Alcotest.(check (float 1e-9)) "clique weight 1/k" (1. /. 3.) e.Qp.B2b.weight)
    edges

let test_axes_differ_in_system () =
  (* A 3-pin net spread along x but stacked in y: B2B must give different
     x and y matrices (the clique model's are identical). *)
  let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:100. ~y_hi:100. in
  let cells =
    Array.init 3 (fun i ->
        Netlist.Cell.make ~id:i ~name:(string_of_int i) ~width:4. ~height:4.
          ~fixed:(i = 0) ())
  in
  let nets = [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1; pin 2 |] |] in
  let c = Netlist.Circuit.make ~name:"b2b" ~cells ~nets ~region ~row_height:4. in
  let p = { Netlist.Placement.x = [| 0.; 40.; 90. |]; y = [| 50.; 50.; 20. |] } in
  let system =
    Qp.System.build c ~placement:p ~net_weights:[| 1. |]
      ~edge_scale:Qp.Weights.quadratic ~model:Qp.System.Bound2bound ()
  in
  (* Solving with zero forces should keep positions near the spring
     equilibrium and, importantly, run without errors on distinct
     matrices. *)
  let n = Qp.System.num_movable system in
  let sx, sy =
    Qp.System.solve system ~placement:p ~ex:(Array.make n 0.) ~ey:(Array.make n 0.)
  in
  Alcotest.(check bool) "x converged" true sx.Numeric.Cg.converged;
  Alcotest.(check bool) "y converged" true sy.Numeric.Cg.converged

let test_b2b_placement_runs () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:42)
  in
  let p0 = Circuitgen.Gen.initial_placement circuit pads in
  let cfg =
    { Kraftwerk.Config.standard with
      Kraftwerk.Config.net_model = Qp.System.Bound2bound;
      Kraftwerk.Config.max_iterations = 40 }
  in
  let state, reports = Kraftwerk.Placer.run cfg circuit p0 in
  Alcotest.(check bool) "iterated" true (List.length reports > 0);
  Alcotest.(check (float 1e-6)) "in region" 0.
    (Metrics.Overlap.out_of_region_area circuit state.Kraftwerk.Placer.placement)

let suite =
  [
    Alcotest.test_case "two-pin weight" `Quick test_two_pin_weight;
    Alcotest.test_case "edge count" `Quick test_edge_count_k_pins;
    Alcotest.test_case "objective = hpwl at point" `Quick test_objective_matches_hpwl_at_linearization;
    Alcotest.test_case "degenerate fallback" `Quick test_degenerate_falls_back_to_clique;
    Alcotest.test_case "axes differ" `Quick test_axes_differ_in_system;
    Alcotest.test_case "b2b placement runs" `Quick test_b2b_placement_runs;
  ]
