(* Tests for flexible-block floorplanning. *)

let build_mixed ?(blocks = 4) ?(seed = 61) () =
  let prof = Circuitgen.Profiles.find "fract" in
  let params =
    { (Circuitgen.Profiles.params prof ~seed) with
      Circuitgen.Gen.num_blocks = blocks }
  in
  let circuit, pads = Circuitgen.Gen.generate params in
  (circuit, Circuitgen.Gen.initial_placement circuit pads)

let quick_config =
  { Kraftwerk.Config.standard with Kraftwerk.Config.max_iterations = 60 }

let test_reshape_preserves_area () =
  let circuit, p0 = build_mixed () in
  let circuit', chosen =
    Floorplan.Flexible.reshape_blocks circuit p0 ~ratios:[ 0.5; 1.0; 2.0 ]
  in
  Alcotest.(check int) "one ratio per block" 4 (List.length chosen);
  List.iter
    (fun (id, _) ->
      let before = Netlist.Cell.area circuit.Netlist.Circuit.cells.(id) in
      let after = Netlist.Cell.area circuit'.Netlist.Circuit.cells.(id) in
      Alcotest.(check (float 1e-6)) "area preserved" before after)
    chosen

let test_reshape_rows_aligned_heights () =
  let circuit, p0 = build_mixed () in
  let circuit', chosen =
    Floorplan.Flexible.reshape_blocks circuit p0 ~ratios:[ 0.25; 1.0; 4.0 ]
  in
  List.iter
    (fun (id, _) ->
      let h = circuit'.Netlist.Circuit.cells.(id).Netlist.Cell.height in
      let rows = h /. circuit.Netlist.Circuit.row_height in
      Alcotest.(check (float 1e-9)) "whole rows" (Float.round rows) rows)
    chosen

let test_reshape_non_blocks_untouched () =
  let circuit, p0 = build_mixed () in
  let circuit', _ =
    Floorplan.Flexible.reshape_blocks circuit p0 ~ratios:[ 1.0 ]
  in
  Array.iteri
    (fun i (cl : Netlist.Cell.t) ->
      if cl.Netlist.Cell.kind <> Netlist.Cell.Block then begin
        Alcotest.(check (float 0.)) "width" cl.Netlist.Cell.width
          circuit'.Netlist.Circuit.cells.(i).Netlist.Cell.width;
        Alcotest.(check (float 0.)) "height" cl.Netlist.Cell.height
          circuit'.Netlist.Circuit.cells.(i).Netlist.Cell.height
      end)
    circuit.Netlist.Circuit.cells

let test_reshape_rejects_bad_input () =
  let circuit, p0 = build_mixed () in
  Alcotest.(check bool) "empty ratios" true
    (try
       ignore (Floorplan.Flexible.reshape_blocks circuit p0 ~ratios:[]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative ratio" true
    (try
       ignore (Floorplan.Flexible.reshape_blocks circuit p0 ~ratios:[ -1. ]);
       false
     with Invalid_argument _ -> true)

let test_flexible_flow_legal () =
  let circuit, p0 = build_mixed () in
  let r = Floorplan.Flexible.place quick_config circuit p0 in
  let p = r.Floorplan.Flexible.mixed.Floorplan.Mixed.placement in
  Alcotest.(check bool) "legal" true
    (Legalize.Check.is_legal r.Floorplan.Flexible.circuit p);
  (* Reshaped blocks still non-overlapping. *)
  let rects =
    Floorplan.Mixed.block_rects r.Floorplan.Flexible.circuit p |> List.map snd
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if j > i then
            Alcotest.(check (float 1e-6)) "blocks disjoint" 0.
              (Geometry.Rect.overlap_area a b))
        rects)
    rects

let suite =
  [
    Alcotest.test_case "reshape preserves area" `Quick test_reshape_preserves_area;
    Alcotest.test_case "reshape row heights" `Quick test_reshape_rows_aligned_heights;
    Alcotest.test_case "non-blocks untouched" `Quick test_reshape_non_blocks_untouched;
    Alcotest.test_case "bad input rejected" `Quick test_reshape_rejects_bad_input;
    Alcotest.test_case "flexible flow legal" `Quick test_flexible_flow_legal;
  ]
