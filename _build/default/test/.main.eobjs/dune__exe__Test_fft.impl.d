test/test_fft.ml: Alcotest Array Float Numeric QCheck QCheck_alcotest
