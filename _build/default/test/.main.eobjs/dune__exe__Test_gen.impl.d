test/test_gen.ml: Alcotest Array Circuitgen Float Geometry List Netlist Printf QCheck QCheck_alcotest Timing
