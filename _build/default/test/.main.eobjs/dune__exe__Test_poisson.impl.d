test/test_poisson.ml: Alcotest Array Float Numeric Printf QCheck QCheck_alcotest
