test/test_grouter.ml: Alcotest Array Circuitgen Density Float Geometry Kraftwerk List Netlist Printf Route String Viz
