test/test_flexible.ml: Alcotest Array Circuitgen Float Floorplan Geometry Kraftwerk Legalize List Netlist
