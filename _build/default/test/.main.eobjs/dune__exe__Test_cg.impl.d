test/test_cg.ml: Alcotest Array Float Gen Numeric Printf QCheck QCheck_alcotest
