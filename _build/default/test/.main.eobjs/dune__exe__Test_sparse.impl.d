test/test_sparse.ml: Alcotest Array Gen List Numeric Printf QCheck QCheck_alcotest
