test/test_placer.ml: Alcotest Array Circuitgen Float Geometry Kraftwerk List Metrics Netlist Numeric
