test/test_rng.ml: Alcotest Array Fun Numeric QCheck QCheck_alcotest
