test/test_baselines.ml: Alcotest Array Baselines Circuitgen Float Legalize Metrics Netlist Numeric QCheck QCheck_alcotest
