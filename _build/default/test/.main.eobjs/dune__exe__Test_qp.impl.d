test/test_qp.ml: Alcotest Array Circuitgen Float Fun Geometry List Metrics Netlist Numeric Printf QCheck QCheck_alcotest Qp
