test/test_route.ml: Alcotest Array Geometry Netlist Printf Route
