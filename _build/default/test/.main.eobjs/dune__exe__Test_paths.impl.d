test/test_paths.ml: Alcotest Circuitgen Float Format Fun Geometry List Netlist Printf String Timing
