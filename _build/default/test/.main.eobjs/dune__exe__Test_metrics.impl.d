test/test_metrics.ml: Alcotest Array Float Geometry List Metrics Netlist Printf QCheck QCheck_alcotest
