test/test_io.ml: Alcotest Array Circuitgen Filename Fun Geometry Metrics Netlist Numeric Sys
