test/test_floorplan.ml: Alcotest Array Circuitgen Float Floorplan Geometry Kraftwerk Legalize List Metrics Netlist
