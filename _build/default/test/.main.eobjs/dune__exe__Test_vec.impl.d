test/test_vec.ml: Alcotest Array Float Gen Numeric QCheck QCheck_alcotest
