test/test_legalize.ml: Alcotest Array Circuitgen Float Geometry Kraftwerk Legalize List Metrics Netlist Numeric Printf QCheck QCheck_alcotest
