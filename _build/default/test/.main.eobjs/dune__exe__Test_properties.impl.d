test/test_properties.ml: Array Baselines Circuitgen Density Filename Float Fun Geometry Kraftwerk Legalize List Metrics Netlist Numeric QCheck QCheck_alcotest Route Sys Timing
