test/test_cluster.ml: Alcotest Array Circuitgen Kraftwerk List Metrics Netlist
