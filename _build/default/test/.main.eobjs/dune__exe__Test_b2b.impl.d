test/test_b2b.ml: Alcotest Array Circuitgen Geometry Kraftwerk List Metrics Netlist Numeric Printf Qp
