test/test_netlist.ml: Alcotest Array Geometry Netlist Printf
