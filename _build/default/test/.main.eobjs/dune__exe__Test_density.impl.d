test/test_density.ml: Alcotest Array Circuitgen Density Geometry Netlist Numeric Printf Qp
