test/test_integration.ml: Alcotest Array Baselines Circuitgen Filename Float Fun Hashtbl Kraftwerk Legalize List Metrics Netlist Numeric Route Sys Timing
