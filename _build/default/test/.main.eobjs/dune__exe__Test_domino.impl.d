test/test_domino.ml: Alcotest Array Circuitgen Float Fun Geometry Kraftwerk Legalize List Metrics Netlist Numeric
