test/test_validation.ml: Alcotest Array Circuitgen Filename Floorplan Fun Geometry Kraftwerk List Netlist Numeric Qp Sys
