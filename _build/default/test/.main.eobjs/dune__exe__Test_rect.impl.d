test/test_rect.ml: Alcotest Float Geometry QCheck QCheck_alcotest
