test/main.mli:
