test/test_grid2.ml: Alcotest Float Geometry QCheck QCheck_alcotest
