test/test_bookshelf.ml: Alcotest Array Circuitgen Filename Fun Geometry Kraftwerk Legalize Metrics Netlist Numeric Printf Sys Unix
