test/test_timing.ml: Alcotest Array Circuitgen Float Geometry Kraftwerk Netlist Printf Timing
