(* Tests for wire-length and overlap metrics. *)

let approx = Alcotest.float 1e-9

let cell id w h =
  Netlist.Cell.make ~id ~name:(Printf.sprintf "c%d" id) ~width:w ~height:h ()

let pin ?(dx = 0.) ?(dy = 0.) c = { Netlist.Net.cell = c; dx; dy }

let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:100. ~y_hi:100.

let circuit_of nets cells =
  Netlist.Circuit.make ~name:"m" ~cells ~nets ~region ~row_height:10.

let test_hpwl_two_pin () =
  let c =
    circuit_of
      [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1 |] |]
      [| cell 0 2. 2.; cell 1 2. 2. |]
  in
  let p = { Netlist.Placement.x = [| 0.; 3. |]; y = [| 0.; 4. |] } in
  Alcotest.check approx "hpwl" 7. (Metrics.Wirelength.hpwl c p)

let test_hpwl_three_pin_bbox () =
  let c =
    circuit_of
      [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1; pin 2 |] |]
      [| cell 0 2. 2.; cell 1 2. 2.; cell 2 2. 2. |]
  in
  let p = { Netlist.Placement.x = [| 0.; 10.; 5. |]; y = [| 0.; 2.; 8. |] } in
  (* Bounding box: 10 wide, 8 tall. *)
  Alcotest.check approx "hpwl" 18. (Metrics.Wirelength.hpwl c p)

let test_hpwl_with_pin_offsets () =
  let c =
    circuit_of
      [| Netlist.Net.make ~id:0 ~name:"n" [| pin ~dx:1. 0; pin ~dx:(-1.) 1 |] |]
      [| cell 0 4. 2.; cell 1 4. 2. |]
  in
  let p = { Netlist.Placement.x = [| 0.; 10. |]; y = [| 0.; 0. |] } in
  (* Pin span: (0+1) to (10−1) = 8. *)
  Alcotest.check approx "hpwl" 8. (Metrics.Wirelength.hpwl c p)

let test_weighted_hpwl () =
  let c =
    circuit_of
      [|
        Netlist.Net.make ~id:0 ~name:"a" [| pin 0; pin 1 |];
        Netlist.Net.make ~id:1 ~name:"b" [| pin 0; pin 1 |];
      |]
      [| cell 0 2. 2.; cell 1 2. 2. |]
  in
  let p = { Netlist.Placement.x = [| 0.; 5. |]; y = [| 0.; 0. |] } in
  Alcotest.check approx "weighted" 15.
    (Metrics.Wirelength.weighted_hpwl c p ~weights:[| 1.; 2. |])

let test_quadratic_two_pin () =
  let c =
    circuit_of
      [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1 |] |]
      [| cell 0 2. 2.; cell 1 2. 2. |]
  in
  let p = { Netlist.Placement.x = [| 0.; 3. |]; y = [| 0.; 4. |] } in
  (* One pair, weight 1/2: (9 + 16) / 2. *)
  Alcotest.check approx "quadratic" 12.5 (Metrics.Wirelength.quadratic c p)

let test_quadratic_clique_weighting () =
  let c =
    circuit_of
      [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1; pin 2 |] |]
      [| cell 0 2. 2.; cell 1 2. 2.; cell 2 2. 2. |]
  in
  let p = { Netlist.Placement.x = [| 0.; 1.; 2. |]; y = [| 0.; 0.; 0. |] } in
  (* Pairs: (0,1)=1, (0,2)=4, (1,2)=1; weight 1/3 → 2. *)
  Alcotest.check approx "quadratic" 2. (Metrics.Wirelength.quadratic c p)

let test_overlap_none_when_spread () =
  let c =
    circuit_of
      [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1 |] |]
      [| cell 0 4. 4.; cell 1 4. 4. |]
  in
  let p = { Netlist.Placement.x = [| 10.; 50. |]; y = [| 10.; 50. |] } in
  Alcotest.check approx "no overlap" 0. (Metrics.Overlap.total_overlap c p)

let test_overlap_known () =
  let c =
    circuit_of
      [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1 |] |]
      [| cell 0 4. 4.; cell 1 4. 4. |]
  in
  (* Shift by (2, 2): overlap 2×2 = 4. *)
  let p = { Netlist.Placement.x = [| 10.; 12. |]; y = [| 10.; 12. |] } in
  Alcotest.check approx "overlap 4" 4. (Metrics.Overlap.total_overlap c p);
  Alcotest.check approx "ratio" (4. /. 32.) (Metrics.Overlap.overlap_ratio c p)

let test_overlap_stacked_triple () =
  let c =
    circuit_of
      [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1; pin 2 |] |]
      [| cell 0 4. 4.; cell 1 4. 4.; cell 2 4. 4. |]
  in
  (* All three on top of each other: three pairs of full 16 overlap. *)
  let p = { Netlist.Placement.x = [| 10.; 10.; 10. |]; y = [| 10.; 10.; 10. |] } in
  Alcotest.check approx "3 pairs" 48. (Metrics.Overlap.total_overlap c p)

let test_density_stats_uniform () =
  let c =
    circuit_of
      [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1 |] |]
      [| cell 0 100. 50.; cell 1 100. 50. |]
  in
  (* Two half-region cells tiling the region exactly: every bin is at
     utilisation 1. *)
  let p = { Netlist.Placement.x = [| 50.; 50. |]; y = [| 25.; 75. |] } in
  let maxu, mean, std = Metrics.Overlap.density_stats c p ~nx:4 ~ny:4 in
  Alcotest.check (Alcotest.float 1e-6) "max" 1. maxu;
  Alcotest.check (Alcotest.float 1e-6) "mean" 1. mean;
  Alcotest.check (Alcotest.float 1e-6) "std" 0. std

let test_out_of_region () =
  let c =
    circuit_of
      [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1 |] |]
      [| cell 0 4. 4.; cell 1 4. 4. |]
  in
  (* Cell 0 straddles the left edge: half its area outside. *)
  let p = { Netlist.Placement.x = [| 0.; 50. |]; y = [| 50.; 50. |] } in
  Alcotest.check approx "half out" 8. (Metrics.Overlap.out_of_region_area c p)

let prop_hpwl_translation_invariant =
  QCheck.Test.make ~name:"hpwl invariant under translation"
    QCheck.(pair (float_range (-20.) 20.) (float_range (-20.) 20.))
    (fun (tx, ty) ->
      let c =
        circuit_of
          [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1; pin 2 |] |]
          [| cell 0 2. 2.; cell 1 2. 2.; cell 2 2. 2. |]
      in
      let p = { Netlist.Placement.x = [| 1.; 7.; 3. |]; y = [| 2.; 5.; 9. |] } in
      let q =
        {
          Netlist.Placement.x = Array.map (fun v -> v +. tx) p.Netlist.Placement.x;
          y = Array.map (fun v -> v +. ty) p.Netlist.Placement.y;
        }
      in
      Float.abs (Metrics.Wirelength.hpwl c p -. Metrics.Wirelength.hpwl c q) < 1e-9)

let prop_overlap_bucket_matches_naive =
  QCheck.Test.make ~name:"bucketed overlap equals naive pairwise sum"
    QCheck.(list_of_size (QCheck.Gen.int_range 2 12)
              (pair (float_range 5. 95.) (float_range 5. 95.)))
    (fun coords ->
      let n = List.length coords in
      let cells = Array.init n (fun i -> cell i 6. 6.) in
      let nets =
        [| Netlist.Net.make ~id:0 ~name:"n" (Array.init n (fun i -> pin i)) |]
      in
      let c = circuit_of nets cells in
      let xs = Array.of_list (List.map fst coords) in
      let ys = Array.of_list (List.map snd coords) in
      let p = { Netlist.Placement.x = xs; y = ys } in
      let naive = ref 0. in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          naive :=
            !naive
            +. Geometry.Rect.overlap_area
                 (Netlist.Placement.cell_rect c p i)
                 (Netlist.Placement.cell_rect c p j)
        done
      done;
      Float.abs (!naive -. Metrics.Overlap.total_overlap c p) < 1e-6)

let suite =
  [
    Alcotest.test_case "hpwl two pin" `Quick test_hpwl_two_pin;
    Alcotest.test_case "hpwl three pin bbox" `Quick test_hpwl_three_pin_bbox;
    Alcotest.test_case "hpwl pin offsets" `Quick test_hpwl_with_pin_offsets;
    Alcotest.test_case "weighted hpwl" `Quick test_weighted_hpwl;
    Alcotest.test_case "quadratic two pin" `Quick test_quadratic_two_pin;
    Alcotest.test_case "quadratic clique" `Quick test_quadratic_clique_weighting;
    Alcotest.test_case "overlap none" `Quick test_overlap_none_when_spread;
    Alcotest.test_case "overlap known" `Quick test_overlap_known;
    Alcotest.test_case "overlap triple" `Quick test_overlap_stacked_triple;
    Alcotest.test_case "density stats uniform" `Quick test_density_stats_uniform;
    Alcotest.test_case "out of region" `Quick test_out_of_region;
    QCheck_alcotest.to_alcotest prop_hpwl_translation_invariant;
    QCheck_alcotest.to_alcotest prop_overlap_bucket_matches_naive;
  ]
