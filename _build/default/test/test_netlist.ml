(* Tests for the netlist model: cells, nets, circuits, placements. *)

let approx = Alcotest.float 1e-9

let cell ?(kind = Netlist.Cell.Standard) ?fixed id w h =
  Netlist.Cell.make ~id ~name:(Printf.sprintf "c%d" id) ~width:w ~height:h
    ~kind ?fixed ()

let pin c = { Netlist.Net.cell = c; dx = 0.; dy = 0. }

let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:100. ~y_hi:64.

let tiny_circuit () =
  let cells =
    [|
      cell 0 8. 16.;
      cell 1 12. 16.;
      cell ~kind:Netlist.Cell.Pad 2 4. 4.;
      cell ~kind:Netlist.Cell.Block 3 30. 32.;
    |]
  in
  let nets =
    [|
      Netlist.Net.make ~id:0 ~name:"n0" [| pin 0; pin 1 |];
      Netlist.Net.make ~id:1 ~name:"n1" [| pin 2; pin 0; pin 3 |];
    |]
  in
  Netlist.Circuit.make ~name:"tiny" ~cells ~nets ~region ~row_height:16.

(* --- cells --- *)

let test_cell_defaults () =
  let c = cell 0 8. 16. in
  Alcotest.(check bool) "standard not fixed" false c.Netlist.Cell.fixed;
  Alcotest.(check bool) "standard not seq" false c.Netlist.Cell.sequential;
  let p = cell ~kind:Netlist.Cell.Pad 1 4. 4. in
  Alcotest.(check bool) "pad fixed" true p.Netlist.Cell.fixed;
  Alcotest.(check bool) "pad sequential" true p.Netlist.Cell.sequential

let test_cell_area_movable () =
  let c = cell 0 8. 16. in
  Alcotest.check approx "area" 128. (Netlist.Cell.area c);
  Alcotest.(check bool) "movable" true (Netlist.Cell.movable c);
  let f = cell ~fixed:true 1 8. 16. in
  Alcotest.(check bool) "fixed not movable" false (Netlist.Cell.movable f)

let test_cell_validation () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Cell.make: non-positive size") (fun () ->
      ignore (cell 0 0. 16.))

(* --- nets --- *)

let test_net_accessors () =
  let n = Netlist.Net.make ~id:0 ~name:"n" [| pin 3; pin 1; pin 2 |] in
  Alcotest.(check int) "degree" 3 (Netlist.Net.degree n);
  Alcotest.(check int) "driver" 3 (Netlist.Net.driver n).Netlist.Net.cell;
  Alcotest.(check int) "sinks" 2 (Array.length (Netlist.Net.sinks n));
  Alcotest.(check (list int)) "cells in order" [ 3; 1; 2 ] (Netlist.Net.cells n)

let test_net_validation () =
  Alcotest.check_raises "one pin"
    (Invalid_argument "Net.make: needs at least two pins") (fun () ->
      ignore (Netlist.Net.make ~id:0 ~name:"n" [| pin 0 |]));
  Alcotest.check_raises "duplicate pin"
    (Invalid_argument "Net.make: duplicate pin") (fun () ->
      ignore (Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 0 |]))

let test_net_same_cell_distinct_offsets () =
  (* Two pins on the same cell at different offsets are legitimate. *)
  let n =
    Netlist.Net.make ~id:0 ~name:"n"
      [| { Netlist.Net.cell = 0; dx = -1.; dy = 0. };
         { Netlist.Net.cell = 0; dx = 1.; dy = 0. } |]
  in
  Alcotest.(check (list int)) "one distinct cell" [ 0 ] (Netlist.Net.cells n)

(* --- circuit --- *)

let test_circuit_counts () =
  let c = tiny_circuit () in
  Alcotest.(check int) "cells" 4 (Netlist.Circuit.num_cells c);
  Alcotest.(check int) "nets" 2 (Netlist.Circuit.num_nets c);
  Alcotest.(check int) "movable (pad excluded)" 3 (Netlist.Circuit.num_movable c);
  Alcotest.(check int) "rows" 4 (Netlist.Circuit.num_rows c)

let test_circuit_areas () =
  let c = tiny_circuit () in
  Alcotest.check approx "movable area" (128. +. 192. +. 960.)
    (Netlist.Circuit.movable_area c);
  (* Pads excluded from total cell area. *)
  Alcotest.check approx "total area" (128. +. 192. +. 960.)
    (Netlist.Circuit.total_cell_area c);
  Alcotest.check approx "utilization" ((128. +. 192. +. 960.) /. 6400.)
    (Netlist.Circuit.utilization c)

let test_circuit_incidence () =
  let c = tiny_circuit () in
  Alcotest.(check (array int)) "cell 0 nets" [| 0; 1 |]
    (Netlist.Circuit.nets_of_cell c 0);
  Alcotest.(check (array int)) "cell 1 nets" [| 0 |]
    (Netlist.Circuit.nets_of_cell c 1)

let test_circuit_validation () =
  let cells = [| cell 0 8. 16. |] in
  let bad_net = [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 7 |] |] in
  Alcotest.check_raises "dangling pin"
    (Invalid_argument "Circuit.make: pin references unknown cell") (fun () ->
      ignore
        (Netlist.Circuit.make ~name:"bad" ~cells ~nets:bad_net ~region
           ~row_height:16.))

let test_pin_position () =
  let c = tiny_circuit () in
  let x = [| 10.; 0.; 0.; 0. |] and y = [| 20.; 0.; 0.; 0. |] in
  let px, py =
    Netlist.Circuit.pin_position c ~x ~y { Netlist.Net.cell = 0; dx = 2.; dy = -3. }
  in
  Alcotest.check approx "px" 12. px;
  Alcotest.check approx "py" 17. py

(* --- placement --- *)

let test_placement_centered () =
  let c = tiny_circuit () in
  let p = Netlist.Placement.centered c ~fixed_positions:[ (2, (0., 32.)) ] in
  Alcotest.check approx "movable at centre x" 50. p.Netlist.Placement.x.(0);
  Alcotest.check approx "movable at centre y" 32. p.Netlist.Placement.y.(1);
  Alcotest.check approx "pad pinned" 0. p.Netlist.Placement.x.(2);
  Alcotest.check approx "pad pinned y" 32. p.Netlist.Placement.y.(2)

let test_cell_rect () =
  let c = tiny_circuit () in
  let p = Netlist.Placement.centered c ~fixed_positions:[] in
  let r = Netlist.Placement.cell_rect c p 0 in
  Alcotest.check approx "width" 8. (Geometry.Rect.width r);
  let cx, _ = Geometry.Rect.center r in
  Alcotest.check approx "centred" 50. cx

let test_clamp_to_region () =
  let c = tiny_circuit () in
  let p = Netlist.Placement.centered c ~fixed_positions:[] in
  p.Netlist.Placement.x.(0) <- 1000.;
  p.Netlist.Placement.y.(0) <- -1000.;
  p.Netlist.Placement.x.(2) <- 1000.;
  (* pad: fixed, must not move *)
  Netlist.Placement.clamp_to_region c p;
  Alcotest.check approx "x clamped" 96. p.Netlist.Placement.x.(0);
  Alcotest.check approx "y clamped" 8. p.Netlist.Placement.y.(0);
  Alcotest.check approx "fixed untouched" 1000. p.Netlist.Placement.x.(2)

let test_displacement () =
  let a = { Netlist.Placement.x = [| 0.; 0. |]; y = [| 0.; 0. |] } in
  let b = { Netlist.Placement.x = [| 3.; 0. |]; y = [| 4.; 1. |] } in
  Alcotest.check approx "total" 6. (Netlist.Placement.displacement a b);
  Alcotest.check approx "max" 5. (Netlist.Placement.max_displacement a b)

let suite =
  [
    Alcotest.test_case "cell defaults" `Quick test_cell_defaults;
    Alcotest.test_case "cell area/movable" `Quick test_cell_area_movable;
    Alcotest.test_case "cell validation" `Quick test_cell_validation;
    Alcotest.test_case "net accessors" `Quick test_net_accessors;
    Alcotest.test_case "net validation" `Quick test_net_validation;
    Alcotest.test_case "net same-cell pins" `Quick test_net_same_cell_distinct_offsets;
    Alcotest.test_case "circuit counts" `Quick test_circuit_counts;
    Alcotest.test_case "circuit areas" `Quick test_circuit_areas;
    Alcotest.test_case "circuit incidence" `Quick test_circuit_incidence;
    Alcotest.test_case "circuit validation" `Quick test_circuit_validation;
    Alcotest.test_case "pin position" `Quick test_pin_position;
    Alcotest.test_case "placement centered" `Quick test_placement_centered;
    Alcotest.test_case "cell rect" `Quick test_cell_rect;
    Alcotest.test_case "clamp to region" `Quick test_clamp_to_region;
    Alcotest.test_case "displacement" `Quick test_displacement;
  ]
