(* Tests for the mixed block/cell floorplanning flow. *)

let build_mixed ?(blocks = 4) ?(seed = 51) () =
  let prof = Circuitgen.Profiles.find "fract" in
  let params =
    { (Circuitgen.Profiles.params prof ~seed) with
      Circuitgen.Gen.num_blocks = blocks }
  in
  let circuit, pads = Circuitgen.Gen.generate params in
  (circuit, Circuitgen.Gen.initial_placement circuit pads)

let quick_config =
  { Kraftwerk.Config.standard with Kraftwerk.Config.max_iterations = 60 }

let test_block_rects () =
  let circuit, p0 = build_mixed () in
  let rects = Floorplan.Mixed.block_rects circuit p0 in
  Alcotest.(check int) "four blocks" 4 (List.length rects);
  List.iter
    (fun (id, r) ->
      Alcotest.(check bool) "is block" true
        (circuit.Netlist.Circuit.cells.(id).Netlist.Cell.kind = Netlist.Cell.Block);
      Alcotest.(check bool) "positive area" true (Geometry.Rect.area r > 0.))
    rects

let test_legalize_blocks_no_overlaps () =
  let circuit, p0 = build_mixed () in
  (* Scatter blocks overlapping each other. *)
  let p = Netlist.Placement.copy p0 in
  List.iter
    (fun (id, _) ->
      p.Netlist.Placement.x.(id) <- 60.;
      p.Netlist.Placement.y.(id) <- 48.)
    (Floorplan.Mixed.block_rects circuit p);
  let moved = Floorplan.Mixed.legalize_blocks circuit p in
  Alcotest.(check bool) "blocks moved" true (moved > 0.);
  let rects = List.map snd (Floorplan.Mixed.block_rects circuit p) in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if j > i then
            Alcotest.(check (float 1e-6)) "no pairwise overlap" 0.
              (Geometry.Rect.overlap_area a b))
        rects)
    rects

let test_legalize_blocks_row_aligned () =
  let circuit, p0 = build_mixed () in
  let p = Netlist.Placement.copy p0 in
  ignore (Floorplan.Mixed.legalize_blocks circuit p);
  let region = circuit.Netlist.Circuit.region in
  List.iter
    (fun (_, (r : Geometry.Rect.t)) ->
      let offset =
        (r.Geometry.Rect.y_lo -. region.Geometry.Rect.y_lo)
        /. circuit.Netlist.Circuit.row_height
      in
      Alcotest.(check (float 1e-6)) "bottom on row boundary"
        (Float.round offset) offset;
      Alcotest.(check bool) "inside region" true
        (Geometry.Rect.overlap_area r region >= Geometry.Rect.area r -. 1e-6))
    (Floorplan.Mixed.block_rects circuit p)

let test_full_flow_legal () =
  let circuit, p0 = build_mixed () in
  let result = Floorplan.Mixed.place quick_config circuit p0 in
  let p = result.Floorplan.Mixed.placement in
  Alcotest.(check bool) "cells legal" true (Legalize.Check.is_legal circuit p);
  (* Standard cells clear of blocks. *)
  let blocks = List.map snd (Floorplan.Mixed.block_rects circuit p) in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if cl.Netlist.Cell.kind = Netlist.Cell.Standard && Netlist.Cell.movable cl
      then begin
        let r = Netlist.Placement.cell_rect circuit p cl.Netlist.Cell.id in
        List.iter
          (fun b ->
            Alcotest.(check (float 1e-6)) "cell clear of block" 0.
              (Geometry.Rect.overlap_area r b))
          blocks
      end)
    circuit.Netlist.Circuit.cells

let test_flow_reports_consistent () =
  let circuit, p0 = build_mixed ~blocks:2 () in
  let result = Floorplan.Mixed.place quick_config circuit p0 in
  Alcotest.(check bool) "global hpwl positive" true
    (result.Floorplan.Mixed.hpwl_global > 0.);
  Alcotest.(check (float 1e-6)) "final hpwl matches placement"
    (Metrics.Wirelength.hpwl circuit result.Floorplan.Mixed.placement)
    result.Floorplan.Mixed.hpwl_final

let test_no_blocks_degenerates_to_plain_flow () =
  let circuit, p0 = build_mixed ~blocks:0 () in
  let result = Floorplan.Mixed.place quick_config circuit p0 in
  Alcotest.(check (float 0.)) "no block movement" 0.
    result.Floorplan.Mixed.block_displacement;
  Alcotest.(check bool) "legal" true
    (Legalize.Check.is_legal circuit result.Floorplan.Mixed.placement)

let suite =
  [
    Alcotest.test_case "block rects" `Quick test_block_rects;
    Alcotest.test_case "block legalisation overlaps" `Quick test_legalize_blocks_no_overlaps;
    Alcotest.test_case "block row alignment" `Quick test_legalize_blocks_row_aligned;
    Alcotest.test_case "full flow legal" `Quick test_full_flow_legal;
    Alcotest.test_case "reports consistent" `Quick test_flow_reports_consistent;
    Alcotest.test_case "no blocks" `Quick test_no_blocks_degenerates_to_plain_flow;
  ]
