(* Tests for critical-path extraction. *)

let pin c = { Netlist.Net.cell = c; dx = 0.; dy = 0. }

let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:1000. ~y_hi:1000.

let params = Timing.Params.default

let chain_circuit () =
  let mk id name ~seq ~delay =
    Netlist.Cell.make ~id ~name ~width:4. ~height:4. ~sequential:seq ~delay ()
  in
  let cells =
    [|
      mk 0 "ff_in" ~seq:true ~delay:0.1e-9;
      mk 1 "a" ~seq:false ~delay:0.2e-9;
      mk 2 "b" ~seq:false ~delay:0.3e-9;
      mk 3 "ff_out" ~seq:true ~delay:0.1e-9;
    |]
  in
  let nets =
    [|
      Netlist.Net.make ~id:0 ~name:"n0" [| pin 0; pin 1 |];
      Netlist.Net.make ~id:1 ~name:"n1" [| pin 1; pin 2 |];
      Netlist.Net.make ~id:2 ~name:"n2" [| pin 2; pin 3 |];
    |]
  in
  Netlist.Circuit.make ~name:"chain" ~cells ~nets ~region ~row_height:4.

let test_chain_path_exact () =
  let c = chain_circuit () in
  let p = Netlist.Placement.create c in
  let sta = Timing.Sta.analyse params c p in
  match Timing.Paths.critical ~k:1 params c p with
  | [ path ] ->
    Alcotest.(check (float 1e-18)) "delay = STA max" sta.Timing.Sta.max_delay
      path.Timing.Paths.delay;
    let cells = List.map (fun (e : Timing.Paths.element) -> e.Timing.Paths.cell)
        path.Timing.Paths.elements
    in
    Alcotest.(check (list int)) "route ff_in→a→b→ff_out" [ 0; 1; 2; 3 ] cells;
    (* Arrivals strictly increase along the path. *)
    let arrivals =
      List.map (fun (e : Timing.Paths.element) -> e.Timing.Paths.arrival)
        path.Timing.Paths.elements
    in
    ignore
      (List.fold_left
         (fun prev a ->
           Alcotest.(check bool) "monotone" true (a > prev);
           a)
         (-1.) arrivals)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 path, got %d" (List.length other))

let test_via_nets_correct () =
  let c = chain_circuit () in
  let p = Netlist.Placement.create c in
  match Timing.Paths.critical ~k:1 params c p with
  | [ path ] ->
    let vias =
      List.map (fun (e : Timing.Paths.element) -> e.Timing.Paths.via_net)
        path.Timing.Paths.elements
    in
    Alcotest.(check bool) "start has no via" true (List.hd vias = None);
    Alcotest.(check (list int)) "hops via n0 n1 n2" [ 0; 1; 2 ]
      (List.filter_map Fun.id vias)
  | _ -> Alcotest.fail "expected one path"

let test_k_limits_and_sorting () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:42)
  in
  let p = Circuitgen.Gen.initial_placement circuit pads in
  let paths = Timing.Paths.critical ~k:4 params circuit p in
  Alcotest.(check bool) "at most 4" true (List.length paths <= 4);
  ignore
    (List.fold_left
       (fun prev (path : Timing.Paths.path) ->
         Alcotest.(check bool) "sorted descending" true
           (path.Timing.Paths.delay <= prev +. 1e-18);
         path.Timing.Paths.delay)
       Float.infinity paths);
  (* Worst equals STA. *)
  match paths with
  | first :: _ ->
    Alcotest.(check (float 1e-15)) "worst = STA"
      (Timing.Sta.analyse params circuit p).Timing.Sta.max_delay
      first.Timing.Paths.delay
  | [] -> Alcotest.fail "no paths"

let test_pp_path_prints () =
  let c = chain_circuit () in
  let p = Netlist.Placement.create c in
  match Timing.Paths.critical ~k:1 params c p with
  | [ path ] ->
    let s = Format.asprintf "%a" (Timing.Paths.pp_path c) path in
    Alcotest.(check bool) "mentions endpoint" true
      (let found = ref false in
       String.iteri
         (fun i _ ->
           if i + 6 <= String.length s && String.sub s i 6 = "ff_out" then
             found := true)
         s;
       !found)
  | _ -> Alcotest.fail "expected one path"

let suite =
  [
    Alcotest.test_case "chain path exact" `Quick test_chain_path_exact;
    Alcotest.test_case "via nets" `Quick test_via_nets_correct;
    Alcotest.test_case "k and sorting" `Quick test_k_limits_and_sorting;
    Alcotest.test_case "pp prints" `Quick test_pp_path_prints;
  ]
