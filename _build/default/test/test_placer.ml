(* Tests for the iterative Kraftwerk placer and ECO support. *)

let build ?(name = "fract") ?(scale = 1.0) ?(seed = 21) () =
  let prof = Circuitgen.Profiles.find name in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale prof ~seed)
  in
  (circuit, Circuitgen.Gen.initial_placement circuit pads)

let quick_config =
  { Kraftwerk.Config.standard with Kraftwerk.Config.max_iterations = 40 }

let test_run_spreads_cells () =
  let circuit, p0 = build () in
  let before = Metrics.Overlap.overlap_ratio circuit p0 in
  let state, reports = Kraftwerk.Placer.run quick_config circuit p0 in
  let after = Metrics.Overlap.overlap_ratio circuit state.Kraftwerk.Placer.placement in
  Alcotest.(check bool) "ran" true (List.length reports > 0);
  Alcotest.(check bool) "overlap reduced a lot" true (after < before /. 5.)

let test_run_keeps_cells_in_region () =
  let circuit, p0 = build () in
  let state, _ = Kraftwerk.Placer.run quick_config circuit p0 in
  Alcotest.(check (float 1e-6)) "nothing outside" 0.
    (Metrics.Overlap.out_of_region_area circuit state.Kraftwerk.Placer.placement)

let test_fixed_cells_never_move () =
  let circuit, p0 = build () in
  let pads_before =
    Array.to_list circuit.Netlist.Circuit.cells
    |> List.filter_map (fun (cl : Netlist.Cell.t) ->
           if cl.Netlist.Cell.fixed then
             Some (p0.Netlist.Placement.x.(cl.Netlist.Cell.id),
                   p0.Netlist.Placement.y.(cl.Netlist.Cell.id))
           else None)
  in
  let state, _ = Kraftwerk.Placer.run quick_config circuit p0 in
  let p = state.Kraftwerk.Placer.placement in
  let pads_after =
    Array.to_list circuit.Netlist.Circuit.cells
    |> List.filter_map (fun (cl : Netlist.Cell.t) ->
           if cl.Netlist.Cell.fixed then
             Some (p.Netlist.Placement.x.(cl.Netlist.Cell.id),
                   p.Netlist.Placement.y.(cl.Netlist.Cell.id))
           else None)
  in
  Alcotest.(check bool) "pads pinned" true (pads_before = pads_after)

let test_deterministic () =
  let circuit, p0 = build () in
  let s1, _ = Kraftwerk.Placer.run quick_config circuit p0 in
  let s2, _ = Kraftwerk.Placer.run quick_config circuit p0 in
  Alcotest.(check (float 0.)) "identical runs" 0.
    (Netlist.Placement.displacement s1.Kraftwerk.Placer.placement
       s2.Kraftwerk.Placer.placement)

let test_input_placement_not_mutated () =
  let circuit, p0 = build () in
  let x0 = Array.copy p0.Netlist.Placement.x in
  ignore (Kraftwerk.Placer.run quick_config circuit p0);
  Alcotest.(check bool) "input intact" true
    (Numeric.Vec.max_abs_diff x0 p0.Netlist.Placement.x = 0.)

let test_transform_reports_progress () =
  let circuit, p0 = build () in
  let state = Kraftwerk.Placer.init quick_config circuit p0 in
  let r1 = Kraftwerk.Placer.transform state in
  let r2 = Kraftwerk.Placer.transform state in
  Alcotest.(check int) "step 1" 1 r1.Kraftwerk.Placer.step;
  Alcotest.(check int) "step 2" 2 r2.Kraftwerk.Placer.step;
  Alcotest.(check bool) "hpwl positive" true (r2.Kraftwerk.Placer.hpwl > 0.)

let test_fast_mode_converges_in_fewer_steps () =
  let circuit, p0 = build ~name:"primary1" ~scale:0.5 () in
  let _, std_reports =
    Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0
  in
  let _, fast_reports = Kraftwerk.Placer.run Kraftwerk.Config.fast circuit p0 in
  Alcotest.(check bool) "fast uses fewer transformations" true
    (List.length fast_reports < List.length std_reports)

let test_on_step_hook_called () =
  let circuit, p0 = build () in
  let calls = ref 0 in
  let hooks =
    { Kraftwerk.Placer.no_hooks with
      Kraftwerk.Placer.on_step = Some (fun _ -> incr calls) }
  in
  let _, reports = Kraftwerk.Placer.run ~hooks quick_config circuit p0 in
  Alcotest.(check int) "hook per step" (List.length reports) !calls

let test_reweight_hook_applied () =
  let circuit, p0 = build () in
  let seen_weight = ref 0. in
  let hooks =
    { Kraftwerk.Placer.no_hooks with
      Kraftwerk.Placer.reweight =
        Some
          (fun state ->
            state.Kraftwerk.Placer.net_weights.(0) <- 5.;
            seen_weight := state.Kraftwerk.Placer.net_weights.(0)) }
  in
  let state = Kraftwerk.Placer.init quick_config circuit p0 in
  ignore (Kraftwerk.Placer.transform ~hooks state);
  Alcotest.(check (float 0.)) "weight set" 5. !seen_weight;
  Alcotest.(check (float 0.)) "weight persisted" 5.
    state.Kraftwerk.Placer.net_weights.(0)

let test_force_decay_leaks () =
  let circuit, p0 = build () in
  let cfg = { quick_config with Kraftwerk.Config.force_decay = 0. } in
  (* β = 0: e is exactly the latest increment; two transforms with an
     identical placement would give identical e.  We just check the run
     still spreads and stays sane. *)
  let state, _ = Kraftwerk.Placer.run cfg circuit p0 in
  Alcotest.(check bool) "finite hpwl" true
    (Float.is_finite (Metrics.Wirelength.hpwl circuit state.Kraftwerk.Placer.placement))

let test_converged_matches_stop_criterion () =
  let circuit, p0 = build () in
  let state, _ =
    Kraftwerk.Placer.run
      { Kraftwerk.Config.standard with Kraftwerk.Config.max_iterations = 300 }
      circuit p0
  in
  (* After a full run either the criterion holds or we hit the bound. *)
  Alcotest.(check bool) "converged or capped" true
    (Kraftwerk.Placer.converged state || state.Kraftwerk.Placer.iteration >= 300)

(* --- ECO --- *)

let test_eco_rewire_counts_preserved () =
  let circuit, _ = build () in
  let rng = Numeric.Rng.create 1 in
  let circuit' = Kraftwerk.Eco.rewire circuit rng ~fraction:0.3 in
  Alcotest.(check int) "cells" (Netlist.Circuit.num_cells circuit)
    (Netlist.Circuit.num_cells circuit');
  Alcotest.(check int) "nets" (Netlist.Circuit.num_nets circuit)
    (Netlist.Circuit.num_nets circuit')

let test_eco_rewire_changes_some_nets () =
  let circuit, _ = build () in
  let rng = Numeric.Rng.create 1 in
  let circuit' = Kraftwerk.Eco.rewire circuit rng ~fraction:0.5 in
  let changed = ref 0 in
  Array.iteri
    (fun i (n : Netlist.Net.t) ->
      if Netlist.Net.cells n <> Netlist.Net.cells circuit'.Netlist.Circuit.nets.(i)
      then incr changed)
    circuit.Netlist.Circuit.nets;
  Alcotest.(check bool) "some rewired" true (!changed > 10)

let test_eco_resize_only_widths () =
  let circuit, _ = build () in
  let rng = Numeric.Rng.create 2 in
  let circuit' =
    Kraftwerk.Eco.resize circuit rng ~fraction:1.0 ~scale_range:(2.0, 2.0)
  in
  Array.iteri
    (fun i (cl : Netlist.Cell.t) ->
      let cl' = circuit'.Netlist.Circuit.cells.(i) in
      if cl.Netlist.Cell.kind = Netlist.Cell.Standard && Netlist.Cell.movable cl
      then
        Alcotest.(check (float 1e-9)) "doubled"
          (2. *. cl.Netlist.Cell.width)
          cl'.Netlist.Cell.width
      else
        Alcotest.(check (float 1e-9)) "untouched" cl.Netlist.Cell.width
          cl'.Netlist.Cell.width)
    circuit.Netlist.Circuit.cells

let test_eco_add_cells () =
  let circuit, p0 = build () in
  let rng = Numeric.Rng.create 3 in
  let circuit', p' =
    Kraftwerk.Eco.add_cells circuit p0 rng ~specs:[ (10., 16.); (12., 16.) ]
  in
  Alcotest.(check int) "two more cells"
    (Netlist.Circuit.num_cells circuit + 2)
    (Netlist.Circuit.num_cells circuit');
  Alcotest.(check int) "two more nets"
    (Netlist.Circuit.num_nets circuit + 2)
    (Netlist.Circuit.num_nets circuit');
  Alcotest.(check int) "placement extended"
    (Netlist.Circuit.num_cells circuit')
    (Array.length p'.Netlist.Placement.x);
  (* Old coordinates preserved. *)
  Alcotest.(check bool) "prefix intact" true
    (Array.sub p'.Netlist.Placement.x 0 (Netlist.Circuit.num_cells circuit)
    = p0.Netlist.Placement.x)

let test_eco_replace_small_displacement () =
  let circuit, p0 = build ~name:"primary1" ~scale:0.5 () in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let placed = state.Kraftwerk.Placer.placement in
  let rng = Numeric.Rng.create 4 in
  let circuit' = Kraftwerk.Eco.rewire circuit rng ~fraction:0.02 in
  let adapted, _ =
    Kraftwerk.Eco.replace Kraftwerk.Config.standard circuit'
      (Netlist.Placement.copy placed) ~max_steps:8
  in
  let region = circuit.Netlist.Circuit.region in
  let diag =
    sqrt (((Geometry.Rect.width region) ** 2.) +. ((Geometry.Rect.height region) ** 2.))
  in
  let mean =
    Netlist.Placement.displacement placed adapted
    /. float_of_int (Netlist.Circuit.num_movable circuit)
  in
  Alcotest.(check bool) "mean displacement under 10% of diagonal" true
    (mean < 0.10 *. diag)

let suite =
  [
    Alcotest.test_case "run spreads cells" `Quick test_run_spreads_cells;
    Alcotest.test_case "cells stay in region" `Quick test_run_keeps_cells_in_region;
    Alcotest.test_case "fixed cells pinned" `Quick test_fixed_cells_never_move;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "input not mutated" `Quick test_input_placement_not_mutated;
    Alcotest.test_case "transform reports" `Quick test_transform_reports_progress;
    Alcotest.test_case "fast mode fewer steps" `Slow test_fast_mode_converges_in_fewer_steps;
    Alcotest.test_case "on_step hook" `Quick test_on_step_hook_called;
    Alcotest.test_case "reweight hook" `Quick test_reweight_hook_applied;
    Alcotest.test_case "force decay 0" `Quick test_force_decay_leaks;
    Alcotest.test_case "converged consistent" `Slow test_converged_matches_stop_criterion;
    Alcotest.test_case "eco rewire counts" `Quick test_eco_rewire_counts_preserved;
    Alcotest.test_case "eco rewire changes" `Quick test_eco_rewire_changes_some_nets;
    Alcotest.test_case "eco resize widths" `Quick test_eco_resize_only_widths;
    Alcotest.test_case "eco add cells" `Quick test_eco_add_cells;
    Alcotest.test_case "eco replace stable" `Slow test_eco_replace_small_displacement;
  ]
