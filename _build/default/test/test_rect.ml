(* Tests for Geometry.Rect. *)

let approx = Alcotest.float 1e-9

let r ?(x = 0.) ?(y = 0.) w h =
  Geometry.Rect.make ~x_lo:x ~y_lo:y ~x_hi:(x +. w) ~y_hi:(y +. h)

let test_make_validation () =
  Alcotest.check_raises "inverted" (Invalid_argument "Rect.make: inverted bounds")
    (fun () -> ignore (Geometry.Rect.make ~x_lo:1. ~y_lo:0. ~x_hi:0. ~y_hi:1.))

let test_dims () =
  let a = r 3. 4. in
  Alcotest.check approx "width" 3. (Geometry.Rect.width a);
  Alcotest.check approx "height" 4. (Geometry.Rect.height a);
  Alcotest.check approx "area" 12. (Geometry.Rect.area a)

let test_of_center () =
  let a = Geometry.Rect.of_center ~cx:5. ~cy:6. ~w:2. ~h:4. in
  Alcotest.check approx "x_lo" 4. a.Geometry.Rect.x_lo;
  Alcotest.check approx "y_hi" 8. a.Geometry.Rect.y_hi;
  let cx, cy = Geometry.Rect.center a in
  Alcotest.check approx "cx" 5. cx;
  Alcotest.check approx "cy" 6. cy

let test_contains () =
  let a = r 2. 2. in
  Alcotest.(check bool) "inside" true (Geometry.Rect.contains a 1. 1.);
  Alcotest.(check bool) "boundary" true (Geometry.Rect.contains a 2. 2.);
  Alcotest.(check bool) "outside" false (Geometry.Rect.contains a 2.1 1.)

let test_intersection_overlapping () =
  match Geometry.Rect.intersection (r 4. 4.) (r ~x:2. ~y:2. 4. 4.) with
  | Some i ->
    Alcotest.check approx "area" 4. (Geometry.Rect.area i);
    Alcotest.check approx "x_lo" 2. i.Geometry.Rect.x_lo
  | None -> Alcotest.fail "expected overlap"

let test_intersection_disjoint () =
  Alcotest.(check bool) "disjoint" true
    (Geometry.Rect.intersection (r 1. 1.) (r ~x:5. 1. 1.) = None);
  (* Touching edges only: no interior overlap. *)
  Alcotest.(check bool) "touching" true
    (Geometry.Rect.intersection (r 1. 1.) (r ~x:1. 1. 1.) = None)

let test_overlap_area () =
  Alcotest.check approx "overlap" 4.
    (Geometry.Rect.overlap_area (r 4. 4.) (r ~x:2. ~y:2. 4. 4.));
  Alcotest.check approx "none" 0.
    (Geometry.Rect.overlap_area (r 1. 1.) (r ~x:3. 1. 1.))

let test_union () =
  let u = Geometry.Rect.union (r 1. 1.) (r ~x:3. ~y:4. 1. 1.) in
  Alcotest.check approx "x_hi" 4. u.Geometry.Rect.x_hi;
  Alcotest.check approx "y_hi" 5. u.Geometry.Rect.y_hi

let test_expand () =
  let e = Geometry.Rect.expand (r ~x:1. ~y:1. 2. 2.) 0.5 in
  Alcotest.check approx "x_lo" 0.5 e.Geometry.Rect.x_lo;
  Alcotest.check approx "area" 9. (Geometry.Rect.area e)

let test_clamp_point () =
  let a = r 2. 2. in
  let x, y = Geometry.Rect.clamp_point a 5. (-1.) in
  Alcotest.check approx "x" 2. x;
  Alcotest.check approx "y" 0. y;
  let x, y = Geometry.Rect.clamp_point a 1. 1. in
  Alcotest.check approx "inside x" 1. x;
  Alcotest.check approx "inside y" 1. y

let rect_gen =
  QCheck.(
    map
      (fun (x, y, w, h) ->
        Geometry.Rect.make ~x_lo:x ~y_lo:y ~x_hi:(x +. w) ~y_hi:(y +. h))
      (quad (float_range (-50.) 50.) (float_range (-50.) 50.)
         (float_range 0. 20.) (float_range 0. 20.)))

let prop_intersection_within_both =
  QCheck.Test.make ~name:"intersection contained in both rects"
    (QCheck.pair rect_gen rect_gen) (fun (a, b) ->
      match Geometry.Rect.intersection a b with
      | None -> true
      | Some i ->
        i.Geometry.Rect.x_lo >= Float.max a.Geometry.Rect.x_lo b.Geometry.Rect.x_lo -. 1e-9
        && i.Geometry.Rect.x_hi
           <= Float.min a.Geometry.Rect.x_hi b.Geometry.Rect.x_hi +. 1e-9
        && Geometry.Rect.area i <= Float.min (Geometry.Rect.area a) (Geometry.Rect.area b) +. 1e-9)

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"overlap area is symmetric" (QCheck.pair rect_gen rect_gen)
    (fun (a, b) ->
      Float.abs (Geometry.Rect.overlap_area a b -. Geometry.Rect.overlap_area b a) < 1e-9)

let prop_union_contains_both =
  QCheck.Test.make ~name:"union contains both rects" (QCheck.pair rect_gen rect_gen)
    (fun (a, b) ->
      let u = Geometry.Rect.union a b in
      Geometry.Rect.overlap_area u a >= Geometry.Rect.area a -. 1e-6
      && Geometry.Rect.overlap_area u b >= Geometry.Rect.area b -. 1e-6)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "dims" `Quick test_dims;
    Alcotest.test_case "of_center" `Quick test_of_center;
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "intersection overlapping" `Quick test_intersection_overlapping;
    Alcotest.test_case "intersection disjoint" `Quick test_intersection_disjoint;
    Alcotest.test_case "overlap area" `Quick test_overlap_area;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "expand" `Quick test_expand;
    Alcotest.test_case "clamp point" `Quick test_clamp_point;
    QCheck_alcotest.to_alcotest prop_intersection_within_both;
    QCheck_alcotest.to_alcotest prop_overlap_symmetric;
    QCheck_alcotest.to_alcotest prop_union_contains_both;
  ]
