(* Tests for clustering and the multilevel placement flow. *)

let build ?(name = "primary1") ?(scale = 0.5) ?(seed = 81) () =
  let prof = Circuitgen.Profiles.find name in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale prof ~seed)
  in
  (circuit, pads, Circuitgen.Gen.initial_placement circuit pads)

let test_cluster_partitions_cells () =
  let circuit, pads, _ = build () in
  let t = Kraftwerk.Cluster.cluster circuit ~fixed_positions:pads in
  let n = Netlist.Circuit.num_cells circuit in
  (* Every flat cell maps to a coarse cell, and members invert the map. *)
  let covered = Array.make n false in
  Array.iteri
    (fun cid group ->
      List.iter
        (fun id ->
          Alcotest.(check int) "cluster_of inverts members" cid
            t.Kraftwerk.Cluster.cluster_of.(id);
          Alcotest.(check bool) "not seen before" false covered.(id);
          covered.(id) <- true)
        group)
    t.Kraftwerk.Cluster.members;
  Array.iter (fun c -> Alcotest.(check bool) "covered" true c) covered

let test_cluster_reduces_size () =
  let circuit, pads, _ = build () in
  let t = Kraftwerk.Cluster.cluster circuit ~fixed_positions:pads in
  let coarse_n = Netlist.Circuit.num_cells t.Kraftwerk.Cluster.coarse in
  Alcotest.(check bool) "meaningfully smaller" true
    (coarse_n < (2 * Netlist.Circuit.num_cells circuit) / 3)

let test_cluster_preserves_area () =
  let circuit, pads, _ = build () in
  let t = Kraftwerk.Cluster.cluster circuit ~fixed_positions:pads in
  Alcotest.(check (float 1.)) "movable area preserved"
    (Netlist.Circuit.movable_area circuit)
    (Netlist.Circuit.movable_area t.Kraftwerk.Cluster.coarse)

let test_cluster_area_cap_respected () =
  let circuit, pads, _ = build () in
  let cap = 4. *. Netlist.Circuit.average_cell_area circuit in
  let t =
    Kraftwerk.Cluster.cluster ~max_cluster_area:cap circuit ~fixed_positions:pads
  in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if Netlist.Cell.movable cl then
        (* Merges check the cap before joining, so a cluster can exceed
           it by at most one member's area. *)
        Alcotest.(check bool) "bounded" true
          (Netlist.Cell.area cl <= 2. *. cap))
    t.Kraftwerk.Cluster.coarse.Netlist.Circuit.cells

let test_cluster_fixed_cells_singleton () =
  let circuit, pads, _ = build () in
  let t = Kraftwerk.Cluster.cluster circuit ~fixed_positions:pads in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if cl.Netlist.Cell.fixed then begin
        let cid = t.Kraftwerk.Cluster.cluster_of.(cl.Netlist.Cell.id) in
        Alcotest.(check int) "singleton" 1
          (List.length t.Kraftwerk.Cluster.members.(cid));
        Alcotest.(check bool) "coarse cell fixed" true
          t.Kraftwerk.Cluster.coarse.Netlist.Circuit.cells.(cid).Netlist.Cell.fixed
      end)
    circuit.Netlist.Circuit.cells

let test_expand_places_members_near_cluster () =
  let circuit, pads, p0 = build () in
  let t = Kraftwerk.Cluster.cluster circuit ~fixed_positions:pads in
  let coarse_p =
    Netlist.Placement.centered t.Kraftwerk.Cluster.coarse
      ~fixed_positions:t.Kraftwerk.Cluster.coarse_fixed
  in
  let flat = Netlist.Placement.copy p0 in
  Kraftwerk.Cluster.expand t ~coarse_placement:coarse_p ~flat_placement:flat;
  Array.iteri
    (fun cid group ->
      let cx = coarse_p.Netlist.Placement.x.(cid) in
      let cy = coarse_p.Netlist.Placement.y.(cid) in
      List.iter
        (fun id ->
          let d =
            sqrt
              (((flat.Netlist.Placement.x.(id) -. cx) ** 2.)
              +. ((flat.Netlist.Placement.y.(id) -. cy) ** 2.))
          in
          Alcotest.(check bool) "near cluster centre" true (d < 10.))
        group)
    t.Kraftwerk.Cluster.members

let test_multilevel_end_to_end () =
  let circuit, pads, p0 = build () in
  let flat_state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let flat_wl =
    Metrics.Wirelength.hpwl circuit flat_state.Kraftwerk.Placer.placement
  in
  let ml =
    Kraftwerk.Cluster.place_multilevel Kraftwerk.Config.standard circuit
      ~fixed_positions:pads p0
  in
  let ml_wl = Metrics.Wirelength.hpwl circuit ml in
  Alcotest.(check (float 1e-6)) "in region" 0.
    (Metrics.Overlap.out_of_region_area circuit ml);
  (* Multilevel lands in the same quality regime as flat. *)
  Alcotest.(check bool) "comparable quality" true (ml_wl < 1.5 *. flat_wl)

let test_cluster_deterministic () =
  let circuit, pads, _ = build () in
  let t1 = Kraftwerk.Cluster.cluster ~seed:5 circuit ~fixed_positions:pads in
  let t2 = Kraftwerk.Cluster.cluster ~seed:5 circuit ~fixed_positions:pads in
  Alcotest.(check bool) "same clustering" true
    (t1.Kraftwerk.Cluster.cluster_of = t2.Kraftwerk.Cluster.cluster_of)

let suite =
  [
    Alcotest.test_case "partitions cells" `Quick test_cluster_partitions_cells;
    Alcotest.test_case "reduces size" `Quick test_cluster_reduces_size;
    Alcotest.test_case "preserves area" `Quick test_cluster_preserves_area;
    Alcotest.test_case "area cap" `Quick test_cluster_area_cap_respected;
    Alcotest.test_case "fixed singleton" `Quick test_cluster_fixed_cells_singleton;
    Alcotest.test_case "expand near centre" `Quick test_expand_places_members_near_cluster;
    Alcotest.test_case "multilevel e2e" `Slow test_multilevel_end_to_end;
    Alcotest.test_case "deterministic" `Quick test_cluster_deterministic;
  ]
