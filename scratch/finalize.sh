#!/bin/sh
# Final capture steps (run after the bench completes):
set -e
cd /root/repo
cp /tmp/bench_final.txt /root/repo/bench_output.txt
rm -rf /root/repo/scratch
dune build @all
dune runtest --force --no-buffer 2>&1 | tee /root/repo/test_output.txt | tail -3
