module P = Engine.Protocol
module J = Obs.Json

type config = {
  address : Address.t;
  concurrency : int;
  domains : int option;
  shards : int;
  max_pending : int;
  max_conns : int;
  request_timeout_s : float;
  idle_timeout_s : float;
  drain_grace_s : float;
  max_line : int;
  proto : Engine.Protocol.version;
  transcript : string option;
}

let config address =
  {
    address;
    concurrency = 2;
    domains = None;
    shards = 0;
    max_pending = 64;
    max_conns = 128;
    request_timeout_s = 300.;
    idle_timeout_s = 0.;
    drain_grace_s = 30.;
    max_line = 1 lsl 20;
    proto = P.V2;
    transcript = None;
  }

type conn = {
  fd : Unix.file_descr;
  cid : int;
  frame : Frame.t;
  out : Buffer.t;
  mutable out_off : int;  (* bytes of [out] already written *)
  mutable subscribed : bool;
  mutable last_activity : float;
  mutable closing : bool;  (* flush remaining output, then close *)
}

(* A parked wait/drain response: fired by job completion or scheduler
   idleness, or expired by the request timeout. *)
type waiter = {
  wcid : int;
  wseq : J.t option;
  target : [ `Job of Engine.Scheduler.id | `Idle ];
  parked_at : float;
  expires_at : float;
  start_turns : int;
}

type state = {
  cfg : config;
  sched : Engine.Scheduler.t;
  listen_fd : Unix.file_descr;
  conns : (int, conn) Hashtbl.t;
  mutable next_cid : int;
  mutable waiters : waiter list;
  mutable ev : int;  (* monotonic event counter *)
  ring : (int * string) Queue.t;  (* recent event lines for from_ev replay *)
  mutable turns : int;  (* total scheduler turns stepped *)
  mutable draining : bool;
  mutable drain_started : float;
  mutable stop : bool;
  transcript_oc : out_channel option;
}

let ring_cap = 1024

let echo st line =
  match st.transcript_oc with
  | Some oc ->
    output_string oc line;
    output_char oc '\n';
    flush oc
  | None -> ()

let int_ n = J.Num (float_of_int n)

(* ------------------------------------------------------------------ *)
(* Output plumbing                                                      *)

let send_line st conn line =
  Buffer.add_string conn.out line;
  Buffer.add_char conn.out '\n';
  echo st line

let respond st conn ~seq reply =
  Obs.Registry.incr "server/responses";
  (match reply with
  | P.Refuse e ->
    Obs.Registry.incr "server/errors";
    Obs.Registry.incr (Printf.sprintf "server/errors/%s" (P.code_to_string e.P.code))
  | P.Reply _ -> ());
  send_line st conn (J.to_string (P.render st.cfg.proto ~seq reply))

let drop_conn st conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Hashtbl.remove st.conns conn.cid;
  st.waiters <- List.filter (fun w -> w.wcid <> conn.cid) st.waiters;
  Obs.Registry.incr "server/conns_closed"

(* Flush as much pending output as the socket accepts.  Returns [false]
   when the connection died under us. *)
let flush_out st conn =
  let data = Buffer.contents conn.out in
  let len = String.length data in
  let rec go () =
    if conn.out_off >= len then begin
      Buffer.clear conn.out;
      conn.out_off <- 0;
      true
    end
    else
      match
        Unix.write_substring conn.fd data conn.out_off (len - conn.out_off)
      with
      | 0 -> true
      | n ->
        conn.out_off <- conn.out_off + n;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        true
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        drop_conn st conn;
        false
  in
  go ()

let has_output conn = Buffer.length conn.out - conn.out_off > 0

(* ------------------------------------------------------------------ *)
(* Events                                                               *)

let broadcast_event st e =
  st.ev <- st.ev + 1;
  let ev =
    match st.cfg.proto with P.V2 | P.V3 -> Some st.ev | P.V1 -> None
  in
  let line = J.to_string (P.event_to_json ?ev e) in
  Queue.push (st.ev, line) st.ring;
  while Queue.length st.ring > ring_cap do
    ignore (Queue.pop st.ring)
  done;
  echo st line;
  Hashtbl.iter
    (fun _ conn ->
      if conn.subscribed && not conn.closing then begin
        Buffer.add_string conn.out line;
        Buffer.add_char conn.out '\n'
      end)
    st.conns

let wait_reply st id status =
  let base =
    [ ("id", int_ id); ("status", J.Str (Engine.Job.status_to_string status)) ]
  in
  (* Embed the result so a client parked on [wait] needs no further
     round trip — a draining server can answer and exit. *)
  match Engine.Scheduler.result st.sched id with
  | Some r -> P.Reply (base @ [ ("result", Engine.Job.result_to_json r) ])
  | None -> P.Reply base

let fire_waiters_for_job st id status =
  let fired, rest =
    List.partition (fun w -> w.target = `Job id) st.waiters
  in
  st.waiters <- rest;
  List.iter
    (fun w ->
      match Hashtbl.find_opt st.conns w.wcid with
      | None -> ()
      | Some conn ->
        Obs.Registry.observe "server/wait_ms"
          ((Unix.gettimeofday () -. w.parked_at) *. 1000.);
        respond st conn ~seq:w.wseq (wait_reply st id status))
    fired

let fire_idle_waiters st =
  if not (Engine.Scheduler.busy st.sched) then begin
    let fired, rest = List.partition (fun w -> w.target = `Idle) st.waiters in
    st.waiters <- rest;
    List.iter
      (fun w ->
        match Hashtbl.find_opt st.conns w.wcid with
        | None -> ()
        | Some conn ->
          Obs.Registry.observe "server/wait_ms"
            ((Unix.gettimeofday () -. w.parked_at) *. 1000.);
          respond st conn ~seq:w.wseq
            (P.Reply [ ("stepped", int_ (st.turns - w.start_turns)) ]))
      fired
  end

let on_event st e =
  broadcast_event st e;
  match e with
  | Engine.Scheduler.Finished (id, status) ->
    Obs.Registry.incr "server/jobs_finished";
    fire_waiters_for_job st id status
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Graceful drain                                                       *)

let begin_drain st =
  if not st.draining then begin
    st.draining <- true;
    st.drain_started <- Unix.gettimeofday ();
    Obs.Registry.incr "server/drains"
  end

(* ------------------------------------------------------------------ *)
(* Request execution (asynchronous server semantics)                    *)

let retry_after_ms st =
  let backlog = Engine.Scheduler.queued st.sched + Engine.Scheduler.running st.sched in
  min 15_000 (max 250 (250 * backlog))

let exec st conn seq req =
  match req with
  | P.Submit _ ->
    if st.draining then
      respond st conn ~seq
        (P.Refuse (P.err P.Shutting_down "server is draining; resubmit elsewhere"))
    else if Engine.Scheduler.queued st.sched >= st.cfg.max_pending then begin
      Obs.Registry.incr "server/shed";
      respond st conn ~seq
        (P.Refuse
           (P.err ~retry_after_ms:(retry_after_ms st) P.Overloaded
              (Printf.sprintf "%d jobs pending (bound %d)"
                 (Engine.Scheduler.queued st.sched)
                 st.cfg.max_pending)))
    end
    else begin
      Obs.Registry.incr "server/submits";
      respond st conn ~seq (fst (P.handle ~proto:st.cfg.proto st.sched req))
    end
  | P.Status _ | P.Result _ | P.Cancel _ | P.Jobs | P.Metrics ->
    respond st conn ~seq (fst (P.handle ~proto:st.cfg.proto st.sched req))
  | P.Step _ ->
    (* Scheduling is autonomous here; the request is acknowledged but
       lends the client no turns. *)
    respond st conn ~seq (P.Reply [ ("stepped", int_ 0) ])
  | P.Drain ->
    if Engine.Scheduler.busy st.sched then
      st.waiters <-
        {
          wcid = conn.cid;
          wseq = seq;
          target = `Idle;
          parked_at = Unix.gettimeofday ();
          expires_at = Unix.gettimeofday () +. st.cfg.request_timeout_s;
          start_turns = st.turns;
        }
        :: st.waiters
    else respond st conn ~seq (P.Reply [ ("stepped", int_ 0) ])
  | P.Wait id -> (
    match Engine.Scheduler.status st.sched id with
    | None ->
      respond st conn ~seq
        (P.Refuse (P.err P.Unknown_id (Printf.sprintf "unknown job id %d" id)))
    | Some s when Engine.Job.terminal s -> respond st conn ~seq (wait_reply st id s)
    | Some _ ->
      st.waiters <-
        {
          wcid = conn.cid;
          wseq = seq;
          target = `Job id;
          parked_at = Unix.gettimeofday ();
          expires_at = Unix.gettimeofday () +. st.cfg.request_timeout_s;
          start_turns = st.turns;
        }
        :: st.waiters)
  | P.Subscribe { from_ev } ->
    conn.subscribed <- true;
    (match from_ev with
    | Some from ->
      Queue.iter
        (fun (ev, line) ->
          if ev > from then begin
            Buffer.add_string conn.out line;
            Buffer.add_char conn.out '\n'
          end)
        st.ring
    | None -> ());
    respond st conn ~seq
      (P.Reply [ ("subscribed", J.Bool true); ("ev", int_ st.ev) ])
  | P.Shutdown ->
    begin_drain st;
    respond st conn ~seq (P.Reply [ ("shutdown", J.Bool true) ])

let dispatch st conn line =
  Obs.Registry.incr "server/requests";
  let t0 = Unix.gettimeofday () in
  echo st line;
  (match J.of_string line with
  | Error msg ->
    respond st conn ~seq:None (P.Refuse (P.err P.Parse ("bad JSON: " ^ msg)))
  | Ok v -> (
    let seq = P.seq_of_json v in
    match P.request_of_json v with
    | Error e -> respond st conn ~seq (P.Refuse e)
    | Ok req -> exec st conn seq req));
  Obs.Registry.observe "server/request_ms" ((Unix.gettimeofday () -. t0) *. 1000.)

(* ------------------------------------------------------------------ *)
(* Connection lifecycle                                                 *)

let accept_conns st =
  let rec go () =
    match Unix.accept ~cloexec:true st.listen_fd with
    | fd, _addr ->
      Unix.set_nonblock fd;
      st.next_cid <- st.next_cid + 1;
      let conn =
        {
          fd;
          cid = st.next_cid;
          frame = Frame.create ~max_line:st.cfg.max_line ();
          out = Buffer.create 512;
          out_off = 0;
          subscribed = false;
          last_activity = Unix.gettimeofday ();
          closing = false;
        }
      in
      Hashtbl.replace st.conns conn.cid conn;
      Obs.Registry.incr "server/conns_opened";
      (* Refusals are polite: a typed error line, then close — the
         client never sees a bare dropped connection. *)
      if st.draining then begin
        respond st conn ~seq:None
          (P.Refuse (P.err P.Shutting_down "server is draining"));
        conn.closing <- true
      end
      else if Hashtbl.length st.conns > st.cfg.max_conns then begin
        Obs.Registry.incr "server/shed";
        respond st conn ~seq:None
          (P.Refuse
             (P.err ~retry_after_ms:(retry_after_ms st) P.Overloaded
                (Printf.sprintf "%d connections (bound %d)"
                   (Hashtbl.length st.conns) st.cfg.max_conns)));
        conn.closing <- true
      end;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  go ()

let scratch = Bytes.create 65536

let read_conn st conn =
  match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
  | 0 ->
    (* EOF: serve whatever complete lines arrived, then close. *)
    conn.closing <- true
  | n ->
    conn.last_activity <- Unix.gettimeofday ();
    Frame.feed conn.frame (Bytes.sub_string scratch 0 n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    drop_conn st conn

let service_frames st conn =
  let rec go () =
    match Frame.next conn.frame with
    | None -> ()
    | Some `Overflow ->
      respond st conn ~seq:None
        (P.Refuse
           (P.err P.Parse
              (Printf.sprintf "request line exceeds %d bytes" st.cfg.max_line)));
      go ()
    | Some (`Line line) ->
      let line = String.trim line in
      if line <> "" then dispatch st conn line;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The loop                                                             *)

let expire_waiters st now =
  let expired, live = List.partition (fun w -> now > w.expires_at) st.waiters in
  st.waiters <- live;
  List.iter
    (fun w ->
      match Hashtbl.find_opt st.conns w.wcid with
      | None -> ()
      | Some conn ->
        let what =
          match w.target with
          | `Job id -> Printf.sprintf "job %d is still running" id
          | `Idle -> "scheduler is still busy"
        in
        respond st conn ~seq:w.wseq
          (P.Refuse
             (P.err P.Not_terminal
                (Printf.sprintf "wait timed out after %.0f s; %s"
                   st.cfg.request_timeout_s what))))
    expired

let close_idle_conns st now =
  if st.cfg.idle_timeout_s > 0. then begin
    let victims =
      Hashtbl.fold
        (fun _ conn acc ->
          let outstanding =
            conn.subscribed || has_output conn
            || List.exists (fun w -> w.wcid = conn.cid) st.waiters
          in
          if
            (not outstanding)
            && now -. conn.last_activity > st.cfg.idle_timeout_s
          then conn :: acc
          else acc)
        st.conns []
    in
    List.iter
      (fun conn ->
        Obs.Registry.incr "server/idle_closed";
        drop_conn st conn)
      victims
  end

(* One bounded slice of placement work between polls: at most [budget]
   seconds, at transformation granularity, so service latency stays
   bounded by one transformation.  With a sharded scheduler the worker
   domains execute slices on their own; the coordinator only pumps
   queued lifecycle events (the notify pipe in the poll set wakes us
   the moment one arrives). *)
let step_slice st ~budget =
  if Engine.Scheduler.shards st.sched > 0 then
    Engine.Scheduler.pump st.sched
  else begin
    let t0 = Unix.gettimeofday () in
    let continue = ref true in
    while !continue && Unix.gettimeofday () -. t0 < budget do
      if Engine.Scheduler.step st.sched then begin
        st.turns <- st.turns + 1;
        Obs.Registry.incr "server/turns"
      end
      else continue := false
    done
  end

let drain_tick st now =
  if st.draining then begin
    if
      Engine.Scheduler.busy st.sched
      && now -. st.drain_started > st.cfg.drain_grace_s
    then begin
      (* Grace expired: degrade in-flight jobs to their legal
         best-so-far placements (the scheduler's cancellation path). *)
      let n = Engine.Scheduler.cancel_all st.sched in
      if n > 0 then Obs.Registry.incr ~by:(float_of_int n) "server/drain_cancelled"
    end;
    if (not (Engine.Scheduler.busy st.sched)) && st.waiters = [] then begin
      let all_flushed =
        Hashtbl.fold (fun _ c acc -> acc && not (has_output c)) st.conns true
      in
      if all_flushed then st.stop <- true
    end
  end

let cleanup st =
  (* Join worker domains first so no event fires mid-teardown. *)
  Engine.Scheduler.stop st.sched;
  Hashtbl.iter (fun _ conn -> ignore (flush_out st conn)) st.conns;
  Hashtbl.iter
    (fun _ conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
    st.conns;
  Hashtbl.reset st.conns;
  (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
  (match st.cfg.address with
  | Address.Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
  | Address.Tcp _ -> ());
  match st.transcript_oc with Some oc -> close_out oc | None -> ()

let bind_listener address =
  match Address.sockaddr address with
  | Error msg -> Error msg
  | Ok sockaddr -> (
    let domain = Unix.domain_of_sockaddr sockaddr in
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    (match address with
    | Address.Unix_path p -> if Sys.file_exists p then Sys.remove p
    | Address.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
    match
      Unix.bind fd sockaddr;
      Unix.listen fd 64;
      Unix.set_nonblock fd
    with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot listen on %s: %s" (Address.to_string address)
           (Unix.error_message e)))

let run cfg =
  match bind_listener cfg.address with
  | Error _ as e -> e
  | Ok listen_fd ->
    Obs.Registry.set_enabled true;
    let transcript_oc = Option.map open_out cfg.transcript in
    (* The scheduler is created before the state it reports into; the
       indirection closes the cycle. *)
    let handler = ref (fun (_ : Engine.Scheduler.event) -> ()) in
    let sched =
      Engine.Scheduler.create ~concurrency:cfg.concurrency ?domains:cfg.domains
        ~shards:cfg.shards
        ~on_event:(fun e -> !handler e)
        ()
    in
    let st =
      {
        cfg;
        sched;
        listen_fd;
        conns = Hashtbl.create 32;
        next_cid = 0;
        waiters = [];
        ev = 0;
        ring = Queue.create ();
        turns = 0;
        draining = false;
        drain_started = 0.;
        stop = false;
        transcript_oc;
      }
    in
    handler := on_event st;
    let want_drain = ref false in
    let old_term =
      Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> want_drain := true))
    in
    let old_int =
      Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> want_drain := true))
    in
    let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    Fun.protect
      ~finally:(fun () ->
        Sys.set_signal Sys.sigterm old_term;
        Sys.set_signal Sys.sigint old_int;
        Sys.set_signal Sys.sigpipe old_pipe)
      (fun () ->
        while not st.stop do
          if !want_drain then begin_drain st;
          let now = Unix.gettimeofday () in
          expire_waiters st now;
          close_idle_conns st now;
          drain_tick st now;
          if not st.stop then begin
            let rfds =
              (if st.draining then [] else [ st.listen_fd ])
              @ (match Engine.Scheduler.notify_fd st.sched with
                | Some fd -> [ fd ]
                | None -> [])
              @ Hashtbl.fold
                  (fun _ c acc -> if c.closing then acc else c.fd :: acc)
                  st.conns []
            in
            let wfds =
              Hashtbl.fold
                (fun _ c acc -> if has_output c then c.fd :: acc else acc)
                st.conns []
            in
            (* Inline mode polls eagerly while jobs are runnable (the
               loop itself is the engine); sharded mode sleeps — worker
               domains make the progress and the notify pipe interrupts
               the select when an event needs pumping. *)
            let timeout =
              if
                Engine.Scheduler.shards st.sched = 0
                && Engine.Scheduler.busy st.sched
              then 0.
              else 0.05
            in
            let readable, writable =
              match Unix.select rfds wfds [] timeout with
              | r, w, _ -> (r, w)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
            in
            if List.memq st.listen_fd readable then accept_conns st;
            (* Reads and dispatch (responses land in out buffers). *)
            Hashtbl.iter
              (fun _ conn ->
                if List.memq conn.fd readable then begin
                  read_conn st conn;
                  if Hashtbl.mem st.conns conn.cid then service_frames st conn
                end)
              st.conns;
            ignore writable;
            (* A slice of placement work. *)
            step_slice st ~budget:0.05;
            fire_idle_waiters st;
            (* Flush every connection with pending output — the sockets
               are almost always writable, so responses leave in the
               same iteration that produced them; [wfds] above only
               exists to wake the loop when a blocked writer frees up. *)
            let writers =
              Hashtbl.fold
                (fun _ c acc -> if has_output c then c :: acc else acc)
                st.conns []
            in
            List.iter (fun conn -> ignore (flush_out st conn)) writers;
            let finished_closing =
              Hashtbl.fold
                (fun _ conn acc ->
                  if conn.closing then begin
                    ignore (flush_out st conn);
                    if
                      Hashtbl.mem st.conns conn.cid && not (has_output conn)
                    then conn :: acc
                    else acc
                  end
                  else acc)
                st.conns []
            in
            List.iter (fun conn -> drop_conn st conn) finished_closing
          end
        done;
        cleanup st);
    Ok ()
