(** The concurrent network front end over {!Engine.Scheduler}.

    One process, one poll-driven event loop, no threads: the listener
    accepts Unix-domain or TCP connections, frames request lines
    per-connection ({!Frame}), and interleaves {e placement work} with
    {e service} by stepping the scheduler a bounded slice between polls
    — the scheduler's one-transformation turn granularity is exactly
    what makes this non-blocking.  Many clients multiplex onto one
    scheduler; ["seq"] correlation (protocol v2) keeps their
    conversations untangled.

    Server semantics differ from the synchronous stdio loop in the ways
    concurrency demands:

    - jobs advance continuously; [step] is acknowledged with
      [stepped = 0] rather than lending the client the loop;
    - [wait] and [drain] are {e asynchronous}: the response is sent when
      the job is terminal (carrying its result, so a draining server
      never strands a waiting client) or the scheduler idle;
    - [submit] passes admission control: at most [max_pending] queued
      jobs, beyond which clients receive a typed [overloaded] error with
      a ["retry_after_ms"] hint — never a dropped connection;
    - event lines flow only to connections that sent [subscribe]
      (replayable from a ring buffer via ["from_ev"]);
    - SIGTERM/SIGINT (or a [shutdown] request) starts a {e graceful
      drain}: no new connections or submissions ([shutting_down]
      errors), in-flight jobs run to completion — or, once
      [drain_grace_s] expires, are cooperatively cancelled, degrading to
      legal best-so-far placements — and every accepted job reaches a
      terminal, reportable state before the process exits 0.

    Throughput, latency, shed and connection counters are recorded under
    ["server/"] in the {!Obs.Registry} and served live by the
    [metrics] command. *)

type config = {
  address : Address.t;
  concurrency : int;  (** jobs interleaved by the scheduler *)
  domains : int option;  (** lane budget, as in {!Engine.Scheduler.create} *)
  shards : int;
      (** worker domains executing job slices ({!Engine.Scheduler.create}'s
          [shards]); 0 (the default) steps jobs inline between polls.
          With shards the poll loop only services connections and pumps
          lifecycle events — the scheduler's notify pipe joins the poll
          set so events wake the loop immediately. *)
  max_pending : int;  (** admission bound on queued jobs *)
  max_conns : int;  (** beyond this, connections are refused politely *)
  request_timeout_s : float;  (** bound on [wait]/[drain] parking *)
  idle_timeout_s : float;
      (** close connections idle this long with nothing outstanding;
          0 disables *)
  drain_grace_s : float;  (** drain budget before in-flight jobs are cancelled *)
  max_line : int;  (** per-connection request line bound (bytes) *)
  proto : Engine.Protocol.version;
  transcript : string option;  (** copy every protocol line to this file *)
}

(** [config address] — the defaults: concurrency 2, no shards (inline
    stepping), admission bound 64 pending jobs, 128 connections, 300 s
    request timeout, idle timeout off, 30 s drain grace, v2 protocol. *)
val config : Address.t -> config

(** [run cfg] binds, serves and blocks until a graceful shutdown
    completes.  Returns [Error] when the address cannot be bound.
    Installs SIGTERM/SIGINT handlers for the duration (restored on
    return) and ignores SIGPIPE. *)
val run : config -> (unit, string) result
