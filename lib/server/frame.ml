type frame = [ `Line of string | `Overflow ]

type t = {
  partial : Buffer.t;  (* the line being accumulated *)
  out : frame Queue.t;
  max_line : int;
  mutable dropping : bool;  (* overflowed: discard until the next LF *)
}

let create ?(max_line = 1 lsl 20) () =
  if max_line < 1 then invalid_arg "Frame.create: max_line < 1";
  { partial = Buffer.create 256; out = Queue.create (); max_line; dropping = false }

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let feed t s =
  let n = String.length s in
  let start = ref 0 in
  while !start < n do
    match String.index_from_opt s !start '\n' with
    | None ->
      if not t.dropping then begin
        Buffer.add_substring t.partial s !start (n - !start);
        if Buffer.length t.partial > t.max_line then begin
          Buffer.clear t.partial;
          t.dropping <- true;
          Queue.push `Overflow t.out
        end
      end;
      start := n
    | Some i ->
      if t.dropping then t.dropping <- false
      else begin
        Buffer.add_substring t.partial s !start (i - !start);
        if Buffer.length t.partial > t.max_line then begin
          Buffer.clear t.partial;
          Queue.push `Overflow t.out
        end
        else begin
          let line = strip_cr (Buffer.contents t.partial) in
          Buffer.clear t.partial;
          Queue.push (`Line line) t.out
        end
      end;
      start := i + 1
  done

let next t = Queue.take_opt t.out

let pending t = Buffer.length t.partial

let reset t =
  Buffer.clear t.partial;
  Queue.clear t.out;
  t.dropping <- false
