(** Incremental line framing over a byte stream.

    Sockets deliver arbitrary chunks; the protocol is line-oriented.  A
    framer accumulates whatever [read] produced and yields complete
    lines (LF-terminated; a trailing CR is stripped so CRLF peers work).
    A line longer than [max_line] is reported once as [`Overflow] and
    discarded up to its terminating newline — the transport answers with
    a [parse] error instead of buffering without bound. *)

type t

(** [create ()] — [max_line] bounds the bytes buffered for a single
    line (default 1 MiB). *)
val create : ?max_line:int -> unit -> t

(** [feed t s] appends freshly read bytes. *)
val feed : t -> string -> unit

(** [next t] pops the next complete frame, oldest first. *)
val next : t -> [ `Line of string | `Overflow ] option

(** [pending t] — bytes of the current {e partial} line (diagnostics). *)
val pending : t -> int

(** [reset t] discards all buffered input, complete and partial — for a
    client reconnecting with stale half-read data. *)
val reset : t -> unit
