type t = Unix_path of string | Tcp of string * int

let drop_prefix ~prefix s =
  let pn = String.length prefix in
  if String.length s >= pn && String.sub s 0 pn = prefix then
    Some (String.sub s pn (String.length s - pn))
  else None

let parse_port s =
  match int_of_string_opt s with
  | Some p when p >= 0 && p <= 65535 -> Ok p
  | _ -> Error (Printf.sprintf "address: bad port %S" s)

let parse_tcp s =
  match String.rindex_opt s ':' with
  | Some i ->
    let host = String.sub s 0 i in
    let host = if host = "" then "127.0.0.1" else host in
    let ( let* ) = Result.bind in
    let* port = parse_port (String.sub s (i + 1) (String.length s - i - 1)) in
    Ok (Tcp (host, port))
  | None ->
    (* A bare port number. *)
    Result.map (fun p -> Tcp ("127.0.0.1", p)) (parse_port s)

let of_string s =
  let s = String.trim s in
  if s = "" then Error "address: empty"
  else
    match drop_prefix ~prefix:"unix:" s with
    | Some path ->
      if path = "" then Error "address: empty unix path" else Ok (Unix_path path)
    | None -> (
      match drop_prefix ~prefix:"tcp:" s with
      | Some rest -> parse_tcp rest
      | None -> if String.contains s '/' then Ok (Unix_path s) else parse_tcp s)

let to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let sockaddr = function
  | Unix_path p -> Ok (Unix.ADDR_UNIX p)
  | Tcp (host, port) -> (
    match Unix.inet_addr_of_string host with
    | addr -> Ok (Unix.ADDR_INET (addr, port))
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        Error (Printf.sprintf "address: cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), port))))
