module P = Engine.Protocol
module J = Obs.Json

type failure =
  | Refused of Engine.Protocol.error
  | Transport of string

let failure_message = function
  | Refused e -> P.error_message e
  | Transport msg -> "transport: " ^ msg

type t = {
  addr : Address.t;
  mutable fd : Unix.file_descr;
  mutable alive : bool;
  frame : Frame.t;
  events : J.t Queue.t;
  mutable next_seq : int;
  mutable last_ev : int;
  mutable subscribed : bool;
  reconnect_attempts : int;
  reconnect_delay_s : float;
}

let address t = t.addr

let last_ev t = t.last_ev

let dial addr =
  match Address.sockaddr addr with
  | Error _ as e -> e
  | Ok sockaddr -> (
    let fd =
      Unix.socket ~cloexec:true
        (Unix.domain_of_sockaddr sockaddr)
        Unix.SOCK_STREAM 0
    in
    match Unix.connect fd sockaddr with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" (Address.to_string addr)
           (Unix.error_message e)))

let connect ?(retries = 0) addr =
  let rec go n =
    match dial addr with
    | Ok fd ->
      Ok
        {
          addr;
          fd;
          alive = true;
          frame = Frame.create ();
          events = Queue.create ();
          next_seq = 0;
          last_ev = 0;
          subscribed = false;
          reconnect_attempts = 20;
          reconnect_delay_s = 0.25;
        }
    | Error _ when n > 0 ->
      Unix.sleepf 0.25;
      go (n - 1)
    | Error _ as e -> e
  in
  go retries

let close t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Wire primitives                                                      *)

let send_line t line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off < len then
      match Unix.write_substring t.fd data off (len - off) with
      | 0 -> Error (Transport "connection closed while writing")
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
        Error (Transport (Unix.error_message e))
    else Ok ()
  in
  go 0

let scratch = Bytes.create 65536

(* [read_line ?deadline t] — the next framed line; [Ok None] only when a
   deadline was given and passed. *)
let read_line ?deadline t =
  let rec go () =
    match Frame.next t.frame with
    | Some (`Line line) -> Ok (Some line)
    | Some `Overflow -> Error (Transport "oversized line from server")
    | None -> (
      (match deadline with
      | None -> Ok true
      | Some d ->
        let left = d -. Unix.gettimeofday () in
        if left <= 0. then Ok false
        else (
          match Unix.select [ t.fd ] [] [] left with
          | [], _, _ -> Ok false
          | _ -> Ok true
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> Ok true))
      |> function
      | Error _ as e -> e
      | Ok false -> Ok None
      | Ok true -> (
        match Unix.read t.fd scratch 0 (Bytes.length scratch) with
        | 0 -> Error (Transport "connection closed by server")
        | n ->
          Frame.feed t.frame (Bytes.sub_string scratch 0 n);
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
          Error (Transport (Unix.error_message e))))
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Response classification                                              *)

let field name = function
  | J.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let note_event t v =
  (match field "ev" v with
  | Some (J.Num n) ->
    let ev = int_of_float n in
    if ev > t.last_ev then t.last_ev <- ev
  | _ -> ());
  Queue.push v t.events

let error_of_response v =
  match field "error" v with
  | Some (J.Str msg) ->
    (* v1 legacy: a bare message string, no code. *)
    P.err P.Parse msg
  | Some (J.Obj _ as e) ->
    let code =
      match field "code" e with
      | Some (J.Str c) -> Option.value ~default:P.Parse (P.code_of_string c)
      | _ -> P.Parse
    in
    let message =
      match field "message" e with Some (J.Str m) -> m | _ -> "unknown error"
    in
    let retry_after_ms =
      match field "retry_after_ms" e with
      | Some (J.Num n) -> Some (int_of_float n)
      | _ -> None
    in
    { P.code; message; retry_after_ms }
  | _ -> P.err P.Parse "malformed error response"

let strip_meta = function
  | J.Obj kvs ->
    List.filter (fun (k, _) -> k <> "ok" && k <> "seq") kvs
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Request/response with seq correlation                                *)

let raw_request t fields =
  t.next_seq <- t.next_seq + 1;
  let seq = t.next_seq in
  let obj = J.Obj (("seq", J.Num (float_of_int seq)) :: fields) in
  match send_line t (J.to_string obj) with
  | Error _ as e -> e
  | Ok () ->
    let rec await () =
      match read_line t with
      | Error _ as e -> e
      | Ok None -> Error (Transport "no response")  (* unreachable: no deadline *)
      | Ok (Some line) -> (
        match J.of_string line with
        | Error msg -> Error (Transport ("bad JSON from server: " ^ msg))
        | Ok v -> (
          match field "event" v with
          | Some _ ->
            note_event t v;
            await ()
          | None -> (
            let matches =
              match field "seq" v with
              | Some (J.Num n) -> int_of_float n = seq
              | Some _ -> false
              | None -> true  (* v1 server: no echo; next response is ours *)
            in
            if not matches then await ()
            else
              match field "ok" v with
              | Some (J.Bool true) -> Ok (strip_meta v)
              | _ -> Error (Refused (error_of_response v)))))
    in
    await ()

let request = raw_request

(* Reconnect-and-resume wrapper for operations idempotent by job id. *)
let reconnect t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  let rec go n =
    if n <= 0 then Error (Transport "reconnect failed")
    else
      match dial t.addr with
      | Ok fd ->
        t.fd <- fd;
        t.alive <- true;
        (* A fresh connection has fresh framer state server-side; our
           own half-read input is stale too. *)
        Frame.reset t.frame;
        if t.subscribed then
          match
            raw_request t
              [
                ("cmd", J.Str "subscribe");
                ("from_ev", J.Num (float_of_int t.last_ev));
              ]
          with
          | Ok _ -> Ok ()
          | Error _ ->
            Unix.sleepf t.reconnect_delay_s;
            go (n - 1)
        else Ok ()
      | Error _ ->
        Unix.sleepf t.reconnect_delay_s;
        go (n - 1)
  in
  go t.reconnect_attempts

let resilient t fields =
  match raw_request t fields with
  | Error (Transport _) -> (
    match reconnect t with
    | Error _ as e -> e
    | Ok () -> raw_request t fields)
  | r -> r

(* ------------------------------------------------------------------ *)
(* Typed operations                                                     *)

let int_field name fields =
  match List.assoc_opt name fields with
  | Some (J.Num n) -> Ok (int_of_float n)
  | _ -> Error (Transport (Printf.sprintf "response missing %S" name))

let str_field name fields =
  match List.assoc_opt name fields with
  | Some (J.Str s) -> Ok s
  | _ -> Error (Transport (Printf.sprintf "response missing %S" name))

let ( let* ) = Result.bind

let submit t spec =
  let* fields =
    raw_request t [ ("cmd", J.Str "submit"); ("job", Engine.Job.spec_to_json spec) ]
  in
  int_field "id" fields

let id_num id = J.Num (float_of_int id)

let status t id =
  let* fields = resilient t [ ("cmd", J.Str "status"); ("id", id_num id) ] in
  str_field "status" fields

let job_result t id =
  let* fields = resilient t [ ("cmd", J.Str "result"); ("id", id_num id) ] in
  match List.assoc_opt "result" fields with
  | Some v -> Ok v
  | None -> Error (Transport "response missing \"result\"")

let wait t id =
  let* fields = resilient t [ ("cmd", J.Str "wait"); ("id", id_num id) ] in
  let* status = str_field "status" fields in
  Ok (status, List.assoc_opt "result" fields)

let cancel t id =
  let* fields = raw_request t [ ("cmd", J.Str "cancel"); ("id", id_num id) ] in
  match List.assoc_opt "cancelled" fields with
  | Some (J.Bool b) -> Ok b
  | _ -> Error (Transport "response missing \"cancelled\"")

let jobs t =
  let* fields = resilient t [ ("cmd", J.Str "jobs") ] in
  match List.assoc_opt "jobs" fields with
  | Some (J.Arr items) ->
    let entry = function
      | J.Obj kvs -> (
        match (List.assoc_opt "id" kvs, List.assoc_opt "status" kvs) with
        | Some (J.Num id), Some (J.Str s) -> Some (int_of_float id, s)
        | _ -> None)
      | _ -> None
    in
    Ok (List.filter_map entry items)
  | _ -> Error (Transport "response missing \"jobs\"")

let metrics t = resilient t [ ("cmd", J.Str "metrics") ]

let shutdown t =
  let* _ = raw_request t [ ("cmd", J.Str "shutdown") ] in
  Ok ()

let subscribe ?from_ev t =
  let fields =
    ("cmd", J.Str "subscribe")
    ::
    (match from_ev with
    | Some ev -> [ ("from_ev", J.Num (float_of_int ev)) ]
    | None -> [])
  in
  let* _ = raw_request t fields in
  t.subscribed <- true;
  Ok ()

let next_event ?(timeout_s = 1.0) t =
  match Queue.take_opt t.events with
  | Some v -> Ok (Some v)
  | None -> (
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      match read_line ~deadline t with
      | Ok None -> Ok None
      | Ok (Some line) -> (
        match J.of_string line with
        | Error msg -> Error (Transport ("bad JSON from server: " ^ msg))
        | Ok v -> (
          match field "event" v with
          | Some _ ->
            note_event t v;
            Ok (Queue.take_opt t.events)
          | None -> go ()  (* stray response; drop *)))
      | Error (Transport _) -> (
        match reconnect t with
        | Error _ as e -> e
        | Ok () -> go ())
      | Error _ as e -> e
    in
    go ())
