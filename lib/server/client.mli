(** Blocking client for the placement server — the library behind
    [place submit], [place watch] and the multi-client tests.

    One connection, one outstanding request at a time: every request is
    stamped with a fresh ["seq"] and the reply matched by its echo (a v1
    server echoes nothing; its next response is taken as the match).
    Event lines arriving between responses are buffered for
    {!next_event} and their ["ev"] numbers tracked.

    Failures are typed: {!Refused} is the server's structured protocol
    error (the request was heard and answered); {!Transport} is
    socket-level trouble.  The operations that are idempotent by job id
    — {!wait}, {!status}, {!job_result}, and the {!next_event} stream —
    transparently {e reconnect and resume} on transport failure:
    re-dial the address, re-subscribe from the last seen event number,
    re-issue the request.  {!submit} never retries (a resubmission would
    duplicate the job). *)

type t

type failure =
  | Refused of Engine.Protocol.error
  | Transport of string

val failure_message : failure -> string

(** [connect addr] dials the server.  [retries] (default 0) re-dials
    with a short backoff — for racing a server that is still binding. *)
val connect : ?retries:int -> Address.t -> (t, string) result

val close : t -> unit

val address : t -> Address.t

(** [request t fields] sends one request object (["cmd"] included in
    [fields]) and returns the response's payload fields (["ok"] and
    ["seq"] stripped).  No reconnection — this is the raw primitive. *)
val request :
  t -> (string * Obs.Json.t) list -> ((string * Obs.Json.t) list, failure) result

val submit : t -> Engine.Job.spec -> (int, failure) result

(** Reconnects and resumes on transport failure (idempotent by id). *)
val status : t -> int -> (string, failure) result

(** [job_result t id] — the terminal report object.  Reconnects. *)
val job_result : t -> int -> (Obs.Json.t, failure) result

(** [wait t id] parks until [id] is terminal; returns its status and the
    embedded result object when the server supplied one.  Reconnects and
    re-issues on transport failure. *)
val wait : t -> int -> (string * Obs.Json.t option, failure) result

val cancel : t -> int -> (bool, failure) result

val jobs : t -> ((int * string) list, failure) result

val metrics : t -> ((string * Obs.Json.t) list, failure) result

val shutdown : t -> (unit, failure) result

(** [subscribe ?from_ev t] turns on event delivery for this connection,
    replaying buffered server events after [from_ev]. *)
val subscribe : ?from_ev:int -> t -> (unit, failure) result

(** [next_event ?timeout_s t] — the next event line (buffered or read),
    [Ok None] on timeout.  On transport failure, reconnects and
    resubscribes from {!last_ev}, so a watcher survives a server
    restart without losing numbered events. *)
val next_event : ?timeout_s:float -> t -> (Obs.Json.t option, failure) result

(** The highest ["ev"] seen on this connection (0 initially). *)
val last_ev : t -> int
