(** Listen/connect addresses for the placement server.

    Two transports: Unix-domain sockets (the default for local use —
    filesystem permissions are the access control) and TCP.  The textual
    forms accepted by [--listen] / [--to]:

    {v
    unix:/run/place.sock     Unix-domain socket at that path
    /run/place.sock          ditto (anything with a '/')
    tcp:host:port            TCP
    host:port                ditto
    :port  |  port           TCP on 127.0.0.1
    v} *)

type t = Unix_path of string | Tcp of string * int

val of_string : string -> (t, string) result

val to_string : t -> string

(** [sockaddr t] resolves to a [Unix.sockaddr] (numeric or named TCP
    hosts; [Error] when resolution fails). *)
val sockaddr : t -> (Unix.sockaddr, string) result
