type iteration = {
  step : int;
  hpwl : float;
  quadratic : float;
  overflow : float;
  empty_square_area : float;
  force_scale : float;
  max_force : float;
  mean_force : float;
  displacement : float;
  cg_iterations_x : int;
  cg_iterations_y : int;
  cg_residual_x : float;
  cg_residual_y : float;
  kernel_cache_hits : int;
  kernel_cache_misses : int;
  assembly_reused : bool;
  pattern_rebuilds : int;
  cg_tolerance : float;
  domains : int;
  pool_tasks : int;
  penalty : float;
  lb_hpwl : float;
  ub_hpwl : float option;
  gap : float option;
  level : int;
  congest_strength : float;
  est_overflow : float option;
  target_area : float;
  target_clamped : int;
  phases : (string * float) list;
}

type summary = {
  iterations : int;
  converged : bool;
  final_hpwl : float;
  final_overlap : float;
  wall_time : float;
  stop_reason : string option;
  counters : (string * Stat.t) list;
}

(* v2 added assembly_reused / pattern_rebuilds / cg_tolerance (cached QP
   assembly).  v3 added the convergence controller: penalty and the
   LB/UB envelope per iteration, stop_reason in the summary.  v4 added
   the V-cycle stage index [level] (multilevel placement).  v5 added the
   closed routability loop: the annealed congestion gain, the estimated
   routed overflow of the last target refresh, and the target-map area /
   per-bin clamp count.  Older records are still parsed with the values
   the older placers actually had: v4 and earlier ran no congestion loop
   (gain 0, no estimate, empty target map), v3 and earlier only ran the
   flat flow (level 0), v2 ran a static unit density weight and never
   probed an upper bound, v1 additionally rebuilt the system each
   transformation at the fixed 1e-8 tolerance. *)
let schema_version = 5

let volatile_fields = [ "phases"; "domains"; "pool_tasks"; "wall_time"; "counters" ]

let strip_volatile = function
  | Json.Obj fields ->
    Json.Obj (List.filter (fun (k, _) -> not (List.mem k volatile_fields)) fields)
  | other -> other

let provenance_fields =
  [
    "assembly_reused";
    "pattern_rebuilds";
    "kernel_cache_hits";
    "kernel_cache_misses";
  ]

let strip_provenance = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter (fun (k, _) -> not (List.mem k provenance_fields)) fields)
  | other -> other

(* ------------------------------------------------------------------ *)
(* To JSON                                                             *)

let num v = Json.Num v

let int_ v = Json.Num (float_of_int v)

let iteration_to_json r =
  Json.Obj
    [
      ("record", Json.Str "iteration");
      ("schema", int_ schema_version);
      ("step", int_ r.step);
      ("hpwl", num r.hpwl);
      ("quadratic", num r.quadratic);
      ("overflow", num r.overflow);
      ("empty_square_area", num r.empty_square_area);
      ("force_scale", num r.force_scale);
      ("max_force", num r.max_force);
      ("mean_force", num r.mean_force);
      ("displacement", num r.displacement);
      ("cg_iterations_x", int_ r.cg_iterations_x);
      ("cg_iterations_y", int_ r.cg_iterations_y);
      ("cg_residual_x", num r.cg_residual_x);
      ("cg_residual_y", num r.cg_residual_y);
      ("kernel_cache_hits", int_ r.kernel_cache_hits);
      ("kernel_cache_misses", int_ r.kernel_cache_misses);
      ("assembly_reused", Json.Bool r.assembly_reused);
      ("pattern_rebuilds", int_ r.pattern_rebuilds);
      ("cg_tolerance", num r.cg_tolerance);
      ("domains", int_ r.domains);
      ("pool_tasks", int_ r.pool_tasks);
      ("penalty", num r.penalty);
      ("lb_hpwl", num r.lb_hpwl);
      ( "ub_hpwl",
        match r.ub_hpwl with Some v -> num v | None -> Json.Null );
      ("gap", match r.gap with Some v -> num v | None -> Json.Null);
      ("level", int_ r.level);
      ("congest_strength", num r.congest_strength);
      ( "est_overflow",
        match r.est_overflow with Some v -> num v | None -> Json.Null );
      ("target_area", num r.target_area);
      ("target_clamped", int_ r.target_clamped);
      ("phases", Json.Obj (List.map (fun (k, v) -> (k, num v)) r.phases));
    ]

let stat_to_json (s : Stat.t) =
  Json.Obj
    [
      ("count", int_ s.Stat.count);
      ("total", num s.Stat.total);
      ("min", if Float.is_finite s.Stat.min then num s.Stat.min else Json.Null);
      ("max", if Float.is_finite s.Stat.max then num s.Stat.max else Json.Null);
    ]

let summary_to_json r =
  Json.Obj
    [
      ("record", Json.Str "summary");
      ("schema", int_ schema_version);
      ("iterations", int_ r.iterations);
      ("converged", Json.Bool r.converged);
      ("final_hpwl", num r.final_hpwl);
      ("final_overlap", num r.final_overlap);
      ("wall_time", num r.wall_time);
      ( "stop_reason",
        match r.stop_reason with Some s -> Json.Str s | None -> Json.Null );
      ("counters", Json.Obj (List.map (fun (k, s) -> (k, stat_to_json s)) r.counters));
    ]

(* ------------------------------------------------------------------ *)
(* From JSON (validation)                                              *)

let field_num obj key =
  match Json.member key obj with
  | Some (Json.Num v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S is not a number" key)
  | None -> Error (Printf.sprintf "missing field %S" key)

let field_int obj key =
  Result.bind (field_num obj key) (fun v ->
      if Float.is_integer v then Ok (int_of_float v)
      else Error (Printf.sprintf "field %S is not an integer" key))

let ( let* ) = Result.bind

let record_kind obj =
  match Json.member "record" obj with
  | Some (Json.Str kind) -> Ok kind
  | Some _ -> Error "field \"record\" is not a string"
  | None -> Error "missing field \"record\""

let iteration_of_json obj =
  let* kind = record_kind obj in
  if kind <> "iteration" then Error ("not an iteration record: " ^ kind)
  else
    let* schema = field_int obj "schema" in
    if schema < 1 || schema > schema_version then
      Error (Printf.sprintf "unsupported schema version %d" schema)
    else
      let* step = field_int obj "step" in
      let* hpwl = field_num obj "hpwl" in
      let* quadratic = field_num obj "quadratic" in
      let* overflow = field_num obj "overflow" in
      let* empty_square_area = field_num obj "empty_square_area" in
      let* force_scale = field_num obj "force_scale" in
      let* max_force = field_num obj "max_force" in
      let* mean_force = field_num obj "mean_force" in
      let* displacement = field_num obj "displacement" in
      let* cg_iterations_x = field_int obj "cg_iterations_x" in
      let* cg_iterations_y = field_int obj "cg_iterations_y" in
      let* cg_residual_x = field_num obj "cg_residual_x" in
      let* cg_residual_y = field_num obj "cg_residual_y" in
      let* kernel_cache_hits = field_int obj "kernel_cache_hits" in
      let* kernel_cache_misses = field_int obj "kernel_cache_misses" in
      (* v1-compat: records predate the cached assembly. *)
      let* assembly_reused =
        if schema = 1 then Ok false
        else
          match Json.member "assembly_reused" obj with
          | Some (Json.Bool b) -> Ok b
          | Some _ -> Error "field \"assembly_reused\" is not a bool"
          | None -> Error "missing field \"assembly_reused\""
      in
      let* pattern_rebuilds =
        if schema = 1 then Ok 0 else field_int obj "pattern_rebuilds"
      in
      let* cg_tolerance =
        if schema = 1 then Ok 1e-8 else field_num obj "cg_tolerance"
      in
      let* domains = field_int obj "domains" in
      let* pool_tasks = field_int obj "pool_tasks" in
      (* v1/v2-compat: records predate the convergence controller — the
         density weight was the static unit multiplier, the quadratic
         HPWL is its own lower bound and no upper bound was probed. *)
      let* penalty = if schema < 3 then Ok 1.0 else field_num obj "penalty" in
      let* lb_hpwl =
        if schema < 3 then Ok hpwl else field_num obj "lb_hpwl"
      in
      let* ub_hpwl =
        if schema < 3 then Ok None
        else
          match Json.member "ub_hpwl" obj with
          | Some (Json.Num v) -> Ok (Some v)
          | Some Json.Null | None -> Ok None
          | Some _ -> Error "field \"ub_hpwl\" is not a number or null"
      in
      let* gap =
        if schema < 3 then Ok None
        else
          match Json.member "gap" obj with
          | Some (Json.Num v) -> Ok (Some v)
          | Some Json.Null | None -> Ok None
          | Some _ -> Error "field \"gap\" is not a number or null"
      in
      (* v3-compat: records predate the multilevel V-cycle — every
         older run was the flat flow, i.e. the finest level. *)
      let* level = if schema < 4 then Ok 0 else field_int obj "level" in
      (* v4-compat: records predate the closed routability loop — no
         congestion gain, no overflow estimate, an empty target map. *)
      let* congest_strength =
        if schema < 5 then Ok 0. else field_num obj "congest_strength"
      in
      let* est_overflow =
        if schema < 5 then Ok None
        else
          match Json.member "est_overflow" obj with
          | Some (Json.Num v) -> Ok (Some v)
          | Some Json.Null | None -> Ok None
          | Some _ -> Error "field \"est_overflow\" is not a number or null"
      in
      let* target_area =
        if schema < 5 then Ok 0. else field_num obj "target_area"
      in
      let* target_clamped =
        if schema < 5 then Ok 0 else field_int obj "target_clamped"
      in
      let* phases =
        match Json.member "phases" obj with
        | Some (Json.Obj fields) ->
          List.fold_left
            (fun acc (k, v) ->
              let* acc = acc in
              match v with
              | Json.Num t -> Ok ((k, t) :: acc)
              | _ -> Error (Printf.sprintf "phase %S is not a number" k))
            (Ok []) fields
          |> Result.map List.rev
        | Some _ -> Error "field \"phases\" is not an object"
        | None -> Error "missing field \"phases\""
      in
      Ok
        {
          step;
          hpwl;
          quadratic;
          overflow;
          empty_square_area;
          force_scale;
          max_force;
          mean_force;
          displacement;
          cg_iterations_x;
          cg_iterations_y;
          cg_residual_x;
          cg_residual_y;
          kernel_cache_hits;
          kernel_cache_misses;
          assembly_reused;
          pattern_rebuilds;
          cg_tolerance;
          domains;
          pool_tasks;
          penalty;
          lb_hpwl;
          ub_hpwl;
          gap;
          level;
          congest_strength;
          est_overflow;
          target_area;
          target_clamped;
          phases;
        }

let summary_of_json obj =
  let* kind = record_kind obj in
  if kind <> "summary" then Error ("not a summary record: " ^ kind)
  else
    let* iterations = field_int obj "iterations" in
    let* converged =
      match Json.member "converged" obj with
      | Some (Json.Bool b) -> Ok b
      | Some _ -> Error "field \"converged\" is not a bool"
      | None -> Error "missing field \"converged\""
    in
    let* final_hpwl = field_num obj "final_hpwl" in
    let* final_overlap = field_num obj "final_overlap" in
    let* wall_time = field_num obj "wall_time" in
    let* stop_reason =
      match Json.member "stop_reason" obj with
      | Some (Json.Str s) -> Ok (Some s)
      | Some Json.Null | None -> Ok None
      | Some _ -> Error "field \"stop_reason\" is not a string or null"
    in
    let* counters =
      match Json.member "counters" obj with
      | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            let* count = field_int v "count" in
            let* total = field_num v "total" in
            let min_ =
              match Json.member "min" v with
              | Some (Json.Num m) -> m
              | _ -> Float.infinity
            in
            let max_ =
              match Json.member "max" v with
              | Some (Json.Num m) -> m
              | _ -> Float.neg_infinity
            in
            Ok ((k, { Stat.count; total; min = min_; max = max_ }) :: acc))
          (Ok []) fields
        |> Result.map List.rev
      | Some _ -> Error "field \"counters\" is not an object"
      | None -> Ok []
    in
    Ok
      {
        iterations;
        converged;
        final_hpwl;
        final_overlap;
        wall_time;
        stop_reason;
        counters;
      }
