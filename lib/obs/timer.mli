(** Wall-clock timers on top of the {!Registry}. *)

(** [time name f] runs [f ()] and, when the registry is enabled, records
    the elapsed wall-clock seconds under [name] — also on exception, so
    timings of failing phases are not lost.  When the registry is
    disabled this is exactly [f ()]. *)
val time : string -> (unit -> 'a) -> 'a
