type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g guarantees float → text → float round-trips exactly; trim to
   the integer form when exact so step counts read naturally. *)
let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
    (* NaN/∞ have no JSON encoding; degrade to null rather than emit an
       unparsable document. *)
    if Float.is_finite v then Buffer.add_string buf (number_to_string v)
    else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the string                    *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf u =
    (* Encode one scalar value; surrogates are rejected by the caller. *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then error "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > n then error "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let u =
            match int_of_string_opt ("0x" ^ hex) with
            | Some u -> u
            | None -> error "invalid \\u escape"
          in
          if u >= 0xD800 && u <= 0xDFFF then error "surrogate \\u escape"
          else utf8_of_code buf u
        | _ -> error "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> error "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          (k, parse_value ())
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg
