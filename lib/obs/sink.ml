type t = {
  on_iteration : Telemetry.iteration -> unit;
  on_summary : Telemetry.summary -> unit;
}

(* One sink per domain.  The placer emits from the domain that runs the
   transformation, so a sink installed around a job's slice on a sharded
   scheduler worker is visible exactly to that job's emissions and never
   to a job running concurrently on another domain.  Single-domain
   embedders see the old process-wide behaviour unchanged. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install s = Domain.DLS.set current (Some s)

let clear () = Domain.DLS.set current None

let active () = Option.is_some (Domain.DLS.get current)

let iteration r =
  match Domain.DLS.get current with Some s -> s.on_iteration r | None -> ()

let summary r =
  match Domain.DLS.get current with Some s -> s.on_summary r | None -> ()

let jsonl oc =
  let emit json =
    output_string oc (Json.to_string json);
    output_char oc '\n';
    flush oc
  in
  {
    on_iteration = (fun r -> emit (Telemetry.iteration_to_json r));
    on_summary = (fun r -> emit (Telemetry.summary_to_json r));
  }

let collecting () =
  let iterations = ref [] in
  let summaries = ref [] in
  let sink =
    {
      on_iteration = (fun r -> iterations := r :: !iterations);
      on_summary = (fun r -> summaries := r :: !summaries);
    }
  in
  let read () =
    (List.rev !iterations, match !summaries with [] -> None | s :: _ -> Some s)
  in
  (sink, read)

let with_sink s f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some s);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f
