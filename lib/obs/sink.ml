type t = {
  on_iteration : Telemetry.iteration -> unit;
  on_summary : Telemetry.summary -> unit;
}

(* One process-wide sink.  Installation happens on the main domain
   before a run; the placer only reads, so a plain ref is enough. *)
let current : t option ref = ref None

let install s = current := Some s

let clear () = current := None

let active () = Option.is_some !current

let iteration r = match !current with Some s -> s.on_iteration r | None -> ()

let summary r = match !current with Some s -> s.on_summary r | None -> ()

let jsonl oc =
  let emit json =
    output_string oc (Json.to_string json);
    output_char oc '\n';
    flush oc
  in
  {
    on_iteration = (fun r -> emit (Telemetry.iteration_to_json r));
    on_summary = (fun r -> emit (Telemetry.summary_to_json r));
  }

let collecting () =
  let iterations = ref [] in
  let summaries = ref [] in
  let sink =
    {
      on_iteration = (fun r -> iterations := r :: !iterations);
      on_summary = (fun r -> summaries := r :: !summaries);
    }
  in
  let read () =
    (List.rev !iterations, match !summaries with [] -> None | s :: _ -> Some s)
  in
  (sink, read)

let with_sink s f =
  let saved = !current in
  current := Some s;
  Fun.protect ~finally:(fun () -> current := saved) f
