(** Telemetry sinks: where iteration and summary records go.

    Producers (the placer) call {!iteration}/{!summary}, which dispatch
    to the installed sink or drop the record.  {!active} lets producers
    skip computing expensive metrics entirely when nobody listens — with
    no sink installed, instrumentation costs one domain-local read per
    iteration.

    Installation is {e per domain}: the placer emits from the domain
    running the transformation, so a sink installed around one job's
    slice on a sharded scheduler worker never sees a concurrent job's
    records from another domain.  Single-domain programs observe the
    historical process-wide behaviour. *)

type t = {
  on_iteration : Telemetry.iteration -> unit;
  on_summary : Telemetry.summary -> unit;
}

(** [install s] routes subsequent records to [s] (replacing any previous
    sink). *)
val install : t -> unit

(** [clear ()] removes the installed sink. *)
val clear : unit -> unit

(** [active ()] is true when a sink is installed. *)
val active : unit -> bool

(** [iteration r] delivers a record to the installed sink, if any. *)
val iteration : Telemetry.iteration -> unit

val summary : Telemetry.summary -> unit

(** [jsonl oc] is a sink writing one compact JSON document per line to
    [oc], flushed per record — the [--trace] format. *)
val jsonl : out_channel -> t

(** [collecting ()] is an in-memory sink plus a function reading back
    the records collected so far (iterations in emission order, latest
    summary). *)
val collecting : unit -> t * (unit -> Telemetry.iteration list * Telemetry.summary option)

(** [with_sink s f] installs [s] for the duration of [f] and restores
    the previous sink afterwards — the test harness idiom. *)
val with_sink : t -> (unit -> 'a) -> 'a
