(** Placement telemetry records — the schema of the [--trace] JSONL
    stream: one {!iteration} record per placement transformation plus one
    final {!summary} record.

    All scalar metrics are plain numbers so the module stays independent
    of the netlist layer; the placer computes them and fills the record.
    Fields listed in {!volatile_fields} (timings and
    execution-environment facts) legitimately differ between runs of the
    same placement; everything else is deterministic and is compared
    bitwise by the regression tests. *)

type iteration = {
  step : int;  (** 1-based transformation index *)
  hpwl : float;  (** half-perimeter wire length after the solve *)
  quadratic : float;  (** clique-model quadratic wire length (eq. 1) *)
  overflow : float;
      (** density overflow: over-capacity bin area / movable cell area *)
  empty_square_area : float;  (** §4.2 stopping-criterion measure *)
  force_scale : float;  (** the K scaling applied this transformation *)
  max_force : float;  (** max per-cell additional-force increment magnitude *)
  mean_force : float;  (** mean per-cell increment magnitude *)
  displacement : float;  (** total cell movement since the last iteration *)
  cg_iterations_x : int;
  cg_iterations_y : int;
  cg_residual_x : float;  (** final CG residual of the x solve *)
  cg_residual_y : float;
  kernel_cache_hits : int;  (** Poisson kernel-spectrum cache, this iteration *)
  kernel_cache_misses : int;
  assembly_reused : bool;
      (** this transformation refilled every cached sparsity pattern
          instead of recompiling (schema ≥ 2) *)
  pattern_rebuilds : int;
      (** cumulative symbolic recompiles of the QP assembly so far,
          including the initial compile (schema ≥ 2) *)
  cg_tolerance : float;
      (** relative CG tolerance the solves used this transformation —
          the adaptive schedule loosens it while overflow is high
          (schema ≥ 2) *)
  domains : int;  (** domain-pool size (volatile) *)
  pool_tasks : int;  (** pool tasks executed this iteration (volatile) *)
  penalty : float;
      (** density-force multiplier the convergence controller applied
          this transformation (schema ≥ 3) *)
  lb_hpwl : float;
      (** lower bound of the convergence envelope: HPWL of the
          overlapping quadratic solution (schema ≥ 3) *)
  ub_hpwl : float option;
      (** upper bound: HPWL of the legalized snapshot, present only on
          iterations that probed one (schema ≥ 3) *)
  gap : float option;
      (** relative envelope gap [(ub - lb) / ub] at this iteration's
          probe (schema ≥ 3) *)
  level : int;
      (** V-cycle stage the transformation ran at: 0 is the flat
          (finest) netlist, [depth] the coarsest.  Flat runs always
          emit 0 (schema ≥ 4) *)
  congest_strength : float;
      (** annealed feedback gain of the closed routability loop as of
          this transformation; 0 when the loop is off (schema ≥ 5) *)
  est_overflow : float option;
      (** estimated total routing overflow at the last target refresh;
          [None] before the first refresh or with the loop off
          (schema ≥ 5) *)
  target_area : float;
      (** Σ of the congestion-target map read as extra demand this
          transformation, in area units (schema ≥ 5) *)
  target_clamped : int;
      (** bins saturated at one full bin area by the last refresh — how
          often the per-bin feedback clamp fired (schema ≥ 5) *)
  phases : (string * float) list;  (** phase → seconds (volatile) *)
}

type summary = {
  iterations : int;  (** iteration records emitted before this summary *)
  converged : bool;  (** stopped by a criterion, not the iteration bound *)
  final_hpwl : float;  (** after legalisation — the printed metric *)
  final_overlap : float;  (** {!Metrics.Overlap.overlap_ratio} equivalent *)
  wall_time : float;  (** whole-flow seconds (volatile) *)
  stop_reason : string option;
      (** first stop criterion that fired: "gap" | "density" |
          "max_steps" (schema ≥ 3) *)
  counters : (string * Stat.t) list;  (** registry snapshot (volatile) *)
}

(** Version stamped into every record as ["schema"]; bump on any field
    change.  {!iteration_of_json} also accepts v1–v4 records, filling
    the new fields with the values the older placers actually had: v4
    (pre-dating the closed routability loop) gets a zero congestion
    gain, no overflow estimate and an empty target map; v3 (pre-dating
    the multilevel V-cycle) additionally gets [level = 0]; v2
    (pre-dating the convergence controller) additionally gets a unit
    penalty, [lb_hpwl = hpwl] and no upper bound; v1 (pre-dating the
    cached QP assembly) additionally gets no reuse, zero rebuild count
    and the fixed 1e-8 tolerance. *)
val schema_version : int

(** Fields excluded from determinism comparisons: timings and
    pool-configuration facts. *)
val volatile_fields : string list

(** [strip_volatile json] removes {!volatile_fields} from a record
    object, leaving the deterministic payload. *)
val strip_volatile : Json.t -> Json.t

(** Fields recording process-local cache provenance rather than the
    mathematical trajectory: a resumed run recompiles its QP assembly on
    the first transformation where the uninterrupted run refilled a
    cached pattern, and the FFT kernel-spectrum cache hits or misses
    depending on which runs shared the process before, so these (and
    only these) legitimately differ across a checkpoint/resume boundary
    or between solo and co-scheduled runs.  The recorded {e values} —
    matrices, placements, forces — are bitwise-identical either way. *)
val provenance_fields : string list

(** [strip_provenance json] removes {!provenance_fields} — applied on
    top of {!strip_volatile} by checkpoint/resume comparisons. *)
val strip_provenance : Json.t -> Json.t

(** [stat_to_json s] — the {e count/total/min/max} object used for
    registry counters in summaries and in the serve protocol's
    [metrics] responses. *)
val stat_to_json : Stat.t -> Json.t

val iteration_to_json : iteration -> Json.t

(** [iteration_of_json v] parses and validates a record — the schema
    check behind "schema-valid JSONL". *)
val iteration_of_json : Json.t -> (iteration, string) result

val summary_to_json : summary -> Json.t

val summary_of_json : Json.t -> (summary, string) result
