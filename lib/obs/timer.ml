let time name f =
  if not (Registry.enabled ()) then f ()
  else begin
    let t0 = Clock.now () in
    match f () with
    | r ->
      Registry.observe name (Clock.elapsed_since t0);
      r
    | exception e ->
      Registry.observe name (Clock.elapsed_since t0);
      raise e
  end
