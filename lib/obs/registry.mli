(** The process-wide metric registry: named {!Stat.t} cells updated from
    anywhere (any domain — updates are mutex-protected).

    Names are hierarchical paths with ['/'] separators, e.g.
    ["placer/solve"] or ["cg/iterations"]; {!rollup} aggregates children
    into their ancestors.  The registry is {e disabled} by default and
    every recording call is then a single atomic load — instrumentation
    left in hot paths costs nothing until a front end (the CLI's
    [--trace], the bench harness, a test) switches it on. *)

(** [set_enabled b] turns recording on or off (off initially). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [observe name v] folds [v] into the cell [name] (no-op when
    disabled). *)
val observe : string -> float -> unit

(** [incr ?by name] observes [by] (default 1.0) — counter idiom. *)
val incr : ?by:float -> string -> unit

(** [get name] reads a cell; {!Stat.zero} when absent. *)
val get : string -> Stat.t

(** [reset ()] drops every cell (the enabled flag is unchanged). *)
val reset : unit -> unit

(** [snapshot ()] is every recorded cell, sorted by name. *)
val snapshot : unit -> (string * Stat.t) list

(** [rollup ()] is {!snapshot} plus one merged entry per ancestor path,
    e.g. ["placer"] summing ["placer/assemble"], ["placer/solve"], … *)
val rollup : unit -> (string * Stat.t) list
