let now = Unix.gettimeofday

(* Clamp at zero so elapsed times are monotone even if the wall clock
   steps backwards between the two reads (NTP adjustment). *)
let elapsed_since t0 = Float.max 0. (now () -. t0)
