(** A minimal JSON representation with a writer and a parser — enough to
    emit the telemetry trace as JSONL and to read it back in tests and
    analysis scripts without an external dependency.

    Numbers are stored as floats and written with round-trip precision
    ([%.17g], or the exact integer form when integral), so
    [of_string (to_string v)] reproduces [v] bit-for-bit for finite
    numbers.  NaN and infinities have no JSON encoding and are written
    as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [member key v] is the field [key] of an [Obj], else [None]. *)
val member : string -> t -> t option

(** [to_string v] is the compact (single-line) serialisation of [v];
    JSONL-safe — never contains an unescaped newline. *)
val to_string : t -> string

(** [of_string s] parses one complete JSON document. *)
val of_string : string -> (t, string) result
