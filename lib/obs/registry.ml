(* Global named-metric store.  Disabled by default: every recording
   entry point loads one atomic bool and returns, so instrumented hot
   paths (CG, the domain pool, the FFT cache) pay nothing unless a
   caller opted in.  When enabled, updates take a single process-wide
   mutex — recording sites are coarse (per solve, per batch, per phase),
   never per element, so contention is negligible. *)

let state = Atomic.make false

let set_enabled b = Atomic.set state b

let enabled () = Atomic.get state

let lock = Mutex.create ()

let table : (string, Stat.t) Hashtbl.t = Hashtbl.create 64

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock

let observe name v =
  if Atomic.get state then begin
    Mutex.lock lock;
    let cur = Option.value (Hashtbl.find_opt table name) ~default:Stat.zero in
    Hashtbl.replace table name (Stat.observe cur v);
    Mutex.unlock lock
  end

let incr ?(by = 1.) name = observe name by

let get name =
  Mutex.lock lock;
  let s = Option.value (Hashtbl.find_opt table name) ~default:Stat.zero in
  Mutex.unlock lock;
  s

let snapshot () =
  Mutex.lock lock;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

(* Every proper '/'-separated prefix of a metric name is a node of the
   hierarchy; roll leaf stats up into their ancestors. *)
let ancestors name =
  let rec collect acc i =
    match String.index_from_opt name i '/' with
    | None -> acc
    | Some j -> collect (String.sub name 0 j :: acc) (j + 1)
  in
  collect [] 0

let rollup () =
  let merged = Hashtbl.create 64 in
  let add name s =
    let cur = Option.value (Hashtbl.find_opt merged name) ~default:Stat.zero in
    Hashtbl.replace merged name (Stat.merge cur s)
  in
  List.iter
    (fun (name, s) ->
      add name s;
      List.iter (fun a -> add a s) (ancestors name))
    (snapshot ());
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
