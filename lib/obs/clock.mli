(** Wall-clock reads for the timing layer. *)

(** [now ()] is the current wall-clock time in seconds. *)
val now : unit -> float

(** [elapsed_since t0] is the non-negative time elapsed since a previous
    {!now} read — clamped at zero, so elapsed measurements never go
    backwards even if the system clock does. *)
val elapsed_since : float -> float
