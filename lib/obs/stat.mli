(** A mergeable summary of observed values — the value type behind every
    counter and timer in the {!Registry}.

    A counter is a [t] whose observations are increments (so [total] is
    the running count-weighted sum and [count] the number of bumps); a
    timer is a [t] whose observations are elapsed seconds.  [merge] is
    associative and commutative with [zero] as identity on the [count],
    [min] and [max] components exactly, and on [total]/[mean] up to
    floating-point reassociation — good enough to combine snapshots taken
    on different domains or in different phases. *)

type t = {
  count : int;  (** number of observations *)
  total : float;  (** sum of observed values *)
  min : float;  (** +∞ when no observation yet *)
  max : float;  (** −∞ when no observation yet *)
}

val zero : t

(** [observe s v] folds one more observation into [s]. *)
val observe : t -> float -> t

(** [of_value v] is [observe zero v]. *)
val of_value : float -> t

val merge : t -> t -> t

(** [mean s] is [total/count], or 0 for {!zero}. *)
val mean : t -> float

val is_zero : t -> bool
