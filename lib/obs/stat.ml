type t = { count : int; total : float; min : float; max : float }

let zero = { count = 0; total = 0.; min = Float.infinity; max = Float.neg_infinity }

let observe s v =
  {
    count = s.count + 1;
    total = s.total +. v;
    min = Float.min s.min v;
    max = Float.max s.max v;
  }

let of_value v = observe zero v

let merge a b =
  {
    count = a.count + b.count;
    total = a.total +. b.total;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
  }

let mean s = if s.count = 0 then 0. else s.total /. float_of_int s.count

let is_zero s = s.count = 0
