(** Probabilistic routing-congestion estimation (paper §5, "Congestion
    and Heat Driven Placement").

    Each net's expected horizontal and vertical wiring is spread uniformly
    over its bounding box; comparing demand against per-bin track capacity
    yields an overflow map.  Fed back through the placer's extra-density
    hook — or, closed-loop, through {!Target} — over-congested bins read
    as extra demand, so the same supply/demand machinery that spreads
    cells also spreads wiring.

    The grid geometry and wire pitch come from a shared {!Grid_spec};
    degenerate specs are rejected up front instead of silently producing
    NaN overflow. *)

(** Multiplier on demand accounting for bends/vias (≥ 1). *)
val default_via_factor : float

(** Result of an estimation. *)
type t = {
  demand_h : Geometry.Grid2.t;  (** horizontal track demand per bin *)
  demand_v : Geometry.Grid2.t;
  overflow : Geometry.Grid2.t;  (** Σ max(0, demand − capacity) per bin *)
  total_overflow : float;
  max_overflow : float;
}

(** [estimate ?via_factor circuit placement spec] runs the estimator, or
    reports why [spec] is unusable on the circuit's region. *)
val estimate :
  ?via_factor:float ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  Grid_spec.t ->
  (t, Grid_spec.error) result

(** [extra_density ?via_factor ~strength] is a placer hook: over-congested
    bins contribute [strength × overflow × wire_pitch] extra area demand,
    clamped per bin at one full bin area (a bin can at most read as
    completely blocked).  [strength] in (0, 1] scales linearly; larger
    values saturate against the clamp on heavily overflowing bins.
    [Ok None] when nothing overflows.  The closed congestion loop
    ({!Target}) reports how often the clamp fires through the placer's
    telemetry. *)
val extra_density :
  ?via_factor:float ->
  strength:float ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  Grid_spec.t ->
  (Geometry.Grid2.t option, Grid_spec.error) result
