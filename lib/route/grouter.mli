(** A coarse global router.

    The paper's congestion-driven mode runs "a routing estimation …
    before each placement transformation"; {!Congest} provides the cheap
    probabilistic estimate used inside the loop, and this module provides
    an actual router for validating placements after the fact: every net
    is routed on a coarse capacitated grid with L-shaped / Z-shaped
    pattern routes falling back to a maze (BFS with congestion-aware
    costs), followed by rip-up-and-reroute passes on overflowing nets.

    Multi-pin nets are decomposed into a star of two-pin connections from
    the driver.  The grid geometry and wire pitch come from the same
    {!Grid_spec} the estimator uses, so estimate and validation always
    agree on capacity. *)

type config = {
  overflow_penalty : float;
      (** cost multiplier for entering a bin already at capacity *)
  rip_up_passes : int;
}

val default_config : config

type result = {
  usage_h : Geometry.Grid2.t;  (** horizontal track usage per bin *)
  usage_v : Geometry.Grid2.t;
  total_wirelength : float;  (** routed length in length units *)
  total_overflow : float;  (** Σ max(0, usage − capacity) over bins *)
  max_overflow : float;
  failed_nets : int;  (** nets the maze could not connect (0 expected) *)
}

(** [route ?config circuit placement spec] routes every net and returns
    the usage and overflow summary, or reports why [spec] is unusable on
    the circuit's region. *)
val route :
  ?config:config ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  Grid_spec.t ->
  (result, Grid_spec.error) Stdlib.result
