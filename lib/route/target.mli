(** Persistent per-bin density targets derived from congestion overflow —
    the state of the closed routability loop.

    Where {!Congest.extra_density} is a one-shot reactive hook (fresh
    estimate, fresh extra demand, every call), a target map {e persists}
    between refreshes: every refresh folds the current overflow estimate
    into the map with an exponential decay,

    {v target'(b) = min(decay · target(b) + strength · overflow(b) · pitch,
                    bin_area) v}

    so congestion seen early in the run keeps claiming space after the
    hotspot has been pushed apart — the GOALPlace "begin with the end in
    mind" idea of placing against per-region targets rather than raw cell
    area.  The map is read as extra area demand by the density machinery
    each iteration and refreshed only every [congest_every] iterations.

    The per-bin clamp at one full bin area bounds the feedback (a bin can
    at most read as completely blocked); how often it fires is reported
    in {!stats} and surfaced through placer telemetry. *)

(** What one refresh observed: the estimator's overflow totals and the
    state of the map after folding them in. *)
type stats = {
  est_total_overflow : float;  (** {!Congest.t.total_overflow} *)
  est_max_overflow : float;
  target_area : float;  (** Σ target over bins after the refresh *)
  clamped_bins : int;  (** bins saturated at one bin area this refresh *)
}

type t

(** [create region spec] is an all-zero target map over [region]. *)
val create : Geometry.Rect.t -> Grid_spec.t -> (t, Grid_spec.error) result

(** The current map: extra area demand per bin, in length-units². *)
val grid : t -> Geometry.Grid2.t

val spec : t -> Grid_spec.t

(** [area t] is Σ {!grid} — zero until congestion has been observed. *)
val area : t -> float

(** [refresh ?via_factor ~strength ~decay t circuit placement] runs
    {!Congest.estimate} on [placement] and folds the overflow into the
    map.  [strength] is the annealed feedback gain, [decay] the retention
    of the previous targets in [0, 1). *)
val refresh :
  ?via_factor:float ->
  strength:float ->
  decay:float ->
  t ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  stats

(** Checkpoint support: [values t] is a row-major copy of the map;
    [restore region spec ~values] rebuilds it bitwise. *)
val values : t -> float array

val restore :
  Geometry.Rect.t -> Grid_spec.t -> values:float array -> (t, string) result
