type config = { overflow_penalty : float; rip_up_passes : int }

let default_config = { overflow_penalty = 8.; rip_up_passes = 2 }

type result = {
  usage_h : Geometry.Grid2.t;
  usage_v : Geometry.Grid2.t;
  total_wirelength : float;
  total_overflow : float;
  max_overflow : float;
  failed_nets : int;
}

(* Edge-indexed routing state.  Horizontal edge (ix, iy) joins bins
   (ix, iy) and (ix+1, iy); vertical edge (ix, iy) joins (ix, iy) and
   (ix, iy+1). *)
type state = {
  nx : int;
  ny : int;
  cap_h : float; (* tracks per horizontal edge *)
  cap_v : float;
  use_h : float array; (* (nx-1) * ny *)
  use_v : float array; (* nx * (ny-1) *)
  cfg : config;
}

let h_index st ix iy = (iy * (st.nx - 1)) + ix

let v_index st ix iy = (iy * st.nx) + ix

(* A route is a list of (is_horizontal, edge_index). *)
let edge_cost st horizontal idx =
  let use, cap = if horizontal then (st.use_h.(idx), st.cap_h) else (st.use_v.(idx), st.cap_v) in
  1. +. (if use >= cap then st.cfg.overflow_penalty *. (1. +. use -. cap) else 0.)

let apply st delta route =
  List.iter
    (fun (horizontal, idx) ->
      if horizontal then st.use_h.(idx) <- st.use_h.(idx) +. delta
      else st.use_v.(idx) <- st.use_v.(idx) +. delta)
    route

(* Straight segment helpers building edge lists. *)
let h_segment st ~iy ~ix0 ~ix1 =
  let lo = min ix0 ix1 and hi = max ix0 ix1 in
  List.init (hi - lo) (fun k -> (true, h_index st (lo + k) iy))

let v_segment st ~ix ~iy0 ~iy1 =
  let lo = min iy0 iy1 and hi = max iy0 iy1 in
  List.init (hi - lo) (fun k -> (false, v_index st ix (lo + k)))

let route_cost st route =
  List.fold_left (fun acc (h, i) -> acc +. edge_cost st h i) 0. route

let overflowed st route =
  List.exists
    (fun (h, i) ->
      if h then st.use_h.(i) >= st.cap_h else st.use_v.(i) >= st.cap_v)
    route

(* L-shaped candidates between two bins. *)
let l_shapes st (ax, ay) (bx, by) =
  let l1 = h_segment st ~iy:ay ~ix0:ax ~ix1:bx @ v_segment st ~ix:bx ~iy0:ay ~iy1:by in
  let l2 = v_segment st ~ix:ax ~iy0:ay ~iy1:by @ h_segment st ~iy:by ~ix0:ax ~ix1:bx in
  if ax = bx || ay = by then [ l1 ] else [ l1; l2 ]

(* Congestion-aware maze route (Dijkstra over bins). *)
let maze st (ax, ay) (bx, by) =
  let n = st.nx * st.ny in
  let dist = Array.make n Float.infinity in
  let prev = Array.make n (-1, false, -1) in
  (* (from node, was_horizontal, edge index) *)
  let node ix iy = (iy * st.nx) + ix in
  let heap = ref [] in
  let push d v = heap := (d, v) :: !heap in
  let pop () =
    match !heap with
    | [] -> None
    | _ ->
      let best =
        List.fold_left (fun acc x -> if fst x < fst acc then x else acc)
          (List.hd !heap) (List.tl !heap)
      in
      heap := List.filter (fun x -> x != best) !heap;
      Some best
  in
  dist.(node ax ay) <- 0.;
  push 0. (node ax ay);
  let target = node bx by in
  let finished = ref false in
  while not !finished do
    match pop () with
    | None -> finished := true
    | Some (d, u) ->
      if u = target then finished := true
      else if d <= dist.(u) then begin
        let ux = u mod st.nx and uy = u / st.nx in
        let consider h idx v =
          let nd = d +. edge_cost st h idx in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            prev.(v) <- (u, h, idx);
            push nd v
          end
        in
        if ux > 0 then consider true (h_index st (ux - 1) uy) (node (ux - 1) uy);
        if ux < st.nx - 1 then consider true (h_index st ux uy) (node (ux + 1) uy);
        if uy > 0 then consider false (v_index st ux (uy - 1)) (node ux (uy - 1));
        if uy < st.ny - 1 then consider false (v_index st ux uy) (node ux (uy + 1))
      end
  done;
  if dist.(target) = Float.infinity then None
  else begin
    let route = ref [] in
    let v = ref target in
    while !v <> node ax ay do
      let u, h, idx = prev.(!v) in
      route := (h, idx) :: !route;
      v := u
    done;
    Some !route
  end

let connect st a b =
  if a = b then Some []
  else begin
    let candidates = l_shapes st a b in
    let viable = List.filter (fun r -> not (overflowed st r)) candidates in
    match viable with
    | _ :: _ ->
      (* Cheapest clean pattern route. *)
      Some
        (List.fold_left
           (fun best r -> if route_cost st r < route_cost st best then r else best)
           (List.hd viable) (List.tl viable))
    | [] -> maze st a b
  end

let route_unchecked ~config (c : Netlist.Circuit.t) (p : Netlist.Placement.t)
    (spec : Grid_spec.t) =
  let region = c.Netlist.Circuit.region in
  let nx = spec.Grid_spec.nx and ny = spec.Grid_spec.ny in
  let ref_grid = Geometry.Grid2.create region ~nx ~ny in
  let dx = Geometry.Grid2.dx ref_grid and dy = Geometry.Grid2.dy ref_grid in
  let st =
    {
      nx;
      ny;
      cap_h = dy /. spec.Grid_spec.wire_pitch;
      cap_v = dx /. spec.Grid_spec.wire_pitch;
      use_h = Array.make (max 1 ((nx - 1) * ny)) 0.;
      use_v = Array.make (max 1 (nx * (ny - 1))) 0.;
      cfg = config;
    }
  in
  let bin_of cell_pin =
    let x, y =
      Netlist.Circuit.pin_position c ~x:p.Netlist.Placement.x
        ~y:p.Netlist.Placement.y cell_pin
    in
    Geometry.Grid2.locate ref_grid x y
  in
  (* Star decomposition per net: driver bin to each distinct sink bin. *)
  let net_connections (net : Netlist.Net.t) =
    let drv = bin_of (Netlist.Net.driver net) in
    let sinks =
      Array.to_list (Netlist.Net.sinks net)
      |> List.map bin_of
      |> List.sort_uniq compare
      |> List.filter (fun b -> b <> drv)
    in
    (drv, sinks)
  in
  let routes = Array.make (Netlist.Circuit.num_nets c) [] in
  let failed = ref 0 in
  let route_net (net : Netlist.Net.t) =
    let drv, sinks = net_connections net in
    let segs = ref [] in
    List.iter
      (fun sink ->
        match connect st drv sink with
        | Some r ->
          apply st 1. r;
          segs := r :: !segs
        | None -> incr failed)
      sinks;
    routes.(net.Netlist.Net.id) <- !segs
  in
  Array.iter route_net c.Netlist.Circuit.nets;
  (* Rip-up and reroute nets that sit on overflowing edges. *)
  for _ = 1 to config.rip_up_passes do
    Array.iter
      (fun (net : Netlist.Net.t) ->
        let id = net.Netlist.Net.id in
        if List.exists (overflowed st) routes.(id) then begin
          List.iter (apply st (-1.)) routes.(id);
          let drv, sinks = net_connections net in
          let segs = ref [] in
          List.iter
            (fun sink ->
              match connect st drv sink with
              | Some r ->
                apply st 1. r;
                segs := r :: !segs
              | None -> incr failed)
            sinks;
          routes.(id) <- !segs
        end)
      c.Netlist.Circuit.nets
  done;
  (* Summaries. *)
  let usage_h = Geometry.Grid2.create region ~nx ~ny in
  let usage_v = Geometry.Grid2.create region ~nx ~ny in
  let total_wl = ref 0. and total_ov = ref 0. and max_ov = ref 0. in
  for iy = 0 to ny - 1 do
    for ix = 0 to nx - 2 do
      let u = st.use_h.(h_index st ix iy) in
      total_wl := !total_wl +. (u *. dx);
      Geometry.Grid2.add usage_h ix iy (u /. 2.);
      Geometry.Grid2.add usage_h (ix + 1) iy (u /. 2.);
      let ov = Float.max 0. (u -. st.cap_h) in
      total_ov := !total_ov +. ov;
      if ov > !max_ov then max_ov := ov
    done
  done;
  for iy = 0 to ny - 2 do
    for ix = 0 to nx - 1 do
      let u = st.use_v.(v_index st ix iy) in
      total_wl := !total_wl +. (u *. dy);
      Geometry.Grid2.add usage_v ix iy (u /. 2.);
      Geometry.Grid2.add usage_v ix (iy + 1) (u /. 2.);
      let ov = Float.max 0. (u -. st.cap_v) in
      total_ov := !total_ov +. ov;
      if ov > !max_ov then max_ov := ov
    done
  done;
  {
    usage_h;
    usage_v;
    total_wirelength = !total_wl;
    total_overflow = !total_ov;
    max_overflow = !max_ov;
    failed_nets = !failed;
  }

let route ?(config = default_config) c p spec =
  match Grid_spec.validate spec c.Netlist.Circuit.region with
  | Error _ as e -> e
  | Ok () -> Ok (route_unchecked ~config c p spec)
