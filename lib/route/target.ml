type stats = {
  est_total_overflow : float;
  est_max_overflow : float;
  target_area : float;
  clamped_bins : int;
}

type t = {
  grid : Geometry.Grid2.t;
  spec : Grid_spec.t;
  mutable total_area : float;
}

let create region spec =
  match Grid_spec.validate spec region with
  | Error _ as e -> e
  | Ok () ->
    Ok
      {
        grid =
          Geometry.Grid2.create region ~nx:spec.Grid_spec.nx
            ~ny:spec.Grid_spec.ny;
        spec;
        total_area = 0.;
      }

let grid t = t.grid

let spec t = t.spec

let area t = t.total_area

let refresh ?via_factor ~strength ~decay t (c : Netlist.Circuit.t)
    (p : Netlist.Placement.t) =
  let est =
    match Congest.estimate ?via_factor c p t.spec with
    | Ok est -> est
    | Error _ ->
      (* The spec was validated against this region at [create]. *)
      assert false
  in
  let dx = Geometry.Grid2.dx t.grid and dy = Geometry.Grid2.dy t.grid in
  let bin_area = dx *. dy in
  let pitch = t.spec.Grid_spec.wire_pitch in
  let total = ref 0. and clamped = ref 0 in
  Geometry.Grid2.map_inplace
    (fun ix iy v ->
      let o = Geometry.Grid2.get est.Congest.overflow ix iy in
      let raw = (decay *. v) +. (strength *. o *. pitch) in
      let v' = if raw > bin_area then (incr clamped; bin_area) else raw in
      total := !total +. v';
      v')
    t.grid;
  t.total_area <- !total;
  {
    est_total_overflow = est.Congest.total_overflow;
    est_max_overflow = est.Congest.max_overflow;
    target_area = !total;
    clamped_bins = !clamped;
  }

let values t = Array.copy (Geometry.Grid2.values t.grid)

let restore region spec ~values:vs =
  match create region spec with
  | Error e -> Error (Grid_spec.error_message e)
  | Ok t ->
    let dst = Geometry.Grid2.values t.grid in
    if Array.length vs <> Array.length dst then
      Error
        (Printf.sprintf "route target: %d values for a %dx%d grid"
           (Array.length vs) spec.Grid_spec.nx spec.Grid_spec.ny)
    else begin
      Array.blit vs 0 dst 0 (Array.length vs);
      let total = ref 0. in
      Array.iter (fun v -> total := !total +. v) dst;
      t.total_area <- !total;
      Ok t
    end
