type t = { nx : int; ny : int; wire_pitch : float }

type error = Zero_bins | Zero_capacity

let default_wire_pitch = 0.7

let make ?(wire_pitch = default_wire_pitch) ~nx ~ny () = { nx; ny; wire_pitch }

let error_message = function
  | Zero_bins -> "grid spec: bin counts must be at least 1"
  | Zero_capacity ->
    "grid spec: wire pitch and region extents must give a positive, finite \
     per-bin track capacity"

let validate t (region : Geometry.Rect.t) =
  if t.nx < 1 || t.ny < 1 then Error Zero_bins
  else if (not (Float.is_finite t.wire_pitch)) || t.wire_pitch <= 0. then
    Error Zero_capacity
  else begin
    (* The capacities both estimator and router derive from the spec:
       tracks per bin in each direction.  A degenerate region (zero
       width/height) or an absurd pitch collapses them to zero or a
       non-finite value, which used to surface as NaN overflow. *)
    let dx = Geometry.Rect.width region /. float_of_int t.nx in
    let dy = Geometry.Rect.height region /. float_of_int t.ny in
    let cap_h = dy /. t.wire_pitch in
    let cap_v = dx /. t.wire_pitch in
    if
      Float.is_finite cap_h && Float.is_finite cap_v && cap_h > 0. && cap_v > 0.
    then Ok ()
    else Error Zero_capacity
  end
