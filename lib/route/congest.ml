let default_via_factor = 1.2

type t = {
  demand_h : Geometry.Grid2.t;
  demand_v : Geometry.Grid2.t;
  overflow : Geometry.Grid2.t;
  total_overflow : float;
  max_overflow : float;
}

let estimate_unchecked ~via_factor (c : Netlist.Circuit.t)
    (p : Netlist.Placement.t) (spec : Grid_spec.t) =
  let region = c.Netlist.Circuit.region in
  let nx = spec.Grid_spec.nx and ny = spec.Grid_spec.ny in
  let demand_h = Geometry.Grid2.create region ~nx ~ny in
  let demand_v = Geometry.Grid2.create region ~nx ~ny in
  Array.iter
    (fun (net : Netlist.Net.t) ->
      let bbox =
        Metrics.Wirelength.bbox_net c ~x:p.Netlist.Placement.x
          ~y:p.Netlist.Placement.y net
      in
      (* Expected wiring ≈ half-perimeter split into its h/v components,
         spread uniformly over the box (degenerate boxes splat into the
         bin row/column they occupy via the rect clip). *)
      let wl_h = Geometry.Rect.width bbox *. via_factor in
      let wl_v = Geometry.Rect.height bbox *. via_factor in
      if wl_h > 0. then Geometry.Grid2.splat_rect demand_h bbox wl_h;
      if wl_v > 0. then Geometry.Grid2.splat_rect demand_v bbox wl_v)
    c.Netlist.Circuit.nets;
  (* Capacity: tracks per bin times bin extent. *)
  let overflow = Geometry.Grid2.create region ~nx ~ny in
  let dx = Geometry.Grid2.dx overflow and dy = Geometry.Grid2.dy overflow in
  let cap_h = dy /. spec.Grid_spec.wire_pitch *. dx in
  let cap_v = dx /. spec.Grid_spec.wire_pitch *. dy in
  let total = ref 0. and maxo = ref 0. in
  Geometry.Grid2.map_inplace
    (fun ix iy _ ->
      let oh = Float.max 0. (Geometry.Grid2.get demand_h ix iy -. cap_h) in
      let ov = Float.max 0. (Geometry.Grid2.get demand_v ix iy -. cap_v) in
      let o = oh +. ov in
      total := !total +. o;
      if o > !maxo then maxo := o;
      o)
    overflow;
  { demand_h; demand_v; overflow; total_overflow = !total; max_overflow = !maxo }

let estimate ?(via_factor = default_via_factor) c p spec =
  match Grid_spec.validate spec c.Netlist.Circuit.region with
  | Error _ as e -> e
  | Ok () -> Ok (estimate_unchecked ~via_factor c p spec)

let extra_density ?(via_factor = default_via_factor) ~strength c p spec =
  match Grid_spec.validate spec c.Netlist.Circuit.region with
  | Error _ as e -> e
  | Ok () ->
    let est = estimate_unchecked ~via_factor c p spec in
    if est.total_overflow <= 0. then Ok None
    else begin
      let nx = spec.Grid_spec.nx and ny = spec.Grid_spec.ny in
      let g = Geometry.Grid2.create c.Netlist.Circuit.region ~nx ~ny in
      let dx = Geometry.Grid2.dx g and dy = Geometry.Grid2.dy g in
      (* Convert overflow (wire length) into an equivalent blocked area so
         it adds to the cell-area demand: overflow × pitch ≈ area the
         missing tracks would occupy.  The extra demand is clamped at one
         full bin area — a bin can at most be declared completely blocked
         — so the effective strength saturates once
         strength × overflow × pitch reaches dx·dy. *)
      Geometry.Grid2.map_inplace
        (fun ix iy _ ->
          let o = Geometry.Grid2.get est.overflow ix iy in
          Float.min (strength *. o *. spec.Grid_spec.wire_pitch) (dx *. dy))
        g;
      Ok (Some g)
    end
