(** The routing-grid description shared by {!Congest} and {!Grouter}.

    Both the probabilistic estimator and the validating router bin the
    region into [nx × ny] tiles and convert tile extent into track
    capacity through the wire pitch.  Historically each took loose
    [~nx ~ny] plus its own pitch parameter and silently produced NaN
    overflow on degenerate inputs; the spec centralises the parameters
    and makes validation explicit. *)

type t = {
  nx : int;  (** bins across the region width *)
  ny : int;
  wire_pitch : float;
      (** routing pitch in length units per track; the 0.7 default models
          the paper's late-90s half-micron metal stack (1 unit = 1 µm) *)
}

(** Why a spec cannot be used on a given region. *)
type error =
  | Zero_bins  (** [nx] or [ny] below 1 *)
  | Zero_capacity
      (** the pitch or the region extents give a zero or non-finite
          per-bin track capacity *)

val default_wire_pitch : float

val make : ?wire_pitch:float -> nx:int -> ny:int -> unit -> t

val error_message : error -> string

(** [validate t region] checks that binning [region] by [t] yields a
    positive, finite track capacity in both directions. *)
val validate : t -> Geometry.Rect.t -> (unit, error) result
