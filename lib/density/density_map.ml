let auto_bins (c : Netlist.Circuit.t) =
  let avg = Float.max 1e-12 (Netlist.Circuit.average_cell_area c) in
  let r = c.Netlist.Circuit.region in
  (* Bin side ≈ 2 average-cell sides: fine enough to resolve clumps,
     coarse enough that the FFT stays cheap. *)
  let side = 2. *. sqrt avg in
  let clamp n = max 8 (min 128 n) in
  ( clamp (int_of_float (Float.ceil (Geometry.Rect.width r /. side))),
    clamp (int_of_float (Float.ceil (Geometry.Rect.height r /. side))) )

(* Below this cell count the parallel two-pass splat costs more in task
   dispatch and contribution buffers than it saves. *)
let demand_par_threshold = 4096

let demand (c : Netlist.Circuit.t) p ~nx ~ny =
  let g = Geometry.Grid2.create c.Netlist.Circuit.region ~nx ~ny in
  let cells = c.Netlist.Circuit.cells in
  let ncells = Array.length cells in
  if ncells >= demand_par_threshold && Numeric.Parallel.num_domains () > 1
  then begin
    (* Two-pass splat: the geometry (clipping, bin overlaps) of every
       cell is computed in parallel; the float accumulation then runs
       sequentially in cell order, performing exactly the additions the
       sequential path performs in the same order — bitwise-identical
       for any domain count. *)
    let contribs = Array.make ncells [||] in
    Numeric.Parallel.parallel_for ~lo:0 ~hi:ncells (fun i ->
        let cl = cells.(i) in
        if cl.Netlist.Cell.kind <> Netlist.Cell.Pad then
          contribs.(i) <-
            Geometry.Grid2.rect_contributions g
              (Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
              (Netlist.Cell.area cl));
    let gv = Geometry.Grid2.values g in
    Array.iter
      (fun cell_contribs ->
        Array.iter (fun (i, dv) -> gv.(i) <- gv.(i) +. dv) cell_contribs)
      contribs
  end
  else
    Array.iter
      (fun (cl : Netlist.Cell.t) ->
        if cl.Netlist.Cell.kind <> Netlist.Cell.Pad then
          Geometry.Grid2.splat_rect g
            (Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
            (Netlist.Cell.area cl))
      cells;
  g

(* Overflow of a raw demand grid (bin areas, before extra / balancing) —
   the same fold {!overflow_ratio} performs on the occupancy grid, with
   the per-bin division done inline so no second splat pass is needed. *)
let overflow_of_demand c g =
  let movable = Netlist.Circuit.movable_area c in
  if movable <= 0. then 0.
  else begin
    let bin_area = Geometry.Grid2.dx g *. Geometry.Grid2.dy g in
    let over =
      Array.fold_left
        (fun acc v ->
          let u = v /. bin_area in
          if u > 1. then acc +. ((u -. 1.) *. bin_area) else acc)
        0. (Geometry.Grid2.values g)
    in
    over /. movable
  end

let build_with_overflow c p ~nx ~ny ?extra () =
  let g = demand c p ~nx ~ny in
  let overflow = overflow_of_demand c g in
  (match extra with
  | None -> ()
  | Some e ->
    if Geometry.Grid2.nx e <> nx || Geometry.Grid2.ny e <> ny then
      invalid_arg "Density_map.build: extra grid dimension mismatch";
    let ev = Geometry.Grid2.values e and gv = Geometry.Grid2.values g in
    for i = 0 to Array.length gv - 1 do
      gv.(i) <- gv.(i) +. ev.(i)
    done);
  (* Balance supply so the grid sums to zero (the paper's s, generalised
     to whatever demand the extra hook injected). *)
  let bin_area = Geometry.Grid2.dx g *. Geometry.Grid2.dy g in
  let total_demand = Geometry.Grid2.total g in
  let s = total_demand /. (bin_area *. float_of_int (nx * ny)) in
  (* Convert per-bin area into per-unit-area density and subtract s. *)
  Geometry.Grid2.map_inplace (fun _ _ v -> (v /. bin_area) -. s) g;
  (g, overflow)

let build c p ~nx ~ny ?extra () = fst (build_with_overflow c p ~nx ~ny ?extra ())

let occupancy c p ~nx ~ny =
  let g = demand c p ~nx ~ny in
  let bin_area = Geometry.Grid2.dx g *. Geometry.Grid2.dy g in
  Geometry.Grid2.map_inplace (fun _ _ v -> v /. bin_area) g;
  g

let overflow_ratio c p ~nx ~ny =
  let movable = Netlist.Circuit.movable_area c in
  if movable <= 0. then 0.
  else begin
    let occ = occupancy c p ~nx ~ny in
    let bin_area = Geometry.Grid2.dx occ *. Geometry.Grid2.dy occ in
    let over =
      Array.fold_left
        (fun acc u -> if u > 1. then acc +. ((u -. 1.) *. bin_area) else acc)
        0. (Geometry.Grid2.values occ)
    in
    over /. movable
  end
