(** The supply-and-demand density model of the paper's eq. (4):

    D(x,y) = Σᵢ aᵢ(x,y) − s·A(x,y)

    where aᵢ indicates coverage by cell i, A indicates the placement area,
    and s scales the supply so that ∬D = 0.  We discretise on a bin grid:
    each bin holds the covered cell area minus s times the bin area,
    normalised per unit area, so positive bins are over-full and negative
    bins under-full. *)

(** [auto_bins circuit] picks a grid dimension so a bin holds a handful of
    average cells, clamped to [8 … 128] per axis. *)
val auto_bins : Netlist.Circuit.t -> int * int

(** [build circuit placement ~nx ~ny ?extra ()] computes the density grid.
    Pads are excluded (they sit on the boundary and are not part of the
    area balance); fixed non-pad cells count as demand, exactly as the
    paper treats pre-placed blocks.  [extra], when given, is added to the
    demand term bin-wise {e before} the supply is balanced — the hook used
    for congestion- and heat-driven placement (§5): the supply scale s is
    recomputed so the grid still sums to zero. *)
val build :
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  nx:int ->
  ny:int ->
  ?extra:Geometry.Grid2.t ->
  unit ->
  Geometry.Grid2.t

(** [build_with_overflow circuit placement ~nx ~ny ?extra ()] is
    {!build} returning additionally the {!overflow_ratio} of the same
    demand splat (computed before [extra] and supply balancing,
    bitwise-equal to a separate [overflow_ratio] call on the same grid)
    — the per-iteration convergence signal, for free instead of a
    second splat pass. *)
val build_with_overflow :
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  nx:int ->
  ny:int ->
  ?extra:Geometry.Grid2.t ->
  unit ->
  Geometry.Grid2.t * float

(** [occupancy circuit placement ~nx ~ny] is just the demand term —
    fraction of each bin covered by cells — used by the stopping
    criterion. *)
val occupancy :
  Netlist.Circuit.t -> Netlist.Placement.t -> nx:int -> ny:int -> Geometry.Grid2.t

(** [overflow_ratio circuit placement ~nx ~ny] is the ePlace-style
    density-overflow measure: the total bin area demanded beyond 100 %
    utilisation, normalised by the movable cell area.  It is ~1 for the
    all-at-centre initial placement, trends to ~0 as the placement
    spreads, and is the primary per-iteration convergence signal of the
    telemetry trace.  0 when the circuit has no movable area. *)
val overflow_ratio :
  Netlist.Circuit.t -> Netlist.Placement.t -> nx:int -> ny:int -> float
