(** Per-cell additional forces from the density field (paper §3.3–§4.1).

    The density grid is turned into a force field by the open-boundary
    Poisson solution (eq. 9), sampled bilinearly at each movable cell's
    centre, and scaled so that the strongest cell force equals the spring
    force of a unit-weight net of length K·(W + H). *)

(** How to evaluate the field. *)
type solver =
  | Fft  (** zero-padded FFT convolution (default) *)
  | Direct  (** O(G⁴) summation — tests and tiny grids *)
  | Sor  (** Dirichlet SOR potential + gradient (ablation) *)

(** Per-movable-cell force increments, indexed by QP variable index. *)
type t = {
  fx : float array;
  fy : float array;
  scale : float;  (** the proportionality constant k actually applied *)
  raw_max : float;  (** largest unscaled |f| over cells *)
  overflow : float;
      (** {!Density_map.overflow_ratio} of the demand splat this field
          was built from — reused by the placer for the adaptive CG
          tolerance and telemetry without a second splat *)
}

(** [at_cells circuit placement ~var_of_cell ~n_movable ~k_param ?solver
    ?extra ~nx ~ny ()] computes the scaled additional forces:
    [k_param] is the paper's K (0.2 standard, 1.0 fast).  Returns zero
    forces when the density is perfectly flat. *)
val at_cells :
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  var_of_cell:int array ->
  n_movable:int ->
  k_param:float ->
  ?solver:solver ->
  ?extra:Geometry.Grid2.t ->
  nx:int ->
  ny:int ->
  unit ->
  t

(** [field_of_grid ?solver grid] exposes the raw (unscaled) field for a
    prepared density grid — used by tests and the route/heat demos. *)
val field_of_grid : ?solver:solver -> Geometry.Grid2.t -> Numeric.Poisson.field

(** [prewarm ?solver ~region ~nx ~ny ()] eagerly builds the cached
    Poisson kernel spectra for the density grid an [nx]×[ny] run over
    [region] will use, so a job's first transformation doesn't pay
    kernel construction (the historical cold-call spike).  No-op for the
    [Direct]/[Sor] solvers. *)
val prewarm :
  ?solver:solver -> region:Geometry.Rect.t -> nx:int -> ny:int -> unit -> unit
