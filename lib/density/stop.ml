let largest_empty_square_area c p ?nx ?ny () =
  let anx, any_ = Density_map.auto_bins c in
  let nx = Option.value nx ~default:anx and ny = Option.value ny ~default:any_ in
  let occ = Density_map.occupancy c p ~nx ~ny in
  let side = Geometry.Grid2.largest_empty_square occ ~threshold:0.1 in
  side *. side

let should_stop c p ?(multiplier = 4.) ?nx ?ny () =
  let avg = Netlist.Circuit.average_cell_area c in
  (* No movable area means nothing can spread: stop immediately rather
     than compare against a zero threshold forever (empty netlists and
     all-fixed circuits must terminate).  A single movable cell is just
     as degenerate — there is no overlap to resolve, and the empty-square
     measure stays huge forever — so the criterion is satisfied as soon
     as the cell sits at its quadratic optimum. *)
  avg <= 0.
  || Netlist.Circuit.num_movable c < 2
  || largest_empty_square_area c p ?nx ?ny () <= multiplier *. avg
