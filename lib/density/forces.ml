type solver = Fft | Direct | Sor

type t = {
  fx : float array;
  fy : float array;
  scale : float;
  raw_max : float;
  overflow : float;
}

let field_of_grid ?(solver = Fft) grid =
  let rows = Geometry.Grid2.ny grid and cols = Geometry.Grid2.nx grid in
  let hx = Geometry.Grid2.dx grid and hy = Geometry.Grid2.dy grid in
  let density = Geometry.Grid2.values grid in
  match solver with
  | Fft -> Numeric.Poisson.fft_force_field ~rows ~cols ~hx ~hy density
  | Direct -> Numeric.Poisson.direct_force_field ~rows ~cols ~hx ~hy density
  | Sor ->
    let phi = Numeric.Poisson.sor_potential ~rows ~cols ~hx ~hy density in
    Numeric.Poisson.gradient_force ~rows ~cols ~hx ~hy phi

let prewarm ?(solver = Fft) ~region ~nx ~ny () =
  match solver with
  | Fft ->
    (* Mirror Grid2.create's pitch computation exactly so the cache key
       matches the grids [at_cells] builds every iteration. *)
    let hx = Geometry.Rect.width region /. float_of_int nx in
    let hy = Geometry.Rect.height region /. float_of_int ny in
    Numeric.Poisson.prewarm ~rows:ny ~cols:nx ~hx ~hy
  | Direct | Sor -> ()

let at_cells (c : Netlist.Circuit.t) (p : Netlist.Placement.t) ~var_of_cell
    ~n_movable ~k_param ?solver ?extra ~nx ~ny () =
  let grid, overflow = Density_map.build_with_overflow c p ~nx ~ny ?extra () in
  let field = field_of_grid ?solver grid in
  (* Wrap the field components in sampling grids for bilinear reads. *)
  let region = c.Netlist.Circuit.region in
  let gx = Geometry.Grid2.create region ~nx ~ny in
  let gy = Geometry.Grid2.create region ~nx ~ny in
  Array.blit field.Numeric.Poisson.fx 0 (Geometry.Grid2.values gx) 0 (nx * ny);
  Array.blit field.Numeric.Poisson.fy 0 (Geometry.Grid2.values gy) 0 (nx * ny);
  let fx = Array.make n_movable 0. and fy = Array.make n_movable 0. in
  (* Each movable cell owns its force slot, so bilinear sampling chunks
     across the domain pool with bitwise-identical results. *)
  let cells = c.Netlist.Circuit.cells in
  let sample_range i0 i1 =
    for i = i0 to i1 - 1 do
      let cl = cells.(i) in
      let v = var_of_cell.(cl.Netlist.Cell.id) in
      if v >= 0 then begin
        let x = p.Netlist.Placement.x.(cl.Netlist.Cell.id) in
        let y = p.Netlist.Placement.y.(cl.Netlist.Cell.id) in
        fx.(v) <- Geometry.Grid2.sample gx x y;
        fy.(v) <- Geometry.Grid2.sample gy x y
      end
    done
  in
  let ncells = Array.length cells in
  if ncells >= 2048 && Numeric.Parallel.num_domains () > 1 then
    Numeric.Parallel.parallel_range ~lo:0 ~hi:ncells sample_range
  else sample_range 0 ncells;
  (* Normalise by the field maximum over the whole grid, not over cell
     centres: at the §4.2 initial placement every cell sits at the region
     centre where the field vanishes by symmetry, and dividing by that
     near-zero maximum would amplify numerical noise into full-strength
     forces.  The grid maximum still bounds every cell force by the
     K·(W+H) reference and decays as the density flattens. *)
  let raw_max = Numeric.Poisson.max_magnitude field in
  let target =
    k_param *. (Geometry.Rect.width region +. Geometry.Rect.height region)
  in
  let scale = if raw_max > 0. then target /. raw_max else 0. in
  (* The density field points *away from* dense regions for positive
     density, i.e. it already repels; entering e in C·p + d + e = 0 a
     repelling force must appear with opposite sign (the solve moves p
     against +e).  Negate here so callers just accumulate. *)
  for v = 0 to n_movable - 1 do
    fx.(v) <- -.(scale *. fx.(v));
    fy.(v) <- -.(scale *. fy.(v))
  done;
  { fx; fy; scale; raw_max; overflow }
