(** The paper's §4.2 stopping criterion: iterate until there is no empty
    square within the placement area larger than four times the average
    cell area. *)

(** [largest_empty_square_area circuit placement ?nx ?ny ()] measures the
    area of the largest square of bins whose occupancy is below 10 % —
    "empty" up to splatter noise.  Bin counts default to
    {!Density_map.auto_bins}. *)
val largest_empty_square_area :
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  ?nx:int ->
  ?ny:int ->
  unit ->
  float

(** [should_stop circuit placement ?multiplier ()] is true when the
    largest empty square is at most [multiplier] (default 4.0, the
    paper's value) times the average movable-cell area.  Degenerate
    circuits — no movable cells, or a single movable cell — stop
    immediately (there is nothing to spread). *)
val should_stop :
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  ?multiplier:float ->
  ?nx:int ->
  ?ny:int ->
  unit ->
  bool
