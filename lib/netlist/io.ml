type error = { file : string option; line : int option; reason : string }

let error_message e =
  match (e.file, e.line) with
  | Some f, Some l -> Printf.sprintf "%s:%d: %s" f l e.reason
  | Some f, None -> Printf.sprintf "%s: %s" f e.reason
  | None, Some l -> Printf.sprintf "line %d: %s" l e.reason
  | None, None -> e.reason

(* Internal control flow of the readers; converted to [Error] at the API
   boundary, never escapes this module. *)
exception Malformed of error

let malformed ?line reason = raise (Malformed { file = None; line; reason })

let kind_to_string = function
  | Cell.Standard -> "standard"
  | Cell.Block -> "block"
  | Cell.Pad -> "pad"

let kind_of_string = function
  | "standard" -> Cell.Standard
  | "block" -> Cell.Block
  | "pad" -> Cell.Pad
  | s -> failwith ("unknown cell kind: " ^ s)

let write_circuit oc (c : Circuit.t) =
  Printf.fprintf oc "circuit %s\n" c.Circuit.name;
  let r = c.Circuit.region in
  Printf.fprintf oc "region %.17g %.17g %.17g %.17g\n" r.Geometry.Rect.x_lo
    r.Geometry.Rect.y_lo r.Geometry.Rect.x_hi r.Geometry.Rect.y_hi;
  Printf.fprintf oc "rowheight %.17g\n" c.Circuit.row_height;
  Array.iter
    (fun (cl : Cell.t) ->
      Printf.fprintf oc "cell %s %.17g %.17g %s %d %d %.17g %.17g\n" cl.Cell.name
        cl.Cell.width cl.Cell.height (kind_to_string cl.Cell.kind)
        (if cl.Cell.fixed then 1 else 0)
        (if cl.Cell.sequential then 1 else 0)
        cl.Cell.delay cl.Cell.power)
    c.Circuit.cells;
  Array.iter
    (fun (n : Net.t) ->
      Printf.fprintf oc "net %s" n.Net.name;
      Array.iter
        (fun (p : Net.pin) ->
          Printf.fprintf oc " %d:%.17g:%.17g" p.Net.cell p.Net.dx p.Net.dy)
        n.Net.pins;
      output_char oc '\n')
    c.Circuit.nets

(* Wraps the result-returning readers: [Malformed] and the [Failure]s of
   the numeric conversions both become typed errors. *)
let reading f =
  match f () with
  | v -> Ok v
  | exception Malformed e -> Error e
  | exception Failure reason -> Error { file = None; line = None; reason }

let read_circuit_exn ic =
  let name = ref "" in
  let region = ref None in
  let row_height = ref None in
  let cells = ref [] and num_cells = ref 0 in
  let nets = ref [] and num_nets = ref 0 in
  let lineno = ref 0 in
  let fail msg = malformed ~line:!lineno msg in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       (* Any [Failure] of a conversion below carries this line. *)
       try
         match String.split_on_char ' ' (String.trim line) with
         | [ "" ] -> ()
         | "circuit" :: rest -> name := String.concat " " rest
         | [ "region"; a; b; c; d ] ->
           region :=
             Some
               (Geometry.Rect.make ~x_lo:(float_of_string a)
                  ~y_lo:(float_of_string b) ~x_hi:(float_of_string c)
                  ~y_hi:(float_of_string d))
         | [ "rowheight"; h ] -> row_height := Some (float_of_string h)
         | [ "cell"; nm; w; h; kind; fixed; seq; delay; power ] ->
           let cell =
             Cell.make ~id:!num_cells ~name:nm ~width:(float_of_string w)
               ~height:(float_of_string h) ~kind:(kind_of_string kind)
               ~fixed:(int_of_string fixed = 1)
               ~sequential:(int_of_string seq = 1)
               ~delay:(float_of_string delay) ~power:(float_of_string power) ()
           in
           cells := cell :: !cells;
           incr num_cells
         | "net" :: nm :: pins ->
           if pins = [] then fail "net with no pins";
           let parse_pin s =
             match String.split_on_char ':' s with
             | [ c; dx; dy ] ->
               { Net.cell = int_of_string c; dx = float_of_string dx;
                 dy = float_of_string dy }
             | _ -> fail ("bad pin: " ^ s)
           in
           let net =
             Net.make ~id:!num_nets ~name:nm
               (Array.of_list (List.map parse_pin pins))
           in
           nets := net :: !nets;
           incr num_nets
         | tok :: _ -> fail ("unknown directive: " ^ tok)
         | [] -> ()
       with Failure reason -> fail reason
     done
   with End_of_file -> ());
  let region =
    match !region with Some r -> r | None -> malformed "missing region"
  in
  let row_height =
    match !row_height with Some h -> h | None -> malformed "missing rowheight"
  in
  Circuit.make ~name:!name
    ~cells:(Array.of_list (List.rev !cells))
    ~nets:(Array.of_list (List.rev !nets))
    ~region ~row_height

let read_circuit ic = reading (fun () -> read_circuit_exn ic)

let write_placement oc (p : Placement.t) =
  Array.iteri
    (fun i x -> Printf.fprintf oc "pos %d %.17g %.17g\n" i x p.Placement.y.(i))
    p.Placement.x

let read_placement_exn ic ~num_cells =
  let x = Array.make num_cells 0. and y = Array.make num_cells 0. in
  let seen = Array.make num_cells false in
  let lineno = ref 0 in
  let fail msg = malformed ~line:!lineno msg in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       try
         match String.split_on_char ' ' (String.trim line) with
         | [ "" ] -> ()
         | [ "pos"; i; px; py ] ->
           let i = int_of_string i in
           if i < 0 || i >= num_cells then fail "cell index out of range";
           x.(i) <- float_of_string px;
           y.(i) <- float_of_string py;
           seen.(i) <- true
         | _ -> fail "malformed line"
       with Failure reason -> fail reason
     done
   with End_of_file -> ());
  Array.iteri
    (fun i s ->
      if not s then malformed (Printf.sprintf "missing cell %d" i))
    seen;
  { Placement.x; y }

let read_placement ic ~num_cells =
  reading (fun () -> read_placement_exn ic ~num_cells)

let with_out file f =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in file f =
  match open_in file with
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)
  | exception Sys_error reason ->
    Error { file = Some file; line = None; reason }

let in_file file = Result.map_error (fun e -> { e with file = Some file })

let save_circuit file c = with_out file (fun oc -> write_circuit oc c)

let load_circuit file = with_in file (fun ic -> in_file file (read_circuit ic))

let save_placement file p = with_out file (fun oc -> write_placement oc p)

let load_placement file ~num_cells =
  with_in file (fun ic -> in_file file (read_placement ic ~num_cells))
