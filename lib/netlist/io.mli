(** Plain-text serialisation of circuits and placements.

    A minimal line-oriented format so benchmark circuits and placements
    can be saved, diffed and reloaded:

    {v
    circuit <name>
    region <x_lo> <y_lo> <x_hi> <y_hi>
    rowheight <h>
    cell <name> <w> <h> <standard|block|pad> <fixed 0/1> <seq 0/1> <delay> <power>
    net <name> <cell>:<dx>:<dy> ...
    v}

    Cells are implicitly numbered in order of appearance; net pins refer to
    those numbers, first pin is the driver.

    Readers return a typed {!error} instead of raising, so front ends
    (the CLI, the serve protocol's [bad_spec] responses) can report a
    malformed file without catching exceptions. *)

type error = {
  file : string option;  (** source file, when reading from one *)
  line : int option;  (** 1-based line of the offending input *)
  reason : string;
}

(** [error_message e] — ["file:line: reason"] with the parts present. *)
val error_message : error -> string

(** [write_circuit oc circuit] prints the circuit. *)
val write_circuit : out_channel -> Circuit.t -> unit

(** [read_circuit ic] parses a circuit.  Malformed input is an [Error]
    carrying the line number. *)
val read_circuit : in_channel -> (Circuit.t, error) result

(** [write_placement oc placement] prints one [pos <id> <x> <y>] line per
    cell. *)
val write_placement : out_channel -> Placement.t -> unit

(** [read_placement ic ~num_cells] parses a placement with exactly
    [num_cells] entries. *)
val read_placement : in_channel -> num_cells:int -> (Placement.t, error) result

(** File-based conveniences.  The loaders also turn an unreadable file
    ([Sys_error]) into an [Error]. *)
val save_circuit : string -> Circuit.t -> unit

val load_circuit : string -> (Circuit.t, error) result

val save_placement : string -> Placement.t -> unit

val load_placement : string -> num_cells:int -> (Placement.t, error) result
