type error = { file : string; reason : string }

let error_message e = Printf.sprintf "%s: %s" e.file e.reason

(* Internal control flow; converted to [Error] in [load_aux].  Parse
   helpers raise bare [Failure]s (including the numeric conversions') and
   [guard] attributes them to the benchmark file being read. *)
exception Bs of error

let fail fmt = Printf.ksprintf failwith fmt

let guard file f =
  try f () with
  | Failure reason -> raise (Bs { file; reason })
  | Sys_error reason -> raise (Bs { file; reason })

let tokens line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let is_comment line =
  let t = String.trim line in
  String.length t = 0 || t.[0] = '#' || (String.length t >= 4 && String.sub t 0 4 = "UCLA")

let read_lines file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* --- .nodes --- *)

type node = { nname : string; w : float; h : float; terminal : bool }

let parse_nodes file =
  let nodes = ref [] in
  List.iter
    (fun line ->
      if not (is_comment line) then
        match tokens line with
        | [ "NumNodes"; ":"; _ ] | [ "NumTerminals"; ":"; _ ] -> ()
        | [ name; w; h ] ->
          nodes :=
            { nname = name; w = float_of_string w; h = float_of_string h;
              terminal = false }
            :: !nodes
        | [ name; w; h; "terminal" ] ->
          nodes :=
            { nname = name; w = float_of_string w; h = float_of_string h;
              terminal = true }
            :: !nodes
        | [] -> ()
        | tok :: _ -> fail "bad .nodes line near %S" tok)
    (read_lines file);
  List.rev !nodes

(* --- .scl --- *)

type row = { y : float; height : float; x_origin : float; x_end : float }

let parse_scl file =
  let rows = ref [] in
  let cur_y = ref None and cur_h = ref None in
  let cur_origin = ref None and cur_sites = ref None and cur_spacing = ref 1. in
  let flush () =
    match (!cur_y, !cur_h, !cur_origin, !cur_sites) with
    | Some y, Some height, Some x_origin, Some sites ->
      rows :=
        { y; height; x_origin; x_end = x_origin +. (sites *. !cur_spacing) }
        :: !rows;
      cur_y := None;
      cur_h := None;
      cur_origin := None;
      cur_sites := None;
      cur_spacing := 1.
    | _ -> ()
  in
  List.iter
    (fun line ->
      if not (is_comment line) then
        match tokens line with
        | "CoreRow" :: _ -> ()
        | [ "Coordinate"; ":"; v ] -> cur_y := Some (float_of_string v)
        | [ "Height"; ":"; v ] -> cur_h := Some (float_of_string v)
        | [ "Sitespacing"; ":"; v ] -> cur_spacing := float_of_string v
        | "SubrowOrigin" :: ":" :: origin :: rest ->
          cur_origin := Some (float_of_string origin);
          (match rest with
          | [ "NumSites"; ":"; n ] -> cur_sites := Some (float_of_string n)
          | _ -> ())
        | [ "NumSites"; ":"; n ] -> cur_sites := Some (float_of_string n)
        | [ "End" ] -> flush ()
        | _ -> ())
    (read_lines file);
  List.rev !rows

(* --- .pl --- *)

let parse_pl file =
  let places = Hashtbl.create 1024 in
  List.iter
    (fun line ->
      if not (is_comment line) then
        match tokens line with
        | name :: x :: y :: _ when name <> "NumNodes" ->
          Hashtbl.replace places name (float_of_string x, float_of_string y)
        | _ -> ())
    (read_lines file);
  places

(* --- .nets --- *)

type raw_net = { net_name : string; raw_pins : (string * bool * float * float) list }
(* (cell name, is_output/driver, dx, dy) *)

let parse_nets file =
  let nets = ref [] in
  let cur_name = ref "" and cur_pins = ref [] and cur_open = ref false in
  let flush () =
    if !cur_open then begin
      nets := { net_name = !cur_name; raw_pins = List.rev !cur_pins } :: !nets;
      cur_open := false;
      cur_pins := []
    end
  in
  List.iter
    (fun line ->
      if not (is_comment line) then
        match tokens line with
        | [ "NumNets"; ":"; _ ] | [ "NumPins"; ":"; _ ] -> ()
        | "NetDegree" :: ":" :: _ :: rest ->
          flush ();
          cur_open := true;
          cur_name :=
            (match rest with name :: _ -> name | [] -> Printf.sprintf "net%d" (List.length !nets))
        | name :: dir :: rest when !cur_open ->
          let dx, dy =
            match rest with
            | [ ":"; dx; dy ] -> (float_of_string dx, float_of_string dy)
            | [] -> (0., 0.)
            | _ -> fail "bad pin line for net %s" !cur_name
          in
          cur_pins := (name, dir = "O", dx, dy) :: !cur_pins
        | [] -> ()
        | tok :: _ -> fail "unexpected token %S" tok)
    (read_lines file);
  flush ();
  List.rev !nets

(* --- .aux --- *)

let parse_aux file =
  let dir = Filename.dirname file in
  let line =
    match List.filter (fun l -> String.trim l <> "") (read_lines file) with
    | [] -> fail "empty aux"
    | l :: _ -> l
  in
  let files = tokens line |> List.filter (fun t -> String.contains t '.') in
  let find ext =
    match List.find_opt (fun f -> Filename.check_suffix f ext) files with
    | Some f -> Filename.concat dir f
    | None -> fail "no %s file listed" ext
  in
  (find ".nodes", find ".nets", find ".pl", find ".scl")

let load_aux_exn aux_file =
  let nodes_f, nets_f, pl_f, scl_f =
    guard aux_file (fun () -> parse_aux aux_file)
  in
  let nodes = guard nodes_f (fun () -> parse_nodes nodes_f) in
  let rows = guard scl_f (fun () -> parse_scl scl_f) in
  if rows = [] then raise (Bs { file = scl_f; reason = "no core rows" });
  let row_height =
    match rows with r :: _ -> r.height | [] -> assert false
  in
  let x_lo = List.fold_left (fun a r -> Float.min a r.x_origin) Float.infinity rows in
  let x_hi = List.fold_left (fun a r -> Float.max a r.x_end) Float.neg_infinity rows in
  let y_lo = List.fold_left (fun a r -> Float.min a r.y) Float.infinity rows in
  let y_hi =
    List.fold_left (fun a r -> Float.max a (r.y +. r.height)) Float.neg_infinity rows
  in
  let region = Geometry.Rect.make ~x_lo ~y_lo ~x_hi ~y_hi in
  let places = guard pl_f (fun () -> parse_pl pl_f) in
  let id_of = Hashtbl.create (List.length nodes) in
  let core_row_area = row_height *. row_height in
  let cells =
    List.mapi
      (fun i n ->
        Hashtbl.replace id_of n.nname i;
        let kind =
          if not n.terminal then
            if n.h > 1.5 *. row_height then Cell.Block else Cell.Standard
          else if n.w *. n.h <= 4. *. core_row_area then Cell.Pad
          else Cell.Block
        in
        Cell.make ~id:i ~name:n.nname ~width:(Float.max n.w 1e-3)
          ~height:(Float.max n.h 1e-3) ~kind ~fixed:n.terminal ())
      nodes
    |> Array.of_list
  in
  let nets =
    guard nets_f (fun () ->
        let out = ref [] and count = ref 0 in
        List.iter
          (fun rn ->
            (* Driver first; dedupe exactly repeated pins. *)
            let resolve (name, drv, dx, dy) =
              match Hashtbl.find_opt id_of name with
              | Some id -> (id, drv, dx, dy)
              | None ->
                fail "net %s references unknown node %s" rn.net_name name
            in
            let pins = List.map resolve rn.raw_pins in
            let drivers, sinks = List.partition (fun (_, d, _, _) -> d) pins in
            let ordered = drivers @ sinks in
            let seen = Hashtbl.create 8 in
            let uniq =
              List.filter
                (fun (id, _, dx, dy) ->
                  if Hashtbl.mem seen (id, dx, dy) then false
                  else begin
                    Hashtbl.add seen (id, dx, dy) ();
                    true
                  end)
                ordered
            in
            if List.length uniq >= 2 then begin
              let pins =
                List.map (fun (id, _, dx, dy) -> { Net.cell = id; dx; dy }) uniq
                |> Array.of_list
              in
              out := Net.make ~id:!count ~name:rn.net_name pins :: !out;
              incr count
            end)
          (parse_nets nets_f);
        Array.of_list (List.rev !out))
  in
  let circuit =
    Circuit.make
      ~name:(Filename.remove_extension (Filename.basename aux_file))
      ~cells ~nets ~region ~row_height
  in
  let cx, cy = Geometry.Rect.center region in
  let placement =
    {
      Placement.x = Array.make (Array.length cells) cx;
      y = Array.make (Array.length cells) cy;
    }
  in
  Array.iteri
    (fun i (cl : Cell.t) ->
      match Hashtbl.find_opt places cl.Cell.name with
      | Some (llx, lly) ->
        placement.Placement.x.(i) <- llx +. (cl.Cell.width /. 2.);
        placement.Placement.y.(i) <- lly +. (cl.Cell.height /. 2.)
      | None -> ())
    cells;
  (circuit, placement)

let load_aux aux_file =
  match load_aux_exn aux_file with
  | v -> Ok v
  | exception Bs e -> Error e
  | exception Failure reason -> Error { file = aux_file; reason }
  | exception Sys_error reason -> Error { file = aux_file; reason }

let save basename (c : Circuit.t) (p : Placement.t) =
  let write file f =
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  in
  let base = Filename.basename basename in
  write (basename ^ ".aux") (fun oc ->
      Printf.fprintf oc "RowBasedPlacement : %s.nodes %s.nets %s.pl %s.scl\n" base
        base base base);
  let terminals =
    Array.fold_left
      (fun acc (cl : Cell.t) -> if cl.Cell.fixed then acc + 1 else acc)
      0 c.Circuit.cells
  in
  write (basename ^ ".nodes") (fun oc ->
      Printf.fprintf oc "UCLA nodes 1.0\n\nNumNodes : %d\nNumTerminals : %d\n"
        (Circuit.num_cells c) terminals;
      Array.iter
        (fun (cl : Cell.t) ->
          Printf.fprintf oc "  %s %g %g%s\n" cl.Cell.name
            cl.Cell.width cl.Cell.height
            (if cl.Cell.fixed then " terminal" else ""))
        c.Circuit.cells);
  write (basename ^ ".nets") (fun oc ->
      let pins =
        Array.fold_left
          (fun acc net -> acc + Net.degree net)
          0 c.Circuit.nets
      in
      Printf.fprintf oc "UCLA nets 1.0\n\nNumNets : %d\nNumPins : %d\n"
        (Circuit.num_nets c) pins;
      Array.iter
        (fun (net : Net.t) ->
          Printf.fprintf oc "NetDegree : %d  %s\n" (Net.degree net)
            net.Net.name;
          Array.iteri
            (fun k (pin : Net.pin) ->
              Printf.fprintf oc "  %s %s : %g %g\n"
                c.Circuit.cells.(pin.Net.cell).Cell.name
                (if k = 0 then "O" else "I")
                pin.Net.dx pin.Net.dy)
            net.Net.pins)
        c.Circuit.nets);
  write (basename ^ ".pl") (fun oc ->
      Printf.fprintf oc "UCLA pl 1.0\n\n";
      Array.iteri
        (fun i (cl : Cell.t) ->
          Printf.fprintf oc "%s %g %g : N%s\n" cl.Cell.name
            (p.Placement.x.(i) -. (cl.Cell.width /. 2.))
            (p.Placement.y.(i) -. (cl.Cell.height /. 2.))
            (if cl.Cell.fixed then " /FIXED" else ""))
        c.Circuit.cells);
  write (basename ^ ".scl") (fun oc ->
      let region = c.Circuit.region in
      let nrows = Circuit.num_rows c in
      Printf.fprintf oc "UCLA scl 1.0\n\nNumRows : %d\n" nrows;
      for r = 0 to nrows - 1 do
        Printf.fprintf oc
          "CoreRow Horizontal\n  Coordinate : %g\n  Height : %g\n  Sitewidth : 1\n  Sitespacing : 1\n  Siteorient : 1\n  Sitesymmetry : 1\n  SubrowOrigin : %g  NumSites : %d\nEnd\n"
          (region.Geometry.Rect.y_lo +. (float_of_int r *. c.Circuit.row_height))
          c.Circuit.row_height region.Geometry.Rect.x_lo
          (int_of_float (Geometry.Rect.width region))
      done)
