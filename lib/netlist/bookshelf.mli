(** UCLA Bookshelf placement format (subset).

    The de-facto exchange format of academic placement benchmarks
    (ISPD / ICCAD contests, the GSRC bookshelf).  Supported files:

    - [.nodes] — cell names, dimensions, movability ([terminal] = fixed);
    - [.nets]  — hyperedges with pin offsets ([NetDegree] blocks);
    - [.pl]    — cell locations (lower-left corner) and orientation;
    - [.scl]   — core rows (uniform height; the row structure defines the
      placement region);
    - [.aux]   — the index file naming the others.

    Orientation tokens are parsed but ignored (cells are modelled
    unrotated); weights files are not read.  Writing emits the same
    subset, so circuits round-trip. *)

type error = {
  file : string;  (** the benchmark file the problem was found in *)
  reason : string;
}

(** [error_message e] — ["file: reason"]. *)
val error_message : error -> string

(** [load_aux file] reads a benchmark through its [.aux] index and
    returns the circuit plus the placement from the [.pl] file (cells
    without coordinates sit at the region centre).  Malformed or
    unreadable input is a typed [Error], never an exception. *)
val load_aux : string -> (Circuit.t * Placement.t, error) result

(** [save basename circuit placement] writes [basename.aux],
    [basename.nodes], [basename.nets], [basename.pl] and
    [basename.scl]. *)
val save : string -> Circuit.t -> Placement.t -> unit
