type edge = {
  pin_a : Netlist.Net.pin;
  pin_b : Netlist.Net.pin;
  weight : float;
}

let total_weight k = float_of_int (k - 1) /. 2.

let iter_clique pins f =
  let k = Array.length pins in
  let w = 1. /. float_of_int k in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      f pins.(i) pins.(j) w
    done
  done

let iter_sampled rng pins f =
  let k = Array.length pins in
  (* Cycle through all pins guarantees connectivity; add k random chords
     for stiffness diversity.  Duplicate chords are harmless (weights
     sum).  The edge weight needs the final count, so buffer the index
     pairs (at most 2k of them) before emitting. *)
  let order = Array.init k Fun.id in
  Numeric.Rng.shuffle rng order;
  let ia = Array.make (2 * k) 0 and ib = Array.make (2 * k) 0 in
  let m = ref 0 in
  let add i j =
    ia.(!m) <- i;
    ib.(!m) <- j;
    incr m
  in
  for i = 0 to k - 1 do
    add order.(i) order.((i + 1) mod k)
  done;
  for _ = 1 to k do
    let i = Numeric.Rng.int rng k in
    let j = Numeric.Rng.int rng k in
    if i <> j then add i j
  done;
  let w = total_weight k /. float_of_int !m in
  for p = 0 to !m - 1 do
    f pins.(ia.(p)) pins.(ib.(p)) w
  done

let iter_edges ?(cap = 16) ?rng (net : Netlist.Net.t) f =
  let pins = net.Netlist.Net.pins in
  if Array.length pins <= cap then iter_clique pins f
  else begin
    let rng =
      match rng with
      | Some r -> r
      | None -> Numeric.Rng.create (net.Netlist.Net.id + 7919)
    in
    iter_sampled rng pins f
  end

let edges ?cap ?rng (net : Netlist.Net.t) =
  let acc = ref [] in
  iter_edges ?cap ?rng net (fun pin_a pin_b weight ->
      acc := { pin_a; pin_b; weight } :: !acc);
  List.rev !acc
