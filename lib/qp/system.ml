type t = {
  circuit : Netlist.Circuit.t;
  var_of_cell : int array; (* -1 for fixed cells *)
  cell_of_var : int array;
  n_movable : int;
  mx : Numeric.Sparse.t; (* x-axis matrix *)
  my : Numeric.Sparse.t; (* y-axis matrix (== mx for the clique model) *)
  dx : float array; (* constant term of the x system *)
  dy : float array;
  mean_edge_weight : float;
  (* Jacobi preconditioners, owned by the assembly and computed in the
     numeric phase (plain arrays — Lazy is not domain-safe).  [None]
     marks a non-positive diagonal; the error surfaces at solve time so
     building a never-solved singular system stays error-free. *)
  inv_dx : float array option;
  inv_dy : float array option;
}

type net_model = Clique | Bound2bound

let index_map (c : Netlist.Circuit.t) =
  let n = Netlist.Circuit.num_cells c in
  let var_of_cell = Array.make n (-1) in
  let count = ref 0 in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if Netlist.Cell.movable cl then begin
        var_of_cell.(cl.Netlist.Cell.id) <- !count;
        incr count
      end)
    c.Netlist.Circuit.cells;
  (var_of_cell, !count)

(* One matrix side of a cached assembly: triplet builder, incident-weight
   scratch, and the frozen symbolic pattern from the previous pass. *)
type axis = {
  ab : Numeric.Sparse.builder;
  incident : float array;
  mutable pat : Numeric.Sparse.pattern option;
  mutable total_w : float;
  mutable n_edges : int;
}

type assembly = {
  a_circuit : Netlist.Circuit.t;
  a_model : net_model;
  a_cap : int;
  a_var_of_cell : int array;
  a_cell_of_var : int array;
  a_n : int;
  axx : axis; (* the only matrix under Clique — the axes share C *)
  axy : axis option; (* Some only under Bound2bound *)
  adx : float array; (* d-vector scratch, aliased by the emitted {!t} *)
  ady : float array;
  inv_x : float array; (* preconditioner storage *)
  inv_y : float array; (* == inv_x under Clique *)
  mutable reused : int;
  mutable pattern_rebuilds : int;
}

let make_axis n =
  {
    ab = Numeric.Sparse.builder n;
    incident = Array.make n 0.;
    pat = None;
    total_w = 0.;
    n_edges = 0;
  }

let assembly (c : Netlist.Circuit.t) ?(clique_cap = 16) ?(model = Clique) () =
  let var_of_cell, n = index_map c in
  let cell_of_var = Array.make (max 1 n) 0 in
  Array.iteri (fun id v -> if v >= 0 then cell_of_var.(v) <- id) var_of_cell;
  let inv_x = Array.make n 0. in
  {
    a_circuit = c;
    a_model = model;
    a_cap = clique_cap;
    a_var_of_cell = var_of_cell;
    a_cell_of_var = cell_of_var;
    a_n = n;
    axx = make_axis n;
    axy = (match model with Clique -> None | Bound2bound -> Some (make_axis n));
    adx = Array.make n 0.;
    ady = Array.make n 0.;
    inv_x;
    inv_y = (match model with Clique -> inv_x | Bound2bound -> Array.make n 0.);
    reused = 0;
    pattern_rebuilds = 0;
  }

let assembly_stats asm = (asm.reused, asm.pattern_rebuilds)

let reset_axis a n =
  Numeric.Sparse.clear a.ab;
  Array.fill a.incident 0 n 0.;
  a.total_w <- 0.;
  a.n_edges <- 0

(* One spring term w · (pa_pos − pb_pos)² along one axis, where pos =
   cell coordinate + pin offset (or an absolute position for fixed
   cells).  Contributions follow the half-gradient convention (the common
   factor 2 is dropped throughout). *)
let add_axis_edge a d ~var_of_cell ~off_a ~off_b ~abs_a ~abs_b ~cell_a ~cell_b w =
  if w > 0. && cell_a <> cell_b then begin
    a.total_w <- a.total_w +. w;
    a.n_edges <- a.n_edges + 1;
    let va = var_of_cell.(cell_a) and vb = var_of_cell.(cell_b) in
    match (va >= 0, vb >= 0) with
    | true, true ->
      a.incident.(va) <- a.incident.(va) +. w;
      a.incident.(vb) <- a.incident.(vb) +. w;
      Numeric.Sparse.add_diag a.ab va w;
      Numeric.Sparse.add_diag a.ab vb w;
      Numeric.Sparse.add_sym a.ab va vb (-.w);
      d.(va) <- d.(va) +. (w *. (off_a -. off_b));
      d.(vb) <- d.(vb) +. (w *. (off_b -. off_a))
    | true, false ->
      a.incident.(va) <- a.incident.(va) +. w;
      Numeric.Sparse.add_diag a.ab va w;
      d.(va) <- d.(va) +. (w *. (off_a -. abs_b))
    | false, true ->
      a.incident.(vb) <- a.incident.(vb) +. w;
      Numeric.Sparse.add_diag a.ab vb w;
      d.(vb) <- d.(vb) +. (w *. (off_b -. abs_a))
    | false, false -> ()
  end

(* Clique weights are axis-independent, so the matrix term is emitted
   once into the shared builder and only the constant terms split between
   the x and y systems — this halves the matrix-assembly work. *)
let add_shared_edge a dx dy ~var_of_cell ~(pa : Netlist.Net.pin)
    ~(pb : Netlist.Net.pin) ~abs_xa ~abs_xb ~abs_ya ~abs_yb w =
  if w > 0. && pa.Netlist.Net.cell <> pb.Netlist.Net.cell then begin
    a.total_w <- a.total_w +. w;
    a.n_edges <- a.n_edges + 1;
    let va = var_of_cell.(pa.Netlist.Net.cell)
    and vb = var_of_cell.(pb.Netlist.Net.cell) in
    match (va >= 0, vb >= 0) with
    | true, true ->
      a.incident.(va) <- a.incident.(va) +. w;
      a.incident.(vb) <- a.incident.(vb) +. w;
      Numeric.Sparse.add_diag a.ab va w;
      Numeric.Sparse.add_diag a.ab vb w;
      Numeric.Sparse.add_sym a.ab va vb (-.w);
      dx.(va) <- dx.(va) +. (w *. (pa.Netlist.Net.dx -. pb.Netlist.Net.dx));
      dx.(vb) <- dx.(vb) +. (w *. (pb.Netlist.Net.dx -. pa.Netlist.Net.dx));
      dy.(va) <- dy.(va) +. (w *. (pa.Netlist.Net.dy -. pb.Netlist.Net.dy));
      dy.(vb) <- dy.(vb) +. (w *. (pb.Netlist.Net.dy -. pa.Netlist.Net.dy))
    | true, false ->
      a.incident.(va) <- a.incident.(va) +. w;
      Numeric.Sparse.add_diag a.ab va w;
      dx.(va) <- dx.(va) +. (w *. (pa.Netlist.Net.dx -. abs_xb));
      dy.(va) <- dy.(va) +. (w *. (pa.Netlist.Net.dy -. abs_yb))
    | false, true ->
      a.incident.(vb) <- a.incident.(vb) +. w;
      Numeric.Sparse.add_diag a.ab vb w;
      dx.(vb) <- dx.(vb) +. (w *. (pb.Netlist.Net.dx -. abs_xa));
      dy.(vb) <- dy.(vb) +. (w *. (pb.Netlist.Net.dy -. abs_ya))
    | false, false -> ()
  end

let rebuild (asm : assembly) ~(placement : Netlist.Placement.t) ~net_weights
    ~edge_scale ?(anchor_weight = 1e-6) ?(hold = 0.) ?hold_at () =
  let c = asm.a_circuit in
  if Array.length net_weights <> Netlist.Circuit.num_nets c then
    invalid_arg "System.rebuild: net_weights length mismatch";
  let n = asm.a_n in
  let var_of_cell = asm.a_var_of_cell in
  reset_axis asm.axx n;
  (match asm.axy with Some a -> reset_axis a n | None -> ());
  Array.fill asm.adx 0 n 0.;
  Array.fill asm.ady 0 n 0.;
  let px = placement.Netlist.Placement.x
  and py = placement.Netlist.Placement.y in
  let pin_x (p : Netlist.Net.pin) = px.(p.Netlist.Net.cell) +. p.Netlist.Net.dx in
  let pin_y (p : Netlist.Net.pin) = py.(p.Netlist.Net.cell) +. p.Netlist.Net.dy in
  (match asm.a_model with
  | Clique ->
    let emit net_w (pa : Netlist.Net.pin) (pb : Netlist.Net.pin) w_raw =
      let dist =
        sqrt (((pin_x pa -. pin_x pb) ** 2.) +. ((pin_y pa -. pin_y pb) ** 2.))
      in
      let w = w_raw *. net_w *. edge_scale ~dist in
      add_shared_edge asm.axx asm.adx asm.ady ~var_of_cell ~pa ~pb
        ~abs_xa:(pin_x pa) ~abs_xb:(pin_x pb) ~abs_ya:(pin_y pa)
        ~abs_yb:(pin_y pb) w
    in
    Array.iter
      (fun (net : Netlist.Net.t) ->
        let w = net_weights.(net.Netlist.Net.id) in
        if w > 0. then Model.iter_edges ~cap:asm.a_cap net (emit w))
      c.Netlist.Circuit.nets
  | Bound2bound ->
    let ay = match asm.axy with Some a -> a | None -> assert false in
    Array.iter
      (fun (net : Netlist.Net.t) ->
        let net_w = net_weights.(net.Netlist.Net.id) in
        if net_w > 0. then begin
          B2b.iter_edges ~coord:pin_x net (fun pa pb w ->
              add_axis_edge asm.axx asm.adx ~var_of_cell
                ~off_a:pa.Netlist.Net.dx ~off_b:pb.Netlist.Net.dx
                ~abs_a:(pin_x pa) ~abs_b:(pin_x pb)
                ~cell_a:pa.Netlist.Net.cell ~cell_b:pb.Netlist.Net.cell
                (w *. net_w));
          B2b.iter_edges ~coord:pin_y net (fun pa pb w ->
              add_axis_edge ay asm.ady ~var_of_cell
                ~off_a:pa.Netlist.Net.dy ~off_b:pb.Netlist.Net.dy
                ~abs_a:(pin_y pa) ~abs_b:(pin_y pb)
                ~cell_a:pa.Netlist.Net.cell ~cell_b:pb.Netlist.Net.cell
                (w *. net_w))
        end)
      c.Netlist.Circuit.nets);
  (* Anchor springs to the region centre, scaled off the mean edge
     weight so the relative strength is size-independent. *)
  let mean_w =
    match asm.axy with
    | None ->
      if asm.axx.n_edges = 0 then 1.
      else asm.axx.total_w /. float_of_int asm.axx.n_edges
    | Some ay ->
      let ne = asm.axx.n_edges + ay.n_edges in
      if ne = 0 then 1.
      else (asm.axx.total_w +. ay.total_w) /. float_of_int ne
  in
  let aw = anchor_weight *. mean_w in
  let cx, cy = Geometry.Rect.center c.Netlist.Circuit.region in
  (match asm.axy with
  | None ->
    for v = 0 to n - 1 do
      Numeric.Sparse.add_diag asm.axx.ab v aw;
      asm.adx.(v) <- asm.adx.(v) -. (aw *. cx);
      asm.ady.(v) <- asm.ady.(v) -. (aw *. cy)
    done
  | Some ay ->
    for v = 0 to n - 1 do
      Numeric.Sparse.add_diag asm.axx.ab v aw;
      asm.adx.(v) <- asm.adx.(v) -. (aw *. cx);
      Numeric.Sparse.add_diag ay.ab v aw;
      asm.ady.(v) <- asm.ady.(v) -. (aw *. cy)
    done);
  (* Hold springs: damp the step by pulling each cell toward where it is
     now, in proportion to its own connectivity stiffness. *)
  if hold > 0. then begin
    let hx, hy =
      match hold_at with
      | Some (hp : Netlist.Placement.t) ->
        (hp.Netlist.Placement.x, hp.Netlist.Placement.y)
      | None -> (px, py)
    in
    match asm.axy with
    | None ->
      for v = 0 to n - 1 do
        let hw = hold *. Float.max asm.axx.incident.(v) mean_w in
        Numeric.Sparse.add_diag asm.axx.ab v hw;
        asm.adx.(v) <- asm.adx.(v) -. (hw *. hx.(asm.a_cell_of_var.(v)));
        asm.ady.(v) <- asm.ady.(v) -. (hw *. hy.(asm.a_cell_of_var.(v)))
      done
    | Some ay ->
      for v = 0 to n - 1 do
        let hwx = hold *. Float.max asm.axx.incident.(v) mean_w in
        Numeric.Sparse.add_diag asm.axx.ab v hwx;
        asm.adx.(v) <- asm.adx.(v) -. (hwx *. hx.(asm.a_cell_of_var.(v)));
        let hwy = hold *. Float.max ay.incident.(v) mean_w in
        Numeric.Sparse.add_diag ay.ab v hwy;
        asm.ady.(v) <- asm.ady.(v) -. (hwy *. hy.(asm.a_cell_of_var.(v)))
      done
  end;
  (* Numeric freeze: replay values through the cached pattern when the
     triplet stream is structurally unchanged, otherwise pay one symbolic
     compile and cache the new pattern.  The clique model never recompiles
     after the first transformation; B2B does whenever a net's boundary
     pins change hands. *)
  let freeze (a : axis) =
    match a.pat with
    | Some pat when Numeric.Sparse.pattern_matches pat a.ab ->
      (true, Numeric.Sparse.refill pat a.ab)
    | _ ->
      let pat, m = Numeric.Sparse.compile a.ab in
      a.pat <- Some pat;
      (false, m)
  in
  let (hit_x, mx), ry =
    Obs.Timer.time "qp/refill" (fun () ->
        let rx = freeze asm.axx in
        let ry = Option.map freeze asm.axy in
        (rx, ry))
  in
  let hit, my =
    match ry with
    | None -> (hit_x, mx)
    | Some (hit_y, my) -> (hit_x && hit_y, my)
  in
  if hit then asm.reused <- asm.reused + 1
  else asm.pattern_rebuilds <- asm.pattern_rebuilds + 1;
  let inv_dx =
    if Numeric.Cg.inv_diagonal_into mx asm.inv_x then Some asm.inv_x else None
  in
  let inv_dy =
    match asm.axy with
    | None -> inv_dx
    | Some _ ->
      if Numeric.Cg.inv_diagonal_into my asm.inv_y then Some asm.inv_y
      else None
  in
  {
    circuit = c;
    var_of_cell;
    cell_of_var = asm.a_cell_of_var;
    n_movable = n;
    mx;
    my;
    dx = asm.adx;
    dy = asm.ady;
    mean_edge_weight = mean_w;
    inv_dx;
    inv_dy;
  }

let build (c : Netlist.Circuit.t) ~placement ~net_weights ~edge_scale
    ?(clique_cap = 16) ?(anchor_weight = 1e-6) ?(hold = 0.) ?hold_at
    ?(model = Clique) () =
  let asm = assembly c ~clique_cap ~model () in
  rebuild asm ~placement ~net_weights ~edge_scale ~anchor_weight ~hold ?hold_at
    ()

let mean_edge_weight t = t.mean_edge_weight

let num_movable t = t.n_movable

let variable_of_cell t id =
  let v = t.var_of_cell.(id) in
  if v >= 0 then Some v else None

let matrix t = t.mx

let gather t (p : Netlist.Placement.t) =
  let x0 = Array.make t.n_movable 0. and y0 = Array.make t.n_movable 0. in
  for v = 0 to t.n_movable - 1 do
    x0.(v) <- p.Netlist.Placement.x.(t.cell_of_var.(v));
    y0.(v) <- p.Netlist.Placement.y.(t.cell_of_var.(v))
  done;
  (x0, y0)

let solve ?tol t ~(placement : Netlist.Placement.t) ~ex ~ey =
  if Array.length ex <> t.n_movable || Array.length ey <> t.n_movable then
    invalid_arg "System.solve: force vector length mismatch";
  let x0, y0 = gather t placement in
  (* C·p + d + e = 0  ⇔  C·p = −(d + e). *)
  let rhs d e = Numeric.Parallel.parallel_map2 (fun dv ev -> -.(dv +. ev)) d e in
  let bx = rhs t.dx ex and by = rhs t.dy ey in
  (* A [None] preconditioner means the assembly saw a non-positive
     diagonal; re-derive it here so the canonical Cg error surfaces at
     solve time, exactly as the old lazy computation did. *)
  let force m = function
    | Some d -> d
    | None -> Numeric.Cg.inv_diagonal m
  in
  let inv_dx = force t.mx t.inv_dx and inv_dy = force t.my t.inv_dy in
  (* The axes are independent SPD systems; solve them concurrently. *)
  let (x, sx), (y, sy) =
    Obs.Timer.time "qp/solve" (fun () ->
        Numeric.Parallel.both
          (fun () -> Numeric.Cg.solve ?tol ~x0 ~inv_diag:inv_dx t.mx bx)
          (fun () -> Numeric.Cg.solve ?tol ~x0:y0 ~inv_diag:inv_dy t.my by))
  in
  if Obs.Registry.enabled () then begin
    Obs.Registry.observe "qp/cg_iterations"
      (float_of_int (sx.Numeric.Cg.iterations + sy.Numeric.Cg.iterations));
    Obs.Registry.observe "qp/cg_residual"
      (Float.max sx.Numeric.Cg.residual sy.Numeric.Cg.residual)
  end;
  for v = 0 to t.n_movable - 1 do
    placement.Netlist.Placement.x.(t.cell_of_var.(v)) <- x.(v);
    placement.Netlist.Placement.y.(t.cell_of_var.(v)) <- y.(v)
  done;
  (sx, sy)

let residual_force t ~placement ~ex ~ey =
  let x0, y0 = gather t placement in
  let rx = Array.make t.n_movable 0. and ry = Array.make t.n_movable 0. in
  Numeric.Sparse.mul t.mx x0 rx;
  Numeric.Sparse.mul t.my y0 ry;
  let acc = ref 0. in
  for v = 0 to t.n_movable - 1 do
    let fx = rx.(v) +. t.dx.(v) +. ex.(v) in
    let fy = ry.(v) +. t.dy.(v) +. ey.(v) in
    acc := Float.max !acc (Float.max (Float.abs fx) (Float.abs fy))
  done;
  !acc
