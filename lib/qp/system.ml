type t = {
  circuit : Netlist.Circuit.t;
  var_of_cell : int array; (* -1 for fixed cells *)
  cell_of_var : int array;
  n_movable : int;
  mx : Numeric.Sparse.t; (* x-axis matrix *)
  my : Numeric.Sparse.t; (* y-axis matrix (== mx for the clique model) *)
  dx : float array; (* constant term of the x system *)
  dy : float array;
  mean_edge_weight : float;
  (* Jacobi preconditioners, computed once per assembly and shared by
     every solve against this system (hooks re-solve; lazy so building a
     system that is never solved stays cheap and error-free). *)
  inv_dx : float array Lazy.t;
  inv_dy : float array Lazy.t;
}

type net_model = Clique | Bound2bound

let index_map (c : Netlist.Circuit.t) =
  let n = Netlist.Circuit.num_cells c in
  let var_of_cell = Array.make n (-1) in
  let count = ref 0 in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if Netlist.Cell.movable cl then begin
        var_of_cell.(cl.Netlist.Cell.id) <- !count;
        incr count
      end)
    c.Netlist.Circuit.cells;
  (var_of_cell, !count)

(* Assembly state for one axis. *)
type axis_builder = {
  b : Numeric.Sparse.builder;
  d : float array;
  incident : float array;
  mutable total_w : float;
  mutable n_edges : int;
}

let axis_builder n =
  {
    b = Numeric.Sparse.builder n;
    d = Array.make n 0.;
    incident = Array.make n 0.;
    total_w = 0.;
    n_edges = 0;
  }

(* One spring term w · (pa_pos − pb_pos)² along one axis, where pos =
   cell coordinate + pin offset (or an absolute position for fixed
   cells).  Contributions follow the half-gradient convention (the common
   factor 2 is dropped throughout). *)
let add_axis_edge ab ~var_of_cell ~off_a ~off_b ~abs_a ~abs_b ~cell_a ~cell_b w =
  if w > 0. && cell_a <> cell_b then begin
    ab.total_w <- ab.total_w +. w;
    ab.n_edges <- ab.n_edges + 1;
    let va = var_of_cell.(cell_a) and vb = var_of_cell.(cell_b) in
    match (va >= 0, vb >= 0) with
    | true, true ->
      ab.incident.(va) <- ab.incident.(va) +. w;
      ab.incident.(vb) <- ab.incident.(vb) +. w;
      Numeric.Sparse.add_diag ab.b va w;
      Numeric.Sparse.add_diag ab.b vb w;
      Numeric.Sparse.add_sym ab.b va vb (-.w);
      ab.d.(va) <- ab.d.(va) +. (w *. (off_a -. off_b));
      ab.d.(vb) <- ab.d.(vb) +. (w *. (off_b -. off_a))
    | true, false ->
      ab.incident.(va) <- ab.incident.(va) +. w;
      Numeric.Sparse.add_diag ab.b va w;
      ab.d.(va) <- ab.d.(va) +. (w *. (off_a -. abs_b))
    | false, true ->
      ab.incident.(vb) <- ab.incident.(vb) +. w;
      Numeric.Sparse.add_diag ab.b vb w;
      ab.d.(vb) <- ab.d.(vb) +. (w *. (off_b -. abs_a))
    | false, false -> ()
  end

let build (c : Netlist.Circuit.t) ~(placement : Netlist.Placement.t)
    ~net_weights ~edge_scale ?(clique_cap = 16) ?(anchor_weight = 1e-6)
    ?(hold = 0.) ?hold_at ?(model = Clique) () =
  if Array.length net_weights <> Netlist.Circuit.num_nets c then
    invalid_arg "System.build: net_weights length mismatch";
  let var_of_cell, n_movable = index_map c in
  let cell_of_var = Array.make (max 1 n_movable) 0 in
  Array.iteri (fun id v -> if v >= 0 then cell_of_var.(v) <- id) var_of_cell;
  let px = placement.Netlist.Placement.x and py = placement.Netlist.Placement.y in
  let abx = axis_builder n_movable and aby = axis_builder n_movable in
  let pin_x (p : Netlist.Net.pin) = px.(p.Netlist.Net.cell) +. p.Netlist.Net.dx in
  let pin_y (p : Netlist.Net.pin) = py.(p.Netlist.Net.cell) +. p.Netlist.Net.dy in
  let emit_both net_w (pa : Netlist.Net.pin) (pb : Netlist.Net.pin) w_raw =
    let dist =
      sqrt (((pin_x pa -. pin_x pb) ** 2.) +. ((pin_y pa -. pin_y pb) ** 2.))
    in
    let w = w_raw *. net_w *. edge_scale ~dist in
    add_axis_edge abx ~var_of_cell ~off_a:pa.Netlist.Net.dx ~off_b:pb.Netlist.Net.dx
      ~abs_a:(pin_x pa) ~abs_b:(pin_x pb) ~cell_a:pa.Netlist.Net.cell
      ~cell_b:pb.Netlist.Net.cell w;
    add_axis_edge aby ~var_of_cell ~off_a:pa.Netlist.Net.dy ~off_b:pb.Netlist.Net.dy
      ~abs_a:(pin_y pa) ~abs_b:(pin_y pb) ~cell_a:pa.Netlist.Net.cell
      ~cell_b:pb.Netlist.Net.cell w
  in
  let emit_axis ab ~coord ~off ~abs_pos net_w (e : B2b.edge) =
    ignore coord;
    let w = e.B2b.weight *. net_w in
    add_axis_edge ab ~var_of_cell ~off_a:(off e.B2b.pin_a) ~off_b:(off e.B2b.pin_b)
      ~abs_a:(abs_pos e.B2b.pin_a) ~abs_b:(abs_pos e.B2b.pin_b)
      ~cell_a:e.B2b.pin_a.Netlist.Net.cell ~cell_b:e.B2b.pin_b.Netlist.Net.cell w
  in
  Array.iter
    (fun (net : Netlist.Net.t) ->
      let w = net_weights.(net.Netlist.Net.id) in
      if w > 0. then
        match model with
        | Clique ->
          List.iter
            (fun (e : Model.edge) -> emit_both w e.Model.pin_a e.Model.pin_b e.Model.weight)
            (Model.edges ~cap:clique_cap net)
        | Bound2bound ->
          List.iter
            (emit_axis abx ~coord:pin_x ~off:(fun p -> p.Netlist.Net.dx) ~abs_pos:pin_x w)
            (B2b.edges ~coord:pin_x net);
          List.iter
            (emit_axis aby ~coord:pin_y ~off:(fun p -> p.Netlist.Net.dy) ~abs_pos:pin_y w)
            (B2b.edges ~coord:pin_y net))
    c.Netlist.Circuit.nets;
  (* Anchor springs to the region centre, scaled off the mean edge
     weight so the relative strength is size-independent. *)
  let total_edges = abx.n_edges + aby.n_edges in
  let mean_w =
    if total_edges = 0 then 1.
    else (abx.total_w +. aby.total_w) /. float_of_int total_edges
  in
  let aw = anchor_weight *. mean_w in
  let cx, cy = Geometry.Rect.center c.Netlist.Circuit.region in
  for v = 0 to n_movable - 1 do
    Numeric.Sparse.add_diag abx.b v aw;
    abx.d.(v) <- abx.d.(v) -. (aw *. cx);
    Numeric.Sparse.add_diag aby.b v aw;
    aby.d.(v) <- aby.d.(v) -. (aw *. cy)
  done;
  (* Hold springs: damp the step by pulling each cell toward where it is
     now, in proportion to its own connectivity stiffness. *)
  if hold > 0. then begin
    let hx, hy =
      match hold_at with
      | Some (hp : Netlist.Placement.t) ->
        (hp.Netlist.Placement.x, hp.Netlist.Placement.y)
      | None -> (px, py)
    in
    for v = 0 to n_movable - 1 do
      let hwx = hold *. Float.max abx.incident.(v) mean_w in
      Numeric.Sparse.add_diag abx.b v hwx;
      abx.d.(v) <- abx.d.(v) -. (hwx *. hx.(cell_of_var.(v)));
      let hwy = hold *. Float.max aby.incident.(v) mean_w in
      Numeric.Sparse.add_diag aby.b v hwy;
      aby.d.(v) <- aby.d.(v) -. (hwy *. hy.(cell_of_var.(v)))
    done
  end;
  let mx = Numeric.Sparse.finalize abx.b in
  let my = Numeric.Sparse.finalize aby.b in
  {
    circuit = c;
    var_of_cell;
    cell_of_var;
    n_movable;
    mx;
    my;
    dx = abx.d;
    dy = aby.d;
    mean_edge_weight = mean_w;
    inv_dx = lazy (Numeric.Cg.inv_diagonal mx);
    inv_dy = lazy (Numeric.Cg.inv_diagonal my);
  }

let mean_edge_weight t = t.mean_edge_weight

let num_movable t = t.n_movable

let variable_of_cell t id =
  let v = t.var_of_cell.(id) in
  if v >= 0 then Some v else None

let matrix t = t.mx

let gather t (p : Netlist.Placement.t) =
  let x0 = Array.make t.n_movable 0. and y0 = Array.make t.n_movable 0. in
  for v = 0 to t.n_movable - 1 do
    x0.(v) <- p.Netlist.Placement.x.(t.cell_of_var.(v));
    y0.(v) <- p.Netlist.Placement.y.(t.cell_of_var.(v))
  done;
  (x0, y0)

let solve t ~(placement : Netlist.Placement.t) ~ex ~ey =
  if Array.length ex <> t.n_movable || Array.length ey <> t.n_movable then
    invalid_arg "System.solve: force vector length mismatch";
  let x0, y0 = gather t placement in
  (* C·p + d + e = 0  ⇔  C·p = −(d + e). *)
  let rhs d e = Numeric.Parallel.parallel_map2 (fun dv ev -> -.(dv +. ev)) d e in
  let bx = rhs t.dx ex and by = rhs t.dy ey in
  (* The axes are independent SPD systems; solve them concurrently.
     Preconditioners are forced on the caller first — Lazy is not
     domain-safe. *)
  let inv_dx = Lazy.force t.inv_dx and inv_dy = Lazy.force t.inv_dy in
  let (x, sx), (y, sy) =
    Obs.Timer.time "qp/solve" (fun () ->
        Numeric.Parallel.both
          (fun () -> Numeric.Cg.solve ~x0 ~inv_diag:inv_dx t.mx bx)
          (fun () -> Numeric.Cg.solve ~x0:y0 ~inv_diag:inv_dy t.my by))
  in
  if Obs.Registry.enabled () then begin
    Obs.Registry.observe "qp/cg_iterations"
      (float_of_int (sx.Numeric.Cg.iterations + sy.Numeric.Cg.iterations));
    Obs.Registry.observe "qp/cg_residual"
      (Float.max sx.Numeric.Cg.residual sy.Numeric.Cg.residual)
  end;
  for v = 0 to t.n_movable - 1 do
    placement.Netlist.Placement.x.(t.cell_of_var.(v)) <- x.(v);
    placement.Netlist.Placement.y.(t.cell_of_var.(v)) <- y.(v)
  done;
  (sx, sy)

let residual_force t ~placement ~ex ~ey =
  let x0, y0 = gather t placement in
  let rx = Array.make t.n_movable 0. and ry = Array.make t.n_movable 0. in
  Numeric.Sparse.mul t.mx x0 rx;
  Numeric.Sparse.mul t.my y0 ry;
  let acc = ref 0. in
  for v = 0 to t.n_movable - 1 do
    let fx = rx.(v) +. t.dx.(v) +. ex.(v) in
    let fy = ry.(v) +. t.dy.(v) +. ey.(v) in
    acc := Float.max !acc (Float.max (Float.abs fx) (Float.abs fy))
  done;
  !acc
