(** The Bound2Bound net model (Spindler, Schlichtmann & Johannes, 2008)
    as a forward-looking extension of the paper's clique model.

    Per axis, each net connects every pin to the two boundary pins of the
    net's current bounding box with weight 2 / ((k−1)·|span|), which makes
    the quadratic objective equal the half-perimeter wire length at the
    linearisation point.  Unlike the clique model, the expansion differs
    between the x and y axes, so callers assemble one system per axis
    with {!System_xy}. *)

(** One axis-specific spring between two pins. *)
type edge = {
  pin_a : Netlist.Net.pin;
  pin_b : Netlist.Net.pin;
  weight : float;
}

(** [iter_edges ~coord net f] expands one net along the axis whose pin
    coordinate is given by [coord] (absolute pin position), calling
    [f pin_a pin_b weight] per edge — the allocation-free emission the
    hot assembly path uses.  Degenerate nets (zero span) fall back to
    clique weights so connectivity is never lost. *)
val iter_edges :
  coord:(Netlist.Net.pin -> float) ->
  Netlist.Net.t ->
  (Netlist.Net.pin -> Netlist.Net.pin -> float -> unit) ->
  unit

(** [edges ~coord net] is {!iter_edges} materialised as a list, in
    emission order; intended for tests. *)
val edges : coord:(Netlist.Net.pin -> float) -> Netlist.Net.t -> edge list
