type edge = {
  pin_a : Netlist.Net.pin;
  pin_b : Netlist.Net.pin;
  weight : float;
}

let iter_edges ~coord (net : Netlist.Net.t) f =
  let pins = net.Netlist.Net.pins in
  let k = Array.length pins in
  if k = 2 then
    (* Two pins: the general weight 2/((k−1)·span) = 2/span, making the
       objective 2·span like every other degree (the model is uniformly
       twice the half perimeter at the linearisation point). *)
    f pins.(0) pins.(1)
      (2. /. Float.max 1e-6 (Float.abs (coord pins.(0) -. coord pins.(1))))
  else begin
    (* Find the boundary pins on this axis. *)
    let min_i = ref 0 and max_i = ref 0 in
    Array.iteri
      (fun i p ->
        if coord p < coord pins.(!min_i) then min_i := i;
        if coord p > coord pins.(!max_i) then max_i := i)
      pins;
    let span = coord pins.(!max_i) -. coord pins.(!min_i) in
    if span < 1e-6 then
      (* Degenerate: all pins coincide on this axis — clique fallback. *)
      Model.iter_edges net f
    else begin
      let w_of a b =
        2. /. (float_of_int (k - 1) *. Float.max 1e-6 (Float.abs (coord a -. coord b)))
      in
      (* Boundary-to-boundary edge once, plus every interior pin to both
         boundaries. *)
      f pins.(!min_i) pins.(!max_i) (w_of pins.(!min_i) pins.(!max_i));
      Array.iteri
        (fun i p ->
          if i <> !min_i && i <> !max_i then begin
            f p pins.(!min_i) (w_of p pins.(!min_i));
            f p pins.(!max_i) (w_of p pins.(!max_i))
          end)
        pins
    end
  end

let edges ~coord (net : Netlist.Net.t) =
  let acc = ref [] in
  iter_edges ~coord net (fun pin_a pin_b weight ->
      acc := { pin_a; pin_b; weight } :: !acc);
  List.rev !acc
