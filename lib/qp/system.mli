(** Assembly and solution of the extended placement equation
    C·p + d + e = 0 (paper, eq. 3).

    Variables exist only for movable cells; fixed cells and pin offsets
    contribute to the constant vector d.  The x and y systems share the
    matrix C (weights do not depend on axis), so one assembly serves two
    CG solves.

    A tiny anchor spring from every movable cell to the region centre
    (weight [anchor_weight] relative to the mean net weight) keeps C
    positive definite even when a connected component has no path to a
    fixed cell. *)

type t

(** Which spring expansion nets use.  [Clique] is the paper's model
    (§2.1); [Bound2bound] is the 2008 Bound2Bound refinement whose
    quadratic objective matches the half perimeter at the linearisation
    point — an extension benched as ablation A6.  B2B weights depend on
    the axis, so the x and y systems then differ. *)
type net_model = Clique | Bound2bound

(** [index_map circuit] maps cell id → variable index for movable cells
    ([-1] for fixed), with the movable count. *)
val index_map : Netlist.Circuit.t -> int array * int

(** Reusable assembly state for one circuit: the triplet builders, the
    frozen symbolic sparsity {!Numeric.Sparse.pattern}, the d-vector
    scratch and the Jacobi preconditioner storage.  Keyed by circuit,
    net model and clique cap at creation; every {!rebuild} against it
    re-emits only the numeric values (the per-iteration work Kraftwerk
    repeats ~200 times), paying the symbolic sort-and-merge once. *)
type assembly

(** [assembly circuit ?clique_cap ?model ()] allocates the cached
    assembly state.  Under [Clique] the axes share one matrix builder
    (clique weights are axis-independent), halving matrix assembly. *)
val assembly :
  Netlist.Circuit.t -> ?clique_cap:int -> ?model:net_model -> unit -> assembly

(** [rebuild asm ~placement ~net_weights ~edge_scale ?anchor_weight
    ?hold ?hold_at ()] re-assembles the system at the given placement
    through the cached state — same semantics and bitwise-identical
    matrices as {!build} with the assembly's model and cap.  When the
    builder's triplet stream keeps the pattern of the previous pass
    (always, for the clique model), values are scattered through the
    cached permutation ({!Numeric.Sparse.refill}); otherwise the pattern
    is recompiled and the fallback counted (see {!assembly_stats}).

    The returned system {e aliases} the assembly's storage (matrix
    values, d vectors, preconditioners): it is invalidated by the next
    [rebuild] on the same assembly. *)
val rebuild :
  assembly ->
  placement:Netlist.Placement.t ->
  net_weights:float array ->
  edge_scale:(dist:float -> float) ->
  ?anchor_weight:float ->
  ?hold:float ->
  ?hold_at:Netlist.Placement.t ->
  unit ->
  t

(** [assembly_stats asm] is [(reused, pattern_rebuilds)]: how many
    {!rebuild} passes refilled every cached pattern vs. how many had to
    recompile at least one (the first pass always counts as a
    recompile). *)
val assembly_stats : assembly -> int * int

(** [build circuit ~placement ~net_weights ~edge_scale ?clique_cap
    ?anchor_weight ()] assembles the system at the given placement
    (needed for fixed-pin positions and for [edge_scale]).

    [net_weights.(net.id)] multiplies every edge of the net (timing-driven
    weighting); [edge_scale] further multiplies each edge by a function of
    its current pin-to-pin distance — pass [Weights.linearize] to
    approximate the linear objective of [14], or [Weights.quadratic] for
    the plain quadratic objective.  [anchor_weight] defaults to [1e-6].

    [hold], when positive, adds to every movable cell a spring of weight
    [hold × (that cell's summed incident edge weight)] pulling toward its
    coordinates in [placement].  This damps the placement transformation:
    a whole clump of cells can no longer translate freely across the
    region in one solve (the region's boundary supply would otherwise
    yo-yo it), at the cost of more transformations to convergence.  It is
    the counterpart of the hold forces of later force-directed placers
    and does not constrain the converged solution — at a fixed point the
    hold springs exert zero force.

    [hold_at] redirects the hold springs toward the coordinates of a
    different placement (indexed by cell id) instead of [placement] —
    e.g. region-centre targets in partitioning-based placers. *)
val build :
  Netlist.Circuit.t ->
  placement:Netlist.Placement.t ->
  net_weights:float array ->
  edge_scale:(dist:float -> float) ->
  ?clique_cap:int ->
  ?anchor_weight:float ->
  ?hold:float ->
  ?hold_at:Netlist.Placement.t ->
  ?model:net_model ->
  unit ->
  t

(** [solve ?tol t ~placement ~ex ~ey] solves for the movable-cell
    coordinates with additional constant forces [ex], [ey] (indexed by
    {e variable} index, length [num_movable t]) and writes them into
    [placement] (fixed cells untouched).  Warm-starts from the incoming
    coordinates.  [tol] is the relative CG tolerance (default the
    {!Numeric.Cg.solve} default, [1e-8]) — the placer loosens it while
    density overflow is still high and tightens it as the placement
    converges.  Returns CG statistics for the x and y solves. *)
val solve :
  ?tol:float ->
  t ->
  placement:Netlist.Placement.t ->
  ex:float array ->
  ey:float array ->
  Numeric.Cg.stats * Numeric.Cg.stats

(** [num_movable t] is the variable count per axis. *)
val num_movable : t -> int

(** [mean_edge_weight t] is the average assembled spring weight — the
    reference "unit net" for the paper's force scaling, so the additional
    forces stay commensurate with the wire-length forces whether or not
    linearisation rescaled them. *)
val mean_edge_weight : t -> float

(** [variable_of_cell t id] is the variable index of a movable cell, or
    [None] for fixed cells. *)
val variable_of_cell : t -> int -> int option

(** [matrix t] exposes the assembled x-axis C for tests (identical to
    the y-axis matrix under the clique model). *)
val matrix : t -> Numeric.Sparse.t

(** [residual_force t ~placement ~ex ~ey] evaluates |C·p + d + e|∞ over
    both axes at the given placement — zero at the equilibrium eq. (3)
    defines.  Intended for tests. *)
val residual_force :
  t ->
  placement:Netlist.Placement.t ->
  ex:float array ->
  ey:float array ->
  float
