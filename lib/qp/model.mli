(** Net models: hyperedges to weighted two-point edges.

    The paper models a k-pin net as a clique of k(k−1)/2 edges of weight
    1/k (§2.1).  Large nets make that quadratic in k, so above a
    configurable cap we sample a connected bounded-degree subgraph (a
    Hamiltonian cycle through the pins plus random chords) whose total
    weight is rescaled to the full clique's total (k−1)/2 — the spring
    stiffness seen by the net as a whole is preserved. *)

(** One spring between two pins of a net. *)
type edge = {
  pin_a : Netlist.Net.pin;
  pin_b : Netlist.Net.pin;
  weight : float;
}

(** [iter_edges ?cap ?rng net f] expands a net, calling [f pin_a pin_b
    weight] per edge — the allocation-free emission the hot assembly
    path uses (edge lists were built and immediately consumed there,
    pure GC churn).  [cap] (default 16) is the maximum degree fully
    expanded as a clique; beyond it, the sampled subgraph is used and
    [rng] (default a fixed seed) drives the chord sampling. *)
val iter_edges :
  ?cap:int ->
  ?rng:Numeric.Rng.t ->
  Netlist.Net.t ->
  (Netlist.Net.pin -> Netlist.Net.pin -> float -> unit) ->
  unit

(** [edges ?cap ?rng net] is {!iter_edges} materialised as a list, in
    emission order; intended for tests and one-off consumers. *)
val edges : ?cap:int -> ?rng:Numeric.Rng.t -> Netlist.Net.t -> edge list

(** [total_weight k] is the clique total (k−1)/2 that both expansions
    preserve. *)
val total_weight : int -> float
