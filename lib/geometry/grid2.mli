(** Uniform 2-D float grids over a rectangular region.

    A grid partitions a {!Rect.t} into [nx × ny] equal bins.  Values live at
    bin centres; {!sample} interpolates bilinearly between them, which is
    how cell-centre forces are read off the bin-resolution force field. *)

type t

(** [create region ~nx ~ny] is a zero-valued grid of [nx] columns and
    [ny] rows over [region].  Raises [Invalid_argument] for non-positive
    dimensions or an empty region. *)
val create : Rect.t -> nx:int -> ny:int -> t

(** Dimensions and geometry. *)
val nx : t -> int

val ny : t -> int

(** [dx g] and [dy g] are the bin pitch in each axis. *)
val dx : t -> float

val dy : t -> float

val region : t -> Rect.t

(** [get g ix iy] reads the bin value; indices are (column, row) and must
    be in range. *)
val get : t -> int -> int -> float

(** [set g ix iy v] writes a bin. *)
val set : t -> int -> int -> float -> unit

(** [add g ix iy v] accumulates into a bin. *)
val add : t -> int -> int -> float -> unit

(** [values g] is the underlying row-major array (row [iy], column [ix]
    at index [iy * nx + ix]).  Mutations are visible in the grid. *)
val values : t -> float array

(** [bin_rect g ix iy] is the rectangle covered by a bin. *)
val bin_rect : t -> int -> int -> Rect.t

(** [bin_center g ix iy] is the centre of a bin. *)
val bin_center : t -> int -> int -> float * float

(** [locate g x y] is the bin containing point ([x], [y]), clamped to the
    grid. *)
val locate : t -> float -> float -> int * int

(** [sample g x y] bilinearly interpolates the grid at a point; points
    outside the bin-centre lattice are clamped to the border values. *)
val sample : t -> float -> float -> float

(** [splat_rect g rect v] distributes the quantity [v] over the bins
    overlapped by [rect] in proportion to the overlap area (v per total
    rect area), i.e. adds [v * overlap/area(rect)] to each touched bin.
    Rectangles are clipped against the grid region; a rectangle fully
    outside contributes nothing.  Degenerate rectangles splat into the
    bin containing their centre. *)
val splat_rect : t -> Rect.t -> float -> unit

(** [rect_contributions g rect v] is what {!splat_rect} {e would} add:
    the [(flat bin index, amount)] pairs in row-major bin order, without
    touching the grid.  Lets callers compute contributions of many
    rectangles in parallel and then apply them in a fixed order, keeping
    the float-accumulation order (and hence the result, bitwise)
    identical to sequential splatting. *)
val rect_contributions : t -> Rect.t -> float -> (int * float) array

(** [fold f init g] folds over bins as [f acc ix iy v]. *)
val fold : ('a -> int -> int -> float -> 'a) -> 'a -> t -> 'a

(** [map_inplace f g] replaces each value [v] at (ix, iy) with
    [f ix iy v]. *)
val map_inplace : (int -> int -> float -> float) -> t -> unit

(** [total g] is the sum of bin values. *)
val total : t -> float

(** [largest_empty_square g ~threshold] is the side length (in world
    units, using the smaller bin pitch) of the largest square block of
    bins whose every value is ≤ [threshold].  Used for the paper's §4.2
    stopping criterion. *)
val largest_empty_square : t -> threshold:float -> float
