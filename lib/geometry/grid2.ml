type t = {
  nx : int;
  ny : int;
  region : Rect.t;
  dx : float;
  dy : float;
  values : float array; (* row-major: iy * nx + ix *)
}

let create region ~nx ~ny =
  if nx <= 0 || ny <= 0 then invalid_arg "Grid2.create: non-positive dims";
  if Rect.area region <= 0. then invalid_arg "Grid2.create: empty region";
  {
    nx;
    ny;
    region;
    dx = Rect.width region /. float_of_int nx;
    dy = Rect.height region /. float_of_int ny;
    values = Array.make (nx * ny) 0.;
  }

let nx g = g.nx

let ny g = g.ny

let dx g = g.dx

let dy g = g.dy

let region g = g.region

let index g ix iy =
  assert (ix >= 0 && ix < g.nx && iy >= 0 && iy < g.ny);
  (iy * g.nx) + ix

let get g ix iy = g.values.(index g ix iy)

let set g ix iy v = g.values.(index g ix iy) <- v

let add g ix iy v =
  let i = index g ix iy in
  g.values.(i) <- g.values.(i) +. v

let values g = g.values

let bin_rect g ix iy =
  let x_lo = g.region.Rect.x_lo +. (float_of_int ix *. g.dx) in
  let y_lo = g.region.Rect.y_lo +. (float_of_int iy *. g.dy) in
  Rect.make ~x_lo ~y_lo ~x_hi:(x_lo +. g.dx) ~y_hi:(y_lo +. g.dy)

let bin_center g ix iy =
  ( g.region.Rect.x_lo +. ((float_of_int ix +. 0.5) *. g.dx),
    g.region.Rect.y_lo +. ((float_of_int iy +. 0.5) *. g.dy) )

let clamp v lo hi = if v < lo then lo else if v > hi then hi else v

let locate g x y =
  let ix = int_of_float (Float.floor ((x -. g.region.Rect.x_lo) /. g.dx)) in
  let iy = int_of_float (Float.floor ((y -. g.region.Rect.y_lo) /. g.dy)) in
  (clamp ix 0 (g.nx - 1), clamp iy 0 (g.ny - 1))

let sample g x y =
  (* Bilinear interpolation on the bin-centre lattice. *)
  let fx = ((x -. g.region.Rect.x_lo) /. g.dx) -. 0.5 in
  let fy = ((y -. g.region.Rect.y_lo) /. g.dy) -. 0.5 in
  let ix0 = clamp (int_of_float (Float.floor fx)) 0 (g.nx - 1) in
  let iy0 = clamp (int_of_float (Float.floor fy)) 0 (g.ny - 1) in
  let ix1 = clamp (ix0 + 1) 0 (g.nx - 1) in
  let iy1 = clamp (iy0 + 1) 0 (g.ny - 1) in
  let tx = clamp (fx -. float_of_int ix0) 0. 1. in
  let ty = clamp (fy -. float_of_int iy0) 0. 1. in
  let v00 = get g ix0 iy0 and v10 = get g ix1 iy0 in
  let v01 = get g ix0 iy1 and v11 = get g ix1 iy1 in
  let top = v00 +. (tx *. (v10 -. v00)) in
  let bot = v01 +. (tx *. (v11 -. v01)) in
  top +. (ty *. (bot -. top))

(* Shared core of {!splat_rect} and {!rect_contributions}: calls
   [f bin_index amount] for every bin the rectangle touches, in
   row-major bin order. *)
let iter_rect_contributions g rect v f =
  match Rect.intersection rect g.region with
  | None ->
    if Rect.area rect = 0. then begin
      (* Degenerate rectangle: splat into its centre bin if inside. *)
      let cx, cy = Rect.center rect in
      if Rect.contains g.region cx cy then begin
        let ix, iy = locate g cx cy in
        f (index g ix iy) v
      end
    end
  | Some clipped ->
    let total_area = Rect.area rect in
    if total_area = 0. then begin
      let cx, cy = Rect.center rect in
      let ix, iy = locate g cx cy in
      f (index g ix iy) v
    end
    else begin
      let ix_lo, iy_lo = locate g clipped.Rect.x_lo clipped.Rect.y_lo in
      (* Upper corner is exclusive-ish: nudge inward to pick the right bin. *)
      let eps_x = g.dx *. 1e-9 and eps_y = g.dy *. 1e-9 in
      let ix_hi, iy_hi =
        locate g (clipped.Rect.x_hi -. eps_x) (clipped.Rect.y_hi -. eps_y)
      in
      for iy = iy_lo to iy_hi do
        for ix = ix_lo to ix_hi do
          let ov = Rect.overlap_area clipped (bin_rect g ix iy) in
          if ov > 0. then f (index g ix iy) (v *. ov /. total_area)
        done
      done
    end

let splat_rect g rect v =
  iter_rect_contributions g rect v (fun i dv ->
      g.values.(i) <- g.values.(i) +. dv)

let rect_contributions g rect v =
  let acc = ref [] in
  iter_rect_contributions g rect v (fun i dv -> acc := (i, dv) :: !acc);
  Array.of_list (List.rev !acc)

let fold f init g =
  let acc = ref init in
  for iy = 0 to g.ny - 1 do
    for ix = 0 to g.nx - 1 do
      acc := f !acc ix iy g.values.((iy * g.nx) + ix)
    done
  done;
  !acc

let map_inplace f g =
  for iy = 0 to g.ny - 1 do
    for ix = 0 to g.nx - 1 do
      let i = (iy * g.nx) + ix in
      g.values.(i) <- f ix iy g.values.(i)
    done
  done

let total g = Array.fold_left ( +. ) 0. g.values

let largest_empty_square g ~threshold =
  (* Classic DP: side.(iy).(ix) = largest empty square with lower-right
     corner at bin (ix, iy). *)
  let best = ref 0 in
  let prev = Array.make g.nx 0 in
  let cur = Array.make g.nx 0 in
  let prev_ref = ref prev and cur_ref = ref cur in
  for iy = 0 to g.ny - 1 do
    let prev = !prev_ref and cur = !cur_ref in
    for ix = 0 to g.nx - 1 do
      let empty = g.values.((iy * g.nx) + ix) <= threshold in
      if not empty then cur.(ix) <- 0
      else if ix = 0 || iy = 0 then cur.(ix) <- 1
      else cur.(ix) <- 1 + min (min prev.(ix) cur.(ix - 1)) prev.(ix - 1);
      if cur.(ix) > !best then best := cur.(ix)
    done;
    prev_ref := cur;
    cur_ref := prev
  done;
  float_of_int !best *. Float.min g.dx g.dy
