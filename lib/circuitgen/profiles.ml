type paper_numbers = {
  wl_timberwolf : float option;
  wl_gordian : float option;
  wl_ours : float option;
  cpu_ours : float option;
}

type t = {
  profile_name : string;
  cells : int;
  nets : int;
  rows : int;
  paper : paper_numbers;
}

let no_paper =
  { wl_timberwolf = None; wl_gordian = None; wl_ours = None; cpu_ours = None }

(* Wire lengths (metres) from the published MCNC comparisons summarised in
   [2] (Sun & Sechen) which the paper's Table 1 reproduces.  Where the
   scanned table is illegible the entry is None and EXPERIMENTS.md reports
   shape-level comparisons only. *)
let mcnc =
  [
    { profile_name = "fract"; cells = 125; nets = 147; rows = 6;
      paper = { wl_timberwolf = Some 0.041; wl_gordian = Some 0.044;
                wl_ours = Some 0.040; cpu_ours = Some 7. } };
    { profile_name = "primary1"; cells = 752; nets = 902; rows = 16;
      paper = { wl_timberwolf = Some 0.93; wl_gordian = Some 1.03;
                wl_ours = Some 0.92; cpu_ours = Some 62. } };
    { profile_name = "struct"; cells = 1888; nets = 1920; rows = 21;
      paper = { wl_timberwolf = Some 0.41; wl_gordian = Some 0.40;
                wl_ours = Some 0.35; cpu_ours = Some 131. } };
    { profile_name = "primary2"; cells = 2907; nets = 3029; rows = 28;
      paper = { wl_timberwolf = Some 3.67; wl_gordian = Some 3.97;
                wl_ours = Some 3.61; cpu_ours = Some 363. } };
    { profile_name = "biomed"; cells = 6417; nets = 5742; rows = 46;
      paper = { wl_timberwolf = Some 1.87; wl_gordian = Some 2.04;
                wl_ours = Some 1.77; cpu_ours = Some 565. } };
    { profile_name = "industry2"; cells = 12142; nets = 13419; rows = 72;
      paper = { wl_timberwolf = Some 15.87; wl_gordian = Some 15.22;
                wl_ours = Some 13.70; cpu_ours = Some 2736. } };
    { profile_name = "industry3"; cells = 15059; nets = 21940; rows = 54;
      paper = { wl_timberwolf = Some 43.62; wl_gordian = Some 43.51;
                wl_ours = Some 41.93; cpu_ours = Some 3441. } };
    { profile_name = "avq.small"; cells = 21854; nets = 22124; rows = 80;
      paper = { wl_timberwolf = Some 5.43; wl_gordian = Some 5.65;
                wl_ours = Some 5.12; cpu_ours = Some 4520. } };
    { profile_name = "avq.large"; cells = 25114; nets = 25384; rows = 86;
      paper = { wl_timberwolf = Some 6.59; wl_gordian = Some 6.93;
                wl_ours = Some 6.11; cpu_ours = Some 5415. } };
  ]

(* Mega profiles: production-scale synthetic circuits far past the
   paper's Table 1.  Net counts track cell counts (Rent's rule with the
   generator's index-local net windows supplying the locality) and rows
   grow with sqrt(cells) so the aspect ratio stays chip-like.  No paper
   numbers exist at this scale, and Table-1 consumers iterate [mcnc],
   never these. *)
let mega =
  [
    { profile_name = "mega100k"; cells = 100_000; nets = 110_000; rows = 170;
      paper = no_paper };
    { profile_name = "mega250k"; cells = 250_000; nets = 275_000; rows = 270;
      paper = no_paper };
    { profile_name = "mega500k"; cells = 500_000; nets = 550_000; rows = 380;
      paper = no_paper };
    { profile_name = "mega1m"; cells = 1_000_000; nets = 1_100_000; rows = 540;
      paper = no_paper };
  ]

let all = mcnc @ mega

let find name =
  match List.find_opt (fun p -> p.profile_name = name) all with
  | Some p -> p
  | None -> raise Not_found

let params ?(scale = 1.) t ~seed =
  if scale <= 0. || scale > 1. then invalid_arg "Profiles.params: bad scale";
  let sc n = max 8 (int_of_float (Float.round (float_of_int n *. scale))) in
  let cells = sc t.cells and nets = sc t.nets in
  let rows =
    max 3 (int_of_float (Float.round (float_of_int t.rows *. sqrt scale)))
  in
  let base =
    Gen.default_params ~name:t.profile_name ~num_cells:cells ~num_nets:nets
      ~num_rows:rows ~seed
  in
  (* The avq circuits are the ones the paper notes contain > 60-pin nets
     (they are excluded from its timing analysis). *)
  let huge_nets =
    if String.length t.profile_name >= 3 && String.sub t.profile_name 0 3 = "avq"
    then 3
    else 0
  in
  { base with huge_nets }

let names = List.map (fun p -> p.profile_name) all
