(** The nine benchmark profiles of the paper's Table 1, plus the
    production-scale mega profiles.

    Cell, net and row counts follow the published MCNC benchmark
    statistics the paper placed (fract … avq.large); the netlists
    themselves are synthetic (see {!Gen}).  The [mega100k] … [mega1m]
    profiles extrapolate past the paper: nets scale with cells (Rent's
    rule; {!Gen}'s index-local net windows supply the locality) and rows
    with sqrt(cells), so million-cell runs keep a chip-like aspect
    ratio. *)

(** One Table-1 row. *)
type t = {
  profile_name : string;
  cells : int;
  nets : int;
  rows : int;
  paper : paper_numbers;
}

(** The values the paper reports for this circuit (wire length in metres,
    CPU in seconds), used by EXPERIMENTS.md comparisons.  [None] where the
    paper's table has no entry. *)
and paper_numbers = {
  wl_timberwolf : float option;
  wl_gordian : float option;
  wl_ours : float option;
  cpu_ours : float option;
}

(** The nine Table-1 profiles, in the paper's order. *)
val mcnc : t list

(** The mega profiles by size ([mega100k] … [mega1m]).  Too large for
    the Table-1 baselines (annealing, Gordian) — the multilevel flow and
    [bench --mega] are their consumers. *)
val mega : t list

(** All profiles: Table-1 order, then the mega profiles by size. *)
val all : t list

(** [find name] looks a profile up by name.  Raises [Not_found]. *)
val find : string -> t

(** [params ?scale t ~seed] converts a profile into generator parameters;
    [scale] (default 1.0) shrinks cell/net counts proportionally for quick
    runs while keeping the shape. *)
val params : ?scale:float -> t -> seed:int -> Gen.params

(** [names] lists the profile names in order. *)
val names : string list
