(** The iterative force-directed placement algorithm (paper §4).

    A {!state} carries the current placement, the {e accumulated}
    additional-force vector ~e (§2.2 — forces found in earlier
    transformations stay in the system, which is what holds previous
    spreading in place), and the per-net weights that timing-driven
    callers adapt between transformations. *)

type state = {
  circuit : Netlist.Circuit.t;
  config : Config.t;
  var_of_cell : int array;
  n_movable : int;
  placement : Netlist.Placement.t;  (** mutated by every transformation *)
  ex : float array;  (** accumulated additional x-forces, by variable *)
  ey : float array;
  net_weights : float array;  (** mutable contents, indexed by net id *)
  assembly : Qp.System.assembly;
      (** cached QP assembly (symbolic sparsity pattern, scratch and
          preconditioner storage) reused by every transformation *)
  controller : Controller.t;
      (** convergence controller: LB/UB envelope and penalty schedule *)
  telemetry_level : int;
      (** V-cycle stage stamped into emitted telemetry records (0 for
          flat runs; {!Cluster} passes the stage index) *)
  mutable iteration : int;
  route_target : Route.Target.t option;
      (** persistent congestion-target map of the closed routability
          loop ({!Config.t.congest_every}); [None] when the loop is
          off.  Refreshed in place every cadence tick, read as extra
          density demand every transformation, checkpointed next to the
          controller. *)
}

(** Per-transformation report. *)
type step_report = {
  step : int;
  hpwl : float;  (** half-perimeter wire length after the solve *)
  empty_square_area : float;  (** stopping-criterion measure *)
  force_scale : float;  (** the k applied this transformation *)
  cg_iterations : int;  (** x- and y-solve iterations combined *)
  penalty : float;  (** density-force multiplier used this transformation *)
  ub_hpwl : float option;
      (** legalized-snapshot HPWL when this iteration probed the upper
          bound (every {!Config.t.legalize_every} iterations) *)
  gap : float option;
      (** relative LB/UB gap at this iteration's probe, if taken *)
}

(** Optional per-transformation hooks. *)
type hooks = {
  reweight : (state -> unit) option;
      (** adapt [state.net_weights] before the solve (timing-driven §5) *)
  extra_density :
    (Netlist.Circuit.t -> Netlist.Placement.t -> nx:int -> ny:int ->
     Geometry.Grid2.t option)
    option;
      (** inject extra demand (congestion map, heat map — §5) *)
  on_step : (step_report -> unit) option;  (** observer *)
}

val no_hooks : hooks

(** [route_spec config circuit] is the routing-grid spec the closed
    routability loop bins the region with: the density grid's bin counts
    at {!Config.t.congest_pitch}.  A pure function of (config, circuit),
    so checkpoints need only store the target map's values. *)
val route_spec : Config.t -> Netlist.Circuit.t -> Route.Grid_spec.t

(** [init config circuit placement] builds a fresh state around (a copy
    of) [placement] with ~e = 0 and unit net weights.
    [?telemetry_level] (default 0) is the V-cycle stage stamped into
    telemetry records — purely observational, it never affects the
    trajectory. *)
val init :
  ?telemetry_level:int ->
  Config.t ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  state

(** [restore config circuit ~placement ~ex ~ey ~net_weights ~iteration]
    rebuilds a state from externally saved mid-run data (the checkpoint
    path of the job engine).  The accumulated ~e vectors are what make
    mid-run state restartable: with [placement], [ex]/[ey],
    [net_weights] and [iteration] restored bitwise, the subsequent
    trajectory is bitwise-identical to the uninterrupted run — the QP
    assembly and kernel caches rebuilt here are value-transparent
    ({!Qp.System.rebuild} documents refill ≡ finalize).  The optional
    [controller] restores the convergence controller (penalty, envelope
    history) verbatim; omitting it starts a fresh schedule, which is only
    bitwise-faithful for iteration 0.  The optional [route_target]
    restores the congestion-target map of the routability loop the same
    way; omitting it starts from an all-zero map (fresh-run semantics).
    All inputs are copied (the target map is adopted as-is).  Raises
    [Invalid_argument] on length mismatches. *)
val restore :
  ?telemetry_level:int ->
  Config.t ->
  Netlist.Circuit.t ->
  placement:Netlist.Placement.t ->
  ex:float array ->
  ey:float array ->
  net_weights:float array ->
  ?controller:Controller.t ->
  ?route_target:Route.Target.t ->
  iteration:int ->
  unit ->
  state

(** [transform ?hooks state] performs one placement transformation
    (§4.1): determine the density forces at the current placement, add
    them to ~e, rebuild the (possibly linearised) system through the
    cached assembly and solve eq. (3) holding ~e constant.  The CG
    tolerance follows the adaptive schedule of {!Config.t.cg_tol_loose}
    driven by the density overflow.

    When an {!Obs.Sink} is installed, each transformation additionally
    emits an {!Obs.Telemetry.iteration} record (HPWL, quadratic wire
    length, density overflow, force magnitudes, displacement, CG and
    kernel-cache statistics, per-phase wall-clock timings); phase
    timings also accumulate in the {!Obs.Registry} under
    ["placer/assemble" | "placer/density" | "placer/solve" |
    "placer/metrics"].  With no sink installed none of these metrics
    are computed. *)
val transform : ?hooks:hooks -> state -> step_report

(** [converged state] is true when any stop criterion is satisfied: the
    §4.2 empty-square criterion ({!Density.Stop}), the controller's
    relative LB/UB gap falling to {!Config.t.stop_gap}, or — for
    degenerate circuits with fewer than two movable cells — one
    transformation having run.  The first criterion to fire is recorded
    in the controller as the {!stop_reason}. *)
val converged : state -> bool

(** [stop_reason state] is the first stop criterion that fired, if the
    run has stopped early (or exhausted {!Config.t.max_iterations} under
    {!continue_run}). *)
val stop_reason : state -> Controller.reason option

(** [run ?hooks config circuit placement] is the complete algorithm:
    initialise, transform until {!converged} or the iteration bound, and
    return the final state plus the per-step reports in order. *)
val run :
  ?hooks:hooks ->
  Config.t ->
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  state * step_report list

(** [continue_run ?hooks state ~max_steps] applies up to [max_steps]
    further transformations to an existing state, stopping early when
    {!converged}; used by ECO and the timing-requirement mode. *)
val continue_run : ?hooks:hooks -> state -> max_steps:int -> step_report list
