type state = {
  circuit : Netlist.Circuit.t;
  config : Config.t;
  var_of_cell : int array;
  n_movable : int;
  placement : Netlist.Placement.t;
  ex : float array;
  ey : float array;
  net_weights : float array;
  assembly : Qp.System.assembly;
  controller : Controller.t;
  telemetry_level : int;
  mutable iteration : int;
  route_target : Route.Target.t option;
      (** persistent congestion-target map of the closed routability
          loop; [Some] iff [config.congest_every > 0] on a non-degenerate
          grid *)
}

type step_report = {
  step : int;
  hpwl : float;
  empty_square_area : float;
  force_scale : float;
  cg_iterations : int;
  penalty : float;
  ub_hpwl : float option;
  gap : float option;
}

type hooks = {
  reweight : (state -> unit) option;
  extra_density :
    (Netlist.Circuit.t -> Netlist.Placement.t -> nx:int -> ny:int ->
     Geometry.Grid2.t option)
    option;
  on_step : (step_report -> unit) option;
}

let no_hooks = { reweight = None; extra_density = None; on_step = None }

let grid_dims_for (config : Config.t) circuit =
  match config.Config.grid with
  | Some (nx, ny) -> (nx, ny)
  | None ->
    let nx, ny = Density.Density_map.auto_bins circuit in
    let s = config.Config.grid_scale in
    if s = 1.0 then (nx, ny)
    else
      let scaled n =
        Stdlib.max 4 (int_of_float (Float.round (s *. float_of_int n)))
      in
      (scaled nx, scaled ny)

let grid_dims state = grid_dims_for state.config state.circuit

(* The routing grid of the closed loop shares the density grid's bin
   counts so the target map can feed straight into the demand splat. *)
let route_spec_for (config : Config.t) circuit =
  let nx, ny = grid_dims_for config circuit in
  Route.Grid_spec.make ~wire_pitch:config.Config.congest_pitch ~nx ~ny ()

let route_spec = route_spec_for

let fresh_route_target (config : Config.t) circuit =
  if config.Config.congest_every <= 0 then None
  else
    match
      Route.Target.create circuit.Netlist.Circuit.region
        (route_spec_for config circuit)
    with
    | Ok t -> Some t
    | Error _ -> None

(* The first transformation of a job would otherwise pay Poisson kernel
   construction inside the hot loop (the cold-call spike in
   BENCH_kernels.json); build the spectra for the run's fixed grid now,
   while the caller is still in setup. *)
let prewarm_density state =
  let nx, ny = grid_dims state in
  Density.Forces.prewarm ~solver:state.config.Config.solver
    ~region:state.circuit.Netlist.Circuit.region ~nx ~ny ()

let init ?(telemetry_level = 0) config circuit placement =
  (* Pin the pool size before any kernel runs so the whole run uses one
     setting; None leaves the KRAFTWERK_DOMAINS / hardware default. *)
  (match config.Config.domains with
  | Some d -> Numeric.Parallel.set_num_domains d
  | None -> ());
  let var_of_cell, n_movable = Qp.System.index_map circuit in
  let state =
    {
      circuit;
      config;
      var_of_cell;
      n_movable;
      placement = Netlist.Placement.copy placement;
      ex = Array.make n_movable 0.;
      ey = Array.make n_movable 0.;
      net_weights = Array.make (Netlist.Circuit.num_nets circuit) 1.;
      assembly =
        Qp.System.assembly circuit ~clique_cap:config.Config.clique_cap
          ~model:config.Config.net_model ();
      controller = Controller.create config;
      telemetry_level;
      iteration = 0;
      route_target = fresh_route_target config circuit;
    }
  in
  prewarm_density state;
  state

let restore ?(telemetry_level = 0) config circuit ~placement ~ex ~ey
    ~net_weights ?controller ?route_target ~iteration () =
  (match config.Config.domains with
  | Some d -> Numeric.Parallel.set_num_domains d
  | None -> ());
  let var_of_cell, n_movable = Qp.System.index_map circuit in
  if Array.length ex <> n_movable || Array.length ey <> n_movable then
    invalid_arg "Placer.restore: force-vector length mismatch";
  if Array.length net_weights <> Netlist.Circuit.num_nets circuit then
    invalid_arg "Placer.restore: net-weight length mismatch";
  if
    Array.length placement.Netlist.Placement.x
    <> Netlist.Circuit.num_cells circuit
  then invalid_arg "Placer.restore: placement length mismatch";
  {
    circuit;
    config;
    var_of_cell;
    n_movable;
    placement = Netlist.Placement.copy placement;
    ex = Array.copy ex;
    ey = Array.copy ey;
    net_weights = Array.copy net_weights;
    assembly =
      Qp.System.assembly circuit ~clique_cap:config.Config.clique_cap
        ~model:config.Config.net_model ();
    controller =
      (match controller with
      | Some c -> Controller.copy c
      | None -> Controller.create config);
    telemetry_level;
    iteration;
    route_target =
      (match route_target with
      | Some t -> Some t
      | None -> fresh_route_target config circuit);
  }

let restore ?telemetry_level config circuit ~placement ~ex ~ey ~net_weights
    ?controller ?route_target ~iteration () =
  let state =
    restore ?telemetry_level config circuit ~placement ~ex ~ey ~net_weights
      ?controller ?route_target ~iteration ()
  in
  prewarm_density state;
  state

let edge_scale state =
  if state.config.Config.linearize then
    Qp.Weights.linearize
      ~eps:(Qp.Weights.default_eps state.circuit.Netlist.Circuit.region)
  else Qp.Weights.quadratic

(* Upper bound of the LB/UB envelope: wire length of a cheap legalized
   snapshot.  Tetris copies the placement internally, so probing never
   perturbs the trajectory. *)
let ub_snapshot state =
  match Legalize.Tetris.legalize state.circuit state.placement () with
  | Ok r ->
    Some
      (Metrics.Wirelength.hpwl state.circuit r.Legalize.Tetris.placement)
  | Error _ -> None

(* Magnitude statistics of the additional-force increment applied this
   transformation (after the reference-weight scaling). *)
let force_stats ~ref_weight (forces : Density.Forces.t) n =
  let max_m = ref 0. and sum_m = ref 0. in
  for v = 0 to n - 1 do
    let fx = ref_weight *. forces.Density.Forces.fx.(v) in
    let fy = ref_weight *. forces.Density.Forces.fy.(v) in
    let m = sqrt ((fx *. fx) +. (fy *. fy)) in
    if m > !max_m then max_m := m;
    sum_m := !sum_m +. m
  done;
  (!max_m, if n = 0 then 0. else !sum_m /. float_of_int n)

let transform ?(hooks = no_hooks) state =
  let cfg = state.config in
  let nx, ny = grid_dims state in
  (* Telemetry is collected only when a sink listens; with no sink the
     per-iteration cost is this one ref read plus untaken branches. *)
  let collecting = Obs.Sink.active () in
  let phases = ref [] in
  let timed name f =
    if collecting then begin
      let t0 = Obs.Clock.now () in
      let r = f () in
      let dt = Obs.Clock.elapsed_since t0 in
      phases := (name, dt) :: !phases;
      Obs.Registry.observe ("placer/" ^ name) dt;
      r
    end
    else Obs.Timer.time ("placer/" ^ name) f
  in
  let cache_hits0, cache_misses0 = Numeric.Poisson.kernel_cache_stats () in
  let pool_tasks0 =
    if collecting then (Obs.Registry.get "pool/tasks").Obs.Stat.total else 0.
  in
  let prev =
    if collecting then Some (Netlist.Placement.copy state.placement) else None
  in
  (match hooks.reweight with Some f -> f state | None -> ());
  (* Assemble first: linearised weights depend on the current placement,
     and the mean edge weight defines the "unit net" the force scaling
     of §4.1 refers to. *)
  let reused0, _ = Qp.System.assembly_stats state.assembly in
  let system =
    timed "assemble" (fun () ->
        Qp.System.rebuild state.assembly ~placement:state.placement
          ~net_weights:state.net_weights ~edge_scale:(edge_scale state)
          ~anchor_weight:cfg.Config.anchor_weight ~hold:cfg.Config.hold_weight
          ())
  in
  let reused1, pattern_rebuilds = Qp.System.assembly_stats state.assembly in
  let ctrl = state.controller in
  (* Closed routability loop (§5 / GOALPlace): on the cadence tick,
     estimate routing overflow on a cheap legalized snapshot of the
     current placement — "begin with the end in mind" — and fold it into
     the persistent target map with the annealed gain.  Off the tick the
     map just keeps contributing, so spreading anticipates congestion
     instead of reacting to the latest estimate only. *)
  (match state.route_target with
  | Some target when cfg.Config.congest_every > 0 ->
    if Controller.congest_due ctrl cfg then begin
      let probe =
        match
          timed "congest_legalize" (fun () ->
              Legalize.Tetris.legalize state.circuit state.placement ())
        with
        | Ok r -> r.Legalize.Tetris.placement
        | Error _ -> state.placement
      in
      let stats =
        timed "congest" (fun () ->
            Route.Target.refresh
              ~strength:ctrl.Controller.congest.Controller.strength
              ~decay:cfg.Config.congest_decay target state.circuit probe)
      in
      Controller.observe_congest ctrl
        ~est_overflow:stats.Route.Target.est_total_overflow
        ~est_max_overflow:stats.Route.Target.est_max_overflow
        ~target_area:stats.Route.Target.target_area
        ~clamped_bins:stats.Route.Target.clamped_bins;
      Controller.advance_congest ctrl cfg
    end
    else Controller.tick_congest ctrl
  | _ -> ());
  let extra =
    let hook_extra =
      match hooks.extra_density with
      | Some f -> f state.circuit state.placement ~nx ~ny
      | None -> None
    in
    let target_extra =
      match state.route_target with
      | Some t when Route.Target.area t > 0. -> Some (Route.Target.grid t)
      | _ -> None
    in
    match (hook_extra, target_extra) with
    | None, e | e, None -> e
    | Some h, Some t ->
      (* Both sources active: sum into a fresh grid; neither input is
         mutated (the target map must persist untouched). *)
      let g =
        Geometry.Grid2.create state.circuit.Netlist.Circuit.region ~nx ~ny
      in
      Geometry.Grid2.map_inplace
        (fun ix iy _ ->
          Geometry.Grid2.get h ix iy +. Geometry.Grid2.get t ix iy)
        g;
      Some g
  in
  let forces =
    timed "density" (fun () ->
        Density.Forces.at_cells state.circuit state.placement
          ~var_of_cell:state.var_of_cell ~n_movable:state.n_movable
          ~k_param:cfg.Config.k_param ~solver:cfg.Config.solver ?extra ~nx ~ny
          ())
  in
  let ref_weight = Qp.System.mean_edge_weight system in
  (* The density force is scaled by the controller's penalty, the
     multiplicative schedule replacing a static weight: spreading
     pressure ramps up as the run progresses. *)
  let penalty = state.controller.Controller.penalty in
  let drive = penalty *. ref_weight in
  let beta = cfg.Config.force_decay in
  for v = 0 to state.n_movable - 1 do
    state.ex.(v) <-
      (beta *. state.ex.(v)) +. (drive *. forces.Density.Forces.fx.(v));
    state.ey.(v) <-
      (beta *. state.ey.(v)) +. (drive *. forces.Density.Forces.fy.(v))
  done;
  (* Adaptive CG tolerance: while the density overflow is high the
     solution target is still moving, so a loose solve is enough; the
     tolerance tightens quadratically with the overflow down to cg_tol.
     The overflow signal is the one the density phase already computed
     from its demand splat. *)
  let tol =
    Float.max cfg.Config.cg_tol
      (Float.min cfg.Config.cg_tol_loose
         (cfg.Config.cg_tol_loose
         *. forces.Density.Forces.overflow *. forces.Density.Forces.overflow))
  in
  let sx, sy =
    timed "solve" (fun () ->
        Qp.System.solve ~tol system ~placement:state.placement ~ex:state.ex
          ~ey:state.ey)
  in
  Netlist.Placement.clamp_to_region state.circuit state.placement;
  state.iteration <- state.iteration + 1;
  let hpwl, empty_square_area =
    timed "metrics" (fun () ->
        ( Metrics.Wirelength.hpwl state.circuit state.placement,
          Density.Stop.largest_empty_square_area state.circuit state.placement
            ~nx ~ny () ))
  in
  Controller.observe_lb ctrl hpwl;
  let ub, gap =
    if Controller.legalization_due ctrl cfg then
      match timed "legalize" (fun () -> ub_snapshot state) with
      | Some ub ->
        Controller.observe_ub ctrl ~lb:hpwl ~ub;
        (Some ub, Some ctrl.Controller.gap)
      | None ->
        (* An unlegalizable snapshot carries no envelope information;
           reset the cadence rather than re-probing every iteration. *)
        ctrl.Controller.since_legalize <- 0;
        (None, None)
    else begin
      Controller.tick_legalize ctrl;
      (None, None)
    end
  in
  Controller.advance_penalty ctrl cfg;
  let report =
    {
      step = state.iteration;
      hpwl;
      empty_square_area;
      force_scale = forces.Density.Forces.scale *. drive;
      cg_iterations = sx.Numeric.Cg.iterations + sy.Numeric.Cg.iterations;
      penalty;
      ub_hpwl = ub;
      gap;
    }
  in
  if collecting then begin
    let cache_hits1, cache_misses1 = Numeric.Poisson.kernel_cache_stats () in
    let pool_tasks1 = (Obs.Registry.get "pool/tasks").Obs.Stat.total in
    let max_force, mean_force =
      force_stats ~ref_weight:drive forces state.n_movable
    in
    let displacement =
      match prev with
      | Some before -> Netlist.Placement.displacement before state.placement
      | None -> 0.
    in
    Obs.Sink.iteration
      {
        Obs.Telemetry.step = state.iteration;
        hpwl = report.hpwl;
        quadratic = Metrics.Wirelength.quadratic state.circuit state.placement;
        overflow =
          Density.Density_map.overflow_ratio state.circuit state.placement ~nx
            ~ny;
        empty_square_area = report.empty_square_area;
        force_scale = report.force_scale;
        max_force;
        mean_force;
        displacement;
        cg_iterations_x = sx.Numeric.Cg.iterations;
        cg_iterations_y = sy.Numeric.Cg.iterations;
        cg_residual_x = sx.Numeric.Cg.residual;
        cg_residual_y = sy.Numeric.Cg.residual;
        kernel_cache_hits = cache_hits1 - cache_hits0;
        kernel_cache_misses = cache_misses1 - cache_misses0;
        assembly_reused = reused1 > reused0;
        pattern_rebuilds;
        cg_tolerance = tol;
        domains = Numeric.Parallel.num_domains ();
        pool_tasks = int_of_float (pool_tasks1 -. pool_tasks0);
        penalty;
        lb_hpwl = report.hpwl;
        ub_hpwl = report.ub_hpwl;
        gap = report.gap;
        level = state.telemetry_level;
        congest_strength =
          (if cfg.Config.congest_every > 0 then
             ctrl.Controller.congest.Controller.strength
           else 0.);
        est_overflow =
          (let c = ctrl.Controller.congest in
           if
             cfg.Config.congest_every > 0
             && not (Float.is_nan c.Controller.est_overflow)
           then Some c.Controller.est_overflow
           else None);
        target_area = ctrl.Controller.congest.Controller.target_area;
        target_clamped = ctrl.Controller.congest.Controller.clamped_bins;
        phases = List.rev !phases;
      }
  end;
  (match hooks.on_step with Some f -> f report | None -> ());
  report

let converged state =
  let ctrl = state.controller in
  if state.n_movable = 0 then begin
    Controller.record_stop ctrl Controller.Density;
    true
  end
  else if state.n_movable < 2 then
    (* Degenerate circuit: one transformation puts the lone cell at its
       quadratic optimum; stop at iteration 1, in agreement with both
       criteria, instead of running the full schedule. *)
    state.iteration >= 1
    && begin
         Controller.record_stop ctrl Controller.Density;
         true
       end
  else begin
    let nx, ny = grid_dims state in
    if
      Density.Stop.should_stop state.circuit state.placement
        ~multiplier:state.config.Config.stop_multiplier ~nx ~ny ()
    then begin
      Controller.record_stop ctrl Controller.Density;
      true
    end
    else if
      Controller.gap_converged ctrl state.config ~n_movable:state.n_movable
        ~iteration:state.iteration
    then begin
      Controller.record_stop ctrl Controller.Gap;
      true
    end
    else false
  end

let stop_reason state = state.controller.Controller.stop_reason

let continue_run ?(hooks = no_hooks) state ~max_steps =
  let reports = ref [] in
  let steps = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !steps < max_steps do
    if converged state then stopped := true
    else begin
      reports := transform ~hooks state :: !reports;
      incr steps
    end
  done;
  (* Only the global iteration bound counts as a max-steps stop; the
     small incremental budgets of ECO / timing-driven passes are not a
     verdict on convergence. *)
  if (not !stopped) && state.iteration >= state.config.Config.max_iterations
  then Controller.record_stop state.controller Controller.Max_steps;
  List.rev !reports

let run ?(hooks = no_hooks) config circuit placement =
  let state = init config circuit placement in
  let reports =
    continue_run ~hooks state ~max_steps:config.Config.max_iterations
  in
  (state, reports)
