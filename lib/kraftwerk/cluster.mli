(** Netlist clustering and multilevel placement.

    The paper motivates a fast mode for floorplanning ("a placement
    estimation during the floorplanning phase", §6.1).  Clustering takes
    that further, as GORDIAN-class placers did: connectivity-driven
    FirstChoice-style clustering merges tightly connected cells into
    clusters, the cluster netlist is placed with the normal algorithm,
    and the flat netlist is seeded from the cluster placement and
    refined with a few transformations.

    Clusters aggregate area (width = area / row height, height = one row
    height per row of area) and inherit the union of their members'
    connectivity; pads and fixed cells are never clustered. *)

type clustering = {
  coarse : Netlist.Circuit.t;  (** the cluster-level circuit *)
  cluster_of : int array;  (** flat cell id → coarse cell id *)
  members : int list array;  (** coarse cell id → flat member ids *)
  coarse_fixed : (int * (float * float)) list;
      (** pinned coordinates for the coarse circuit's fixed cells, given
          the flat fixed positions *)
}

(** [cluster ?seed ?max_cluster_area circuit ~fixed_positions] builds one
    level of clustering: each movable cell greedily merges with its most
    strongly connected neighbour (clique-weight sum over shared nets)
    while the merged area stays below [max_cluster_area] (default 6×
    the average cell area).  Fixed cells map to singleton coarse cells. *)
val cluster :
  ?seed:int ->
  ?max_cluster_area:float ->
  Netlist.Circuit.t ->
  fixed_positions:(int * (float * float)) list ->
  clustering

(** [expand clustering ~coarse_placement ~flat_placement] seats every
    flat cell at its cluster's position (members of one cluster spread
    in a small deterministic spiral so they do not sit on one exact
    point), writing into [flat_placement] (fixed cells untouched). *)
val expand :
  clustering ->
  coarse_placement:Netlist.Placement.t ->
  flat_placement:Netlist.Placement.t ->
  unit

(** {1 Recursive multilevel V-cycle}

    The one-level flow generalised: cluster repeatedly until the coarse
    netlist has at most {!Config.t.ml_threshold} cells (at least one
    level, at most [ml_max_levels], stopping early when clustering no
    longer shrinks the netlist), place the coarsest circuit with the
    normal controller-driven loop, then uncluster and refine level by
    level under the [ml_refine_iters] budget.

    Trajectories are a pure function of (circuit, config): clustering at
    level [l] seeds its RNG with [ml_seed + l] and every kernel is
    bitwise-deterministic for any domain/shard count, so the hierarchy
    rebuilds identically on resume and a checkpoint only needs the level
    index, its completed step count and the level placer state. *)

(** The full coarsening stack: [circuits.(0)] is the flat circuit,
    [circuits.(depth)] the coarsest. *)
type hierarchy = {
  circuits : Netlist.Circuit.t array;
  clusterings : clustering array;
      (** [clusterings.(l)] maps [circuits.(l)] to [circuits.(l+1)] *)
  level_fixed : (int * (float * float)) list array;
      (** fixed positions per level *)
}

(** Number of coarsening levels (0 when clustering made no progress). *)
val depth : hierarchy -> int

(** [build_hierarchy config circuit ~fixed_positions] runs the recursive
    coarsening pass alone — deterministic for a given (circuit, config). *)
val build_hierarchy :
  Config.t ->
  Netlist.Circuit.t ->
  fixed_positions:(int * (float * float)) list ->
  hierarchy

(** The placer configuration used at [level]: level 0 is [config]
    itself; coarse levels drop an explicit grid pin and compound
    [ml_grid_scale] once per level. *)
val level_config : Config.t -> level:int -> Config.t

(** An in-flight V-cycle: the hierarchy plus the current stage's placer
    state.  Stages count {e down} from [depth hierarchy] (coarsest) to 0
    (flat). *)
type run

val total_levels : run -> int

(** The configuration the run was started with (level 0's config). *)
val base_config : run -> Config.t

(** The flat (level-0) circuit of the hierarchy. *)
val flat_circuit : run -> Netlist.Circuit.t

(** Current stage index ([0] = flat). *)
val current_level : run -> int

(** Transformations taken in the current stage. *)
val current_level_steps : run -> int

(** The current stage's placer state (against
    [hierarchy.circuits.(current_level)]). *)
val current_state : run -> Placer.state

(** [start config circuit ~fixed_positions placement] builds the
    hierarchy and the coarsest stage's placer.  [placement] is only used
    when clustering makes no progress and the run degenerates to the
    flat flow. *)
val start :
  Config.t ->
  Netlist.Circuit.t ->
  fixed_positions:(int * (float * float)) list ->
  Netlist.Placement.t ->
  run

(** [step ?hooks run] advances the V-cycle by one placement
    transformation, first expanding down a level whenever the current
    stage has converged or exhausted its budget.  [hooks] reference
    flat-level indices and engage only at level 0.  Returns [false] once
    the flat level is done. *)
val step : ?hooks:Placer.hooks -> run -> bool

(** True once the flat level has converged or exhausted its budget. *)
val finished : run -> bool

(** [finish run] deterministically expands any remaining levels straight
    down — no further optimisation — and returns the flat placement
    (used by cancelled/degraded engine finishes). *)
val finish : run -> Netlist.Placement.t

(** [resume config circuit ~fixed_positions ~level ~level_steps
    ~restore_state] rebuilds a run mid-flight: the hierarchy is
    reconstructed (deterministically), and [restore_state] is called
    with the level's circuit and per-level config to rebuild the placer
    state from checkpointed arrays.
    @raise Invalid_argument when [level] exceeds the rebuilt depth. *)
val resume :
  Config.t ->
  Netlist.Circuit.t ->
  fixed_positions:(int * (float * float)) list ->
  level:int ->
  level_steps:int ->
  restore_state:(Netlist.Circuit.t -> Config.t -> Placer.state) ->
  run

(** [place_multilevel ?seed config circuit ~fixed_positions placement]
    drives a whole V-cycle to completion and returns the flat placement
    (clamped to the region).  [?seed] overrides [config.ml_seed]. *)
val place_multilevel :
  ?seed:int ->
  Config.t ->
  Netlist.Circuit.t ->
  fixed_positions:(int * (float * float)) list ->
  Netlist.Placement.t ->
  Netlist.Placement.t
