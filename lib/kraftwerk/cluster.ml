type clustering = {
  coarse : Netlist.Circuit.t;
  cluster_of : int array;
  members : int list array;
  coarse_fixed : (int * (float * float)) list;
}

(* Pairwise connectivity between movable standard cells: clique weight
   1/k summed over shared nets (big nets skipped — they carry little
   clustering signal and cost k²). *)
let build_affinity (c : Netlist.Circuit.t) ~clusterable =
  let adj : (int, float) Hashtbl.t array =
    Array.init (Netlist.Circuit.num_cells c) (fun _ -> Hashtbl.create 4)
  in
  Array.iter
    (fun (net : Netlist.Net.t) ->
      let k = Netlist.Net.degree net in
      if k <= 16 then begin
        let cells =
          Netlist.Net.cells net |> List.filter (fun id -> clusterable.(id))
        in
        let w = 1. /. float_of_int k in
        let rec pairs = function
          | [] -> ()
          | a :: rest ->
            List.iter
              (fun b ->
                let bump x y =
                  let prev = try Hashtbl.find adj.(x) y with Not_found -> 0. in
                  Hashtbl.replace adj.(x) y (prev +. w)
                in
                bump a b;
                bump b a)
              rest;
            pairs rest
        in
        pairs cells
      end)
    c.Netlist.Circuit.nets;
  adj

let cluster ?(seed = 1) ?max_cluster_area (c : Netlist.Circuit.t)
    ~fixed_positions =
  let n = Netlist.Circuit.num_cells c in
  let max_cluster_area =
    match max_cluster_area with
    | Some a -> a
    | None -> 6. *. Netlist.Circuit.average_cell_area c
  in
  let clusterable =
    Array.map
      (fun (cl : Netlist.Cell.t) ->
        Netlist.Cell.movable cl && cl.Netlist.Cell.kind = Netlist.Cell.Standard)
      c.Netlist.Circuit.cells
  in
  let adj = build_affinity c ~clusterable in
  (* FirstChoice: visit cells in shuffled order, merge each into its
     heaviest feasible neighbour's cluster. *)
  let group = Array.init n Fun.id in
  let rec find i = if group.(i) = i then i else find group.(i) in
  let area = Array.map Netlist.Cell.area c.Netlist.Circuit.cells in
  let order =
    Array.of_seq
      (Seq.filter (fun i -> clusterable.(i)) (Seq.init n Fun.id))
  in
  let rng = Numeric.Rng.create seed in
  Numeric.Rng.shuffle rng order;
  Array.iter
    (fun i ->
      let gi = find i in
      let best = ref None and best_w = ref 0. in
      Hashtbl.iter
        (fun j w ->
          let gj = find j in
          if gj <> gi && w > !best_w && area.(gi) +. area.(gj) <= max_cluster_area
          then begin
            best_w := w;
            best := Some gj
          end)
        adj.(i);
      match !best with
      | Some gj ->
        group.(gi) <- gj;
        area.(gj) <- area.(gj) +. area.(gi)
      | None -> ())
    order;
  (* Compact cluster ids, build coarse cells. *)
  let coarse_id = Array.make n (-1) in
  let next = ref 0 in
  let members_rev = ref [] in
  for i = 0 to n - 1 do
    let root = find i in
    if coarse_id.(root) = -1 then begin
      coarse_id.(root) <- !next;
      members_rev := [] :: !members_rev;
      incr next
    end;
    coarse_id.(i) <- coarse_id.(root)
  done;
  let members = Array.make !next [] in
  for i = n - 1 downto 0 do
    members.(coarse_id.(i)) <- i :: members.(coarse_id.(i))
  done;
  let rh = c.Netlist.Circuit.row_height in
  let coarse_cells =
    Array.init !next (fun cid ->
        match members.(cid) with
        | [ single ] ->
          let cl = c.Netlist.Circuit.cells.(single) in
          { cl with Netlist.Cell.id = cid }
        | group_members ->
          let total_area =
            List.fold_left
              (fun acc id -> acc +. Netlist.Cell.area c.Netlist.Circuit.cells.(id))
              0. group_members
          in
          let sequential =
            List.exists
              (fun id -> c.Netlist.Circuit.cells.(id).Netlist.Cell.sequential)
              group_members
          in
          let power =
            List.fold_left
              (fun acc id -> acc +. c.Netlist.Circuit.cells.(id).Netlist.Cell.power)
              0. group_members
          in
          Netlist.Cell.make ~id:cid
            ~name:(Printf.sprintf "cl%d" cid)
            ~width:(total_area /. rh) ~height:rh ~kind:Netlist.Cell.Standard
            ~sequential ~power ())
  in
  (* Coarse nets: flat nets with ≥ 2 distinct clusters. *)
  let coarse_nets = ref [] and coarse_net_count = ref 0 in
  Array.iter
    (fun (net : Netlist.Net.t) ->
      let clusters =
        Netlist.Net.cells net |> List.map (fun id -> coarse_id.(id))
        |> List.sort_uniq compare
      in
      match clusters with
      | _ :: _ :: _ ->
        (* Preserve driver-first ordering: the driver cell's cluster
           leads. *)
        let driver_cluster = coarse_id.((Netlist.Net.driver net).Netlist.Net.cell) in
        let ordered =
          driver_cluster :: List.filter (fun x -> x <> driver_cluster) clusters
        in
        let pins =
          List.map (fun cid -> { Netlist.Net.cell = cid; dx = 0.; dy = 0. }) ordered
          |> Array.of_list
        in
        coarse_nets :=
          Netlist.Net.make ~id:!coarse_net_count ~name:net.Netlist.Net.name pins
          :: !coarse_nets;
        incr coarse_net_count
      | [] | [ _ ] -> ())
    c.Netlist.Circuit.nets;
  let coarse =
    Netlist.Circuit.make
      ~name:(c.Netlist.Circuit.name ^ "+clustered")
      ~cells:coarse_cells
      ~nets:(Array.of_list (List.rev !coarse_nets))
      ~region:c.Netlist.Circuit.region ~row_height:rh
  in
  let coarse_fixed =
    List.map (fun (id, pos) -> (coarse_id.(id), pos)) fixed_positions
  in
  { coarse; cluster_of = coarse_id; members; coarse_fixed }

let expand t ~coarse_placement ~flat_placement =
  let golden = 2.399963 in
  Array.iteri
    (fun cid group_members ->
      let cx = coarse_placement.Netlist.Placement.x.(cid) in
      let cy = coarse_placement.Netlist.Placement.y.(cid) in
      List.iteri
        (fun k id ->
          (* Small deterministic sunflower spread around the cluster
             centre so the refinement starts from distinct points. *)
          let r = 0.8 *. sqrt (float_of_int k) in
          let a = golden *. float_of_int k in
          flat_placement.Netlist.Placement.x.(id) <- cx +. (r *. cos a);
          flat_placement.Netlist.Placement.y.(id) <- cy +. (r *. sin a))
        group_members)
    t.members

(* ------------------------------------------------------------------ *)
(* Recursive multilevel V-cycle                                         *)
(*                                                                      *)
(* The one-level flow above generalises: cluster repeatedly until the   *)
(* coarse netlist drops under [Config.ml_threshold] (or coarsening      *)
(* stops making progress), place the coarsest circuit with the normal   *)
(* controller-driven loop, then uncluster and refine level by level.    *)
(* Everything is a pure function of (circuit, config): clustering at    *)
(* level l seeds its RNG with ml_seed + l, the placer kernels are       *)
(* bitwise-deterministic for any domain count, and expansion is         *)
(* closed-form — so the hierarchy can be rebuilt identically on resume  *)
(* and a checkpoint only needs (level, done-steps, level placer state). *)

type hierarchy = {
  circuits : Netlist.Circuit.t array;
      (* .(0) = flat … .(depth) = coarsest *)
  clusterings : clustering array;
      (* .(l) clusters circuits.(l) into circuits.(l+1); length = depth *)
  level_fixed : (int * (float * float)) list array;
      (* fixed positions per level; length = depth + 1 *)
}

let depth h = Array.length h.clusterings

let build_hierarchy (config : Config.t) (c : Netlist.Circuit.t)
    ~fixed_positions =
  let threshold = Stdlib.max 1 config.Config.ml_threshold in
  let max_levels = Stdlib.max 1 config.Config.ml_max_levels in
  let circuits = ref [ c ] in
  let clusterings = ref [] in
  let fixed = ref [ fixed_positions ] in
  let current = ref c in
  let cur_fixed = ref fixed_positions in
  let level = ref 0 in
  let progress = ref true in
  (* Always coarsen at least once (the historical two-level flow); keep
     going while the level is still above the threshold and clustering
     still shrinks the netlist by a meaningful margin. *)
  while
    !progress && !level < max_levels
    && (!level = 0 || Netlist.Circuit.num_cells !current > threshold)
  do
    let t =
      cluster ~seed:(config.Config.ml_seed + !level) !current
        ~fixed_positions:!cur_fixed
    in
    let fine_n = Netlist.Circuit.num_cells !current in
    let coarse_n = Netlist.Circuit.num_cells t.coarse in
    if coarse_n * 20 >= fine_n * 19 then progress := false
    else begin
      circuits := t.coarse :: !circuits;
      clusterings := t :: !clusterings;
      fixed := t.coarse_fixed :: !fixed;
      current := t.coarse;
      cur_fixed := t.coarse_fixed;
      incr level
    end
  done;
  {
    circuits = Array.of_list (List.rev !circuits);
    clusterings = Array.of_list (List.rev !clusterings);
    level_fixed = Array.of_list (List.rev !fixed);
  }

(* Per-level placer configuration.  Coarse levels drop an explicit grid
   pin (the automatic bins adapt to the coarse cell sizes) and compound
   [ml_grid_scale] once per level. *)
let level_config (config : Config.t) ~level =
  if level = 0 then config
  else
    {
      config with
      Config.grid = None;
      grid_scale =
        config.Config.grid_scale
        *. (config.Config.ml_grid_scale ** float_of_int level);
    }

type run = {
  run_config : Config.t;
  hierarchy : hierarchy;
  mutable level : int;  (* current stage, depth … 0 *)
  mutable state : Placer.state;
  mutable level_steps : int;  (* transformations taken in this stage *)
}

let total_levels r = depth r.hierarchy + 1

let base_config r = r.run_config

let flat_circuit r = r.hierarchy.circuits.(0)

let current_level r = r.level

let current_level_steps r = r.level_steps

let current_state r = r.state

(* The coarsest stage runs the full controller loop; every refinement
   stage below it gets the (much smaller) per-level budget. *)
let level_budget r =
  let d = depth r.hierarchy in
  if r.level = d then r.run_config.Config.max_iterations
  else r.run_config.Config.ml_refine_iters

let init_level config h ~level =
  let circuit = h.circuits.(level) in
  let p0 =
    Netlist.Placement.centered circuit ~fixed_positions:h.level_fixed.(level)
  in
  Placer.init ~telemetry_level:level (level_config config ~level) circuit p0

let start (config : Config.t) (c : Netlist.Circuit.t) ~fixed_positions
    placement =
  let h = build_hierarchy config c ~fixed_positions in
  let d = depth h in
  if d = 0 then
    (* Clustering made no progress: degenerate to the flat flow from the
       caller's placement. *)
    {
      run_config = config;
      hierarchy = h;
      level = 0;
      state = Placer.init config c placement;
      level_steps = 0;
    }
  else
    {
      run_config = config;
      hierarchy = h;
      level = d;
      state = init_level config h ~level:d;
      level_steps = 0;
    }

(* Expand the current level's placement one level down and switch the
   run to the finer circuit. *)
let descend r =
  let l = r.level in
  if l = 0 then invalid_arg "Cluster.descend: already at the flat level";
  let t = r.hierarchy.clusterings.(l - 1) in
  let fine = r.hierarchy.circuits.(l - 1) in
  let fine_p =
    Netlist.Placement.centered fine
      ~fixed_positions:r.hierarchy.level_fixed.(l - 1)
  in
  expand t ~coarse_placement:r.state.Placer.placement ~flat_placement:fine_p;
  (* The sunflower spread can step over the region edge for clusters
     seated against it. *)
  Netlist.Placement.clamp_to_region fine fine_p;
  r.level <- l - 1;
  r.state <-
    Placer.init ~telemetry_level:(l - 1)
      (level_config r.run_config ~level:(l - 1))
      fine fine_p;
  r.level_steps <- 0

let level_done r = r.level_steps >= level_budget r || Placer.converged r.state

(* One V-cycle step: a single placement transformation, descending
   first when the current stage is finished.  Hooks reference flat-level
   cell/net indices, so they engage only at level 0.  Returns [false]
   when the flat level has converged (or exhausted its budget). *)
let rec step ?hooks r =
  if level_done r then
    if r.level = 0 then false
    else begin
      descend r;
      step ?hooks r
    end
  else begin
    let hooks = if r.level = 0 then hooks else None in
    ignore (Placer.transform ?hooks r.state);
    r.level_steps <- r.level_steps + 1;
    true
  end

let finished r = r.level = 0 && level_done r

(* Deterministic fast finish for cancelled/degraded runs: expand the
   remaining levels straight down without further optimisation. *)
let finish r =
  while r.level > 0 do
    descend r
  done;
  r.state.Placer.placement

(* Rebuild a run at a checkpointed position: the hierarchy is a pure
   function of (circuit, config), so only the level index, its completed
   step count and the level placer state need restoring.  [restore_state]
   receives the level's circuit and per-level config and returns the
   placer state (built from checkpointed arrays). *)
let resume (config : Config.t) (c : Netlist.Circuit.t) ~fixed_positions ~level
    ~level_steps ~restore_state =
  let h = build_hierarchy config c ~fixed_positions in
  let d = depth h in
  if level < 0 || level > d then
    invalid_arg
      (Printf.sprintf "Cluster.resume: level %d outside 0..%d" level d);
  let state = restore_state h.circuits.(level) (level_config config ~level) in
  { run_config = config; hierarchy = h; level; state; level_steps }

let place_multilevel ?seed config (c : Netlist.Circuit.t) ~fixed_positions
    placement =
  let config =
    match seed with
    | Some s -> { config with Config.ml_seed = s }
    | None -> config
  in
  let r = start config c ~fixed_positions placement in
  while step r do
    ()
  done;
  Netlist.Placement.clamp_to_region c r.state.Placer.placement;
  r.state.Placer.placement
