(** Configuration of the Kraftwerk placer. *)

type t = {
  k_param : float;
      (** the paper's K: force-scaling aggressiveness and hence speed of
          convergence; 0.2 standard, 1.0 fast (§4.2) *)
  max_iterations : int;  (** safety bound on placement transformations *)
  linearize : bool;
      (** apply the GORDIAN-L net-weight linearisation each
          transformation (§4.1, [14]).  Off by default: under continuous
          force injection the down-weighted long edges recover locality
          too slowly and final wire length suffers — see the
          "linearization" ablation in EXPERIMENTS.md. *)
  clique_cap : int;  (** nets above this degree use the sampled model *)
  anchor_weight : float;
      (** relative weight of the positive-definiteness anchor springs *)
  hold_weight : float;
      (** damping springs toward the current position, relative to each
          cell's incident stiffness; 0 disables (see {!Qp.System.build}) *)
  force_decay : float;
      (** leak factor β applied to the accumulated force vector before
          each new increment (e ← β·e + f).  1.0 is the paper's pure
          accumulation; values slightly below 1 let the overshoot noise
          of early transformations bleed out while the converged
          spreading force is maintained. *)
  stop_multiplier : float;
      (** the stopping criterion's multiple of the average cell area
          (4.0 in §4.2) *)
  grid : (int * int) option;
      (** density-grid bins (nx, ny); [None] picks automatically *)
  solver : Density.Forces.solver;  (** Poisson evaluator *)
  net_model : Qp.System.net_model;
      (** spring expansion: the paper's clique (default) or the
          Bound2Bound extension (ablation A6) *)
  domains : int option;
      (** domain-pool size for the parallel kernels.  [None] defers to
          the [KRAFTWERK_DOMAINS] environment variable / hardware
          default; [Some 1] forces exact sequential execution (results
          are bitwise-reproducible at any setting, but [1] also takes
          the historical single-core code paths).  Applied by
          {!Placer.init} via {!Numeric.Parallel.set_num_domains}. *)
  cg_tol : float;
      (** tight relative CG tolerance used once the placement has nearly
          converged (default 1e-8) *)
  cg_tol_loose : float;
      (** loose relative CG tolerance while density overflow is still
          high (default 1e-5).  Each transformation solves to
          [max cg_tol (min cg_tol_loose (cg_tol_loose · overflow²))] —
          early transformations are dominated by the still-moving
          density forces, so solving them to 1e-8 buys nothing; the
          tolerance tightens quadratically as the overflow falls.
          Set equal to [cg_tol] to disable the schedule. *)
  grid_scale : float;
      (** multiplier on the automatic density-grid bin counts (ignored
          when [grid] pins them explicitly).  Coarser grids (< 1) smooth
          the density field and speed up low-effort runs; finer grids
          (> 1) sharpen it for high-effort runs. *)
  stop_gap : float;
      (** relative LB/UB gap [(ub - lb) / ub] at which the convergence
          controller stops the loop (requires at least two legalized
          snapshots).  Non-positive disables the gap-target criterion. *)
  stop_stall : int;
      (** stop once this many consecutive UB probes fail to improve the
          best legalized snapshot by more than
          {!Controller.stall_tolerance} — the envelope has stalled and
          further iterations no longer buy legalized quality.
          Non-positive disables the stall criterion. *)
  legalize_every : int;
      (** iterations between legalized upper-bound snapshots; 0 disables
          the UB probe (and with it the gap criterion). *)
  penalty_initial : float;
      (** starting multiplier of the density force *)
  penalty_update : float;
      (** multiplicative growth of the penalty each transformation *)
  penalty_max : float;  (** saturation value of the penalty schedule *)
  ml_threshold : int;
      (** multilevel V-cycle ({!Cluster.start}): keep coarsening while
          the current level has more cells than this.  The flat circuit
          is always coarsened at least once (the historical two-level
          flow); a run only degenerates to flat when clustering makes no
          progress. *)
  ml_max_levels : int;
      (** hard cap on the number of coarsening levels of the V-cycle *)
  ml_refine_iters : int;
      (** per-level budget of refinement transformations after
          unclustering (the coarsest level runs the full
          controller-driven loop under [max_iterations]) *)
  ml_grid_scale : float;
      (** extra multiplier on [grid_scale] applied once per coarsening
          level, so coarse levels can run on coarser density grids
          (1.0 leaves every level at the automatic resolution) *)
  ml_seed : int;
      (** RNG seed of the FirstChoice clustering pass; level [l]
          clusters with [ml_seed + l], so trajectories are a pure
          function of (circuit, config) *)
  congest_every : int;
      (** iterations between congestion-target refreshes of the closed
          routability loop: every cadence tick the placer estimates
          routing overflow on a cheap legalized snapshot and folds it
          into a persistent per-bin density-target map that the density
          machinery reads as extra demand.  0 (the default) disables the
          loop entirely — trajectories are bitwise those of the
          wirelength objective. *)
  congest_strength : float;
      (** initial feedback gain of the congestion loop: each refresh
          adds [strength × overflow × pitch] area demand per bin *)
  congest_update : float;
      (** multiplicative anneal of the gain per refresh (≥ 1), the
          congestion analogue of [penalty_update] *)
  congest_max : float;  (** saturation value of the gain schedule *)
  congest_decay : float;
      (** retention of the previous target map per refresh in [0, 1);
          targets decay geometrically once a hotspot dissolves *)
  congest_pitch : float;
      (** wire pitch of the loop's routing grid ({!Route.Grid_spec}).
          Deliberately coarser than {!Route.Grid_spec.default_wire_pitch}:
          the loop wants a capacity model tight enough that hotspots show
          up while the placement still has freedom to dissolve them *)
}

(** [standard] is the configuration behind the Table-1 "Our Approach"
    column of EXPERIMENTS.md.  The paper's K = 0.2 is calibrated to this
    implementation's force-scaling convention as K = 0.05 with force
    leak β = 0.8 (see DESIGN.md, "calibration"). *)
val standard : t

(** [fast] trades wire length for a several-fold reduction in
    transformations, reproducing the paper's §6.1 fast mode
    (its K = 1.0). *)
val fast : t

(** [effort e] with [e] in 1..9 bundles CG tolerances, density-grid
    resolution, legalization cadence, stop gap/stall patience and penalty
    ramp into a single quality-vs-latency knob.  [effort 5 = standard];
    effort 1 ramps the density penalty for fast spreading and stops on a
    20 % envelope gap (or the first stalled probe) after at most 100
    transformations, effort 9 keeps the calibrated weight and demands a
    3 % gap or five stalled probes on a finer grid.
    @raise Invalid_argument outside 1..9. *)
val effort : int -> t

(** [routability base] overlays the congestion closed loop on any base
    preset: [congest_every] switches from 0 to 5 while everything the
    base tuned stays put.  Used by the engine's [routability]
    objective. *)
val routability : t -> t

val pp : Format.formatter -> t -> unit
