(** Convergence controller for the placement loop.

    Tracks the LB/UB HPWL envelope — the lower bound is the wirelength of
    the overlapping quadratic solution, the upper bound the wirelength of
    a cheap legalized snapshot taken every {!Config.legalize_every}
    iterations — and drives the multiplicative penalty schedule that
    scales the density force.  The loop stops once the relative gap
    [(ub - lb) / ub] falls to {!Config.stop_gap} or the envelope stalls
    for {!Config.stop_stall} consecutive probes, or when the paper's
    empty-square criterion ({!Density.Stop}) fires, whichever comes
    first. *)

type reason = Gap | Density | Max_steps

val reason_to_string : reason -> string
val reason_of_string : string -> reason option

(** Minimum relative improvement of the best legalized snapshot for a UB
    probe to reset the stall counter. *)
val stall_tolerance : float

(** State of the closed routability loop ({!Config.congest_every}),
    annealed and checkpointed next to the penalty. *)
type congest = {
  mutable strength : float;
      (** feedback gain the next refresh will apply; anneals from
          {!Config.congest_strength} toward {!Config.congest_max} *)
  mutable since_refresh : int;  (** iterations since the last refresh *)
  mutable refreshes : int;  (** total refreshes so far *)
  mutable est_overflow : float;
      (** estimated total overflow at the last refresh; nan before the
          first *)
  mutable est_max_overflow : float;
  mutable target_area : float;
      (** Σ of the target map after the last refresh *)
  mutable clamped_bins : int;
      (** bins saturated at one bin area by the last refresh *)
}

type t = {
  mutable penalty : float;  (** current density-force multiplier *)
  mutable since_legalize : int;
      (** iterations since the last UB snapshot *)
  mutable lb : float;  (** latest quadratic-solution HPWL *)
  mutable ub : float;  (** latest legalized HPWL; nan before the first *)
  mutable ub_min : float;
      (** best legalized HPWL that beat the previous best by at least
          {!stall_tolerance}; infinity before the first *)
  mutable gap : float;  (** latest relative gap; nan before the first *)
  mutable gap_min : float;  (** running minimum of [gap] *)
  mutable ub_evals : int;  (** number of UB snapshots taken *)
  mutable stall : int;
      (** consecutive probes without envelope progress *)
  mutable stop_reason : reason option;
      (** first stop criterion that fired, if any *)
  congest : congest;  (** routability-loop state *)
}

(** [create config] is a fresh controller with the penalty at
    {!Config.penalty_initial} and no envelope history. *)
val create : Config.t -> t

(** [copy t] is an independent mutable copy. *)
val copy : t -> t

(** [restore ...] rebuilds a controller verbatim from checkpointed
    fields.  The penalty and the congestion gain must round-trip bitwise
    — they are never recomputed from the iteration count. *)
val restore :
  penalty:float ->
  since_legalize:int ->
  lb:float ->
  ub:float ->
  ub_min:float ->
  gap:float ->
  gap_min:float ->
  ub_evals:int ->
  stall:int ->
  stop_reason:reason option ->
  congest:congest ->
  t

(** [fresh_congest config] is the pre-first-refresh loop state. *)
val fresh_congest : Config.t -> congest

(** [restore_congest ...] rebuilds checkpointed routability-loop state
    verbatim. *)
val restore_congest :
  strength:float ->
  since_refresh:int ->
  refreshes:int ->
  est_overflow:float ->
  est_max_overflow:float ->
  target_area:float ->
  clamped_bins:int ->
  congest

(** [observe_lb t hpwl] records the quadratic-solution HPWL of the
    current iteration. *)
val observe_lb : t -> float -> unit

(** [advance_penalty t config] applies one multiplicative step of the
    penalty schedule, saturating at {!Config.penalty_max}. *)
val advance_penalty : t -> Config.t -> unit

(** [legalization_due t config] is true when the iteration now being
    finished should take a UB snapshot. *)
val legalization_due : t -> Config.t -> bool

(** [observe_ub t ~lb ~ub] records a legalized snapshot: updates the
    envelope, resets the cadence counter, folds the relative gap into the
    running minimum and advances (or resets) the stall counter. *)
val observe_ub : t -> lb:float -> ub:float -> unit

(** [tick_legalize t] advances the cadence counter for an iteration that
    took no UB snapshot. *)
val tick_legalize : t -> unit

(** [congest_due t config] is true when the iteration now being run
    should refresh the congestion-target map. *)
val congest_due : t -> Config.t -> bool

(** [observe_congest t ...] records a target-map refresh: resets the
    cadence counter and stores what the refresh observed. *)
val observe_congest :
  t ->
  est_overflow:float ->
  est_max_overflow:float ->
  target_area:float ->
  clamped_bins:int ->
  unit

(** [tick_congest t] advances the cadence counter for an iteration that
    refreshed no targets. *)
val tick_congest : t -> unit

(** [advance_congest t config] applies one multiplicative step of the
    gain schedule, saturating at {!Config.congest_max}. *)
val advance_congest : t -> Config.t -> unit

(** [gap_converged t config ~n_movable ~iteration] is true when the
    envelope criterion is satisfied — at least two UB snapshots taken
    and either the running-minimum gap is at most {!Config.stop_gap}, or
    {!Config.stop_stall} consecutive probes stalled — or, for degenerate
    circuits with fewer than two movable cells, as soon as one
    transformation has run (agreeing with {!Density.Stop.should_stop}). *)
val gap_converged : t -> Config.t -> n_movable:int -> iteration:int -> bool

(** [record_stop t reason] records the first stop criterion that fired;
    later calls are ignored. *)
val record_stop : t -> reason -> unit
