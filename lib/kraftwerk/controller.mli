(** Convergence controller for the placement loop.

    Tracks the LB/UB HPWL envelope — the lower bound is the wirelength of
    the overlapping quadratic solution, the upper bound the wirelength of
    a cheap legalized snapshot taken every {!Config.legalize_every}
    iterations — and drives the multiplicative penalty schedule that
    scales the density force.  The loop stops once the relative gap
    [(ub - lb) / ub] falls to {!Config.stop_gap} or the envelope stalls
    for {!Config.stop_stall} consecutive probes, or when the paper's
    empty-square criterion ({!Density.Stop}) fires, whichever comes
    first. *)

type reason = Gap | Density | Max_steps

val reason_to_string : reason -> string
val reason_of_string : string -> reason option

(** Minimum relative improvement of the best legalized snapshot for a UB
    probe to reset the stall counter. *)
val stall_tolerance : float

type t = {
  mutable penalty : float;  (** current density-force multiplier *)
  mutable since_legalize : int;
      (** iterations since the last UB snapshot *)
  mutable lb : float;  (** latest quadratic-solution HPWL *)
  mutable ub : float;  (** latest legalized HPWL; nan before the first *)
  mutable ub_min : float;
      (** best legalized HPWL that beat the previous best by at least
          {!stall_tolerance}; infinity before the first *)
  mutable gap : float;  (** latest relative gap; nan before the first *)
  mutable gap_min : float;  (** running minimum of [gap] *)
  mutable ub_evals : int;  (** number of UB snapshots taken *)
  mutable stall : int;
      (** consecutive probes without envelope progress *)
  mutable stop_reason : reason option;
      (** first stop criterion that fired, if any *)
}

(** [create config] is a fresh controller with the penalty at
    {!Config.penalty_initial} and no envelope history. *)
val create : Config.t -> t

(** [copy t] is an independent mutable copy. *)
val copy : t -> t

(** [restore ...] rebuilds a controller verbatim from checkpointed
    fields.  The penalty must round-trip bitwise — it is never recomputed
    from the iteration count. *)
val restore :
  penalty:float ->
  since_legalize:int ->
  lb:float ->
  ub:float ->
  ub_min:float ->
  gap:float ->
  gap_min:float ->
  ub_evals:int ->
  stall:int ->
  stop_reason:reason option ->
  t

(** [observe_lb t hpwl] records the quadratic-solution HPWL of the
    current iteration. *)
val observe_lb : t -> float -> unit

(** [advance_penalty t config] applies one multiplicative step of the
    penalty schedule, saturating at {!Config.penalty_max}. *)
val advance_penalty : t -> Config.t -> unit

(** [legalization_due t config] is true when the iteration now being
    finished should take a UB snapshot. *)
val legalization_due : t -> Config.t -> bool

(** [observe_ub t ~lb ~ub] records a legalized snapshot: updates the
    envelope, resets the cadence counter, folds the relative gap into the
    running minimum and advances (or resets) the stall counter. *)
val observe_ub : t -> lb:float -> ub:float -> unit

(** [tick_legalize t] advances the cadence counter for an iteration that
    took no UB snapshot. *)
val tick_legalize : t -> unit

(** [gap_converged t config ~n_movable ~iteration] is true when the
    envelope criterion is satisfied — at least two UB snapshots taken
    and either the running-minimum gap is at most {!Config.stop_gap}, or
    {!Config.stop_stall} consecutive probes stalled — or, for degenerate
    circuits with fewer than two movable cells, as soon as one
    transformation has run (agreeing with {!Density.Stop.should_stop}). *)
val gap_converged : t -> Config.t -> n_movable:int -> iteration:int -> bool

(** [record_stop t reason] records the first stop criterion that fired;
    later calls are ignored. *)
val record_stop : t -> reason -> unit
