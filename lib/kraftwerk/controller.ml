type reason = Gap | Density | Max_steps

let reason_to_string = function
  | Gap -> "gap"
  | Density -> "density"
  | Max_steps -> "max_steps"

let reason_of_string = function
  | "gap" -> Some Gap
  | "density" -> Some Density
  | "max_steps" -> Some Max_steps
  | _ -> None

(* A UB probe only counts as envelope progress when it beats the best
   legalized snapshot so far by at least this relative margin; anything
   smaller is oscillation noise and feeds the stall counter instead. *)
let stall_tolerance = 1e-3

(* State of the closed routability loop, annealed and checkpointed next
   to the penalty: [strength] is the feedback gain the next refresh will
   apply, [since_refresh] the cadence counter, and the remaining fields
   report what the last refresh observed (telemetry; restored verbatim so
   a resumed trace continues bitwise). *)
type congest = {
  mutable strength : float;
  mutable since_refresh : int;
  mutable refreshes : int;
  mutable est_overflow : float;  (** nan before the first refresh *)
  mutable est_max_overflow : float;
  mutable target_area : float;
  mutable clamped_bins : int;
}

type t = {
  mutable penalty : float;
  mutable since_legalize : int;
  mutable lb : float;
  mutable ub : float;
  mutable ub_min : float;
  mutable gap : float;
  mutable gap_min : float;
  mutable ub_evals : int;
  mutable stall : int;
  mutable stop_reason : reason option;
  congest : congest;
}

let fresh_congest (config : Config.t) =
  {
    strength = config.Config.congest_strength;
    since_refresh = 0;
    refreshes = 0;
    est_overflow = Float.nan;
    est_max_overflow = Float.nan;
    target_area = 0.;
    clamped_bins = 0;
  }

let create (config : Config.t) =
  {
    penalty = config.Config.penalty_initial;
    since_legalize = 0;
    lb = 0.;
    ub = Float.nan;
    ub_min = Float.infinity;
    gap = Float.nan;
    gap_min = Float.infinity;
    ub_evals = 0;
    stall = 0;
    stop_reason = None;
    congest = fresh_congest config;
  }

let copy t = { t with congest = { t.congest with strength = t.congest.strength } }

(* Resuming a checkpoint must reproduce the exact multiplier the
   uninterrupted run would carry: the penalty is restored verbatim, never
   recomputed as [initial *. update ** iterations] (pow and the iterative
   product differ in the last ulp).  The congestion gain obeys the same
   rule. *)
let restore ~penalty ~since_legalize ~lb ~ub ~ub_min ~gap ~gap_min ~ub_evals
    ~stall ~stop_reason ~congest =
  {
    penalty;
    since_legalize;
    lb;
    ub;
    ub_min;
    gap;
    gap_min;
    ub_evals;
    stall;
    stop_reason;
    congest;
  }

let restore_congest ~strength ~since_refresh ~refreshes ~est_overflow
    ~est_max_overflow ~target_area ~clamped_bins =
  {
    strength;
    since_refresh;
    refreshes;
    est_overflow;
    est_max_overflow;
    target_area;
    clamped_bins;
  }

let observe_lb t hpwl = t.lb <- hpwl

let advance_penalty t (config : Config.t) =
  t.penalty <-
    Float.min config.Config.penalty_max
      (t.penalty *. config.Config.penalty_update)

let legalization_due t (config : Config.t) =
  config.Config.legalize_every > 0
  && t.since_legalize + 1 >= config.Config.legalize_every

let observe_ub t ~lb ~ub =
  t.ub <- ub;
  t.since_legalize <- 0;
  t.ub_evals <- t.ub_evals + 1;
  let gap = if ub > 0. then (ub -. lb) /. ub else 0. in
  t.gap <- gap;
  if gap < t.gap_min then t.gap_min <- gap;
  if ub < t.ub_min *. (1. -. stall_tolerance) then begin
    t.ub_min <- ub;
    t.stall <- 0
  end
  else t.stall <- t.stall + 1

let tick_legalize t = t.since_legalize <- t.since_legalize + 1

(* Congestion-loop cadence, mirroring the UB-probe machinery above. *)

let congest_due t (config : Config.t) =
  config.Config.congest_every > 0
  && t.congest.since_refresh + 1 >= config.Config.congest_every

let observe_congest t ~est_overflow ~est_max_overflow ~target_area
    ~clamped_bins =
  let c = t.congest in
  c.since_refresh <- 0;
  c.refreshes <- c.refreshes + 1;
  c.est_overflow <- est_overflow;
  c.est_max_overflow <- est_max_overflow;
  c.target_area <- target_area;
  c.clamped_bins <- clamped_bins

let tick_congest t = t.congest.since_refresh <- t.congest.since_refresh + 1

let advance_congest t (config : Config.t) =
  t.congest.strength <-
    Float.min config.Config.congest_max
      (t.congest.strength *. config.Config.congest_update)

(* The envelope criterion mirrors Density.Stop on degenerate circuits: a
   single movable cell reaches its quadratic optimum in one
   transformation, so the gap is declared closed at iteration 1 instead
   of grinding through the full schedule.

   Otherwise two tests close the envelope, either sufficing:
   - target met: the best relative LB/UB gap dipped under [stop_gap];
   - stalled: [stop_stall] consecutive probes failed to tighten the best
     legalized snapshot by more than [stall_tolerance], i.e. further
     iterations are no longer buying legalized quality. *)
let gap_converged t (config : Config.t) ~n_movable ~iteration =
  if n_movable < 2 then iteration >= 1
  else
    t.ub_evals >= 2
    && ((config.Config.stop_gap > 0. && t.gap_min <= config.Config.stop_gap)
       || (config.Config.stop_stall > 0 && t.stall >= config.Config.stop_stall)
       )

let record_stop t reason =
  match t.stop_reason with
  | Some _ -> ()
  | None -> t.stop_reason <- Some reason
