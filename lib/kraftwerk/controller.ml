type reason = Gap | Density | Max_steps

let reason_to_string = function
  | Gap -> "gap"
  | Density -> "density"
  | Max_steps -> "max_steps"

let reason_of_string = function
  | "gap" -> Some Gap
  | "density" -> Some Density
  | "max_steps" -> Some Max_steps
  | _ -> None

(* A UB probe only counts as envelope progress when it beats the best
   legalized snapshot so far by at least this relative margin; anything
   smaller is oscillation noise and feeds the stall counter instead. *)
let stall_tolerance = 1e-3

type t = {
  mutable penalty : float;
  mutable since_legalize : int;
  mutable lb : float;
  mutable ub : float;
  mutable ub_min : float;
  mutable gap : float;
  mutable gap_min : float;
  mutable ub_evals : int;
  mutable stall : int;
  mutable stop_reason : reason option;
}

let create (config : Config.t) =
  {
    penalty = config.Config.penalty_initial;
    since_legalize = 0;
    lb = 0.;
    ub = Float.nan;
    ub_min = Float.infinity;
    gap = Float.nan;
    gap_min = Float.infinity;
    ub_evals = 0;
    stall = 0;
    stop_reason = None;
  }

let copy t = { t with penalty = t.penalty }

(* Resuming a checkpoint must reproduce the exact multiplier the
   uninterrupted run would carry: the penalty is restored verbatim, never
   recomputed as [initial *. update ** iterations] (pow and the iterative
   product differ in the last ulp). *)
let restore ~penalty ~since_legalize ~lb ~ub ~ub_min ~gap ~gap_min ~ub_evals
    ~stall ~stop_reason =
  {
    penalty;
    since_legalize;
    lb;
    ub;
    ub_min;
    gap;
    gap_min;
    ub_evals;
    stall;
    stop_reason;
  }

let observe_lb t hpwl = t.lb <- hpwl

let advance_penalty t (config : Config.t) =
  t.penalty <-
    Float.min config.Config.penalty_max
      (t.penalty *. config.Config.penalty_update)

let legalization_due t (config : Config.t) =
  config.Config.legalize_every > 0
  && t.since_legalize + 1 >= config.Config.legalize_every

let observe_ub t ~lb ~ub =
  t.ub <- ub;
  t.since_legalize <- 0;
  t.ub_evals <- t.ub_evals + 1;
  let gap = if ub > 0. then (ub -. lb) /. ub else 0. in
  t.gap <- gap;
  if gap < t.gap_min then t.gap_min <- gap;
  if ub < t.ub_min *. (1. -. stall_tolerance) then begin
    t.ub_min <- ub;
    t.stall <- 0
  end
  else t.stall <- t.stall + 1

let tick_legalize t = t.since_legalize <- t.since_legalize + 1

(* The envelope criterion mirrors Density.Stop on degenerate circuits: a
   single movable cell reaches its quadratic optimum in one
   transformation, so the gap is declared closed at iteration 1 instead
   of grinding through the full schedule.

   Otherwise two tests close the envelope, either sufficing:
   - target met: the best relative LB/UB gap dipped under [stop_gap];
   - stalled: [stop_stall] consecutive probes failed to tighten the best
     legalized snapshot by more than [stall_tolerance], i.e. further
     iterations are no longer buying legalized quality. *)
let gap_converged t (config : Config.t) ~n_movable ~iteration =
  if n_movable < 2 then iteration >= 1
  else
    t.ub_evals >= 2
    && ((config.Config.stop_gap > 0. && t.gap_min <= config.Config.stop_gap)
       || (config.Config.stop_stall > 0 && t.stall >= config.Config.stop_stall)
       )

let record_stop t reason =
  match t.stop_reason with
  | Some _ -> ()
  | None -> t.stop_reason <- Some reason
