type t = {
  k_param : float;
  max_iterations : int;
  linearize : bool;
  clique_cap : int;
  anchor_weight : float;
  hold_weight : float;
  force_decay : float;
  stop_multiplier : float;
  grid : (int * int) option;
  solver : Density.Forces.solver;
  net_model : Qp.System.net_model;
  domains : int option;
  cg_tol : float;
  cg_tol_loose : float;
}

let standard =
  {
    k_param = 0.05;
    max_iterations = 250;
    linearize = false;
    clique_cap = 16;
    anchor_weight = 1e-6;
    hold_weight = 1.0;
    force_decay = 0.8;
    stop_multiplier = 2.;
    grid = None;
    solver = Density.Forces.Fft;
    net_model = Qp.System.Clique;
    domains = None;
    cg_tol = 1e-8;
    cg_tol_loose = 1e-5;
  }

let fast = { standard with k_param = 0.2; max_iterations = 80 }

let pp ppf t =
  Format.fprintf ppf "K=%g max_iter=%d linearize=%b cap=%d stop=%gx" t.k_param
    t.max_iterations t.linearize t.clique_cap t.stop_multiplier
