type t = {
  k_param : float;
  max_iterations : int;
  linearize : bool;
  clique_cap : int;
  anchor_weight : float;
  hold_weight : float;
  force_decay : float;
  stop_multiplier : float;
  grid : (int * int) option;
  solver : Density.Forces.solver;
  net_model : Qp.System.net_model;
  domains : int option;
  cg_tol : float;
  cg_tol_loose : float;
  grid_scale : float;
  stop_gap : float;
  stop_stall : int;
  legalize_every : int;
  penalty_initial : float;
  penalty_update : float;
  penalty_max : float;
  ml_threshold : int;
  ml_max_levels : int;
  ml_refine_iters : int;
  ml_grid_scale : float;
  ml_seed : int;
  congest_every : int;
  congest_strength : float;
  congest_update : float;
  congest_max : float;
  congest_decay : float;
  congest_pitch : float;
}

let standard =
  {
    k_param = 0.05;
    max_iterations = 250;
    linearize = false;
    clique_cap = 16;
    anchor_weight = 1e-6;
    hold_weight = 1.0;
    force_decay = 0.8;
    stop_multiplier = 2.;
    grid = None;
    solver = Density.Forces.Fft;
    net_model = Qp.System.Clique;
    domains = None;
    cg_tol = 1e-8;
    cg_tol_loose = 1e-5;
    grid_scale = 1.0;
    stop_gap = 0.08;
    stop_stall = 2;
    legalize_every = 10;
    penalty_initial = 1.0;
    penalty_update = 1.0;
    penalty_max = 1.0;
    ml_threshold = 3000;
    ml_max_levels = 8;
    ml_refine_iters = 60;
    ml_grid_scale = 1.0;
    ml_seed = 1;
    congest_every = 0;
    congest_strength = 0.5;
    congest_update = 1.1;
    congest_max = 2.0;
    congest_decay = 0.5;
    congest_pitch = 1.5;
  }

let fast = { standard with k_param = 0.2; max_iterations = 80 }

(* The routability overlay: switch the congestion loop on without
   touching anything the base preset tuned.  Every [congest_every]
   iterations the placer re-estimates routing overflow and folds it into
   a persistent per-bin target map (Route.Target); the feedback gain
   anneals multiplicatively from [congest_strength] toward [congest_max],
   the same shape as the density-penalty schedule. *)
let routability base = { base with congest_every = 5 }

(* Effort presets, Coloquinte-style: one integer trades quality for
   latency by bundling the CG tolerances, density-grid resolution,
   legalization cadence, stop gap and penalty ramp.  Effort 5 is exactly
   [standard]; lower efforts stop earlier on a looser envelope, higher
   efforts demand a tighter gap from a finer grid. *)
let effort e =
  if e < 1 || e > 9 then
    invalid_arg (Printf.sprintf "Config.effort: %d not in 1..9" e);
  let pick a = a.(e - 1) in
  {
    standard with
    cg_tol = pick [| 1e-6; 1e-7; 1e-7; 1e-8; 1e-8; 1e-9; 1e-9; 1e-10; 1e-10 |];
    cg_tol_loose =
      pick [| 1e-4; 1e-4; 1e-5; 1e-5; 1e-5; 1e-5; 1e-6; 1e-6; 1e-6 |];
    grid_scale = pick [| 0.5; 0.75; 0.75; 1.0; 1.0; 1.0; 1.0; 1.25; 1.25 |];
    legalize_every = pick [| 5; 5; 8; 8; 10; 10; 12; 12; 12 |];
    stop_gap = pick [| 0.2; 0.15; 0.12; 0.10; 0.08; 0.06; 0.05; 0.04; 0.03 |];
    stop_stall = pick [| 1; 1; 2; 2; 2; 3; 3; 4; 5 |];
    (* Low efforts ramp the density penalty past the calibrated weight:
       the circuit over-spreads slightly but the empty-square and
       envelope criteria fire much earlier.  Effort 5 keeps the schedule
       at the calibrated static weight — on well-behaved circuits any
       ramp past 1.0 measurably degrades final legalized quality. *)
    penalty_initial =
      pick [| 1.0; 1.0; 1.0; 1.0; 1.0; 0.95; 0.95; 0.9; 0.9 |];
    penalty_update =
      pick [| 1.05; 1.04; 1.02; 1.01; 1.0; 1.005; 1.005; 1.005; 1.005 |];
    penalty_max = pick [| 1.6; 1.4; 1.2; 1.1; 1.0; 1.0; 1.0; 1.0; 1.0 |];
    max_iterations = pick [| 100; 120; 150; 200; 250; 300; 350; 400; 450 |];
  }

let pp ppf t =
  Format.fprintf ppf
    "K=%g max_iter=%d linearize=%b cap=%d stop=%gx gap=%g stall=%d \
     legalize_every=%d penalty=%g*%g<=%g"
    t.k_param t.max_iterations t.linearize t.clique_cap t.stop_multiplier
    t.stop_gap t.stop_stall t.legalize_every t.penalty_initial
    t.penalty_update t.penalty_max
