(** Tetris-style greedy legalisation.

    Movable standard cells are processed in order of increasing global-
    placement x and packed left-to-right into row segments, each cell
    choosing the row/segment that minimises its displacement.  This is
    the final-placement role Domino plays in the paper's flow: global
    placements with small overlaps legalise with small displacement.

    Movable blocks must be legalised (or pinned) beforehand and passed as
    obstacles; fixed non-pad cells are collected as obstacles
    automatically. *)

(** Outcome of a legalisation. *)
type report = {
  placement : Netlist.Placement.t;  (** the legal placement *)
  total_displacement : float;
  max_displacement : float;
  overflowed : int;
      (** cells that did not fit any segment and were force-placed at the
          fullest segment's frontier (0 for sane utilisations) *)
}

(** Why a legalisation could not produce a placement.  Typed rather than
    an exception so a degraded caller (the job engine legalising a
    best-so-far placement at deadline expiry) can report failure instead
    of dying. *)
type error =
  | No_row_segments
      (** the obstacle set left no free segment in any row, so there is
          nowhere to put a cell that fits no segment *)

val pp_error : Format.formatter -> error -> unit

(** [legalize circuit placement ?extra_obstacles ()] legalises every
    movable standard cell; other cells keep their coordinates. *)
val legalize :
  Netlist.Circuit.t ->
  Netlist.Placement.t ->
  ?extra_obstacles:Geometry.Rect.t list ->
  unit ->
  (report, error) result
