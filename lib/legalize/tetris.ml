type report = {
  placement : Netlist.Placement.t;
  total_displacement : float;
  max_displacement : float;
  overflowed : int;
}

type error = No_row_segments

let pp_error ppf = function
  | No_row_segments ->
    Format.fprintf ppf "no free row segment anywhere in the region"

(* Local escape from the per-cell loop; converted to [Error] below so
   callers see a typed result, never an exception. *)
exception Escape of error

let legalize (c : Netlist.Circuit.t) (p : Netlist.Placement.t)
    ?(extra_obstacles = []) () =
  let fixed_obstacles =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter_map (fun (cl : Netlist.Cell.t) ->
           if
             cl.Netlist.Cell.fixed && cl.Netlist.Cell.kind <> Netlist.Cell.Pad
           then Some (Netlist.Placement.cell_rect c p cl.Netlist.Cell.id)
           else None)
  in
  let rows = Rows.build c ~obstacles:(extra_obstacles @ fixed_obstacles) in
  let nrows = Array.length rows in
  let out = Netlist.Placement.copy p in
  let targets =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter (fun (cl : Netlist.Cell.t) ->
           Netlist.Cell.movable cl && cl.Netlist.Cell.kind = Netlist.Cell.Standard)
    |> List.sort (fun (a : Netlist.Cell.t) b ->
           Float.compare
             (p.Netlist.Placement.x.(a.Netlist.Cell.id))
             (p.Netlist.Placement.x.(b.Netlist.Cell.id)))
  in
  let total = ref 0. and maxd = ref 0. and overflowed = ref 0 in
  try
    List.iter
    (fun (cl : Netlist.Cell.t) ->
      let id = cl.Netlist.Cell.id in
      let w = cl.Netlist.Cell.width in
      let desired_left = p.Netlist.Placement.x.(id) -. (w /. 2.) in
      let desired_y = p.Netlist.Placement.y.(id) in
      let home_row = Rows.row_of_y c desired_y in
      (* Scan rows outward from the desired one; once the vertical cost
         alone exceeds the best total cost, no further row can win. *)
      let best = ref None and best_cost = ref Float.infinity in
      let consider (seg : Rows.segment) =
        let x = Float.max seg.Rows.frontier desired_left in
        if x +. w <= seg.Rows.x_hi +. 1e-9 then begin
          let dy = Rows.row_center_y c seg.Rows.row -. desired_y in
          let cost = Float.abs (x -. desired_left) +. Float.abs dy in
          if cost < !best_cost then begin
            best_cost := cost;
            best := Some (seg, x)
          end
        end
      in
      let try_row r = if r >= 0 && r < nrows then List.iter consider rows.(r) in
      try_row home_row;
      let offset = ref 1 in
      let continue = ref true in
      while !continue do
        let dy =
          float_of_int !offset *. c.Netlist.Circuit.row_height
        in
        if dy -. c.Netlist.Circuit.row_height > !best_cost then continue := false
        else begin
          try_row (home_row - !offset);
          try_row (home_row + !offset);
          incr offset;
          if !offset > nrows then continue := false
        end
      done;
      let seg, x =
        match !best with
        | Some sx -> sx
        | None ->
          (* Nothing fits: force into the segment with the most room. *)
          incr overflowed;
          let best_seg = ref None and best_room = ref Float.neg_infinity in
          Array.iter
            (List.iter (fun (s : Rows.segment) ->
                 let room = s.Rows.x_hi -. s.Rows.frontier in
                 if room > !best_room then begin
                   best_room := room;
                   best_seg := Some s
                 end))
            rows;
          (match !best_seg with
          | Some s -> (s, s.Rows.frontier)
          | None -> raise (Escape No_row_segments))
      in
      seg.Rows.frontier <- x +. w;
      out.Netlist.Placement.x.(id) <- x +. (w /. 2.);
      out.Netlist.Placement.y.(id) <- Rows.row_center_y c seg.Rows.row;
      let dx = out.Netlist.Placement.x.(id) -. p.Netlist.Placement.x.(id) in
      let dy = out.Netlist.Placement.y.(id) -. p.Netlist.Placement.y.(id) in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      total := !total +. d;
      if d > !maxd then maxd := d)
      targets;
    Ok
      {
        placement = out;
        total_displacement = !total;
        max_displacement = !maxd;
        overflowed = !overflowed;
      }
  with Escape e -> Error e
