type t = { crit : float array }

let create num_nets = { crit = Array.make num_nets 0. }

let update t (p : Params.t) ~net_slack =
  if Array.length net_slack <> Array.length t.crit then
    invalid_arg "Criticality.update: slack length mismatch";
  (* Rank analysed nets by slack, most critical first. *)
  let analysed =
    Array.to_seqi net_slack
    |> Seq.filter (fun (_, s) -> s < Float.infinity)
    |> Array.of_seq
  in
  Array.sort (fun (_, a) (_, b) -> Float.compare a b) analysed;
  let n_critical =
    int_of_float
      (Float.ceil (p.Params.critical_fraction *. float_of_int (Array.length analysed)))
  in
  let is_critical = Array.make (Array.length t.crit) false in
  Array.iteri
    (fun rank (net_id, _) -> if rank < n_critical then is_critical.(net_id) <- true)
    analysed;
  Array.iteri
    (fun i c ->
      t.crit.(i) <- (if is_critical.(i) then (c +. 1.) /. 2. else c /. 2.))
    t.crit

let criticality t net_id = t.crit.(net_id)

let to_array t = Array.copy t.crit

let of_array a = { crit = Array.copy a }

let apply_weights ?(cap = Float.infinity) t weights =
  if Array.length weights <> Array.length t.crit then
    invalid_arg "Criticality.apply_weights: length mismatch";
  Array.iteri
    (fun i c -> weights.(i) <- Float.min cap (weights.(i) *. (1. +. c)))
    t.crit
