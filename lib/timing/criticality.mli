(** The paper's §5 net-criticality recurrence and weight update.

    At step m each net has a criticality c⁽ᵐ⁾, initialised to zero:

    c⁽ᵐ⁾ = (c⁽ᵐ⁻¹⁾ + 1)/2 if the net is among the [critical_fraction]
    most critical nets at step m, else c⁽ᵐ⁻¹⁾/2.

    The weight update multiplies w⁽ᵐ⁻¹⁾ by (1 + c⁽ᵐ⁾): a never-critical
    net keeps its weight, an always-critical net doubles per step.  The
    exponential decay suppresses net-weight oscillation. *)

type t

(** [create num_nets] starts all criticalities at zero. *)
val create : int -> t

(** [update t params ~net_slack] ranks analysed nets by slack, marks the
    most-critical fraction and applies the recurrence.  Excluded nets
    (infinite slack) can never be critical. *)
val update : t -> Params.t -> net_slack:float array -> unit

(** [criticality t net_id] reads a net's current criticality ∈ [0, 1). *)
val criticality : t -> int -> float

(** [apply_weights ?cap t weights] multiplies [weights.(i)] by
    (1 + criticality i) in place, saturating at [cap] (default none). *)
val apply_weights : ?cap:float -> t -> float array -> unit

(** [to_array t] / [of_array a] expose the per-net criticalities so a
    timing-driven run can be checkpointed and resumed with its
    exponential-decay state intact (both copy). *)
val to_array : t -> float array

val of_array : float array -> t
