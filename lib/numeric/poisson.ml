type field = { rows : int; cols : int; fx : float array; fy : float array }

let check_size ~rows ~cols density name =
  if rows <= 0 || cols <= 0 then invalid_arg (name ^ ": empty grid");
  if Array.length density <> rows * cols then invalid_arg (name ^ ": size mismatch")

let two_pi = 2. *. Float.pi

let direct_force_field ~rows ~cols ~hx ~hy density =
  check_size ~rows ~cols density "Poisson.direct_force_field";
  let fx = Array.make (rows * cols) 0. in
  let fy = Array.make (rows * cols) 0. in
  let cell_area = hx *. hy in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let ax = ref 0. and ay = ref 0. in
      for r' = 0 to rows - 1 do
        for c' = 0 to cols - 1 do
          if r <> r' || c <> c' then begin
            let d = density.((r' * cols) + c') in
            if d <> 0. then begin
              let dx = float_of_int (c - c') *. hx in
              let dy = float_of_int (r - r') *. hy in
              let r2 = (dx *. dx) +. (dy *. dy) in
              ax := !ax +. (d *. dx /. r2);
              ay := !ay +. (d *. dy /. r2)
            end
          end
        done
      done;
      fx.((r * cols) + c) <- !ax *. cell_area /. two_pi;
      fy.((r * cols) + c) <- !ay *. cell_area /. two_pi
    done
  done;
  { rows; cols; fx; fy }

(* Frequency-domain force kernels.  They depend only on the grid
   geometry (rows, cols, hx, hy), not on the density, so the Kraftwerk
   loop — which calls [fft_force_field] every iteration on the same
   grid — pays kernel construction and the two forward kernel FFTs only
   once; iterations 2..N hit the cache. *)
type kernel_spectrum = {
  prows : int;
  pcols : int;
  kxr : float array;
  kxi : float array;
  kyr : float array;
  kyi : float array;
}

let kernel_cache : (int * int * float * float, kernel_spectrum) Hashtbl.t =
  Hashtbl.create 4

let kernel_cache_lock = Mutex.create ()

let kernel_cache_limit = 8

let kernel_cache_hits = ref 0

let kernel_cache_misses = ref 0

let clear_kernel_cache () =
  Mutex.lock kernel_cache_lock;
  Hashtbl.reset kernel_cache;
  kernel_cache_hits := 0;
  kernel_cache_misses := 0;
  Mutex.unlock kernel_cache_lock

let kernel_cache_stats () = (!kernel_cache_hits, !kernel_cache_misses)

let build_kernel_spectrum ~rows ~cols ~hx ~hy =
  let prows = Fft.next_pow2 (2 * rows) in
  let pcols = Fft.next_pow2 (2 * cols) in
  let n = prows * pcols in
  (* Force kernels indexed by offset (dr, dc) with wraparound for negative
     offsets, so the cyclic convolution on the padded grid equals the
     linear convolution on the original one. *)
  let kx = Array.make n 0. and ky = Array.make n 0. in
  let cell_area = hx *. hy in
  for dr = -(rows - 1) to rows - 1 do
    for dc = -(cols - 1) to cols - 1 do
      if dr <> 0 || dc <> 0 then begin
        let dx = float_of_int dc *. hx in
        let dy = float_of_int dr *. hy in
        let r2 = (dx *. dx) +. (dy *. dy) in
        let idx_r = if dr >= 0 then dr else prows + dr in
        let idx_c = if dc >= 0 then dc else pcols + dc in
        let i = (idx_r * pcols) + idx_c in
        kx.(i) <- dx /. r2 *. cell_area /. two_pi;
        ky.(i) <- dy /. r2 *. cell_area /. two_pi
      end
    done
  done;
  let kxi = Array.make n 0. and kyi = Array.make n 0. in
  let (), () =
    Parallel.both
      (fun () -> Fft.transform2 ~inverse:false ~rows:prows ~cols:pcols kx kxi)
      (fun () -> Fft.transform2 ~inverse:false ~rows:prows ~cols:pcols ky kyi)
  in
  { prows; pcols; kxr = kx; kxi; kyr = ky; kyi }

let kernel_spectrum ~rows ~cols ~hx ~hy =
  let key = (rows, cols, hx, hy) in
  Mutex.lock kernel_cache_lock;
  match Hashtbl.find_opt kernel_cache key with
  | Some sp ->
    incr kernel_cache_hits;
    Mutex.unlock kernel_cache_lock;
    Obs.Registry.incr "poisson/kernel_cache_hits";
    sp
  | None ->
    incr kernel_cache_misses;
    Mutex.unlock kernel_cache_lock;
    Obs.Registry.incr "poisson/kernel_cache_misses";
    let sp = build_kernel_spectrum ~rows ~cols ~hx ~hy in
    Mutex.lock kernel_cache_lock;
    if Hashtbl.length kernel_cache >= kernel_cache_limit then
      Hashtbl.reset kernel_cache;
    Hashtbl.replace kernel_cache key sp;
    Mutex.unlock kernel_cache_lock;
    sp

let fft_force_field ~rows ~cols ~hx ~hy density =
  check_size ~rows ~cols density "Poisson.fft_force_field";
  let sp = kernel_spectrum ~rows ~cols ~hx ~hy in
  let prows = sp.prows and pcols = sp.pcols in
  let n = prows * pcols in
  let sr = Array.make n 0. and si = Array.make n 0. in
  for r = 0 to rows - 1 do
    Array.blit density (r * cols) sr (r * pcols) cols
  done;
  (* One forward transform of the padded density, shared read-only by
     both axis convolutions (the old path forward-transformed it twice). *)
  Fft.transform2 ~inverse:false ~rows:prows ~cols:pcols sr si;
  let convolve kr ki =
    let cr = Array.make n 0. and ci = Array.make n 0. in
    for i = 0 to n - 1 do
      cr.(i) <- (sr.(i) *. kr.(i)) -. (si.(i) *. ki.(i));
      ci.(i) <- (sr.(i) *. ki.(i)) +. (si.(i) *. kr.(i))
    done;
    Fft.transform2 ~inverse:true ~rows:prows ~cols:pcols cr ci;
    cr
  in
  let conv_x, conv_y =
    Parallel.both
      (fun () -> convolve sp.kxr sp.kxi)
      (fun () -> convolve sp.kyr sp.kyi)
  in
  let fx = Array.make (rows * cols) 0. in
  let fy = Array.make (rows * cols) 0. in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      fx.((r * cols) + c) <- conv_x.((r * pcols) + c);
      fy.((r * cols) + c) <- conv_y.((r * pcols) + c)
    done
  done;
  { rows; cols; fx; fy }

let sor_potential ~rows ~cols ~hx ~hy ?(omega = 1.8) ?(tol = 1e-7) ?(max_iter = 10_000)
    density =
  check_size ~rows ~cols density "Poisson.sor_potential";
  let phi = Array.make (rows * cols) 0. in
  let hx2 = hx *. hx and hy2 = hy *. hy in
  (* 5-point stencil of ∇²Φ = D with Φ = 0 outside the grid. *)
  let denom = 2. *. ((1. /. hx2) +. (1. /. hy2)) in
  let iter = ref 0 in
  let delta = ref Float.infinity in
  while !delta > tol && !iter < max_iter do
    delta := 0.;
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        let get rr cc =
          if rr < 0 || rr >= rows || cc < 0 || cc >= cols then 0.
          else phi.((rr * cols) + cc)
        in
        let i = (r * cols) + c in
        let sum =
          ((get r (c - 1) +. get r (c + 1)) /. hx2)
          +. ((get (r - 1) c +. get (r + 1) c) /. hy2)
        in
        let gs = (sum -. density.(i)) /. denom in
        let updated = phi.(i) +. (omega *. (gs -. phi.(i))) in
        let d = Float.abs (updated -. phi.(i)) in
        if d > !delta then delta := d;
        phi.(i) <- updated
      done
    done;
    incr iter
  done;
  phi

let gradient_force ~rows ~cols ~hx ~hy phi =
  check_size ~rows ~cols phi "Poisson.gradient_force";
  let fx = Array.make (rows * cols) 0. in
  let fy = Array.make (rows * cols) 0. in
  let get r c = phi.((r * cols) + c) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let dpx =
        if cols = 1 then 0.
        else if c = 0 then (get r 1 -. get r 0) /. hx
        else if c = cols - 1 then (get r (cols - 1) -. get r (cols - 2)) /. hx
        else (get r (c + 1) -. get r (c - 1)) /. (2. *. hx)
      in
      let dpy =
        if rows = 1 then 0.
        else if r = 0 then (get 1 c -. get 0 c) /. hy
        else if r = rows - 1 then (get (rows - 1) c -. get (rows - 2) c) /. hy
        else (get (r + 1) c -. get (r - 1) c) /. (2. *. hy)
      in
      fx.((r * cols) + c) <- -.dpx;
      fy.((r * cols) + c) <- -.dpy
    done
  done;
  { rows; cols; fx; fy }

let max_magnitude f =
  (* Track the maximum *squared* magnitude and take one sqrt at the end;
     sqrt is monotone, so this is exact (and bitwise-identical for the
     maximising bin). *)
  let acc = ref 0. in
  for i = 0 to Array.length f.fx - 1 do
    let m2 = (f.fx.(i) *. f.fx.(i)) +. (f.fy.(i) *. f.fy.(i)) in
    if m2 > !acc then acc := m2
  done;
  sqrt !acc

let scale_field s f =
  Vec.scale s f.fx;
  Vec.scale s f.fy
