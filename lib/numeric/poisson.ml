type field = { rows : int; cols : int; fx : float array; fy : float array }

let check_size ~rows ~cols density name =
  if rows <= 0 || cols <= 0 then invalid_arg (name ^ ": empty grid");
  if Array.length density <> rows * cols then invalid_arg (name ^ ": size mismatch")

let two_pi = 2. *. Float.pi

let direct_force_field ~rows ~cols ~hx ~hy density =
  check_size ~rows ~cols density "Poisson.direct_force_field";
  let fx = Array.make (rows * cols) 0. in
  let fy = Array.make (rows * cols) 0. in
  let cell_area = hx *. hy in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let ax = ref 0. and ay = ref 0. in
      for r' = 0 to rows - 1 do
        for c' = 0 to cols - 1 do
          if r <> r' || c <> c' then begin
            let d = density.((r' * cols) + c') in
            if d <> 0. then begin
              let dx = float_of_int (c - c') *. hx in
              let dy = float_of_int (r - r') *. hy in
              let r2 = (dx *. dx) +. (dy *. dy) in
              ax := !ax +. (d *. dx /. r2);
              ay := !ay +. (d *. dy /. r2)
            end
          end
        done
      done;
      fx.((r * cols) + c) <- !ax *. cell_area /. two_pi;
      fy.((r * cols) + c) <- !ay *. cell_area /. two_pi
    done
  done;
  { rows; cols; fx; fy }

(* Frequency-domain force kernels.  They depend only on the grid
   geometry (rows, cols, hx, hy), not on the density, so the Kraftwerk
   loop — which calls [fft_force_field] every iteration on the same
   grid — pays kernel construction and the two forward kernel FFTs only
   once; iterations 2..N hit the cache. *)
type kernel_spectrum = {
  prows : int;
  pcols : int;
  kxr : float array;
  kxi : float array;
  kyr : float array;
  kyi : float array;
}

let kernel_cache : (int * int * float * float, kernel_spectrum) Hashtbl.t =
  Hashtbl.create 4

(* Half-plane Hermitian kernel spectra of the real-transform path (the
   placer's hot path); built and cached like [kernel_spectrum], stored
   as prows × (pcols/2 + 1) planes. *)
type real_kernel = {
  rk_prows : int;
  rk_pcols : int;
  rk_hw : int;  (* pcols/2 + 1: stored half-plane width *)
  rk_kxr : float array;  (* prows × hw *)
  rk_kxi : float array;
  rk_kyr : float array;
  rk_kyi : float array;
}

let real_cache : (int * int * float * float, real_kernel) Hashtbl.t =
  Hashtbl.create 4

let kernel_cache_lock = Mutex.create ()

let kernel_cache_limit = 8

let kernel_cache_hits = ref 0

let kernel_cache_misses = ref 0

let clear_kernel_cache () =
  Mutex.lock kernel_cache_lock;
  Hashtbl.reset kernel_cache;
  Hashtbl.reset real_cache;
  kernel_cache_hits := 0;
  kernel_cache_misses := 0;
  Mutex.unlock kernel_cache_lock

let kernel_cache_stats () = (!kernel_cache_hits, !kernel_cache_misses)

let build_kernel_spectrum ~rows ~cols ~hx ~hy =
  let prows = Fft.next_pow2 (2 * rows) in
  let pcols = Fft.next_pow2 (2 * cols) in
  let n = prows * pcols in
  (* Force kernels indexed by offset (dr, dc) with wraparound for negative
     offsets, so the cyclic convolution on the padded grid equals the
     linear convolution on the original one. *)
  let kx = Array.make n 0. and ky = Array.make n 0. in
  let cell_area = hx *. hy in
  for dr = -(rows - 1) to rows - 1 do
    for dc = -(cols - 1) to cols - 1 do
      if dr <> 0 || dc <> 0 then begin
        let dx = float_of_int dc *. hx in
        let dy = float_of_int dr *. hy in
        let r2 = (dx *. dx) +. (dy *. dy) in
        let idx_r = if dr >= 0 then dr else prows + dr in
        let idx_c = if dc >= 0 then dc else pcols + dc in
        let i = (idx_r * pcols) + idx_c in
        kx.(i) <- dx /. r2 *. cell_area /. two_pi;
        ky.(i) <- dy /. r2 *. cell_area /. two_pi
      end
    done
  done;
  let kxi = Array.make n 0. and kyi = Array.make n 0. in
  let (), () =
    Parallel.both
      (fun () -> Fft.transform2 ~inverse:false ~rows:prows ~cols:pcols kx kxi)
      (fun () -> Fft.transform2 ~inverse:false ~rows:prows ~cols:pcols ky kyi)
  in
  { prows; pcols; kxr = kx; kxi; kyr = ky; kyi }

let kernel_spectrum ~rows ~cols ~hx ~hy =
  let key = (rows, cols, hx, hy) in
  Mutex.lock kernel_cache_lock;
  match Hashtbl.find_opt kernel_cache key with
  | Some sp ->
    incr kernel_cache_hits;
    Mutex.unlock kernel_cache_lock;
    Obs.Registry.incr "poisson/kernel_cache_hits";
    sp
  | None ->
    incr kernel_cache_misses;
    Mutex.unlock kernel_cache_lock;
    Obs.Registry.incr "poisson/kernel_cache_misses";
    let sp = build_kernel_spectrum ~rows ~cols ~hx ~hy in
    Mutex.lock kernel_cache_lock;
    if Hashtbl.length kernel_cache >= kernel_cache_limit then
      Hashtbl.reset kernel_cache;
    Hashtbl.replace kernel_cache key sp;
    Mutex.unlock kernel_cache_lock;
    sp

let fft_force_field_complex ~rows ~cols ~hx ~hy density =
  check_size ~rows ~cols density "Poisson.fft_force_field_complex";
  let sp = kernel_spectrum ~rows ~cols ~hx ~hy in
  let prows = sp.prows and pcols = sp.pcols in
  let n = prows * pcols in
  let sr = Array.make n 0. and si = Array.make n 0. in
  for r = 0 to rows - 1 do
    Array.blit density (r * cols) sr (r * pcols) cols
  done;
  (* One forward transform of the padded density, shared read-only by
     both axis convolutions (the old path forward-transformed it twice). *)
  Fft.transform2 ~inverse:false ~rows:prows ~cols:pcols sr si;
  let convolve kr ki =
    let cr = Array.make n 0. and ci = Array.make n 0. in
    for i = 0 to n - 1 do
      cr.(i) <- (sr.(i) *. kr.(i)) -. (si.(i) *. ki.(i));
      ci.(i) <- (sr.(i) *. ki.(i)) +. (si.(i) *. kr.(i))
    done;
    Fft.transform2 ~inverse:true ~rows:prows ~cols:pcols cr ci;
    cr
  in
  let conv_x, conv_y =
    Parallel.both
      (fun () -> convolve sp.kxr sp.kxi)
      (fun () -> convolve sp.kyr sp.kyi)
  in
  let fx = Array.make (rows * cols) 0. in
  let fy = Array.make (rows * cols) 0. in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      fx.((r * cols) + c) <- conv_x.((r * pcols) + c);
      fy.((r * cols) + c) <- conv_y.((r * pcols) + c)
    done
  done;
  { rows; cols; fx; fy }

(* ------------------------------------------------------------------ *)
(* Real-transform path                                                  *)
(*                                                                      *)
(* The complex path above zero-pads the density to a full P×Q complex   *)
(* grid (imaginary plane everywhere zero), forward transforms it, runs  *)
(* two full complex convolutions and throws three quarters of every     *)
(* inverse transform away.  The path below exploits the two structural  *)
(* redundancies:                                                        *)
(*                                                                      *)
(*   1. the density and both kernels are real, so their spectra are     *)
(*      Hermitian — only the half plane v ≤ Q/2 is stored, computed     *)
(*      with real-input FFTs of half the butterfly count, and the row   *)
(*      passes run only over the R occupied rows of the padded grid;    *)
(*   2. the two inverse transforms pack into one: with                  *)
(*      Z = F̂x + i·F̂y, a single complex inverse yields fx as the real   *)
(*      part and fy as the imaginary part.                              *)
(*                                                                      *)
(* The operator is still the exact padded linear convolution — same     *)
(* kernels, same boundary behaviour — so it agrees with                 *)
(* [direct_force_field] to machine precision, like the complex path.    *)
(* A DCT-based Neumann spectral solve (ePlace-style) would be faster    *)
(* still but changes the boundary conditions; the real-to-real DCT/DST  *)
(* transforms live in {!Fft} for spectral experiments and tests.        *)
(*                                                                      *)
(* Half-plane kernel spectra are cached per (rows, cols, hx, hy) next   *)
(* to the complex cache; mutable scratch lives in domain-local storage  *)
(* keyed by padded geometry, so concurrent jobs on different domains    *)
(* never share buffers and a fixed-grid loop stops allocating after     *)
(* its first call. *)

(* Per-domain reusable planes for one padded geometry. *)
type workspace = {
  w_dr : float array;  (* prows × hw: density half spectrum *)
  w_di : float array;
  w_zr : float array;  (* prows × pcols: packed dual inverse plane *)
  w_zi : float array;
}

let workspace_key : (int * int, workspace) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let workspace ~prows ~pcols =
  let tbl = Domain.DLS.get workspace_key in
  match Hashtbl.find_opt tbl (prows, pcols) with
  | Some w -> w
  | None ->
    if Hashtbl.length tbl >= 4 then Hashtbl.reset tbl;
    let hw = (pcols / 2) + 1 in
    let w =
      {
        w_dr = Array.make (prows * hw) 0.;
        w_di = Array.make (prows * hw) 0.;
        w_zr = Array.make (prows * pcols) 0.;
        w_zi = Array.make (prows * pcols) 0.;
      }
    in
    Hashtbl.replace tbl (prows, pcols) w;
    w

(* Small per-domain scratch pairs (rfft packing, column gathers), keyed
   by length.  Looked up inside parallel chunk bodies, so each executing
   domain transparently gets its own. *)
let pair_key : (int, float array * float array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let scratch_pair len =
  let tbl = Domain.DLS.get pair_key in
  match Hashtbl.find_opt tbl len with
  | Some p -> p
  | None ->
    if Hashtbl.length tbl >= 8 then Hashtbl.reset tbl;
    let p = (Array.make len 0., Array.make len 0.) in
    Hashtbl.replace tbl len p;
    p

(* Column FFTs are the cache-hostile passes: one column of a row-major
   plane touches one float per row-sized stride, so a column-at-a-time
   gather wastes 7/8 of every cache line.  [col_batch] columns are
   gathered, transformed and scattered together instead — each plane
   cache line is used fully — and since every column's transform is the
   same independent operation, results are bitwise those of the
   column-at-a-time loop for any batch width. *)
let col_batch = 8

let batched_col_fft cp ~inverse ~prows ~width ~re ~im a b =
  let colr, coli = scratch_pair (col_batch * prows) in
  let v = ref a in
  while !v < b do
    let w = Stdlib.min col_batch (b - !v) in
    for u = 0 to prows - 1 do
      let base = (u * width) + !v in
      for k = 0 to w - 1 do
        colr.((k * prows) + u) <- re.(base + k);
        coli.((k * prows) + u) <- im.(base + k)
      done
    done;
    for k = 0 to w - 1 do
      Fft.cfft cp ~inverse colr coli (k * prows)
    done;
    for u = 0 to prows - 1 do
      let base = (u * width) + !v in
      for k = 0 to w - 1 do
        re.(base + k) <- colr.((k * prows) + u);
        im.(base + k) <- coli.((k * prows) + u)
      done
    done;
    v := !v + w
  done

(* Forward half-spectrum transform of a real [src_rows × src_cols] grid
   zero-extended to [prows × pcols]: real-input FFTs over the occupied
   rows only, then one complex FFT down each of the hw stored columns. *)
let forward_real ~prows ~pcols ~hw ~src ~src_rows ~src_cols ~dr ~di =
  let rp = Fft.rplan pcols in
  let cp = Fft.plan prows in
  let m = pcols / 2 in
  Parallel.parallel_range ~lo:0 ~hi:src_rows
    ~work:(src_rows * pcols * 12)
    (fun a b ->
      let zre, zim = scratch_pair m in
      for r = a to b - 1 do
        Fft.rfft_into rp ~src ~soff:(r * src_cols) ~count:src_cols ~outr:dr
          ~outi:di ~ooff:(r * hw) ~zre ~zim
      done);
  if src_rows < prows then begin
    Array.fill dr (src_rows * hw) ((prows - src_rows) * hw) 0.;
    Array.fill di (src_rows * hw) ((prows - src_rows) * hw) 0.
  end;
  Parallel.parallel_range ~lo:0 ~hi:hw
    ~work:(hw * prows * 12)
    (batched_col_fft cp ~inverse:false ~prows ~width:hw ~re:dr ~im:di)

let build_real_kernel ~rows ~cols ~hx ~hy =
  let prows = Fft.next_pow2 (2 * rows) in
  let pcols = Fft.next_pow2 (2 * cols) in
  let hw = (pcols / 2) + 1 in
  let n = prows * pcols in
  let cell_area = hx *. hy in
  (* Same wrapped offset kernels as the complex path. *)
  let k = Array.make n 0. in
  let fill component =
    Array.fill k 0 n 0.;
    for dr = -(rows - 1) to rows - 1 do
      for dc = -(cols - 1) to cols - 1 do
        if dr <> 0 || dc <> 0 then begin
          let dx = float_of_int dc *. hx in
          let dy = float_of_int dr *. hy in
          let r2 = (dx *. dx) +. (dy *. dy) in
          let idx_r = if dr >= 0 then dr else prows + dr in
          let idx_c = if dc >= 0 then dc else pcols + dc in
          let v = (if component = `X then dx else dy) /. r2 *. cell_area /. two_pi in
          k.((idx_r * pcols) + idx_c) <- v
        end
      done
    done
  in
  let spectrum () =
    let sr = Array.make (prows * hw) 0. and si = Array.make (prows * hw) 0. in
    forward_real ~prows ~pcols ~hw ~src:k ~src_rows:prows ~src_cols:pcols
      ~dr:sr ~di:si;
    (sr, si)
  in
  fill `X;
  let kxr, kxi = spectrum () in
  fill `Y;
  let kyr, kyi = spectrum () in
  { rk_prows = prows; rk_pcols = pcols; rk_hw = hw; rk_kxr = kxr;
    rk_kxi = kxi; rk_kyr = kyr; rk_kyi = kyi }

let real_kernel ~rows ~cols ~hx ~hy =
  let key = (rows, cols, hx, hy) in
  Mutex.lock kernel_cache_lock;
  match Hashtbl.find_opt real_cache key with
  | Some rk ->
    incr kernel_cache_hits;
    Mutex.unlock kernel_cache_lock;
    Obs.Registry.incr "poisson/kernel_cache_hits";
    rk
  | None ->
    incr kernel_cache_misses;
    Mutex.unlock kernel_cache_lock;
    Obs.Registry.incr "poisson/kernel_cache_misses";
    let rk = build_real_kernel ~rows ~cols ~hx ~hy in
    Mutex.lock kernel_cache_lock;
    if Hashtbl.length real_cache >= kernel_cache_limit then
      Hashtbl.reset real_cache;
    Hashtbl.replace real_cache key rk;
    Mutex.unlock kernel_cache_lock;
    rk

let prewarm ~rows ~cols ~hx ~hy = ignore (real_kernel ~rows ~cols ~hx ~hy)

let fft_force_field ?out ~rows ~cols ~hx ~hy density =
  check_size ~rows ~cols density "Poisson.fft_force_field";
  let rk = real_kernel ~rows ~cols ~hx ~hy in
  let prows = rk.rk_prows and pcols = rk.rk_pcols and hw = rk.rk_hw in
  let w = workspace ~prows ~pcols in
  let dr = w.w_dr and di = w.w_di and zr = w.w_zr and zi = w.w_zi in
  forward_real ~prows ~pcols ~hw ~src:density ~src_rows:rows ~src_cols:cols
    ~dr ~di;
  let kxr = rk.rk_kxr and kxi = rk.rk_kxi in
  let kyr = rk.rk_kyr and kyi = rk.rk_kyi in
  let half = pcols / 2 in
  (* Pack Z = F̂x + i·F̂y.  Stored half plane, then the mirrored half
     re-derived from the Hermitian symmetry of D̂·K̂ — recomputing eight
     multiplies beats streaming four extra planes.  Both halves only
     read dr/di and write disjoint slots of the row, so one pass fills
     a whole Z row while it is hot in cache. *)
  Parallel.parallel_range ~lo:0 ~hi:prows
    ~work:(prows * pcols * 12)
    (fun a b ->
      for u = a to b - 1 do
        let ko = u * hw and zo = u * pcols in
        for v = 0 to half do
          let drv = dr.(ko + v) and div = di.(ko + v) in
          let xr = kxr.(ko + v) and xi = kxi.(ko + v) in
          let yr = kyr.(ko + v) and yi = kyi.(ko + v) in
          let pxr = (drv *. xr) -. (div *. xi) in
          let pxi = (drv *. xi) +. (div *. xr) in
          let pyr = (drv *. yr) -. (div *. yi) in
          let pyi = (drv *. yi) +. (div *. yr) in
          zr.(zo + v) <- pxr -. pyi;
          zi.(zo + v) <- pxi +. pyr
        done;
        let u' = if u = 0 then 0 else prows - u in
        let ko = u' * hw in
        for v = half + 1 to pcols - 1 do
          let v' = pcols - v in
          let drv = dr.(ko + v') and div = di.(ko + v') in
          let xr = kxr.(ko + v') and xi = kxi.(ko + v') in
          let yr = kyr.(ko + v') and yi = kyi.(ko + v') in
          let pxr = (drv *. xr) -. (div *. xi) in
          let pxi = (drv *. xi) +. (div *. xr) in
          let pyr = (drv *. yr) -. (div *. yi) in
          let pyi = (drv *. yi) +. (div *. yr) in
          (* Z(u,v) = conj(F̂x(u',v')) + i·conj(F̂y(u',v')) *)
          zr.(zo + v) <- pxr +. pyi;
          zi.(zo + v) <- -.pxi +. pyr
        done
      done);
  let cp = Fft.plan prows in
  let cpc = Fft.plan pcols in
  Parallel.parallel_range ~lo:0 ~hi:pcols
    ~work:(pcols * prows * 12)
    (batched_col_fft cp ~inverse:true ~prows ~width:pcols ~re:zr ~im:zi);
  let f =
    match out with
    | Some f ->
      if f.rows <> rows || f.cols <> cols
         || Array.length f.fx <> rows * cols
         || Array.length f.fy <> rows * cols
      then invalid_arg "Poisson.fft_force_field: out size mismatch";
      f
    | None ->
      { rows; cols; fx = Array.make (rows * cols) 0.;
        fy = Array.make (rows * cols) 0. }
  in
  (* Inverse row pass over the needed rows only, in place, then unpack:
     fx is the real part of Z, fy the imaginary part. *)
  Parallel.parallel_range ~lo:0 ~hi:rows
    ~work:(rows * pcols * 12)
    (fun a b ->
      for r = a to b - 1 do
        Fft.cfft cpc ~inverse:true zr zi (r * pcols);
        Array.blit zr (r * pcols) f.fx (r * cols) cols;
        Array.blit zi (r * pcols) f.fy (r * cols) cols
      done);
  f

let sor_potential ~rows ~cols ~hx ~hy ?(omega = 1.8) ?(tol = 1e-7) ?(max_iter = 10_000)
    density =
  check_size ~rows ~cols density "Poisson.sor_potential";
  let phi = Array.make (rows * cols) 0. in
  let hx2 = hx *. hx and hy2 = hy *. hy in
  (* 5-point stencil of ∇²Φ = D with Φ = 0 outside the grid. *)
  let denom = 2. *. ((1. /. hx2) +. (1. /. hy2)) in
  let iter = ref 0 in
  let delta = ref Float.infinity in
  while !delta > tol && !iter < max_iter do
    delta := 0.;
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        let get rr cc =
          if rr < 0 || rr >= rows || cc < 0 || cc >= cols then 0.
          else phi.((rr * cols) + cc)
        in
        let i = (r * cols) + c in
        let sum =
          ((get r (c - 1) +. get r (c + 1)) /. hx2)
          +. ((get (r - 1) c +. get (r + 1) c) /. hy2)
        in
        let gs = (sum -. density.(i)) /. denom in
        let updated = phi.(i) +. (omega *. (gs -. phi.(i))) in
        let d = Float.abs (updated -. phi.(i)) in
        if d > !delta then delta := d;
        phi.(i) <- updated
      done
    done;
    incr iter
  done;
  phi

let gradient_force ~rows ~cols ~hx ~hy phi =
  check_size ~rows ~cols phi "Poisson.gradient_force";
  let fx = Array.make (rows * cols) 0. in
  let fy = Array.make (rows * cols) 0. in
  let get r c = phi.((r * cols) + c) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let dpx =
        if cols = 1 then 0.
        else if c = 0 then (get r 1 -. get r 0) /. hx
        else if c = cols - 1 then (get r (cols - 1) -. get r (cols - 2)) /. hx
        else (get r (c + 1) -. get r (c - 1)) /. (2. *. hx)
      in
      let dpy =
        if rows = 1 then 0.
        else if r = 0 then (get 1 c -. get 0 c) /. hy
        else if r = rows - 1 then (get (rows - 1) c -. get (rows - 2) c) /. hy
        else (get (r + 1) c -. get (r - 1) c) /. (2. *. hy)
      in
      fx.((r * cols) + c) <- -.dpx;
      fy.((r * cols) + c) <- -.dpy
    done
  done;
  { rows; cols; fx; fy }

let max_magnitude f =
  (* Track the maximum *squared* magnitude and take one sqrt at the end;
     sqrt is monotone, so this is exact (and bitwise-identical for the
     maximising bin). *)
  let acc = ref 0. in
  for i = 0 to Array.length f.fx - 1 do
    let m2 = (f.fx.(i) *. f.fx.(i)) +. (f.fy.(i) *. f.fy.(i)) in
    if m2 > !acc then acc := m2
  done;
  sqrt !acc

let scale_field s f =
  Vec.scale s f.fx;
  Vec.scale s f.fy
