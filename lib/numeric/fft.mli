(** Radix-2 fast Fourier transforms.

    Used to evaluate the open-boundary force-field convolution of the
    paper's eq. (9) in O(G² log G) on a G×G density grid.  Data is held in
    separate real/imaginary arrays; 2-D data is row-major. *)

(** [is_pow2 n] is true when [n] is a positive power of two. *)
val is_pow2 : int -> bool

(** [next_pow2 n] is the smallest power of two ≥ [max 1 n]. *)
val next_pow2 : int -> int

(** [transform ~inverse re im] performs the in-place FFT of the complex
    sequence [re + i·im].  The inverse transform includes the 1/n
    normalisation.  Raises [Invalid_argument] unless the length is a
    power of two and both arrays agree. *)
val transform : inverse:bool -> float array -> float array -> unit

(** [transform2 ~inverse ~rows ~cols re im] performs the in-place 2-D FFT
    of a [rows]×[cols] row-major complex grid.  Both dimensions must be
    powers of two. *)
val transform2 :
  inverse:bool -> rows:int -> cols:int -> float array -> float array -> unit

(** Reusable buffers for {!convolve2}: four [rows·cols] planes.  One
    scratch serves any number of same-size convolutions; reusing it makes
    a fixed-grid convolution loop allocation-free after the first call. *)
type conv_scratch

(** [conv_scratch ~rows ~cols] allocates scratch for [rows]×[cols]
    convolutions. *)
val conv_scratch : rows:int -> cols:int -> conv_scratch

(** [convolve2 ?scratch ~rows ~cols a b] is the 2-D {e cyclic} convolution
    of two real [rows]×[cols] grids.  Callers wanting linear
    (open-boundary) convolution must zero-pad to at least twice the
    support first.  With [scratch] the result aliases a scratch plane —
    valid until the next call with the same scratch — and the call
    allocates nothing; results are bitwise-identical either way. *)
val convolve2 :
  ?scratch:conv_scratch ->
  rows:int ->
  cols:int ->
  float array ->
  float array ->
  float array

(** {1 Planned transforms}

    A {!plan} precomputes the bit-reversal permutation and per-stage
    twiddle tables for one power-of-two length.  Plans are immutable,
    cached process-wide and safely shared across domains; the planned
    transforms below are the building blocks of the real-to-real Poisson
    path in {!Poisson}. *)

type plan

(** [plan n] returns the (cached) plan for complex transforms of length
    [n].  Raises [Invalid_argument] unless [n] is a power of two. *)
val plan : int -> plan

(** [cfft p ~inverse re im off] performs the in-place complex FFT of
    [re.(off..off+n-1)], [im.(off..off+n-1)] where [n] is the plan's
    length.  The inverse includes the 1/n normalisation.  Identical
    butterfly ordering to {!transform}, but twiddles come from the plan's
    tables (computed with direct cos/sin rather than the legacy
    recurrence, so results may differ from {!transform} in the last
    ulps). *)
val cfft : plan -> inverse:bool -> float array -> float array -> int -> unit

(** Plan for real-input transforms of one power-of-two length [n ≥ 2]:
    a half-length complex plan plus the untwiddle table. *)
type rplan

(** [rplan n] returns the (cached) real-transform plan for length [n]. *)
val rplan : int -> rplan

(** [rfft_into rp ~src ~soff ~count ~outr ~outi ~ooff ~zre ~zim] writes
    the Hermitian half spectrum X(0..n/2) of the real sequence
    [src.(soff..soff+count-1)] — implicitly zero-extended to the plan
    length [n] — into [outr]/[outi] at [ooff].  [zre]/[zim] are caller
    scratch of length [n/2].  Costs one complex FFT of length [n/2] plus
    O(n) untwiddling. *)
val rfft_into :
  rplan ->
  src:float array ->
  soff:int ->
  count:int ->
  outr:float array ->
  outi:float array ->
  ooff:int ->
  zre:float array ->
  zim:float array ->
  unit

(** {1 Real-to-real transforms}

    Unnormalised type-II discrete cosine/sine transforms and their exact
    inverses, for power-of-two lengths (lengths 0 and 1 are identities):

    - [dct2 x] has [y.(k) = Σ_j x.(j)·cos(πk(2j+1)/(2N))]
    - [dst2 x] has [y.(k) = Σ_j x.(j)·sin(π(k+1)(2j+1)/(2N))]

    Both run in O(N log N) via one real FFT of length N (Makhoul's
    factorisation).  [idct2 (dct2 x) = x] and [idst2 (dst2 x) = x] to
    machine precision. *)

val dct2 : float array -> float array

val dst2 : float array -> float array

val idct2 : float array -> float array

val idst2 : float array -> float array
