(** Force fields from density, per the paper's §3.3.

    Given the supply/demand density D(x,y) of eq. (4), the additional force
    field is the open-boundary solution of Poisson's equation, evaluated
    directly as the convolution of eq. (9):

    f(r) = k/(2π) ∬ D(r') · (r − r') / |r − r'|² dA'

    Positive density repels (cells push each other apart); negative density
    (free placement area) attracts.  Three evaluators are provided:

    - {!direct_force_field}: O(G⁴) summation — the test oracle;
    - {!fft_force_field}: zero-padded FFT convolution, O(G² log G) — used
      by the placer;
    - {!sor_potential} + {!gradient_force}: a Dirichlet-boundary SOR
      solve of ∇²Φ = D followed by f = −∇Φ — an ablation with closed
      instead of open boundary conditions.

    All grids are row-major [rows × cols] with grid pitch [hx × hy];
    density values are per unit area. *)

(** A vector field sampled at grid-bin centres. *)
type field = { rows : int; cols : int; fx : float array; fy : float array }

(** [direct_force_field ~rows ~cols ~hx ~hy density] evaluates eq. (9) by
    direct summation with k = 1.  The self-term (r = r') is skipped, which
    corresponds to the principal value of the singular integral. *)
val direct_force_field :
  rows:int -> cols:int -> hx:float -> hy:float -> float array -> field

(** [fft_force_field ~rows ~cols ~hx ~hy density] evaluates the same
    convolution with zero padding to the next power of two ≥ 2·G, so the
    result is the open-boundary (linear, non-cyclic) convolution.  Agrees
    with {!direct_force_field} to machine precision.

    The frequency-domain transforms of the two force kernels depend only
    on [(rows, cols, hx, hy)] and are memoised across calls, so loops
    that re-evaluate the field on a fixed grid (every Kraftwerk
    transformation) skip kernel construction and both forward kernel
    FFTs after the first call.  Cached and uncached calls return
    bitwise-identical fields. *)
val fft_force_field :
  rows:int -> cols:int -> hx:float -> hy:float -> float array -> field

(** Empty the kernel-spectrum cache and reset its hit/miss counters
    (benchmarks measure the cold path this way). *)
val clear_kernel_cache : unit -> unit

(** [(hits, misses)] of the kernel-spectrum cache since the last
    {!clear_kernel_cache}. *)
val kernel_cache_stats : unit -> int * int

(** [sor_potential ~rows ~cols ~hx ~hy ?omega ?tol ?max_iter density]
    solves ∇²Φ = density with Φ = 0 on the boundary by successive
    over-relaxation and returns Φ. *)
val sor_potential :
  rows:int ->
  cols:int ->
  hx:float ->
  hy:float ->
  ?omega:float ->
  ?tol:float ->
  ?max_iter:int ->
  float array ->
  float array

(** [gradient_force ~rows ~cols ~hx ~hy phi] is f = −∇Φ by central
    differences (one-sided at the boundary). *)
val gradient_force :
  rows:int -> cols:int -> hx:float -> hy:float -> float array -> field

(** [max_magnitude f] is the largest |f| over the field. *)
val max_magnitude : field -> float

(** [scale_field s f] multiplies both components in place. *)
val scale_field : float -> field -> unit
