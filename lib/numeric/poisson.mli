(** Force fields from density, per the paper's §3.3.

    Given the supply/demand density D(x,y) of eq. (4), the additional force
    field is the open-boundary solution of Poisson's equation, evaluated
    directly as the convolution of eq. (9):

    f(r) = k/(2π) ∬ D(r') · (r − r') / |r − r'|² dA'

    Positive density repels (cells push each other apart); negative density
    (free placement area) attracts.  Three evaluators are provided:

    - {!direct_force_field}: O(G⁴) summation — the test oracle;
    - {!fft_force_field}: zero-padded FFT convolution, O(G² log G) — used
      by the placer;
    - {!sor_potential} + {!gradient_force}: a Dirichlet-boundary SOR
      solve of ∇²Φ = D followed by f = −∇Φ — an ablation with closed
      instead of open boundary conditions.

    All grids are row-major [rows × cols] with grid pitch [hx × hy];
    density values are per unit area. *)

(** A vector field sampled at grid-bin centres. *)
type field = { rows : int; cols : int; fx : float array; fy : float array }

(** [direct_force_field ~rows ~cols ~hx ~hy density] evaluates eq. (9) by
    direct summation with k = 1.  The self-term (r = r') is skipped, which
    corresponds to the principal value of the singular integral. *)
val direct_force_field :
  rows:int -> cols:int -> hx:float -> hy:float -> float array -> field

(** [fft_force_field ?out ~rows ~cols ~hx ~hy density] evaluates the same
    convolution with zero padding to the next power of two ≥ 2·G, so the
    result is the open-boundary (linear, non-cyclic) convolution.  Agrees
    with {!direct_force_field} to machine precision.

    This is the real-transform fast path: the density and both kernels
    are real, so only Hermitian half spectra are computed (real-input
    FFTs over the occupied rows of the padded grid), and the two inverse
    transforms pack into one complex inverse with fx in the real plane
    and fy in the imaginary one — no 2G×2G complex grids anywhere.

    Half-plane kernel spectra depend only on [(rows, cols, hx, hy)] and
    are memoised across calls ({!prewarm} builds them eagerly); mutable
    scratch is domain-local and keyed by padded geometry, so a loop
    re-evaluating a fixed grid allocates nothing after its first call
    when [out] is supplied.  [out] must match [rows]/[cols] and is
    returned filled.  Results are bitwise-identical for any domain-pool
    size and with or without [out]. *)
val fft_force_field :
  ?out:field ->
  rows:int ->
  cols:int ->
  hx:float ->
  hy:float ->
  float array ->
  field

(** The historical complex-FFT evaluation of the same operator: pad to a
    full complex grid, two complex convolutions against the cached
    kernel spectra.  Kept as the bitwise reference for the pre-existing
    trajectory pins and as the benchmark baseline for the real path. *)
val fft_force_field_complex :
  rows:int -> cols:int -> hx:float -> hy:float -> float array -> field

(** [prewarm ~rows ~cols ~hx ~hy] builds (or touches) the cached kernel
    spectra of {!fft_force_field} for one grid geometry, so the first
    placement transformation of a job does not pay kernel construction.
    Counts as one cache miss when cold, one hit when already present. *)
val prewarm : rows:int -> cols:int -> hx:float -> hy:float -> unit

(** Empty the kernel-spectrum cache and reset its hit/miss counters
    (benchmarks measure the cold path this way). *)
val clear_kernel_cache : unit -> unit

(** [(hits, misses)] of the kernel-spectrum cache since the last
    {!clear_kernel_cache}. *)
val kernel_cache_stats : unit -> int * int

(** [sor_potential ~rows ~cols ~hx ~hy ?omega ?tol ?max_iter density]
    solves ∇²Φ = density with Φ = 0 on the boundary by successive
    over-relaxation and returns Φ. *)
val sor_potential :
  rows:int ->
  cols:int ->
  hx:float ->
  hy:float ->
  ?omega:float ->
  ?tol:float ->
  ?max_iter:int ->
  float array ->
  float array

(** [gradient_force ~rows ~cols ~hx ~hy phi] is f = −∇Φ by central
    differences (one-sided at the boundary). *)
val gradient_force :
  rows:int -> cols:int -> hx:float -> hy:float -> float array -> field

(** [max_magnitude f] is the largest |f| over the field. *)
val max_magnitude : field -> float

(** [scale_field s f] multiplies both components in place. *)
val scale_field : float -> field -> unit
