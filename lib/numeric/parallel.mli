(** Reusable domain pool for data-parallel numeric kernels.

    The pool is created lazily on first parallel call and reused across
    the whole Kraftwerk hot loop.  Its size is, in priority order: the
    last {!set_num_domains} value, the [KRAFTWERK_DOMAINS] environment
    variable, then [Domain.recommended_domain_count ()].  With size 1 no
    domain is ever spawned and every combinator runs sequentially on the
    caller, bitwise-identical to the historical single-core code.

    Determinism: combinators hand tasks {e disjoint} index ranges whose
    boundaries do not depend on which domain runs what, and no
    floating-point reduction is reassociated, so for task bodies that
    write disjoint locations (all in-tree users) results are
    bitwise-identical for {e any} domain count.

    Nesting is supported: a task may itself call any combinator here.  A
    caller waiting for its batch helps drain the shared task queue, so
    nested batches cannot deadlock. *)

(** Current lane budget for the {e calling domain}: the {!with_lanes}
    pin when one is active, otherwise the process-wide pool size.  Does
    not spawn domains: before first use this reports the size the pool
    {e would} have. *)
val num_domains : unit -> int

(** [with_lanes n f] runs [f ()] with this domain's lane budget pinned
    to [n] (clamped to [1..128]), without touching the process-wide pool
    or other domains.  With [n = 1] every combinator called inside [f]
    runs sequentially on the caller — this is how a sharded scheduler
    worker executes one job per domain while other workers do the same
    concurrently.  With [n > 1] combinators chunk for [n] lanes and
    submit to the shared pool (nested use from a worker domain is safe:
    submitters help drain the queue).  Results are bitwise-identical for
    any [n].  Restores the previous budget on exit, even on exceptions.
    Raises [Invalid_argument] when [n < 1]. *)
val with_lanes : int -> (unit -> 'a) -> 'a

(** [set_num_domains n] fixes the pool size to [n] (clamped to
    [1..128]), overriding [KRAFTWERK_DOMAINS].  Tears down a live pool
    of a different size; the next parallel call respawns lazily.  Must
    not be called while parallel work is in flight.  Raises
    [Invalid_argument] when [n < 1]. *)
val set_num_domains : int -> unit

(** Drop any {!set_num_domains} override and tear the pool down; the
    next use re-reads [KRAFTWERK_DOMAINS] / the hardware default. *)
val reset : unit -> unit

(** Join all worker domains and drop the pool.  Safe to call when no
    pool exists.  Subsequent parallel calls respawn lazily. *)
val shutdown : unit -> unit

(** [parallel_range ?chunk ?work ~lo ~hi body] covers [\[lo, hi)] with
    disjoint sub-ranges of at most [chunk] indices (default: range split
    four ways per domain) and calls [body a b] for each sub-range
    [\[a, b)], in parallel across the pool.  Falls back to a single
    sequential [body lo hi] when the pool has one domain, only one chunk
    results, or the estimated [work] (caller-supplied scalar-operation
    count, e.g. the nnz of a SpMV) is below the internal cutoff where
    batch overhead would dominate.  The fallback runs the same body over
    the whole range, so results are bitwise-identical. *)
val parallel_range :
  ?chunk:int -> ?work:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit

(** [parallel_for ?chunk ?work ~lo ~hi f] calls [f i] for every
    [lo <= i < hi], chunked as {!parallel_range}. *)
val parallel_for :
  ?chunk:int -> ?work:int -> lo:int -> hi:int -> (int -> unit) -> unit

(** [parallel_map2 ?chunk f a b] is [Array.map2 f a b] for float arrays,
    chunked across the pool.  The default chunk (≥ 1024) keeps small
    arrays sequential where task overhead would dominate.  Raises
    [Invalid_argument] on length mismatch. *)
val parallel_map2 :
  ?chunk:int ->
  (float -> float -> float) ->
  float array ->
  float array ->
  float array

(** [both f g] runs the two thunks concurrently (sequentially, [f]
    first, on a one-domain pool) and returns both results.  The first
    exception raised by either thunk is re-raised on the caller. *)
val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
