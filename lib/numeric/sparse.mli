(** Sparse symmetric matrices in compressed-sparse-row form.

    The quadratic placement objective (paper, eq. 1) yields a symmetric
    positive-definite matrix C whose off-diagonal entries are the negated
    clique edge weights and whose diagonal accumulates all incident weights.
    Matrices are assembled through a mutable {!builder} that accepts
    duplicate coordinate entries (they are summed) and then frozen into an
    immutable CSR {!t} for fast matrix-vector products. *)

(** Frozen CSR matrix. *)
type t

(** Mutable assembly buffer. *)
type builder

(** [builder n] is an empty builder for an [n]×[n] matrix. *)
val builder : int -> builder

(** [add b i j v] adds [v] to entry (i, j).  Symmetry is the caller's
    responsibility: call it for both (i, j) and (j, i), or use
    {!add_sym}. *)
val add : builder -> int -> int -> float -> unit

(** [add_sym b i j v] adds [v] at (i, j) and (j, i); if [i = j] the value
    is added once. *)
val add_sym : builder -> int -> int -> float -> unit

(** [add_diag b i v] adds [v] to the diagonal entry (i, i). *)
val add_diag : builder -> int -> float -> unit

(** [finalize b] sums duplicates, drops explicit zeros and freezes the
    builder into CSR form.  The builder may be reused afterwards. *)
val finalize : builder -> t

(** [dim m] is the row (= column) count. *)
val dim : t -> int

(** [nnz m] is the number of stored entries. *)
val nnz : t -> int

(** [mul m x y] writes [m * x] into [y].  Large products are row-chunked
    across the {!Parallel} domain pool; each row keeps its sequential
    accumulation order, so the result is bitwise-identical to
    {!mul_seq} for any domain count. *)
val mul : t -> float array -> float array -> unit

(** [mul_seq m x y] is {!mul} pinned to the calling domain — the
    reference sequential product (used by benchmarks and determinism
    tests). *)
val mul_seq : t -> float array -> float array -> unit

(** [diagonal m] is a fresh array of the diagonal entries (zero where the
    diagonal is not stored). *)
val diagonal : t -> float array

(** [entry m i j] is the stored value at (i, j), or [0.] if absent.
    Linear in the number of entries of row [i]; intended for tests. *)
val entry : t -> int -> int -> float

(** [is_symmetric ?tol m] checks stored symmetry up to [tol]
    (default [1e-9]); intended for tests. *)
val is_symmetric : ?tol:float -> t -> bool

(** [of_dense a] builds a CSR matrix from a square dense array;
    intended for tests. *)
val of_dense : float array array -> t

(** [to_dense m] expands to a dense array; intended for tests on small
    matrices. *)
val to_dense : t -> float array array
