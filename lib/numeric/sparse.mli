(** Sparse symmetric matrices in compressed-sparse-row form.

    The quadratic placement objective (paper, eq. 1) yields a symmetric
    positive-definite matrix C whose off-diagonal entries are the negated
    clique edge weights and whose diagonal accumulates all incident weights.
    Matrices are assembled through a mutable {!builder} that accepts
    duplicate coordinate entries (they are summed) and then frozen into an
    immutable CSR {!t} for fast matrix-vector products. *)

(** Frozen CSR matrix. *)
type t

(** Mutable assembly buffer. *)
type builder

(** [builder n] is an empty builder for an [n]×[n] matrix. *)
val builder : int -> builder

(** [add b i j v] adds [v] to entry (i, j).  Symmetry is the caller's
    responsibility: call it for both (i, j) and (j, i), or use
    {!add_sym}. *)
val add : builder -> int -> int -> float -> unit

(** [add_sym b i j v] adds [v] at (i, j) and (j, i); if [i = j] the value
    is added once. *)
val add_sym : builder -> int -> int -> float -> unit

(** [add_diag b i v] adds [v] to the diagonal entry (i, i). *)
val add_diag : builder -> int -> float -> unit

(** [clear b] empties the builder (capacity is kept), ready for the next
    assembly pass over the same structure. *)
val clear : builder -> unit

(** [finalize b] sums duplicates, drops explicit zeros and freezes the
    builder into CSR form.  The builder may be reused afterwards. *)
val finalize : builder -> t

(** Frozen symbolic structure of one builder state: the merged CSR
    sparsity pattern plus the triplet→slot permutation (in {!finalize}'s
    exact accumulation order).  The clique-model placement matrix keeps
    the same pattern across every Kraftwerk transformation — only the
    values change — so the sort-and-dedup of {!finalize} is paid once
    and each later iteration runs the O(nnz) {!refill} instead. *)
type pattern

(** [compile b] performs one finalize-equivalent pass, returning the
    frozen pattern together with the assembled matrix.  The matrix is
    bitwise-identical to [finalize b]. *)
val compile : builder -> pattern * t

(** [refill pat b] scatters the builder's value stream through the
    cached permutation into the pattern's value storage, row-chunked
    across the {!Parallel} domain pool with per-row sequential
    accumulation — bitwise-identical to [finalize b] for any domain
    count (including the rare exact-zero cancellation, which compacts).

    The returned matrix {e aliases} the pattern's storage: it is
    invalidated by the next [refill] on the same pattern.  The builder
    must carry the same (i, j) triplet sequence the pattern was compiled
    from; only the lengths are checked here — callers verify structure
    with {!pattern_matches} when it can drift.  Raises
    [Invalid_argument] on a length/dimension mismatch. *)
val refill : pattern -> builder -> t

(** [pattern_matches pat b] is true when the builder holds exactly the
    (i, j) triplet sequence the pattern was compiled from (values are
    free).  O(len) integer comparisons. *)
val pattern_matches : pattern -> builder -> bool

(** [pattern_nnz pat] is the merged slot count (explicit zeros kept). *)
val pattern_nnz : pattern -> int

(** [dim m] is the row (= column) count. *)
val dim : t -> int

(** [nnz m] is the number of stored entries. *)
val nnz : t -> int

(** [mul m x y] writes [m * x] into [y].  Large products are row-chunked
    across the {!Parallel} domain pool; each row keeps its sequential
    accumulation order, so the result is bitwise-identical to
    {!mul_seq} for any domain count. *)
val mul : t -> float array -> float array -> unit

(** [mul_seq m x y] is {!mul} pinned to the calling domain — the
    reference sequential product (used by benchmarks and determinism
    tests). *)
val mul_seq : t -> float array -> float array -> unit

(** [diagonal m] is a fresh array of the diagonal entries (zero where the
    diagonal is not stored). *)
val diagonal : t -> float array

(** [diagonal_into m d] writes the diagonal into [d] (length {!dim}) —
    the allocation-free {!diagonal} for cached-assembly callers. *)
val diagonal_into : t -> float array -> unit

(** [entry m i j] is the stored value at (i, j), or [0.] if absent.
    Linear in the number of entries of row [i]; intended for tests. *)
val entry : t -> int -> int -> float

(** [is_symmetric ?tol m] checks stored symmetry up to [tol]
    (default [1e-9]); intended for tests. *)
val is_symmetric : ?tol:float -> t -> bool

(** [of_dense a] builds a CSR matrix from a square dense array;
    intended for tests. *)
val of_dense : float array array -> t

(** [to_dense m] expands to a dense array; intended for tests on small
    matrices. *)
val to_dense : t -> float array array
