(* Reusable domain pool for data-parallel numeric kernels.

   The pool is lazily initialised on first use.  Its size comes from, in
   priority order: `set_num_domains`, the KRAFTWERK_DOMAINS environment
   variable, then `Domain.recommended_domain_count`.  Size 1 means "no
   pool": every combinator degrades to plain sequential execution on the
   calling domain, which keeps results bitwise-identical to the
   historical single-core code paths.

   Determinism: the combinators only hand *disjoint* index ranges to
   tasks, and every in-tree task body writes disjoint locations, so
   results are bitwise-identical for any domain count.  Reductions that
   would reassociate floating-point sums are deliberately not offered;
   order-sensitive accumulation stays on the caller (see
   Density_map.demand for the two-pass pattern).

   Scheduling: tasks go through one shared queue.  A caller submitting a
   batch helps drain the queue until its own batch completes, so nested
   parallelism (e.g. a parallel SpMV inside one of the two concurrent CG
   solves of `both`) cannot deadlock — a blocked submitter always runs
   queued work before sleeping. *)

type pool = {
  size : int; (* total lanes, including the submitting domain *)
  lock : Mutex.t;
  cond : Condition.t; (* signalled on enqueue and batch completion *)
  tasks : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t array;
}

let override : int option Atomic.t = Atomic.make None

let pool : pool option Atomic.t = Atomic.make None

let pool_guard = Mutex.create ()

(* Per-domain lane budget.  A sharded scheduler worker pins its lanes
   here instead of resizing the process-wide pool (which would tear it
   down under other domains' feet); combinators on that domain then
   chunk — and gate sequential fallback — against the pinned value.
   Other domains, including pool workers running nested tasks, are
   unaffected. *)
let lane_override : int option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* The OCaml runtime supports at most ~128 domains; clamp rather than
   crash on absurd KRAFTWERK_DOMAINS values. *)
let clamp_domains n = if n < 1 then 1 else if n > 128 then 128 else n

let env_domains () =
  match Sys.getenv_opt "KRAFTWERK_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let target_size () =
  clamp_domains
    (match Atomic.get override with
    | Some n -> n
    | None -> (
      match env_domains () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ()))

let num_domains () =
  match Domain.DLS.get lane_override with
  | Some n -> n
  | None -> (
    match Atomic.get pool with Some p -> p.size | None -> target_size ())

let with_lanes n f =
  if n < 1 then invalid_arg "Parallel.with_lanes: need at least one lane";
  let n = clamp_domains n in
  let saved = Domain.DLS.get lane_override in
  Domain.DLS.set lane_override (Some n);
  Fun.protect ~finally:(fun () -> Domain.DLS.set lane_override saved) f

let worker p () =
  Mutex.lock p.lock;
  let rec loop () =
    if p.live then
      match Queue.take_opt p.tasks with
      | Some t ->
        Mutex.unlock p.lock;
        t ();
        Mutex.lock p.lock;
        loop ()
      | None ->
        Condition.wait p.cond p.lock;
        loop ()
  in
  loop ();
  Mutex.unlock p.lock

let get_pool () =
  match Atomic.get pool with
  | Some p -> p
  | None ->
    Mutex.lock pool_guard;
    let p =
      match Atomic.get pool with
      | Some p -> p
      | None ->
        let size = target_size () in
        let p =
          {
            size;
            lock = Mutex.create ();
            cond = Condition.create ();
            tasks = Queue.create ();
            live = true;
            workers = [||];
          }
        in
        p.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (worker p));
        Atomic.set pool (Some p);
        p
    in
    Mutex.unlock pool_guard;
    p

let shutdown () =
  Mutex.lock pool_guard;
  (match Atomic.get pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.lock;
    p.live <- false;
    Condition.broadcast p.cond;
    Mutex.unlock p.lock;
    Array.iter Domain.join p.workers;
    Atomic.set pool None);
  Mutex.unlock pool_guard

(* Must not be called while parallel work is in flight (the placer sets
   it once at init; tests switch between cases). *)
let set_num_domains n =
  if n < 1 then invalid_arg "Parallel.set_num_domains: need at least one domain";
  let n = clamp_domains n in
  Atomic.set override (Some n);
  match Atomic.get pool with
  | Some p when p.size = n -> ()
  | Some _ -> shutdown ()
  | None -> ()

(* Drop any programmatic override and tear the pool down, so the next
   use re-reads KRAFTWERK_DOMAINS (or the hardware default). *)
let reset () =
  Atomic.set override None;
  shutdown ()

(* Run every closure in [fns], using pool workers plus the calling
   domain, and return once all have finished.  The first task exception
   (if any) is re-raised on the caller. *)
let run_tasks p fns =
  let n = Array.length fns in
  if n > 0 then begin
    (* One observation per batch: count = batches, total = tasks.  The
       telemetry layer reads the total's delta per placer iteration as a
       pool-utilisation signal. *)
    Obs.Registry.observe "pool/tasks" (float_of_int n);
    let remaining = Atomic.make n in
    let first_exn = Atomic.make None in
    let wrap f () =
      (try f ()
       with e -> ignore (Atomic.compare_and_set first_exn None (Some e)));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock p.lock;
        Condition.broadcast p.cond;
        Mutex.unlock p.lock
      end
    in
    Mutex.lock p.lock;
    Array.iter (fun f -> Queue.add (wrap f) p.tasks) fns;
    Condition.broadcast p.cond;
    (* Help: run queued tasks (ours or a nested batch's) until this batch
       completes; sleep only when the queue is empty. *)
    let rec drain () =
      if Atomic.get remaining > 0 then
        match Queue.take_opt p.tasks with
        | Some t ->
          Mutex.unlock p.lock;
          t ();
          Mutex.lock p.lock;
          drain ()
        | None ->
          if Atomic.get remaining > 0 then begin
            Condition.wait p.cond p.lock;
            drain ()
          end
    in
    drain ();
    Mutex.unlock p.lock;
    match Atomic.get first_exn with Some e -> raise e | None -> ()
  end

(* Below this many scalar operations a batch's fixed cost (queue mutex,
   condvar wakeups) outweighs any split: callers that can estimate their
   work pass [?work] and small calls stay on the calling domain.  The
   sequential fallback runs the very same body over the whole range, so
   results are bitwise-identical either way. *)
let seq_work_cutoff = 32_768

(* Apply [body a b] over disjoint sub-ranges covering [lo, hi).  The
   chunk grid depends only on the range and chunk size, never on which
   domain runs what. *)
let parallel_range ?chunk ?work ~lo ~hi body =
  let n = hi - lo in
  if n > 0 then begin
    let d = num_domains () in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ | None -> max 1 ((n + (4 * d) - 1) / (4 * d))
    in
    let n_chunks = (n + chunk - 1) / chunk in
    let small =
      match work with Some w -> w < seq_work_cutoff | None -> false
    in
    if d <= 1 || n_chunks <= 1 || small then body lo hi
    else
      run_tasks (get_pool ())
        (Array.init n_chunks (fun k ->
             let a = lo + (k * chunk) in
             let b = min hi (a + chunk) in
             fun () -> body a b))
  end

let parallel_for ?chunk ?work ~lo ~hi f =
  parallel_range ?chunk ?work ~lo ~hi (fun a b ->
      for i = a to b - 1 do
        f i
      done)

(* Element-wise combination of two float arrays.  The default chunk
   keeps small arrays on the calling domain where task overhead would
   dominate. *)
let parallel_map2 ?chunk f a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Parallel.parallel_map2: length mismatch";
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c -> c
      | None -> max 1024 ((n + (4 * num_domains ()) - 1) / (4 * num_domains ()))
    in
    let out = Array.make n 0. in
    parallel_range ~chunk ~lo:0 ~hi:n (fun i0 i1 ->
        for i = i0 to i1 - 1 do
          out.(i) <- f a.(i) b.(i)
        done);
    out
  end

(* Run two independent computations concurrently; [f] runs on the
   caller or a worker, [g] likewise.  With one domain this is exactly
   [let a = f () in let b = g () in (a, b)]. *)
let both f g =
  if num_domains () <= 1 then begin
    let a = f () in
    let b = g () in
    (a, b)
  end
  else begin
    let ra = ref None and rb = ref None in
    run_tasks (get_pool ())
      [| (fun () -> ra := Some (f ())); (fun () -> rb := Some (g ())) |];
    match (!ra, !rb) with
    | Some a, Some b -> (a, b)
    | _ -> assert false (* run_tasks re-raised the task's exception *)
  end
