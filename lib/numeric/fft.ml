let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let transform ~inverse re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft.transform: length mismatch";
  if not (is_pow2 n) then invalid_arg "Fft.transform: length not a power of two";
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) and ti = im.(i) in
      re.(i) <- re.(!j);
      im.(i) <- im.(!j);
      re.(!j) <- tr;
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Iterative Danielson-Lanczos butterflies. *)
  let sign = if inverse then 1. else -1. in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = sign *. 2. *. Float.pi /. float_of_int !len in
    let wr = cos theta and wi = sin theta in
    let k = ref 0 in
    while !k < n do
      let cr = ref 1. and ci = ref 0. in
      for off = 0 to half - 1 do
        let i0 = !k + off in
        let i1 = i0 + half in
        let tr = (re.(i1) *. !cr) -. (im.(i1) *. !ci) in
        let ti = (re.(i1) *. !ci) +. (im.(i1) *. !cr) in
        re.(i1) <- re.(i0) -. tr;
        im.(i1) <- im.(i0) -. ti;
        re.(i0) <- re.(i0) +. tr;
        im.(i0) <- im.(i0) +. ti;
        let cr' = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := cr'
      done;
      k := !k + !len
    done;
    len := !len * 2
  done;
  if inverse then begin
    let inv_n = 1. /. float_of_int n in
    for i = 0 to n - 1 do
      re.(i) <- re.(i) *. inv_n;
      im.(i) <- im.(i) *. inv_n
    done
  end

(* Row and column 1-D transforms are independent of each other within a
   pass, so each pass chunks across the domain pool with per-task
   scratch buffers; results are bitwise-identical to the sequential
   sweep for any domain count.  Small grids stay sequential: below the
   threshold the per-batch synchronisation costs more than the FFTs. *)
let par_threshold = 4096

let transform2 ~inverse ~rows ~cols re im =
  if Array.length re <> rows * cols || Array.length im <> rows * cols then
    invalid_arg "Fft.transform2: size mismatch";
  (* Rows in place. *)
  let rows_pass r0 r1 =
    let row_re = Array.make cols 0. and row_im = Array.make cols 0. in
    for r = r0 to r1 - 1 do
      Array.blit re (r * cols) row_re 0 cols;
      Array.blit im (r * cols) row_im 0 cols;
      transform ~inverse row_re row_im;
      Array.blit row_re 0 re (r * cols) cols;
      Array.blit row_im 0 im (r * cols) cols
    done
  in
  (* Columns via gather/scatter. *)
  let cols_pass c0 c1 =
    let col_re = Array.make rows 0. and col_im = Array.make rows 0. in
    for c = c0 to c1 - 1 do
      for r = 0 to rows - 1 do
        col_re.(r) <- re.((r * cols) + c);
        col_im.(r) <- im.((r * cols) + c)
      done;
      transform ~inverse col_re col_im;
      for r = 0 to rows - 1 do
        re.((r * cols) + c) <- col_re.(r);
        im.((r * cols) + c) <- col_im.(r)
      done
    done
  in
  if rows * cols >= par_threshold && Parallel.num_domains () > 1 then begin
    Parallel.parallel_range ~lo:0 ~hi:rows rows_pass;
    Parallel.parallel_range ~lo:0 ~hi:cols cols_pass
  end
  else begin
    rows_pass 0 rows;
    cols_pass 0 cols
  end

type conv_scratch = {
  cs_n : int;
  ar : float array;
  ai : float array;
  br : float array;
  bi : float array;
}

let conv_scratch ~rows ~cols =
  let n = rows * cols in
  {
    cs_n = n;
    ar = Array.make n 0.;
    ai = Array.make n 0.;
    br = Array.make n 0.;
    bi = Array.make n 0.;
  }

let convolve2 ?scratch ~rows ~cols a b =
  let n = rows * cols in
  if Array.length a <> n || Array.length b <> n then
    invalid_arg "Fft.convolve2: size mismatch";
  (* The scratch carries the four complex planes of the transform, so a
     fixed-grid convolution loop allocates nothing after the first call.
     Results are bitwise-identical with and without it: the same
     operations run in the same order, only the buffers' lifetime
     changes. *)
  let ar, ai, br, bi =
    match scratch with
    | Some s ->
      if s.cs_n <> n then invalid_arg "Fft.convolve2: scratch size mismatch";
      Array.blit a 0 s.ar 0 n;
      Array.fill s.ai 0 n 0.;
      Array.blit b 0 s.br 0 n;
      Array.fill s.bi 0 n 0.;
      (s.ar, s.ai, s.br, s.bi)
    | None -> (Array.copy a, Array.make n 0., Array.copy b, Array.make n 0.)
  in
  transform2 ~inverse:false ~rows ~cols ar ai;
  transform2 ~inverse:false ~rows ~cols br bi;
  for i = 0 to n - 1 do
    let pr = (ar.(i) *. br.(i)) -. (ai.(i) *. bi.(i)) in
    let pi = (ar.(i) *. bi.(i)) +. (ai.(i) *. br.(i)) in
    ar.(i) <- pr;
    ai.(i) <- pi
  done;
  transform2 ~inverse:true ~rows ~cols ar ai;
  ar

(* ------------------------------------------------------------------ *)
(* Planned transforms: precomputed bit-reversal and twiddle tables.     *)
(*                                                                      *)
(* The legacy [transform] above regenerates twiddles with a multiplica- *)
(* tive recurrence on every call; the planned core below looks them up  *)
(* in tables built once per length (computed with cos/sin directly, so  *)
(* it is also slightly *more* accurate).  Plans are immutable and       *)
(* cached process-wide; concurrent domains share them freely.           *)
(* ------------------------------------------------------------------ *)

type plan = {
  pn : int;
  bitrev : int array;
  (* Stage-major twiddles for the forward direction: the stage with
     half-length h (h = 1, 2, 4, …, n/2) owns entries
     [h-1 .. 2h-2]; entry h-1+k holds e^{-iπk/h}. *)
  twr : float array;
  twi : float array;
}

let make_plan n =
  if not (is_pow2 n) then invalid_arg "Fft.plan: length not a power of two";
  let bitrev = Array.make n 0 in
  for i = 1 to n - 1 do
    bitrev.(i) <- (bitrev.(i lsr 1) lsr 1) lor (if i land 1 = 1 then n lsr 1 else 0)
  done;
  let twr = Array.make (max 1 (n - 1)) 1. in
  let twi = Array.make (max 1 (n - 1)) 0. in
  let h = ref 1 in
  while !h < n do
    let base = !h - 1 in
    for k = 0 to !h - 1 do
      let theta = -.Float.pi *. float_of_int k /. float_of_int !h in
      twr.(base + k) <- cos theta;
      twi.(base + k) <- sin theta
    done;
    h := !h * 2
  done;
  { pn = n; bitrev; twr; twi }

let plan_cache : (int, plan) Hashtbl.t = Hashtbl.create 8

let plan_lock = Mutex.create ()

let plan n =
  Mutex.lock plan_lock;
  let p =
    match Hashtbl.find_opt plan_cache n with
    | Some p ->
      Mutex.unlock plan_lock;
      p
    | None ->
      Mutex.unlock plan_lock;
      let p = make_plan n in
      Mutex.lock plan_lock;
      (match Hashtbl.find_opt plan_cache n with
      | Some p' ->
        Mutex.unlock plan_lock;
        p'
      | None ->
        Hashtbl.replace plan_cache n p;
        Mutex.unlock plan_lock;
        p)
  in
  p

(* In-place complex FFT of [re.(off..off+n-1)], [im.(off..off+n-1)]. *)
let cfft p ~inverse re im off =
  let n = p.pn in
  for i = 0 to n - 1 do
    let j = p.bitrev.(i) in
    if i < j then begin
      let tr = re.(off + i) and ti = im.(off + i) in
      re.(off + i) <- re.(off + j);
      im.(off + i) <- im.(off + j);
      re.(off + j) <- tr;
      im.(off + j) <- ti
    end
  done;
  let h = ref 1 in
  while !h < n do
    let base = !h - 1 in
    let k = ref 0 in
    while !k < n do
      for o = 0 to !h - 1 do
        let wr = p.twr.(base + o) in
        let wi = if inverse then -.p.twi.(base + o) else p.twi.(base + o) in
        let i0 = off + !k + o in
        let i1 = i0 + !h in
        let tr = (re.(i1) *. wr) -. (im.(i1) *. wi) in
        let ti = (re.(i1) *. wi) +. (im.(i1) *. wr) in
        re.(i1) <- re.(i0) -. tr;
        im.(i1) <- im.(i0) -. ti;
        re.(i0) <- re.(i0) +. tr;
        im.(i0) <- im.(i0) +. ti
      done;
      k := !k + (2 * !h)
    done;
    h := !h * 2
  done;
  if inverse then begin
    let inv_n = 1. /. float_of_int n in
    for i = off to off + n - 1 do
      re.(i) <- re.(i) *. inv_n;
      im.(i) <- im.(i) *. inv_n
    done
  end

(* ------------------------------------------------------------------ *)
(* Real-input forward transform (half spectrum)                         *)

type rplan = {
  rn : int;  (* real length, power of two ≥ 2 *)
  half : plan;  (* complex plan of length rn/2 *)
  ur : float array;  (* e^{-iπk/(rn/2)} for k = 0 .. rn/2 *)
  ui : float array;
}

let make_rplan n =
  if not (is_pow2 n) || n < 2 then
    invalid_arg "Fft.rplan: length not a power of two >= 2";
  let m = n / 2 in
  let ur = Array.make (m + 1) 1. and ui = Array.make (m + 1) 0. in
  for k = 0 to m do
    let theta = -.Float.pi *. float_of_int k /. float_of_int m in
    ur.(k) <- cos theta;
    ui.(k) <- sin theta
  done;
  { rn = n; half = plan m; ur; ui }

let rplan_cache : (int, rplan) Hashtbl.t = Hashtbl.create 8

let rplan n =
  Mutex.lock plan_lock;
  match Hashtbl.find_opt rplan_cache n with
  | Some p ->
    Mutex.unlock plan_lock;
    p
  | None ->
    Mutex.unlock plan_lock;
    let p = make_rplan n in
    Mutex.lock plan_lock;
    let p =
      match Hashtbl.find_opt rplan_cache n with
      | Some p' -> p'
      | None ->
        Hashtbl.replace rplan_cache n p;
        p
    in
    Mutex.unlock plan_lock;
    p

(* Forward DFT of the real sequence [src.(soff) .. src.(soff+count-1)],
   implicitly zero-extended to length [rp.rn].  The Hermitian half
   spectrum X(0 .. n/2) lands in [outr]/[outi] at [ooff]; [zre]/[zim]
   are caller scratch of length n/2.  Cost: one complex FFT of length
   n/2 plus O(n) untwiddling — half the work of a padded complex
   transform, with no imaginary input plane at all. *)
let rfft_into rp ~src ~soff ~count ~outr ~outi ~ooff ~zre ~zim =
  let m = rp.half.pn in
  for j = 0 to m - 1 do
    let i0 = 2 * j and i1 = (2 * j) + 1 in
    zre.(j) <- (if i0 < count then src.(soff + i0) else 0.);
    zim.(j) <- (if i1 < count then src.(soff + i1) else 0.)
  done;
  cfft rp.half ~inverse:false zre zim 0;
  for k = 0 to m do
    let a = zre.(if k = m then 0 else k) and b = zim.(if k = m then 0 else k) in
    let c = zre.((m - k) mod m) and d = zim.((m - k) mod m) in
    let er = 0.5 *. (a +. c) and ei = 0.5 *. (b -. d) in
    let odr = 0.5 *. (b +. d) and odi = -0.5 *. (a -. c) in
    let wr = rp.ur.(k) and wi = rp.ui.(k) in
    outr.(ooff + k) <- er +. ((wr *. odr) -. (wi *. odi));
    outi.(ooff + k) <- ei +. ((wr *. odi) +. (wi *. odr))
  done

(* ------------------------------------------------------------------ *)
(* Real-to-real transforms: DCT-II / DST-II and their inverses          *)

(* Unnormalised conventions, chosen so the naive definitions below are
   the specification (property tests pin them):
     dct2  y.(k) = Σ_j x.(j) cos(πk(2j+1)/(2N))
     dst2  y.(k) = Σ_j x.(j) sin(π(k+1)(2j+1)/(2N))
   [idct2]/[idst2] are exact inverses: idct2 (dct2 x) = x.

   dct2 uses Makhoul's length-N real FFT factorisation: even-index
   samples ascend in the first half, odd-index samples descend in the
   second, then one real FFT and a twiddle; dst2 reduces to dct2 by
   sign-flipping odd samples and reversing the output order. *)

let dct2 x =
  let n = Array.length x in
  if n = 0 then [||]
  else if n = 1 then [| x.(0) |]
  else begin
    if not (is_pow2 n) then invalid_arg "Fft.dct2: length not a power of two";
    let v = Array.make n 0. in
    for j = 0 to (n / 2) - 1 do
      v.(j) <- x.(2 * j);
      v.(n - 1 - j) <- x.((2 * j) + 1)
    done;
    let rp = rplan n in
    let m = n / 2 in
    let outr = Array.make (m + 1) 0. and outi = Array.make (m + 1) 0. in
    let zre = Array.make m 0. and zim = Array.make m 0. in
    rfft_into rp ~src:v ~soff:0 ~count:n ~outr ~outi ~ooff:0 ~zre ~zim;
    let y = Array.make n 0. in
    for k = 0 to n - 1 do
      (* V(k) for k > n/2 from Hermitian symmetry. *)
      let vr, vi =
        if k <= m then (outr.(k), outi.(k))
        else (outr.(n - k), -.outi.(n - k))
      in
      let theta = -.Float.pi *. float_of_int k /. (2. *. float_of_int n) in
      let wr = cos theta and wi = sin theta in
      y.(k) <- (wr *. vr) -. (wi *. vi)
    done;
    y
  end

let dst2 x =
  let n = Array.length x in
  if n = 0 then [||]
  else begin
    let x' = Array.mapi (fun j v -> if j land 1 = 0 then v else -.v) x in
    let c = dct2 x' in
    Array.init n (fun k -> c.(n - 1 - k))
  end

let idct2 y =
  let n = Array.length y in
  if n = 0 then [||]
  else if n = 1 then [| y.(0) |]
  else begin
    if not (is_pow2 n) then invalid_arg "Fft.idct2: length not a power of two";
    (* Invert the Makhoul factorisation: rebuild the length-n complex
       spectrum of the reordered sequence V(k) = e^{iπk/(2n)}·(y(k) -
       i·y(n-k)) (with y(n) ≡ 0), inverse transform, undo the reorder. *)
    let m = n / 2 in
    let vr = Array.make n 0. and vi = Array.make n 0. in
    for k = 0 to n - 1 do
      let a = y.(k) in
      let b = if k = 0 then 0. else y.(n - k) in
      let theta = Float.pi *. float_of_int k /. (2. *. float_of_int n) in
      let wr = cos theta and wi = sin theta in
      vr.(k) <- (a *. wr) +. (b *. wi);
      vi.(k) <- (a *. wi) -. (b *. wr)
    done;
    let p = plan n in
    cfft p ~inverse:true vr vi 0;
    let x = Array.make n 0. in
    for j = 0 to m - 1 do
      x.(2 * j) <- vr.(j);
      x.((2 * j) + 1) <- vr.(n - 1 - j)
    done;
    x
  end

let idst2 y =
  let n = Array.length y in
  if n = 0 then [||]
  else begin
    let c = Array.init n (fun k -> y.(n - 1 - k)) in
    let x' = idct2 c in
    Array.mapi (fun j v -> if j land 1 = 0 then v else -.v) x'
  end
