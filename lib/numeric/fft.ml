let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let transform ~inverse re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft.transform: length mismatch";
  if not (is_pow2 n) then invalid_arg "Fft.transform: length not a power of two";
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) and ti = im.(i) in
      re.(i) <- re.(!j);
      im.(i) <- im.(!j);
      re.(!j) <- tr;
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Iterative Danielson-Lanczos butterflies. *)
  let sign = if inverse then 1. else -1. in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = sign *. 2. *. Float.pi /. float_of_int !len in
    let wr = cos theta and wi = sin theta in
    let k = ref 0 in
    while !k < n do
      let cr = ref 1. and ci = ref 0. in
      for off = 0 to half - 1 do
        let i0 = !k + off in
        let i1 = i0 + half in
        let tr = (re.(i1) *. !cr) -. (im.(i1) *. !ci) in
        let ti = (re.(i1) *. !ci) +. (im.(i1) *. !cr) in
        re.(i1) <- re.(i0) -. tr;
        im.(i1) <- im.(i0) -. ti;
        re.(i0) <- re.(i0) +. tr;
        im.(i0) <- im.(i0) +. ti;
        let cr' = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := cr'
      done;
      k := !k + !len
    done;
    len := !len * 2
  done;
  if inverse then begin
    let inv_n = 1. /. float_of_int n in
    for i = 0 to n - 1 do
      re.(i) <- re.(i) *. inv_n;
      im.(i) <- im.(i) *. inv_n
    done
  end

(* Row and column 1-D transforms are independent of each other within a
   pass, so each pass chunks across the domain pool with per-task
   scratch buffers; results are bitwise-identical to the sequential
   sweep for any domain count.  Small grids stay sequential: below the
   threshold the per-batch synchronisation costs more than the FFTs. *)
let par_threshold = 4096

let transform2 ~inverse ~rows ~cols re im =
  if Array.length re <> rows * cols || Array.length im <> rows * cols then
    invalid_arg "Fft.transform2: size mismatch";
  (* Rows in place. *)
  let rows_pass r0 r1 =
    let row_re = Array.make cols 0. and row_im = Array.make cols 0. in
    for r = r0 to r1 - 1 do
      Array.blit re (r * cols) row_re 0 cols;
      Array.blit im (r * cols) row_im 0 cols;
      transform ~inverse row_re row_im;
      Array.blit row_re 0 re (r * cols) cols;
      Array.blit row_im 0 im (r * cols) cols
    done
  in
  (* Columns via gather/scatter. *)
  let cols_pass c0 c1 =
    let col_re = Array.make rows 0. and col_im = Array.make rows 0. in
    for c = c0 to c1 - 1 do
      for r = 0 to rows - 1 do
        col_re.(r) <- re.((r * cols) + c);
        col_im.(r) <- im.((r * cols) + c)
      done;
      transform ~inverse col_re col_im;
      for r = 0 to rows - 1 do
        re.((r * cols) + c) <- col_re.(r);
        im.((r * cols) + c) <- col_im.(r)
      done
    done
  in
  if rows * cols >= par_threshold && Parallel.num_domains () > 1 then begin
    Parallel.parallel_range ~lo:0 ~hi:rows rows_pass;
    Parallel.parallel_range ~lo:0 ~hi:cols cols_pass
  end
  else begin
    rows_pass 0 rows;
    cols_pass 0 cols
  end

let convolve2 ~rows ~cols a b =
  let n = rows * cols in
  if Array.length a <> n || Array.length b <> n then
    invalid_arg "Fft.convolve2: size mismatch";
  let ar = Array.copy a and ai = Array.make n 0. in
  let br = Array.copy b and bi = Array.make n 0. in
  transform2 ~inverse:false ~rows ~cols ar ai;
  transform2 ~inverse:false ~rows ~cols br bi;
  for i = 0 to n - 1 do
    let pr = (ar.(i) *. br.(i)) -. (ai.(i) *. bi.(i)) in
    let pi = (ar.(i) *. bi.(i)) +. (ai.(i) *. br.(i)) in
    ar.(i) <- pr;
    ai.(i) <- pi
  done;
  transform2 ~inverse:true ~rows ~cols ar ai;
  ar
