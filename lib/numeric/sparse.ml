type t = {
  n : int;
  row_start : int array; (* length n + 1 *)
  col : int array;
  value : float array;
}

type builder = {
  bn : int;
  mutable bi : int array;
  mutable bj : int array;
  mutable bv : float array;
  mutable len : int;
}

let builder n =
  if n < 0 then invalid_arg "Sparse.builder: negative dimension";
  { bn = n; bi = Array.make 16 0; bj = Array.make 16 0; bv = Array.make 16 0.; len = 0 }

let ensure_capacity b =
  if b.len = Array.length b.bi then begin
    let cap = 2 * Array.length b.bi in
    let grow a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 b.len;
      a'
    in
    b.bi <- grow b.bi 0;
    b.bj <- grow b.bj 0;
    b.bv <- grow b.bv 0.
  end

let add b i j v =
  if i < 0 || i >= b.bn || j < 0 || j >= b.bn then
    invalid_arg "Sparse.add: index out of range";
  ensure_capacity b;
  b.bi.(b.len) <- i;
  b.bj.(b.len) <- j;
  b.bv.(b.len) <- v;
  b.len <- b.len + 1

let add_sym b i j v =
  add b i j v;
  if i <> j then add b j i v

let add_diag b i v = add b i i v

let finalize b =
  let n = b.bn in
  (* Count entries per row, prefix-sum into row_start, then scatter.
     Duplicates are merged afterwards by compacting sorted rows. *)
  let count = Array.make (n + 1) 0 in
  for k = 0 to b.len - 1 do
    count.(b.bi.(k) + 1) <- count.(b.bi.(k) + 1) + 1
  done;
  for i = 1 to n do
    count.(i) <- count.(i) + count.(i - 1)
  done;
  let row_start = Array.copy count in
  let col = Array.make b.len 0 in
  let value = Array.make b.len 0. in
  let cursor = Array.copy row_start in
  for k = 0 to b.len - 1 do
    let i = b.bi.(k) in
    let p = cursor.(i) in
    col.(p) <- b.bj.(k);
    value.(p) <- b.bv.(k);
    cursor.(i) <- p + 1
  done;
  (* Sort each row by column (insertion sort: rows are short) and merge
     duplicates in place. *)
  let out_col = Array.make b.len 0 in
  let out_val = Array.make b.len 0. in
  let out_start = Array.make (n + 1) 0 in
  let w = ref 0 in
  for i = 0 to n - 1 do
    out_start.(i) <- !w;
    let lo = row_start.(i) and hi = cursor.(i) in
    for p = lo + 1 to hi - 1 do
      let c = col.(p) and v = value.(p) in
      let q = ref p in
      while !q > lo && col.(!q - 1) > c do
        col.(!q) <- col.(!q - 1);
        value.(!q) <- value.(!q - 1);
        decr q
      done;
      col.(!q) <- c;
      value.(!q) <- v
    done;
    let p = ref lo in
    while !p < hi do
      let c = col.(!p) in
      let acc = ref 0. in
      while !p < hi && col.(!p) = c do
        acc := !acc +. value.(!p);
        incr p
      done;
      if !acc <> 0. then begin
        out_col.(!w) <- c;
        out_val.(!w) <- !acc;
        incr w
      end
    done
  done;
  out_start.(n) <- !w;
  {
    n;
    row_start = out_start;
    col = Array.sub out_col 0 !w;
    value = Array.sub out_val 0 !w;
  }

let dim m = m.n

let nnz m = Array.length m.col

let mul_rows m x y r0 r1 =
  for i = r0 to r1 - 1 do
    let acc = ref 0. in
    for p = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      acc := !acc +. (m.value.(p) *. x.(m.col.(p)))
    done;
    y.(i) <- !acc
  done

let mul_seq m x y =
  assert (Array.length x = m.n && Array.length y = m.n);
  mul_rows m x y 0 m.n

(* Rows are independent and each keeps its sequential accumulation
   order, so the row-chunked parallel product is bitwise-identical to
   [mul_seq] for any domain count.  Small systems stay on the caller:
   below the threshold task overhead swamps the work. *)
let mul_par_threshold = 512

let mul m x y =
  assert (Array.length x = m.n && Array.length y = m.n);
  if m.n >= mul_par_threshold && Parallel.num_domains () > 1 then
    Parallel.parallel_range
      ~chunk:(max 128 (m.n / (4 * Parallel.num_domains ())))
      ~lo:0 ~hi:m.n
      (fun r0 r1 -> mul_rows m x y r0 r1)
  else mul_rows m x y 0 m.n

let diagonal m =
  let d = Array.make m.n 0. in
  for i = 0 to m.n - 1 do
    for p = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      if m.col.(p) = i then d.(i) <- m.value.(p)
    done
  done;
  d

let entry m i j =
  if i < 0 || i >= m.n || j < 0 || j >= m.n then
    invalid_arg "Sparse.entry: index out of range";
  let acc = ref 0. in
  for p = m.row_start.(i) to m.row_start.(i + 1) - 1 do
    if m.col.(p) = j then acc := m.value.(p)
  done;
  !acc

let is_symmetric ?(tol = 1e-9) m =
  let ok = ref true in
  for i = 0 to m.n - 1 do
    for p = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      let j = m.col.(p) in
      if Float.abs (m.value.(p) -. entry m j i) > tol then ok := false
    done
  done;
  !ok

let of_dense a =
  let n = Array.length a in
  let b = builder n in
  for i = 0 to n - 1 do
    if Array.length a.(i) <> n then invalid_arg "Sparse.of_dense: not square";
    for j = 0 to n - 1 do
      if a.(i).(j) <> 0. then add b i j a.(i).(j)
    done
  done;
  finalize b

let to_dense m =
  let a = Array.make_matrix m.n m.n 0. in
  for i = 0 to m.n - 1 do
    for p = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      a.(i).(m.col.(p)) <- m.value.(p)
    done
  done;
  a
