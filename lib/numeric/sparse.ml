type t = {
  n : int;
  row_start : int array; (* length n + 1 *)
  col : int array;
  value : float array;
}

type builder = {
  bn : int;
  mutable bi : int array;
  mutable bj : int array;
  mutable bv : float array;
  mutable len : int;
}

let builder n =
  if n < 0 then invalid_arg "Sparse.builder: negative dimension";
  { bn = n; bi = Array.make 16 0; bj = Array.make 16 0; bv = Array.make 16 0.; len = 0 }

let ensure_capacity b =
  if b.len = Array.length b.bi then begin
    let cap = 2 * Array.length b.bi in
    let grow a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 b.len;
      a'
    in
    b.bi <- grow b.bi 0;
    b.bj <- grow b.bj 0;
    b.bv <- grow b.bv 0.
  end

let add b i j v =
  if i < 0 || i >= b.bn || j < 0 || j >= b.bn then
    invalid_arg "Sparse.add: index out of range";
  ensure_capacity b;
  b.bi.(b.len) <- i;
  b.bj.(b.len) <- j;
  b.bv.(b.len) <- v;
  b.len <- b.len + 1

let add_sym b i j v =
  add b i j v;
  if i <> j then add b j i v

let clear b = b.len <- 0

let add_diag b i v = add b i i v

let finalize b =
  let n = b.bn in
  (* Count entries per row, prefix-sum into row_start, then scatter.
     Duplicates are merged afterwards by compacting sorted rows. *)
  let count = Array.make (n + 1) 0 in
  for k = 0 to b.len - 1 do
    count.(b.bi.(k) + 1) <- count.(b.bi.(k) + 1) + 1
  done;
  for i = 1 to n do
    count.(i) <- count.(i) + count.(i - 1)
  done;
  let row_start = Array.copy count in
  let col = Array.make b.len 0 in
  let value = Array.make b.len 0. in
  let cursor = Array.copy row_start in
  for k = 0 to b.len - 1 do
    let i = b.bi.(k) in
    let p = cursor.(i) in
    col.(p) <- b.bj.(k);
    value.(p) <- b.bv.(k);
    cursor.(i) <- p + 1
  done;
  (* Sort each row by column (insertion sort: rows are short) and merge
     duplicates in place. *)
  let out_col = Array.make b.len 0 in
  let out_val = Array.make b.len 0. in
  let out_start = Array.make (n + 1) 0 in
  let w = ref 0 in
  for i = 0 to n - 1 do
    out_start.(i) <- !w;
    let lo = row_start.(i) and hi = cursor.(i) in
    for p = lo + 1 to hi - 1 do
      let c = col.(p) and v = value.(p) in
      let q = ref p in
      while !q > lo && col.(!q - 1) > c do
        col.(!q) <- col.(!q - 1);
        value.(!q) <- value.(!q - 1);
        decr q
      done;
      col.(!q) <- c;
      value.(!q) <- v
    done;
    let p = ref lo in
    while !p < hi do
      let c = col.(!p) in
      let acc = ref 0. in
      while !p < hi && col.(!p) = c do
        acc := !acc +. value.(!p);
        incr p
      done;
      if !acc <> 0. then begin
        out_col.(!w) <- c;
        out_val.(!w) <- !acc;
        incr w
      end
    done
  done;
  out_start.(n) <- !w;
  {
    n;
    row_start = out_start;
    col = Array.sub out_col 0 !w;
    value = Array.sub out_val 0 !w;
  }

(* ------------------------------------------------------------------ *)
(* Symbolic/numeric split: a [pattern] freezes the CSR structure and the
   triplet→slot permutation of one builder state so later assemblies
   with the same (i, j) stream skip the sort-and-dedup entirely and
   only scatter values ([refill]). *)

type pattern = {
  pn : int;
  p_len : int; (* triplet count the pattern was compiled from *)
  p_bi : int array; (* the (i, j) stream, for match checks *)
  p_bj : int array;
  p_row_start : int array; (* merged CSR structure, length pn + 1 *)
  p_col : int array;
  (* Triplets grouped by row (segment [tri_start.(i), tri_start.(i+1))),
     stably sorted by column within each row — the exact accumulation
     order [finalize] uses, so refill sums are bitwise-identical. *)
  tri_start : int array;
  tri_slot : int array; (* row-grouped position -> merged value slot *)
  tri_of : int array; (* row-grouped position -> original triplet index *)
  p_values : float array; (* cached numeric storage, rewritten by refill *)
}

(* Zero a row's slots and re-accumulate its triplets in the frozen
   order.  Rows touch disjoint slots and disjoint triplet segments, so
   row-chunking across the pool is race-free and, because each row keeps
   its sequential accumulation order, bitwise-deterministic for any
   domain count. *)
let refill_rows pat bv r0 r1 =
  for i = r0 to r1 - 1 do
    for s = pat.p_row_start.(i) to pat.p_row_start.(i + 1) - 1 do
      pat.p_values.(s) <- 0.
    done;
    for p = pat.tri_start.(i) to pat.tri_start.(i + 1) - 1 do
      let s = pat.tri_slot.(p) in
      pat.p_values.(s) <- pat.p_values.(s) +. bv.(pat.tri_of.(p))
    done
  done

let refill_par_threshold = 512

(* [finalize] drops merged entries that sum to exactly zero; the frozen
   structure cannot, so on the (rare) cancellation we compact into a
   fresh CSR to stay bitwise-identical to a from-scratch finalize. *)
let compact_zeros pat =
  let n = pat.pn in
  let keep = ref 0 in
  Array.iter (fun v -> if v <> 0. then incr keep) pat.p_values;
  let row_start = Array.make (n + 1) 0 in
  let col = Array.make !keep 0 in
  let value = Array.make !keep 0. in
  let w = ref 0 in
  for i = 0 to n - 1 do
    row_start.(i) <- !w;
    for s = pat.p_row_start.(i) to pat.p_row_start.(i + 1) - 1 do
      if pat.p_values.(s) <> 0. then begin
        col.(!w) <- pat.p_col.(s);
        value.(!w) <- pat.p_values.(s);
        incr w
      end
    done
  done;
  row_start.(n) <- !w;
  { n; row_start; col; value }

let pattern_matrix pat =
  {
    n = pat.pn;
    row_start = pat.p_row_start;
    col = pat.p_col;
    value = pat.p_values;
  }

let refill pat b =
  if b.bn <> pat.pn || b.len <> pat.p_len then
    invalid_arg "Sparse.refill: builder does not match pattern";
  if pat.pn >= refill_par_threshold && Parallel.num_domains () > 1 then
    Parallel.parallel_range
      ~chunk:(max 128 (pat.pn / (4 * Parallel.num_domains ())))
      ~work:(pat.p_len + pat.p_row_start.(pat.pn))
      ~lo:0 ~hi:pat.pn
      (fun r0 r1 -> refill_rows pat b.bv r0 r1)
  else refill_rows pat b.bv 0 pat.pn;
  if Array.exists (fun v -> v = 0.) pat.p_values then compact_zeros pat
  else pattern_matrix pat

let pattern_matches pat b =
  b.bn = pat.pn && b.len = pat.p_len
  &&
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < b.len do
    if b.bi.(!k) <> pat.p_bi.(!k) || b.bj.(!k) <> pat.p_bj.(!k) then ok := false;
    incr k
  done;
  !ok

let compile b =
  let n = b.bn in
  let len = b.len in
  (* Count per row, prefix-sum, then scatter triplet indices by row in
     triplet order — same first pass as [finalize], structure only. *)
  let tri_start = Array.make (n + 1) 0 in
  for k = 0 to len - 1 do
    tri_start.(b.bi.(k) + 1) <- tri_start.(b.bi.(k) + 1) + 1
  done;
  for i = 1 to n do
    tri_start.(i) <- tri_start.(i) + tri_start.(i - 1)
  done;
  let cursor = Array.copy tri_start in
  let tcol = Array.make len 0 in
  let tof = Array.make len 0 in
  for k = 0 to len - 1 do
    let i = b.bi.(k) in
    let p = cursor.(i) in
    tcol.(p) <- b.bj.(k);
    tof.(p) <- k;
    cursor.(i) <- p + 1
  done;
  (* Stable insertion sort per row by column: equal columns keep triplet
     order, which fixes the accumulation order refill replays. *)
  for i = 0 to n - 1 do
    let lo = tri_start.(i) and hi = tri_start.(i + 1) in
    for p = lo + 1 to hi - 1 do
      let c = tcol.(p) and k = tof.(p) in
      let q = ref p in
      while !q > lo && tcol.(!q - 1) > c do
        tcol.(!q) <- tcol.(!q - 1);
        tof.(!q) <- tof.(!q - 1);
        decr q
      done;
      tcol.(!q) <- c;
      tof.(!q) <- k
    done
  done;
  (* Merge runs of equal columns into slots. *)
  let row_start = Array.make (n + 1) 0 in
  let tri_slot = Array.make len 0 in
  let col_buf = Array.make len 0 in
  let w = ref 0 in
  for i = 0 to n - 1 do
    row_start.(i) <- !w;
    let hi = tri_start.(i + 1) in
    let p = ref tri_start.(i) in
    while !p < hi do
      let c = tcol.(!p) in
      col_buf.(!w) <- c;
      while !p < hi && tcol.(!p) = c do
        tri_slot.(!p) <- !w;
        incr p
      done;
      incr w
    done
  done;
  row_start.(n) <- !w;
  let pat =
    {
      pn = n;
      p_len = len;
      p_bi = Array.sub b.bi 0 len;
      p_bj = Array.sub b.bj 0 len;
      p_row_start = row_start;
      p_col = Array.sub col_buf 0 !w;
      tri_start;
      tri_slot;
      tri_of = tof;
      p_values = Array.make !w 0.;
    }
  in
  (pat, refill pat b)

let pattern_nnz pat = Array.length pat.p_col

let dim m = m.n

let nnz m = Array.length m.col

let mul_rows m x y r0 r1 =
  for i = r0 to r1 - 1 do
    let acc = ref 0. in
    for p = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      acc := !acc +. (m.value.(p) *. x.(m.col.(p)))
    done;
    y.(i) <- !acc
  done

let mul_seq m x y =
  assert (Array.length x = m.n && Array.length y = m.n);
  mul_rows m x y 0 m.n

(* Rows are independent and each keeps its sequential accumulation
   order, so the row-chunked parallel product is bitwise-identical to
   [mul_seq] for any domain count.  Small systems stay on the caller:
   below the threshold task overhead swamps the work. *)
let mul_par_threshold = 512

let mul m x y =
  assert (Array.length x = m.n && Array.length y = m.n);
  if m.n >= mul_par_threshold && Parallel.num_domains () > 1 then
    Parallel.parallel_range
      ~chunk:(max 128 (m.n / (4 * Parallel.num_domains ())))
      ~work:m.row_start.(m.n) ~lo:0 ~hi:m.n
      (fun r0 r1 -> mul_rows m x y r0 r1)
  else mul_rows m x y 0 m.n

let diagonal_into m d =
  if Array.length d <> m.n then
    invalid_arg "Sparse.diagonal_into: length mismatch";
  for i = 0 to m.n - 1 do
    d.(i) <- 0.;
    for p = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      if m.col.(p) = i then d.(i) <- m.value.(p)
    done
  done

let diagonal m =
  let d = Array.make m.n 0. in
  diagonal_into m d;
  d

let entry m i j =
  if i < 0 || i >= m.n || j < 0 || j >= m.n then
    invalid_arg "Sparse.entry: index out of range";
  let acc = ref 0. in
  for p = m.row_start.(i) to m.row_start.(i + 1) - 1 do
    if m.col.(p) = j then acc := m.value.(p)
  done;
  !acc

let is_symmetric ?(tol = 1e-9) m =
  let ok = ref true in
  for i = 0 to m.n - 1 do
    for p = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      let j = m.col.(p) in
      if Float.abs (m.value.(p) -. entry m j i) > tol then ok := false
    done
  done;
  !ok

let of_dense a =
  let n = Array.length a in
  let b = builder n in
  for i = 0 to n - 1 do
    if Array.length a.(i) <> n then invalid_arg "Sparse.of_dense: not square";
    for j = 0 to n - 1 do
      if a.(i).(j) <> 0. then add b i j a.(i).(j)
    done
  done;
  finalize b

let to_dense m =
  let a = Array.make_matrix m.n m.n 0. in
  for i = 0 to m.n - 1 do
    for p = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      a.(i).(m.col.(p)) <- m.value.(p)
    done
  done;
  a
