(** Preconditioned conjugate gradient for symmetric positive-definite
    systems, as used to solve the extended placement equation
    C·p + d + e = 0 (paper, eq. 3 and §4.1). *)

(** Result of a solve. *)
type stats = {
  iterations : int;  (** CG iterations actually performed *)
  residual : float;  (** final 2-norm of the residual *)
  converged : bool;  (** [residual <= tol * max 1 (norm b)] *)
}

(** [inv_diagonal a] is the inverted diagonal of [a] — the Jacobi
    preconditioner {!solve} uses.  Hoisted out so repeated solves against
    the same matrix can compute it once and pass it back via
    [?inv_diag].  Raises [Invalid_argument] if a diagonal entry is
    non-positive. *)
val inv_diagonal : Sparse.t -> float array

(** [inv_diagonal_into a out] writes the inverted diagonal into [out]
    (length [dim a]) and returns whether every diagonal entry was
    positive.  On [false] the contents of [out] are unusable; callers
    surface the error at solve time — this lets a cached assembly
    compute its preconditioner eagerly without turning an unsolved
    singular system into a build-time failure. *)
val inv_diagonal_into : Sparse.t -> float array -> bool

(** [solve ?tol ?max_iter ?x0 ?inv_diag a b] solves [a x = b] with Jacobi
    (diagonal) preconditioning and returns the solution with its {!stats}.

    [tol] is a relative tolerance on the residual (default [1e-8]);
    [max_iter] defaults to [4 * dim + 50]; [x0] is the warm-start guess
    (default zero — placement transformations warm-start from the previous
    placement, which is what makes later iterations cheap); [inv_diag]
    is a precomputed {!inv_diagonal} (callers are trusted that it matches
    [a]; its length is checked).

    Raises [Invalid_argument] if a diagonal entry is non-positive, since
    the placement matrix is positive definite whenever every connected
    component is anchored by a fixed connection. *)
val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  ?inv_diag:float array ->
  Sparse.t ->
  float array ->
  float array * stats
