type stats = { iterations : int; residual : float; converged : bool }

(* Jacobi preconditioner: the inverted diagonal of [a].  Hoisted out of
   [solve] so repeated solves against the same matrix (the x/y axes of a
   QP system share assembly, hooks re-solve) compute it once and pass it
   back via [?inv_diag]. *)
let inv_diagonal a =
  let d = Sparse.diagonal a in
  for i = 0 to Sparse.dim a - 1 do
    if d.(i) <= 0. then
      invalid_arg "Cg.solve: non-positive diagonal (matrix not anchored?)";
    d.(i) <- 1. /. d.(i)
  done;
  d

(* Allocation-free variant for cached-assembly callers: writes into
   [out] and reports validity instead of raising, so an assembly can be
   built eagerly and the error surfaced only if someone solves it. *)
let inv_diagonal_into a out =
  let n = Sparse.dim a in
  if Array.length out <> n then
    invalid_arg "Cg.inv_diagonal_into: length mismatch";
  Sparse.diagonal_into a out;
  let ok = ref true in
  for i = 0 to n - 1 do
    if out.(i) <= 0. then ok := false else out.(i) <- 1. /. out.(i)
  done;
  !ok

let solve ?(tol = 1e-8) ?max_iter ?x0 ?inv_diag a b =
  let n = Sparse.dim a in
  assert (Array.length b = n);
  let max_iter = match max_iter with Some m -> m | None -> (4 * n) + 50 in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.create n in
  let inv_diag =
    match inv_diag with
    | Some d ->
      if Array.length d <> n then invalid_arg "Cg.solve: inv_diag length mismatch";
      d
    | None -> inv_diagonal a
  in
  let r = Vec.create n in
  Sparse.mul a x r;
  Vec.sub_into b r r;
  let z = Vec.create n in
  Vec.mul_into inv_diag r z;
  let p = Vec.copy z in
  let ap = Vec.create n in
  let threshold = tol *. Float.max 1. (Vec.norm2 b) in
  let rz = ref (Vec.dot r z) in
  let rnorm = ref (Vec.norm2 r) in
  let iters = ref 0 in
  (* Standard PCG recurrence; loop invariant: r = b - a x, z = M⁻¹ r,
     rz = rᵀz. *)
  while !rnorm > threshold && !iters < max_iter do
    Sparse.mul a p ap;
    let pap = Vec.dot p ap in
    if pap <= 0. then (
      (* Numerically lost positive-definiteness; stop with current x. *)
      iters := max_iter)
    else begin
      let alpha = !rz /. pap in
      Vec.axpy ~alpha p x;
      Vec.axpy ~alpha:(-.alpha) ap r;
      Vec.mul_into inv_diag r z;
      let rz' = Vec.dot r z in
      let beta = rz' /. !rz in
      rz := rz';
      for i = 0 to n - 1 do
        p.(i) <- z.(i) +. (beta *. p.(i))
      done;
      rnorm := Vec.norm2 r;
      incr iters
    end
  done;
  if Obs.Registry.enabled () then begin
    Obs.Registry.observe "cg/iterations" (float_of_int !iters);
    Obs.Registry.observe "cg/residual" !rnorm;
    Obs.Registry.incr "cg/solves"
  end;
  (x, { iterations = !iters; residual = !rnorm; converged = !rnorm <= threshold })
