(** The line-oriented JSON protocol behind [place serve], [place batch]
    and the {!Server} network front end.

    One request per line on the way in, one response per line on the way
    out; both are single JSON objects ({!Obs.Json}), so transcripts are
    plain JSONL.  Scheduler lifecycle transitions are additionally
    emitted as event notification lines (objects with an ["event"]
    field) interleaved between responses — a reader distinguishes the
    two by the presence of ["ok"] (response) vs ["event"].

    {2 Protocol v2}

    Version 2 makes the dialect safe for {e concurrent} clients
    multiplexed over one scheduler:

    - {b Request correlation.}  Every request may carry a ["seq"] field
      (any JSON value), echoed {e verbatim} in its response — including
      error responses, so a client can always match an answer to the
      question.  Requests without ["seq"] get responses without one.
    - {b Typed errors.}  Failures are
      [{"ok":false,"error":{"code":C,"message":M}}] with a closed set of
      codes (see {!code}); [overloaded] errors additionally carry a
      ["retry_after_ms"] hint.
    - {b Numbered events.}  Event lines gain a monotonic ["ev"] counter
      (1, 2, …) so a reconnecting client can resume its event stream
      from the last number it saw ([subscribe]'s ["from_ev"]).

    {2 Protocol v3}

    Version 3 is v2 plus the typed job objective:

    - {b Objective submits.}  A submit's ["job"] may carry an
      ["objective"] object ({!Objective.of_json}) instead of the loose
      ["mode"]/["flow"]/["effort"]/["timing"] fields.  (Parsing is
      actually version-independent — v2 responders accept the object
      too — but v3 is the dialect that documents it.)
    - {b Objective echo.}  A successful submit response carries the
      {e resolved} ["objective"] object, so clients submitting legacy
      fields can see what they mapped onto.

    Legacy v2 submits parse to the identical spec via
    {!Objective.of_legacy} — golden v2 transcripts stay bitwise.

    Version 1 requests are a syntactic subset of v2 requests, so v1
    clients keep working against a v2 responder; [place serve --proto
    v1] renders legacy responses for bit-compatible transcripts.  The
    response mapping:

    {v
                      v1 (legacy)                  v2
    success           {"ok":true,…}                {"ok":true,"seq":…,…}
    failure           {"ok":false,"error":"msg"}   {"ok":false,"seq":…,
                                                    "error":{"code":…,"message":…}}
    event             {"event":E,…}                {"event":E,"ev":N,…}
    v}

    {2 Requests}

    {v
    {"cmd":"submit","job":{…Job.spec…}}      → {"ok":true,"id":N,"status":"queued"}
    {"cmd":"status","id":N}                  → {"ok":true,"id":N,"status":S}
    {"cmd":"result","id":N}                  → {"ok":true,"id":N,"result":{…}}
    {"cmd":"cancel","id":N}                  → {"ok":true,"id":N,"cancelled":B}
    {"cmd":"jobs"}                           → {"ok":true,"jobs":[{"id":N,"status":S}…]}
    {"cmd":"step","turns":N}                 → {"ok":true,"stepped":M}
    {"cmd":"drain"}                          → {"ok":true,"stepped":M}
    {"cmd":"wait","id":N}                    → {"ok":true,"id":N,"status":S}
    {"cmd":"metrics"}                        → {"ok":true,"enabled":B,"metrics":{…}}
    {"cmd":"subscribe","from_ev":N}          → {"ok":true,"subscribed":true}
    {"cmd":"shutdown"}                       → {"ok":true,"shutdown":true}
    v}

    In the synchronous stdio loop ({!serve}) jobs advance only inside
    [step]/[drain]/[wait] and every connection already receives all
    event lines ([subscribe] is an acknowledged no-op).  The network
    server gives the same requests asynchronous semantics: jobs advance
    continuously between polls, [wait]/[drain] responses arrive when
    their condition holds, and event lines only flow to subscribed
    connections.

    Every failure — unknown command, malformed JSON, bad job spec,
    unknown id, result of a non-terminal job, admission shed, shutdown
    refusal — is a structured error response, never a dead
    connection. *)

type version = V1 | V2 | V3

(** The closed set of failure codes.  [Overloaded] and [Shutting_down]
    originate in the network server's admission control and drain; the
    rest are request-level. *)
type code =
  | Parse  (** malformed JSON, or no usable ["cmd"] field *)
  | Unknown_cmd
  | Bad_spec  (** invalid job spec or request argument *)
  | Unknown_id
  | Not_terminal  (** result of a job that is still running *)
  | Overloaded  (** admission bound hit; retry after the hint *)
  | Shutting_down  (** server is draining; no new work accepted *)

val code_to_string : code -> string

val code_of_string : string -> code option

type error = {
  code : code;
  message : string;
  retry_after_ms : int option;  (** only ever set on [Overloaded] *)
}

(** [err code fmt] builds an error. *)
val err : ?retry_after_ms:int -> code -> string -> error

(** [error_message e] — ["code: message"], for logs and CLI output. *)
val error_message : error -> string

type request =
  | Submit of Job.spec
  | Status of Scheduler.id
  | Result of Scheduler.id
  | Cancel of Scheduler.id
  | Jobs
  | Step of int
  | Drain
  | Wait of Scheduler.id
  | Metrics
  | Subscribe of { from_ev : int option }
  | Shutdown

(** [seq_of_json v] extracts the ["seq"] field of a request object, to
    be echoed verbatim — callers fetch it {e before} parsing so even a
    request that fails to parse still gets its correlation id back. *)
val seq_of_json : Obs.Json.t -> Obs.Json.t option

val request_of_json : Obs.Json.t -> (request, error) result

(** What a request came to: response fields, or a typed refusal.  The
    transport ({!serve}, the network server) renders it with {!render}
    under its negotiated protocol version. *)
type reply = Reply of (string * Obs.Json.t) list | Refuse of error

(** [render proto ~seq reply] is the response line.  V2 echoes [seq] and
    structures errors; V1 drops [seq] and flattens errors to their bare
    message string (the legacy shape). *)
val render : version -> seq:Obs.Json.t option -> reply -> Obs.Json.t

(** [event_to_json ?ev e] is the notification line for a scheduler
    event, numbered with [ev] under v2. *)
val event_to_json : ?ev:int -> Scheduler.event -> Obs.Json.t

(** [metrics_fields sched] — the [metrics] response payload: whether
    the {!Obs.Registry} is recording, the scheduler shape (shard count,
    queued/running jobs, per-shard queue depth / steal / slice / busy
    counters — [per_shard] is empty for an inline scheduler), plus a
    name → stat object dump of the registry snapshot. *)
val metrics_fields : Scheduler.t -> (string * Obs.Json.t) list

(** [handle ?proto sched req] executes one request synchronously and
    returns its reply plus [true] when the request was [Shutdown].
    [Submit] refuses invalid specs ({!Scheduler.validate_spec}) with
    [Bad_spec]; [Wait]/[Drain] step the scheduler until done (the stdio
    semantics — the network server substitutes its own asynchronous
    handling).  Under [V3] (default [V2]) a successful submit reply
    additionally echoes the resolved ["objective"]. *)
val handle : ?proto:version -> Scheduler.t -> request -> reply * bool

(** [serve ?proto ?echo sched ic oc] is the full synchronous loop: read
    request lines from [ic] until EOF or [shutdown], write responses to
    [oc] (flushed per line).  [echo] (e.g. a transcript file) receives a
    copy of every request and response line.  Scheduler events should be
    wired to [oc]/[echo] by the caller via the scheduler's [on_event]
    using {!event_to_json}.  Remaining non-terminal jobs are drained
    before returning, so piped sessions that end after their submits
    still complete their work. *)
val serve :
  ?proto:version ->
  ?echo:(string -> unit) ->
  Scheduler.t ->
  in_channel ->
  out_channel ->
  unit
