(** The line-oriented JSON protocol behind [place serve] and
    [place batch].

    One request per line on the way in, one response per line on the way
    out; both are single JSON objects ({!Obs.Json}), so transcripts are
    plain JSONL.  Scheduler lifecycle transitions are additionally
    emitted as event notification lines (objects with an ["event"]
    field) interleaved between responses — a reader distinguishes the
    two by the presence of ["ok"] (response) vs ["event"].

    Requests carry a ["cmd"] field:

    {v
    {"cmd":"submit","job":{…Job.spec…}}      → {"ok":true,"id":N}
    {"cmd":"status","id":N}                  → {"ok":true,"id":N,"status":S}
    {"cmd":"result","id":N}                  → {"ok":true,"id":N,"result":{…}}
    {"cmd":"cancel","id":N}                  → {"ok":true,"id":N,"cancelled":B}
    {"cmd":"jobs"}                           → {"ok":true,"jobs":[{"id":N,"status":S}…]}
    {"cmd":"step","turns":N}                 → {"ok":true,"stepped":M}
    {"cmd":"drain"}                          → {"ok":true,"stepped":M}
    {"cmd":"wait","id":N}                    → {"ok":true,"id":N,"status":S}
    {"cmd":"shutdown"}                       → {"ok":true,"shutdown":true}
    v}

    Jobs advance only inside [step]/[drain]/[wait] (the scheduler is
    cooperative and single-threaded), so a client scripts its batch as
    submits followed by a drain.  Every failure — unknown command,
    malformed JSON, bad job spec, unknown id, result of a non-terminal
    job — is a structured [{"ok":false,"error":…}] response, never a
    dead connection. *)

type request =
  | Submit of Job.spec
  | Status of Scheduler.id
  | Result of Scheduler.id
  | Cancel of Scheduler.id
  | Jobs
  | Step of int
  | Drain
  | Wait of Scheduler.id
  | Shutdown

val request_of_json : Obs.Json.t -> (request, string) result

(** [event_to_json e] is the notification line for a scheduler event. *)
val event_to_json : Scheduler.event -> Obs.Json.t

(** [error msg] is the [{"ok":false,"error":msg}] response. *)
val error : string -> Obs.Json.t

(** [handle sched req] executes one request and returns its response
    plus [true] when the request was [Shutdown]. *)
val handle : Scheduler.t -> request -> Obs.Json.t * bool

(** [serve ?echo sched ic oc] is the full loop: read request lines from
    [ic] until EOF or [shutdown], write responses to [oc] (flushed per
    line).  [echo] (e.g. a transcript file) receives a copy of every
    request and response line.  Scheduler events should be wired to
    [oc]/[echo] by the caller via the scheduler's [on_event] using
    {!event_to_json}.  Remaining non-terminal jobs are drained before
    returning, so piped sessions that end after their submits still
    complete their work. *)
val serve :
  ?echo:(string -> unit) -> Scheduler.t -> in_channel -> out_channel -> unit
