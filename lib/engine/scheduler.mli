(** Placement-job scheduler: cooperative single-domain interleaving, or
    sharded across worker domains.

    Jobs are queued by priority (FIFO within a priority) and up to
    [concurrency] of them run at once.  With [shards = 0] (the default)
    they are {e interleaved}, round-robin, on the calling domain at the
    granularity of one placement transformation per turn.  With
    [shards = n > 0] the scheduler spawns [n] worker domains, each
    owning a run queue; a job's home queue is fixed by its id
    ([(id - 1) mod shards]), an idle worker steals a slice from another
    shard's queue, and the job re-queues at home afterwards.  Either
    way a job is owned by exactly one domain at a time, so its slices
    execute in sequence and stealing changes only {e when} a slice
    runs, never what it computes.

    Every job's trajectory is bitwise-identical to a solo run in both
    modes: the {!Numeric.Parallel} combinators are deterministic for
    any lane count, and the scheduler only repartitions lanes — between
    turns in inline mode ([base_domains / running_jobs]), or as a fixed
    per-worker {!Numeric.Parallel.with_lanes} pin
    ([base_domains / shards]) in sharded mode (a job's own [domains]
    budget wins in both).

    In sharded mode, lifecycle events are {e queued} and delivered on
    the coordinator by {!pump} (or {!step}/{!drain}, which pump) — never
    from a worker domain — so an [on_event] handler needs no locking of
    its own.  {!notify_fd} wakes a select-based embedder when events are
    pending.  {!submit} and {!cancel} must be called from the
    coordinator domain; status getters are safe from anywhere.

    Cancellation, deadlines and checkpoints all take effect at
    transformation boundaries.  A cancelled or deadline-expired job
    degrades gracefully: its best-so-far placement is greedily legalised
    ({!Legalize.Tetris}) and reported with status [Cancelled] — never an
    exception.  A completed job gets the full final-placement pipeline
    ({!Legalize.Abacus}, then {!Legalize.Improve} and {!Legalize.Domino},
    whose deltas are reported).

    Per-job telemetry goes through a private {!Obs.Sink} installed only
    for the duration of that job's turns, so concurrent traces never
    interleave. *)

type t

(** Job handle, unique within a scheduler, assigned at submission
    (1, 2, …). *)
type id = int

type event =
  | Submitted of id
  | Started of id
  | Checkpointed of id * string  (** checkpoint file written *)
  | Finished of id * Job.status  (** terminal status *)

(** [create ()] — [concurrency] is the number of jobs running at once
    (default 1); [domains] is the lane budget split between them
    (default: the current {!Numeric.Parallel.num_domains}); [shards] is
    the number of worker domains (default 0: inline cooperative mode;
    clamped to at most 64); [on_event] observes lifecycle transitions.
    Sharded schedulers hold worker domains until {!stop}. *)
val create :
  ?concurrency:int ->
  ?domains:int ->
  ?shards:int ->
  ?on_event:(event -> unit) ->
  unit ->
  t

(** Number of worker domains (0 in inline mode). *)
val shards : t -> int

(** [pump t] drains the self-pipe and dispatches queued lifecycle
    events on the calling (coordinator) domain.  No-op in inline mode.
    Embedders that do not call {!step}/{!drain} (e.g. a select loop)
    must pump to see worker-produced events. *)
val pump : t -> unit

(** In sharded mode, a file descriptor that becomes readable when
    lifecycle events await {!pump} — for select-based embedders.  [None]
    in inline mode or after {!stop}. *)
val notify_fd : t -> Unix.file_descr option

(** [stop t] halts and joins the worker domains (each finishes its
    current slice first), delivers any trailing events, and closes the
    notify pipe.  Non-terminal jobs keep their state but make no further
    progress.  Idempotent; no-op in inline mode. *)
val stop : t -> unit

(** Per-shard scheduler counters, for the [metrics] surfaces. *)
type shard_metric = {
  shard : int;
  queue_depth : int;  (** jobs queued on this shard right now *)
  m_steals : int;  (** slices this worker stole from other shards *)
  m_slices : int;  (** slices this worker executed *)
  m_busy_s : float;  (** wall time spent executing slices *)
  m_busy_frac : float;  (** busy_s over scheduler uptime *)
  m_max_slice_s : float;  (** slowest single slice *)
}

(** [shard_metrics t] — one entry per shard; [[]] in inline mode. *)
val shard_metrics : t -> shard_metric list

(** [validate_spec spec] is the submit-time admission check: the source
    names a known profile or an existing file, resume/warm checkpoints
    exist, budgets are sane.  Deliberately cheap (existence, not full
    parses) so a front end can refuse a bad spec before queuing it — the
    protocol's [bad_spec] response.  Problems that only show up when the
    job materialises (a file that parses wrong, a checkpoint digest
    mismatch) still surface as a [Failed] status at start. *)
val validate_spec : Job.spec -> (unit, string) result

(** [submit t spec] enqueues a job and returns its id.  The spec is
    validated lazily: source or checkpoint problems surface as a
    [Failed] status when the job would start.  Call {!validate_spec}
    first to reject obviously bad specs synchronously. *)
val submit : t -> Job.spec -> id

(** [cancel t id] requests cooperative cancellation.  A queued job is
    finished as [Cancelled] immediately (no placement was produced); a
    running job finishes at its next turn with its best-so-far
    placement, writing a final checkpoint first when configured.
    Returns false when [id] is unknown or already terminal. *)
val cancel : t -> id -> bool

(** [cancel_all t] requests cancellation of every non-terminal job and
    returns how many were cancelled — the graceful-drain path of the
    network server, degrading in-flight work to legal best-so-far
    placements. *)
val cancel_all : t -> int

val status : t -> id -> Job.status option

(** [result t id] — the terminal report, once [terminal (status t id)]. *)
val result : t -> id -> Job.result option

(** [placement t id] — the final {e global} (pre-legalisation) placement
    of a terminal job that produced one; for the ECO path and for tests
    comparing trajectories bitwise. *)
val placement : t -> id -> Netlist.Placement.t option

(** [legalized t id] — the legalised placement behind a terminal job's
    reported metrics (the Tetris best-so-far for cancelled jobs, the full
    pipeline's output for completed ones). *)
val legalized : t -> id -> Netlist.Placement.t option

(** [jobs t] — every submitted job with its current status, in
    submission order. *)
val jobs : t -> (id * Job.status) list

(** [busy t] — some job is still queued or running. *)
val busy : t -> bool

(** [queued t] — jobs accepted but not yet started; the quantity the
    network server's admission bound is measured against. *)
val queued : t -> int

(** [running t] — jobs currently interleaving (including checkpointed
    ones, which keep executing). *)
val running : t -> int

(** [step t] — inline mode: run one scheduling turn (start queued jobs
    while slots are free, then give the next running job one
    transformation or its finishing pass); returns false when nothing
    was runnable.  Sharded mode: pump events and, if jobs are still in
    flight, block until a worker makes progress; returns false once no
    job is queued or running (or after {!stop}). *)
val step : t -> bool

(** [drain t] steps until no job is queued or running.  Does not stop
    worker domains — call {!stop} when done with a sharded scheduler. *)
val drain : t -> unit
