(** Cooperative placement-job scheduler.

    Jobs are queued by priority (FIFO within a priority) and up to
    [concurrency] of them are {e interleaved}, round-robin, at the
    granularity of one placement transformation per turn.  Interleaving
    rather than domain-level preemption keeps every job's trajectory
    bitwise-identical to a solo run: the {!Numeric.Parallel} pool is
    deterministic for any lane count, and the scheduler merely
    repartitions lanes between turns ([base_domains / running_jobs],
    minimum 1, unless a job pins its own [domains] budget).

    Cancellation, deadlines and checkpoints all take effect at
    transformation boundaries.  A cancelled or deadline-expired job
    degrades gracefully: its best-so-far placement is greedily legalised
    ({!Legalize.Tetris}) and reported with status [Cancelled] — never an
    exception.  A completed job gets the full final-placement pipeline
    ({!Legalize.Abacus}, then {!Legalize.Improve} and {!Legalize.Domino},
    whose deltas are reported).

    Per-job telemetry goes through a private {!Obs.Sink} installed only
    for the duration of that job's turns, so concurrent traces never
    interleave. *)

type t

(** Job handle, unique within a scheduler, assigned at submission
    (1, 2, …). *)
type id = int

type event =
  | Submitted of id
  | Started of id
  | Checkpointed of id * string  (** checkpoint file written *)
  | Finished of id * Job.status  (** terminal status *)

(** [create ()] — [concurrency] is the number of jobs interleaved at
    once (default 1); [domains] is the lane budget split between them
    (default: the current {!Numeric.Parallel.num_domains}); [on_event]
    observes lifecycle transitions. *)
val create :
  ?concurrency:int -> ?domains:int -> ?on_event:(event -> unit) -> unit -> t

(** [validate_spec spec] is the submit-time admission check: the source
    names a known profile or an existing file, resume/warm checkpoints
    exist, budgets are sane.  Deliberately cheap (existence, not full
    parses) so a front end can refuse a bad spec before queuing it — the
    protocol's [bad_spec] response.  Problems that only show up when the
    job materialises (a file that parses wrong, a checkpoint digest
    mismatch) still surface as a [Failed] status at start. *)
val validate_spec : Job.spec -> (unit, string) result

(** [submit t spec] enqueues a job and returns its id.  The spec is
    validated lazily: source or checkpoint problems surface as a
    [Failed] status when the job would start.  Call {!validate_spec}
    first to reject obviously bad specs synchronously. *)
val submit : t -> Job.spec -> id

(** [cancel t id] requests cooperative cancellation.  A queued job is
    finished as [Cancelled] immediately (no placement was produced); a
    running job finishes at its next turn with its best-so-far
    placement, writing a final checkpoint first when configured.
    Returns false when [id] is unknown or already terminal. *)
val cancel : t -> id -> bool

(** [cancel_all t] requests cancellation of every non-terminal job and
    returns how many were cancelled — the graceful-drain path of the
    network server, degrading in-flight work to legal best-so-far
    placements. *)
val cancel_all : t -> int

val status : t -> id -> Job.status option

(** [result t id] — the terminal report, once [terminal (status t id)]. *)
val result : t -> id -> Job.result option

(** [placement t id] — the final {e global} (pre-legalisation) placement
    of a terminal job that produced one; for the ECO path and for tests
    comparing trajectories bitwise. *)
val placement : t -> id -> Netlist.Placement.t option

(** [legalized t id] — the legalised placement behind a terminal job's
    reported metrics (the Tetris best-so-far for cancelled jobs, the full
    pipeline's output for completed ones). *)
val legalized : t -> id -> Netlist.Placement.t option

(** [jobs t] — every submitted job with its current status, in
    submission order. *)
val jobs : t -> (id * Job.status) list

(** [busy t] — some job is still queued or running. *)
val busy : t -> bool

(** [queued t] — jobs accepted but not yet started; the quantity the
    network server's admission bound is measured against. *)
val queued : t -> int

(** [running t] — jobs currently interleaving (including checkpointed
    ones, which keep executing). *)
val running : t -> int

(** [step t] runs one scheduling turn: start queued jobs while slots are
    free, then give the next running job one transformation (or its
    finishing pass).  Returns false when nothing was runnable. *)
val step : t -> bool

(** [drain t] steps until no job is queued or running. *)
val drain : t -> unit
