(** Where a job's circuit comes from.

    A job spec must be serializable, so it names its circuit instead of
    embedding it: either a generator profile (name, scale, seed — fully
    deterministic) or a file on disk (the [.ckt] text format with an
    optional [.pos] sidecar, or a Bookshelf [.aux]). *)

type t =
  | Profile of { name : string; scale : float; seed : int }
  | File of string

(** [validate t] checks what can be checked without materialising the
    circuit: the profile name exists and its scale is in (0, 1], or the
    named file exists.  This is the submit-time admission check behind
    the protocol's [bad_spec] responses. *)
val validate : t -> (unit, string) result

(** [load t] materialises the circuit and its initial placement.  For
    [Profile] this is the generator followed by the §4.2 centered
    initial placement; for [File] the placement comes from the [.pos]
    sidecar when present (Bookshelf placements come from the [.pl]).
    Unknown profiles and unreadable or malformed files are typed
    [Error]s, never exceptions. *)
val load : t -> (Netlist.Circuit.t * Netlist.Placement.t, string) result

(** [describe t] is a short human-readable label ("biomed@0.25#42",
    "ibm01.aux"). *)
val describe : t -> string

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result
