(** Where a job's circuit comes from.

    A job spec must be serializable, so it names its circuit instead of
    embedding it: either a generator profile (name, scale, seed — fully
    deterministic) or a file on disk (the [.ckt] text format with an
    optional [.pos] sidecar, or a Bookshelf [.aux]). *)

type t =
  | Profile of { name : string; scale : float; seed : int }
  | File of string

(** [load t] materialises the circuit and its initial placement.  For
    [Profile] this is the generator followed by the §4.2 centered
    initial placement; for [File] the placement comes from the [.pos]
    sidecar when present (Bookshelf placements come from the [.pl]).
    Raises on unknown profiles / unreadable files — callers run it
    inside the job-failure guard. *)
val load : t -> Netlist.Circuit.t * Netlist.Placement.t

(** [describe t] is a short human-readable label ("biomed@0.25#42",
    "ibm01.aux"). *)
val describe : t -> string

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result
