type mode = Objective.mode = Standard | Fast

type flow = Objective.flow = Flat | Multilevel

type start = Fresh | Resume of string | Warm of string

type spec = {
  source : Source.t;
  objective : Objective.t;
  priority : int;
  deadline : float option;
  domains : int option;
  max_steps : int option;
  start : start;
  checkpoint : string option;
  checkpoint_every : int;
  trace : string option;
}

let spec ~source ?mode ?flow ?effort ?timing ?objective ?(priority = 0)
    ?deadline ?domains ?max_steps ?(start = Fresh) ?checkpoint
    ?(checkpoint_every = 25) ?trace () =
  let objective =
    match objective with
    | Some o -> o
    | None ->
      Objective.of_legacy
        ~mode:(Option.value mode ~default:Objective.Standard)
        ~flow:(Option.value flow ~default:Objective.Flat)
        ~effort
        ~timing:(Option.value timing ~default:false)
  in
  {
    source;
    objective;
    priority;
    deadline;
    domains;
    max_steps;
    start;
    checkpoint;
    checkpoint_every;
    trace;
  }

let mode s = s.objective.Objective.mode

let flow s = s.objective.Objective.flow

let effort s = s.objective.Objective.effort

let timing s = Objective.timing_driven s.objective

type status =
  | Queued
  | Running
  | Checkpointed
  | Done
  | Cancelled
  | Failed of string

let terminal = function
  | Done | Cancelled | Failed _ -> true
  | Queued | Running | Checkpointed -> false

let status_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Checkpointed -> "checkpointed"
  | Done -> "done"
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"

type result = {
  status : status;
  iterations : int;
  converged : bool;
  hpwl : float;
  overlap : float;
  legal : bool;
  improve_moves : int;
  improve_delta : float;
  domino_moves : int;
  domino_delta : float;
  routed_overflow : float option;
  routed_max_overflow : float option;
  routed_wirelength : float option;
  deadline_expired : bool;
  wall_s : float;
  checkpoint_written : string option;
}

let mode_to_string = Objective.mode_to_string

let flow_to_string = Objective.flow_to_string

let flow_of_string = Objective.flow_of_string

let mode_of_string = Objective.mode_of_string

let config_of_mode = function
  | Standard -> Kraftwerk.Config.standard
  | Fast -> Kraftwerk.Config.fast

let config_of_spec s = Objective.config s.objective

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)

open Obs.Json

let num v = Num v

let int_ v = Num (float_of_int v)

let opt f = function Some v -> f v | None -> Null

(* The legacy mode/flow/effort/timing fields are still emitted (derived
   from the objective) so v2 readers keep working; the objective object
   is authoritative on parse. *)
let spec_to_json s =
  let source_fields = match Source.to_json s.source with Obj f -> f | _ -> [] in
  Obj
    (source_fields
    @ [
        ("objective", Objective.to_json s.objective);
        ("mode", Str (mode_to_string (mode s)));
        ("flow", Str (flow_to_string (flow s)));
        ("effort", opt int_ (effort s));
        ("timing", Bool (timing s));
        ("priority", int_ s.priority);
        ("deadline_s", opt num s.deadline);
        ("domains", opt int_ s.domains);
        ("max_steps", opt int_ s.max_steps);
        ( "resume_from",
          match s.start with Resume f -> Str f | _ -> Null );
        ("warm_start", match s.start with Warm f -> Str f | _ -> Null);
        ("checkpoint", opt (fun f -> Str f) s.checkpoint);
        ("checkpoint_every", int_ s.checkpoint_every);
        ("trace", opt (fun f -> Str f) s.trace);
      ])

let ( let* ) = Result.bind

let field_opt_str v key =
  match member key v with
  | Some (Str s) -> Ok (Some s)
  | Some Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "job: field %S is not a string" key)

let field_opt_num v key =
  match member key v with
  | Some (Num n) -> Ok (Some n)
  | Some Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "job: field %S is not a number" key)

let field_opt_int v key =
  let* n = field_opt_num v key in
  match n with
  | None -> Ok None
  | Some n when Float.is_integer n -> Ok (Some (int_of_float n))
  | Some _ -> Error (Printf.sprintf "job: field %S is not an integer" key)

(* The v2 job shape: loose mode/flow/effort/timing fields. *)
let legacy_objective_of_json v =
  let* mode =
    match member "mode" v with
    | Some (Str m) -> mode_of_string m
    | Some Null | None -> Ok Standard
    | Some _ -> Error "job: field \"mode\" is not a string"
  in
  let* flow =
    match member "flow" v with
    | Some (Str f) -> flow_of_string f
    | Some Null | None -> Ok Flat
    | Some _ -> Error "job: field \"flow\" is not a string"
  in
  let* timing =
    match member "timing" v with
    | Some (Bool b) -> Ok b
    | Some Null | None -> Ok false
    | Some _ -> Error "job: field \"timing\" is not a bool"
  in
  let* effort = field_opt_int v "effort" in
  let* () =
    match effort with
    | Some e when e < 1 || e > 9 -> Error "job: effort must be in 1..9"
    | _ -> Ok ()
  in
  Ok (Objective.of_legacy ~mode ~flow ~effort ~timing)

let spec_of_json v =
  let* source = Source.of_json v in
  let* objective =
    match member "objective" v with
    | Some (Obj _ as o) -> Objective.of_json o
    | Some Null | None -> legacy_objective_of_json v
    | Some _ -> Error "job: field \"objective\" is not an object"
  in
  let* priority = field_opt_int v "priority" in
  let* deadline = field_opt_num v "deadline_s" in
  let* domains = field_opt_int v "domains" in
  let* max_steps = field_opt_int v "max_steps" in
  let* resume_from = field_opt_str v "resume_from" in
  let* warm_start = field_opt_str v "warm_start" in
  let* start =
    match (resume_from, warm_start) with
    | Some f, None -> Ok (Resume f)
    | None, Some f -> Ok (Warm f)
    | None, None -> Ok Fresh
    | Some _, Some _ -> Error "job: both \"resume_from\" and \"warm_start\""
  in
  let* checkpoint = field_opt_str v "checkpoint" in
  let* checkpoint_every = field_opt_int v "checkpoint_every" in
  let checkpoint_every = Option.value checkpoint_every ~default:25 in
  let* () =
    if checkpoint_every < 1 then Error "job: checkpoint_every must be >= 1"
    else Ok ()
  in
  let* () =
    match deadline with
    | Some d when d < 0. -> Error "job: deadline_s must be >= 0"
    | _ -> Ok ()
  in
  let* () =
    match domains with
    | Some d when d < 1 -> Error "job: domains must be >= 1"
    | _ -> Ok ()
  in
  let* trace = field_opt_str v "trace" in
  Ok
    {
      source;
      objective;
      priority = Option.value priority ~default:0;
      deadline;
      domains;
      max_steps;
      start;
      checkpoint;
      checkpoint_every;
      trace;
    }

let result_to_json r =
  Obj
    [
      ("status", Str (status_to_string r.status));
      ( "failure",
        match r.status with Failed msg -> Str msg | _ -> Null );
      ("iterations", int_ r.iterations);
      ("converged", Bool r.converged);
      ("hpwl", num r.hpwl);
      ("overlap", num r.overlap);
      ("legal", Bool r.legal);
      ("improve_moves", int_ r.improve_moves);
      ("improve_delta_hpwl", num r.improve_delta);
      ("domino_moves", int_ r.domino_moves);
      ("domino_delta_hpwl", num r.domino_delta);
      ("routed_overflow", opt num r.routed_overflow);
      ("routed_max_overflow", opt num r.routed_max_overflow);
      ("routed_wirelength", opt num r.routed_wirelength);
      ("deadline_expired", Bool r.deadline_expired);
      ("wall_s", num r.wall_s);
      ("checkpoint", opt (fun f -> Str f) r.checkpoint_written);
    ]

let field_num v key =
  match member key v with
  | Some (Num n) -> Ok n
  | _ -> Error (Printf.sprintf "result: field %S is not a number" key)

let field_int v key =
  let* n = field_num v key in
  if Float.is_integer n then Ok (int_of_float n)
  else Error (Printf.sprintf "result: field %S is not an integer" key)

let field_bool v key =
  match member key v with
  | Some (Bool b) -> Ok b
  | _ -> Error (Printf.sprintf "result: field %S is not a bool" key)

let result_of_json v =
  let* status =
    match member "status" v with
    | Some (Str "done") -> Ok Done
    | Some (Str "cancelled") -> Ok Cancelled
    | Some (Str "failed") ->
      let* msg = field_opt_str v "failure" in
      Ok (Failed (Option.value msg ~default:""))
    | Some (Str other) -> Error ("result: non-terminal status " ^ other)
    | _ -> Error "result: missing \"status\""
  in
  let* iterations = field_int v "iterations" in
  let* converged = field_bool v "converged" in
  let* hpwl = field_num v "hpwl" in
  let* overlap = field_num v "overlap" in
  let* legal = field_bool v "legal" in
  let* improve_moves = field_int v "improve_moves" in
  let* improve_delta = field_num v "improve_delta_hpwl" in
  let* domino_moves = field_int v "domino_moves" in
  let* domino_delta = field_num v "domino_delta_hpwl" in
  (* Results written before the routability objective carry no routed
     metrics. *)
  let* routed_overflow = field_opt_num v "routed_overflow" in
  let* routed_max_overflow = field_opt_num v "routed_max_overflow" in
  let* routed_wirelength = field_opt_num v "routed_wirelength" in
  let* deadline_expired = field_bool v "deadline_expired" in
  let* wall_s = field_num v "wall_s" in
  let* checkpoint_written = field_opt_str v "checkpoint" in
  Ok
    {
      status;
      iterations;
      converged;
      hpwl;
      overlap;
      legal;
      improve_moves;
      improve_delta;
      domino_moves;
      domino_delta;
      routed_overflow;
      routed_max_overflow;
      routed_wirelength;
      deadline_expired;
      wall_s;
      checkpoint_written;
    }
