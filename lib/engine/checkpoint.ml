type t = {
  version : int;
  config_digest : string;
  circuit_digest : string;
  iteration : int;
  x : float array;
  y : float array;
  ex : float array;
  ey : float array;
  net_weights : float array;
  criticality : float array option;
  controller : Kraftwerk.Controller.t;
  ml_level : int;
  ml_levels : int;
  route_target : float array option;
}

let version = 4

(* ------------------------------------------------------------------ *)
(* Digests                                                              *)

(* A canonical rendering of every config field that affects the
   trajectory.  [domains] is deliberately excluded: the kernels are
   bitwise-deterministic for any pool size, so a checkpoint taken at
   --domains 4 resumes exactly at --domains 1. *)
let config_fingerprint (c : Kraftwerk.Config.t) =
  let solver =
    match c.Kraftwerk.Config.solver with
    | Density.Forces.Fft -> "fft"
    | Density.Forces.Direct -> "direct"
    | Density.Forces.Sor -> "sor"
  in
  let net_model =
    match c.Kraftwerk.Config.net_model with
    | Qp.System.Clique -> "clique"
    | Qp.System.Bound2bound -> "b2b"
  in
  let grid =
    match c.Kraftwerk.Config.grid with
    | Some (nx, ny) -> Printf.sprintf "%dx%d" nx ny
    | None -> "auto"
  in
  let base =
    Printf.sprintf
      "k=%h;max_iter=%d;linearize=%b;cap=%d;anchor=%h;hold=%h;decay=%h;stop=%h;grid=%s;solver=%s;model=%s;tol=%h;tol_loose=%h;gscale=%h;gap=%h;stall=%d;leg=%d;pen0=%h;penu=%h;penmax=%h"
      c.Kraftwerk.Config.k_param c.Kraftwerk.Config.max_iterations
      c.Kraftwerk.Config.linearize c.Kraftwerk.Config.clique_cap
      c.Kraftwerk.Config.anchor_weight c.Kraftwerk.Config.hold_weight
      c.Kraftwerk.Config.force_decay c.Kraftwerk.Config.stop_multiplier grid
      solver net_model c.Kraftwerk.Config.cg_tol c.Kraftwerk.Config.cg_tol_loose
      c.Kraftwerk.Config.grid_scale c.Kraftwerk.Config.stop_gap
      c.Kraftwerk.Config.stop_stall c.Kraftwerk.Config.legalize_every
      c.Kraftwerk.Config.penalty_initial c.Kraftwerk.Config.penalty_update
      c.Kraftwerk.Config.penalty_max
  in
  (* The multilevel knobs are appended only when they leave the standard
     values, so every pre-multilevel checkpoint's digest stays valid. *)
  let std = Kraftwerk.Config.standard in
  let base =
    if
      c.Kraftwerk.Config.ml_threshold = std.Kraftwerk.Config.ml_threshold
      && c.Kraftwerk.Config.ml_max_levels = std.Kraftwerk.Config.ml_max_levels
      && c.Kraftwerk.Config.ml_refine_iters
         = std.Kraftwerk.Config.ml_refine_iters
      && c.Kraftwerk.Config.ml_grid_scale = std.Kraftwerk.Config.ml_grid_scale
      && c.Kraftwerk.Config.ml_seed = std.Kraftwerk.Config.ml_seed
    then base
    else
      base
      ^ Printf.sprintf ";mlt=%d;mll=%d;mlr=%d;mlg=%h;mls=%d"
          c.Kraftwerk.Config.ml_threshold c.Kraftwerk.Config.ml_max_levels
          c.Kraftwerk.Config.ml_refine_iters c.Kraftwerk.Config.ml_grid_scale
          c.Kraftwerk.Config.ml_seed
  in
  (* Same pattern for the routability-loop knobs: pre-congestion digests
     stay valid, and any knob change invalidates resume. *)
  if
    c.Kraftwerk.Config.congest_every = std.Kraftwerk.Config.congest_every
    && c.Kraftwerk.Config.congest_strength
       = std.Kraftwerk.Config.congest_strength
    && c.Kraftwerk.Config.congest_update = std.Kraftwerk.Config.congest_update
    && c.Kraftwerk.Config.congest_max = std.Kraftwerk.Config.congest_max
    && c.Kraftwerk.Config.congest_decay = std.Kraftwerk.Config.congest_decay
    && c.Kraftwerk.Config.congest_pitch = std.Kraftwerk.Config.congest_pitch
  then base
  else
    base
    ^ Printf.sprintf ";ce=%d;cs=%h;cu=%h;cm=%h;cd=%h;cp=%h"
        c.Kraftwerk.Config.congest_every c.Kraftwerk.Config.congest_strength
        c.Kraftwerk.Config.congest_update c.Kraftwerk.Config.congest_max
        c.Kraftwerk.Config.congest_decay c.Kraftwerk.Config.congest_pitch

let config_digest c = Digest.to_hex (Digest.string (config_fingerprint c))

let circuit_digest (c : Netlist.Circuit.t) =
  (* Cells and nets are plain records of scalars/arrays; Marshal gives a
     canonical byte rendering of the whole netlist cheaply. *)
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( c.Netlist.Circuit.name,
            c.Netlist.Circuit.cells,
            c.Netlist.Circuit.nets,
            c.Netlist.Circuit.region,
            c.Netlist.Circuit.row_height )
          []))

let of_state ?criticality ?(ml_level = 0) ?(ml_levels = 1)
    (s : Kraftwerk.Placer.state) =
  {
    version;
    ml_level;
    ml_levels;
    config_digest = config_digest s.Kraftwerk.Placer.config;
    circuit_digest = circuit_digest s.Kraftwerk.Placer.circuit;
    iteration = s.Kraftwerk.Placer.iteration;
    x = Array.copy s.Kraftwerk.Placer.placement.Netlist.Placement.x;
    y = Array.copy s.Kraftwerk.Placer.placement.Netlist.Placement.y;
    ex = Array.copy s.Kraftwerk.Placer.ex;
    ey = Array.copy s.Kraftwerk.Placer.ey;
    net_weights = Array.copy s.Kraftwerk.Placer.net_weights;
    criticality = Option.map Array.copy criticality;
    controller = Kraftwerk.Controller.copy s.Kraftwerk.Placer.controller;
    route_target =
      Option.map Route.Target.values s.Kraftwerk.Placer.route_target;
  }

(* ------------------------------------------------------------------ *)
(* Serialisation                                                        *)

open Obs.Json

let farray a = Arr (Array.to_list a |> List.map (fun v -> Num v))

(* Non-finite envelope fields (nan before the first UB probe, infinite
   gap_min) have no JSON literal; Null encodes them and the parser maps
   Null back to the matching sentinel. *)
let fin v = if Float.is_finite v then Num v else Null

let congest_to_json (g : Kraftwerk.Controller.congest) =
  Obj
    [
      ("strength", Num g.Kraftwerk.Controller.strength);
      ( "since_refresh",
        Num (float_of_int g.Kraftwerk.Controller.since_refresh) );
      ("refreshes", Num (float_of_int g.Kraftwerk.Controller.refreshes));
      ("est_overflow", fin g.Kraftwerk.Controller.est_overflow);
      ("est_max_overflow", fin g.Kraftwerk.Controller.est_max_overflow);
      ("target_area", Num g.Kraftwerk.Controller.target_area);
      ("clamped_bins", Num (float_of_int g.Kraftwerk.Controller.clamped_bins));
    ]

let controller_to_json (c : Kraftwerk.Controller.t) =
  Obj
    [
      ("penalty", Num c.Kraftwerk.Controller.penalty);
      ( "since_legalize",
        Num (float_of_int c.Kraftwerk.Controller.since_legalize) );
      ("lb", Num c.Kraftwerk.Controller.lb);
      ("ub", fin c.Kraftwerk.Controller.ub);
      ("ub_min", fin c.Kraftwerk.Controller.ub_min);
      ("gap", fin c.Kraftwerk.Controller.gap);
      ("gap_min", fin c.Kraftwerk.Controller.gap_min);
      ("ub_evals", Num (float_of_int c.Kraftwerk.Controller.ub_evals));
      ("stall", Num (float_of_int c.Kraftwerk.Controller.stall));
      ( "stop_reason",
        match c.Kraftwerk.Controller.stop_reason with
        | Some r -> Str (Kraftwerk.Controller.reason_to_string r)
        | None -> Null );
      ("congest", congest_to_json c.Kraftwerk.Controller.congest);
    ]

let to_json t =
  Obj
    [
      ("record", Str "checkpoint");
      ("version", Num (float_of_int t.version));
      ("config", Str t.config_digest);
      ("circuit", Str t.circuit_digest);
      ("iteration", Num (float_of_int t.iteration));
      ("x", farray t.x);
      ("y", farray t.y);
      ("ex", farray t.ex);
      ("ey", farray t.ey);
      ("net_weights", farray t.net_weights);
      ( "criticality",
        match t.criticality with Some a -> farray a | None -> Null );
      ("ml_level", Num (float_of_int t.ml_level));
      ("ml_levels", Num (float_of_int t.ml_levels));
      ("controller", controller_to_json t.controller);
      ( "route_target",
        match t.route_target with Some a -> farray a | None -> Null );
    ]

let ( let* ) = Result.bind

let field v key =
  match member key v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "checkpoint: missing field %S" key)

let field_str v key =
  match member key v with
  | Some (Str s) -> Ok s
  | _ -> Error (Printf.sprintf "checkpoint: field %S is not a string" key)

let field_int v key =
  match member key v with
  | Some (Num n) when Float.is_integer n -> Ok (int_of_float n)
  | _ -> Error (Printf.sprintf "checkpoint: field %S is not an integer" key)

let field_float v key =
  match member key v with
  | Some (Num n) -> Ok n
  | _ -> Error (Printf.sprintf "checkpoint: field %S is not a number" key)

(* Inverse of [fin]: Null restores the field's non-finite sentinel. *)
let field_fin v key ~default =
  match member key v with
  | Some (Num n) -> Ok n
  | Some Null -> Ok default
  | _ -> Error (Printf.sprintf "checkpoint: field %S is not a number" key)

(* Pre-v4 checkpoints predate the routability loop: their configs must
   carry the standard (off) congestion knobs to digest-match, so the
   pre-first-refresh state is the one the uninterrupted run had. *)
let congest_of_json c =
  match member "congest" c with
  | Some g ->
    let* strength = field_float g "strength" in
    let* since_refresh = field_int g "since_refresh" in
    let* refreshes = field_int g "refreshes" in
    let* est_overflow = field_fin g "est_overflow" ~default:Float.nan in
    let* est_max_overflow = field_fin g "est_max_overflow" ~default:Float.nan in
    let* target_area = field_float g "target_area" in
    let* clamped_bins = field_int g "clamped_bins" in
    Ok
      (Kraftwerk.Controller.restore_congest ~strength ~since_refresh ~refreshes
         ~est_overflow ~est_max_overflow ~target_area ~clamped_bins)
  | None -> Ok (Kraftwerk.Controller.fresh_congest Kraftwerk.Config.standard)

let controller_of_json v =
  match member "controller" v with
  | Some c ->
    let* penalty = field_float c "penalty" in
    let* since_legalize = field_int c "since_legalize" in
    let* lb = field_float c "lb" in
    let* ub = field_fin c "ub" ~default:Float.nan in
    let* ub_min = field_fin c "ub_min" ~default:Float.infinity in
    let* gap = field_fin c "gap" ~default:Float.nan in
    let* gap_min = field_fin c "gap_min" ~default:Float.infinity in
    let* ub_evals = field_int c "ub_evals" in
    let* stall = field_int c "stall" in
    let* stop_reason =
      match member "stop_reason" c with
      | Some Null | None -> Ok None
      | Some (Str s) -> (
        match Kraftwerk.Controller.reason_of_string s with
        | Some r -> Ok (Some r)
        | None -> Error (Printf.sprintf "checkpoint: unknown stop reason %S" s))
      | Some _ -> Error "checkpoint: field \"stop_reason\" is not a string"
    in
    let* congest = congest_of_json c in
    Ok
      (Kraftwerk.Controller.restore ~penalty ~since_legalize ~lb ~ub ~ub_min
         ~gap ~gap_min ~ub_evals ~stall ~stop_reason ~congest)
  | None -> Error "checkpoint: missing field \"controller\""

let field_farray v key =
  let* f = field v key in
  match f with
  | Arr items ->
    let a = Array.make (List.length items) 0. in
    let rec fill i = function
      | [] -> Ok a
      | Num n :: rest ->
        a.(i) <- n;
        fill (i + 1) rest
      | _ -> Error (Printf.sprintf "checkpoint: field %S holds a non-number" key)
    in
    fill 0 items
  | _ -> Error (Printf.sprintf "checkpoint: field %S is not an array" key)

let of_json v =
  let* kind = field_str v "record" in
  if kind <> "checkpoint" then Error ("checkpoint: not a checkpoint: " ^ kind)
  else
    let* file_version = field_int v "version" in
    (* Version 2 is version 3 without the level stack; version 3 is
       version 4 without the routability loop.  Both parse with the
       defaults the older engines actually had. *)
    if file_version <> version && file_version <> 2 && file_version <> 3 then
      Error (Printf.sprintf "checkpoint: unsupported version %d" file_version)
    else
      let* config_digest = field_str v "config" in
      let* circuit_digest = field_str v "circuit" in
      let* iteration = field_int v "iteration" in
      let* x = field_farray v "x" in
      let* y = field_farray v "y" in
      let* ex = field_farray v "ex" in
      let* ey = field_farray v "ey" in
      let* net_weights = field_farray v "net_weights" in
      let* criticality =
        match member "criticality" v with
        | Some Null | None -> Ok None
        | Some (Arr _) -> Result.map Option.some (field_farray v "criticality")
        | Some _ -> Error "checkpoint: field \"criticality\" is not an array"
      in
      let* ml_level =
        match member "ml_level" v with
        | Some (Num n) when Float.is_integer n -> Ok (int_of_float n)
        | Some Null | None -> Ok 0
        | Some _ -> Error "checkpoint: field \"ml_level\" is not an integer"
      in
      let* ml_levels =
        match member "ml_levels" v with
        | Some (Num n) when Float.is_integer n -> Ok (int_of_float n)
        | Some Null | None -> Ok 1
        | Some _ -> Error "checkpoint: field \"ml_levels\" is not an integer"
      in
      let* () =
        if ml_levels < 1 || ml_level < 0 || ml_level >= ml_levels then
          Error
            (Printf.sprintf "checkpoint: level %d outside stack of %d" ml_level
               ml_levels)
        else Ok ()
      in
      let* controller = controller_of_json v in
      let* route_target =
        match member "route_target" v with
        | Some Null | None -> Ok None
        | Some (Arr _) -> Result.map Option.some (field_farray v "route_target")
        | Some _ -> Error "checkpoint: field \"route_target\" is not an array"
      in
      if Array.length x <> Array.length y then
        Error "checkpoint: x/y length mismatch"
      else if Array.length ex <> Array.length ey then
        Error "checkpoint: ex/ey length mismatch"
      else
        Ok
          {
            version = file_version;
            config_digest;
            circuit_digest;
            iteration;
            x;
            y;
            ex;
            ey;
            net_weights;
            criticality;
            controller;
            ml_level;
            ml_levels;
            route_target;
          }

let save path t =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (to_string (to_json t));
     output_char oc '\n';
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error ("checkpoint: " ^ msg)
  | contents ->
    let* v =
      Result.map_error (fun e -> "checkpoint: " ^ e) (of_string contents)
    in
    of_json v

(* The target-map grid is a pure function of (config, circuit), so only
   the values are stored; rebuilding validates the length. *)
let route_target_of t config circuit =
  match t.route_target with
  | None -> Ok None
  | Some vs -> (
    let spec = Kraftwerk.Placer.route_spec config circuit in
    match
      Route.Target.restore circuit.Netlist.Circuit.region spec ~values:vs
    with
    | Ok tgt -> Ok (Some tgt)
    | Error msg -> Error ("checkpoint: " ^ msg))

let restore t config circuit =
  if t.ml_level <> 0 || t.ml_levels <> 1 then
    Error
      "checkpoint: multilevel checkpoint (resume it with the multilevel flow)"
  else if t.config_digest <> config_digest config then
    Error "checkpoint: config mismatch (different placer configuration)"
  else if t.circuit_digest <> circuit_digest circuit then
    Error "checkpoint: circuit mismatch (netlist changed since checkpoint)"
  else if Array.length t.x <> Netlist.Circuit.num_cells circuit then
    Error "checkpoint: placement length mismatch"
  else
    let* route_target = route_target_of t config circuit in
    match
      Kraftwerk.Placer.restore config circuit
        ~placement:{ Netlist.Placement.x = t.x; y = t.y }
        ~ex:t.ex ~ey:t.ey ~net_weights:t.net_weights ~controller:t.controller
        ?route_target ~iteration:t.iteration ()
    with
    | state -> Ok state
    | exception Invalid_argument msg -> Error ("checkpoint: " ^ msg)

let placement t ~num_cells =
  if Array.length t.x <> num_cells then
    Error
      (Printf.sprintf "checkpoint: placement has %d cells, circuit has %d"
         (Array.length t.x) num_cells)
  else
    Ok { Netlist.Placement.x = Array.copy t.x; y = Array.copy t.y }

(* Multilevel resume: the hierarchy is a pure function of (circuit,
   config), so it is rebuilt here and only the current level's placer
   state comes from the file.  The x/ex arrays are sized for the
   checkpointed level's coarse circuit, not the flat one. *)
let restore_multilevel t config circuit ~fixed_positions =
  if t.config_digest <> config_digest config then
    Error "checkpoint: config mismatch (different placer configuration)"
  else if t.circuit_digest <> circuit_digest circuit then
    Error "checkpoint: circuit mismatch (netlist changed since checkpoint)"
  else
    match
      Kraftwerk.Cluster.resume config circuit ~fixed_positions
        ~level:t.ml_level ~level_steps:t.iteration
        ~restore_state:(fun level_circuit level_config ->
          if Array.length t.x <> Netlist.Circuit.num_cells level_circuit then
            invalid_arg
              (Printf.sprintf
                 "level %d placement has %d cells, hierarchy level has %d"
                 t.ml_level (Array.length t.x)
                 (Netlist.Circuit.num_cells level_circuit));
          let route_target =
            match route_target_of t level_config level_circuit with
            | Ok tgt -> tgt
            | Error msg -> invalid_arg msg
          in
          Kraftwerk.Placer.restore ~telemetry_level:t.ml_level level_config
            level_circuit
            ~placement:{ Netlist.Placement.x = t.x; y = t.y }
            ~ex:t.ex ~ey:t.ey ~net_weights:t.net_weights
            ~controller:t.controller ?route_target ~iteration:t.iteration ())
    with
    | run ->
      if Kraftwerk.Cluster.total_levels run <> t.ml_levels then
        Error
          (Printf.sprintf
             "checkpoint: hierarchy depth changed (checkpoint has %d levels, \
              rebuild has %d)"
             t.ml_levels
             (Kraftwerk.Cluster.total_levels run))
      else Ok run
    | exception Invalid_argument msg -> Error ("checkpoint: " ^ msg)

let of_run ?criticality run =
  (* The digests cover the base config and the flat circuit — the
     level's derived config and coarse circuit are both rebuilt from
     them on resume. *)
  let t =
    of_state ?criticality
      ~ml_level:(Kraftwerk.Cluster.current_level run)
      ~ml_levels:(Kraftwerk.Cluster.total_levels run)
      (Kraftwerk.Cluster.current_state run)
  in
  {
    t with
    config_digest = config_digest (Kraftwerk.Cluster.base_config run);
    circuit_digest = circuit_digest (Kraftwerk.Cluster.flat_circuit run);
  }
