(** Serializable placement jobs: what to place, under which budget, and
    what came of it.

    A {!spec} is the unit of work the {!Scheduler} queues; it carries no
    live state, so it round-trips through JSON and can be re-submitted
    verbatim (the resume path of the serve protocol).  A {!result} is
    the terminal report: quality metrics plus the improvement deltas of
    the final-placement passes.

    What to optimise for lives in the job's {!Objective.t} — the typed
    replacement for the old loose [mode]/[flow]/[effort]/[timing]
    quadruple.  The legacy fields still parse ({!spec_of_json}) and the
    {!spec} constructor still accepts them, mapping onto an objective
    via {!Objective.of_legacy}. *)

(** Re-export of {!Objective.mode} — base placer configuration family
    ({!Kraftwerk.Config.standard} / {!Kraftwerk.Config.fast}). *)
type mode = Objective.mode = Standard | Fast

(** Re-export of {!Objective.flow}: [Flat] is the classic single-level
    controller loop; [Multilevel] runs the recursive {!Kraftwerk.Cluster}
    V-cycle (cluster to a coarse netlist, place it, then uncluster and
    refine level by level).  Both are deterministic and
    checkpoint/resume-safe. *)
type flow = Objective.flow = Flat | Multilevel

(** Where the placer's state comes from.

    - [Fresh] — the source's initial placement, ~e = 0 (a normal run).
    - [Resume file] — a {!Checkpoint} of a mid-run state of {e this}
      job: placement, accumulated forces, net weights and iteration
      counter restored bitwise, so the trajectory continues exactly
      where it stopped.
    - [Warm file] — only the {e placement} of a checkpoint, with fresh
      forces: the ECO shape (§5), re-placing an edited circuit on top of
      a converged base placement ({!Kraftwerk.Eco.replace}). *)
type start = Fresh | Resume of string | Warm of string

type spec = {
  source : Source.t;
  objective : Objective.t;
      (** what the job optimises for: goal (wirelength / routability /
          timing), mode-or-effort preset, flow, per-objective knobs *)
  priority : int;  (** higher runs first; FIFO within a priority *)
  deadline : float option;
      (** wall-clock budget in seconds from job start; on expiry the job
          returns its best-so-far placement, greedily legalised, with
          status [Cancelled] — never an error *)
  domains : int option;
      (** domain-pool lanes while this job's transformations run;
          [None] accepts the scheduler's partition of the pool *)
  max_steps : int option;
      (** cap on the {e total} placer iteration counter (so a resumed
          job counts steps done before its checkpoint); [None] defers
          to the mode's [max_iterations] *)
  start : start;
  checkpoint : string option;  (** checkpoint file to maintain *)
  checkpoint_every : int;
      (** transformations between checkpoint writes (when [checkpoint]
          is set); also written on cancellation *)
  trace : string option;  (** per-job telemetry JSONL file *)
}

(** [spec ~source ()] is a standard-mode, area-driven, priority-0 job
    with no deadline, no checkpointing and no trace.  [?objective] wins
    when given; otherwise the legacy [?mode]/[?flow]/[?effort]/[?timing]
    arguments build one via {!Objective.of_legacy}. *)
val spec :
  source:Source.t ->
  ?mode:mode ->
  ?flow:flow ->
  ?effort:int ->
  ?timing:bool ->
  ?objective:Objective.t ->
  ?priority:int ->
  ?deadline:float ->
  ?domains:int ->
  ?max_steps:int ->
  ?start:start ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?trace:string ->
  unit ->
  spec

(** Accessors over the spec's objective (the old record fields). *)

val mode : spec -> mode
val flow : spec -> flow
val effort : spec -> int option

(** [timing spec] — the job adapts net weights to slack each
    transformation ([spec.objective.goal = Timing]). *)
val timing : spec -> bool

(** Job lifecycle.  [Checkpointed] is a running job with a valid
    checkpoint on disk (it keeps executing); the terminal states are
    [Done], [Cancelled] and [Failed]. *)
type status =
  | Queued
  | Running
  | Checkpointed
  | Done
  | Cancelled
  | Failed of string

(** [terminal status] — no further transitions. *)
val terminal : status -> bool

val status_to_string : status -> string

type result = {
  status : status;
  iterations : int;  (** final placer iteration counter *)
  converged : bool;  (** stopped by §4.2, not a budget *)
  hpwl : float;  (** after legalisation *)
  overlap : float;
  legal : bool;
  improve_moves : int;  (** accepted moves of {!Legalize.Improve.run} *)
  improve_delta : float;  (** its HPWL improvement *)
  domino_moves : int;  (** cells moved / windows improved by Domino *)
  domino_delta : float;
  routed_overflow : float option;
      (** {!Route.Grouter} total overflow of the final placement;
          populated for routability-goal jobs, [None] otherwise *)
  routed_max_overflow : float option;
  routed_wirelength : float option;
  deadline_expired : bool;
  wall_s : float;
  checkpoint_written : string option;
}

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) Stdlib.result
val flow_to_string : flow -> string
val flow_of_string : string -> (flow, string) Stdlib.result

val config_of_mode : mode -> Kraftwerk.Config.t

(** [config_of_spec spec] is the placer configuration the spec's
    objective selects ({!Objective.config}). *)
val config_of_spec : spec -> Kraftwerk.Config.t

(** [spec_to_json spec] emits both the ["objective"] object and the
    derived legacy ["mode"]/["flow"]/["effort"]/["timing"] fields, so
    protocol-v2 readers keep working. *)
val spec_to_json : spec -> Obs.Json.t

(** [spec_of_json v] prefers an ["objective"] object when present;
    otherwise the legacy fields are mapped through
    {!Objective.of_legacy} — old submits parse to the same spec,
    bitwise. *)
val spec_of_json : Obs.Json.t -> (spec, string) Stdlib.result

val result_to_json : result -> Obs.Json.t

val result_of_json : Obs.Json.t -> (result, string) Stdlib.result
