type version = V1 | V2 | V3

type code =
  | Parse
  | Unknown_cmd
  | Bad_spec
  | Unknown_id
  | Not_terminal
  | Overloaded
  | Shutting_down

let code_to_string = function
  | Parse -> "parse"
  | Unknown_cmd -> "unknown_cmd"
  | Bad_spec -> "bad_spec"
  | Unknown_id -> "unknown_id"
  | Not_terminal -> "not_terminal"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"

let code_of_string = function
  | "parse" -> Some Parse
  | "unknown_cmd" -> Some Unknown_cmd
  | "bad_spec" -> Some Bad_spec
  | "unknown_id" -> Some Unknown_id
  | "not_terminal" -> Some Not_terminal
  | "overloaded" -> Some Overloaded
  | "shutting_down" -> Some Shutting_down
  | _ -> None

type error = { code : code; message : string; retry_after_ms : int option }

let err ?retry_after_ms code message = { code; message; retry_after_ms }

let error_message e = Printf.sprintf "%s: %s" (code_to_string e.code) e.message

type request =
  | Submit of Job.spec
  | Status of Scheduler.id
  | Result of Scheduler.id
  | Cancel of Scheduler.id
  | Jobs
  | Step of int
  | Drain
  | Wait of Scheduler.id
  | Metrics
  | Subscribe of { from_ev : int option }
  | Shutdown

open Obs.Json

let int_ v = Num (float_of_int v)

let ( let* ) = Stdlib.Result.bind

let seq_of_json v = member "seq" v

let field_id v =
  match member "id" v with
  | Some (Num n) when Float.is_integer n && n >= 1. -> Ok (int_of_float n)
  | Some _ -> Error (err Bad_spec "field \"id\" is not a positive integer")
  | None -> Error (err Bad_spec "missing field \"id\"")

let request_of_json v =
  match member "cmd" v with
  | Some (Str "submit") -> (
    match member "job" v with
    | Some job ->
      let* spec =
        Result.map_error (fun m -> err Bad_spec m) (Job.spec_of_json job)
      in
      Ok (Submit spec)
    | None -> Error (err Bad_spec "submit needs a \"job\" field"))
  | Some (Str "status") ->
    let* id = field_id v in
    Ok (Status id)
  | Some (Str "result") ->
    let* id = field_id v in
    Ok (Result id)
  | Some (Str "cancel") ->
    let* id = field_id v in
    Ok (Cancel id)
  | Some (Str "jobs") -> Ok Jobs
  | Some (Str "step") -> (
    match member "turns" v with
    | Some (Num n) when Float.is_integer n && n >= 1. ->
      Ok (Step (int_of_float n))
    | None -> Ok (Step 1)
    | Some _ ->
      Error (err Bad_spec "field \"turns\" is not a positive integer"))
  | Some (Str "drain") -> Ok Drain
  | Some (Str "wait") ->
    let* id = field_id v in
    Ok (Wait id)
  | Some (Str "metrics") -> Ok Metrics
  | Some (Str "subscribe") -> (
    match member "from_ev" v with
    | Some (Num n) when Float.is_integer n && n >= 0. ->
      Ok (Subscribe { from_ev = Some (int_of_float n) })
    | None -> Ok (Subscribe { from_ev = None })
    | Some _ ->
      Error (err Bad_spec "field \"from_ev\" is not a non-negative integer"))
  | Some (Str "shutdown") -> Ok Shutdown
  | Some (Str other) ->
    Error (err Unknown_cmd (Printf.sprintf "unknown command %S" other))
  | Some _ -> Error (err Parse "field \"cmd\" is not a string")
  | None -> Error (err Parse "missing field \"cmd\"")

type reply = Reply of (string * Obs.Json.t) list | Refuse of error

let render proto ~seq reply =
  let seq_field =
    match (proto, seq) with
    | (V2 | V3), Some s -> [ ("seq", s) ]
    | V1, _ | _, None -> []
  in
  match reply with
  | Reply fields -> Obj ((("ok", Bool true) :: seq_field) @ fields)
  | Refuse e -> (
    match proto with
    | V1 -> Obj [ ("ok", Bool false); ("error", Str e.message) ]
    | V2 | V3 ->
      let retry =
        match e.retry_after_ms with
        | Some ms -> [ ("retry_after_ms", int_ ms) ]
        | None -> []
      in
      Obj
        (("ok", Bool false) :: seq_field
        @ [
            ( "error",
              Obj
                (("code", Str (code_to_string e.code))
                 :: ("message", Str e.message)
                 :: retry) );
          ]))

let event_to_json ?ev e =
  let ev_field = match ev with Some n -> [ ("ev", int_ n) ] | None -> [] in
  let fields =
    match e with
    | Scheduler.Submitted id -> [ ("event", Str "submitted"); ("id", int_ id) ]
    | Scheduler.Started id -> [ ("event", Str "started"); ("id", int_ id) ]
    | Scheduler.Checkpointed (id, file) ->
      [ ("event", Str "checkpointed"); ("id", int_ id); ("file", Str file) ]
    | Scheduler.Finished (id, status) ->
      [
        ("event", Str "finished");
        ("id", int_ id);
        ("status", Str (Job.status_to_string status));
      ]
  in
  Obj (fields @ ev_field)

(* Scheduler shape and per-shard counters: with worker domains these are
   the queue-depth / steal / busy-fraction numbers that tell an operator
   whether the shards are actually load-balancing. *)
let scheduler_json sched =
  let shard_rows =
    List.map
      (fun (m : Scheduler.shard_metric) ->
        Obj
          [
            ("shard", int_ m.Scheduler.shard);
            ("queue_depth", int_ m.Scheduler.queue_depth);
            ("steals", int_ m.Scheduler.m_steals);
            ("slices", int_ m.Scheduler.m_slices);
            ("busy_s", Num m.Scheduler.m_busy_s);
            ("busy_frac", Num m.Scheduler.m_busy_frac);
            ("max_slice_s", Num m.Scheduler.m_max_slice_s);
          ])
      (Scheduler.shard_metrics sched)
  in
  Obj
    [
      ("shards", int_ (Scheduler.shards sched));
      ("queued", int_ (Scheduler.queued sched));
      ("running", int_ (Scheduler.running sched));
      ("per_shard", Arr shard_rows);
    ]

let metrics_fields sched =
  [
    ("enabled", Bool (Obs.Registry.enabled ()));
    ("scheduler", scheduler_json sched);
    ( "metrics",
      Obj
        (List.map
           (fun (name, stat) -> (name, Obs.Telemetry.stat_to_json stat))
           (Obs.Registry.snapshot ())) );
  ]

let with_job sched id f =
  match Scheduler.status sched id with
  | None -> Refuse (err Unknown_id (Printf.sprintf "unknown job id %d" id))
  | Some status -> f status

let handle ?(proto = V2) sched req =
  match req with
  | Submit spec -> (
    match Scheduler.validate_spec spec with
    | Error msg -> (Refuse (err Bad_spec msg), false)
    | Ok () ->
      let id = Scheduler.submit sched spec in
      (* v3 echoes the resolved objective, so clients submitting legacy
         mode/effort fields can see what they mapped onto. *)
      let objective =
        match proto with
        | V3 -> [ ("objective", Objective.to_json spec.Job.objective) ]
        | V1 | V2 -> []
      in
      (Reply ([ ("id", int_ id); ("status", Str "queued") ] @ objective), false))
  | Status id ->
    ( with_job sched id (fun status ->
          Reply [ ("id", int_ id); ("status", Str (Job.status_to_string status)) ]),
      false )
  | Result id ->
    ( with_job sched id (fun status ->
          if not (Job.terminal status) then
            Refuse
              (err Not_terminal
                 (Printf.sprintf "job %d is still %s" id
                    (Job.status_to_string status)))
          else
            match Scheduler.result sched id with
            | Some r -> Reply [ ("id", int_ id); ("result", Job.result_to_json r) ]
            | None ->
              Refuse
                (err Not_terminal (Printf.sprintf "job %d has no result" id))),
      false )
  | Cancel id ->
    ( with_job sched id (fun _ ->
          let cancelled = Scheduler.cancel sched id in
          Reply [ ("id", int_ id); ("cancelled", Bool cancelled) ]),
      false )
  | Jobs ->
    let rows =
      List.map
        (fun (id, status) ->
          Obj
            [ ("id", int_ id); ("status", Str (Job.status_to_string status)) ])
        (Scheduler.jobs sched)
    in
    (Reply [ ("jobs", Arr rows) ], false)
  | Step turns ->
    let stepped = ref 0 in
    while !stepped < turns && Scheduler.step sched do
      incr stepped
    done;
    (Reply [ ("stepped", int_ !stepped) ], false)
  | Drain ->
    let stepped = ref 0 in
    while Scheduler.step sched do
      incr stepped
    done;
    (Reply [ ("stepped", int_ !stepped) ], false)
  | Wait id ->
    ( with_job sched id (fun _ ->
          let continue = ref true in
          while
            !continue
            && not
                 (match Scheduler.status sched id with
                 | Some s -> Job.terminal s
                 | None -> true)
          do
            continue := Scheduler.step sched
          done;
          match Scheduler.status sched id with
          | Some s ->
            Reply [ ("id", int_ id); ("status", Str (Job.status_to_string s)) ]
          | None ->
            Refuse (err Unknown_id (Printf.sprintf "unknown job id %d" id))),
      false )
  | Metrics -> (Reply (metrics_fields sched), false)
  | Subscribe _ ->
    (* The stdio loop broadcasts every event line already; acknowledging
       keeps one client code path for both transports. *)
    (Reply [ ("subscribed", Bool true) ], false)
  | Shutdown -> (Reply [ ("shutdown", Bool true) ], true)

let serve ?(proto = V2) ?(echo = fun _ -> ()) sched ic oc =
  let emit line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    echo line
  in
  let shutdown = ref false in
  (try
     while not !shutdown do
       let line = input_line ic in
       let line = String.trim line in
       if line <> "" then begin
         echo line;
         let seq, (reply, stop) =
           match of_string line with
           | Error msg ->
             (None, (Refuse (err Parse ("bad JSON: " ^ msg)), false))
           | Ok v -> (
             ( seq_of_json v,
               match request_of_json v with
               | Error e -> (Refuse e, false)
               | Ok req -> handle ~proto sched req ))
         in
         emit (to_string (render proto ~seq reply));
         shutdown := stop
       end
     done
   with End_of_file -> ());
  (* Whatever was submitted still completes: a piped session that ends
     right after its submits is a valid batch. *)
  Scheduler.drain sched;
  Scheduler.stop sched
