type request =
  | Submit of Job.spec
  | Status of Scheduler.id
  | Result of Scheduler.id
  | Cancel of Scheduler.id
  | Jobs
  | Step of int
  | Drain
  | Wait of Scheduler.id
  | Shutdown

open Obs.Json

let int_ v = Num (float_of_int v)

let ( let* ) = Stdlib.Result.bind

let field_id v =
  match member "id" v with
  | Some (Num n) when Float.is_integer n && n >= 1. -> Ok (int_of_float n)
  | Some _ -> Error "protocol: field \"id\" is not a positive integer"
  | None -> Error "protocol: missing field \"id\""

let request_of_json v =
  match member "cmd" v with
  | Some (Str "submit") -> (
    match member "job" v with
    | Some job ->
      let* spec = Job.spec_of_json job in
      Ok (Submit spec)
    | None -> Error "protocol: submit needs a \"job\" field")
  | Some (Str "status") ->
    let* id = field_id v in
    Ok (Status id)
  | Some (Str "result") ->
    let* id = field_id v in
    Ok (Result id)
  | Some (Str "cancel") ->
    let* id = field_id v in
    Ok (Cancel id)
  | Some (Str "jobs") -> Ok Jobs
  | Some (Str "step") -> (
    match member "turns" v with
    | Some (Num n) when Float.is_integer n && n >= 1. ->
      Ok (Step (int_of_float n))
    | None -> Ok (Step 1)
    | Some _ -> Error "protocol: field \"turns\" is not a positive integer")
  | Some (Str "drain") -> Ok Drain
  | Some (Str "wait") ->
    let* id = field_id v in
    Ok (Wait id)
  | Some (Str "shutdown") -> Ok Shutdown
  | Some (Str other) -> Error (Printf.sprintf "protocol: unknown command %S" other)
  | Some _ -> Error "protocol: field \"cmd\" is not a string"
  | None -> Error "protocol: missing field \"cmd\""

let event_to_json = function
  | Scheduler.Submitted id -> Obj [ ("event", Str "submitted"); ("id", int_ id) ]
  | Scheduler.Started id -> Obj [ ("event", Str "started"); ("id", int_ id) ]
  | Scheduler.Checkpointed (id, file) ->
    Obj [ ("event", Str "checkpointed"); ("id", int_ id); ("file", Str file) ]
  | Scheduler.Finished (id, status) ->
    Obj
      [
        ("event", Str "finished");
        ("id", int_ id);
        ("status", Str (Job.status_to_string status));
      ]

let error msg = Obj [ ("ok", Bool false); ("error", Str msg) ]

let ok fields = Obj (("ok", Bool true) :: fields)

let with_job sched id f =
  match Scheduler.status sched id with
  | None -> error (Printf.sprintf "protocol: unknown job id %d" id)
  | Some status -> f status

let handle sched req =
  match req with
  | Submit spec ->
    let id = Scheduler.submit sched spec in
    (ok [ ("id", int_ id); ("status", Str "queued") ], false)
  | Status id ->
    ( with_job sched id (fun status ->
          ok [ ("id", int_ id); ("status", Str (Job.status_to_string status)) ]),
      false )
  | Result id ->
    ( with_job sched id (fun status ->
          if not (Job.terminal status) then
            error
              (Printf.sprintf "protocol: job %d is still %s" id
                 (Job.status_to_string status))
          else
            match Scheduler.result sched id with
            | Some r -> ok [ ("id", int_ id); ("result", Job.result_to_json r) ]
            | None -> error (Printf.sprintf "protocol: job %d has no result" id)),
      false )
  | Cancel id ->
    ( with_job sched id (fun _ ->
          let cancelled = Scheduler.cancel sched id in
          ok [ ("id", int_ id); ("cancelled", Bool cancelled) ]),
      false )
  | Jobs ->
    let rows =
      List.map
        (fun (id, status) ->
          Obj
            [ ("id", int_ id); ("status", Str (Job.status_to_string status)) ])
        (Scheduler.jobs sched)
    in
    (ok [ ("jobs", Arr rows) ], false)
  | Step turns ->
    let stepped = ref 0 in
    while !stepped < turns && Scheduler.step sched do
      incr stepped
    done;
    (ok [ ("stepped", int_ !stepped) ], false)
  | Drain ->
    let stepped = ref 0 in
    while Scheduler.step sched do
      incr stepped
    done;
    (ok [ ("stepped", int_ !stepped) ], false)
  | Wait id ->
    ( with_job sched id (fun _ ->
          let continue = ref true in
          while
            !continue
            && not
                 (match Scheduler.status sched id with
                 | Some s -> Job.terminal s
                 | None -> true)
          do
            continue := Scheduler.step sched
          done;
          match Scheduler.status sched id with
          | Some s ->
            ok [ ("id", int_ id); ("status", Str (Job.status_to_string s)) ]
          | None -> error (Printf.sprintf "protocol: unknown job id %d" id)),
      false )
  | Shutdown -> (ok [ ("shutdown", Bool true) ], true)

let serve ?(echo = fun _ -> ()) sched ic oc =
  let emit line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    echo line
  in
  let shutdown = ref false in
  (try
     while not !shutdown do
       let line = input_line ic in
       let line = String.trim line in
       if line <> "" then begin
         echo line;
         let response, stop =
           match of_string line with
           | Error msg -> (error ("protocol: bad JSON: " ^ msg), false)
           | Ok v -> (
             match request_of_json v with
             | Error msg -> (error msg, false)
             | Ok req -> handle sched req)
         in
         emit (to_string response);
         shutdown := stop
       end
     done
   with End_of_file -> ());
  (* Whatever was submitted still completes: a piped session that ends
     right after its submits is a valid batch. *)
  Scheduler.drain sched
