(** Versioned, atomic snapshots of a mid-run {!Kraftwerk.Placer.state}.

    A checkpoint captures exactly the state that makes a placement
    transformation sequence restartable: the placement, the accumulated
    additional-force vectors ~e (§2.2 — what holds previous spreading in
    place), the net weights, the iteration counter, and — for
    timing-driven runs — the per-net criticalities.  Restoring all of
    them bitwise makes the resumed trajectory bitwise-identical to the
    uninterrupted run; digests of the config and circuit guard against
    resuming under different semantics.

    Files are one JSON document; floats are written with round-trip
    ([%.17g]) precision so they reload bit-for-bit.  {!save} writes to a
    temporary file in the target directory and renames it into place, so
    a crash mid-write never leaves a truncated checkpoint behind. *)

type t = {
  version : int;
  config_digest : string;
  circuit_digest : string;
  iteration : int;
  x : float array;  (** placement, indexed by cell id *)
  y : float array;
  ex : float array;  (** accumulated forces, indexed by QP variable *)
  ey : float array;
  net_weights : float array;
  criticality : float array option;  (** timing-driven runs only *)
  controller : Kraftwerk.Controller.t;
      (** convergence-controller state (penalty, LB/UB envelope).  The
          penalty is saved verbatim — recomputing it from the iteration
          count would differ in the last ulp and break bitwise resume
          (version ≥ 2). *)
  ml_level : int;
      (** multilevel V-cycle stage this state belongs to; 0 = flat
          (version ≥ 3; version-2 files parse as level 0) *)
  ml_levels : int;
      (** total stages of the V-cycle the state was taken from; 1 for
          flat runs *)
  route_target : float array option;
      (** row-major values of the routability loop's congestion-target
          map ({!Route.Target}); [None] when the loop is off.  The grid
          itself is a pure function of (config, circuit) and is rebuilt
          on resume (version ≥ 4; older files parse as [None] — their
          digest-matched configs ran no loop). *)
}

val version : int

(** [config_digest config] is a stable hex digest over every
    {!Kraftwerk.Config.t} field — two configs with equal digests produce
    the same trajectory from the same state (the [domains] field is
    excluded: results are bitwise domain-count-independent). *)
val config_digest : Kraftwerk.Config.t -> string

val circuit_digest : Netlist.Circuit.t -> string

(** [of_state ?criticality state] snapshots a placer state (copies all
    arrays).  [ml_level]/[ml_levels] (default 0/1) tag the V-cycle stage
    the state belongs to. *)
val of_state :
  ?criticality:float array ->
  ?ml_level:int ->
  ?ml_levels:int ->
  Kraftwerk.Placer.state ->
  t

(** [of_run ?criticality run] snapshots the current stage of a
    multilevel V-cycle.  The digests cover the {e base} config and the
    {e flat} circuit — the coarse circuit and per-level config are
    rebuilt deterministically on resume. *)
val of_run : ?criticality:float array -> Kraftwerk.Cluster.run -> t

(** [save path t] writes atomically (temp file + rename). *)
val save : string -> t -> unit

val load : string -> (t, string) result

(** [restore t config circuit] rebuilds the placer state, checking the
    digests first.  Rejects multilevel checkpoints ([ml_level > 0] or
    [ml_levels > 1]) — those carry a coarse-circuit state and must go
    through {!restore_multilevel}. *)
val restore :
  t ->
  Kraftwerk.Config.t ->
  Netlist.Circuit.t ->
  (Kraftwerk.Placer.state, string) result

(** [restore_multilevel t config circuit ~fixed_positions] rebuilds an
    in-flight V-cycle: the hierarchy is reconstructed from (circuit,
    config) — it is deterministic — and the checkpointed arrays restore
    the current level's placer state, making the resumed trajectory
    bitwise-identical to the uninterrupted one.  Also accepts flat
    (level-0-of-1) checkpoints taken by a multilevel run whose
    coarsening made no progress. *)
val restore_multilevel :
  t ->
  Kraftwerk.Config.t ->
  Netlist.Circuit.t ->
  fixed_positions:(int * (float * float)) list ->
  (Kraftwerk.Cluster.run, string) result

(** [placement t ~num_cells] extracts just the placement (the ECO
    warm-start path — the circuit may differ from the checkpointed one,
    only the cell count must still match). *)
val placement : t -> num_cells:int -> (Netlist.Placement.t, string) result
