type t =
  | Profile of { name : string; scale : float; seed : int }
  | File of string

let ( let* ) = Stdlib.Result.bind

let validate = function
  | Profile { name; scale; _ } ->
    if scale <= 0. || scale > 1. then
      Error (Printf.sprintf "source: scale %g out of (0, 1]" scale)
    else (
      match Circuitgen.Profiles.find name with
      | _ -> Ok ()
      | exception Not_found ->
        Error (Printf.sprintf "source: unknown profile %S" name))
  | File file ->
    if Sys.file_exists file then Ok ()
    else Error (Printf.sprintf "source: no such file %s" file)

let load = function
  | Profile { name; scale; seed } as src ->
    let* () = validate src in
    let prof = Circuitgen.Profiles.find name in
    let params = Circuitgen.Profiles.params ~scale prof ~seed in
    let c, fixed = Circuitgen.Gen.generate params in
    Ok (c, Circuitgen.Gen.initial_placement c fixed)
  | File file when Filename.check_suffix file ".aux" ->
    Result.map_error Netlist.Bookshelf.error_message
      (Netlist.Bookshelf.load_aux file)
  | File file ->
    let* c =
      Result.map_error Netlist.Io.error_message (Netlist.Io.load_circuit file)
    in
    (* The generated format keeps pad-ring coordinates in a sidecar
       file; without one the centered initial placement re-derives
       nothing, so fixed cells sit at (0,0) — same as the CLI. *)
    let side = file ^ ".pos" in
    let* p =
      if Sys.file_exists side then
        Result.map_error Netlist.Io.error_message
          (Netlist.Io.load_placement side
             ~num_cells:(Netlist.Circuit.num_cells c))
      else Ok (Netlist.Placement.create c)
    in
    Ok (c, p)

let describe = function
  | Profile { name; scale; seed } -> Printf.sprintf "%s@%g#%d" name scale seed
  | File file -> Filename.basename file

let to_json = function
  | Profile { name; scale; seed } ->
    Obs.Json.Obj
      [
        ("profile", Obs.Json.Str name);
        ("scale", Obs.Json.Num scale);
        ("seed", Obs.Json.Num (float_of_int seed));
      ]
  | File file -> Obs.Json.Obj [ ("circuit", Obs.Json.Str file) ]

let of_json v =
  match (Obs.Json.member "profile" v, Obs.Json.member "circuit" v) with
  | Some (Obs.Json.Str name), None ->
    let scale =
      match Obs.Json.member "scale" v with
      | Some (Obs.Json.Num s) -> s
      | _ -> 1.0
    in
    let seed =
      match Obs.Json.member "seed" v with
      | Some (Obs.Json.Num s) when Float.is_integer s -> int_of_float s
      | _ -> 42
    in
    if scale <= 0. || scale > 1. then Error "source: scale must be in (0, 1]"
    else Ok (Profile { name; scale; seed })
  | None, Some (Obs.Json.Str file) -> Ok (File file)
  | Some _, Some _ -> Error "source: both \"profile\" and \"circuit\" given"
  | _ -> Error "source: need a \"profile\" or \"circuit\" field"
