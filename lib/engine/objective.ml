type goal = Wirelength | Routability | Timing

type mode = Standard | Fast

type flow = Flat | Multilevel

type t = {
  goal : goal;
  mode : mode;
  effort : int option;
  flow : flow;
  congest_every : int option;
  congest_strength : float option;
}

let default =
  {
    goal = Wirelength;
    mode = Standard;
    effort = None;
    flow = Flat;
    congest_every = None;
    congest_strength = None;
  }

let make ?(goal = Wirelength) ?(mode = Standard) ?effort ?(flow = Flat)
    ?congest_every ?congest_strength () =
  { goal; mode; effort; flow; congest_every; congest_strength }

(* The legacy mode/flow/effort/timing quadruple maps losslessly onto an
   objective: [timing] was a boolean overlay on either mode, so it
   becomes the goal; everything else carries over. *)
let of_legacy ~mode ~flow ~effort ~timing =
  {
    goal = (if timing then Timing else Wirelength);
    mode;
    effort;
    flow;
    congest_every = None;
    congest_strength = None;
  }

let goal_to_string = function
  | Wirelength -> "wirelength"
  | Routability -> "routability"
  | Timing -> "timing"

let goal_of_string = function
  | "wirelength" -> Ok Wirelength
  | "routability" -> Ok Routability
  | "timing" -> Ok Timing
  | other -> Error (Printf.sprintf "objective: unknown goal %S" other)

let mode_to_string = function Standard -> "standard" | Fast -> "fast"

let mode_of_string = function
  | "standard" -> Ok Standard
  | "fast" -> Ok Fast
  | other -> Error (Printf.sprintf "objective: unknown mode %S" other)

let flow_to_string = function Flat -> "flat" | Multilevel -> "multilevel"

let flow_of_string = function
  | "flat" -> Ok Flat
  | "multilevel" -> Ok Multilevel
  | other -> Error (Printf.sprintf "objective: unknown flow %S" other)

let timing_driven t = t.goal = Timing

let routed_validation t = t.goal = Routability

let validate t =
  let ( let* ) = Result.bind in
  let* () =
    match t.effort with
    | Some e when e < 1 || e > 9 -> Error "objective: effort must be in 1..9"
    | _ -> Ok ()
  in
  let* () =
    match t.congest_every with
    | Some n when n < 1 -> Error "objective: congest_every must be >= 1"
    | Some _ when t.goal <> Routability ->
      Error "objective: congest_every requires the routability goal"
    | _ -> Ok ()
  in
  match t.congest_strength with
  | Some s when (not (Float.is_finite s)) || s <= 0. ->
    Error "objective: congest_strength must be positive"
  | Some _ when t.goal <> Routability ->
    Error "objective: congest_strength requires the routability goal"
  | _ -> Ok ()

(* An explicit effort preset wins over the mode; the mode stays the
   fallback so pre-effort clients keep their exact semantics.  The
   routability goal overlays the congestion loop on either base. *)
let config t =
  let base =
    match t.effort with
    | Some e -> Kraftwerk.Config.effort e
    | None -> (
      match t.mode with
      | Standard -> Kraftwerk.Config.standard
      | Fast -> Kraftwerk.Config.fast)
  in
  match t.goal with
  | Wirelength | Timing -> base
  | Routability ->
    let r = Kraftwerk.Config.routability base in
    let r =
      match t.congest_every with
      | Some n -> { r with Kraftwerk.Config.congest_every = n }
      | None -> r
    in
    (match t.congest_strength with
    | Some s -> { r with Kraftwerk.Config.congest_strength = s }
    | None -> r)

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)

open Obs.Json

let to_json t =
  Obj
    [
      ("goal", Str (goal_to_string t.goal));
      ("mode", Str (mode_to_string t.mode));
      ( "effort",
        match t.effort with Some e -> Num (float_of_int e) | None -> Null );
      ("flow", Str (flow_to_string t.flow));
      ( "congest_every",
        match t.congest_every with
        | Some n -> Num (float_of_int n)
        | None -> Null );
      ( "congest_strength",
        match t.congest_strength with Some s -> Num s | None -> Null );
    ]

let ( let* ) = Result.bind

let field_opt_int v key =
  match member key v with
  | Some (Num n) when Float.is_integer n -> Ok (Some (int_of_float n))
  | Some Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "objective: field %S is not an integer" key)

let of_json v =
  let* goal =
    match member "goal" v with
    | Some (Str g) -> goal_of_string g
    | Some Null | None -> Ok Wirelength
    | Some _ -> Error "objective: field \"goal\" is not a string"
  in
  let* mode =
    match member "mode" v with
    | Some (Str m) -> mode_of_string m
    | Some Null | None -> Ok Standard
    | Some _ -> Error "objective: field \"mode\" is not a string"
  in
  let* flow =
    match member "flow" v with
    | Some (Str f) -> flow_of_string f
    | Some Null | None -> Ok Flat
    | Some _ -> Error "objective: field \"flow\" is not a string"
  in
  let* effort = field_opt_int v "effort" in
  let* congest_every = field_opt_int v "congest_every" in
  let* congest_strength =
    match member "congest_strength" v with
    | Some (Num s) -> Ok (Some s)
    | Some Null | None -> Ok None
    | Some _ -> Error "objective: field \"congest_strength\" is not a number"
  in
  let t = { goal; mode; effort; flow; congest_every; congest_strength } in
  let* () = validate t in
  Ok t
