(** The typed job objective: {e what} a placement job optimises for,
    under which effort and flow.

    Historically a job carried an ad-hoc mode/flow/effort/timing
    quadruple, sprawled across {!Kraftwerk.Config}, {!Job} and the CLI
    flags, and there was no way to express "optimise for routability".
    An objective bundles the whole request into one typed record:

    - [goal] — [Wirelength] (the classic area-driven run), [Routability]
      (the same run with the closed congestion loop on:
      {!Kraftwerk.Config.routability}), or [Timing] (timing-driven net
      reweighting each transformation, the old [timing] flag);
    - [mode]/[effort] — the quality-vs-latency base preset, exactly as
      before (an explicit effort wins over the mode);
    - [flow] — flat controller loop or the multilevel V-cycle;
    - per-objective knobs — routability's cadence and feedback gain,
      overriding the preset defaults when set.

    Protocol v3 submits carry an ["objective"] object; v2's
    ["mode"]/["flow"]/["effort"]/["timing"] fields still parse and map
    onto an objective via {!of_legacy}, bitwise. *)

type goal = Wirelength | Routability | Timing

(** Base placer configuration family ({!Kraftwerk.Config.standard} /
    {!Kraftwerk.Config.fast}). *)
type mode = Standard | Fast

(** [Flat] is the classic single-level controller loop; [Multilevel]
    runs the recursive {!Kraftwerk.Cluster} V-cycle. *)
type flow = Flat | Multilevel

type t = {
  goal : goal;
  mode : mode;
  effort : int option;
      (** quality-vs-latency preset 1..9 ({!Kraftwerk.Config.effort});
          when set it selects the full placer configuration and the
          [mode] is ignored *)
  flow : flow;
  congest_every : int option;
      (** routability only: iterations between congestion-target
          refreshes, overriding the preset's cadence *)
  congest_strength : float option;
      (** routability only: initial feedback gain of the congestion
          loop *)
}

(** Area-driven, standard mode, flat flow — the pre-objective default
    job. *)
val default : t

val make :
  ?goal:goal ->
  ?mode:mode ->
  ?effort:int ->
  ?flow:flow ->
  ?congest_every:int ->
  ?congest_strength:float ->
  unit ->
  t

(** [of_legacy ~mode ~flow ~effort ~timing] maps the protocol-v2 job
    fields onto an objective: [timing = true] becomes the [Timing]
    goal, everything else carries over unchanged. *)
val of_legacy :
  mode:mode -> flow:flow -> effort:int option -> timing:bool -> t

val goal_to_string : goal -> string
val goal_of_string : string -> (goal, string) result
val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result
val flow_to_string : flow -> string
val flow_of_string : string -> (flow, string) result

(** [timing_driven t] — the job adapts net weights to slack each
    transformation. *)
val timing_driven : t -> bool

(** [routed_validation t] — the job's final placement is validated with
    {!Route.Grouter} and the routed overflow reported in the result. *)
val routed_validation : t -> bool

(** [validate t] checks field ranges and that the congestion knobs are
    only used with the routability goal. *)
val validate : t -> (unit, string) result

(** [config t] is the placer configuration the objective selects: the
    effort preset (or mode fallback), with the congestion loop overlaid
    for the routability goal. *)
val config : t -> Kraftwerk.Config.t

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result
