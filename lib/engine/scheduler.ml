type id = int

type event =
  | Submitted of id
  | Started of id
  | Checkpointed of id * string
  | Finished of id * Job.status

(* Live state of a started job, dropped once the job is terminal. *)
type running = {
  circuit : Netlist.Circuit.t;
  state : Kraftwerk.Placer.state;
  hooks : Kraftwerk.Placer.hooks;
  crit : Timing.Criticality.t option;  (* timing-driven jobs *)
  sink : Obs.Sink.t option;  (* private per-job telemetry sink *)
  trace_oc : out_channel option;
  iters_emitted : int ref;
  started_at : float;
  max_steps : int;  (* cap on the total placer iteration counter *)
  mutable since_checkpoint : int;
  mutable checkpoint_written : string option;
}

type entry = {
  id : id;
  spec : Job.spec;
  mutable status : Job.status;
  mutable run : running option;
  mutable res : Job.result option;
  mutable final_global : Netlist.Placement.t option;
  mutable final_legal : Netlist.Placement.t option;
  mutable cancel_requested : bool;
}

type t = {
  concurrency : int;
  base_domains : int;
  on_event : event -> unit;
  mutable next_id : int;
  entries : (id, entry) Hashtbl.t;
  mutable order : id list;  (* submission order *)
  mutable rr : id list;  (* running jobs, round-robin rotation *)
}

let create ?(concurrency = 1) ?domains ?(on_event = fun _ -> ()) () =
  if concurrency < 1 then invalid_arg "Scheduler.create: concurrency < 1";
  let base_domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Scheduler.create: domains < 1";
      d
    | None -> Numeric.Parallel.num_domains ()
  in
  {
    concurrency;
    base_domains;
    on_event;
    next_id = 0;
    entries = Hashtbl.create 16;
    order = [];
    rr = [];
  }

let submit t spec =
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  Hashtbl.replace t.entries id
    {
      id;
      spec;
      status = Job.Queued;
      run = None;
      res = None;
      final_global = None;
      final_legal = None;
      cancel_requested = false;
    };
  t.order <- t.order @ [ id ];
  t.on_event (Submitted id);
  id

let status t id =
  Option.map (fun e -> e.status) (Hashtbl.find_opt t.entries id)

let result t id = Option.bind (Hashtbl.find_opt t.entries id) (fun e -> e.res)

let placement t id =
  Option.bind (Hashtbl.find_opt t.entries id) (fun e -> e.final_global)

let legalized t id =
  Option.bind (Hashtbl.find_opt t.entries id) (fun e -> e.final_legal)

let jobs t =
  List.map (fun id -> (id, (Hashtbl.find t.entries id).status)) t.order

let busy t =
  List.exists
    (fun id -> not (Job.terminal (Hashtbl.find t.entries id).status))
    t.order

let count_status t p =
  List.fold_left
    (fun acc id -> if p (Hashtbl.find t.entries id).status then acc + 1 else acc)
    0 t.order

let queued t = count_status t (fun s -> s = Job.Queued)

let running t =
  count_status t (fun s -> s = Job.Running || s = Job.Checkpointed)

(* ------------------------------------------------------------------ *)
(* Starting jobs                                                        *)

(* Timing-driven jobs adapt net weights before every transformation, as
   in Timing.Driven.optimize; the criticality state lives in the running
   record so checkpoints can carry it. *)
let timing_hooks crit =
  let params = Timing.Params.default in
  {
    Kraftwerk.Placer.no_hooks with
    Kraftwerk.Placer.reweight =
      Some
        (fun (state : Kraftwerk.Placer.state) ->
          let sta =
            Timing.Sta.analyse params state.Kraftwerk.Placer.circuit
              state.Kraftwerk.Placer.placement
          in
          Timing.Criticality.update crit params
            ~net_slack:sta.Timing.Sta.net_slack;
          Timing.Criticality.apply_weights
            ~cap:params.Timing.Params.max_net_weight crit
            state.Kraftwerk.Placer.net_weights);
  }

let ( let* ) = Stdlib.Result.bind

(* What can be rejected before a job is accepted into the queue: the
   submit-time admission check behind the protocol's [bad_spec]
   responses.  Deliberately cheap — existence, not full parses. *)
let validate_spec (spec : Job.spec) =
  let* () = Source.validate spec.Job.source in
  let* () =
    match spec.Job.start with
    | Job.Fresh -> Ok ()
    | Job.Resume file | Job.Warm file ->
      if Sys.file_exists file then Ok ()
      else Error (Printf.sprintf "spec: no such checkpoint %s" file)
  in
  match spec.Job.max_steps with
  | Some n when n < 0 -> Error "spec: max_steps must be non-negative"
  | _ -> Ok ()

(* Materialise a spec into live placer state.  Bad sources and
   checkpoints are typed [Error]s; the caller turns them into a [Failed]
   status (or, via [validate_spec], refuses them at submit time). *)
let start_running (spec : Job.spec) =
  let* circuit, p0 = Source.load spec.Job.source in
  (* The scheduler owns the pool; the config must not repartition it. *)
  let config =
    { (Job.config_of_mode spec.Job.mode) with Kraftwerk.Config.domains = None }
  in
  let* state, crit =
    match spec.Job.start with
    | Job.Fresh ->
      let crit =
        if spec.Job.timing then
          Some (Timing.Criticality.create (Netlist.Circuit.num_nets circuit))
        else None
      in
      Ok (Kraftwerk.Placer.init config circuit p0, crit)
    | Job.Resume file ->
      let* cp = Checkpoint.load file in
      let* state = Checkpoint.restore cp config circuit in
      let crit =
        if spec.Job.timing then
          Some
            (match cp.Checkpoint.criticality with
            | Some a -> Timing.Criticality.of_array a
            | None ->
              Timing.Criticality.create (Netlist.Circuit.num_nets circuit))
        else None
      in
      Ok (state, crit)
    | Job.Warm file ->
      (* ECO shape: only the checkpointed placement, fresh forces — the
         circuit may differ from the checkpointed one. *)
      let* cp = Checkpoint.load file in
      let* p =
        Checkpoint.placement cp ~num_cells:(Netlist.Circuit.num_cells circuit)
      in
      let crit =
        if spec.Job.timing then
          Some (Timing.Criticality.create (Netlist.Circuit.num_nets circuit))
        else None
      in
      Ok (Kraftwerk.Placer.init config circuit p, crit)
  in
  let hooks =
    match crit with
    | Some c -> timing_hooks c
    | None -> Kraftwerk.Placer.no_hooks
  in
  let iters_emitted = ref 0 in
  let sink, trace_oc =
    match spec.Job.trace with
    | None -> (None, None)
    | Some file ->
      let oc = open_out file in
      let base = Obs.Sink.jsonl oc in
      ( Some
          {
            base with
            Obs.Sink.on_iteration =
              (fun r ->
                incr iters_emitted;
                base.Obs.Sink.on_iteration r);
          },
        Some oc )
  in
  Ok
    {
      circuit;
      state;
      hooks;
      crit;
      sink;
      trace_oc;
      iters_emitted;
      started_at = Unix.gettimeofday ();
      max_steps =
        Option.value spec.Job.max_steps
          ~default:config.Kraftwerk.Config.max_iterations;
      since_checkpoint = 0;
      checkpoint_written = None;
    }

(* ------------------------------------------------------------------ *)
(* Finishing                                                            *)

let write_checkpoint t entry run file =
  let criticality = Option.map Timing.Criticality.to_array run.crit in
  Checkpoint.save file (Checkpoint.of_state ?criticality run.state);
  run.since_checkpoint <- 0;
  run.checkpoint_written <- Some file;
  if entry.status = Job.Running then entry.status <- Job.Checkpointed;
  t.on_event (Checkpointed (entry.id, file))

let close_trace run ~(result : Job.result) =
  (match (run.sink, run.trace_oc) with
  | Some sink, _ ->
    sink.Obs.Sink.on_summary
      {
        Obs.Telemetry.iterations = !(run.iters_emitted);
        converged = result.Job.converged;
        final_hpwl = result.Job.hpwl;
        final_overlap = result.Job.overlap;
        wall_time = result.Job.wall_s;
        counters = Obs.Registry.snapshot ();
      }
  | None, _ -> ());
  match run.trace_oc with Some oc -> close_out oc | None -> ()

let finish t entry (result : Job.result) =
  (match entry.run with
  | Some run -> close_trace run ~result
  | None -> ());
  entry.status <- result.Job.status;
  entry.res <- Some result;
  entry.run <- None;
  t.rr <- List.filter (fun id -> id <> entry.id) t.rr;
  t.on_event (Finished (entry.id, result.Job.status))

let empty_result status =
  {
    Job.status;
    iterations = 0;
    converged = false;
    hpwl = 0.;
    overlap = 0.;
    legal = false;
    improve_moves = 0;
    improve_delta = 0.;
    domino_moves = 0;
    domino_delta = 0.;
    deadline_expired = false;
    wall_s = 0.;
    checkpoint_written = None;
  }

let finish_failed t entry msg =
  let wall =
    match entry.run with
    | Some run -> Unix.gettimeofday () -. run.started_at
    | None -> 0.
  in
  finish t entry { (empty_result (Job.Failed msg)) with Job.wall_s = wall }

(* Completed job: the full final-placement pipeline, with the
   improvement deltas of each pass surfaced in the result. *)
let finish_done t entry run ~converged =
  (match entry.spec.Job.checkpoint with
  | Some file -> write_checkpoint t entry run file
  | None -> ());
  let c = run.circuit in
  let global = run.state.Kraftwerk.Placer.placement in
  entry.final_global <- Some (Netlist.Placement.copy global);
  let rep = Legalize.Abacus.legalize c global () in
  let lp = rep.Legalize.Abacus.placement in
  let improve_moves, improve_delta = Legalize.Improve.run c lp in
  let domino_moves, domino_delta = Legalize.Domino.run c lp in
  entry.final_legal <- Some lp;
  finish t entry
    {
      Job.status = Job.Done;
      iterations = run.state.Kraftwerk.Placer.iteration;
      converged;
      hpwl = Metrics.Wirelength.hpwl c lp;
      overlap = Metrics.Overlap.overlap_ratio c lp;
      legal = Legalize.Check.is_legal c lp;
      improve_moves;
      improve_delta;
      domino_moves;
      domino_delta;
      deadline_expired = false;
      wall_s = Unix.gettimeofday () -. run.started_at;
      checkpoint_written = run.checkpoint_written;
    }

(* Cancelled or deadline-expired job: degrade gracefully — write a final
   checkpoint when configured, then legalise the best-so-far placement.
   The greedy Tetris pass is tried first (cheapest); mid-run snapshots
   are clustered enough that its frontier packing can overflow, in which
   case the Abacus legaliser (which packs rows from their weighted
   optima) takes over.  Either way this path reports faithfully and
   never raises. *)
let finish_degraded t entry run ~deadline_expired =
  (match entry.spec.Job.checkpoint with
  | Some file -> write_checkpoint t entry run file
  | None -> ());
  let c = run.circuit in
  let global = run.state.Kraftwerk.Placer.placement in
  entry.final_global <- Some (Netlist.Placement.copy global);
  let lp, legal =
    match Legalize.Tetris.legalize c global () with
    | Ok rep
      when rep.Legalize.Tetris.overflowed = 0
           && Legalize.Check.is_legal c rep.Legalize.Tetris.placement ->
      (rep.Legalize.Tetris.placement, true)
    | Ok _ | Error _ ->
      let rep = Legalize.Abacus.legalize c global () in
      (rep.Legalize.Abacus.placement,
       Legalize.Check.is_legal c rep.Legalize.Abacus.placement)
  in
  entry.final_legal <- Some lp;
  finish t entry
    {
      Job.status = Job.Cancelled;
      iterations = run.state.Kraftwerk.Placer.iteration;
      converged = false;
      hpwl = Metrics.Wirelength.hpwl c lp;
      overlap = Metrics.Overlap.overlap_ratio c lp;
      legal;
      improve_moves = 0;
      improve_delta = 0.;
      domino_moves = 0;
      domino_delta = 0.;
      deadline_expired;
      wall_s = Unix.gettimeofday () -. run.started_at;
      checkpoint_written = run.checkpoint_written;
    }

(* ------------------------------------------------------------------ *)
(* Turns                                                                *)

(* Lane budget for the job about to run: an equal split of the base pool
   between the currently interleaved jobs, unless the spec pins one.
   Results are bitwise lane-count-independent, so the repartitioning is
   invisible to trajectories. *)
let lanes t entry =
  match entry.spec.Job.domains with
  | Some d -> d
  | None -> max 1 (t.base_domains / max 1 (List.length t.rr))

let turn t entry run =
  let deadline_expired =
    match entry.spec.Job.deadline with
    | Some d -> Unix.gettimeofday () -. run.started_at >= d
    | None -> false
  in
  if entry.cancel_requested || deadline_expired then
    finish_degraded t entry run ~deadline_expired
  else if run.state.Kraftwerk.Placer.iteration >= run.max_steps then
    finish_done t entry run ~converged:false
  else if Kraftwerk.Placer.converged run.state then
    finish_done t entry run ~converged:true
  else begin
    Numeric.Parallel.set_num_domains (lanes t entry);
    let step () =
      ignore (Kraftwerk.Placer.transform ~hooks:run.hooks run.state)
    in
    (match run.sink with
    | Some sink -> Obs.Sink.with_sink sink step
    | None -> step ());
    run.since_checkpoint <- run.since_checkpoint + 1;
    match entry.spec.Job.checkpoint with
    | Some file when run.since_checkpoint >= entry.spec.Job.checkpoint_every ->
      write_checkpoint t entry run file
    | _ -> ()
  end

let start_queued t =
  let rec next_queued best = function
    | [] -> best
    | id :: rest ->
      let e = Hashtbl.find t.entries id in
      let best =
        if e.status = Job.Queued then
          match best with
          | Some b when b.spec.Job.priority >= e.spec.Job.priority -> best
          | _ -> Some e
        else best
      in
      next_queued best rest
  in
  (* [order] is submission order, so the first maximum is FIFO within a
     priority. *)
  let continue = ref true in
  while !continue && List.length t.rr < t.concurrency do
    match next_queued None t.order with
    | None -> continue := false
    | Some e -> (
      e.status <- Job.Running;
      t.on_event (Started e.id);
      match start_running e.spec with
      | Ok run ->
        e.run <- Some run;
        t.rr <- t.rr @ [ e.id ]
      | Error msg -> finish_failed t e msg
      | exception exn -> finish_failed t e (Printexc.to_string exn))
  done

let step t =
  start_queued t;
  match t.rr with
  | [] -> false
  | id :: rest ->
    let e = Hashtbl.find t.entries id in
    (match e.run with
    | Some run -> (
      try turn t e run with exn -> finish_failed t e (Printexc.to_string exn))
    | None ->
      (* unreachable: every rr member has live run state *)
      finish_failed t e "scheduler: running job lost its state");
    (* Rotate: the job finishing removed itself from rr already. *)
    if not (Job.terminal e.status) then t.rr <- rest @ [ id ];
    true

let drain t =
  while step t do
    ()
  done

let cancel t id =
  match Hashtbl.find_opt t.entries id with
  | None -> false
  | Some e ->
    if Job.terminal e.status then false
    else begin
      (match e.status with
      | Job.Queued ->
        (* Never started: no placement to report. *)
        finish t e (empty_result Job.Cancelled)
      | _ -> e.cancel_requested <- true);
      true
    end

let cancel_all t =
  List.fold_left
    (fun acc id -> if cancel t id then acc + 1 else acc)
    0 t.order
