type id = int

type event =
  | Submitted of id
  | Started of id
  | Checkpointed of id * string
  | Finished of id * Job.status

(* What a job executes: the flat flow is a bare placer state, the
   multilevel flow a whole V-cycle (which owns a per-level placer state
   internally). *)
type exec =
  | Flat of Kraftwerk.Placer.state
  | Multi of Kraftwerk.Cluster.run

(* Live state of a started job, dropped once the job is terminal.  Only
   the domain currently executing the job's slice touches it. *)
type running = {
  circuit : Netlist.Circuit.t;
  exec : exec;
  hooks : Kraftwerk.Placer.hooks;
  crit : Timing.Criticality.t option;  (* timing-driven jobs *)
  sink : Obs.Sink.t option;  (* private per-job telemetry sink *)
  trace_oc : out_channel option;
  iters_emitted : int ref;
  started_at : float;
  max_steps : int;  (* cap on the total placer iteration counter *)
  mutable steps_taken : int;
      (* transformations executed by this engine run; the iteration
         count of multilevel jobs, whose per-level states reset *)
  mutable since_checkpoint : int;
  mutable checkpoint_written : string option;
}

(* The placer state currently being transformed (the current stage's
   for a V-cycle). *)
let exec_state = function
  | Flat s -> s
  | Multi r -> Kraftwerk.Cluster.current_state r

(* Iterations to report: the flat flow's placer counter survives
   checkpoint/resume by itself; a V-cycle's per-level counters reset at
   every descent, so the engine's own step count is the honest total. *)
let exec_iterations run =
  match run.exec with
  | Flat s -> s.Kraftwerk.Placer.iteration
  | Multi _ -> run.steps_taken

(* Final flat placement of a (possibly mid-flight) exec: a V-cycle
   still sitting on a coarse level expands straight down first. *)
let exec_final_placement circuit = function
  | Flat s -> s.Kraftwerk.Placer.placement
  | Multi r ->
    let p = Kraftwerk.Cluster.finish r in
    Netlist.Placement.clamp_to_region circuit p;
    p

type entry = {
  id : id;
  spec : Job.spec;
  mutable status : Job.status;
  mutable run : running option;
  mutable res : Job.result option;
  mutable final_global : Netlist.Placement.t option;
  mutable final_legal : Netlist.Placement.t option;
  mutable cancel_requested : bool;
}

type shard_stats = {
  mutable steals : int;
  mutable slices : int;
  mutable busy_s : float;
  mutable max_slice_s : float;
}

type shard_metric = {
  shard : int;
  queue_depth : int;
  m_steals : int;
  m_slices : int;
  m_busy_s : float;
  m_busy_frac : float;
  m_max_slice_s : float;
}

type t = {
  concurrency : int;
  base_domains : int;
  shards : int;  (* worker domains; 0 = inline cooperative mode *)
  on_event : event -> unit;  (* invoked only on the coordinator domain *)
  mutable next_id : int;
  entries : (id, entry) Hashtbl.t;
  mutable order : id list;  (* submission order *)
  mutable rr : id list;  (* inline mode: running jobs, round-robin *)
  (* Sharded mode.  [lock] guards every mutable field above plus the
     queues, pending events and stats; slices and finishing passes run
     outside it.  [cond] is broadcast whenever work or an event becomes
     available (and on stop). *)
  lock : Mutex.t;
  cond : Condition.t;
  queues : id Queue.t array;  (* per-shard run queues *)
  pending : event Queue.t;  (* events awaiting delivery by [pump] *)
  stats : shard_stats array;
  created_at : float;
  mutable live : bool;
  mutable workers : unit Domain.t array;
  mutable notify : (Unix.file_descr * Unix.file_descr) option;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Deliver an event.  Inline mode dispatches synchronously (the caller
   is the coordinator).  Sharded mode queues it for [pump] and pokes the
   self-pipe so a select-based coordinator wakes up.  Never called with
   [t.lock] held: handlers re-enter the scheduler's getters. *)
let emit t ev =
  if t.shards = 0 then t.on_event ev
  else begin
    with_lock t (fun () ->
        Queue.add ev t.pending;
        Condition.broadcast t.cond);
    match t.notify with
    | None -> ()
    | Some (_, w) -> (
      try ignore (Unix.write w (Bytes.make 1 '!') 0 1)
      with Unix.Unix_error _ -> ())
  end

(* Drain the self-pipe and dispatch queued events on the calling
   (coordinator) domain.  No-op in inline mode. *)
let pump t =
  if t.shards > 0 then begin
    (match t.notify with
    | None -> ()
    | Some (r, _) -> (
      let buf = Bytes.create 256 in
      try
        while Unix.read r buf 0 256 > 0 do
          ()
        done
      with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()));
    let evs =
      with_lock t (fun () ->
          let evs = List.of_seq (Queue.to_seq t.pending) in
          Queue.clear t.pending;
          evs)
    in
    List.iter t.on_event evs
  end

let notify_fd t = Option.map fst t.notify

let shards t = t.shards

let submit t spec =
  let id =
    with_lock t (fun () ->
        t.next_id <- t.next_id + 1;
        let id = t.next_id in
        Hashtbl.replace t.entries id
          {
            id;
            spec;
            status = Job.Queued;
            run = None;
            res = None;
            final_global = None;
            final_legal = None;
            cancel_requested = false;
          };
        t.order <- t.order @ [ id ];
        Condition.broadcast t.cond;
        id)
  in
  (* Submission happens on the coordinator in both modes, so the event
     can be dispatched synchronously — subscribers see [Submitted]
     before [submit] returns, as the inline scheduler always did. *)
  t.on_event (Submitted id);
  id

let status t id =
  with_lock t (fun () ->
      Option.map (fun e -> e.status) (Hashtbl.find_opt t.entries id))

let result t id =
  with_lock t (fun () ->
      Option.bind (Hashtbl.find_opt t.entries id) (fun e -> e.res))

let placement t id =
  with_lock t (fun () ->
      Option.bind (Hashtbl.find_opt t.entries id) (fun e -> e.final_global))

let legalized t id =
  with_lock t (fun () ->
      Option.bind (Hashtbl.find_opt t.entries id) (fun e -> e.final_legal))

let jobs t =
  with_lock t (fun () ->
      List.map (fun id -> (id, (Hashtbl.find t.entries id).status)) t.order)

let busy_locked t =
  List.exists
    (fun id -> not (Job.terminal (Hashtbl.find t.entries id).status))
    t.order

let busy t = with_lock t (fun () -> busy_locked t)

let count_status_locked t p =
  List.fold_left
    (fun acc id -> if p (Hashtbl.find t.entries id).status then acc + 1 else acc)
    0 t.order

let queued t = with_lock t (fun () -> count_status_locked t (( = ) Job.Queued))

let running_locked t =
  count_status_locked t (fun s -> s = Job.Running || s = Job.Checkpointed)

let running t = with_lock t (fun () -> running_locked t)

let shard_metrics t =
  if t.shards = 0 then []
  else
    with_lock t (fun () ->
        let uptime = max 1e-9 (Unix.gettimeofday () -. t.created_at) in
        List.init t.shards (fun i ->
            let s = t.stats.(i) in
            {
              shard = i;
              queue_depth = Queue.length t.queues.(i);
              m_steals = s.steals;
              m_slices = s.slices;
              m_busy_s = s.busy_s;
              m_busy_frac = s.busy_s /. uptime;
              m_max_slice_s = s.max_slice_s;
            }))

(* ------------------------------------------------------------------ *)
(* Starting jobs                                                        *)

(* Timing-driven jobs adapt net weights before every transformation, as
   in Timing.Driven.optimize; the criticality state lives in the running
   record so checkpoints can carry it. *)
let timing_hooks crit =
  let params = Timing.Params.default in
  {
    Kraftwerk.Placer.no_hooks with
    Kraftwerk.Placer.reweight =
      Some
        (fun (state : Kraftwerk.Placer.state) ->
          let sta =
            Timing.Sta.analyse params state.Kraftwerk.Placer.circuit
              state.Kraftwerk.Placer.placement
          in
          Timing.Criticality.update crit params
            ~net_slack:sta.Timing.Sta.net_slack;
          Timing.Criticality.apply_weights
            ~cap:params.Timing.Params.max_net_weight crit
            state.Kraftwerk.Placer.net_weights);
  }

let ( let* ) = Stdlib.Result.bind

(* What can be rejected before a job is accepted into the queue: the
   submit-time admission check behind the protocol's [bad_spec]
   responses.  Deliberately cheap — existence, not full parses. *)
let validate_spec (spec : Job.spec) =
  let* () = Source.validate spec.Job.source in
  let* () =
    match spec.Job.start with
    | Job.Fresh -> Ok ()
    | Job.Resume file | Job.Warm file ->
      if Sys.file_exists file then Ok ()
      else Error (Printf.sprintf "spec: no such checkpoint %s" file)
  in
  let* () =
    match spec.Job.max_steps with
    | Some n when n < 0 -> Error "spec: max_steps must be non-negative"
    | _ -> Ok ()
  in
  Objective.validate spec.Job.objective

(* Fixed positions as the multilevel flow wants them: whatever the
   initial placement pins (exactly what [place run --flow multilevel]
   passes, so engine and CLI trajectories agree). *)
let fixed_positions_of circuit (p : Netlist.Placement.t) =
  Array.to_list circuit.Netlist.Circuit.cells
  |> List.filter_map (fun (cl : Netlist.Cell.t) ->
         if cl.Netlist.Cell.fixed then
           Some
             ( cl.Netlist.Cell.id,
               ( p.Netlist.Placement.x.(cl.Netlist.Cell.id),
                 p.Netlist.Placement.y.(cl.Netlist.Cell.id) ) )
         else None)

(* Materialise a spec into live placer state.  Bad sources and
   checkpoints are typed [Error]s; the caller turns them into a [Failed]
   status (or, via [validate_spec], refuses them at submit time). *)
let start_running (spec : Job.spec) =
  let* circuit, p0 = Source.load spec.Job.source in
  (* The scheduler owns the pool; the config must not repartition it. *)
  let config =
    { (Job.config_of_spec spec) with Kraftwerk.Config.domains = None }
  in
  let crit_fresh () =
    if Job.timing spec then
      Some (Timing.Criticality.create (Netlist.Circuit.num_nets circuit))
    else None
  in
  let* exec, crit, steps0 =
    match (Job.flow spec, spec.Job.start) with
    | Job.Flat, Job.Fresh ->
      Ok (Flat (Kraftwerk.Placer.init config circuit p0), crit_fresh (), 0)
    | Job.Flat, Job.Resume file ->
      let* cp = Checkpoint.load file in
      let* state = Checkpoint.restore cp config circuit in
      let crit =
        if Job.timing spec then
          Some
            (match cp.Checkpoint.criticality with
            | Some a -> Timing.Criticality.of_array a
            | None ->
              Timing.Criticality.create (Netlist.Circuit.num_nets circuit))
        else None
      in
      Ok (Flat state, crit, 0)
    | Job.Flat, Job.Warm file ->
      (* ECO shape: only the checkpointed placement, fresh forces — the
         circuit may differ from the checkpointed one. *)
      let* cp = Checkpoint.load file in
      let* p =
        Checkpoint.placement cp ~num_cells:(Netlist.Circuit.num_cells circuit)
      in
      Ok (Flat (Kraftwerk.Placer.init config circuit p), crit_fresh (), 0)
    | Job.Multilevel, Job.Fresh ->
      let fixed = fixed_positions_of circuit p0 in
      Ok
        ( Multi (Kraftwerk.Cluster.start config circuit ~fixed_positions:fixed p0),
          crit_fresh (),
          0 )
    | Job.Multilevel, Job.Resume file ->
      let* cp = Checkpoint.load file in
      let fixed = fixed_positions_of circuit p0 in
      let* run =
        Checkpoint.restore_multilevel cp config circuit ~fixed_positions:fixed
      in
      let crit =
        if Job.timing spec then
          Some
            (match cp.Checkpoint.criticality with
            | Some a -> Timing.Criticality.of_array a
            | None ->
              Timing.Criticality.create (Netlist.Circuit.num_nets circuit))
        else None
      in
      Ok (Multi run, crit, cp.Checkpoint.iteration)
    | Job.Multilevel, Job.Warm file ->
      let* cp = Checkpoint.load file in
      let* p =
        Checkpoint.placement cp ~num_cells:(Netlist.Circuit.num_cells circuit)
      in
      let fixed = fixed_positions_of circuit p in
      Ok
        ( Multi (Kraftwerk.Cluster.start config circuit ~fixed_positions:fixed p),
          crit_fresh (),
          0 )
  in
  let hooks =
    match crit with
    | Some c -> timing_hooks c
    | None -> Kraftwerk.Placer.no_hooks
  in
  let iters_emitted = ref 0 in
  let sink, trace_oc =
    match spec.Job.trace with
    | None -> (None, None)
    | Some file ->
      let oc = open_out file in
      let base = Obs.Sink.jsonl oc in
      ( Some
          {
            base with
            Obs.Sink.on_iteration =
              (fun r ->
                incr iters_emitted;
                base.Obs.Sink.on_iteration r);
          },
        Some oc )
  in
  Ok
    {
      circuit;
      exec;
      hooks;
      crit;
      sink;
      trace_oc;
      iters_emitted;
      started_at = Unix.gettimeofday ();
      max_steps =
        (match spec.Job.max_steps with
        | Some n -> n
        | None -> (
          (* A V-cycle budgets per level ([max_iterations] at the
             coarsest stage, [ml_refine_iters] below); an engine-wide
             cap only applies when the spec asks for one. *)
          match exec with
          | Flat _ -> config.Kraftwerk.Config.max_iterations
          | Multi _ -> max_int));
      steps_taken = steps0;
      since_checkpoint = 0;
      checkpoint_written = None;
    }

(* ------------------------------------------------------------------ *)
(* Finishing                                                            *)

let write_checkpoint t entry run file =
  let criticality = Option.map Timing.Criticality.to_array run.crit in
  let cp =
    match run.exec with
    | Flat s -> Checkpoint.of_state ?criticality s
    | Multi r -> Checkpoint.of_run ?criticality r
  in
  Checkpoint.save file cp;
  run.since_checkpoint <- 0;
  run.checkpoint_written <- Some file;
  with_lock t (fun () ->
      if entry.status = Job.Running then entry.status <- Job.Checkpointed);
  emit t (Checkpointed (entry.id, file))

let close_trace run ~(result : Job.result) =
  (match (run.sink, run.trace_oc) with
  | Some sink, _ ->
    sink.Obs.Sink.on_summary
      {
        Obs.Telemetry.iterations = !(run.iters_emitted);
        converged = result.Job.converged;
        final_hpwl = result.Job.hpwl;
        final_overlap = result.Job.overlap;
        wall_time = result.Job.wall_s;
        stop_reason =
          Option.map Kraftwerk.Controller.reason_to_string
            (Kraftwerk.Placer.stop_reason (exec_state run.exec));
        counters = Obs.Registry.snapshot ();
      }
  | None, _ -> ());
  match run.trace_oc with Some oc -> close_out oc | None -> ()

let finish t entry (result : Job.result) =
  (match entry.run with
  | Some run -> close_trace run ~result
  | None -> ());
  with_lock t (fun () ->
      entry.status <- result.Job.status;
      entry.res <- Some result;
      entry.run <- None;
      t.rr <- List.filter (fun id -> id <> entry.id) t.rr;
      Condition.broadcast t.cond);
  emit t (Finished (entry.id, result.Job.status))

let empty_result status =
  {
    Job.status;
    iterations = 0;
    converged = false;
    hpwl = 0.;
    overlap = 0.;
    legal = false;
    improve_moves = 0;
    improve_delta = 0.;
    domino_moves = 0;
    domino_delta = 0.;
    routed_overflow = None;
    routed_max_overflow = None;
    routed_wirelength = None;
    deadline_expired = false;
    wall_s = 0.;
    checkpoint_written = None;
  }

let finish_failed t entry msg =
  let wall =
    match entry.run with
    | Some run -> Unix.gettimeofday () -. run.started_at
    | None -> 0.
  in
  finish t entry { (empty_result (Job.Failed msg)) with Job.wall_s = wall }

(* Completed job: the full final-placement pipeline, with the
   improvement deltas of each pass surfaced in the result. *)
let finish_done t entry run ~converged =
  (match entry.spec.Job.checkpoint with
  | Some file -> write_checkpoint t entry run file
  | None -> ());
  let c = run.circuit in
  let global = exec_final_placement c run.exec in
  with_lock t (fun () ->
      entry.final_global <- Some (Netlist.Placement.copy global));
  let rep = Legalize.Abacus.legalize c global () in
  let lp = rep.Legalize.Abacus.placement in
  let improve_moves, improve_delta = Legalize.Improve.run c lp in
  let domino_moves, domino_delta = Legalize.Domino.run c lp in
  with_lock t (fun () -> entry.final_legal <- Some lp);
  (* Routability-goal jobs validate the final legal placement with the
     actual global router, on the same grid spec the in-loop estimator
     used, and surface the routed overflow in the result. *)
  let routed_overflow, routed_max_overflow, routed_wirelength =
    if Objective.routed_validation entry.spec.Job.objective then
      let config = Job.config_of_spec entry.spec in
      let gspec = Kraftwerk.Placer.route_spec config c in
      match Route.Grouter.route c lp gspec with
      | Ok r ->
        ( Some r.Route.Grouter.total_overflow,
          Some r.Route.Grouter.max_overflow,
          Some r.Route.Grouter.total_wirelength )
      | Error _ -> (None, None, None)
    else (None, None, None)
  in
  finish t entry
    {
      Job.status = Job.Done;
      iterations = exec_iterations run;
      converged;
      hpwl = Metrics.Wirelength.hpwl c lp;
      overlap = Metrics.Overlap.overlap_ratio c lp;
      legal = Legalize.Check.is_legal c lp;
      improve_moves;
      improve_delta;
      domino_moves;
      domino_delta;
      routed_overflow;
      routed_max_overflow;
      routed_wirelength;
      deadline_expired = false;
      wall_s = Unix.gettimeofday () -. run.started_at;
      checkpoint_written = run.checkpoint_written;
    }

(* Cancelled or deadline-expired job: degrade gracefully — write a final
   checkpoint when configured, then legalise the best-so-far placement.
   The greedy Tetris pass is tried first (cheapest); mid-run snapshots
   are clustered enough that its frontier packing can overflow, in which
   case the Abacus legaliser (which packs rows from their weighted
   optima) takes over.  Either way this path reports faithfully and
   never raises. *)
let finish_degraded t entry run ~deadline_expired =
  (match entry.spec.Job.checkpoint with
  | Some file -> write_checkpoint t entry run file
  | None -> ());
  let c = run.circuit in
  let global = exec_final_placement c run.exec in
  with_lock t (fun () ->
      entry.final_global <- Some (Netlist.Placement.copy global));
  let lp, legal =
    match Legalize.Tetris.legalize c global () with
    | Ok rep
      when rep.Legalize.Tetris.overflowed = 0
           && Legalize.Check.is_legal c rep.Legalize.Tetris.placement ->
      (rep.Legalize.Tetris.placement, true)
    | Ok _ | Error _ ->
      let rep = Legalize.Abacus.legalize c global () in
      (rep.Legalize.Abacus.placement,
       Legalize.Check.is_legal c rep.Legalize.Abacus.placement)
  in
  with_lock t (fun () -> entry.final_legal <- Some lp);
  finish t entry
    {
      Job.status = Job.Cancelled;
      iterations = exec_iterations run;
      converged = false;
      hpwl = Metrics.Wirelength.hpwl c lp;
      overlap = Metrics.Overlap.overlap_ratio c lp;
      legal;
      improve_moves = 0;
      improve_delta = 0.;
      domino_moves = 0;
      domino_delta = 0.;
      routed_overflow = None;
      routed_max_overflow = None;
      routed_wirelength = None;
      deadline_expired;
      wall_s = Unix.gettimeofday () -. run.started_at;
      checkpoint_written = run.checkpoint_written;
    }

(* ------------------------------------------------------------------ *)
(* Turns                                                                *)

(* One scheduling quantum for a running job: cancellation, deadline and
   budget checks, then a single placement transformation (or the
   finishing pass).  [set_lanes] runs just before the transformation —
   the inline scheduler repartitions the global pool there, a sharded
   worker has already pinned its lanes and passes a no-op. *)
let turn_body t entry run ~set_lanes =
  let deadline_expired =
    match entry.spec.Job.deadline with
    | Some d -> Unix.gettimeofday () -. run.started_at >= d
    | None -> false
  in
  let cancelled = with_lock t (fun () -> entry.cancel_requested) in
  let over_budget =
    match run.exec with
    | Flat s -> s.Kraftwerk.Placer.iteration >= run.max_steps
    | Multi _ -> run.steps_taken >= run.max_steps
  in
  let done_now =
    match run.exec with
    | Flat s -> Kraftwerk.Placer.converged s
    | Multi r -> Kraftwerk.Cluster.finished r
  in
  if cancelled || deadline_expired then
    finish_degraded t entry run ~deadline_expired
  else if over_budget then begin
    Kraftwerk.Controller.record_stop
      (exec_state run.exec).Kraftwerk.Placer.controller
      Kraftwerk.Controller.Max_steps;
    finish_done t entry run ~converged:false
  end
  else if done_now then finish_done t entry run ~converged:true
  else begin
    set_lanes ();
    let step () =
      match run.exec with
      | Flat s -> ignore (Kraftwerk.Placer.transform ~hooks:run.hooks s)
      | Multi r -> ignore (Kraftwerk.Cluster.step ~hooks:run.hooks r)
    in
    (match run.sink with
    | Some sink -> Obs.Sink.with_sink sink step
    | None -> step ());
    run.steps_taken <- run.steps_taken + 1;
    run.since_checkpoint <- run.since_checkpoint + 1;
    match entry.spec.Job.checkpoint with
    | Some file when run.since_checkpoint >= entry.spec.Job.checkpoint_every ->
      write_checkpoint t entry run file
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Inline (single-domain, cooperative) mode                             *)

(* Lane budget for the job about to run: an equal split of the base pool
   between the currently interleaved jobs, unless the spec pins one.
   Results are bitwise lane-count-independent, so the repartitioning is
   invisible to trajectories. *)
let lanes_inline t entry =
  match entry.spec.Job.domains with
  | Some d -> d
  | None -> max 1 (t.base_domains / max 1 (List.length t.rr))

let turn t entry run =
  turn_body t entry run ~set_lanes:(fun () ->
      Numeric.Parallel.set_num_domains (lanes_inline t entry))

let start_queued t =
  let rec next_queued best = function
    | [] -> best
    | id :: rest ->
      let e = Hashtbl.find t.entries id in
      let best =
        if e.status = Job.Queued then
          match best with
          | Some b when b.spec.Job.priority >= e.spec.Job.priority -> best
          | _ -> Some e
        else best
      in
      next_queued best rest
  in
  (* [order] is submission order, so the first maximum is FIFO within a
     priority. *)
  let continue = ref true in
  while !continue && List.length t.rr < t.concurrency do
    match next_queued None t.order with
    | None -> continue := false
    | Some e -> (
      e.status <- Job.Running;
      t.on_event (Started e.id);
      match start_running e.spec with
      | Ok run ->
        e.run <- Some run;
        t.rr <- t.rr @ [ e.id ]
      | Error msg -> finish_failed t e msg
      | exception exn -> finish_failed t e (Printexc.to_string exn))
  done

let step_inline t =
  start_queued t;
  match t.rr with
  | [] -> false
  | id :: rest ->
    let e = Hashtbl.find t.entries id in
    (match e.run with
    | Some run -> (
      try turn t e run with exn -> finish_failed t e (Printexc.to_string exn))
    | None ->
      (* unreachable: every rr member has live run state *)
      finish_failed t e "scheduler: running job lost its state");
    (* Rotate: the job finishing removed itself from rr already. *)
    if not (Job.terminal e.status) then t.rr <- rest @ [ id ];
    true

(* ------------------------------------------------------------------ *)
(* Sharded mode: one worker domain per shard                            *)

(* Home shard: fixed by job id alone, so where a job's slices queue is a
   pure function of submission order, independent of timing.  Stealing
   borrows one slice at a time; the job re-queues at home afterwards. *)
let home t id = (id - 1) mod t.shards

(* Per-slice lane budget.  Fixed for the scheduler's lifetime — an equal
   split of the base pool across shards (spec pin wins) — and applied
   with a domain-local override so concurrent workers never resize the
   process-wide pool under each other. *)
let lanes_sharded t entry =
  match entry.spec.Job.domains with
  | Some d -> d
  | None -> max 1 (t.base_domains / t.shards)

type work = Slice of entry | Claim of entry | Nothing

(* Pick work for a shard, [t.lock] held: own queue first, then steal
   scanning the other shards in a fixed order, then claim a queued job
   if a concurrency slot is free.  Terminal ids found in a queue (a job
   cancelled while queued never gets there, but be defensive) are
   dropped. *)
let take_work t shard =
  let rec pop q =
    match Queue.take_opt q with
    | None -> None
    | Some id ->
      let e = Hashtbl.find t.entries id in
      if Job.terminal e.status || e.run = None then pop q else Some e
  in
  match pop t.queues.(shard) with
  | Some e -> Slice e
  | None -> (
    let rec scan k =
      if k >= t.shards then None
      else
        match pop t.queues.((shard + k) mod t.shards) with
        | Some e -> Some e
        | None -> scan (k + 1)
    in
    match scan 1 with
    | Some e ->
      let s = t.stats.(shard) in
      s.steals <- s.steals + 1;
      Slice e
    | None ->
      if running_locked t >= t.concurrency then Nothing
      else
        let best =
          List.fold_left
            (fun best id ->
              let e = Hashtbl.find t.entries id in
              if e.status <> Job.Queued then best
              else
                match best with
                | Some b when b.spec.Job.priority >= e.spec.Job.priority ->
                  best
                | _ -> Some e)
            None t.order
        in
        (match best with
        | Some e ->
          e.status <- Job.Running;
          Claim e
        | None -> Nothing))

(* Run one slice outside the lock, then account for it and re-queue the
   job at its home shard if it is still live. *)
let exec_slice t shard entry =
  let t0 = Unix.gettimeofday () in
  (match entry.run with
  | None -> finish_failed t entry "scheduler: running job lost its state"
  | Some run -> (
    try
      Numeric.Parallel.with_lanes (lanes_sharded t entry) (fun () ->
          turn_body t entry run ~set_lanes:(fun () -> ()))
    with exn -> finish_failed t entry (Printexc.to_string exn)));
  let dt = Unix.gettimeofday () -. t0 in
  Obs.Registry.observe "sched/slice_s" dt;
  with_lock t (fun () ->
      let s = t.stats.(shard) in
      s.slices <- s.slices + 1;
      s.busy_s <- s.busy_s +. dt;
      if dt > s.max_slice_s then s.max_slice_s <- dt;
      if not (Job.terminal entry.status) then begin
        Queue.add entry.id t.queues.(home t entry.id);
        Condition.broadcast t.cond
      end;
      (* Wake the coordinator's [step] even when the job finished: the
         finish already queued its event and broadcast. *)
      Condition.broadcast t.cond)

let worker t shard () =
  Mutex.lock t.lock;
  let rec loop () =
    if t.live then begin
      match take_work t shard with
      | Nothing ->
        Condition.wait t.cond t.lock;
        loop ()
      | Claim entry ->
        Mutex.unlock t.lock;
        emit t (Started entry.id);
        (match start_running entry.spec with
        | Ok run ->
          with_lock t (fun () ->
              entry.run <- Some run;
              Queue.add entry.id t.queues.(home t entry.id);
              Condition.broadcast t.cond)
        | Error msg -> finish_failed t entry msg
        | exception exn -> finish_failed t entry (Printexc.to_string exn));
        Mutex.lock t.lock;
        loop ()
      | Slice entry ->
        Mutex.unlock t.lock;
        exec_slice t shard entry;
        Mutex.lock t.lock;
        loop ()
    end
  in
  loop ();
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Construction, stepping, cancellation                                 *)

let create ?(concurrency = 1) ?domains ?(shards = 0) ?(on_event = fun _ -> ())
    () =
  if concurrency < 1 then invalid_arg "Scheduler.create: concurrency < 1";
  if shards < 0 then invalid_arg "Scheduler.create: shards < 0";
  let shards = min shards 64 in
  let base_domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Scheduler.create: domains < 1";
      d
    | None -> Numeric.Parallel.num_domains ()
  in
  let notify =
    if shards = 0 then None
    else begin
      let r, w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock r;
      Unix.set_nonblock w;
      Some (r, w)
    end
  in
  let t =
    {
      concurrency;
      base_domains;
      shards;
      on_event;
      next_id = 0;
      entries = Hashtbl.create 16;
      order = [];
      rr = [];
      lock = Mutex.create ();
      cond = Condition.create ();
      queues = Array.init (max 1 shards) (fun _ -> Queue.create ());
      pending = Queue.create ();
      stats =
        Array.init (max 1 shards) (fun _ ->
            { steals = 0; slices = 0; busy_s = 0.; max_slice_s = 0. });
      created_at = Unix.gettimeofday ();
      live = true;
      workers = [||];
      notify;
    }
  in
  if shards > 0 then
    t.workers <- Array.init shards (fun i -> Domain.spawn (worker t i));
  t

let stop t =
  if t.shards > 0 then begin
    with_lock t (fun () ->
        t.live <- false;
        Condition.broadcast t.cond);
    Array.iter Domain.join t.workers;
    t.workers <- [||];
    pump t;
    match t.notify with
    | None -> ()
    | Some (r, w) ->
      t.notify <- None;
      (try Unix.close r with Unix.Unix_error _ -> ());
      (try Unix.close w with Unix.Unix_error _ -> ())
  end

let step t =
  if t.shards = 0 then step_inline t
  else begin
    pump t;
    let busy_now =
      with_lock t (fun () ->
          if not t.live then false
          else begin
            let b = busy_locked t in
            if b && Queue.is_empty t.pending then Condition.wait t.cond t.lock;
            b
          end)
    in
    pump t;
    busy_now
  end

let drain t =
  while step t do
    ()
  done

let cancel t id =
  match with_lock t (fun () -> Hashtbl.find_opt t.entries id) with
  | None -> false
  | Some e ->
    let action =
      with_lock t (fun () ->
          if Job.terminal e.status then `Already
          else if e.status = Job.Queued then begin
            (* Never started: no placement to report.  Settle the whole
               terminal state atomically so a concurrent worker can
               neither claim it nor observe a half-finished entry. *)
            let r = empty_result Job.Cancelled in
            e.status <- Job.Cancelled;
            e.res <- Some r;
            Condition.broadcast t.cond;
            `Finished
          end
          else begin
            e.cancel_requested <- true;
            `Flagged
          end)
    in
    (match action with
    | `Finished -> emit t (Finished (id, Job.Cancelled))
    | `Already | `Flagged -> ());
    action <> `Already

let cancel_all t =
  let ids = with_lock t (fun () -> t.order) in
  List.fold_left (fun acc id -> if cancel t id then acc + 1 else acc) 0 ids
