(* Bookshelf interchange: export a benchmark in the UCLA Bookshelf
   format (the academic placement-contest standard), reload it, place
   the reloaded circuit, and write the result back as a .pl file —
   demonstrating that the repository can sit inside a standard
   benchmark-driven flow.

     dune exec examples/bookshelf_flow.exe *)

let () =
  let profile = Circuitgen.Profiles.find "fract" in
  let params = Circuitgen.Profiles.params profile ~seed:21 in
  let circuit, pads = Circuitgen.Gen.generate params in
  let initial = Circuitgen.Gen.initial_placement circuit pads in

  (* Export. *)
  let dir = Filename.temp_file "bookshelf_demo" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let base = Filename.concat dir "fract" in
  Netlist.Bookshelf.save base circuit initial;
  Printf.printf "exported %s.{aux,nodes,nets,pl,scl}\n" base;

  (* Reload and verify. *)
  let circuit', p0 =
    match Netlist.Bookshelf.load_aux (base ^ ".aux") with
    | Ok cp -> cp
    | Error e -> failwith (Netlist.Bookshelf.error_message e)
  in
  Printf.printf "reloaded: %d cells, %d nets, %d rows (hpwl preserved: %b)\n"
    (Netlist.Circuit.num_cells circuit')
    (Netlist.Circuit.num_nets circuit')
    (Netlist.Circuit.num_rows circuit')
    (Float.abs
       (Metrics.Wirelength.hpwl circuit initial
       -. Metrics.Wirelength.hpwl circuit' p0)
    < 1.);

  (* Place the reloaded circuit. *)
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit' p0 in
  let rep = Legalize.Abacus.legalize circuit' state.Kraftwerk.Placer.placement () in
  let final = rep.Legalize.Abacus.placement in
  ignore (Legalize.Improve.run circuit' final);
  ignore (Legalize.Domino.run circuit' final);
  Printf.printf "placed: hpwl %.4g, legal %b\n"
    (Metrics.Wirelength.hpwl circuit' final)
    (Legalize.Check.is_legal circuit' final);

  (* Write the placed result back. *)
  Netlist.Bookshelf.save (base ^ "_placed") circuit' final;
  Printf.printf "wrote %s_placed.pl\n" base
