(* Route a placed circuit with the coarse global router and render the
   placement with a congestion heat overlay to SVG.

     dune exec examples/route_and_draw.exe
     → writes placement.svg and congestion.svg in the current directory *)

let () =
  let profile = Circuitgen.Profiles.find "primary1" in
  let params = Circuitgen.Profiles.params profile ~seed:11 in
  let circuit, pads = Circuitgen.Gen.generate params in
  let initial = Circuitgen.Gen.initial_placement circuit pads in

  (* Place and legalise. *)
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit initial in
  let rep = Legalize.Abacus.legalize circuit state.Kraftwerk.Placer.placement () in
  let placement = rep.Legalize.Abacus.placement in
  ignore (Legalize.Improve.run circuit placement);
  ignore (Legalize.Domino.run circuit placement);

  (* Route on a coarse grid and report. *)
  let nx, ny = Density.Density_map.auto_bins circuit in
  let routed =
    match
      Route.Grouter.route circuit placement (Route.Grid_spec.make ~nx ~ny ())
    with
    | Ok r -> r
    | Error e -> failwith (Route.Grid_spec.error_message e)
  in
  Printf.printf "placed hpwl      %.4g\n" (Metrics.Wirelength.hpwl circuit placement);
  Printf.printf "routed wirelength %.4g (%.2fx hpwl)\n"
    routed.Route.Grouter.total_wirelength
    (routed.Route.Grouter.total_wirelength
    /. Metrics.Wirelength.hpwl circuit placement);
  Printf.printf "overflow          %.4g (max %.4g), %d unroutable nets\n"
    routed.Route.Grouter.total_overflow routed.Route.Grouter.max_overflow
    routed.Route.Grouter.failed_nets;

  (* Plain placement picture. *)
  Viz.Svg.save "placement.svg" circuit placement;
  (* Congestion overlay: combined h+v usage per bin. *)
  let usage = Geometry.Grid2.create circuit.Netlist.Circuit.region ~nx ~ny in
  Geometry.Grid2.map_inplace
    (fun ix iy _ ->
      Geometry.Grid2.get routed.Route.Grouter.usage_h ix iy
      +. Geometry.Grid2.get routed.Route.Grouter.usage_v ix iy)
    usage;
  let options = { Viz.Svg.default_options with Viz.Svg.heat = Some usage } in
  Viz.Svg.save "congestion.svg" ~options circuit placement;
  print_endline "wrote placement.svg and congestion.svg"
