(* Congestion- and heat-driven placement (paper §5): the supply/demand
   density hook feeds a routing-congestion or temperature map back into
   the force field, so the placement and the map converge together.

     dune exec examples/congestion_heat.exe *)

let () =
  let profile = Circuitgen.Profiles.find "primary1" in
  let params = Circuitgen.Profiles.params profile ~seed:13 in
  let circuit, pads = Circuitgen.Gen.generate params in
  let initial = Circuitgen.Gen.initial_placement circuit pads in
  let nx, ny = Density.Density_map.auto_bins circuit in
  let spec = Route.Grid_spec.make ~nx ~ny () in
  let est_ok = function
    | Ok e -> e
    | Error e -> failwith (Route.Grid_spec.error_message e)
  in

  (* Reference: plain area-driven placement. *)
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit initial in
  let plain = state.Kraftwerk.Placer.placement in
  let plain_cong = est_ok (Route.Congest.estimate circuit plain spec) in
  let plain_heat = Route.Heat.analyse circuit plain ~nx ~ny in
  Printf.printf "plain:      hpwl %.4g  overflow %.4g  peak heat %.3g\n"
    (Metrics.Wirelength.hpwl circuit plain)
    plain_cong.Route.Congest.total_overflow plain_heat.Route.Heat.peak;

  (* Congestion-driven: inject the overflow map as extra demand. *)
  let cong_hooks =
    { Kraftwerk.Placer.no_hooks with
      Kraftwerk.Placer.extra_density =
        Some
          (fun c p ~nx ~ny ->
            match
              Route.Congest.extra_density ~strength:1.0 c p
                (Route.Grid_spec.make ~nx ~ny ())
            with
            | Ok g -> g
            | Error _ -> None) }
  in
  let state, _ =
    Kraftwerk.Placer.run ~hooks:cong_hooks Kraftwerk.Config.standard circuit initial
  in
  let cong_placed = state.Kraftwerk.Placer.placement in
  let cong = est_ok (Route.Congest.estimate circuit cong_placed spec) in
  Printf.printf "congestion: hpwl %.4g  overflow %.4g (%+.0f%%)\n"
    (Metrics.Wirelength.hpwl circuit cong_placed)
    cong.Route.Congest.total_overflow
    (100.
    *. (cong.Route.Congest.total_overflow -. plain_cong.Route.Congest.total_overflow)
    /. Float.max plain_cong.Route.Congest.total_overflow 1e-9);

  (* Heat-driven: the same hook with the temperature map. *)
  let heat_hooks =
    { Kraftwerk.Placer.no_hooks with
      Kraftwerk.Placer.extra_density =
        Some
          (fun c p ~nx ~ny -> Route.Heat.extra_density ~strength:1.0 c p ~nx ~ny) }
  in
  let state, _ =
    Kraftwerk.Placer.run ~hooks:heat_hooks Kraftwerk.Config.standard circuit initial
  in
  let heat_placed = state.Kraftwerk.Placer.placement in
  let heat = Route.Heat.analyse circuit heat_placed ~nx ~ny in
  Printf.printf "heat:       hpwl %.4g  peak heat %.3g (%+.0f%%)\n"
    (Metrics.Wirelength.hpwl circuit heat_placed)
    heat.Route.Heat.peak
    (100. *. (heat.Route.Heat.peak -. plain_heat.Route.Heat.peak)
    /. Float.max plain_heat.Route.Heat.peak 1e-30)
