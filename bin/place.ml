(* Command-line front end: generate benchmark circuits, run any of the
   placement flows, and report quality metrics.

   Examples:
     place generate --profile struct --seed 7 -o struct.ckt
     place run --profile biomed --mode standard --timing
     place run --circuit struct.ckt --flow annealer
     place profiles *)

let log_steps verbose (r : Kraftwerk.Placer.step_report) =
  if verbose then
    Printf.eprintf "step %3d  hpwl %.4g  empty %.4g  cg %d\n%!"
      r.Kraftwerk.Placer.step r.Kraftwerk.Placer.hpwl
      r.Kraftwerk.Placer.empty_square_area r.Kraftwerk.Placer.cg_iterations

let load_or_generate ~circuit_file ~profile ~scale ~seed =
  match (circuit_file, profile) with
  | Some file, _ when Filename.check_suffix file ".aux" ->
    (* Bookshelf benchmark. *)
    Netlist.Bookshelf.load_aux file
  | Some file, _ ->
    let c = Netlist.Io.load_circuit file in
    (* Fixed cells keep the coordinates stored next to the circuit file
       if present, else the pad ring must be re-derived; the generated
       format keeps pads at their ring positions via a sidecar file. *)
    let side = file ^ ".pos" in
    let p =
      if Sys.file_exists side then
        Netlist.Io.load_placement side ~num_cells:(Netlist.Circuit.num_cells c)
      else Netlist.Placement.create c
    in
    (c, p)
  | None, Some name ->
    let prof = Circuitgen.Profiles.find name in
    let params = Circuitgen.Profiles.params ~scale prof ~seed in
    let c, fixed = Circuitgen.Gen.generate params in
    (c, Circuitgen.Gen.initial_placement c fixed)
  | None, None -> failwith "either --circuit or --profile is required"

(* Returns (hpwl, overlap) so the trace summary can record exactly the
   printed values. *)
let report_metrics c placement ~timing =
  let hpwl = Metrics.Wirelength.hpwl c placement in
  let overlap = Metrics.Overlap.overlap_ratio c placement in
  Printf.printf "cells        %d\n" (Netlist.Circuit.num_cells c);
  Printf.printf "nets         %d\n" (Netlist.Circuit.num_nets c);
  Printf.printf "hpwl         %.6g\n" hpwl;
  Printf.printf "overlap      %.4f\n" overlap;
  Printf.printf "legal        %b\n" (Legalize.Check.is_legal c placement);
  if timing then begin
    let sta = Timing.Sta.analyse Timing.Params.default c placement in
    Printf.printf "longest path %.4g ns\n" (sta.Timing.Sta.max_delay *. 1e9);
    List.iter
      (fun path -> Format.printf "%a" (Timing.Paths.pp_path c) path)
      (Timing.Paths.critical ~k:3 Timing.Params.default c placement)
  end;
  (hpwl, overlap)

let cmd_generate profile scale seed output =
  let prof = Circuitgen.Profiles.find profile in
  let params = Circuitgen.Profiles.params ~scale prof ~seed in
  let c, fixed = Circuitgen.Gen.generate params in
  Netlist.Io.save_circuit output c;
  let p = Circuitgen.Gen.initial_placement c fixed in
  Netlist.Io.save_placement (output ^ ".pos") p;
  Printf.printf "wrote %s (%d cells, %d nets) and %s.pos\n" output
    (Netlist.Circuit.num_cells c) (Netlist.Circuit.num_nets c) output

let cmd_run circuit_file profile scale seed flow mode timing verbose output svg
    domains trace =
  let c, p0 = load_or_generate ~circuit_file ~profile ~scale ~seed in
  let config =
    match mode with
    | "standard" -> Kraftwerk.Config.standard
    | "fast" -> Kraftwerk.Config.fast
    | other -> failwith ("unknown mode: " ^ other)
  in
  let config = { config with Kraftwerk.Config.domains } in
  (* Non-Kraftwerk flows never reach Placer.init; apply the pool size
     here so their kernels (Gordian's QP solves, density maps) see it. *)
  (match domains with
  | Some d -> Numeric.Parallel.set_num_domains d
  | None -> ());
  (* Telemetry: a JSONL sink receiving one record per placement
     transformation (any flow built on Kraftwerk.Placer emits them),
     plus a final summary record written after the printed metrics. *)
  let trace_state =
    match trace with
    | None -> None
    | Some file ->
      let oc = open_out file in
      Obs.Registry.set_enabled true;
      Obs.Registry.reset ();
      let base = Obs.Sink.jsonl oc in
      let iters = ref 0 in
      Obs.Sink.install
        {
          base with
          Obs.Sink.on_iteration =
            (fun r ->
              incr iters;
              base.Obs.Sink.on_iteration r);
        };
      Some (file, oc, iters)
  in
  let t0 = Unix.gettimeofday () in
  let global =
    match flow with
    | "kraftwerk" ->
      if timing then
        (Timing.Driven.optimize config c p0).Timing.Driven.placement
      else begin
        let hooks =
          { Kraftwerk.Placer.no_hooks with
            Kraftwerk.Placer.on_step = Some (log_steps verbose) }
        in
        let state, _ = Kraftwerk.Placer.run ~hooks config c p0 in
        state.Kraftwerk.Placer.placement
      end
    | "multilevel" ->
      (* Fixed positions are whatever the initial placement pins. *)
      let fixed =
        Array.to_list c.Netlist.Circuit.cells
        |> List.filter_map (fun (cl : Netlist.Cell.t) ->
               if cl.Netlist.Cell.fixed then
                 Some
                   (cl.Netlist.Cell.id,
                    (p0.Netlist.Placement.x.(cl.Netlist.Cell.id),
                     p0.Netlist.Placement.y.(cl.Netlist.Cell.id)))
               else None)
      in
      Kraftwerk.Cluster.place_multilevel config c ~fixed_positions:fixed p0
    | "gordian" -> fst (Baselines.Gordian.place c p0)
    | "annealer" ->
      if timing then (Baselines.Timing_sa.place c p0).Baselines.Timing_sa.placement
      else fst (Baselines.Annealer.place c p0)
    | "floorplan" -> (Floorplan.Mixed.place config c p0).Floorplan.Mixed.placement
    | other -> failwith ("unknown flow: " ^ other)
  in
  let final =
    if flow = "floorplan" then global
    else begin
      let rep = Legalize.Abacus.legalize c global () in
      let lp = rep.Legalize.Abacus.placement in
      ignore (Legalize.Improve.run c lp);
      ignore (Legalize.Domino.run c lp);
      lp
    end
  in
  let t1 = Unix.gettimeofday () in
  Printf.printf "flow         %s (%s mode)\n" flow mode;
  Printf.printf "cpu          %.2f s\n" (t1 -. t0);
  let final_hpwl, final_overlap = report_metrics c final ~timing in
  (match trace_state with
  | Some (file, oc, iters) ->
    Obs.Sink.summary
      {
        Obs.Telemetry.iterations = !iters;
        converged = !iters < config.Kraftwerk.Config.max_iterations;
        final_hpwl;
        final_overlap;
        wall_time = t1 -. t0;
        counters = Obs.Registry.snapshot ();
      };
    Obs.Sink.clear ();
    close_out oc;
    Printf.printf "trace        written to %s (%d iteration records)\n" file
      !iters
  | None -> ());
  (match output with
  | Some file ->
    Netlist.Io.save_placement file final;
    Printf.printf "placement    written to %s\n" file
  | None -> ());
  match svg with
  | Some file ->
    Viz.Svg.save file c final;
    Printf.printf "svg          written to %s\n" file
  | None -> ()

let cmd_profiles () =
  Printf.printf "%-12s %8s %8s %6s\n" "profile" "cells" "nets" "rows";
  List.iter
    (fun (p : Circuitgen.Profiles.t) ->
      Printf.printf "%-12s %8d %8d %6d\n" p.Circuitgen.Profiles.profile_name
        p.Circuitgen.Profiles.cells p.Circuitgen.Profiles.nets
        p.Circuitgen.Profiles.rows)
    Circuitgen.Profiles.all

open Cmdliner

let profile_arg =
  Arg.(value & opt (some string) None & info [ "profile" ] ~doc:"Benchmark profile name.")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Shrink factor for quick runs (0,1].")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.")

let generate_cmd =
  let profile =
    Arg.(required & opt (some string) None & info [ "profile" ] ~doc:"Profile name.")
  in
  let output =
    Arg.(value & opt string "circuit.ckt" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a benchmark circuit")
    Term.(const cmd_generate $ profile $ scale_arg $ seed_arg $ output)

let run_cmd =
  let circuit =
    Arg.(value & opt (some string) None & info [ "circuit" ] ~doc:"Circuit file (.ckt text format or Bookshelf .aux).")
  in
  let flow =
    Arg.(value & opt string "kraftwerk"
         & info [ "flow" ] ~doc:"kraftwerk | multilevel | gordian | annealer | floorplan")
  in
  let mode =
    Arg.(value & opt string "standard" & info [ "mode" ] ~doc:"standard | fast")
  in
  let timing = Arg.(value & flag & info [ "timing" ] ~doc:"Timing-driven.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log steps.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Save placement.")
  in
  let svg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~doc:"Render the placement to an SVG file.")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ]
             ~doc:"Domain-pool size for parallel kernels (1 = exact \
                   sequential reproducibility; default: KRAFTWERK_DOMAINS \
                   or the hardware core count).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ]
             ~doc:"Write placement telemetry as JSONL: one record per \
                   placement transformation (HPWL, density overflow, \
                   forces, CG and phase timings) plus a final summary \
                   record.  See HACKING.md, Observability.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Place a circuit and report metrics")
    Term.(const cmd_run $ circuit $ profile_arg $ scale_arg $ seed_arg $ flow
          $ mode $ timing $ verbose $ output $ svg $ domains $ trace)

let profiles_cmd =
  Cmd.v (Cmd.info "profiles" ~doc:"List benchmark profiles")
    Term.(const cmd_profiles $ const ())

let () =
  let doc = "force-directed global placement and floorplanning" in
  exit (Cmd.eval (Cmd.group (Cmd.info "place" ~doc) [ generate_cmd; run_cmd; profiles_cmd ]))
