(* Command-line front end: generate benchmark circuits, run any of the
   placement flows, report quality metrics, and drive the job engine.

   Examples:
     place generate --profile struct --seed 7 -o struct.ckt
     place run --profile biomed --mode standard --timing
     place run --circuit struct.ckt --flow annealer
     place serve --concurrency 2 < commands.jsonl
     place batch jobs.jsonl -o results.jsonl
     place profiles *)

type flow =
  | Flow_kraftwerk
  | Flow_multilevel
  | Flow_gordian
  | Flow_annealer
  | Flow_floorplan

let log_steps verbose (r : Kraftwerk.Placer.step_report) =
  if verbose then
    Printf.eprintf "step %3d  hpwl %.4g  empty %.4g  cg %d\n%!"
      r.Kraftwerk.Placer.step r.Kraftwerk.Placer.hpwl
      r.Kraftwerk.Placer.empty_square_area r.Kraftwerk.Placer.cg_iterations

(* Operational errors — unreadable files, malformed inputs, unknown
   profiles, unreachable servers — exit 2 with one stderr line; no
   backtraces.  (Cmdliner usage errors keep their own exit code.) *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "place: %s\n" msg;
      exit 2)
    fmt

let io_ok = function
  | Ok v -> v
  | Error e -> die "%s" (Netlist.Io.error_message e)

let find_profile name =
  match Circuitgen.Profiles.find name with
  | prof -> prof
  | exception Not_found -> die "unknown profile %S (try: place profiles)" name

let load_or_generate ~circuit_file ~profile ~scale ~seed =
  match (circuit_file, profile) with
  | Some file, _ when Filename.check_suffix file ".aux" -> (
    (* Bookshelf benchmark. *)
    match Netlist.Bookshelf.load_aux file with
    | Ok cp -> cp
    | Error e -> die "%s" (Netlist.Bookshelf.error_message e))
  | Some file, _ ->
    let c = io_ok (Netlist.Io.load_circuit file) in
    (* Fixed cells keep the coordinates stored next to the circuit file
       if present, else the pad ring must be re-derived; the generated
       format keeps pads at their ring positions via a sidecar file. *)
    let side = file ^ ".pos" in
    let p =
      if Sys.file_exists side then
        io_ok
          (Netlist.Io.load_placement side
             ~num_cells:(Netlist.Circuit.num_cells c))
      else Netlist.Placement.create c
    in
    (c, p)
  | None, Some name ->
    let prof = find_profile name in
    let params = Circuitgen.Profiles.params ~scale prof ~seed in
    let c, fixed = Circuitgen.Gen.generate params in
    (c, Circuitgen.Gen.initial_placement c fixed)
  | None, None -> die "either --circuit or --profile is required"

(* Returns (hpwl, overlap) so the trace summary can record exactly the
   printed values. *)
let report_metrics c placement ~timing =
  let hpwl = Metrics.Wirelength.hpwl c placement in
  let overlap = Metrics.Overlap.overlap_ratio c placement in
  Printf.printf "cells        %d\n" (Netlist.Circuit.num_cells c);
  Printf.printf "nets         %d\n" (Netlist.Circuit.num_nets c);
  Printf.printf "hpwl         %.6g\n" hpwl;
  Printf.printf "overlap      %.4f\n" overlap;
  Printf.printf "legal        %b\n" (Legalize.Check.is_legal c placement);
  if timing then begin
    let sta = Timing.Sta.analyse Timing.Params.default c placement in
    Printf.printf "longest path %.4g ns\n" (sta.Timing.Sta.max_delay *. 1e9);
    List.iter
      (fun path -> Format.printf "%a" (Timing.Paths.pp_path c) path)
      (Timing.Paths.critical ~k:3 Timing.Params.default c placement)
  end;
  (hpwl, overlap)

let cmd_generate profile scale seed output =
  let prof = find_profile profile in
  let params = Circuitgen.Profiles.params ~scale prof ~seed in
  let c, fixed = Circuitgen.Gen.generate params in
  Netlist.Io.save_circuit output c;
  let p = Circuitgen.Gen.initial_placement c fixed in
  Netlist.Io.save_placement (output ^ ".pos") p;
  Printf.printf "wrote %s (%d cells, %d nets) and %s.pos\n" output
    (Netlist.Circuit.num_cells c) (Netlist.Circuit.num_nets c) output

let cmd_run circuit_file profile scale seed flow mode effort timing objective
    verbose output svg domains trace =
  let c, p0 = load_or_generate ~circuit_file ~profile ~scale ~seed in
  (* [mode], [effort] and [objective] arrive through Cmdliner enum convs,
     so a bad flag is a usage error with a clean exit code before this
     function runs.  The objective bundles the whole request; --timing
     stays a deprecated alias for --objective timing. *)
  let goal =
    match objective with
    | Some g -> g
    | None ->
      if timing then Engine.Objective.Timing else Engine.Objective.Wirelength
  in
  let timing = goal = Engine.Objective.Timing in
  let obj = Engine.Objective.make ~goal ~mode ?effort () in
  let config = Engine.Objective.config obj in
  let config = { config with Kraftwerk.Config.domains } in
  (* Non-Kraftwerk flows never reach Placer.init; apply the pool size
     here so their kernels (Gordian's QP solves, density maps) see it. *)
  (match domains with
  | Some d -> Numeric.Parallel.set_num_domains d
  | None -> ());
  (* Telemetry: a JSONL sink receiving one record per placement
     transformation (any flow built on Kraftwerk.Placer emits them),
     plus a final summary record written after the printed metrics. *)
  let trace_state =
    match trace with
    | None -> None
    | Some file ->
      let oc = open_out file in
      Obs.Registry.set_enabled true;
      Obs.Registry.reset ();
      let base = Obs.Sink.jsonl oc in
      let iters = ref 0 in
      Obs.Sink.install
        {
          base with
          Obs.Sink.on_iteration =
            (fun r ->
              incr iters;
              base.Obs.Sink.on_iteration r);
        };
      Some (file, oc, iters)
  in
  let t0 = Unix.gettimeofday () in
  let stop_reason = ref None in
  let global =
    match flow with
    | Flow_kraftwerk ->
      if timing then
        (Timing.Driven.optimize config c p0).Timing.Driven.placement
      else begin
        let hooks =
          { Kraftwerk.Placer.no_hooks with
            Kraftwerk.Placer.on_step = Some (log_steps verbose) }
        in
        let state, _ = Kraftwerk.Placer.run ~hooks config c p0 in
        stop_reason :=
          Option.map Kraftwerk.Controller.reason_to_string
            (Kraftwerk.Placer.stop_reason state);
        state.Kraftwerk.Placer.placement
      end
    | Flow_multilevel ->
      (* Fixed positions are whatever the initial placement pins. *)
      let fixed =
        Array.to_list c.Netlist.Circuit.cells
        |> List.filter_map (fun (cl : Netlist.Cell.t) ->
               if cl.Netlist.Cell.fixed then
                 Some
                   (cl.Netlist.Cell.id,
                    (p0.Netlist.Placement.x.(cl.Netlist.Cell.id),
                     p0.Netlist.Placement.y.(cl.Netlist.Cell.id)))
               else None)
      in
      Kraftwerk.Cluster.place_multilevel config c ~fixed_positions:fixed p0
    | Flow_gordian -> fst (Baselines.Gordian.place c p0)
    | Flow_annealer ->
      if timing then (Baselines.Timing_sa.place c p0).Baselines.Timing_sa.placement
      else fst (Baselines.Annealer.place c p0)
    | Flow_floorplan -> (Floorplan.Mixed.place config c p0).Floorplan.Mixed.placement
  in
  let final, passes =
    if flow = Flow_floorplan then (global, None)
    else begin
      let rep = Legalize.Abacus.legalize c global () in
      let lp = rep.Legalize.Abacus.placement in
      let improve_moves, improve_delta = Legalize.Improve.run c lp in
      let domino_moves, domino_delta = Legalize.Domino.run c lp in
      (lp, Some (improve_moves, improve_delta, domino_moves, domino_delta))
    end
  in
  let t1 = Unix.gettimeofday () in
  let flow_name =
    match flow with
    | Flow_kraftwerk -> "kraftwerk"
    | Flow_multilevel -> "multilevel"
    | Flow_gordian -> "gordian"
    | Flow_annealer -> "annealer"
    | Flow_floorplan -> "floorplan"
  in
  Printf.printf "flow         %s (%s mode, %s objective)\n" flow_name
    (Engine.Job.mode_to_string mode)
    (Engine.Objective.goal_to_string goal);
  Printf.printf "cpu          %.2f s\n" (t1 -. t0);
  (match passes with
  | Some (im, idelta, dm, ddelta) ->
    Printf.printf "improve      %d moves, hpwl -%.6g\n" im idelta;
    Printf.printf "domino       %d moves, hpwl -%.6g\n" dm ddelta
  | None -> ());
  let final_hpwl, final_overlap = report_metrics c final ~timing in
  (* Routability runs are validated with the actual global router, on
     the same grid spec the in-loop estimator used. *)
  (if Engine.Objective.routed_validation obj && flow <> Flow_floorplan then
     let gspec = Kraftwerk.Placer.route_spec config c in
     match Route.Grouter.route c final gspec with
     | Ok r ->
       Printf.printf "routed ovfl  %.6g (max %.6g)\n"
         r.Route.Grouter.total_overflow r.Route.Grouter.max_overflow;
       Printf.printf "routed wl    %.6g\n" r.Route.Grouter.total_wirelength
     | Error e ->
       Printf.printf "routed ovfl  unavailable (%s)\n"
         (Route.Grid_spec.error_message e));
  (match trace_state with
  | Some (file, oc, iters) ->
    Obs.Sink.summary
      {
        Obs.Telemetry.iterations = !iters;
        converged = !iters < config.Kraftwerk.Config.max_iterations;
        final_hpwl;
        final_overlap;
        wall_time = t1 -. t0;
        stop_reason = !stop_reason;
        counters = Obs.Registry.snapshot ();
      };
    Obs.Sink.clear ();
    close_out oc;
    Printf.printf "trace        written to %s (%d iteration records)\n" file
      !iters
  | None -> ());
  (match output with
  | Some file ->
    Netlist.Io.save_placement file final;
    Printf.printf "placement    written to %s\n" file
  | None -> ());
  match svg with
  | Some file ->
    Viz.Svg.save file c final;
    Printf.printf "svg          written to %s\n" file
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Job engine front ends                                               *)

let parse_address s =
  match Server.Address.of_string s with
  | Ok addr -> addr
  | Error msg -> die "%s" msg

(* [place serve]: the line-oriented JSON protocol (see Engine.Protocol).
   Without --listen it runs synchronously on stdin/stdout; with --listen
   it becomes the concurrent socket server (Server.Net), multiplexing
   many clients onto one scheduler with admission control and graceful
   drain.  --transcript copies the whole conversation to a file. *)
(* --shards defaults from --domains: asking for a multi-lane budget on
   the job engine means asking for worker domains, one per lane up to
   the concurrency (a shard without a runnable job would idle).
   --shards 0 forces the inline cooperative scheduler either way. *)
let resolve_shards ~shards ~concurrency ~domains =
  match shards with
  | Some s -> s
  | None -> (
    match domains with Some d when d > 1 -> min concurrency d | _ -> 0)

let cmd_serve concurrency domains shards transcript listen proto max_pending
    max_conns request_timeout idle_timeout drain_grace =
  (match domains with
  | Some d -> Numeric.Parallel.set_num_domains d
  | None -> ());
  let shards = resolve_shards ~shards ~concurrency ~domains in
  match listen with
  | Some addr_str -> (
    let address = parse_address addr_str in
    let cfg =
      {
        (Server.Net.config address) with
        Server.Net.concurrency;
        domains;
        shards;
        max_pending;
        max_conns;
        request_timeout_s = request_timeout;
        idle_timeout_s = idle_timeout;
        drain_grace_s = drain_grace;
        proto;
        transcript;
      }
    in
    match Server.Net.run cfg with Ok () -> () | Error msg -> die "%s" msg)
  | None ->
    let transcript_oc = Option.map open_out transcript in
    let echo line =
      match transcript_oc with
      | Some oc ->
        output_string oc line;
        output_char oc '\n';
        flush oc
      | None -> ()
    in
    let ev = ref 0 in
    let emit_event e =
      let ev =
        match proto with
        | Engine.Protocol.V2 | Engine.Protocol.V3 ->
          incr ev;
          Some !ev
        | Engine.Protocol.V1 -> None
      in
      let line = Obs.Json.to_string (Engine.Protocol.event_to_json ?ev e) in
      print_string line;
      print_newline ();
      flush stdout;
      echo line
    in
    let sched =
      Engine.Scheduler.create ~concurrency ?domains ~shards
        ~on_event:emit_event ()
    in
    Engine.Protocol.serve ~proto ~echo sched stdin stdout;
    Option.iter close_out transcript_oc

(* ------------------------------------------------------------------ *)
(* Network client commands                                              *)

let client_connect to_addr =
  match Server.Client.connect ~retries:8 (parse_address to_addr) with
  | Ok cl -> cl
  | Error msg -> die "%s" msg

let client_ok = function
  | Ok v -> v
  | Error f -> die "%s" (Server.Client.failure_message f)

(* [place submit]: ship one job to a running server; with --wait, park
   until it is terminal and print its result line.  Exit 1 when the
   awaited job failed, 2 on operational errors. *)
let cmd_submit to_addr circuit_file profile scale seed mode flow effort timing
    objective priority deadline max_steps wait =
  let source =
    match (circuit_file, profile) with
    | Some file, _ -> Engine.Source.File file
    | None, Some name -> Engine.Source.Profile { name; scale; seed }
    | None, None -> die "either --circuit or --profile is required"
  in
  let goal =
    match objective with
    | Some g -> g
    | None ->
      if timing then Engine.Objective.Timing else Engine.Objective.Wirelength
  in
  let spec =
    Engine.Job.spec ~source
      ~objective:(Engine.Objective.make ~goal ~mode ?effort ~flow ())
      ~priority ?deadline ?max_steps ()
  in
  let cl = client_connect to_addr in
  let id = client_ok (Server.Client.submit cl spec) in
  if not wait then begin
    Printf.printf "{\"id\":%d,\"status\":\"queued\"}\n%!" id;
    Server.Client.close cl
  end
  else begin
    let status, result = client_ok (Server.Client.wait cl id) in
    let fields =
      [
        ("id", Obs.Json.Num (float_of_int id));
        ("status", Obs.Json.Str status);
      ]
      @ match result with Some r -> [ ("result", r) ] | None -> []
    in
    print_endline (Obs.Json.to_string (Obs.Json.Obj fields));
    Server.Client.close cl;
    if status = "failed" then exit 1
  end

(* [place watch]: stream a server's numbered event lines to stdout,
   reconnecting and resuming from the last seen event on transport
   failure.  Ends cleanly when the server goes away for good. *)
let cmd_watch to_addr from_ev =
  let cl = client_connect to_addr in
  client_ok (Server.Client.subscribe ?from_ev cl);
  let rec loop () =
    match Server.Client.next_event ~timeout_s:1.0 cl with
    | Ok None -> loop ()
    | Ok (Some ev) ->
      print_endline (Obs.Json.to_string ev);
      flush stdout;
      loop ()
    | Error (Server.Client.Transport _) ->
      (* The server drained and exited; a watcher ending with it is the
         normal end of the stream, not an error. *)
      Printf.eprintf "place: server closed the event stream\n"
    | Error f -> die "%s" (Server.Client.failure_message f)
  in
  loop ();
  Server.Client.close cl

(* [place metrics]: one-shot dump of a running server's Obs.Registry. *)
let cmd_metrics to_addr =
  let cl = client_connect to_addr in
  let fields = client_ok (Server.Client.metrics cl) in
  print_endline (Obs.Json.to_string (Obs.Json.Obj fields));
  Server.Client.close cl

(* [place batch]: submit every job spec of a JSONL file, run them all,
   and write one result line per job (submission order). *)
let cmd_batch jobs_file concurrency domains shards output =
  (match domains with
  | Some d -> Numeric.Parallel.set_num_domains d
  | None -> ());
  let shards = resolve_shards ~shards ~concurrency ~domains in
  let specs =
    In_channel.with_open_text jobs_file (fun ic ->
        let rec read acc lineno =
          match In_channel.input_line ic with
          | None -> List.rev acc
          | Some line when String.trim line = "" -> read acc (lineno + 1)
          | Some line -> (
            match Obs.Json.of_string line with
            | Error msg ->
              Printf.eprintf "%s:%d: bad JSON: %s\n" jobs_file lineno msg;
              exit 1
            | Ok v -> (
              match Engine.Job.spec_of_json v with
              | Error msg ->
                Printf.eprintf "%s:%d: %s\n" jobs_file lineno msg;
                exit 1
              | Ok spec -> read (spec :: acc) (lineno + 1)))
        in
        read [] 1)
  in
  if specs = [] then begin
    Printf.eprintf "%s: no job specs\n" jobs_file;
    exit 1
  end;
  let sched = Engine.Scheduler.create ~concurrency ?domains ~shards () in
  let ids = List.map (fun spec -> (Engine.Scheduler.submit sched spec, spec)) specs in
  Engine.Scheduler.drain sched;
  Engine.Scheduler.stop sched;
  let oc = match output with Some f -> open_out f | None -> stdout in
  let failed = ref false in
  List.iter
    (fun (id, spec) ->
      let result =
        match Engine.Scheduler.result sched id with
        | Some r ->
          (match r.Engine.Job.status with
          | Engine.Job.Failed _ -> failed := true
          | _ -> ());
          Engine.Job.result_to_json r
        | None ->
          failed := true;
          Obs.Json.Obj [ ("status", Obs.Json.Str "lost") ]
      in
      output_string oc
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("id", Obs.Json.Num (float_of_int id));
                ("source", Obs.Json.Str (Engine.Source.describe spec.Engine.Job.source));
                ("result", result);
              ]));
      output_char oc '\n')
    ids;
  if output <> None then close_out oc;
  if !failed then exit 1

let cmd_profiles () =
  Printf.printf "%-12s %8s %8s %6s\n" "profile" "cells" "nets" "rows";
  List.iter
    (fun (p : Circuitgen.Profiles.t) ->
      Printf.printf "%-12s %8d %8d %6d\n" p.Circuitgen.Profiles.profile_name
        p.Circuitgen.Profiles.cells p.Circuitgen.Profiles.nets
        p.Circuitgen.Profiles.rows)
    Circuitgen.Profiles.all

open Cmdliner

let profile_arg =
  Arg.(value & opt (some string) None & info [ "profile" ] ~doc:"Benchmark profile name.")

let mode_arg =
  Arg.(value
       & opt (enum [ ("standard", Engine.Job.Standard); ("fast", Engine.Job.Fast) ])
           Engine.Job.Standard
       & info [ "mode" ] ~doc:"$(docv) is either standard or fast.")

let objective_arg =
  Arg.(value
       & opt
           (some
              (enum
                 [
                   ("wirelength", Engine.Objective.Wirelength);
                   ("routability", Engine.Objective.Routability);
                   ("timing", Engine.Objective.Timing);
                 ]))
           None
       & info [ "objective" ]
           ~doc:"What the run optimises for: wirelength (the default \
                 area-driven placement), routability (the closed \
                 congestion loop plus routed-overflow validation with \
                 the global router), or timing (slack-driven net \
                 reweighting).  Supersedes the deprecated --timing flag.")

let effort_arg =
  (* An enum rather than a bare int: a bad value is a usage error listing
     the valid presets, and the doc string enumerates them. *)
  let presets = List.init 9 (fun i -> (string_of_int (i + 1), i + 1)) in
  Arg.(value
       & opt (some (enum presets)) None
       & info [ "effort" ]
           ~doc:"Quality-vs-latency preset, $(docv) in 1..9: bundles CG \
                 tolerance, density-grid size, legalization cadence and \
                 the LB/UB stop gap (5 = standard).  Overrides --mode.")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Shrink factor for quick runs (0,1].")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.")

let generate_cmd =
  let profile =
    Arg.(required & opt (some string) None & info [ "profile" ] ~doc:"Profile name.")
  in
  let output =
    Arg.(value & opt string "circuit.ckt" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a benchmark circuit")
    Term.(const cmd_generate $ profile $ scale_arg $ seed_arg $ output)

let run_cmd =
  let circuit =
    Arg.(value & opt (some string) None & info [ "circuit" ] ~doc:"Circuit file (.ckt text format or Bookshelf .aux).")
  in
  let flow =
    (* enum convs: an unknown name is a usage error (exit 124), not a
       backtrace. *)
    Arg.(value
         & opt
             (enum
                [
                  ("kraftwerk", Flow_kraftwerk);
                  ("multilevel", Flow_multilevel);
                  ("gordian", Flow_gordian);
                  ("annealer", Flow_annealer);
                  ("floorplan", Flow_floorplan);
                ])
             Flow_kraftwerk
         & info [ "flow" ] ~doc:"$(docv) is one of kraftwerk, multilevel, \
                                 gordian, annealer or floorplan.")
  in
  let mode = mode_arg in
  let timing =
    Arg.(value & flag
         & info [ "timing" ]
             ~doc:"Timing-driven (deprecated alias for --objective timing).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log steps.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Save placement.")
  in
  let svg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~doc:"Render the placement to an SVG file.")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ]
             ~doc:"Domain-pool size for parallel kernels (1 = exact \
                   sequential reproducibility; default: KRAFTWERK_DOMAINS \
                   or the hardware core count).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ]
             ~doc:"Write placement telemetry as JSONL: one record per \
                   placement transformation (HPWL, density overflow, \
                   forces, CG and phase timings) plus a final summary \
                   record.  See HACKING.md, Observability.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Place a circuit and report metrics")
    Term.(const cmd_run $ circuit $ profile_arg $ scale_arg $ seed_arg $ flow
          $ mode $ effort_arg $ timing $ objective_arg $ verbose $ output
          $ svg $ domains $ trace)

let profiles_cmd =
  Cmd.v (Cmd.info "profiles" ~doc:"List benchmark profiles")
    Term.(const cmd_profiles $ const ())

let concurrency_arg =
  Arg.(value & opt int 1
       & info [ "concurrency" ]
           ~doc:"Jobs interleaved at once (transformation granularity).")

let engine_domains_arg =
  Arg.(value & opt (some int) None
       & info [ "domains" ]
           ~doc:"Domain-pool lanes split between concurrent jobs \
                 (default: KRAFTWERK_DOMAINS or the hardware core count).")

let shards_arg =
  Arg.(value & opt (some int) None
       & info [ "shards" ]
           ~doc:"Worker domains executing job slices, each owning a run \
                 queue with work stealing (default: min(concurrency, \
                 domains) when --domains exceeds 1, else 0).  0 runs the \
                 inline cooperative scheduler.  Job trajectories are \
                 bitwise-identical for every value.")

let proto_arg =
  Arg.(value
       & opt
           (enum
              [
                ("v1", Engine.Protocol.V1);
                ("v2", Engine.Protocol.V2);
                ("v3", Engine.Protocol.V3);
              ])
           Engine.Protocol.V2
       & info [ "proto" ]
           ~doc:"Protocol version rendered in responses and events: v3 \
                 (v2 plus the resolved job objective echoed on submit), \
                 v2 (seq echo, structured error codes, numbered events) \
                 or v1 (the legacy shapes).  Older requests are accepted \
                 under any version.")

let serve_cmd =
  let transcript =
    Arg.(value & opt (some string) None
         & info [ "transcript" ]
             ~doc:"Copy every protocol request/response/event line to a \
                   JSONL file.")
  in
  let listen =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Serve concurrent clients on a socket instead of \
                   stdin/stdout: unix:/path (or any path with a '/'), \
                   tcp:host:port, host:port, or a bare port on \
                   127.0.0.1.")
  in
  let max_pending =
    Arg.(value & opt int 64
         & info [ "max-pending" ]
             ~doc:"Admission bound: submits beyond this many queued jobs \
                   receive a typed overloaded error with a retry hint \
                   (socket mode).")
  in
  let max_conns =
    Arg.(value & opt int 128
         & info [ "max-conns" ]
             ~doc:"Connection bound; excess connections are refused with \
                   an error line, never dropped silently (socket mode).")
  in
  let request_timeout =
    Arg.(value & opt float 300.
         & info [ "request-timeout" ]
             ~doc:"Seconds a wait/drain request may stay parked before it \
                   is answered with a not_terminal error (socket mode).")
  in
  let idle_timeout =
    Arg.(value & opt float 0.
         & info [ "idle-timeout" ]
             ~doc:"Close connections idle this many seconds with nothing \
                   outstanding; 0 disables (socket mode).")
  in
  let drain_grace =
    Arg.(value & opt float 30.
         & info [ "drain-grace" ]
             ~doc:"On SIGTERM/SIGINT/shutdown, seconds to let in-flight \
                   jobs finish before they are cancelled down to legal \
                   best-so-far placements (socket mode).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the placement job engine on a JSON protocol: \
             stdin/stdout by default, a concurrent Unix-domain or TCP \
             socket server with --listen (submit, status, cancel, \
             result, wait, metrics, subscribe, shutdown — see \
             HACKING.md, Network serving)")
    Term.(const cmd_serve $ concurrency_arg $ engine_domains_arg $ shards_arg
          $ transcript $ listen $ proto_arg $ max_pending $ max_conns
          $ request_timeout $ idle_timeout $ drain_grace)

let to_arg =
  Arg.(required & opt (some string) None
       & info [ "to" ] ~docv:"ADDR"
           ~doc:"Server address: unix:/path, tcp:host:port, host:port or \
                 a bare port on 127.0.0.1.")

let submit_cmd =
  let circuit =
    Arg.(value & opt (some string) None
         & info [ "circuit" ]
             ~doc:"Circuit file (.ckt or Bookshelf .aux) the server can \
                   read.")
  in
  let priority =
    Arg.(value & opt int 0
         & info [ "priority" ] ~doc:"Higher runs first; FIFO within one.")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ]
             ~doc:"Wall-clock budget in seconds; on expiry the job \
                   returns its best-so-far placement, legalised.")
  in
  let max_steps =
    Arg.(value & opt (some int) None
         & info [ "max-steps" ] ~doc:"Cap on placer iterations.")
  in
  let timing =
    Arg.(value & flag
         & info [ "timing" ]
             ~doc:"Timing-driven placement (deprecated alias for \
                   --objective timing).")
  in
  let wait =
    Arg.(value & flag
         & info [ "wait" ]
             ~doc:"Park until the job is terminal and print its result \
                   line; exit 1 if it failed.")
  in
  let job_flow =
    Arg.(value
         & opt
             (enum
                [
                  ("flat", Engine.Job.Flat);
                  ("multilevel", Engine.Job.Multilevel);
                ])
             Engine.Job.Flat
         & info [ "flow" ]
             ~doc:"$(docv) is flat (one controller-driven loop) or \
                   multilevel (recursive cluster → place coarse → \
                   uncluster + refine V-cycle; the scale-up path for \
                   mega profiles).")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit one placement job to a running place serve --listen \
             server; prints a JSON line with the job id (and, with \
             --wait, the result)")
    Term.(const cmd_submit $ to_arg $ circuit $ profile_arg $ scale_arg
          $ seed_arg $ mode_arg $ job_flow $ effort_arg $ timing
          $ objective_arg $ priority $ deadline $ max_steps $ wait)

let watch_cmd =
  let from_ev =
    Arg.(value & opt (some int) None
         & info [ "from-ev" ]
             ~doc:"Replay buffered events after this number before \
                   streaming live ones.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Stream a server's job lifecycle events as JSONL, \
             reconnecting and resuming from the last seen event number \
             on transport failure")
    Term.(const cmd_watch $ to_arg $ from_ev)

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Dump a running server's metric registry as one JSON object")
    Term.(const cmd_metrics $ to_arg)

let batch_cmd =
  let jobs_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"JOBS.jsonl" ~doc:"One job spec (JSON object) per line.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Write results JSONL here (default stdout).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run a file of job specs through the engine and report one \
             result line per job; exits nonzero when any job failed")
    Term.(const cmd_batch $ jobs_file $ concurrency_arg $ engine_domains_arg
          $ shards_arg $ output)

let () =
  let doc = "force-directed global placement and floorplanning" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "place" ~doc)
          [
            generate_cmd;
            run_cmd;
            serve_cmd;
            submit_cmd;
            watch_cmd;
            metrics_cmd;
            batch_cmd;
            profiles_cmd;
          ]))
