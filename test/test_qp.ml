(* Tests for the quadratic-placement formulation: net models, system
   assembly, solving, and the force-equilibrium semantics of eq. (3). *)

let approx = Alcotest.float 1e-6

let pin ?(dx = 0.) ?(dy = 0.) c = { Netlist.Net.cell = c; dx; dy }

let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:100. ~y_hi:100.

(* --- Model: clique expansion --- *)

let test_clique_edge_count_and_weight () =
  let net = Netlist.Net.make ~id:0 ~name:"n" (Array.init 5 (fun i -> pin i)) in
  let edges = Qp.Model.edges net in
  Alcotest.(check int) "k(k-1)/2 edges" 10 (List.length edges);
  List.iter
    (fun (e : Qp.Model.edge) ->
      Alcotest.check approx "weight 1/k" 0.2 e.Qp.Model.weight)
    edges

let test_clique_total_weight () =
  let net = Netlist.Net.make ~id:0 ~name:"n" (Array.init 7 (fun i -> pin i)) in
  let total =
    List.fold_left (fun acc (e : Qp.Model.edge) -> acc +. e.Qp.Model.weight) 0.
      (Qp.Model.edges net)
  in
  Alcotest.check approx "(k-1)/2" (Qp.Model.total_weight 7) total

let test_capped_net_preserves_total_weight () =
  let net = Netlist.Net.make ~id:0 ~name:"big" (Array.init 40 (fun i -> pin i)) in
  let edges = Qp.Model.edges ~cap:16 net in
  let total =
    List.fold_left (fun acc (e : Qp.Model.edge) -> acc +. e.Qp.Model.weight) 0. edges
  in
  Alcotest.check approx "total preserved" (Qp.Model.total_weight 40) total;
  Alcotest.(check bool) "far fewer than clique" true
    (List.length edges < 40 * 39 / 2)

let test_capped_net_connected () =
  let net = Netlist.Net.make ~id:0 ~name:"big" (Array.init 50 (fun i -> pin i)) in
  let edges = Qp.Model.edges ~cap:16 net in
  (* Union-find connectivity over the 50 pins. *)
  let parent = Array.init 50 Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  List.iter
    (fun (e : Qp.Model.edge) ->
      let a = find e.Qp.Model.pin_a.Netlist.Net.cell in
      let b = find e.Qp.Model.pin_b.Netlist.Net.cell in
      if a <> b then parent.(a) <- b)
    edges;
  let root = find 0 in
  for i = 1 to 49 do
    Alcotest.(check int) (Printf.sprintf "pin %d connected" i) root (find i)
  done

(* --- System assembly and solve --- *)

let two_cell_circuit () =
  (* One movable cell between two fixed cells at x = 0 and x = 100. *)
  let cells =
    [|
      Netlist.Cell.make ~id:0 ~name:"m" ~width:4. ~height:4. ();
      Netlist.Cell.make ~id:1 ~name:"f0" ~width:4. ~height:4. ~fixed:true ();
      Netlist.Cell.make ~id:2 ~name:"f1" ~width:4. ~height:4. ~fixed:true ();
    |]
  in
  let nets =
    [|
      Netlist.Net.make ~id:0 ~name:"a" [| pin 1; pin 0 |];
      Netlist.Net.make ~id:1 ~name:"b" [| pin 0; pin 2 |];
    |]
  in
  Netlist.Circuit.make ~name:"spring" ~cells ~nets ~region ~row_height:4.

let solve_system ?hold ?net_weights circuit placement =
  let net_weights =
    match net_weights with
    | Some w -> w
    | None -> Array.make (Netlist.Circuit.num_nets circuit) 1.
  in
  let system =
    Qp.System.build circuit ~placement ~net_weights
      ~edge_scale:Qp.Weights.quadratic ?hold ()
  in
  let n = Qp.System.num_movable system in
  let stats =
    Qp.System.solve system ~placement ~ex:(Array.make n 0.) ~ey:(Array.make n 0.)
  in
  (system, stats)

let test_equal_springs_settle_midway () =
  let c = two_cell_circuit () in
  let p =
    { Netlist.Placement.x = [| 50.; 0.; 100. |]; y = [| 50.; 40.; 60. |] }
  in
  ignore (solve_system c p);
  Alcotest.check approx "x midway" 50. p.Netlist.Placement.x.(0);
  Alcotest.check approx "y midway" 50. p.Netlist.Placement.y.(0)

let test_weighted_spring_pulls_harder () =
  let c = two_cell_circuit () in
  let p =
    { Netlist.Placement.x = [| 50.; 0.; 100. |]; y = [| 50.; 50.; 50. |] }
  in
  (* Net b (to the right fixed cell) three times heavier: equilibrium at
     w0·x = w1·(100−x) → x = 75. *)
  ignore (solve_system ~net_weights:[| 1.; 3. |] c p);
  (* The tiny positive-definiteness anchor shifts the equilibrium by
     O(anchor_weight): allow that slack. *)
  Alcotest.check (Alcotest.float 1e-3) "x weighted" 75. p.Netlist.Placement.x.(0)

let test_pin_offsets_shift_equilibrium () =
  let cells =
    [|
      Netlist.Cell.make ~id:0 ~name:"m" ~width:4. ~height:4. ();
      Netlist.Cell.make ~id:1 ~name:"f" ~width:4. ~height:4. ~fixed:true ();
    |]
  in
  (* The movable cell's pin sits at +2 from its centre; connecting it to
     a fixed pin at x = 50 must place the cell centre at 48. *)
  let nets =
    [| Netlist.Net.make ~id:0 ~name:"n" [| pin ~dx:2. 0; pin 1 |] |]
  in
  let c = Netlist.Circuit.make ~name:"off" ~cells ~nets ~region ~row_height:4. in
  let p = { Netlist.Placement.x = [| 0.; 50. |]; y = [| 0.; 50. |] } in
  ignore (solve_system c p);
  Alcotest.check (Alcotest.float 1e-3) "offset corrected" 48. p.Netlist.Placement.x.(0)

let test_matrix_symmetric_positive_diagonal () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:2)
  in
  let p = Circuitgen.Gen.initial_placement circuit pads in
  let weights = Array.make (Netlist.Circuit.num_nets circuit) 1. in
  let system =
    Qp.System.build circuit ~placement:p ~net_weights:weights
      ~edge_scale:Qp.Weights.quadratic ()
  in
  let m = Qp.System.matrix system in
  Alcotest.(check bool) "symmetric" true (Numeric.Sparse.is_symmetric ~tol:1e-9 m);
  let d = Numeric.Sparse.diagonal m in
  Array.iteri
    (fun i v -> Alcotest.(check bool) (Printf.sprintf "diag %d > 0" i) true (v > 0.))
    d

let test_residual_zero_at_equilibrium () =
  let c = two_cell_circuit () in
  let p =
    { Netlist.Placement.x = [| 10.; 0.; 100. |]; y = [| 10.; 40.; 60. |] }
  in
  let system, _ = solve_system c p in
  let res =
    Qp.System.residual_force system ~placement:p ~ex:[| 0. |] ~ey:[| 0. |]
  in
  Alcotest.(check bool) "residual ~ 0" true (res < 1e-6)

let test_additional_force_shifts_solution () =
  let c = two_cell_circuit () in
  let p =
    { Netlist.Placement.x = [| 50.; 0.; 100. |]; y = [| 50.; 50.; 50. |] }
  in
  let weights = Array.make 2 1. in
  let system =
    Qp.System.build c ~placement:p ~net_weights:weights
      ~edge_scale:Qp.Weights.quadratic ()
  in
  (* Both springs have weight 1/2; total stiffness 1.  A constant force
     e = +1 shifts the equilibrium to x = 50 − e/k_total ≈ 49 (modulo the
     tiny anchor spring). *)
  ignore (Qp.System.solve system ~placement:p ~ex:[| 1. |] ~ey:[| 0. |]);
  Alcotest.(check bool) "moved left" true (p.Netlist.Placement.x.(0) < 49.5);
  Alcotest.(check bool) "by about e/k" true
    (Float.abs (p.Netlist.Placement.x.(0) -. 49.) < 0.1)

let test_hold_springs_damp_movement () =
  let c = two_cell_circuit () in
  (* Start off-equilibrium at x = 10; without hold the solve jumps to 50,
     with hold = 1 it only goes part way. *)
  let p_free =
    { Netlist.Placement.x = [| 10.; 0.; 100. |]; y = [| 50.; 50.; 50. |] }
  in
  ignore (solve_system c p_free);
  let p_held =
    { Netlist.Placement.x = [| 10.; 0.; 100. |]; y = [| 50.; 50.; 50. |] }
  in
  ignore (solve_system ~hold:1.0 c p_held);
  Alcotest.check approx "free jumps to optimum" 50. p_free.Netlist.Placement.x.(0);
  Alcotest.(check bool) "held lands between" true
    (p_held.Netlist.Placement.x.(0) > 11. && p_held.Netlist.Placement.x.(0) < 49.)

let test_hold_at_targets () =
  let c = two_cell_circuit () in
  let p = { Netlist.Placement.x = [| 50.; 0.; 100. |]; y = [| 50.; 50.; 50. |] } in
  let targets =
    { Netlist.Placement.x = [| 90.; 0.; 100. |]; y = [| 50.; 50.; 50. |] }
  in
  let weights = Array.make 2 1. in
  let system =
    Qp.System.build c ~placement:p ~net_weights:weights
      ~edge_scale:Qp.Weights.quadratic ~hold:5. ~hold_at:targets ()
  in
  ignore (Qp.System.solve system ~placement:p ~ex:[| 0. |] ~ey:[| 0. |]);
  Alcotest.(check bool) "pulled toward target" true (p.Netlist.Placement.x.(0) > 70.)

let test_index_map () =
  let c = two_cell_circuit () in
  let var_of_cell, n = Qp.System.index_map c in
  Alcotest.(check int) "one movable" 1 n;
  Alcotest.(check int) "cell 0 is var 0" 0 var_of_cell.(0);
  Alcotest.(check int) "fixed has no var" (-1) var_of_cell.(1)

let test_weights_module () =
  Alcotest.check approx "quadratic" 1. (Qp.Weights.quadratic ~dist:123.);
  Alcotest.check approx "linearize" 0.1 (Qp.Weights.linearize ~eps:1. ~dist:10.);
  Alcotest.check approx "linearize clamped" 1. (Qp.Weights.linearize ~eps:1. ~dist:0.);
  Alcotest.check approx "default eps" 0.2 (Qp.Weights.default_eps region)

let prop_solution_is_minimum =
  (* Perturbing the solved placement can only increase the quadratic
     objective (the solution of eq. (2) is the global optimum). *)
  QCheck.Test.make ~name:"QP solution minimises quadratic wirelength"
    QCheck.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (ddx, ddy) ->
      QCheck.assume (Float.abs ddx > 0.01 || Float.abs ddy > 0.01);
      let c = two_cell_circuit () in
      let p = { Netlist.Placement.x = [| 7.; 0.; 100. |]; y = [| 3.; 40.; 60. |] } in
      ignore (solve_system c p);
      let base = Metrics.Wirelength.quadratic c p in
      let q = Netlist.Placement.copy p in
      q.Netlist.Placement.x.(0) <- q.Netlist.Placement.x.(0) +. ddx;
      q.Netlist.Placement.y.(0) <- q.Netlist.Placement.y.(0) +. ddy;
      Metrics.Wirelength.quadratic c q >= base -. 1e-9)

(* --- cached assembly: rebuild ≡ from-scratch build -------------------- *)

let bits_equal_arr a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let bits_equal_mat a b =
  let da = Numeric.Sparse.to_dense a and db = Numeric.Sparse.to_dense b in
  Array.length da = Array.length db && Array.for_all2 bits_equal_arr da db

let test_rebuild_matches_build () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:5)
  in
  let p0 = Circuitgen.Gen.initial_placement circuit pads in
  let nw = Array.make (Netlist.Circuit.num_nets circuit) 1. in
  let r = circuit.Netlist.Circuit.region in
  let random_placement seed =
    let p = Netlist.Placement.copy p0 in
    let rng = Numeric.Rng.create seed in
    Array.iter
      (fun (cl : Netlist.Cell.t) ->
        if Netlist.Cell.movable cl then begin
          p.Netlist.Placement.x.(cl.Netlist.Cell.id) <-
            Numeric.Rng.uniform rng r.Geometry.Rect.x_lo r.Geometry.Rect.x_hi;
          p.Netlist.Placement.y.(cl.Netlist.Cell.id) <-
            Numeric.Rng.uniform rng r.Geometry.Rect.y_lo r.Geometry.Rect.y_hi
        end)
      circuit.Netlist.Circuit.cells;
    p
  in
  Fun.protect
    ~finally:(fun () -> Numeric.Parallel.set_num_domains 1)
    (fun () ->
      List.iter
        (fun domains ->
          Numeric.Parallel.set_num_domains domains;
          List.iter
            (fun (model, mname) ->
              let asm = Qp.System.assembly circuit ~model () in
              List.iter
                (fun seed ->
                  let name part =
                    Printf.sprintf "%s/%s d=%d seed=%d" mname part domains seed
                  in
                  let p = random_placement seed in
                  let fresh =
                    Qp.System.build circuit ~placement:p ~net_weights:nw
                      ~edge_scale:Qp.Weights.quadratic ~model ()
                  in
                  let cached =
                    Qp.System.rebuild asm ~placement:p ~net_weights:nw
                      ~edge_scale:Qp.Weights.quadratic ()
                  in
                  Alcotest.(check bool) (name "matrix") true
                    (bits_equal_mat (Qp.System.matrix fresh)
                       (Qp.System.matrix cached));
                  let zeros = Array.make (Qp.System.num_movable fresh) 0. in
                  let pf = Netlist.Placement.copy p
                  and pc = Netlist.Placement.copy p in
                  ignore
                    (Qp.System.solve fresh ~placement:pf ~ex:zeros ~ey:zeros);
                  ignore
                    (Qp.System.solve cached ~placement:pc ~ex:zeros ~ey:zeros);
                  Alcotest.(check bool) (name "solution x") true
                    (bits_equal_arr pf.Netlist.Placement.x
                       pc.Netlist.Placement.x);
                  Alcotest.(check bool) (name "solution y") true
                    (bits_equal_arr pf.Netlist.Placement.y
                       pc.Netlist.Placement.y))
                [ 3; 4; 5 ];
              let reused, rebuilds = Qp.System.assembly_stats asm in
              Alcotest.(check int)
                (mname ^ " rebuild passes accounted") 3 (reused + rebuilds);
              if model = Qp.System.Clique then
                (* Clique structure never drifts: only the first pass may
                   compile, the rest must take the refill path. *)
                Alcotest.(check int) "clique compiles once" 1 rebuilds)
            [ (Qp.System.Clique, "clique"); (Qp.System.Bound2bound, "b2b") ])
        [ 1; 2; 4 ])

let suite =
  [
    Alcotest.test_case "clique edges and weights" `Quick test_clique_edge_count_and_weight;
    Alcotest.test_case "clique total weight" `Quick test_clique_total_weight;
    Alcotest.test_case "capped weight preserved" `Quick test_capped_net_preserves_total_weight;
    Alcotest.test_case "capped net connected" `Quick test_capped_net_connected;
    Alcotest.test_case "equal springs midway" `Quick test_equal_springs_settle_midway;
    Alcotest.test_case "weighted spring" `Quick test_weighted_spring_pulls_harder;
    Alcotest.test_case "pin offsets" `Quick test_pin_offsets_shift_equilibrium;
    Alcotest.test_case "matrix SPD shape" `Quick test_matrix_symmetric_positive_diagonal;
    Alcotest.test_case "residual at equilibrium" `Quick test_residual_zero_at_equilibrium;
    Alcotest.test_case "additional force shifts" `Quick test_additional_force_shifts_solution;
    Alcotest.test_case "hold damps" `Quick test_hold_springs_damp_movement;
    Alcotest.test_case "hold_at targets" `Quick test_hold_at_targets;
    Alcotest.test_case "index map" `Quick test_index_map;
    Alcotest.test_case "weights module" `Quick test_weights_module;
    QCheck_alcotest.to_alcotest prop_solution_is_minimum;
    Alcotest.test_case "rebuild = build, both models, pools 1/2/4" `Quick
      test_rebuild_matches_build;
  ]
