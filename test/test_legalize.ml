(* Tests for rows, the two legalizers, local improvement, and the
   legality checker. *)

let approx = Alcotest.float 1e-9

let pin c = { Netlist.Net.cell = c; dx = 0.; dy = 0. }

let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:128. ~y_hi:64.

(* Four rows of height 16 over a 128-wide region. *)
let circuit_of ?(cells = [||]) ?(nets = [||]) () =
  let nets =
    if Array.length nets > 0 then nets
    else if Array.length cells >= 2 then
      [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1 |] |]
    else [||]
  in
  Netlist.Circuit.make ~name:"lg" ~cells ~nets ~region ~row_height:16.

let std_cell id w =
  Netlist.Cell.make ~id ~name:(Printf.sprintf "c%d" id) ~width:w ~height:16. ()

(* --- rows --- *)

let test_row_geometry () =
  let c = circuit_of ~cells:[| std_cell 0 8.; std_cell 1 8. |] () in
  Alcotest.check approx "row 0 centre" 8. (Legalize.Rows.row_center_y c 0);
  Alcotest.check approx "row 3 centre" 56. (Legalize.Rows.row_center_y c 3);
  Alcotest.(check int) "row of y" 2 (Legalize.Rows.row_of_y c 36.);
  Alcotest.(check int) "clamped low" 0 (Legalize.Rows.row_of_y c (-5.));
  Alcotest.(check int) "clamped high" 3 (Legalize.Rows.row_of_y c 1000.)

let test_rows_without_obstacles () =
  let c = circuit_of ~cells:[| std_cell 0 8.; std_cell 1 8. |] () in
  let rows = Legalize.Rows.build c ~obstacles:[] in
  Alcotest.(check int) "four rows" 4 (Array.length rows);
  Array.iter
    (fun segs ->
      Alcotest.(check int) "one segment" 1 (List.length segs);
      let s = List.hd segs in
      Alcotest.check approx "full width" 128. (s.Legalize.Rows.x_hi -. s.Legalize.Rows.x_lo))
    rows

let test_rows_split_by_obstacle () =
  let c = circuit_of ~cells:[| std_cell 0 8.; std_cell 1 8. |] () in
  let obstacle = Geometry.Rect.make ~x_lo:40. ~y_lo:0. ~x_hi:80. ~y_hi:32. in
  let rows = Legalize.Rows.build c ~obstacles:[ obstacle ] in
  (* Rows 0 and 1 are split in two; rows 2 and 3 untouched. *)
  Alcotest.(check int) "row0 segments" 2 (List.length rows.(0));
  Alcotest.(check int) "row1 segments" 2 (List.length rows.(1));
  Alcotest.(check int) "row2 segments" 1 (List.length rows.(2));
  match rows.(0) with
  | [ a; b ] ->
    Alcotest.check approx "left ends at 40" 40. a.Legalize.Rows.x_hi;
    Alcotest.check approx "right starts at 80" 80. b.Legalize.Rows.x_lo
  | _ -> Alcotest.fail "expected two segments"

let test_rows_narrow_gap_dropped () =
  let c = circuit_of ~cells:[| std_cell 0 8.; std_cell 1 8. |] () in
  (* Two obstacles leaving a gap narrower than a row height (16). *)
  let o1 = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:60. ~y_hi:16. in
  let o2 = Geometry.Rect.make ~x_lo:70. ~y_lo:0. ~x_hi:128. ~y_hi:16. in
  let rows = Legalize.Rows.build c ~obstacles:[ o1; o2 ] in
  Alcotest.(check int) "gap too narrow" 0 (List.length rows.(0))

(* --- legalizers --- *)

let overlapping_placement cells =
  let c = circuit_of ~cells () in
  let p = Netlist.Placement.create c in
  (* Everything stacked near (30, 30). *)
  Array.iteri
    (fun i _ ->
      p.Netlist.Placement.x.(i) <- 30. +. float_of_int (i mod 3);
      p.Netlist.Placement.y.(i) <- 30.)
    cells;
  (c, p)

let test_abacus_produces_legal () =
  let cells = Array.init 10 (fun i -> std_cell i (8. +. float_of_int (4 * (i mod 3)))) in
  let c, p = overlapping_placement cells in
  let rep = Legalize.Abacus.legalize c p () in
  Alcotest.(check int) "no failures" 0 rep.Legalize.Abacus.failed;
  Alcotest.(check bool) "legal" true (Legalize.Check.is_legal c rep.Legalize.Abacus.placement)

let test_tetris_produces_legal () =
  let cells = Array.init 10 (fun i -> std_cell i 8.) in
  let c, p = overlapping_placement cells in
  match Legalize.Tetris.legalize c p () with
  | Error e -> Alcotest.failf "tetris failed: %a" Legalize.Tetris.pp_error e
  | Ok rep ->
    Alcotest.(check int) "no overflow" 0 rep.Legalize.Tetris.overflowed;
    Alcotest.(check bool) "legal" true
      (Legalize.Check.is_legal c rep.Legalize.Tetris.placement)

(* Blanketing the whole region with an obstacle leaves no row segment
   anywhere: the typed error the job engine's degraded path relies on
   (a failed legalisation must not raise). *)
let test_tetris_no_segments_is_error () =
  let cells = Array.init 4 (fun i -> std_cell i 8.) in
  let c, p = overlapping_placement cells in
  let everything = c.Netlist.Circuit.region in
  match Legalize.Tetris.legalize c p ~extra_obstacles:[ everything ] () with
  | Ok _ -> Alcotest.fail "expected Error No_row_segments"
  | Error Legalize.Tetris.No_row_segments -> ()

let test_abacus_no_move_when_already_legal () =
  let cells = [| std_cell 0 8.; std_cell 1 8. |] in
  let c = circuit_of ~cells () in
  let p = Netlist.Placement.create c in
  p.Netlist.Placement.x.(0) <- 20.;
  p.Netlist.Placement.y.(0) <- 8.;
  p.Netlist.Placement.x.(1) <- 60.;
  p.Netlist.Placement.y.(1) <- 24.;
  let rep = Legalize.Abacus.legalize c p () in
  Alcotest.check (Alcotest.float 1e-6) "zero displacement" 0.
    rep.Legalize.Abacus.total_displacement

let test_abacus_respects_obstacles () =
  let cells = Array.init 6 (fun i -> std_cell i 8.) in
  let c, p = overlapping_placement cells in
  let obstacle = Geometry.Rect.make ~x_lo:16. ~y_lo:16. ~x_hi:48. ~y_hi:48. in
  let rep = Legalize.Abacus.legalize c p ~extra_obstacles:[ obstacle ] () in
  let lp = rep.Legalize.Abacus.placement in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      let r = Netlist.Placement.cell_rect c lp cl.Netlist.Cell.id in
      Alcotest.(check (float 1e-9)) "clear of obstacle" 0.
        (Geometry.Rect.overlap_area r obstacle))
    cells

let test_abacus_fixed_block_auto_obstacle () =
  let block =
    Netlist.Cell.make ~id:6 ~name:"blk" ~width:32. ~height:32.
      ~kind:Netlist.Cell.Block ~fixed:true ()
  in
  let cells = Array.append (Array.init 6 (fun i -> std_cell i 8.)) [| block |] in
  let nets = [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 6 |] |] in
  let c = circuit_of ~cells ~nets () in
  let p = Netlist.Placement.create c in
  Array.iteri
    (fun i _ ->
      p.Netlist.Placement.x.(i) <- 32.;
      p.Netlist.Placement.y.(i) <- 32.)
    cells;
  (* Block sits at (32, 32) spanning rows 1-2. *)
  let rep = Legalize.Abacus.legalize c p () in
  let lp = rep.Legalize.Abacus.placement in
  let block_rect = Netlist.Placement.cell_rect c lp 6 in
  for i = 0 to 5 do
    let r = Netlist.Placement.cell_rect c lp i in
    Alcotest.(check (float 1e-9)) "clear of fixed block" 0.
      (Geometry.Rect.overlap_area r block_rect)
  done

let test_abacus_displacement_small_for_spread_input () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:12)
  in
  let p0 = Circuitgen.Gen.initial_placement circuit pads in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let rep = Legalize.Abacus.legalize circuit state.Kraftwerk.Placer.placement () in
  (* Global placement is nearly overlap-free: average displacement should
     be a few cell widths, not region-scale. *)
  let avg =
    rep.Legalize.Abacus.total_displacement
    /. float_of_int (Netlist.Circuit.num_movable circuit)
  in
  Alcotest.(check bool) "small displacement" true
    (avg < 4. *. circuit.Netlist.Circuit.row_height)

(* --- improvement --- *)

let test_improve_preserves_legality_and_hpwl () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:13)
  in
  let p0 = Circuitgen.Gen.initial_placement circuit pads in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let rep = Legalize.Abacus.legalize circuit state.Kraftwerk.Placer.placement () in
  let p = rep.Legalize.Abacus.placement in
  let before = Metrics.Wirelength.hpwl circuit p in
  let moves, gain = Legalize.Improve.run circuit p in
  let after = Metrics.Wirelength.hpwl circuit p in
  Alcotest.(check bool) "legal after improvement" true (Legalize.Check.is_legal circuit p);
  Alcotest.(check bool) "hpwl not worse" true (after <= before +. 1e-6);
  Alcotest.(check bool) "gain consistent" true
    (Float.abs (before -. after -. gain) < 1e-6);
  Alcotest.(check bool) "made moves" true (moves > 0)

let test_improve_deterministic () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:14)
  in
  let p0 = Circuitgen.Gen.initial_placement circuit pads in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let base = Legalize.Abacus.legalize circuit state.Kraftwerk.Placer.placement () in
  let p1 = Netlist.Placement.copy base.Legalize.Abacus.placement in
  let p2 = Netlist.Placement.copy base.Legalize.Abacus.placement in
  ignore (Legalize.Improve.run ~seed:7 circuit p1);
  ignore (Legalize.Improve.run ~seed:7 circuit p2);
  Alcotest.check (Alcotest.float 0.) "same result" 0.
    (Netlist.Placement.displacement p1 p2)

(* --- checker --- *)

let test_check_detects_each_violation () =
  let cells = [| std_cell 0 8.; std_cell 1 8. |] in
  let c = circuit_of ~cells () in
  (* Legal baseline. *)
  let p = Netlist.Placement.create c in
  p.Netlist.Placement.x.(0) <- 20.;
  p.Netlist.Placement.y.(0) <- 8.;
  p.Netlist.Placement.x.(1) <- 60.;
  p.Netlist.Placement.y.(1) <- 8.;
  Alcotest.(check bool) "baseline legal" true (Legalize.Check.is_legal c p);
  (* Outside region. *)
  let q = Netlist.Placement.copy p in
  q.Netlist.Placement.x.(0) <- -10.;
  Alcotest.(check bool) "outside detected" true
    (List.exists
       (function Legalize.Check.Outside_region 0 -> true | _ -> false)
       (Legalize.Check.check c q ()));
  (* Off row. *)
  let q = Netlist.Placement.copy p in
  q.Netlist.Placement.y.(0) <- 12.;
  Alcotest.(check bool) "off row detected" true
    (List.exists
       (function Legalize.Check.Off_row 0 -> true | _ -> false)
       (Legalize.Check.check c q ()));
  (* Overlap. *)
  let q = Netlist.Placement.copy p in
  q.Netlist.Placement.x.(1) <- 24.;
  Alcotest.(check bool) "overlap detected" true
    (List.exists
       (function Legalize.Check.Overlap (_, _) -> true | _ -> false)
       (Legalize.Check.check c q ()))

let prop_abacus_legal_on_random_spreads =
  QCheck.Test.make ~name:"abacus always yields legal placements"
    QCheck.(small_int)
    (fun seed ->
      let rng = Numeric.Rng.create seed in
      let n = 12 in
      let cells =
        Array.init n (fun i -> std_cell i (4. +. (4. *. float_of_int (Numeric.Rng.int rng 4))))
      in
      let c = circuit_of ~cells () in
      let p = Netlist.Placement.create c in
      for i = 0 to n - 1 do
        p.Netlist.Placement.x.(i) <- Numeric.Rng.uniform rng 0. 128.;
        p.Netlist.Placement.y.(i) <- Numeric.Rng.uniform rng 0. 64.
      done;
      let rep = Legalize.Abacus.legalize c p () in
      rep.Legalize.Abacus.failed = 0
      && Legalize.Check.is_legal c rep.Legalize.Abacus.placement)

let suite =
  [
    Alcotest.test_case "row geometry" `Quick test_row_geometry;
    Alcotest.test_case "rows no obstacles" `Quick test_rows_without_obstacles;
    Alcotest.test_case "rows split by obstacle" `Quick test_rows_split_by_obstacle;
    Alcotest.test_case "narrow gap dropped" `Quick test_rows_narrow_gap_dropped;
    Alcotest.test_case "abacus legal" `Quick test_abacus_produces_legal;
    Alcotest.test_case "tetris legal" `Quick test_tetris_produces_legal;
    Alcotest.test_case "tetris no segments is typed error" `Quick
      test_tetris_no_segments_is_error;
    Alcotest.test_case "abacus zero move when legal" `Quick test_abacus_no_move_when_already_legal;
    Alcotest.test_case "abacus obstacles" `Quick test_abacus_respects_obstacles;
    Alcotest.test_case "abacus fixed block" `Quick test_abacus_fixed_block_auto_obstacle;
    Alcotest.test_case "abacus small displacement" `Quick test_abacus_displacement_small_for_spread_input;
    Alcotest.test_case "improve legality + hpwl" `Quick test_improve_preserves_legality_and_hpwl;
    Alcotest.test_case "improve deterministic" `Quick test_improve_deterministic;
    Alcotest.test_case "checker violations" `Quick test_check_detects_each_violation;
    QCheck_alcotest.to_alcotest prop_abacus_legal_on_random_spreads;
  ]
