(* Constructor and argument validation across all libraries: every
   public entry point that documents an [Invalid_argument] or [Failure]
   must actually raise it, with no partial state mutation. *)

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

let raises_failure f =
  try
    f ();
    false
  with Failure _ -> true

let pin c = { Netlist.Net.cell = c; dx = 0.; dy = 0. }

let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:64. ~y_hi:64.

let tiny () =
  let cells =
    [|
      Netlist.Cell.make ~id:0 ~name:"a" ~width:8. ~height:16. ();
      Netlist.Cell.make ~id:1 ~name:"b" ~width:8. ~height:16. ();
    |]
  in
  let nets = [| Netlist.Net.make ~id:0 ~name:"n" [| pin 0; pin 1 |] |] in
  Netlist.Circuit.make ~name:"v" ~cells ~nets ~region ~row_height:16.

(* --- numeric --- *)

let test_numeric_validation () =
  Alcotest.(check bool) "sparse negative dim" true
    (raises_invalid (fun () -> ignore (Numeric.Sparse.builder (-1))));
  Alcotest.(check bool) "fft length" true
    (raises_invalid (fun () ->
         Numeric.Fft.transform ~inverse:false (Array.make 6 0.) (Array.make 6 0.)));
  Alcotest.(check bool) "fft 2d size" true
    (raises_invalid (fun () ->
         Numeric.Fft.transform2 ~inverse:false ~rows:4 ~cols:4 (Array.make 15 0.)
           (Array.make 15 0.)));
  Alcotest.(check bool) "poisson empty grid" true
    (raises_invalid (fun () ->
         ignore (Numeric.Poisson.direct_force_field ~rows:0 ~cols:4 ~hx:1. ~hy:1. [||])));
  Alcotest.(check bool) "rng geometric p" true
    (raises_invalid (fun () ->
         ignore (Numeric.Rng.geometric (Numeric.Rng.create 1) 1.5)));
  Alcotest.(check bool) "mcf bad node" true
    (raises_invalid (fun () ->
         let g = Numeric.Mincostflow.create 2 in
         ignore (Numeric.Mincostflow.add_edge g ~src:0 ~dst:5 ~capacity:1 ~cost:0.)));
  Alcotest.(check bool) "mcf negative capacity" true
    (raises_invalid (fun () ->
         let g = Numeric.Mincostflow.create 2 in
         ignore (Numeric.Mincostflow.add_edge g ~src:0 ~dst:1 ~capacity:(-1) ~cost:0.)));
  Alcotest.(check bool) "mcf double solve" true
    (raises_invalid (fun () ->
         let g = Numeric.Mincostflow.create 2 in
         ignore (Numeric.Mincostflow.add_edge g ~src:0 ~dst:1 ~capacity:1 ~cost:0.);
         ignore (Numeric.Mincostflow.solve g ~source:0 ~sink:1 ());
         ignore (Numeric.Mincostflow.solve g ~source:0 ~sink:1 ())));
  Alcotest.(check bool) "assignment ragged" true
    (raises_invalid (fun () ->
         ignore (Numeric.Mincostflow.assignment ~costs:[| [| 1.; 2. |]; [| 1. |] |])));
  Alcotest.(check bool) "assignment too many agents" true
    (raises_invalid (fun () ->
         ignore
           (Numeric.Mincostflow.assignment
              ~costs:[| [| 1. |]; [| 2. |] |])))

(* --- geometry --- *)

let test_geometry_validation () =
  Alcotest.(check bool) "rect inverted" true
    (raises_invalid (fun () ->
         ignore (Geometry.Rect.make ~x_lo:1. ~y_lo:0. ~x_hi:0. ~y_hi:1.)));
  Alcotest.(check bool) "of_center negative" true
    (raises_invalid (fun () ->
         ignore (Geometry.Rect.of_center ~cx:0. ~cy:0. ~w:(-1.) ~h:1.)));
  Alcotest.(check bool) "grid zero dims" true
    (raises_invalid (fun () -> ignore (Geometry.Grid2.create region ~nx:0 ~ny:4)))

(* --- netlist --- *)

let test_netlist_validation () =
  Alcotest.(check bool) "cell id order" true
    (raises_invalid (fun () ->
         let cells =
           [| Netlist.Cell.make ~id:1 ~name:"x" ~width:1. ~height:1. () |]
         in
         ignore
           (Netlist.Circuit.make ~name:"bad" ~cells ~nets:[||] ~region
              ~row_height:16.)));
  Alcotest.(check bool) "net id order" true
    (raises_invalid (fun () ->
         let cells =
           [|
             Netlist.Cell.make ~id:0 ~name:"x" ~width:1. ~height:1. ();
             Netlist.Cell.make ~id:1 ~name:"y" ~width:1. ~height:1. ();
           |]
         in
         let nets = [| Netlist.Net.make ~id:3 ~name:"n" [| pin 0; pin 1 |] |] in
         ignore
           (Netlist.Circuit.make ~name:"bad" ~cells ~nets ~region ~row_height:16.)));
  Alcotest.(check bool) "zero row height" true
    (raises_invalid (fun () ->
         ignore
           (Netlist.Circuit.make ~name:"bad" ~cells:[||] ~nets:[||] ~region
              ~row_height:0.)))

(* --- generator / profiles --- *)

let test_gen_validation () =
  Alcotest.(check bool) "too few cells" true
    (raises_invalid (fun () ->
         ignore
           (Circuitgen.Gen.generate
              (Circuitgen.Gen.default_params ~name:"x" ~num_cells:2 ~num_nets:2
                 ~num_rows:2 ~seed:1))));
  Alcotest.(check bool) "bad utilization" true
    (raises_invalid (fun () ->
         let p =
           { (Circuitgen.Gen.default_params ~name:"x" ~num_cells:10 ~num_nets:10
                ~num_rows:2 ~seed:1)
             with Circuitgen.Gen.utilization = 1.5 }
         in
         ignore (Circuitgen.Gen.generate p)));
  Alcotest.(check bool) "bad scale" true
    (raises_invalid (fun () ->
         ignore (Circuitgen.Profiles.params ~scale:0. (List.hd Circuitgen.Profiles.all) ~seed:1)))

(* --- qp / kraftwerk --- *)

let test_qp_validation () =
  let c = tiny () in
  let p = Netlist.Placement.create c in
  Alcotest.(check bool) "net_weights length" true
    (raises_invalid (fun () ->
         ignore
           (Qp.System.build c ~placement:p ~net_weights:[| 1.; 1. |]
              ~edge_scale:Qp.Weights.quadratic ())));
  let system =
    Qp.System.build c ~placement:p ~net_weights:[| 1. |]
      ~edge_scale:Qp.Weights.quadratic ()
  in
  Alcotest.(check bool) "force length" true
    (raises_invalid (fun () ->
         ignore (Qp.System.solve system ~placement:p ~ex:[| 0. |] ~ey:[||])))

let test_eco_validation () =
  let c = tiny () in
  let rng = Numeric.Rng.create 1 in
  Alcotest.(check bool) "rewire fraction" true
    (raises_invalid (fun () -> ignore (Kraftwerk.Eco.rewire c rng ~fraction:1.5)));
  Alcotest.(check bool) "resize range" true
    (raises_invalid (fun () ->
         ignore (Kraftwerk.Eco.resize c rng ~fraction:0.5 ~scale_range:(2., 1.))))

let test_flexible_validation () =
  let c = tiny () in
  let p = Netlist.Placement.create c in
  Alcotest.(check bool) "empty ratios" true
    (raises_invalid (fun () ->
         ignore (Floorplan.Flexible.reshape_blocks c p ~ratios:[])))

(* --- io --- *)

let test_io_failures () =
  Alcotest.(check bool) "bookshelf missing aux entries" true
    (let f = Filename.temp_file "val" ".aux" in
     Fun.protect
       ~finally:(fun () -> Sys.remove f)
       (fun () ->
         let oc = open_out f in
         output_string oc "\n";
         close_out oc;
         Result.is_error (Netlist.Bookshelf.load_aux f)))

let suite =
  [
    Alcotest.test_case "numeric" `Quick test_numeric_validation;
    Alcotest.test_case "geometry" `Quick test_geometry_validation;
    Alcotest.test_case "netlist" `Quick test_netlist_validation;
    Alcotest.test_case "generator" `Quick test_gen_validation;
    Alcotest.test_case "qp" `Quick test_qp_validation;
    Alcotest.test_case "eco" `Quick test_eco_validation;
    Alcotest.test_case "flexible" `Quick test_flexible_validation;
    Alcotest.test_case "io failures" `Quick test_io_failures;
  ]
