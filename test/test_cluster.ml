(* Tests for clustering and the multilevel placement flow. *)

let build ?(name = "primary1") ?(scale = 0.5) ?(seed = 81) () =
  let prof = Circuitgen.Profiles.find name in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale prof ~seed)
  in
  (circuit, pads, Circuitgen.Gen.initial_placement circuit pads)

let test_cluster_partitions_cells () =
  let circuit, pads, _ = build () in
  let t = Kraftwerk.Cluster.cluster circuit ~fixed_positions:pads in
  let n = Netlist.Circuit.num_cells circuit in
  (* Every flat cell maps to a coarse cell, and members invert the map. *)
  let covered = Array.make n false in
  Array.iteri
    (fun cid group ->
      List.iter
        (fun id ->
          Alcotest.(check int) "cluster_of inverts members" cid
            t.Kraftwerk.Cluster.cluster_of.(id);
          Alcotest.(check bool) "not seen before" false covered.(id);
          covered.(id) <- true)
        group)
    t.Kraftwerk.Cluster.members;
  Array.iter (fun c -> Alcotest.(check bool) "covered" true c) covered

let test_cluster_reduces_size () =
  let circuit, pads, _ = build () in
  let t = Kraftwerk.Cluster.cluster circuit ~fixed_positions:pads in
  let coarse_n = Netlist.Circuit.num_cells t.Kraftwerk.Cluster.coarse in
  Alcotest.(check bool) "meaningfully smaller" true
    (coarse_n < (2 * Netlist.Circuit.num_cells circuit) / 3)

let test_cluster_preserves_area () =
  let circuit, pads, _ = build () in
  let t = Kraftwerk.Cluster.cluster circuit ~fixed_positions:pads in
  Alcotest.(check (float 1.)) "movable area preserved"
    (Netlist.Circuit.movable_area circuit)
    (Netlist.Circuit.movable_area t.Kraftwerk.Cluster.coarse)

let test_cluster_area_cap_respected () =
  let circuit, pads, _ = build () in
  let cap = 4. *. Netlist.Circuit.average_cell_area circuit in
  let t =
    Kraftwerk.Cluster.cluster ~max_cluster_area:cap circuit ~fixed_positions:pads
  in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if Netlist.Cell.movable cl then
        (* Merges check the cap before joining, so a cluster can exceed
           it by at most one member's area. *)
        Alcotest.(check bool) "bounded" true
          (Netlist.Cell.area cl <= 2. *. cap))
    t.Kraftwerk.Cluster.coarse.Netlist.Circuit.cells

let test_cluster_fixed_cells_singleton () =
  let circuit, pads, _ = build () in
  let t = Kraftwerk.Cluster.cluster circuit ~fixed_positions:pads in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if cl.Netlist.Cell.fixed then begin
        let cid = t.Kraftwerk.Cluster.cluster_of.(cl.Netlist.Cell.id) in
        Alcotest.(check int) "singleton" 1
          (List.length t.Kraftwerk.Cluster.members.(cid));
        Alcotest.(check bool) "coarse cell fixed" true
          t.Kraftwerk.Cluster.coarse.Netlist.Circuit.cells.(cid).Netlist.Cell.fixed
      end)
    circuit.Netlist.Circuit.cells

let test_expand_places_members_near_cluster () =
  let circuit, pads, p0 = build () in
  let t = Kraftwerk.Cluster.cluster circuit ~fixed_positions:pads in
  let coarse_p =
    Netlist.Placement.centered t.Kraftwerk.Cluster.coarse
      ~fixed_positions:t.Kraftwerk.Cluster.coarse_fixed
  in
  let flat = Netlist.Placement.copy p0 in
  Kraftwerk.Cluster.expand t ~coarse_placement:coarse_p ~flat_placement:flat;
  Array.iteri
    (fun cid group ->
      let cx = coarse_p.Netlist.Placement.x.(cid) in
      let cy = coarse_p.Netlist.Placement.y.(cid) in
      List.iter
        (fun id ->
          let d =
            sqrt
              (((flat.Netlist.Placement.x.(id) -. cx) ** 2.)
              +. ((flat.Netlist.Placement.y.(id) -. cy) ** 2.))
          in
          Alcotest.(check bool) "near cluster centre" true (d < 10.))
        group)
    t.Kraftwerk.Cluster.members

let test_multilevel_end_to_end () =
  let circuit, pads, p0 = build () in
  let flat_state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let flat_wl =
    Metrics.Wirelength.hpwl circuit flat_state.Kraftwerk.Placer.placement
  in
  let ml =
    Kraftwerk.Cluster.place_multilevel Kraftwerk.Config.standard circuit
      ~fixed_positions:pads p0
  in
  let ml_wl = Metrics.Wirelength.hpwl circuit ml in
  Alcotest.(check (float 1e-6)) "in region" 0.
    (Metrics.Overlap.out_of_region_area circuit ml);
  (* Multilevel lands in the same quality regime as flat. *)
  Alcotest.(check bool) "comparable quality" true (ml_wl < 1.5 *. flat_wl)

let test_cluster_deterministic () =
  let circuit, pads, _ = build () in
  let t1 = Kraftwerk.Cluster.cluster ~seed:5 circuit ~fixed_positions:pads in
  let t2 = Kraftwerk.Cluster.cluster ~seed:5 circuit ~fixed_positions:pads in
  Alcotest.(check bool) "same clustering" true
    (t1.Kraftwerk.Cluster.cluster_of = t2.Kraftwerk.Cluster.cluster_of)

(* ------------------------------------------------------------------ *)
(* Recursive V-cycle                                                    *)

let bits = Int64.bits_of_float

let same_placement tag (a : Netlist.Placement.t) (b : Netlist.Placement.t) =
  Array.iteri
    (fun i x ->
      if bits x <> bits b.Netlist.Placement.x.(i) then
        Alcotest.failf "%s: x[%d] differs" tag i)
    a.Netlist.Placement.x;
  Array.iteri
    (fun i y ->
      if bits y <> bits b.Netlist.Placement.y.(i) then
        Alcotest.failf "%s: y[%d] differs" tag i)
    a.Netlist.Placement.y

(* A config whose threshold forces several coarsening levels on the
   test circuit (primary1 at half scale is well under the production
   default of 3000). *)
let deep_config =
  { Kraftwerk.Config.standard with Kraftwerk.Config.ml_threshold = 40 }

let test_hierarchy_deterministic () =
  let circuit, pads, _ = build () in
  let h1 = Kraftwerk.Cluster.build_hierarchy deep_config circuit ~fixed_positions:pads in
  let h2 = Kraftwerk.Cluster.build_hierarchy deep_config circuit ~fixed_positions:pads in
  Alcotest.(check int) "same depth" (Kraftwerk.Cluster.depth h1)
    (Kraftwerk.Cluster.depth h2);
  Alcotest.(check bool) "at least two levels" true
    (Kraftwerk.Cluster.depth h1 >= 2);
  Array.iteri
    (fun l (c1 : Kraftwerk.Cluster.clustering) ->
      Alcotest.(check bool)
        (Printf.sprintf "level %d identical" l)
        true
        (c1.Kraftwerk.Cluster.cluster_of
        = h2.Kraftwerk.Cluster.clusterings.(l).Kraftwerk.Cluster.cluster_of))
    h1.Kraftwerk.Cluster.clusterings

let test_hierarchy_monotone_and_capped () =
  let circuit, pads, _ = build () in
  let h = Kraftwerk.Cluster.build_hierarchy deep_config circuit ~fixed_positions:pads in
  let d = Kraftwerk.Cluster.depth h in
  Alcotest.(check bool) "depth within cap" true
    (d <= deep_config.Kraftwerk.Config.ml_max_levels);
  for l = 0 to d - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "level %d shrinks" l)
      true
      (Netlist.Circuit.num_cells h.Kraftwerk.Cluster.circuits.(l + 1)
      < Netlist.Circuit.num_cells h.Kraftwerk.Cluster.circuits.(l))
  done;
  (* Coarsening only stops above the threshold when the level cap or a
     no-progress pass stopped it first. *)
  let coarsest = Netlist.Circuit.num_cells h.Kraftwerk.Cluster.circuits.(d) in
  Alcotest.(check bool) "coarsest at threshold or capped" true
    (coarsest <= deep_config.Kraftwerk.Config.ml_threshold
    || d = deep_config.Kraftwerk.Config.ml_max_levels)

let test_hierarchy_invariants_all_levels () =
  let circuit, pads, _ = build () in
  let h = Kraftwerk.Cluster.build_hierarchy deep_config circuit ~fixed_positions:pads in
  let flat_area = Netlist.Circuit.movable_area circuit in
  Array.iteri
    (fun l (t : Kraftwerk.Cluster.clustering) ->
      let tag = Printf.sprintf "level %d" l in
      (* Area is conserved through every coarsening level... *)
      Alcotest.(check bool) (tag ^ ": area conserved") true
        (Float.abs
           (Netlist.Circuit.movable_area t.Kraftwerk.Cluster.coarse -. flat_area)
        < 1e-6 *. flat_area);
      (* ...and fixed cells are never clustered, at any level. *)
      Array.iter
        (fun (cl : Netlist.Cell.t) ->
          if cl.Netlist.Cell.fixed then begin
            let cid = t.Kraftwerk.Cluster.cluster_of.(cl.Netlist.Cell.id) in
            Alcotest.(check int) (tag ^ ": fixed stays singleton") 1
              (List.length t.Kraftwerk.Cluster.members.(cid));
            Alcotest.(check bool) (tag ^ ": coarse cell fixed") true
              t.Kraftwerk.Cluster.coarse.Netlist.Circuit.cells.(cid)
                .Netlist.Cell.fixed
          end)
        h.Kraftwerk.Cluster.circuits.(l).Netlist.Circuit.cells)
    h.Kraftwerk.Cluster.clusterings

(* Stepping a run to completion is the same computation as the one-shot
   driver. *)
let test_vcycle_steps_match_place_multilevel () =
  let circuit, pads, p0 = build () in
  let one_shot =
    Kraftwerk.Cluster.place_multilevel deep_config circuit ~fixed_positions:pads
      p0
  in
  let run =
    Kraftwerk.Cluster.start deep_config circuit ~fixed_positions:pads
      (Netlist.Placement.copy p0)
  in
  (* [total_levels] counts stages (depth + 1); the run starts at the
     coarsest stage index, depth. *)
  Alcotest.(check int) "starts at the coarsest level"
    (Kraftwerk.Cluster.total_levels run - 1)
    (Kraftwerk.Cluster.current_level run);
  while Kraftwerk.Cluster.step run do
    ()
  done;
  Alcotest.(check bool) "finished" true (Kraftwerk.Cluster.finished run);
  Alcotest.(check int) "ends at the flat level" 0
    (Kraftwerk.Cluster.current_level run);
  let stepped = Kraftwerk.Cluster.finish run in
  Netlist.Placement.clamp_to_region circuit stepped;
  same_placement "stepped vs one-shot" one_shot stepped

(* [finish] straight from the coarsest level must still seat every flat
   cell inside the region (the degraded-finish path of the engine). *)
let test_finish_straight_down_legal_seating () =
  let circuit, pads, p0 = build () in
  let run =
    Kraftwerk.Cluster.start deep_config circuit ~fixed_positions:pads
      (Netlist.Placement.copy p0)
  in
  (* A handful of coarsest-level steps, then expand without refinement. *)
  for _ = 1 to 3 do
    ignore (Kraftwerk.Cluster.step run)
  done;
  let p = Kraftwerk.Cluster.finish run in
  Netlist.Placement.clamp_to_region circuit p;
  Alcotest.(check (float 1e-6)) "in region" 0.
    (Metrics.Overlap.out_of_region_area circuit p);
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      let id = cl.Netlist.Cell.id in
      if Float.is_nan p.Netlist.Placement.x.(id)
         || Float.is_nan p.Netlist.Placement.y.(id)
      then Alcotest.failf "cell %d unseated" id)
    circuit.Netlist.Circuit.cells;
  (* Fixed cells keep their pinned coordinates. *)
  List.iter
    (fun (id, (px, py)) ->
      Alcotest.(check (float 1e-9)) "fixed x" px p.Netlist.Placement.x.(id);
      Alcotest.(check (float 1e-9)) "fixed y" py p.Netlist.Placement.y.(id))
    pads

(* The V-cycle is bitwise-deterministic for any domain-pool size. *)
let test_multilevel_bitwise_across_domains () =
  let circuit, pads, p0 = build () in
  Fun.protect
    ~finally:(fun () -> Numeric.Parallel.set_num_domains 1)
    (fun () ->
      let place pool =
        let config =
          { deep_config with Kraftwerk.Config.domains = Some pool }
        in
        Kraftwerk.Cluster.place_multilevel config circuit ~fixed_positions:pads
          (Netlist.Placement.copy p0)
      in
      let reference = place 1 in
      List.iter
        (fun pool ->
          same_placement (Printf.sprintf "pool %d" pool) reference (place pool))
        [ 2; 4 ])

(* A different clustering seed changes the hierarchy (the seed is a real
   input), while the same seed reproduces it. *)
let test_multilevel_seed_sensitivity () =
  let circuit, pads, p0 = build () in
  let place seed =
    Kraftwerk.Cluster.place_multilevel ~seed deep_config circuit
      ~fixed_positions:pads (Netlist.Placement.copy p0)
  in
  let a1 = place 1 and a1' = place 1 in
  same_placement "seed 1 reproducible" a1 a1';
  let a2 = place 2 in
  let differs =
    Array.exists2
      (fun x y -> bits x <> bits y)
      a1.Netlist.Placement.x a2.Netlist.Placement.x
  in
  Alcotest.(check bool) "seed is a real input" true differs

(* Telemetry records from a multilevel run carry the V-cycle stage
   (schema v4 [level]): the emitted sequence only descends, each stage's
   step counter restarts at 1, and the flat stage is always reached. *)
let test_multilevel_telemetry_levels () =
  let circuit, pads, p0 = build () in
  let sink, read = Obs.Sink.collecting () in
  let _ =
    Obs.Sink.with_sink sink (fun () ->
        Kraftwerk.Cluster.place_multilevel deep_config circuit
          ~fixed_positions:pads (Netlist.Placement.copy p0))
  in
  let records, _ = read () in
  Alcotest.(check bool) "records emitted" true (records <> []);
  let levels = List.map (fun r -> r.Obs.Telemetry.level) records in
  let max_level = List.fold_left Stdlib.max 0 levels in
  Alcotest.(check bool) "coarse stages observed" true (max_level >= 1);
  Alcotest.(check bool) "flat stage observed" true (List.mem 0 levels);
  ignore
    (List.fold_left
       (fun (prev_level, prev_step) r ->
         let l = r.Obs.Telemetry.level and s = r.Obs.Telemetry.step in
         Alcotest.(check bool) "levels non-increasing" true (l <= prev_level);
         if l = prev_level then
           Alcotest.(check int) "steps consecutive within a stage"
             (prev_step + 1) s
         else Alcotest.(check int) "step counter restarts per stage" 1 s;
         (l, s))
       (max_level, 0) records)

let suite =
  [
    Alcotest.test_case "partitions cells" `Quick test_cluster_partitions_cells;
    Alcotest.test_case "reduces size" `Quick test_cluster_reduces_size;
    Alcotest.test_case "preserves area" `Quick test_cluster_preserves_area;
    Alcotest.test_case "area cap" `Quick test_cluster_area_cap_respected;
    Alcotest.test_case "fixed singleton" `Quick test_cluster_fixed_cells_singleton;
    Alcotest.test_case "expand near centre" `Quick test_expand_places_members_near_cluster;
    Alcotest.test_case "multilevel e2e" `Slow test_multilevel_end_to_end;
    Alcotest.test_case "deterministic" `Quick test_cluster_deterministic;
    Alcotest.test_case "hierarchy deterministic" `Quick
      test_hierarchy_deterministic;
    Alcotest.test_case "hierarchy monotone and capped" `Quick
      test_hierarchy_monotone_and_capped;
    Alcotest.test_case "hierarchy invariants at all levels" `Quick
      test_hierarchy_invariants_all_levels;
    Alcotest.test_case "stepped V-cycle matches one-shot driver" `Slow
      test_vcycle_steps_match_place_multilevel;
    Alcotest.test_case "finish straight down seats every cell" `Quick
      test_finish_straight_down_legal_seating;
    Alcotest.test_case "V-cycle bitwise across domain pools" `Slow
      test_multilevel_bitwise_across_domains;
    Alcotest.test_case "clustering seed is a real input" `Slow
      test_multilevel_seed_sensitivity;
    Alcotest.test_case "telemetry carries the V-cycle stage" `Slow
      test_multilevel_telemetry_levels;
  ]
