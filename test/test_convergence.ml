(* Trace-driven convergence regression harness.

   One deterministic circuitgen run (fract, seed 42, scale 1.0, a single
   domain) is placed with the standard Kraftwerk flow under a telemetry
   sink, and the recorded trajectory is held to pinned invariants:

   - density overflow trends down past the knee of the schedule,
   - the final global HPWL and overlap land inside pinned bounds,
   - the iteration count stays inside a pinned window,
   - every emitted record is schema-valid JSONL and survives a
     write/parse round trip.

   The bounds were measured on the reference implementation: overflow
   0.948 at the first transformation falling to ~0.55, final global
   HPWL ~7000, 150 transformations (the convergence controller's
   envelope criterion fires at the 15th UB probe; the §4.2 empty-square
   criterion does not fire on this profile).  They are generous enough
   to survive benign numeric drift but tight enough that a placer whose
   density-force update is stubbed out — overflow stuck near 0.95, HPWL
   collapsed towards the unconstrained optimum (~2250) — fails. *)

type run = {
  circuit : Netlist.Circuit.t;
  state : Kraftwerk.Placer.state;
  records : Obs.Telemetry.iteration list;
  summary : Obs.Telemetry.summary option;
  jsonl_lines : string list;
}

let max_iterations = Kraftwerk.Config.standard.Kraftwerk.Config.max_iterations

let the_run : run Lazy.t =
  lazy
    (let prof = Circuitgen.Profiles.find "fract" in
     let circuit, pads =
       Circuitgen.Gen.generate
         (Circuitgen.Profiles.params ~scale:1.0 prof ~seed:42)
     in
     let p0 = Circuitgen.Gen.initial_placement circuit pads in
     let config =
       { Kraftwerk.Config.standard with Kraftwerk.Config.domains = Some 1 }
     in
     Numeric.Poisson.clear_kernel_cache ();
     Obs.Registry.set_enabled true;
     Obs.Registry.reset ();
     let file = Filename.temp_file "kraftwerk_conv" ".jsonl" in
     let oc = open_out file in
     let js = Obs.Sink.jsonl oc in
     let coll, read = Obs.Sink.collecting () in
     (* Tee: the in-memory records drive the trajectory checks, the
        JSONL file exercises the same path as the CLI's --trace. *)
     let tee =
       {
         Obs.Sink.on_iteration =
           (fun r ->
             js.Obs.Sink.on_iteration r;
             coll.Obs.Sink.on_iteration r);
         on_summary =
           (fun s ->
             js.Obs.Sink.on_summary s;
             coll.Obs.Sink.on_summary s);
       }
     in
     let state =
       Obs.Sink.with_sink tee (fun () ->
           let state, reports = Kraftwerk.Placer.run config circuit p0 in
           let p = state.Kraftwerk.Placer.placement in
           Obs.Sink.summary
             {
               Obs.Telemetry.iterations = List.length reports;
               converged =
                 List.length reports < config.Kraftwerk.Config.max_iterations;
               final_hpwl = Metrics.Wirelength.hpwl circuit p;
               final_overlap = Metrics.Overlap.overlap_ratio circuit p;
               wall_time = 0.;
               stop_reason =
                 Option.map Kraftwerk.Controller.reason_to_string
                   (Kraftwerk.Placer.stop_reason state);
               counters = Obs.Registry.snapshot ();
             };
           state)
     in
     close_out oc;
     Obs.Registry.set_enabled false;
     let ic = open_in file in
     let lines = ref [] in
     (try
        while true do
          lines := input_line ic :: !lines
        done
      with End_of_file -> ());
     close_in ic;
     Sys.remove file;
     let records, summary = read () in
     { circuit; state; records; summary; jsonl_lines = List.rev !lines })

let overflows r = List.map (fun it -> it.Obs.Telemetry.overflow) r.records

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let take k l = List.filteri (fun i _ -> i < k) l

let last k l = take k (List.rev l) |> List.rev

let test_iteration_window () =
  let r = Lazy.force the_run in
  let n = List.length r.records in
  Alcotest.(check bool)
    (Printf.sprintf "iteration count %d within [100, %d]" n max_iterations)
    true
    (n >= 100 && n <= max_iterations);
  Alcotest.(check (list int)) "steps are 1..n"
    (List.init n (fun i -> i + 1))
    (List.map (fun it -> it.Obs.Telemetry.step) r.records)

let test_overflow_trends_down () =
  let r = Lazy.force the_run in
  let ov = overflows r in
  let early = mean (take 20 ov) and late = mean (last 20 ov) in
  let final = List.nth ov (List.length ov - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "starts congested (early mean %.3f > 0.7)" early)
    true (early > 0.7);
  Alcotest.(check bool)
    (Printf.sprintf "trends down (late mean %.3f < 0.75 x early %.3f)" late
       early)
    true
    (late < 0.75 *. early);
  (* Absolute bound: a stubbed density force keeps overflow ~0.95. *)
  Alcotest.(check bool)
    (Printf.sprintf "final overflow %.3f below 0.65" final)
    true (final < 0.65);
  List.iter
    (fun o ->
      Alcotest.(check bool) "overflow in [0, 2]" true (o >= 0. && o <= 2.))
    ov

let test_final_metrics_bounds () =
  let r = Lazy.force the_run in
  let final = List.nth r.records (List.length r.records - 1) in
  let hpwl = final.Obs.Telemetry.hpwl in
  let overlap =
    Metrics.Overlap.overlap_ratio r.circuit r.state.Kraftwerk.Placer.placement
  in
  (* Reference: HPWL 6886.6 and overlap 1.07 on the measured run; with
     the density force stubbed (k = 0) they are 2415 and 24.6, so both
     bounds discriminate. *)
  Alcotest.(check bool)
    (Printf.sprintf "global hpwl %.1f within [4500, 10000]" hpwl)
    true
    (hpwl >= 4500. && hpwl <= 10000.);
  Alcotest.(check bool)
    (Printf.sprintf "global overlap %.3f below 2.0" overlap)
    true (overlap < 2.0);
  (* The trace must record exactly what a recomputation gives. *)
  let recomputed =
    Metrics.Wirelength.hpwl r.circuit r.state.Kraftwerk.Placer.placement
  in
  Alcotest.(check bool) "trace hpwl matches recomputation bitwise" true
    (Int64.bits_of_float hpwl = Int64.bits_of_float recomputed)

let test_placement_settles () =
  let r = Lazy.force the_run in
  let disp = List.map (fun it -> it.Obs.Telemetry.displacement) r.records in
  let early = mean (take 20 disp) and late = mean (last 20 disp) in
  Alcotest.(check bool)
    (Printf.sprintf "cells settle (late disp %.2f << early %.2f)" late early)
    true
    (early > 0. && late < 0.2 *. early)

let test_solver_telemetry_sane () =
  let r = Lazy.force the_run in
  List.iteri
    (fun i it ->
      let tag = Printf.sprintf "iteration %d" (i + 1) in
      Alcotest.(check bool) (tag ^ ": cg did work") true
        (it.Obs.Telemetry.cg_iterations_x > 0
        && it.Obs.Telemetry.cg_iterations_y > 0);
      Alcotest.(check bool) (tag ^ ": finite metrics") true
        (Float.is_finite it.Obs.Telemetry.hpwl
        && Float.is_finite it.Obs.Telemetry.quadratic
        && Float.is_finite it.Obs.Telemetry.max_force
        (* max >= mean up to one rounding step of the sum/n division:
           when all magnitudes coincide the mean can land an ulp high. *)
        && it.Obs.Telemetry.max_force
           >= it.Obs.Telemetry.mean_force *. (1. -. 1e-12)
        && it.Obs.Telemetry.mean_force >= 0.))
    r.records;
  (* The kernel spectrum is built eagerly by [Placer.init] (the prewarm
     that kills the historical first-iteration cold spike) and cached:
     no transformation ever misses, every one hits. *)
  (match r.records with
  | [] -> Alcotest.fail "no records"
  | records ->
    List.iter
      (fun it ->
        Alcotest.(check int) "iterations never miss the prewarmed cache" 0
          it.Obs.Telemetry.kernel_cache_misses)
      records)

let test_assembly_caching_telemetry () =
  let r = Lazy.force the_run in
  let cfg = Kraftwerk.Config.standard in
  (match r.records with
  | [] -> Alcotest.fail "no records"
  | first :: rest ->
    (* The clique-model pattern is compiled exactly once; every later
       transformation must take the refill path. *)
    Alcotest.(check bool) "first transformation compiles" false
      first.Obs.Telemetry.assembly_reused;
    Alcotest.(check int) "one symbolic compile" 1
      first.Obs.Telemetry.pattern_rebuilds;
    List.iteri
      (fun i it ->
        let tag = Printf.sprintf "iteration %d" (i + 2) in
        Alcotest.(check bool) (tag ^ ": assembly reused") true
          it.Obs.Telemetry.assembly_reused;
        Alcotest.(check int) (tag ^ ": no further compiles") 1
          it.Obs.Telemetry.pattern_rebuilds)
      rest);
  (* The adaptive CG tolerance stays inside the configured band and
     tightens as the overflow falls. *)
  List.iter
    (fun it ->
      Alcotest.(check bool) "tolerance within configured band" true
        (it.Obs.Telemetry.cg_tolerance >= cfg.Kraftwerk.Config.cg_tol
        && it.Obs.Telemetry.cg_tolerance <= cfg.Kraftwerk.Config.cg_tol_loose))
    r.records;
  let tols = List.map (fun it -> it.Obs.Telemetry.cg_tolerance) r.records in
  let early = mean (take 20 tols) and late = mean (last 20 tols) in
  Alcotest.(check bool)
    (Printf.sprintf "tolerance tightens (late %.2e < early %.2e)" late early)
    true (late < early)

(* The controller invariant: a run never exceeds its budget, and when it
   stops early the summary says why. *)
let test_early_stop_reason_recorded () =
  let r = Lazy.force the_run in
  let n = List.length r.records in
  Alcotest.(check bool)
    (Printf.sprintf "iterations_run %d <= max_steps %d" n max_iterations)
    true (n <= max_iterations);
  match r.summary with
  | None -> Alcotest.fail "collecting sink saw no summary"
  | Some s ->
    Alcotest.(check int) "summary agrees on the count" n
      s.Obs.Telemetry.iterations;
    if n < max_iterations then begin
      Alcotest.(check bool) "early stop marked converged" true
        s.Obs.Telemetry.converged;
      match s.Obs.Telemetry.stop_reason with
      | None -> Alcotest.fail "early stop without a recorded reason"
      | Some reason ->
        Alcotest.(check bool)
          (Printf.sprintf "reason %S is a known criterion" reason)
          true
          (Kraftwerk.Controller.reason_of_string reason <> None)
    end
    else
      (* At the budget the reason, if any, must be max_steps. *)
      match s.Obs.Telemetry.stop_reason with
      | Some reason -> Alcotest.(check string) "budget reason" "max_steps" reason
      | None -> ()

(* Envelope telemetry: the standard config probes a legalized UB every
   legalize_every iterations; those records must carry a coherent
   (lb, ub, gap) triple and the neutral default schedule keeps the
   penalty at exactly 1. *)
let test_envelope_telemetry () =
  let r = Lazy.force the_run in
  let cfg = Kraftwerk.Config.standard in
  let probes =
    List.filter (fun it -> it.Obs.Telemetry.ub_hpwl <> None) r.records
  in
  Alcotest.(check bool)
    (Printf.sprintf "at least two UB probes (%d)" (List.length probes))
    true
    (List.length probes >= 2);
  List.iter
    (fun it ->
      Alcotest.(check bool) "penalty is the calibrated static weight" true
        (it.Obs.Telemetry.penalty = 1.0);
      Alcotest.(check bool) "lb is the recorded quadratic hpwl" true
        (Int64.bits_of_float it.Obs.Telemetry.lb_hpwl
        = Int64.bits_of_float it.Obs.Telemetry.hpwl);
      match (it.Obs.Telemetry.ub_hpwl, it.Obs.Telemetry.gap) with
      | None, None -> ()
      | Some ub, Some gap ->
        Alcotest.(check bool) "lb <= ub at every probe" true
          (it.Obs.Telemetry.lb_hpwl <= ub);
        Alcotest.(check bool) "gap consistent with the pair" true
          (Float.abs (gap -. ((ub -. it.Obs.Telemetry.lb_hpwl) /. ub))
          < 1e-12);
        Alcotest.(check bool) "probe lands on the cadence" true
          (it.Obs.Telemetry.step mod cfg.Kraftwerk.Config.legalize_every = 0)
      | _ -> Alcotest.fail "ub and gap must be present together")
    r.records

let test_records_schema_valid () =
  let r = Lazy.force the_run in
  List.iter
    (fun it ->
      let j = Obs.Telemetry.iteration_to_json it in
      (match Obs.Json.member "schema" j with
      | Some (Obs.Json.Num v) ->
        Alcotest.(check int) "schema version"
          Obs.Telemetry.schema_version (int_of_float v)
      | _ -> Alcotest.fail "record without schema field");
      let s = Obs.Json.to_string j in
      match Obs.Json.of_string s with
      | Error e -> Alcotest.failf "record does not parse: %s" e
      | Ok v -> (
        match Obs.Telemetry.iteration_of_json v with
        | Error e -> Alcotest.failf "record does not validate: %s" e
        | Ok it' ->
          if it' <> it then
            Alcotest.failf "record %d does not round-trip"
              it.Obs.Telemetry.step))
    r.records

let test_jsonl_stream_shape () =
  let r = Lazy.force the_run in
  let n = List.length r.records in
  Alcotest.(check int) "one line per record plus summary" (n + 1)
    (List.length r.jsonl_lines);
  let parsed =
    List.map
      (fun line ->
        match Obs.Json.of_string line with
        | Ok v -> v
        | Error e -> Alcotest.failf "unparsable trace line: %s" e)
      r.jsonl_lines
  in
  let tags =
    List.map
      (fun v ->
        match Obs.Json.member "record" v with
        | Some (Obs.Json.Str s) -> s
        | _ -> Alcotest.fail "trace line without record tag")
      parsed
  in
  Alcotest.(check (list string)) "iterations then one summary"
    (List.init (n + 1) (fun i -> if i < n then "iteration" else "summary"))
    tags;
  (* The written summary parses back to what the collecting sink saw. *)
  let summary_json = List.nth parsed n in
  match (Obs.Telemetry.summary_of_json summary_json, r.summary) with
  | Ok s, Some expected ->
    Alcotest.(check int) "summary iteration count" n s.Obs.Telemetry.iterations;
    Alcotest.(check bool) "summary hpwl matches" true
      (Int64.bits_of_float s.Obs.Telemetry.final_hpwl
      = Int64.bits_of_float expected.Obs.Telemetry.final_hpwl);
    Alcotest.(check bool) "summary converged flag matches" true
      (s.Obs.Telemetry.converged = expected.Obs.Telemetry.converged)
  | Error e, _ -> Alcotest.failf "summary does not validate: %s" e
  | _, None -> Alcotest.fail "collecting sink saw no summary"

let suite =
  [
    Alcotest.test_case "iteration count within pinned window" `Slow
      test_iteration_window;
    Alcotest.test_case "density overflow trends down" `Slow
      test_overflow_trends_down;
    Alcotest.test_case "final hpwl and overlap within pinned bounds" `Slow
      test_final_metrics_bounds;
    Alcotest.test_case "placement settles" `Slow test_placement_settles;
    Alcotest.test_case "solver telemetry sane" `Slow test_solver_telemetry_sane;
    Alcotest.test_case "assembly caching telemetry" `Slow
      test_assembly_caching_telemetry;
    Alcotest.test_case "early stop bounded and reason recorded" `Slow
      test_early_stop_reason_recorded;
    Alcotest.test_case "envelope telemetry coherent" `Slow
      test_envelope_telemetry;
    Alcotest.test_case "every record is schema-valid" `Slow
      test_records_schema_valid;
    Alcotest.test_case "jsonl stream shape and summary" `Slow
      test_jsonl_stream_shape;
  ]
