(* Cross-module property tests: invariants that must hold over random
   circuits, placements and seeds rather than hand-picked cases. *)

let gen_circuit ~seed ~scale name =
  let prof = Circuitgen.Profiles.find name in
  Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale prof ~seed)

let random_placement rng (c : Netlist.Circuit.t) pads =
  let p = Circuitgen.Gen.initial_placement c pads in
  let r = c.Netlist.Circuit.region in
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if Netlist.Cell.movable cl then begin
        p.Netlist.Placement.x.(cl.Netlist.Cell.id) <-
          Numeric.Rng.uniform rng r.Geometry.Rect.x_lo r.Geometry.Rect.x_hi;
        p.Netlist.Placement.y.(cl.Netlist.Cell.id) <-
          Numeric.Rng.uniform rng r.Geometry.Rect.y_lo r.Geometry.Rect.y_hi
      end)
    c.Netlist.Circuit.cells;
  p

let prop_density_always_balanced =
  QCheck.Test.make ~count:20 ~name:"density grid sums to zero for any placement"
    QCheck.small_int (fun seed ->
      let c, pads = gen_circuit ~seed:3 ~scale:0.3 "fract" in
      let rng = Numeric.Rng.create seed in
      let p = random_placement rng c pads in
      let g = Density.Density_map.build c p ~nx:16 ~ny:16 () in
      Float.abs (Geometry.Grid2.total g) < 1e-6)

let prop_sta_slacks_nonnegative =
  QCheck.Test.make ~count:20
    ~name:"all analysed net slacks ≥ 0 (longest path defines required times)"
    QCheck.small_int (fun seed ->
      let c, pads = gen_circuit ~seed:5 ~scale:0.3 "primary1" in
      let rng = Numeric.Rng.create seed in
      let p = random_placement rng c pads in
      let sta = Timing.Sta.analyse Timing.Params.default c p in
      Array.for_all (fun s -> s >= -1e-15) sta.Timing.Sta.net_slack)

let prop_sta_some_zero_slack =
  QCheck.Test.make ~count:20
    ~name:"the longest path leaves at least one zero-slack net"
    QCheck.small_int (fun seed ->
      let c, pads = gen_circuit ~seed:5 ~scale:0.3 "primary1" in
      let rng = Numeric.Rng.create seed in
      let p = random_placement rng c pads in
      let sta = Timing.Sta.analyse Timing.Params.default c p in
      (* Unless the worst endpoint is a lone dangling cell, some edge on
         the longest path has zero slack. *)
      sta.Timing.Sta.analysed_nets = 0
      || Array.exists (fun s -> Float.abs s < 1e-12) sta.Timing.Sta.net_slack)

let prop_removing_a_net_never_increases_delay =
  QCheck.Test.make ~count:15
    ~name:"removing a net never increases the longest path"
    QCheck.small_int (fun seed ->
      let c, pads = gen_circuit ~seed:7 ~scale:0.3 "fract" in
      let rng = Numeric.Rng.create seed in
      let p = random_placement rng c pads in
      let full = (Timing.Sta.analyse Timing.Params.default c p).Timing.Sta.max_delay in
      (* Drop one random net (rebuilding ids to stay contiguous). *)
      let drop = Numeric.Rng.int rng (Netlist.Circuit.num_nets c) in
      let kept =
        Array.to_list c.Netlist.Circuit.nets
        |> List.filteri (fun i _ -> i <> drop)
        |> List.mapi (fun i (n : Netlist.Net.t) ->
               Netlist.Net.make ~id:i ~name:n.Netlist.Net.name n.Netlist.Net.pins)
        |> Array.of_list
      in
      let c' =
        Netlist.Circuit.make ~name:"dropped" ~cells:c.Netlist.Circuit.cells
          ~nets:kept ~region:c.Netlist.Circuit.region
          ~row_height:c.Netlist.Circuit.row_height
      in
      let reduced =
        (Timing.Sta.analyse Timing.Params.default c' p).Timing.Sta.max_delay
      in
      reduced <= full +. 1e-15)

let prop_forces_mirror_symmetry =
  QCheck.Test.make ~count:15
    ~name:"mirroring the density mirrors the force field (x antisymmetry)"
    QCheck.small_int (fun seed ->
      let rng = Numeric.Rng.create seed in
      let n = 8 in
      let d = Array.init (n * n) (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
      let mirrored =
        Array.init (n * n) (fun i ->
            let r = i / n and c = i mod n in
            d.((r * n) + (n - 1 - c)))
      in
      let f = Numeric.Poisson.fft_force_field ~rows:n ~cols:n ~hx:1. ~hy:1. d in
      let g =
        Numeric.Poisson.fft_force_field ~rows:n ~cols:n ~hx:1. ~hy:1. mirrored
      in
      let ok = ref true in
      for r = 0 to n - 1 do
        for c = 0 to n - 1 do
          let i = (r * n) + c and j = (r * n) + (n - 1 - c) in
          if Float.abs (f.Numeric.Poisson.fx.(i) +. g.Numeric.Poisson.fx.(j)) > 1e-9
          then ok := false;
          if Float.abs (f.Numeric.Poisson.fy.(i) -. g.Numeric.Poisson.fy.(j)) > 1e-9
          then ok := false
        done
      done;
      !ok)

let prop_io_roundtrip_any_seed =
  QCheck.Test.make ~count:10 ~name:"text IO roundtrips generated circuits"
    QCheck.small_int (fun seed ->
      let c, _ = gen_circuit ~seed ~scale:0.2 "fract" in
      let file = Filename.temp_file "prop_io" ".ckt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          Netlist.Io.save_circuit file c;
          match Netlist.Io.load_circuit file with
          | Error _ -> false
          | Ok c' ->
            Netlist.Circuit.num_cells c = Netlist.Circuit.num_cells c'
            && Netlist.Circuit.num_nets c = Netlist.Circuit.num_nets c'
            && Array.for_all2
                 (fun (a : Netlist.Net.t) (b : Netlist.Net.t) ->
                   Netlist.Net.cells a = Netlist.Net.cells b)
                 c.Netlist.Circuit.nets c'.Netlist.Circuit.nets))

let prop_annealer_accounting =
  QCheck.Test.make ~count:5 ~name:"annealer final_hpwl matches recomputed HPWL"
    QCheck.small_int (fun seed ->
      let c, pads = gen_circuit ~seed:9 ~scale:0.3 "fract" in
      let p0 = Circuitgen.Gen.initial_placement c pads in
      let config = { Baselines.Annealer.quick_config with Baselines.Annealer.seed } in
      let p, stats = Baselines.Annealer.place ~config c p0 in
      Float.abs (stats.Baselines.Annealer.final_hpwl -. Metrics.Wirelength.hpwl c p)
      < 1e-6)

let prop_grouter_wirelength_lower_bound =
  QCheck.Test.make ~count:8
    ~name:"routed length ≥ Manhattan bin distance per connection"
    QCheck.small_int (fun seed ->
      let c, pads = gen_circuit ~seed:11 ~scale:0.25 "fract" in
      let rng = Numeric.Rng.create seed in
      let p = random_placement rng c pads in
      let nx = 10 and ny = 10 in
      let r =
        match Route.Grouter.route c p (Route.Grid_spec.make ~nx ~ny ()) with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_report (Route.Grid_spec.error_message e)
      in
      (* Lower bound: star Manhattan distance over bins for every net. *)
      let grid = Geometry.Grid2.create c.Netlist.Circuit.region ~nx ~ny in
      let dx = Geometry.Grid2.dx grid and dy = Geometry.Grid2.dy grid in
      let bound = ref 0. in
      Array.iter
        (fun (net : Netlist.Net.t) ->
          let bin (pin : Netlist.Net.pin) =
            let x, y =
              Netlist.Circuit.pin_position c ~x:p.Netlist.Placement.x
                ~y:p.Netlist.Placement.y pin
            in
            Geometry.Grid2.locate grid x y
          in
          let dbx, dby = bin (Netlist.Net.driver net) in
          Array.iter
            (fun pin ->
              let bx, by = bin pin in
              if (bx, by) <> (dbx, dby) then
                bound :=
                  !bound
                  +. (float_of_int (abs (bx - dbx)) *. dx)
                  +. (float_of_int (abs (by - dby)) *. dy))
            (Netlist.Net.sinks net))
        c.Netlist.Circuit.nets;
      (* Star decomposition dedupes sink bins, so the actual lower bound
         is ≤ the naive per-pin bound; routed length must be ≤ naive is
         false in general, but ≥ the deduped bound always holds.  Use a
         safe weaker check: routed ≥ 0 and ≥ bound/4 (dedup can remove at
         most repeated pins, which the generator caps). *)
      r.Route.Grouter.total_wirelength >= !bound /. 4. -. 1e-9)

let prop_cluster_members_partition =
  QCheck.Test.make ~count:8 ~name:"clustering is a partition for any seed"
    QCheck.small_int (fun seed ->
      let c, pads = gen_circuit ~seed:13 ~scale:0.3 "primary1" in
      let t = Kraftwerk.Cluster.cluster ~seed c ~fixed_positions:pads in
      let n = Netlist.Circuit.num_cells c in
      let seen = Array.make n 0 in
      Array.iter
        (fun group -> List.iter (fun id -> seen.(id) <- seen.(id) + 1) group)
        t.Kraftwerk.Cluster.members;
      Array.for_all (fun k -> k = 1) seen)

let prop_domino_never_worsens =
  QCheck.Test.make ~count:5 ~name:"domino never increases HPWL and keeps legality"
    QCheck.small_int (fun seed ->
      let c, pads = gen_circuit ~seed ~scale:0.4 "fract" in
      let p0 = Circuitgen.Gen.initial_placement c pads in
      let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard c p0 in
      let rep = Legalize.Abacus.legalize c state.Kraftwerk.Placer.placement () in
      let p = rep.Legalize.Abacus.placement in
      let before = Metrics.Wirelength.hpwl c p in
      ignore (Legalize.Domino.run c p);
      Metrics.Wirelength.hpwl c p <= before +. 1e-6 && Legalize.Check.is_legal c p)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_density_always_balanced;
      prop_sta_slacks_nonnegative;
      prop_sta_some_zero_slack;
      prop_removing_a_net_never_increases_delay;
      prop_forces_mirror_symmetry;
      prop_io_roundtrip_any_seed;
      prop_annealer_accounting;
      prop_grouter_wirelength_lower_bound;
      prop_cluster_members_partition;
      prop_domino_never_worsens;
    ]
