(* Tests for the coarse global router. *)

let spec8 = Route.Grid_spec.make ~nx:8 ~ny:8 ()

let route_ok = function
  | Ok r -> r
  | Error e -> Alcotest.fail (Route.Grid_spec.error_message e)

let pin c = { Netlist.Net.cell = c; dx = 0.; dy = 0. }

let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:64. ~y_hi:64.

let circuit_of cells_spec nets_spec =
  let cells =
    Array.mapi
      (fun i (w, h) ->
        Netlist.Cell.make ~id:i ~name:(Printf.sprintf "c%d" i) ~width:w ~height:h ())
      cells_spec
  in
  let nets =
    Array.mapi
      (fun i members ->
        Netlist.Net.make ~id:i ~name:(Printf.sprintf "n%d" i)
          (Array.map pin members))
      nets_spec
  in
  Netlist.Circuit.make ~name:"gr" ~cells ~nets ~region ~row_height:8.

let test_straight_route_length () =
  let c = circuit_of [| (4., 4.); (4., 4.) |] [| [| 0; 1 |] |] in
  (* Pins 4 bins apart horizontally on an 8×8 grid of 8-unit bins. *)
  let p = { Netlist.Placement.x = [| 4.; 36. |]; y = [| 4.; 4. |] } in
  let r = route_ok (Route.Grouter.route c p spec8) in
  Alcotest.(check (float 1e-9)) "4 h-edges × 8 units" 32. r.Route.Grouter.total_wirelength;
  Alcotest.(check int) "no failures" 0 r.Route.Grouter.failed_nets;
  Alcotest.(check (float 0.)) "no overflow" 0. r.Route.Grouter.total_overflow

let test_l_route_length () =
  let c = circuit_of [| (4., 4.); (4., 4.) |] [| [| 0; 1 |] |] in
  let p = { Netlist.Placement.x = [| 4.; 36. |]; y = [| 4.; 36. |] } in
  let r = route_ok (Route.Grouter.route c p spec8) in
  (* Manhattan distance: 4 h-edges + 4 v-edges. *)
  Alcotest.(check (float 1e-9)) "L route" 64. r.Route.Grouter.total_wirelength

let test_same_bin_nothing_routed () =
  let c = circuit_of [| (4., 4.); (4., 4.) |] [| [| 0; 1 |] |] in
  let p = { Netlist.Placement.x = [| 4.; 6. |]; y = [| 4.; 6. |] } in
  let r = route_ok (Route.Grouter.route c p spec8) in
  Alcotest.(check (float 0.)) "zero wirelength" 0. r.Route.Grouter.total_wirelength

let test_star_decomposition () =
  (* A 3-pin net: driver in the middle, sinks left and right. *)
  let c = circuit_of [| (4., 4.); (4., 4.); (4., 4.) |] [| [| 1; 0; 2 |] |] in
  let p = { Netlist.Placement.x = [| 4.; 28.; 52. |]; y = [| 4.; 4.; 4. |] } in
  (* Driver is cell 1 at x=28: 3 edges each way = 6 × 8. *)
  let r = route_ok (Route.Grouter.route c p spec8) in
  Alcotest.(check (float 1e-9)) "two branches" 48. r.Route.Grouter.total_wirelength

let test_maze_detours_around_congestion () =
  (* Saturate the straight channel with parallel nets; the last nets must
     detour (longer wirelength) instead of overflowing.  With a tight
     explicit pitch of 2.0, capacity per edge is dy/pitch = 8/2 = 4
     tracks. *)
  let n = 8 in
  let cells = Array.init (2 * n) (fun _ -> (2., 2.)) in
  let nets = Array.init n (fun i -> [| i; n + i |]) in
  let c = circuit_of cells nets in
  let p =
    {
      Netlist.Placement.x = Array.init (2 * n) (fun i -> if i < n then 4. else 60.);
      y = Array.init (2 * n) (fun _ -> 4.);
    }
  in
  let tight = Route.Grid_spec.make ~wire_pitch:2.0 ~nx:8 ~ny:8 () in
  let r = route_ok (Route.Grouter.route c p tight) in
  Alcotest.(check int) "all routed" 0 r.Route.Grouter.failed_nets;
  (* Straight-line total would be 8 nets × 7 edges × 8 units = 448; the
     detours make it longer. *)
  Alcotest.(check bool) "detoured" true (r.Route.Grouter.total_wirelength > 448.)

let test_rip_up_reduces_overflow () =
  let n = 12 in
  let cells = Array.init (2 * n) (fun _ -> (2., 2.)) in
  let nets = Array.init n (fun i -> [| i; n + i |]) in
  let c = circuit_of cells nets in
  let p =
    {
      Netlist.Placement.x = Array.init (2 * n) (fun i -> if i < n then 4. else 60.);
      y = Array.init (2 * n) (fun _ -> 30.);
    }
  in
  let tight_spec = Route.Grid_spec.make ~wire_pitch:2.0 ~nx:8 ~ny:8 () in
  let tight rip =
    { Route.Grouter.default_config with Route.Grouter.rip_up_passes = rip }
  in
  let no_rip = route_ok (Route.Grouter.route ~config:(tight 0) c p tight_spec) in
  let with_rip =
    route_ok (Route.Grouter.route ~config:(tight 2) c p tight_spec)
  in
  Alcotest.(check bool) "rip-up not worse" true
    (with_rip.Route.Grouter.total_overflow <= no_rip.Route.Grouter.total_overflow)

let test_usage_accounting_consistent () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:42)
  in
  let p0 = Circuitgen.Gen.initial_placement circuit pads in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let p = state.Kraftwerk.Placer.placement in
  let r =
    route_ok (Route.Grouter.route circuit p (Route.Grid_spec.make ~nx:12 ~ny:8 ()))
  in
  Alcotest.(check int) "no failures" 0 r.Route.Grouter.failed_nets;
  (* Routed length is at least the HPWL of the bin-to-bin connections —
     loosely: ≥ half of placed HPWL minus in-bin slack; just check it is
     positive and finite and ≥ max overflow. *)
  Alcotest.(check bool) "sane totals" true
    (r.Route.Grouter.total_wirelength > 0.
    && Float.is_finite r.Route.Grouter.total_wirelength
    && r.Route.Grouter.max_overflow <= r.Route.Grouter.total_overflow +. 1e-9)

(* --- circuit statistics (generator validation) --- *)

let test_degree_histogram () =
  let prof = Circuitgen.Profiles.find "primary1" in
  let circuit, _ =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:42)
  in
  let hist = Circuitgen.Stats.degree_histogram circuit in
  Alcotest.(check int) "no degree-0" 0 hist.(0);
  Alcotest.(check int) "no degree-1" 0 hist.(1);
  Alcotest.(check bool) "two-pin dominated" true
    (hist.(2) > Array.fold_left ( + ) 0 hist / 3)

let test_rent_exponent_realistic () =
  let prof = Circuitgen.Profiles.find "struct" in
  let circuit, _ =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:42)
  in
  let _, p = Circuitgen.Stats.rent_exponent circuit in
  Alcotest.(check bool)
    (Printf.sprintf "rent p = %.3f in [0.4, 0.85]" p)
    true
    (p > 0.4 && p < 0.85)

let test_average_degree () =
  let prof = Circuitgen.Profiles.find "biomed" in
  let circuit, _ =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale:0.3 prof ~seed:42)
  in
  let d = Circuitgen.Stats.average_degree circuit in
  Alcotest.(check bool) "2.2 ≤ avg ≤ 4.5" true (d >= 2.2 && d <= 4.5)

(* --- SVG --- *)

let test_svg_well_formed () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:42)
  in
  let p = Circuitgen.Gen.initial_placement circuit pads in
  let svg = Viz.Svg.render circuit p in
  Alcotest.(check bool) "opens svg" true
    (String.length svg > 10 && String.sub svg 0 4 = "<svg");
  Alcotest.(check bool) "closes svg" true
    (let tail = String.sub svg (String.length svg - 7) 7 in
     tail = "</svg>\n");
  (* One rect per cell plus background and outline at least. *)
  let count_rects =
    List.length (String.split_on_char '<' svg)
  in
  Alcotest.(check bool) "has content" true
    (count_rects > Netlist.Circuit.num_cells circuit)

let test_svg_with_heat_and_nets () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed:42)
  in
  let p = Circuitgen.Gen.initial_placement circuit pads in
  let heat = Density.Density_map.occupancy circuit p ~nx:8 ~ny:8 in
  let options =
    { Viz.Svg.default_options with Viz.Svg.show_nets = true; Viz.Svg.heat = Some heat }
  in
  let svg = Viz.Svg.render ~options circuit p in
  Alcotest.(check bool) "has fly-lines" true
    (String.length svg > 0
    &&
    let found = ref false in
    String.iteri
      (fun i ch ->
        if (not !found) && ch = 'l' && i + 4 < String.length svg then
          if String.sub svg i 5 = "line " then found := true)
      svg;
    !found)

let suite =
  [
    Alcotest.test_case "straight route" `Quick test_straight_route_length;
    Alcotest.test_case "L route" `Quick test_l_route_length;
    Alcotest.test_case "same bin" `Quick test_same_bin_nothing_routed;
    Alcotest.test_case "star decomposition" `Quick test_star_decomposition;
    Alcotest.test_case "maze detours" `Quick test_maze_detours_around_congestion;
    Alcotest.test_case "rip-up helps" `Quick test_rip_up_reduces_overflow;
    Alcotest.test_case "usage accounting" `Quick test_usage_accounting_consistent;
    Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
    Alcotest.test_case "rent exponent" `Quick test_rent_exponent_realistic;
    Alcotest.test_case "average degree" `Quick test_average_degree;
    Alcotest.test_case "svg well-formed" `Quick test_svg_well_formed;
    Alcotest.test_case "svg heat and nets" `Quick test_svg_with_heat_and_nets;
  ]
